#!/usr/bin/env bash
# Best-effort clang-tidy sweep over src/ using the .clang-tidy profile.
#
# Requires a build directory with compile_commands.json (the CMake build
# exports one unconditionally). When clang-tidy is not installed — the CI
# container ships gcc only — this script SKIPS with exit 0 so the lint stage
# stays green; a clang-equipped environment gets the full check.
#
# Usage: scripts/run_clang_tidy.sh [build-dir]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "run_clang_tidy.sh: clang-tidy not found; skipping (gcc-only toolchain)"
  exit 0
fi
if [[ ! -f "${BUILD_DIR}/compile_commands.json" ]]; then
  echo "run_clang_tidy.sh: ${BUILD_DIR}/compile_commands.json missing;" \
       "configure with cmake first" >&2
  exit 2
fi

mapfile -t sources < <(find src -name '*.cc' | sort)
echo "run_clang_tidy.sh: checking ${#sources[@]} files against .clang-tidy"
clang-tidy -p "${BUILD_DIR}" --quiet "${sources[@]}"
echo "run_clang_tidy.sh: clean"
