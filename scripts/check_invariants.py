#!/usr/bin/env python3
"""Repo-invariant linter: module layering + virtual-time wall-clock ban.

Run first in CI (scripts/ci.sh) so structural violations fail before any
compile time is spent. Two invariant families:

1. Module DAG. Every `#include "module/..."` in src/<module>/ must point at a
   module the owner is allowed to depend on. The allowed direct dependencies
   mirror the target_link_libraries graph in CMakeLists.txt:

       common <- {obs, rabin, gpusim}
       common, rabin <- chunking
       chunking <- dedup
       {common, dedup, obs} <- retention
       {rabin, chunking, gpusim, dedup, obs} <- core
       {core, retention} <- service
       {core, dedup, retention, service} <- backup
       {core, dedup} <- {inchdfs, redelim}

   The checker takes the transitive closure, so `backup` including
   "rabin/rabin.h" is fine (via core) but `common` including anything above
   itself — or any cycle — is flagged. The direct map itself is verified
   acyclic on every run.

2. Wall-clock ban. Virtual-time code (src/core, src/gpusim, src/backup,
   src/service, src/obs) must not read the host clock: simulated timestamps
   come from the GpuTimeline / transport event loops, and a stray
   steady_clock::now() silently corrupts virtual-time accounting in a way no
   unit test catches. Banned tokens: steady_clock, system_clock,
   high_resolution_clock, clock_gettime, gettimeofday, and word-boundary
   `time(` (so gpusim's stream_time(...) does not trip it). The only code
   allowed to touch the host clock is common/timer (the Stopwatch used for
   wall_seconds reporting) and common/logging (log line timestamps) — both
   outside the scanned directories, listed here as an explicit allowlist so
   moving them would still pass.

3. Retention isolation. src/retention/ is the storage control plane: it may
   see chunk stores and indexes (dedup) but never the layers that drive it.
   Any `#include "service/..."` or `#include "backup/..."` under
   src/retention/ is flagged by name — the module-DAG check would reject it
   too, but this failure reads as the design violation it is: a delete walk
   or GC sweep calling back up into a session or wire protocol inverts the
   subsystem's whole dependency story (docs/retention.md).

4. Sink isolation. src/core/sink.{h,cc} define the payload-view layer every
   consumer (service store threads, backup framing, user sinks) builds on;
   the zero-copy contract (docs/zero_copy.md) only holds if the sink layer
   never reaches up into its consumers. Any `#include "service/..."` or
   `#include "backup/..."` there is flagged, even though the module-DAG
   check would also reject it — this names the specific file and contract
   so the failure reads as a design violation, not a build-graph typo.

Exit status: 0 = clean, 1 = violations (one line each on stderr),
2 = usage/internal error. `--self-test` runs the checker over the fixture
trees in tests/lint_fixtures/ and verifies each violation kind is caught.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

# Direct module dependencies, mirroring CMakeLists.txt.
DIRECT_DEPS: dict[str, set[str]] = {
    "common": set(),
    "obs": {"common"},
    "rabin": {"common"},
    "chunking": {"common", "rabin"},
    "gpusim": {"common"},
    "dedup": {"common", "chunking"},
    "retention": {"common", "dedup", "obs"},
    "core": {"common", "rabin", "chunking", "gpusim", "dedup", "obs"},
    "service": {"core", "retention"},
    "backup": {"core", "dedup", "retention", "service"},
    "inchdfs": {"core", "dedup"},
    "redelim": {"core", "dedup"},
}

# Directories under src/ whose code runs on virtual time.
VIRTUAL_TIME_MODULES = ("core", "gpusim", "backup", "service", "obs",
                        "retention")

# Files allowed to read the host clock (relative to src/).
WALL_CLOCK_ALLOWLIST = (
    "common/timer.h",
    "common/timer.cc",
    "common/logging.cc",
)

WALL_CLOCK_PATTERNS = [
    re.compile(r"\bsteady_clock\b"),
    re.compile(r"\bsystem_clock\b"),
    re.compile(r"\bhigh_resolution_clock\b"),
    re.compile(r"\bclock_gettime\b"),
    re.compile(r"\bgettimeofday\b"),
    # Word boundary: matches `time(...)` / `::time(0)` but not stream_time(.
    re.compile(r"(?<![A-Za-z0-9_])time\s*\("),
]

INCLUDE_RE = re.compile(r'^\s*#\s*include\s*"([^"]+)"')
SOURCE_SUFFIXES = (".h", ".hpp", ".cc", ".cpp")

# Files under src/ that must not include headers from these consumer modules
# (sink isolation; see docstring point 4).
SINK_ISOLATION_FILES = ("core/sink.h", "core/sink.cc")
SINK_FORBIDDEN_MODULES = ("service", "backup")

# The retention control plane must not reach up into the layers that drive
# it (retention isolation; see docstring point 3).
RETENTION_FORBIDDEN_MODULES = ("service", "backup")


def transitive_closure(direct: dict[str, set[str]]) -> dict[str, set[str]]:
    closure = {m: set(d) for m, d in direct.items()}
    changed = True
    while changed:
        changed = False
        for m in closure:
            extra = set()
            for dep in closure[m]:
                extra |= closure.get(dep, set())
            if not extra <= closure[m]:
                closure[m] |= extra
                changed = True
    return closure


def assert_acyclic(direct: dict[str, set[str]]) -> None:
    closure = transitive_closure(direct)
    for m, deps in closure.items():
        if m in deps:
            raise RuntimeError(f"dependency map has a cycle through '{m}'")


def strip_comments(line: str) -> str:
    # Good enough for token scanning: drop // comments. (Block comments in
    # this codebase never wrap banned tokens; a false negative there would
    # be caught in review, a false positive never fires.)
    idx = line.find("//")
    return line if idx < 0 else line[:idx]


def check_layering(src: Path) -> list[str]:
    errors = []
    allowed = transitive_closure(DIRECT_DEPS)
    for module in sorted(DIRECT_DEPS):
        mdir = src / module
        if not mdir.is_dir():
            continue
        ok = allowed[module] | {module}
        for path in sorted(mdir.rglob("*")):
            if path.suffix not in SOURCE_SUFFIXES or not path.is_file():
                continue
            for lineno, line in enumerate(
                    path.read_text(errors="replace").splitlines(), 1):
                m = INCLUDE_RE.match(line)
                if not m:
                    continue
                target = m.group(1).split("/")[0]
                if target in DIRECT_DEPS and target not in ok:
                    rel = path.relative_to(src.parent)
                    errors.append(
                        f"{rel}:{lineno}: layering violation: module "
                        f"'{module}' may not include \"{m.group(1)}\" "
                        f"(allowed: {', '.join(sorted(ok))})")
    return errors


def check_wall_clock(src: Path) -> list[str]:
    errors = []
    for module in VIRTUAL_TIME_MODULES:
        mdir = src / module
        if not mdir.is_dir():
            continue
        for path in sorted(mdir.rglob("*")):
            if path.suffix not in SOURCE_SUFFIXES or not path.is_file():
                continue
            rel_src = path.relative_to(src).as_posix()
            if rel_src in WALL_CLOCK_ALLOWLIST:
                continue
            for lineno, raw in enumerate(
                    path.read_text(errors="replace").splitlines(), 1):
                line = strip_comments(raw)
                for pat in WALL_CLOCK_PATTERNS:
                    if pat.search(line):
                        rel = path.relative_to(src.parent)
                        errors.append(
                            f"{rel}:{lineno}: wall-clock call "
                            f"('{pat.pattern}') in virtual-time code: "
                            f"{raw.strip()}")
                        break
    return errors


def check_retention_isolation(src: Path) -> list[str]:
    errors = []
    mdir = src / "retention"
    if not mdir.is_dir():
        return errors
    for path in sorted(mdir.rglob("*")):
        if path.suffix not in SOURCE_SUFFIXES or not path.is_file():
            continue
        for lineno, line in enumerate(
                path.read_text(errors="replace").splitlines(), 1):
            m = INCLUDE_RE.match(line)
            if not m:
                continue
            target = m.group(1).split("/")[0]
            if target in RETENTION_FORBIDDEN_MODULES:
                rel = path.relative_to(src.parent)
                errors.append(
                    f"{rel}:{lineno}: retention isolation violation: the "
                    f"retention control plane may not include "
                    f"\"{m.group(1)}\" — it depends on dedup stores and "
                    f"indexes, never on the layers that drive it "
                    f"({', '.join(RETENTION_FORBIDDEN_MODULES)})")
    return errors


def check_sink_isolation(src: Path) -> list[str]:
    errors = []
    for rel_src in SINK_ISOLATION_FILES:
        path = src / rel_src
        if not path.is_file():
            continue
        for lineno, line in enumerate(
                path.read_text(errors="replace").splitlines(), 1):
            m = INCLUDE_RE.match(line)
            if not m:
                continue
            target = m.group(1).split("/")[0]
            if target in SINK_FORBIDDEN_MODULES:
                rel = path.relative_to(src.parent)
                errors.append(
                    f"{rel}:{lineno}: sink isolation violation: the payload "
                    f"view layer may not include \"{m.group(1)}\" — sink.h/cc "
                    f"must stay independent of its consumers "
                    f"({', '.join(SINK_FORBIDDEN_MODULES)})")
    return errors


def run_checks(root: Path) -> list[str]:
    src = root / "src"
    if not src.is_dir():
        raise RuntimeError(f"no src/ under {root}")
    assert_acyclic(DIRECT_DEPS)
    return (check_layering(src) + check_wall_clock(src)
            + check_retention_isolation(src) + check_sink_isolation(src))


def self_test(repo_root: Path) -> int:
    fixtures = repo_root / "tests" / "lint_fixtures"
    failures = []

    def expect(name: str, min_errors: int, needle: str = "") -> None:
        errors = run_checks(fixtures / name)
        if min_errors == 0 and errors:
            failures.append(f"{name}: expected clean, got: {errors}")
        elif min_errors > 0:
            if len(errors) < min_errors:
                failures.append(
                    f"{name}: expected >= {min_errors} errors, got {errors}")
            elif needle and not any(needle in e for e in errors):
                failures.append(f"{name}: no error mentions '{needle}': {errors}")

    expect("clean", 0)
    expect("bad_layering", 1, "layering violation")
    expect("bad_clock", 1, "wall-clock call")
    expect("bad_sink_dep", 1, "sink isolation")
    expect("bad_retention_dep", 2, "retention isolation")

    # The word-boundary regex must not flag identifiers ending in `time`.
    clean_errors = run_checks(fixtures / "clean")
    if any("stream_time" in e for e in clean_errors):
        failures.append(f"clean: stream_time( false positive: {clean_errors}")

    if failures:
        for f in failures:
            print(f"self-test FAIL: {f}", file=sys.stderr)
        return 1
    print("check_invariants.py self-test: all fixtures behave as expected")
    return 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", type=Path, default=None,
                    help="repo root to scan (default: this script's repo)")
    ap.add_argument("--self-test", action="store_true",
                    help="run the checker over tests/lint_fixtures/")
    args = ap.parse_args()

    repo_root = Path(__file__).resolve().parent.parent
    if args.self_test:
        return self_test(repo_root)

    root = args.root if args.root is not None else repo_root
    try:
        errors = run_checks(root)
    except RuntimeError as e:
        print(f"check_invariants.py: {e}", file=sys.stderr)
        return 2
    for e in errors:
        print(e, file=sys.stderr)
    if errors:
        print(f"check_invariants.py: {len(errors)} violation(s)",
              file=sys.stderr)
        return 1
    print("check_invariants.py: module DAG and wall-clock invariants hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
