#!/usr/bin/env bash
# CI entry point: strict build + full test suite, then an ASan/UBSan build
# exercising the chunking stack (the fast path does unaligned loads and
# arena-backed block chains — exactly what sanitizers are good at catching).
#
# Usage: scripts/ci.sh [build-dir]
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build-ci}"
JOBS="$(nproc 2>/dev/null || echo 2)"

echo "=== strict build (-Wall -Wextra -Werror) ==="
cmake -B "$BUILD_DIR" -S . -DSHREDDER_WERROR=ON
cmake --build "$BUILD_DIR" -j "$JOBS"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"

echo "=== multi-tenant service smoke (small-N BENCH_service) ==="
if [ -x "$BUILD_DIR/microbench" ]; then
  "$BUILD_DIR/microbench" --service_smoke_json="$BUILD_DIR/BENCH_service_smoke.json"
else
  echo "microbench not built (google-benchmark missing): skipping service smoke"
fi

echo "=== on-device fingerprint smoke (small-image BENCH_fingerprint) ==="
if [ -x "$BUILD_DIR/microbench" ]; then
  "$BUILD_DIR/microbench" --fingerprint_smoke_json="$BUILD_DIR/BENCH_fingerprint_smoke.json"
else
  echo "microbench not built (google-benchmark missing): skipping fingerprint smoke"
fi

echo "=== sparse fingerprint index smoke (small-image BENCH_index) ==="
# Enforces the same >=3x sparse-over-baseline bar the committed
# BENCH_index.json documents at full scale (docs/dedup_index.md).
if [ -x "$BUILD_DIR/microbench" ]; then
  "$BUILD_DIR/microbench" --index_smoke_json="$BUILD_DIR/BENCH_index_smoke.json"
else
  echo "microbench not built (google-benchmark missing): skipping index smoke"
fi

echo "=== backup wire smoke (2 KB extent-batch BENCH_agent) ==="
# Enforces the same >=1.5x extent-over-per-chunk link-stage bar the
# committed BENCH_agent.json documents at full scale (docs/backup_wire.md).
if [ -x "$BUILD_DIR/microbench" ]; then
  "$BUILD_DIR/microbench" --agent_smoke_json="$BUILD_DIR/BENCH_agent_smoke.json"
else
  echo "microbench not built (google-benchmark missing): skipping agent smoke"
fi

echo "=== transport loss-sweep smoke (small-image BENCH_transport) ==="
# Enforces the goodput-at-1%-loss >= 0.7x-lossless bar the committed
# BENCH_transport.json documents at full scale (docs/backup_wire.md).
if [ -x "$BUILD_DIR/microbench" ]; then
  "$BUILD_DIR/microbench" --transport_smoke_json="$BUILD_DIR/BENCH_transport_smoke.json"
else
  echo "microbench not built (google-benchmark missing): skipping transport smoke"
fi

echo "=== observability smoke (BENCH_obs + Perfetto trace export) ==="
# Enforces the <=2% disabled-registry overhead bar and the <=1% traced
# engine-busy vs GpuTimeline::engine_busy agreement the committed
# BENCH_obs.json documents at full scale (docs/observability.md), and
# checks the exported Chrome trace-event files are well-formed JSON.
if [ -x "$BUILD_DIR/microbench" ]; then
  (cd "$BUILD_DIR" && ./microbench --obs_smoke_json="BENCH_obs_smoke.json")
  if command -v python3 >/dev/null 2>&1; then
    python3 -m json.tool "$BUILD_DIR/BENCH_obs_smoke.json" >/dev/null
    python3 -m json.tool "$BUILD_DIR/TRACE_obs_service.json" >/dev/null
    python3 -m json.tool "$BUILD_DIR/TRACE_obs_transport.json" >/dev/null
    echo "trace exports are well-formed JSON"
  else
    echo "python3 not available: skipping trace JSON validation"
  fi
else
  echo "microbench not built (google-benchmark missing): skipping obs smoke"
fi

echo "=== ASan/UBSan build (chunking + fingerprint + index + wire + obs stack) ==="
SAN_DIR="${BUILD_DIR}-asan"
cmake -B "$SAN_DIR" -S . -DSHREDDER_WERROR=ON -DSHREDDER_SANITIZE=ON
cmake --build "$SAN_DIR" -j "$JOBS" \
  --target chunking_test rabin_test minmax_test fingerprint_test \
  index_test dedup_test sink_test transport_test obs_test common_test
ctest --test-dir "$SAN_DIR" --output-on-failure -j "$JOBS" \
  -R 'chunking_test|rabin_test|minmax_test|fingerprint_test|index_test|dedup_test|sink_test|transport_test|obs_test|common_test'

echo "=== ci OK ==="
