#!/usr/bin/env bash
# CI entry point, fail-fast order (docs/static_analysis.md):
#   1. repo-invariant lint (module DAG + wall-clock ban) — cheapest, runs first
#   2. strict build + full test suite (-Werror; clang adds
#      -Werror=thread-safety over the annotations in src/common/annotations.h)
#   3. best-effort clang-tidy (skips cleanly on gcc-only toolchains)
#   4. microbench smokes
#   5. ASan/UBSan lane (unaligned loads, arena-backed block chains)
#   6. TSan lane over the concurrency-heavy suites (queues, thread pool,
#      obs registry/tracer, multi-tenant service, transport)
#
# Usage: scripts/ci.sh [build-dir]
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build-ci}"
JOBS="$(nproc 2>/dev/null || echo 2)"

echo "=== repo-invariant lint (module DAG + wall-clock ban) ==="
python3 scripts/check_invariants.py --self-test
python3 scripts/check_invariants.py

echo "=== strict build (-Wall -Wextra -Werror; clang: -Werror=thread-safety) ==="
cmake -B "$BUILD_DIR" -S . -DSHREDDER_WERROR=ON
cmake --build "$BUILD_DIR" -j "$JOBS"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"

echo "=== clang-tidy (best-effort; skips when the binary is absent) ==="
scripts/run_clang_tidy.sh "$BUILD_DIR"

echo "=== multi-tenant service smoke (small-N BENCH_service) ==="
if [ -x "$BUILD_DIR/microbench" ]; then
  "$BUILD_DIR/microbench" --service_smoke_json="$BUILD_DIR/BENCH_service_smoke.json"
else
  echo "microbench not built (google-benchmark missing): skipping service smoke"
fi

echo "=== on-device fingerprint smoke (small-image BENCH_fingerprint) ==="
if [ -x "$BUILD_DIR/microbench" ]; then
  "$BUILD_DIR/microbench" --fingerprint_smoke_json="$BUILD_DIR/BENCH_fingerprint_smoke.json"
else
  echo "microbench not built (google-benchmark missing): skipping fingerprint smoke"
fi

echo "=== sparse fingerprint index smoke (small-image BENCH_index) ==="
# Enforces the same >=3x sparse-over-baseline bar the committed
# BENCH_index.json documents at full scale (docs/dedup_index.md).
if [ -x "$BUILD_DIR/microbench" ]; then
  "$BUILD_DIR/microbench" --index_smoke_json="$BUILD_DIR/BENCH_index_smoke.json"
else
  echo "microbench not built (google-benchmark missing): skipping index smoke"
fi

echo "=== backup wire smoke (2 KB extent-batch BENCH_agent) ==="
# Enforces the same >=1.5x extent-over-per-chunk link-stage bar the
# committed BENCH_agent.json documents at full scale (docs/backup_wire.md).
if [ -x "$BUILD_DIR/microbench" ]; then
  "$BUILD_DIR/microbench" --agent_smoke_json="$BUILD_DIR/BENCH_agent_smoke.json"
else
  echo "microbench not built (google-benchmark missing): skipping agent smoke"
fi

echo "=== transport loss-sweep smoke (small-image BENCH_transport) ==="
# Enforces the goodput-at-1%-loss >= 0.7x-lossless bar the committed
# BENCH_transport.json documents at full scale (docs/backup_wire.md).
if [ -x "$BUILD_DIR/microbench" ]; then
  "$BUILD_DIR/microbench" --transport_smoke_json="$BUILD_DIR/BENCH_transport_smoke.json"
else
  echo "microbench not built (google-benchmark missing): skipping transport smoke"
fi

echo "=== observability smoke (BENCH_obs + Perfetto trace export) ==="
# Enforces the <=2% disabled-registry overhead bar and the <=1% traced
# engine-busy vs GpuTimeline::engine_busy agreement the committed
# BENCH_obs.json documents at full scale (docs/observability.md), and
# checks the exported Chrome trace-event files are well-formed JSON.
if [ -x "$BUILD_DIR/microbench" ]; then
  (cd "$BUILD_DIR" && ./microbench --obs_smoke_json="BENCH_obs_smoke.json")
  if command -v python3 >/dev/null 2>&1; then
    python3 -m json.tool "$BUILD_DIR/BENCH_obs_smoke.json" >/dev/null
    python3 -m json.tool "$BUILD_DIR/TRACE_obs_service.json" >/dev/null
    python3 -m json.tool "$BUILD_DIR/TRACE_obs_transport.json" >/dev/null
    echo "trace exports are well-formed JSON"
  else
    echo "python3 not available: skipping trace JSON validation"
  fi
else
  echo "microbench not built (google-benchmark missing): skipping obs smoke"
fi

echo "=== zero-copy sink smoke (streaming-vs-ByteSpan BENCH_sink) ==="
# Enforces the streaming >= 0.9x in-memory wall-throughput bar (0.95x at
# the full scale the committed BENCH_sink.json documents): the slot-lease
# payload path must keep streaming retention copy-free (docs/zero_copy.md).
if [ -x "$BUILD_DIR/microbench" ]; then
  "$BUILD_DIR/microbench" --sink_zero_copy_smoke_json="$BUILD_DIR/BENCH_sink_smoke.json"
else
  echo "microbench not built (google-benchmark missing): skipping sink smoke"
fi

echo "=== retention churn smoke (delete + GC + compaction BENCH_retention) ==="
# Enforces the same bars the committed BENCH_retention.json documents at
# full scale (docs/retention.md): >= 80% of dead bytes reclaimed by GC,
# store bytes and index entry-log both shrink >= 40% after deleting half
# the snapshots, surviving images recreate bit-identically, and sparse
# probe decisions are bit-identical across entry-log compaction.
if [ -x "$BUILD_DIR/microbench" ]; then
  "$BUILD_DIR/microbench" --retention_smoke_json="$BUILD_DIR/BENCH_retention_smoke.json"
else
  echo "microbench not built (google-benchmark missing): skipping retention smoke"
fi

echo "=== ASan/UBSan build (chunking + fingerprint + index + wire + obs stack) ==="
SAN_DIR="${BUILD_DIR}-asan"
cmake -B "$SAN_DIR" -S . -DSHREDDER_WERROR=ON -DSHREDDER_SANITIZE=address
cmake --build "$SAN_DIR" -j "$JOBS" \
  --target chunking_test rabin_test minmax_test fingerprint_test \
  index_test dedup_test retention_test core_test sink_test transport_test \
  obs_test common_test
ctest --test-dir "$SAN_DIR" --output-on-failure -j "$JOBS" \
  -R 'chunking_test|rabin_test|minmax_test|fingerprint_test|index_test|dedup_test|retention_test|core_test|sink_test|transport_test|obs_test|common_test'

echo "=== TSan build (queues, thread pool, obs, service, transport) ==="
# The suites that genuinely run multiple threads: common_test (BoundedQueue +
# ThreadPool stress), obs_test (registry shards racing snapshot, tracer),
# service_test (N producer threads over one engine), core_test (slot-lease
# backpressure across producer/consumer threads), transport_test and
# sink_test (store-thread delivery), retention_test (pins vs GC sweeps over
# the shared store). TSan's happens-before checking is what the
# thread-safety annotations cannot give us under gcc.
TSAN_DIR="${BUILD_DIR}-tsan"
cmake -B "$TSAN_DIR" -S . -DSHREDDER_WERROR=ON -DSHREDDER_SANITIZE=thread
cmake --build "$TSAN_DIR" -j "$JOBS" \
  --target common_test obs_test service_test core_test transport_test \
  sink_test retention_test
TSAN_OPTIONS="halt_on_error=1" \
  ctest --test-dir "$TSAN_DIR" --output-on-failure -j "$JOBS" \
  -R 'common_test|obs_test|service_test|core_test|transport_test|sink_test|retention_test'

echo "=== ci OK ==="
