// Tests for GF(2) polynomial arithmetic and Rabin fingerprinting.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "rabin/gf2.h"
#include "rabin/rabin.h"

namespace shredder::rabin {
namespace {

TEST(Gf2, Degree) {
  EXPECT_EQ(gf2_degree(0), -1);
  EXPECT_EQ(gf2_degree(1), 0);
  EXPECT_EQ(gf2_degree(2), 1);
  EXPECT_EQ(gf2_degree(0b1011), 3);
  EXPECT_EQ(gf2_degree(Gf2Poly(1) << 64), 64);
  EXPECT_EQ(gf2_degree(Gf2Poly(1) << 127), 127);
}

TEST(Gf2, ModBasics) {
  // x^3 + x mod x^2 = x (x^3 = x*x^2; remainder is x).
  EXPECT_EQ(gf2_mod(0b1010, 0b100), Gf2Poly(0b10));
  // Anything mod itself is 0.
  EXPECT_EQ(gf2_mod(0b1011, 0b1011), Gf2Poly(0));
  // Degree of result < degree of modulus.
  SplitMix64 rng(1);
  for (int i = 0; i < 200; ++i) {
    const Gf2Poly a = rng.next();
    const Gf2Poly m = rng.next() | 0x100;
    EXPECT_LT(gf2_degree(gf2_mod(a, m)), gf2_degree(m));
  }
}

TEST(Gf2, ModByZeroThrows) {
  EXPECT_THROW(gf2_mod(5, 0), std::invalid_argument);
}

TEST(Gf2, MulCommutesAndDistributes) {
  SplitMix64 rng(2);
  for (int i = 0; i < 200; ++i) {
    const Gf2Poly a = rng.next();
    const Gf2Poly b = rng.next();
    const Gf2Poly c = rng.next();
    EXPECT_EQ(gf2_mul(a, b), gf2_mul(b, a));
    EXPECT_EQ(gf2_mul(a, b ^ c), gf2_mul(a, b) ^ gf2_mul(a, c));
  }
}

TEST(Gf2, MulIdentityAndZero) {
  SplitMix64 rng(3);
  for (int i = 0; i < 50; ++i) {
    const Gf2Poly a = rng.next();
    EXPECT_EQ(gf2_mul(a, 1), a);
    EXPECT_EQ(gf2_mul(a, 0), Gf2Poly(0));
  }
}

TEST(Gf2, MulByXIsShift) {
  EXPECT_EQ(gf2_mul(0b1011, 0b10), Gf2Poly(0b10110));
}

TEST(Gf2, MulRejectsWideOperands) {
  EXPECT_THROW(gf2_mul(Gf2Poly(1) << 64, 2), std::invalid_argument);
}

TEST(Gf2, MulModAssociates) {
  SplitMix64 rng(4);
  const Gf2Poly m = (Gf2Poly(1) << 64) | kDefaultPoly;
  for (int i = 0; i < 100; ++i) {
    const Gf2Poly a = rng.next();
    const Gf2Poly b = rng.next();
    const Gf2Poly c = rng.next();
    EXPECT_EQ(gf2_mulmod(gf2_mulmod(a, b, m), c, m),
              gf2_mulmod(a, gf2_mulmod(b, c, m), m));
  }
}

TEST(Gf2, GcdBasics) {
  EXPECT_EQ(gf2_gcd(0, 5), Gf2Poly(5));
  EXPECT_EQ(gf2_gcd(5, 0), Gf2Poly(5));
  EXPECT_EQ(gf2_gcd(6, 6), Gf2Poly(6));
  // gcd(x^2+x, x) = x  (x^2+x = x(x+1))
  EXPECT_EQ(gf2_gcd(0b110, 0b10), Gf2Poly(0b10));
}

TEST(Gf2, GcdDividesBoth) {
  SplitMix64 rng(5);
  for (int i = 0; i < 100; ++i) {
    const Gf2Poly a = rng.next() & 0xffffffff;
    const Gf2Poly b = rng.next() & 0xffffffff;
    if (a == 0 || b == 0) continue;
    const Gf2Poly g = gf2_gcd(a, b);
    EXPECT_EQ(gf2_mod(a, g), Gf2Poly(0));
    EXPECT_EQ(gf2_mod(b, g), Gf2Poly(0));
  }
}

TEST(Gf2, KnownIrreduciblePolynomials) {
  // x^2 + x + 1, x^3 + x + 1, x^4 + x + 1 are classic irreducibles.
  EXPECT_TRUE(gf2_is_irreducible(0b111));
  EXPECT_TRUE(gf2_is_irreducible(0b1011));
  EXPECT_TRUE(gf2_is_irreducible(0b10011));
  // The classic LBFS constant is irreducible as an explicit degree-63
  // polynomial.
  EXPECT_TRUE(gf2_is_irreducible(Gf2Poly(0xbfe6b8a5bf378d83ull)));
  // Our default degree-64 modulus (implicit leading bit).
  EXPECT_TRUE(gf2_is_irreducible((Gf2Poly(1) << 64) | kDefaultPoly));
}

TEST(Gf2, KnownReduciblePolynomials) {
  // x^2 + 1 = (x+1)^2 over GF(2).
  EXPECT_FALSE(gf2_is_irreducible(0b101));
  // x^2 + x = x(x+1).
  EXPECT_FALSE(gf2_is_irreducible(0b110));
  // Even constant term is divisible by x.
  EXPECT_FALSE(gf2_is_irreducible(0b1010));
}

TEST(Gf2, IrreducibilityMatchesBruteForce) {
  // Exhaustive check for all degree-2..10 polynomials against trial division
  // by every polynomial of degree <= deg(p)/2.
  for (unsigned p = 4; p < 2048; ++p) {
    const int half = gf2_degree(p) / 2;
    bool reducible = false;
    for (unsigned d = 2; gf2_degree(d) <= half; ++d) {
      if (gf2_mod(p, d) == 0) {
        reducible = true;
        break;
      }
    }
    EXPECT_EQ(gf2_is_irreducible(p), !reducible) << "poly " << p;
  }
}

TEST(Gf2, RandomIrreducibleHasRequestedDegree) {
  for (int degree : {8, 16, 32, 53, 64}) {
    const Gf2Poly p = gf2_random_irreducible(degree, 77);
    EXPECT_EQ(gf2_degree(p), degree);
    EXPECT_TRUE(gf2_is_irreducible(p));
  }
}

TEST(Gf2, RandomIrreducibleRejectsBadDegree) {
  EXPECT_THROW(gf2_random_irreducible(1, 1), std::invalid_argument);
  EXPECT_THROW(gf2_random_irreducible(65, 1), std::invalid_argument);
}

// --- Rabin tables / windows ---

TEST(RabinTables, RejectsBadArguments) {
  EXPECT_THROW(RabinTables(0), std::invalid_argument);
  // x^64 + x^2 + 1 is reducible (even weight).
  EXPECT_THROW(RabinTables(48, 0x5), std::invalid_argument);
}

TEST(RabinTables, FingerprintMatchesPolynomialDefinition) {
  // fp(data) must equal the data polynomial mod P computed with gf2_mod.
  const RabinTables tables(8);
  const auto data = random_bytes(16, 9);
  // Build the data polynomial in 128-bit space byte by byte, reducing as we
  // go (the data is longer than 64 bits).
  const Gf2Poly p = (Gf2Poly(1) << 64) | Gf2Poly(tables.poly());
  Gf2Poly ref = 0;
  for (auto b : data) {
    ref = gf2_mod((ref << 8) | Gf2Poly(b), p);
  }
  EXPECT_EQ(tables.fingerprint(as_bytes(data)),
            static_cast<std::uint64_t>(ref));
}

TEST(RabinWindow, SlidingEqualsDirectComputation) {
  // The fingerprint after sliding must equal fingerprinting the last w bytes
  // from scratch — the fundamental sliding-window property.
  const RabinTables tables(16);
  const auto data = random_bytes(200, 10);
  RabinWindow window(tables);
  for (std::size_t i = 0; i < data.size(); ++i) {
    const std::uint64_t fp = window.push(data[i]);
    if (i + 1 >= 16) {
      const ByteSpan last16 = ByteSpan(data).subspan(i + 1 - 16, 16);
      EXPECT_EQ(fp, tables.fingerprint(last16)) << "at position " << i;
    }
  }
}

TEST(RabinWindow, ResetRestartsCleanly) {
  const RabinTables tables(8);
  const auto data = random_bytes(64, 11);
  RabinWindow w1(tables), w2(tables);
  for (auto b : data) w1.push(b);
  w1.reset();
  std::uint64_t fp1 = 0, fp2 = 0;
  for (auto b : data) {
    fp1 = w1.push(b);
    fp2 = w2.push(b);
  }
  EXPECT_EQ(fp1, fp2);
}

TEST(RabinWindow, FullFlagTracksWindowFill) {
  const RabinTables tables(4);
  RabinWindow w(tables);
  EXPECT_FALSE(w.full());
  for (int i = 0; i < 3; ++i) {
    w.push(0xab);
    EXPECT_FALSE(w.full());
  }
  w.push(0xcd);
  EXPECT_TRUE(w.full());
}

TEST(RabinWindow, WindowContentDeterminesFingerprint) {
  // Identical windows reached via different prefixes give identical
  // fingerprints — the content-defined chunking property.
  const RabinTables tables(8);
  auto prefix_a = random_bytes(100, 12);
  auto prefix_b = random_bytes(37, 13);
  const auto window_content = random_bytes(8, 14);
  RabinWindow wa(tables), wb(tables);
  for (auto b : prefix_a) wa.push(b);
  for (auto b : prefix_b) wb.push(b);
  std::uint64_t fa = 0, fb = 0;
  for (auto b : window_content) {
    fa = wa.push(b);
    fb = wb.push(b);
  }
  EXPECT_EQ(fa, fb);
}

TEST(RabinTables, DifferentWindowsDifferentPopTables) {
  const RabinTables t8(8), t16(16);
  const auto data = random_bytes(64, 15);
  RabinWindow w8(t8), w16(t16);
  std::uint64_t f8 = 0, f16 = 0;
  for (auto b : data) {
    f8 = w8.push(b);
    f16 = w16.push(b);
  }
  EXPECT_NE(f8, f16);
}

// Parameterized sweep: sliding property holds across window sizes.
class RabinWindowSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RabinWindowSweep, SlidingMatchesScratch) {
  const std::size_t w = GetParam();
  const RabinTables tables(w);
  const auto data = random_bytes(3 * w + 17, 16 + w);
  RabinWindow window(tables);
  for (std::size_t i = 0; i < data.size(); ++i) {
    const std::uint64_t fp = window.push(data[i]);
    if (i + 1 >= w) {
      EXPECT_EQ(fp, tables.fingerprint(ByteSpan(data).subspan(i + 1 - w, w)));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Windows, RabinWindowSweep,
                         ::testing::Values(1, 2, 3, 4, 7, 8, 16, 31, 32, 48,
                                           64, 100, 255, 256));

// Different irreducible polynomials produce different fingerprints but both
// satisfy the sliding property.
TEST(RabinTables, AlternatePolynomial) {
  const auto poly = gf2_random_irreducible(64, 123);
  const RabinTables alt(48, static_cast<std::uint64_t>(poly));
  const RabinTables def(48);
  const auto data = random_bytes(256, 17);
  EXPECT_NE(alt.fingerprint(as_bytes(data)), def.fingerprint(as_bytes(data)));
}

// --- Fused sliding-window operations (the scan_buffer fast path substrate) ---

class FusedSlideSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FusedSlideSweep, SlideEqualsPopThenPush) {
  const std::size_t w = GetParam();
  const RabinTables tables(w);
  const auto data = random_bytes(4 * w + 64, 40 + w);
  RabinWindow window(tables);
  std::uint64_t fp = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    const std::uint64_t expect = window.push(data[i]);
    if (i < w) {
      fp = tables.push(fp, data[i]);
    } else {
      fp = tables.slide(fp, data[i], data[i - w]);
    }
    EXPECT_EQ(fp, expect) << "i=" << i;
  }
}

TEST_P(FusedSlideSweep, Slide4EqualsChainedSlides) {
  const std::size_t w = GetParam();
  const RabinTables tables(w);
  const auto data = random_bytes(4 * w + 64, 50 + w);
  const std::uint8_t* p = data.data();
  // Warm a full window, then compare every double 4-hop against eight
  // chained single slides (the exact decomposition scan_buffer uses).
  std::uint64_t fp = 0;
  for (std::size_t i = 0; i < w; ++i) fp = tables.push(fp, p[i]);
  for (std::size_t i = w; i + 8 <= data.size(); ++i) {
    std::uint64_t chained = fp;
    for (std::size_t k = 0; k < 8; ++k) {
      chained = tables.slide(chained, p[i + k], p[i + k - w]);
    }
    std::uint64_t in8 = 0;
    for (std::size_t k = 0; k < 8; ++k) in8 = (in8 << 8) | p[i + k];
    const std::uint64_t hop4 = tables.slide4(
        fp, static_cast<std::uint32_t>(in8 >> 32), p[i - w], p[i + 1 - w],
        p[i + 2 - w], p[i + 3 - w]);
    const std::uint64_t hop44 = tables.slide4(
        hop4, static_cast<std::uint32_t>(in8 & 0xffffffffu), p[i + 4 - w],
        p[i + 5 - w], p[i + 6 - w], p[i + 7 - w]);
    EXPECT_EQ(hop44, chained) << "i=" << i;
    fp = tables.slide(fp, p[i], p[i - w]);
  }
}

INSTANTIATE_TEST_SUITE_P(Windows, FusedSlideSweep,
                         ::testing::Values(1, 2, 3, 4, 7, 8, 16, 48, 64, 256));

TEST(RabinTables, XPow8kMatchesByteShifts) {
  const RabinTables tables(48);
  // Naive reference: k repeated byte shifts == fingerprint of 0x01 followed
  // by k zero bytes.
  for (const std::uint64_t k : {0ull, 1ull, 2ull, 7ull, 8ull, 63ull, 64ull,
                                1000ull}) {
    ByteVec buf(static_cast<std::size_t>(k) + 1, 0);
    buf[0] = 1;
    EXPECT_EQ(tables.x_pow_8k(k), tables.fingerprint(as_bytes(buf)))
        << "k=" << k;
  }
  EXPECT_EQ(tables.x_pow_8k(0), 1u);
}

TEST(RabinTables, ConcatMatchesWholeBufferFingerprint) {
  const RabinTables tables(48);
  SplitMix64 rng(60);
  for (int i = 0; i < 20; ++i) {
    const auto a = random_bytes(1 + rng.next_below(300), 61 + i);
    const auto b = random_bytes(rng.next_below(300), 80 + i);
    ByteVec whole = a;
    whole.insert(whole.end(), b.begin(), b.end());
    EXPECT_EQ(tables.concat(tables.fingerprint(as_bytes(a)),
                            tables.fingerprint(as_bytes(b)), b.size()),
              tables.fingerprint(as_bytes(whole)));
  }
}

}  // namespace
}  // namespace shredder::rabin
