// Tests for the chunking backends: serial CDC, fixed, SampleByte, parallel
// SPMD chunker, arena allocators, and cross-backend equivalence.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <numeric>
#include <set>
#include <thread>

#include "chunking/arena.h"
#include "chunking/cdc.h"
#include "chunking/chunk.h"
#include "chunking/fixed.h"
#include "chunking/minmax.h"
#include "chunking/parallel.h"
#include "chunking/samplebyte.h"
#include "common/rng.h"
#include "core/kernels.h"
#include "gpusim/device.h"

namespace shredder::chunking {
namespace {

using rabin::RabinTables;

ChunkerConfig small_config() {
  ChunkerConfig c;
  c.window = 16;
  c.mask_bits = 8;  // expected 256-byte chunks: plenty of boundaries
  c.marker = 0x42;
  return c;
}

// --- ChunkerConfig validation ---

TEST(ChunkerConfig, ValidatesWindow) {
  ChunkerConfig c = small_config();
  c.window = 0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c.window = 257;
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(ChunkerConfig, ValidatesMarkerWidth) {
  ChunkerConfig c = small_config();
  c.marker = 0x1ff;  // 9 bits, mask is 8
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(ChunkerConfig, ValidatesMinMax) {
  ChunkerConfig c = small_config();
  c.min_size = 100;
  c.max_size = 50;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c.min_size = 0;
  c.max_size = 8;  // below window
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(ChunkerConfig, ExpectedChunkSize) {
  ChunkerConfig c;
  c.mask_bits = 13;
  EXPECT_EQ(c.expected_chunk_size(), 8192u);
}

// --- boundaries_to_chunks ---

TEST(BoundariesToChunks, PartitionsStream) {
  const auto chunks = boundaries_to_chunks({10, 25, 40}, 40);
  ASSERT_EQ(chunks.size(), 3u);
  EXPECT_EQ(chunks[0], (Chunk{0, 10}));
  EXPECT_EQ(chunks[1], (Chunk{10, 15}));
  EXPECT_EQ(chunks[2], (Chunk{25, 15}));
}

TEST(BoundariesToChunks, EmptyStream) {
  EXPECT_TRUE(boundaries_to_chunks({}, 0).empty());
  EXPECT_THROW(boundaries_to_chunks({1}, 0), std::invalid_argument);
}

TEST(BoundariesToChunks, RejectsMalformed) {
  EXPECT_THROW(boundaries_to_chunks({10, 5, 40}, 40), std::invalid_argument);
  EXPECT_THROW(boundaries_to_chunks({10, 25}, 40), std::invalid_argument);
  EXPECT_THROW(boundaries_to_chunks({10, 50}, 40), std::invalid_argument);
}

// --- Serial CDC ---

TEST(SerialCdc, BoundariesMatchWindowFingerprints) {
  const auto config = small_config();
  const RabinTables tables(config.window);
  const auto data = random_bytes(64 * 1024, 21);
  const auto raw = find_raw_boundaries(tables, config, as_bytes(data));
  ASSERT_FALSE(raw.empty());
  for (std::uint64_t end : raw) {
    ASSERT_GE(end, config.window);
    const auto window =
        ByteSpan(data).subspan(end - config.window, config.window);
    EXPECT_TRUE(config.is_boundary_fp(tables.fingerprint(window)))
        << "boundary at " << end;
  }
}

TEST(SerialCdc, AllMatchingPositionsAreFound) {
  // Exhaustively verify: every window-full position either is or is not a
  // boundary exactly as the raw list says.
  const auto config = small_config();
  const RabinTables tables(config.window);
  const auto data = random_bytes(8 * 1024, 22);
  const auto raw = find_raw_boundaries(tables, config, as_bytes(data));
  std::set<std::uint64_t> raw_set(raw.begin(), raw.end());
  rabin::RabinWindow window(tables);
  for (std::size_t i = 0; i < data.size(); ++i) {
    const std::uint64_t fp = window.push(data[i]);
    const bool expect_boundary = window.full() && config.is_boundary_fp(fp);
    EXPECT_EQ(raw_set.contains(i + 1), expect_boundary) << "position " << i + 1;
  }
}

TEST(SerialCdc, ExpectedChunkSizeRoughlyMatchesMask) {
  ChunkerConfig c = small_config();
  c.mask_bits = 10;  // expected 1 KiB
  const RabinTables tables(c.window);
  const auto data = random_bytes(4 * 1024 * 1024, 23);
  const auto raw = find_raw_boundaries(tables, c, as_bytes(data));
  const double mean_gap =
      static_cast<double>(data.size()) / static_cast<double>(raw.size());
  EXPECT_GT(mean_gap, 700.0);
  EXPECT_LT(mean_gap, 1500.0);
}

TEST(SerialCdc, ChunksCoverStream) {
  const auto config = small_config();
  const RabinTables tables(config.window);
  const auto data = random_bytes(32 * 1024, 24);
  const auto chunks = chunk_serial(tables, config, as_bytes(data));
  ASSERT_FALSE(chunks.empty());
  std::uint64_t pos = 0;
  for (const auto& c : chunks) {
    EXPECT_EQ(c.offset, pos);
    EXPECT_GT(c.size, 0u);
    pos = c.end();
  }
  EXPECT_EQ(pos, data.size());
}

TEST(SerialCdc, EmptyInput) {
  const auto config = small_config();
  const RabinTables tables(config.window);
  EXPECT_TRUE(find_raw_boundaries(tables, config, {}).empty());
  EXPECT_TRUE(chunk_serial(tables, config, {}).empty());
}

TEST(SerialCdc, InputSmallerThanWindow) {
  const auto config = small_config();
  const RabinTables tables(config.window);
  const auto data = random_bytes(config.window - 1, 25);
  EXPECT_TRUE(find_raw_boundaries(tables, config, as_bytes(data)).empty());
  const auto chunks = chunk_serial(tables, config, as_bytes(data));
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0].size, data.size());
}

TEST(SerialCdc, LocalEditOnlyMovesNearbyBoundaries) {
  // The content-defined property (why CDC beats fixed-size for dedup): an
  // edit changes boundaries only within ~window+chunk of the edit site.
  const auto config = small_config();
  const RabinTables tables(config.window);
  auto data = random_bytes(256 * 1024, 26);
  const auto before = find_raw_boundaries(tables, config, as_bytes(data));
  const std::size_t edit_at = 128 * 1024;
  for (std::size_t i = 0; i < 64; ++i) data[edit_at + i] ^= 0x5a;
  const auto after = find_raw_boundaries(tables, config, as_bytes(data));
  // Boundaries well before and well after the edit are unchanged.
  for (std::uint64_t b : before) {
    if (b + 4096 < edit_at) {
      EXPECT_TRUE(std::binary_search(after.begin(), after.end(), b));
    }
  }
  for (std::uint64_t b : after) {
    if (b > edit_at + 64 + config.window + 4096) {
      EXPECT_TRUE(std::binary_search(before.begin(), before.end(), b));
    }
  }
}

TEST(StreamScanner, FeedGranularityInvariant) {
  // Feeding byte-by-byte, in odd-sized pieces, or all at once must emit the
  // same boundaries.
  const auto config = small_config();
  const RabinTables tables(config.window);
  const auto data = random_bytes(16 * 1024, 27);
  const auto whole = find_raw_boundaries(tables, config, as_bytes(data));

  for (std::size_t piece : {std::size_t{1}, std::size_t{3}, std::size_t{7},
                            std::size_t{100}, std::size_t{4096}}) {
    std::vector<std::uint64_t> got;
    StreamScanner scanner(tables, config);
    std::size_t pos = 0;
    while (pos < data.size()) {
      const std::size_t len = std::min(piece, data.size() - pos);
      scanner.feed(ByteSpan(data).subspan(pos, len),
                   [&](std::uint64_t e, std::uint64_t) { got.push_back(e); });
      pos += len;
    }
    EXPECT_EQ(got, whole) << "piece size " << piece;
  }
}

TEST(StreamScanner, WarmupSuppressesEarlyBoundaries) {
  const auto config = small_config();
  const RabinTables tables(config.window);
  const auto data = random_bytes(8 * 1024, 28);
  const auto all = find_raw_boundaries(tables, config, as_bytes(data));
  ASSERT_GT(all.size(), 2u);
  const std::uint64_t cut = all[all.size() / 2];
  std::vector<std::uint64_t> got;
  scan_raw(tables, config, as_bytes(data), /*warmup=*/cut, /*base=*/0,
           [&](std::uint64_t e, std::uint64_t) { got.push_back(e); });
  for (std::uint64_t e : got) EXPECT_GT(e, cut);
  // Everything after the cut is still found.
  std::vector<std::uint64_t> expected;
  for (std::uint64_t e : all) {
    if (e > cut) expected.push_back(e);
  }
  EXPECT_EQ(got, expected);
}

// --- Fixed-size chunking ---

TEST(FixedChunking, ExactMultiple) {
  const auto chunks = chunk_fixed(std::uint64_t{100}, std::uint64_t{25});
  ASSERT_EQ(chunks.size(), 4u);
  for (const auto& c : chunks) EXPECT_EQ(c.size, 25u);
}

TEST(FixedChunking, Remainder) {
  const auto chunks = chunk_fixed(std::uint64_t{100}, std::uint64_t{30});
  ASSERT_EQ(chunks.size(), 4u);
  EXPECT_EQ(chunks.back().size, 10u);
}

TEST(FixedChunking, RejectsZeroSize) {
  EXPECT_THROW(chunk_fixed(std::uint64_t{10}, std::uint64_t{0}),
               std::invalid_argument);
}

TEST(FixedChunking, InsertionShiftsAllLaterChunks) {
  // The failure mode content-defined chunking fixes: one inserted byte
  // changes every chunk after the insertion point.
  auto data = random_bytes(64 * 1024, 30);
  ByteVec edited(data);
  edited.insert(edited.begin() + 1000, std::uint8_t{0x77});
  const auto a = chunk_fixed(as_bytes(data), 4096);
  const auto b = chunk_fixed(as_bytes(edited), 4096);
  int identical_content = 0;
  for (std::size_t i = 1; i < std::min(a.size(), b.size()); ++i) {
    const auto sa = ByteSpan(data).subspan(a[i].offset, a[i].size);
    const auto sb = ByteSpan(edited).subspan(b[i].offset, b[i].size);
    identical_content += std::equal(sa.begin(), sa.end(), sb.begin(), sb.end());
  }
  EXPECT_EQ(identical_content, 0);
}

// --- SampleByte ---

TEST(SampleByte, BoundariesCoverStream) {
  SampleByteChunker sb(256, 16, 99);
  const auto data = random_bytes(64 * 1024, 31);
  const auto chunks = sb.chunk(as_bytes(data));
  std::uint64_t pos = 0;
  for (const auto& c : chunks) {
    EXPECT_EQ(c.offset, pos);
    pos = c.end();
  }
  EXPECT_EQ(pos, data.size());
}

TEST(SampleByte, RespectsSkip) {
  SampleByteChunker sb(256, 16, 99);
  const auto data = random_bytes(64 * 1024, 32);
  const auto bounds = sb.boundaries(as_bytes(data));
  for (std::size_t i = 1; i + 1 < bounds.size(); ++i) {
    EXPECT_GT(bounds[i] - bounds[i - 1], sb.skip()) << "at " << i;
  }
}

TEST(SampleByte, RejectsBadArguments) {
  EXPECT_THROW(SampleByteChunker(1, 16, 1), std::invalid_argument);
  EXPECT_THROW(SampleByteChunker(256, 0, 1), std::invalid_argument);
  EXPECT_THROW(SampleByteChunker(256, 257, 1), std::invalid_argument);
}

TEST(SampleByte, EmptyInput) {
  SampleByteChunker sb(256, 16, 99);
  EXPECT_TRUE(sb.chunk({}).empty());
}

// --- Allocators ---

TEST(ArenaAllocator, AllocationsDoNotOverlap) {
  ArenaAllocator arena(1024);
  std::vector<void*> ptrs;
  for (int i = 0; i < 100; ++i) ptrs.push_back(arena.allocate(100));
  std::sort(ptrs.begin(), ptrs.end());
  for (std::size_t i = 1; i < ptrs.size(); ++i) {
    EXPECT_GE(static_cast<char*>(ptrs[i]) - static_cast<char*>(ptrs[i - 1]),
              100);
  }
}

TEST(ArenaAllocator, OversizedAllocation) {
  ArenaAllocator arena(128);
  void* p = arena.allocate(4096);
  EXPECT_NE(p, nullptr);
}

TEST(ArenaAllocator, ResetReusesSlabs) {
  ArenaAllocator arena(1024);
  for (int i = 0; i < 50; ++i) arena.allocate(100);
  const auto slabs = arena.slabs_allocated();
  arena.reset();
  for (int i = 0; i < 50; ++i) arena.allocate(100);
  EXPECT_EQ(arena.slabs_allocated(), slabs);
}

TEST(ArenaAllocator, RejectsZero) {
  ArenaAllocator arena;
  EXPECT_THROW(arena.allocate(0), std::invalid_argument);
  EXPECT_THROW(ArenaAllocator(0), std::invalid_argument);
}

TEST(LockedHeapAllocator, ConcurrentAllocationsAreDistinct) {
  LockedHeapAllocator heap;
  std::vector<std::thread> threads;
  std::array<std::vector<void*>, 4> ptrs;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&heap, &ptrs, t] {
      for (int i = 0; i < 200; ++i) {
        ptrs[static_cast<std::size_t>(t)].push_back(heap.allocate(64));
      }
    });
  }
  for (auto& th : threads) th.join();
  std::set<void*> all;
  for (const auto& v : ptrs) all.insert(v.begin(), v.end());
  EXPECT_EQ(all.size(), 800u);
}

// --- Parallel chunker: equivalence with serial, across thread counts ---

class ParallelEquivalence
    : public ::testing::TestWithParam<std::tuple<std::size_t, AllocMode>> {};

TEST_P(ParallelEquivalence, MatchesSerial) {
  const auto [threads, mode] = GetParam();
  const auto config = small_config();
  const RabinTables tables(config.window);
  const auto data = random_bytes(512 * 1024, 40 + threads);
  const auto serial = chunk_serial(tables, config, as_bytes(data));
  ParallelChunker parallel(tables, config, threads, mode);
  EXPECT_EQ(parallel.chunk(as_bytes(data)), serial);
}

INSTANTIATE_TEST_SUITE_P(
    ThreadsAndAllocators, ParallelEquivalence,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 8, 16),
                       ::testing::Values(AllocMode::kThreadArena,
                                         AllocMode::kSharedLockedHeap)));

TEST(ParallelChunker, MatchesSerialWithMinMax) {
  ChunkerConfig config = small_config();
  config.min_size = 128;
  config.max_size = 1024;
  const RabinTables tables(config.window);
  const auto data = random_bytes(256 * 1024, 41);
  const auto serial = chunk_serial(tables, config, as_bytes(data));
  ParallelChunker parallel(tables, config, 7);
  EXPECT_EQ(parallel.chunk(as_bytes(data)), serial);
}

TEST(ParallelChunker, TinyInputs) {
  const auto config = small_config();
  const RabinTables tables(config.window);
  ParallelChunker parallel(tables, config, 8);
  for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{15},
                        std::size_t{16}, std::size_t{17}, std::size_t{100}}) {
    const auto data = random_bytes(n, 50 + n);
    EXPECT_EQ(parallel.chunk(as_bytes(data)),
              chunk_serial(tables, config, as_bytes(data)))
        << "size " << n;
  }
}

TEST(ParallelChunker, WindowMismatchThrows) {
  const RabinTables tables(16);
  ChunkerConfig config = small_config();
  config.window = 32;
  EXPECT_THROW(ParallelChunker(tables, config, 2), std::invalid_argument);
}

TEST(ParallelChunker, StatsPopulated) {
  const auto config = small_config();
  const RabinTables tables(config.window);
  ParallelChunker parallel(tables, config, 4);
  const auto data = random_bytes(128 * 1024, 42);
  const auto chunks = parallel.chunk(as_bytes(data));
  EXPECT_EQ(parallel.stats().bytes_scanned, data.size());
  EXPECT_GE(parallel.stats().raw_boundaries + 1, chunks.size());
  EXPECT_GT(parallel.stats().scan_seconds, 0.0);
}

// Dedup-efficiency comparison: CDC rediscovers shifted content, fixed-size
// does not, SampleByte sits in between for small chunks.
TEST(ChunkerComparison, CdcSurvivesInsertionFixedDoesNot) {
  const auto config = small_config();
  const RabinTables tables(config.window);
  auto data = random_bytes(512 * 1024, 43);
  ByteVec edited(data);
  edited.insert(edited.begin() + 100000, std::uint8_t{0xee});

  auto content_hashes = [&](const std::vector<Chunk>& chunks, ByteSpan src) {
    std::set<std::uint64_t> hashes;
    for (const auto& c : chunks) {
      hashes.insert(tables.fingerprint(src.subspan(c.offset, c.size)));
    }
    return hashes;
  };

  const auto cdc_a = content_hashes(chunk_serial(tables, config, as_bytes(data)),
                                    as_bytes(data));
  const auto cdc_b = content_hashes(
      chunk_serial(tables, config, as_bytes(edited)), as_bytes(edited));
  std::size_t cdc_common = 0;
  for (auto h : cdc_b) cdc_common += cdc_a.contains(h);

  const auto fx_a =
      content_hashes(chunk_fixed(as_bytes(data), 256), as_bytes(data));
  const auto fx_b =
      content_hashes(chunk_fixed(as_bytes(edited), 256), as_bytes(edited));
  std::size_t fx_common = 0;
  for (auto h : fx_b) fx_common += fx_a.contains(h);

  // CDC should retain the overwhelming majority of chunks; fixed-size only
  // the prefix before the insertion.
  EXPECT_GT(static_cast<double>(cdc_common) / static_cast<double>(cdc_b.size()),
            0.95);
  EXPECT_LT(static_cast<double>(fx_common) / static_cast<double>(fx_b.size()),
            0.35);
}

// --- Cross-backend equivalence suite ---
//
// StreamScanner (scan_raw) is the reference oracle; every backend — the
// scan_buffer fast path, chunk_serial/find_raw_boundaries, the parallel
// chunker under both allocation modes and several thread counts, and both
// GPU kernel flavors — must reproduce its raw boundary stream bit for bit
// across window sizes, masks, and edge-case input lengths.

std::vector<std::uint64_t> oracle_raw(const RabinTables& tables,
                                      const ChunkerConfig& config,
                                      ByteSpan data) {
  std::vector<std::uint64_t> ends;
  scan_raw(tables, config, data, /*warmup=*/0, /*base=*/0,
           [&](std::uint64_t end, std::uint64_t) { ends.push_back(end); });
  return ends;
}

std::vector<std::uint64_t> buffer_raw(const RabinTables& tables,
                                      const ChunkerConfig& config,
                                      ByteSpan data) {
  std::vector<std::uint64_t> ends;
  scan_buffer(tables, config, data, /*warmup=*/0, /*base=*/0,
              [&](std::uint64_t end, std::uint64_t) { ends.push_back(end); });
  return ends;
}

struct EquivCase {
  std::size_t window;
  unsigned mask_bits;
  std::uint64_t marker;
};

class CrossBackendEquivalence : public ::testing::TestWithParam<EquivCase> {};

TEST_P(CrossBackendEquivalence, RawBoundariesBitIdentical) {
  const auto [window, mask_bits, marker] = GetParam();
  ChunkerConfig config;
  config.window = window;
  config.mask_bits = mask_bits;
  config.marker = marker;
  const RabinTables tables(window);

  // Edge cases: empty, sub-window, exact window, exact window multiples,
  // a +1 straggler, and sizes large enough for many regions. 600000 exceeds
  // the two-lane threshold of the buffer fast path.
  const std::size_t sizes[] = {0,          1,          window - 1, window,
                               2 * window, 8 * window, 8 * window + 1,
                               65536,      600000};
  std::uint64_t seed = 1000 + window;
  for (const std::size_t size : sizes) {
    const auto data = random_bytes(size, seed++);
    const ByteSpan span = as_bytes(data);
    const auto oracle = oracle_raw(tables, config, span);

    EXPECT_EQ(buffer_raw(tables, config, span), oracle)
        << "scan_buffer, size " << size;
    EXPECT_EQ(find_raw_boundaries(tables, config, span), oracle)
        << "find_raw_boundaries, size " << size;

    for (const std::size_t threads : {std::size_t{1}, std::size_t{3}}) {
      for (const auto mode :
           {AllocMode::kSharedLockedHeap, AllocMode::kThreadArena}) {
        ParallelChunker chunker(tables, config, threads, mode);
        EXPECT_EQ(chunker.raw_boundaries(span), oracle)
            << "parallel, size " << size << ", threads " << threads
            << ", arena " << (mode == AllocMode::kThreadArena);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    WindowsAndMasks, CrossBackendEquivalence,
    ::testing::Values(EquivCase{16, 8, 0x42}, EquivCase{16, 11, 0x2a5},
                      EquivCase{48, 8, 0x42}, EquivCase{48, 11, 0x2a5},
                      EquivCase{64, 8, 0x42}, EquivCase{64, 11, 0x2a5}));

TEST_P(CrossBackendEquivalence, GpuKernelsBitIdentical) {
  const auto [window, mask_bits, marker] = GetParam();
  ChunkerConfig config;
  config.window = window;
  config.mask_bits = mask_bits;
  config.marker = marker;
  const RabinTables tables(window);

  gpu::Device device(gpu::DeviceSpec{}, 2);
  std::uint64_t seed = 2000 + window;
  for (const std::size_t size :
       {window, 8 * window + 3, std::size_t{100000}}) {
    const auto data = random_bytes(size, seed++);
    const ByteSpan span = as_bytes(data);
    const auto oracle = oracle_raw(tables, config, span);
    auto buf = device.alloc(data.size());
    device.memcpy_h2d(buf, 0, span, gpu::HostMemKind::kPinned);
    for (const bool coalesced : {false, true}) {
      core::KernelParams params;
      params.blocks = 4;
      params.threads_per_block = 16;
      params.coalesced = coalesced;
      const auto result = core::chunk_on_gpu(device, buf, data.size(), 0, 0,
                                             tables, config, params);
      EXPECT_EQ(result.boundaries, oracle)
          << "gpu coalesced=" << coalesced << ", size " << size;
    }
    // Tiny per-thread stage slice (shared/tpb below halo + 64): the
    // coalesced kernel's tile-overflow fallback must still be exact.
    core::KernelParams tiny_stage;
    tiny_stage.blocks = 1;
    tiny_stage.threads_per_block = 768;
    tiny_stage.coalesced = true;
    const auto overflow = core::chunk_on_gpu(device, buf, data.size(), 0, 0,
                                             tables, config, tiny_stage);
    EXPECT_EQ(overflow.boundaries, oracle) << "tiny stage, size " << size;
  }
}

TEST_P(CrossBackendEquivalence, ChunkListsBitIdentical) {
  const auto [window, mask_bits, marker] = GetParam();
  ChunkerConfig config;
  config.window = window;
  config.mask_bits = mask_bits;
  config.marker = marker;
  config.min_size = std::uint64_t{1} << (mask_bits - 1);
  config.max_size = std::uint64_t{1} << (mask_bits + 2);
  const RabinTables tables(window);
  const auto data = random_bytes(300000, 77 + window);
  const ByteSpan span = as_bytes(data);

  const auto expected = chunk_serial(tables, config, span);
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    for (const auto mode :
         {AllocMode::kSharedLockedHeap, AllocMode::kThreadArena}) {
      ParallelChunker chunker(tables, config, threads, mode);
      EXPECT_EQ(chunker.chunk(span), expected)
          << "threads " << threads << ", arena "
          << (mode == AllocMode::kThreadArena);
    }
  }
}

TEST(ScanBuffer, WarmupAndBaseMatchStreamScanner) {
  // The warmup/base contract used by parallel regions and GPU tiles: a scan
  // over [begin - warm, end) with `warm` warmup bytes must emit exactly the
  // oracle boundaries that fall in (begin, end].
  ChunkerConfig config;
  config.window = 48;
  config.mask_bits = 8;
  config.marker = 0x42;
  const RabinTables tables(config.window);
  const auto data = random_bytes(50000, 91);
  const ByteSpan span = as_bytes(data);
  const auto oracle = oracle_raw(tables, config, span);
  for (const std::size_t begin : {std::size_t{0}, std::size_t{17},
                                  std::size_t{1000}, std::size_t{49999}}) {
    const std::size_t end = std::min<std::size_t>(begin + 20000, span.size());
    const std::size_t warm = std::min(begin, config.window - 1);
    std::vector<std::uint64_t> got;
    scan_buffer(tables, config, span.subspan(begin - warm, end - begin + warm),
                warm, begin - warm,
                [&](std::uint64_t e, std::uint64_t) { got.push_back(e); });
    std::vector<std::uint64_t> expected;
    for (auto e : oracle) {
      if (e > begin && e <= end) expected.push_back(e);
    }
    EXPECT_EQ(got, expected) << "begin " << begin;
  }
}

TEST(ScanBuffer, TwoLaneWarmupMatchesStreamScanner) {
  // Spans past the two-lane threshold with nonzero warmup: the production
  // shape of every parallel region past the first on multi-megabyte inputs
  // (region >= 256 KiB, warm = w-1). Exercises scan_two_lanes' prologue
  // guards and warmup skip loops.
  ChunkerConfig config;
  config.window = 48;
  config.mask_bits = 9;
  config.marker = 0x5a;
  const RabinTables tables(config.window);
  const auto data = random_bytes(900000, 95);
  const ByteSpan span = as_bytes(data);
  const auto oracle = oracle_raw(tables, config, span);
  for (const std::size_t begin :
       {std::size_t{0}, std::size_t{13}, std::size_t{300000}}) {
    const std::size_t end = std::min<std::size_t>(begin + 550000, span.size());
    const std::size_t warm = std::min(begin, config.window - 1);
    std::vector<std::uint64_t> got;
    scan_buffer(tables, config, span.subspan(begin - warm, end - begin + warm),
                warm, begin - warm,
                [&](std::uint64_t e, std::uint64_t) { got.push_back(e); });
    std::vector<std::uint64_t> expected;
    std::vector<std::uint64_t> reference;
    scan_raw(tables, config, span.subspan(begin - warm, end - begin + warm),
             warm, begin - warm,
             [&](std::uint64_t e, std::uint64_t) { reference.push_back(e); });
    for (auto e : oracle) {
      if (e > begin && e <= end) expected.push_back(e);
    }
    EXPECT_EQ(got, expected) << "begin " << begin;
    EXPECT_EQ(got, reference) << "begin " << begin;
  }
}

TEST(ScanBuffer, ParallelRegionsAboveTwoLaneThreshold) {
  // Multi-thread run where every region runs two-lane with warm = w-1.
  ChunkerConfig config;
  config.window = 48;
  config.mask_bits = 12;
  config.marker = 0x123;
  const RabinTables tables(config.window);
  const auto data = random_bytes(1500000, 96);
  const ByteSpan span = as_bytes(data);
  const auto oracle = oracle_raw(tables, config, span);
  for (const std::size_t threads : {std::size_t{2}, std::size_t{4}}) {
    ParallelChunker chunker(tables, config, threads, AllocMode::kThreadArena);
    EXPECT_EQ(chunker.raw_boundaries(span), oracle) << "threads " << threads;
  }
}

TEST(ScanBuffer, EmitsWindowFingerprints) {
  // The fp handed to emit must be the true fingerprint of the window ending
  // at the boundary (the hop-table decomposition must not change it).
  ChunkerConfig config;
  config.window = 32;
  config.mask_bits = 7;
  config.marker = 0x15;
  const RabinTables tables(config.window);
  const auto data = random_bytes(100000, 92);
  std::size_t checked = 0;
  scan_buffer(tables, config, as_bytes(data), 0, 0,
              [&](std::uint64_t end, std::uint64_t fp) {
                const auto window = ByteSpan(as_bytes(data))
                                        .subspan(end - config.window,
                                                 config.window);
                EXPECT_EQ(fp, tables.fingerprint(window)) << "end " << end;
                ++checked;
              });
  EXPECT_GT(checked, 100u);
}

TEST(ScanBuffer, RejectsOversizedTableWindow) {
  const RabinTables tables(kMaxWindow + 1);
  ChunkerConfig config;  // defaults are valid
  const auto data = random_bytes(1024, 93);
  EXPECT_THROW(scan_buffer(tables, config, as_bytes(data), 0, 0,
                           [](std::uint64_t, std::uint64_t) {}),
               std::invalid_argument);
}

TEST(StreamScanner, RejectsOversizedTableWindow) {
  // The ring buffer is a fixed stack array of kMaxWindow bytes; constructing
  // with larger tables used to silently corrupt the stack.
  const RabinTables tables(kMaxWindow + 1);
  ChunkerConfig config;
  EXPECT_THROW(StreamScanner(tables, config), std::invalid_argument);
}

}  // namespace
}  // namespace shredder::chunking
