// Fault-injection suite for the windowed, ack-clocked backup transport
// (backup/transport.h): differential schedules of loss, reordering,
// duplication, delay and agent stalls must never change a delivered byte,
// only the accounted recovery work. Also the typed-ProtocolError negative
// tests for malformed frames and the LinkStats accounting identities.
#include <gtest/gtest.h>

#include <string>
#include <unordered_map>
#include <vector>

#include "backup/agent.h"
#include "backup/backup_server.h"
#include "backup/image.h"
#include "backup/link.h"
#include "backup/transport.h"
#include "common/rng.h"
#include "service/service.h"

namespace shredder::backup {
namespace {

// A synthetic multi-batch backup stream with pseudo-random duplicate runs:
// the batches a server would ship, plus the bytes the agent must recreate.
struct Stream {
  std::vector<BackupAgent::ExtentBatch> batches;
  ByteVec image;
  std::unordered_map<dedup::ChunkDigest, ByteVec, dedup::ChunkDigestHash>
      chunks;  // every unique payload, keyed by digest (the repair source)
};

Stream make_stream(std::uint64_t seed, int n_batches, int chunks_per_batch) {
  SplitMix64 rng(seed);
  Stream s;
  std::vector<dedup::ChunkDigest> shipped;  // uniques in ship order
  for (int b = 0; b < n_batches; ++b) {
    BackupAgent::ExtentBatch batch;
    for (int c = 0; c < chunks_per_batch; ++c) {
      const bool dup = !shipped.empty() && rng.next_below(3) == 0;
      dedup::ChunkDigest digest;
      const ByteVec* payload = nullptr;
      bool unique = false;
      if (dup) {
        digest = shipped[rng.next_below(shipped.size())];
        payload = &s.chunks.at(digest);
      } else {
        ByteVec bytes = random_bytes(
            512 + rng.next_below(2048),
            seed * 7919 + static_cast<std::uint64_t>(b) * 131 + c);
        digest = dedup::ChunkHasher::hash(as_bytes(bytes));
        auto [it, inserted] = s.chunks.emplace(digest, std::move(bytes));
        if (inserted) shipped.push_back(digest);
        payload = &it->second;
        unique = inserted;
      }
      const auto idx = static_cast<std::uint32_t>(batch.digests.size());
      batch.digests.push_back(digest);
      if (batch.extents.empty() || batch.extents.back().unique != unique) {
        batch.extents.push_back({idx, 1, unique});
      } else {
        ++batch.extents.back().count;
      }
      if (unique) {
        batch.payload_sizes.push_back(
            static_cast<std::uint32_t>(payload->size()));
        batch.payload.insert(batch.payload.end(), payload->begin(),
                             payload->end());
      }
      s.image.insert(s.image.end(), payload->begin(), payload->end());
    }
    s.batches.push_back(std::move(batch));
  }
  return s;
}

RepairSource repair_from(const Stream& s) {
  return [&s](const dedup::ChunkDigest& digest) -> std::optional<ByteVec> {
    const auto it = s.chunks.find(digest);
    if (it == s.chunks.end()) return std::nullopt;
    return it->second;
  };
}

TransportStats ship(BackupAgent& agent, const Stream& s, TransportConfig cfg,
                    bool with_repair = true) {
  Transport t(agent, cfg, with_repair ? repair_from(s) : RepairSource{});
  t.begin_image("img");
  for (const auto& batch : s.batches) t.send_batch("img", batch);
  t.end_image("img");
  t.flush();
  return t.stats();
}

// frames_sent must decompose exactly into the logical stream plus the
// recovery traffic — nothing double-charged, nothing unaccounted.
void expect_accounting(const TransportStats& ts) {
  EXPECT_EQ(ts.frames_sent,
            ts.link.messages + ts.retransmits + ts.repair_frames + ts.probes);
  EXPECT_GT(ts.acks_sent, 0u);
  EXPECT_GT(ts.virtual_seconds, 0.0);
  EXPECT_GE(ts.virtual_seconds, ts.link.virtual_seconds);
}

// --- differential fault matrix --------------------------------------------

TEST(Transport, LosslessMatchesAgentLinkStream) {
  const Stream s = make_stream(11, 6, 24);
  // Reference: the fire-and-forget link.
  BackupAgent ref_agent;
  AgentLink link(ref_agent, LinkCostModel{});
  link.begin_image("img");
  for (const auto& batch : s.batches) link.send_batch("img", batch);
  EXPECT_EQ(ref_agent.recreate("img"), s.image);

  BackupAgent agent;
  const TransportStats ts = ship(agent, s, TransportConfig{});
  EXPECT_EQ(agent.recreate("img"), s.image);
  EXPECT_TRUE(agent.image_sealed("img"));
  expect_accounting(ts);
  EXPECT_EQ(ts.retransmits, 0u);
  EXPECT_EQ(ts.rto_fires, 0u);
  EXPECT_EQ(ts.payloads_stripped, 0u);
  EXPECT_EQ(ts.repair_requests, 0u);
  EXPECT_EQ(ts.frames_dropped, 0u);
  EXPECT_FALSE(ts.degraded);
  // Both sides agree on the stream contents.
  EXPECT_EQ(agent.unique_chunks(), ref_agent.unique_chunks());
  EXPECT_EQ(agent.unique_bytes(), ref_agent.unique_bytes());
  // The logical link accounting covers every chunk exactly once, and the
  // makespan of the serialized simulation stays within the final handshake
  // of the fire-and-forget serialized time.
  EXPECT_EQ(ts.link.chunks, 6u * 24u);
  EXPECT_NEAR(ts.virtual_seconds, ts.link.virtual_seconds, 1e-3);
}

TEST(Transport, FaultMatrixDeliversBitIdenticalImages) {
  const Stream s = make_stream(23, 8, 32);
  struct Schedule {
    const char* name;
    FaultModel faults;
  };
  std::vector<Schedule> schedules;
  {
    FaultModel f;
    f.drop = 0.05;
    schedules.push_back({"loss5", f});
  }
  {
    FaultModel f;
    f.drop = 0.20;
    schedules.push_back({"loss20", f});
  }
  {
    FaultModel f;
    f.reorder = 0.5;
    f.reorder_jitter_s = 500e-6;
    schedules.push_back({"reorder", f});
  }
  {
    FaultModel f;
    f.duplicate = 0.3;
    schedules.push_back({"duplicate", f});
  }
  {
    FaultModel f;
    f.delay = 0.1;
    schedules.push_back({"delay", f});
  }
  {
    FaultModel f;
    f.drop = 0.10;
    f.reorder = 0.25;
    f.duplicate = 0.10;
    f.delay = 0.05;
    f.stall = 0.10;
    schedules.push_back({"combined", f});
  }

  // Small frames force segmentation, so every schedule sees enough wire
  // messages (~100 data frames) for its fault rate to actually bite.
  TransportConfig base;
  base.max_frame_bytes = 4 * 1024;
  BackupAgent ref_agent;
  const TransportStats ref = ship(ref_agent, s, base);
  ASSERT_EQ(ref_agent.recreate("img"), s.image);

  for (const auto& schedule : schedules) {
    for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
      TransportConfig cfg = base;
      cfg.faults = schedule.faults;
      cfg.faults.seed = seed;
      BackupAgent agent;
      const TransportStats ts = ship(agent, s, cfg);
      SCOPED_TRACE(std::string(schedule.name) + "/seed" +
                   std::to_string(seed));
      // The one invariant that matters: identical delivered bytes.
      EXPECT_EQ(agent.recreate("img"), s.image);
      EXPECT_TRUE(agent.image_sealed("img"));
      EXPECT_EQ(agent.pending_repairs(), 0u);
      expect_accounting(ts);
      // No double-charge: the logical stream accounting is byte-identical
      // to the lossless run no matter how much recovery traffic flowed.
      EXPECT_EQ(ts.link.messages, ref.link.messages);
      EXPECT_EQ(ts.link.extents, ref.link.extents);
      EXPECT_EQ(ts.link.chunks, ref.link.chunks);
      EXPECT_EQ(ts.link.wire_bytes, ref.link.wire_bytes);
      EXPECT_EQ(ts.link.payload_bytes, ref.link.payload_bytes);
      if (schedule.faults.drop > 0) {
        EXPECT_GT(ts.frames_dropped, 0u);
        EXPECT_GT(ts.retransmits, 0u);
        EXPECT_GT(ts.virtual_seconds, ref.virtual_seconds);
      }
      if (schedule.faults.duplicate > 0) {
        EXPECT_GT(ts.frames_duplicated, 0u);
        EXPECT_GT(ts.duplicate_frames, 0u);
      }
      if (schedule.faults.reorder > 0) {
        EXPECT_GT(ts.frames_reordered, 0u);
      }
    }
  }
}

TEST(Transport, DeterministicUnderSeed) {
  const Stream s = make_stream(31, 5, 20);
  TransportConfig cfg;
  cfg.faults.drop = 0.15;
  cfg.faults.reorder = 0.2;
  cfg.faults.seed = 77;
  BackupAgent a1, a2;
  const TransportStats t1 = ship(a1, s, cfg);
  const TransportStats t2 = ship(a2, s, cfg);
  EXPECT_EQ(t1.frames_sent, t2.frames_sent);
  EXPECT_EQ(t1.retransmits, t2.retransmits);
  EXPECT_EQ(t1.frames_dropped, t2.frames_dropped);
  EXPECT_EQ(t1.acks_sent, t2.acks_sent);
  EXPECT_DOUBLE_EQ(t1.virtual_seconds, t2.virtual_seconds);
}

// --- flow control ----------------------------------------------------------

TEST(Transport, SlowAgentBackpressuresSender) {
  const Stream s = make_stream(41, 8, 24);
  TransportConfig cfg;
  cfg.recv_frames = 2;
  cfg.window_frames = 8;
  cfg.agent_apply_bw = 5e6;  // ~13 ms to apply a 64 KiB frame
  BackupAgent agent;
  const TransportStats ts = ship(agent, s, cfg);
  EXPECT_EQ(agent.recreate("img"), s.image);
  expect_accounting(ts);
  // The sender spent most of the run blocked on the agent's window, and the
  // health heuristic flags the agent as degraded.
  EXPECT_GT(ts.window_stalls, 0u);
  EXPECT_GT(ts.window_stall_seconds, 0.5 * ts.virtual_seconds);
  EXPECT_TRUE(ts.degraded);
  // The makespan is apply-bound, far beyond the wire-limited time.
  EXPECT_GT(ts.virtual_seconds, 2.0 * ts.link.virtual_seconds);
}

TEST(Transport, ZeroWindowPersistProbes) {
  const Stream s = make_stream(43, 6, 16);
  TransportConfig cfg;
  cfg.recv_frames = 1;  // one receive buffer: window shuts after every frame
  cfg.agent_apply_bw = 2e6;
  BackupAgent agent;
  const TransportStats ts = ship(agent, s, cfg);
  EXPECT_EQ(agent.recreate("img"), s.image);
  expect_accounting(ts);
  EXPECT_GT(ts.probes, 0u);
  EXPECT_GT(ts.window_stall_seconds, 0.0);
}

TEST(Transport, BoundedReorderBufferDropsHonestly) {
  const Stream s = make_stream(47, 8, 24);
  TransportConfig cfg;
  cfg.reorder_slots = 2;
  cfg.faults.reorder = 0.8;
  cfg.faults.reorder_jitter_s = 3e-3;  // far beyond a frame service time
  cfg.faults.seed = 5;
  BackupAgent agent;
  const TransportStats ts = ship(agent, s, cfg);
  EXPECT_EQ(agent.recreate("img"), s.image);
  expect_accounting(ts);
  EXPECT_GT(ts.out_of_order_frames, 0u);
  // With two reassembly slots under heavy reordering some arrivals found no
  // buffer and were dropped — and recovered by retransmission.
  EXPECT_GT(ts.reassembly_drops, 0u);
  EXPECT_GT(ts.retransmits, 0u);
}

// --- repair protocol -------------------------------------------------------

TEST(Transport, StrippedPayloadsRecoverViaRepair) {
  const Stream s = make_stream(53, 8, 24);
  TransportConfig cfg;
  cfg.max_payload_retx = 0;  // first payload loss strips the frame
  cfg.faults.drop = 0.30;
  cfg.faults.seed = 9;
  BackupAgent agent;
  const TransportStats ts = ship(agent, s, cfg);
  EXPECT_EQ(agent.recreate("img"), s.image);
  EXPECT_EQ(agent.pending_repairs(), 0u);
  expect_accounting(ts);
  EXPECT_GT(ts.payloads_stripped, 0u);
  EXPECT_GT(ts.repair_requests, 0u);
  EXPECT_GT(ts.repair_frames, 0u);
  EXPECT_GT(ts.repair_digests_requested, 0u);
  EXPECT_GT(ts.repair_payload_bytes, 0u);
}

TEST(Transport, NoRepairSourceNeverStrips) {
  const Stream s = make_stream(59, 6, 16);
  TransportConfig cfg;
  cfg.max_payload_retx = 0;
  cfg.faults.drop = 0.25;
  cfg.faults.seed = 3;
  BackupAgent agent;
  const TransportStats ts = ship(agent, s, cfg, /*with_repair=*/false);
  // Without a repair source the payload must keep retransmitting — stripping
  // would lose bytes for good.
  EXPECT_EQ(agent.recreate("img"), s.image);
  expect_accounting(ts);
  EXPECT_EQ(ts.payloads_stripped, 0u);
  EXPECT_EQ(ts.repair_requests, 0u);
  EXPECT_GT(ts.retransmits, 0u);
}

TEST(BackupAgent, StrippedBatchAndRepairFlow) {
  BackupAgent agent;
  agent.begin_image("img");
  const auto a = random_bytes(300, 1);
  const auto b = random_bytes(200, 2);
  const auto da = dedup::ChunkHasher::hash(as_bytes(a));
  const auto db = dedup::ChunkHasher::hash(as_bytes(b));

  BackupAgent::ExtentBatch batch;
  batch.digests = {da, db, da};  // two uniques then a pointer to the first
  batch.extents = {{0, 2, true}, {2, 1, false}};
  batch.payload_sizes = {300, 200};
  const auto missing = agent.receive_stripped("img", batch);
  ASSERT_EQ(missing.size(), 2u);
  EXPECT_EQ(missing[0], da);
  EXPECT_EQ(missing[1], db);
  EXPECT_EQ(agent.pending_repairs(), 2u);
  EXPECT_EQ(agent.missing_chunks("img"), missing);
  // Recreate is impossible while repairs are pending.
  try {
    agent.recreate("img");
    FAIL() << "expected ProtocolError";
  } catch (const ProtocolError& e) {
    EXPECT_EQ(e.violation(), ProtocolViolation::kRecipeIncomplete);
  }
  // A corrupt repair payload must not poison the store.
  try {
    agent.receive_repair(da, as_bytes(b));
    FAIL() << "expected ProtocolError";
  } catch (const ProtocolError& e) {
    EXPECT_EQ(e.violation(), ProtocolViolation::kBadRepairPayload);
  }
  EXPECT_TRUE(agent.receive_repair(da, as_bytes(a)));
  EXPECT_FALSE(agent.receive_repair(da, as_bytes(a)));  // duplicate repair
  EXPECT_TRUE(agent.receive_repair(db, as_bytes(b)));
  EXPECT_EQ(agent.pending_repairs(), 0u);
  ByteVec expect(a);
  expect.insert(expect.end(), b.begin(), b.end());
  expect.insert(expect.end(), a.begin(), a.end());
  EXPECT_EQ(agent.recreate("img"), expect);
  // The deferred pointer reference was applied when the repair landed: all
  // three recipe entries are backed by two stored chunks.
  EXPECT_EQ(agent.unique_chunks(), 2u);
}

// --- malformed frames: typed violations ------------------------------------

ProtocolViolation catch_violation(const std::function<void()>& op) {
  try {
    op();
  } catch (const ProtocolError& e) {
    return e.violation();
  }
  ADD_FAILURE() << "expected ProtocolError";
  return ProtocolViolation::kUnknownImage;
}

TEST(BackupAgent, MalformedFramesCarryTypedViolations) {
  const auto a = random_bytes(100, 1);
  const auto digest = dedup::ChunkHasher::hash(as_bytes(a));

  BackupAgent agent;
  agent.begin_image("img");

  BackupAgent::ExtentBatch gap;
  gap.digests = {digest, digest};
  gap.extents = {{0, 1, true}};
  gap.payload_sizes = {100};
  gap.payload = a;
  EXPECT_EQ(catch_violation([&] { agent.receive_batch("img", gap); }),
            ProtocolViolation::kBadExtentPartition);

  BackupAgent::ExtentBatch overlap;
  overlap.digests = {digest, digest};
  overlap.extents = {{0, 2, true}, {1, 1, false}};
  overlap.payload_sizes = {100, 100};
  overlap.payload = a;
  EXPECT_EQ(catch_violation([&] { agent.receive_batch("img", overlap); }),
            ProtocolViolation::kBadExtentPartition);

  BackupAgent::ExtentBatch no_sizes;
  no_sizes.digests = {digest};
  no_sizes.extents = {{0, 1, true}};
  no_sizes.payload = a;
  EXPECT_EQ(catch_violation([&] { agent.receive_batch("img", no_sizes); }),
            ProtocolViolation::kPayloadCountMismatch);

  BackupAgent::ExtentBatch short_payload;
  short_payload.digests = {digest};
  short_payload.extents = {{0, 1, true}};
  short_payload.payload_sizes = {64};
  short_payload.payload = a;  // 100 bytes
  EXPECT_EQ(
      catch_violation([&] { agent.receive_batch("img", short_payload); }),
      ProtocolViolation::kPayloadBytesMismatch);

  BackupAgent::ExtentBatch empty_chunk;
  empty_chunk.digests = {digest};
  empty_chunk.extents = {{0, 1, true}};
  empty_chunk.payload_sizes = {0};
  EXPECT_EQ(catch_violation([&] { agent.receive_batch("img", empty_chunk); }),
            ProtocolViolation::kEmptyChunk);

  BackupAgent::ExtentBatch unknown_ptr;
  unknown_ptr.digests = {digest};
  unknown_ptr.extents = {{0, 1, false}};
  EXPECT_EQ(catch_violation([&] { agent.receive_batch("img", unknown_ptr); }),
            ProtocolViolation::kUnknownPointer);

  // A stripped frame carrying payload bytes is malformed.
  BackupAgent::ExtentBatch not_stripped;
  not_stripped.digests = {digest};
  not_stripped.extents = {{0, 1, true}};
  not_stripped.payload_sizes = {100};
  not_stripped.payload = a;
  EXPECT_EQ(
      catch_violation([&] { agent.receive_stripped("img", not_stripped); }),
      ProtocolViolation::kPayloadBytesMismatch);

  EXPECT_EQ(catch_violation([&] { agent.recreate("nope"); }),
            ProtocolViolation::kUnknownImage);
  // Nothing malformed was applied: the image is still empty and usable.
  BackupAgent::ExtentBatch ok;
  ok.digests = {digest};
  ok.extents = {{0, 1, true}};
  ok.payload_sizes = {100};
  ok.payload = a;
  agent.receive_batch("img", ok);
  EXPECT_EQ(agent.recreate("img"), a);
}

// --- LinkStats accounting (mixed send / send_batch) ------------------------

TEST(AgentLink, MixedTrafficAccountingIsExact) {
  const LinkCostModel costs;
  BackupAgent agent;
  AgentLink link(agent, costs);

  const auto a = random_bytes(1000, 1);
  const auto b = random_bytes(500, 2);
  const auto da = dedup::ChunkHasher::hash(as_bytes(a));
  const auto db = dedup::ChunkHasher::hash(as_bytes(b));

  std::uint64_t wire = 0;
  double seconds = 0;
  const auto msg = [&](std::size_t content) {
    wire += costs.msg_header_bytes + content;
    seconds += costs.msg_s +
               static_cast<double>(costs.msg_header_bytes + content) /
                   costs.bw;
  };

  link.begin_image("img");
  msg(3);  // "img"
  link.send("img", {da, a});
  msg(sizeof(dedup::ChunkDigest) + a.size());
  link.send("img", {da, {}});
  msg(sizeof(dedup::ChunkDigest));

  BackupAgent::ExtentBatch batch;
  batch.digests = {db, da};
  batch.extents = {{0, 1, true}, {1, 1, false}};
  batch.payload_sizes = {static_cast<std::uint32_t>(b.size())};
  batch.payload = b;
  link.send_batch("img", batch);
  msg(2 * sizeof(dedup::ChunkDigest) + 2 * costs.extent_record_bytes +
      sizeof(std::uint32_t) + b.size());

  const LinkStats& st = link.stats();
  EXPECT_EQ(st.messages, 4u);
  EXPECT_EQ(st.chunks, 4u);    // 2 per-chunk sends + 2 batch entries
  EXPECT_EQ(st.extents, 2u);   // only batch messages carry extent records
  EXPECT_EQ(st.wire_bytes, wire);
  EXPECT_EQ(st.payload_bytes, a.size() + b.size());
  EXPECT_NEAR(st.virtual_seconds, seconds, 1e-12);
  EXPECT_EQ(agent.recreate("img"), [&] {
    ByteVec e(a);
    e.insert(e.end(), a.begin(), a.end());
    e.insert(e.end(), b.begin(), b.end());
    e.insert(e.end(), a.begin(), a.end());
    return e;
  }());
}

// --- end-to-end through BackupServer ---------------------------------------

BackupServerConfig faulty_server_config() {
  BackupServerConfig cfg;
  cfg.chunker.window = 32;
  cfg.chunker.mask_bits = 11;
  cfg.chunker.marker = 0x42;
  cfg.chunker.min_size = 512;
  cfg.chunker.max_size = 8 * 1024;
  cfg.shredder.buffer_bytes = 512 * 1024;
  cfg.shredder.sim_threads = 4;
  return cfg;
}

TEST(BackupServer, FaultySnapshotsStayVerified) {
  ImageRepoConfig repo_cfg;
  repo_cfg.image_bytes = 4 * 1024 * 1024;
  repo_cfg.segment_bytes = 256 * 1024;
  repo_cfg.seed = 77;
  ImageRepository repo(repo_cfg);

  auto cfg = faulty_server_config();
  cfg.transport.faults.drop = 0.10;
  cfg.transport.faults.reorder = 0.20;
  cfg.transport.faults.duplicate = 0.05;
  cfg.transport.faults.seed = 13;
  BackupServer server(cfg);
  BackupAgent agent;
  const auto base = repo.snapshot(0.0, 1);
  const auto s1 = server.backup_image("vm1", as_bytes(base), repo, agent);
  EXPECT_TRUE(s1.verified);
  EXPECT_GT(s1.transport.retransmits, 0u);
  EXPECT_EQ(s1.transport.frames_sent,
            s1.transport.link.messages + s1.transport.retransmits +
                s1.transport.repair_frames + s1.transport.probes);
  // Recovery work made this link stage slower than its logical stream time.
  EXPECT_GT(s1.link_seconds, s1.transport.link.virtual_seconds);

  const auto snap = repo.snapshot(0.3, 2);
  const auto s2 = server.backup_image("vm2", as_bytes(snap), repo, agent);
  EXPECT_TRUE(s2.verified);
  EXPECT_GT(s2.duplicate_chunks, 0u);
  EXPECT_EQ(agent.recreate("vm2"),
            ByteVec(snap.begin(), snap.end()));
}

TEST(BackupServer, ForcedRepairPathEndToEnd) {
  ImageRepoConfig repo_cfg;
  repo_cfg.image_bytes = 2 * 1024 * 1024;
  repo_cfg.segment_bytes = 256 * 1024;
  repo_cfg.seed = 78;
  ImageRepository repo(repo_cfg);

  auto cfg = faulty_server_config();
  cfg.transport.max_payload_retx = 0;
  cfg.transport.faults.drop = 0.30;
  cfg.transport.faults.seed = 21;
  BackupServer server(cfg);
  BackupAgent agent;
  const auto base = repo.snapshot(0.0, 1);
  const auto stats = server.backup_image("vm1", as_bytes(base), repo, agent);
  EXPECT_TRUE(stats.verified);
  EXPECT_GT(stats.transport.payloads_stripped, 0u);
  EXPECT_GT(stats.transport.repair_frames, 0u);
  EXPECT_EQ(agent.pending_repairs(), 0u);
}

// --- service: per-tenant transport config + degraded-agent stats -----------

TEST(BackupServer, ServiceTenantTransportOverridesAndHealth) {
  service::ServiceConfig svc_cfg;
  svc_cfg.chunker.window = 32;
  svc_cfg.chunker.mask_bits = 11;
  svc_cfg.chunker.marker = 0x42;
  svc_cfg.chunker.min_size = 512;
  svc_cfg.chunker.max_size = 8 * 1024;
  svc_cfg.buffer_bytes = 512 * 1024;
  svc_cfg.sim_threads = 4;
  auto svc = std::make_shared<service::ChunkingService>(svc_cfg);

  auto cfg = faulty_server_config();
  cfg.backend = ChunkerBackend::kSharedService;
  cfg.service = svc;
  BackupServer server(cfg);

  // vm-lossy's agent sits behind a 25% loss wire; vm-clean keeps defaults.
  service::TenantTransport lossy;
  lossy.drop = 0.25;
  lossy.fault_seed = 42;
  svc->set_tenant_transport("vm-lossy", lossy);
  ASSERT_TRUE(svc->tenant_transport("vm-lossy").has_value());
  EXPECT_FALSE(svc->tenant_transport("vm-clean").has_value());

  ImageRepoConfig repo_cfg;
  repo_cfg.image_bytes = 2 * 1024 * 1024;
  repo_cfg.segment_bytes = 256 * 1024;
  repo_cfg.seed = 80;
  ImageRepository repo(repo_cfg);
  BackupAgent agent;
  const auto snap_a = repo.snapshot(0.0, 1);
  const auto snap_b = repo.snapshot(0.5, 2);
  const auto sl =
      server.backup_image("vm-lossy", as_bytes(snap_a), repo, agent);
  const auto sc =
      server.backup_image("vm-clean", as_bytes(snap_b), repo, agent);
  EXPECT_TRUE(sl.verified);
  EXPECT_TRUE(sc.verified);
  EXPECT_GT(sl.transport.retransmits, 0u);
  EXPECT_TRUE(sl.link_degraded);  // 25% loss is far past the 5% threshold
  EXPECT_EQ(sc.transport.retransmits, 0u);
  EXPECT_FALSE(sc.link_degraded);

  // Both snapshots reported their transport health to the service.
  const auto health = svc->transport_health();
  ASSERT_EQ(health.size(), 2u);
  EXPECT_EQ(health[0].tenant, "vm-lossy");
  EXPECT_GT(health[0].retransmits, 0u);
  EXPECT_TRUE(health[0].degraded);
  EXPECT_EQ(health[1].tenant, "vm-clean");
  EXPECT_EQ(health[1].retransmits, 0u);
  EXPECT_FALSE(health[1].degraded);

  const auto report = svc->shutdown();
  ASSERT_EQ(report.transport.size(), 2u);
  EXPECT_EQ(report.degraded_agents, 1u);
}

}  // namespace
}  // namespace shredder::backup
