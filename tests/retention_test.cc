// Snapshot-retention suite (docs/retention.md): manifest state machine and
// typed errors, log rebuild with torn tails, the delete → GC epoch/pin
// protocol over the deferred-reclaim store, crash-consistency (kill between
// manifest write, release walk, GC sweep and compaction — recovery must
// never free a referenced chunk), the entry-log compaction differential, and
// the churn workload end-to-end through BackupServer and ChunkingService.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "backup/agent.h"
#include "backup/backup_server.h"
#include "backup/image.h"
#include "common/rng.h"
#include "core/source.h"
#include "dedup/sparse_index.h"
#include "dedup/store.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "retention/manifest.h"
#include "retention/retention.h"
#include "service/service.h"

namespace shredder::retention {
namespace {

using dedup::ChunkDigest;
using dedup::ChunkStore;

ChunkDigest synth_digest(std::uint64_t seed) {
  ChunkDigest d{};
  SplitMix64 rng(seed ^ 0x5EED5EED5EED5EEDull);
  for (auto& b : d.bytes) b = static_cast<std::uint8_t>(rng.next());
  return d;
}

ByteVec payload_for(std::uint64_t seed, std::size_t n = 64) {
  ByteVec v(n);
  SplitMix64 rng(seed);
  for (auto& b : v) b = static_cast<std::uint8_t>(rng.next());
  return v;
}

RetentionViolation violation_of(const std::function<void()>& fn) {
  try {
    fn();
  } catch (const RetentionError& e) {
    return e.violation();
  }
  ADD_FAILURE() << "expected a RetentionError";
  return RetentionViolation::kUnknownImage;
}

// --- ManifestStore: state machine + typed errors ---------------------------

TEST(ManifestStore, RecordAndIntrospect) {
  ManifestStore m;
  const std::vector<ChunkDigest> digests = {synth_digest(1), synth_digest(2),
                                            synth_digest(1)};
  m.record_image("t", "img", digests);
  EXPECT_EQ(m.state("t", "img"), ImageState::kSealed);
  EXPECT_EQ(m.digests("t", "img"), digests);  // order and multiplicity kept
  EXPECT_EQ(m.images("t"), std::vector<std::string>{"img"});
  EXPECT_EQ(m.live_images(), 1u);
  EXPECT_EQ(m.deleted_images(), 0u);
  // begin + 3 chunks + seal.
  EXPECT_EQ(m.record_count(), 5u);
  EXPECT_FALSE(m.state("t", "other").has_value());
}

TEST(ManifestStore, TypedErrorsCoverEveryTransition) {
  ManifestStore m;
  m.begin_image("t", "a");
  EXPECT_EQ(violation_of([&] { m.begin_image("t", "a"); }),
            RetentionViolation::kImageExists);
  EXPECT_EQ(violation_of([&] { m.append_chunk("t", "nope", synth_digest(0)); }),
            RetentionViolation::kUnknownImage);
  EXPECT_EQ(violation_of([&] { m.seal_image("t", "nope"); }),
            RetentionViolation::kUnknownImage);
  // Deleting an unsealed image is a violation (its backup is still running).
  EXPECT_EQ(violation_of([&] { m.begin_delete("t", "a"); }),
            RetentionViolation::kImageInProgress);
  m.append_chunk("t", "a", synth_digest(0));
  m.seal_image("t", "a");
  EXPECT_EQ(violation_of([&] { m.append_chunk("t", "a", synth_digest(1)); }),
            RetentionViolation::kImageSealed);
  EXPECT_EQ(violation_of([&] { m.seal_image("t", "a"); }),
            RetentionViolation::kImageSealed);
  // Delete: begin yields the walk list; a second begin (or one after commit)
  // is a double delete.
  const auto walk = m.begin_delete("t", "a");
  EXPECT_EQ(walk, std::vector<ChunkDigest>{synth_digest(0)});
  EXPECT_EQ(violation_of([&] { m.begin_delete("t", "a"); }),
            RetentionViolation::kAlreadyDeleted);
  m.commit_delete("t", "a");
  EXPECT_EQ(m.state("t", "a"), ImageState::kDeleted);
  EXPECT_EQ(violation_of([&] { m.begin_delete("t", "a"); }),
            RetentionViolation::kAlreadyDeleted);
  EXPECT_EQ(violation_of([&] { (void)m.digests("t", "a"); }),
            RetentionViolation::kAlreadyDeleted);
  // A fully deleted id is reusable.
  m.begin_image("t", "a");
  EXPECT_EQ(m.state("t", "a"), ImageState::kInProgress);
}

TEST(ManifestStore, RebuildFromLogRoundTrips) {
  ManifestStore m;
  m.record_image("t", "a", {synth_digest(1), synth_digest(2)});
  m.record_image("u", "b", {synth_digest(3)});
  auto walk = m.begin_delete("t", "a");
  m.commit_delete("t", "a");
  m.begin_image("t", "c");  // unsealed at "crash" time
  m.append_chunk("t", "c", synth_digest(4));

  ManifestStore rebuilt;
  const auto deleting = rebuilt.rebuild_from_log(m.log_records());
  EXPECT_EQ(deleting, 0u);
  EXPECT_EQ(rebuilt.state("t", "a"), ImageState::kDeleted);
  EXPECT_EQ(rebuilt.state("u", "b"), ImageState::kSealed);
  EXPECT_EQ(rebuilt.digests("u", "b"), std::vector<ChunkDigest>{synth_digest(3)});
  // The torn-tail image recovers as in-progress with its chunks intact —
  // its store references stay accounted.
  EXPECT_EQ(rebuilt.state("t", "c"), ImageState::kInProgress);
  EXPECT_EQ(rebuilt.digests("t", "c"), std::vector<ChunkDigest>{synth_digest(4)});
  EXPECT_EQ(rebuilt.record_count(), m.record_count());
}

TEST(ManifestStore, RebuildToleratesTornAndImpossibleRecords) {
  ManifestStore m;
  m.record_image("t", "a", {synth_digest(1)});
  auto records = m.log_records();
  // A record for an image whose kBegin the crash ate must be skipped, not
  // fatal.
  ManifestRecord orphan;
  orphan.op = ManifestOp::kChunk;
  orphan.tenant = "t";
  orphan.image = "ghost";
  orphan.digest = synth_digest(9);
  records.push_back(orphan);
  ManifestRecord orphan_seal;
  orphan_seal.op = ManifestOp::kSeal;
  orphan_seal.tenant = "t";
  orphan_seal.image = "ghost2";
  records.push_back(orphan_seal);

  ManifestStore rebuilt;
  rebuilt.rebuild_from_log(records);
  EXPECT_EQ(rebuilt.state("t", "a"), ImageState::kSealed);
  EXPECT_FALSE(rebuilt.state("t", "ghost").has_value());
  EXPECT_FALSE(rebuilt.state("t", "ghost2").has_value());
}

TEST(ManifestStore, CompactionPurgesDeletedImages) {
  ManifestStore m;
  m.record_image("t", "keep", {synth_digest(1), synth_digest(2)});
  m.record_image("t", "drop", {synth_digest(3), synth_digest(4),
                               synth_digest(5)});
  m.begin_delete("t", "drop");
  m.commit_delete("t", "drop");
  const auto before = m.record_count();

  const auto cs = m.compact();
  EXPECT_EQ(cs.records_before, before);
  EXPECT_EQ(cs.images_purged, 1u);
  EXPECT_EQ(cs.records_after, 4u);  // keep: begin + 2 chunks + seal
  EXPECT_EQ(cs.dropped_records, before - 4u);
  EXPECT_EQ(m.record_count(), 4u);
  // The purged id reads unknown and is reusable; the survivor is untouched.
  EXPECT_FALSE(m.state("t", "drop").has_value());
  EXPECT_EQ(m.digests("t", "keep"),
            (std::vector<ChunkDigest>{synth_digest(1), synth_digest(2)}));
  // The compacted log round-trips.
  ManifestStore rebuilt;
  rebuilt.rebuild_from_log(m.log_records());
  EXPECT_EQ(rebuilt.digests("t", "keep"), m.digests("t", "keep"));
}

// --- RetentionManager: delete walk, epoch/pin GC ---------------------------

struct Rig {
  std::shared_ptr<ChunkStore> store;
  std::unique_ptr<RetentionManager> mgr;
  obs::Registry registry;

  explicit Rig(bool deferred = true) {
    store = std::make_shared<ChunkStore>(deferred);
    RetentionConfig cfg;
    cfg.registry = &registry;
    mgr = std::make_unique<RetentionManager>(store, cfg);
  }

  // Backs a synthetic image "up": store refs (put per unique occurrence,
  // add_ref per duplicate — the dedup path's invariant) + its manifest.
  void record(const std::string& image, const std::vector<ChunkDigest>& ds) {
    for (const auto& d : ds) {
      if (!store->add_ref(d)) store->put(d, as_bytes(payload_for(d.bytes[0])));
    }
    mgr->record_image("t", image, ds);
  }
};

TEST(RetentionManager, DeleteWalkReleasesOneRefPerOccurrence) {
  Rig rig;
  const auto d1 = synth_digest(1);
  const auto d2 = synth_digest(2);
  rig.record("a", {d1, d2, d1});  // d1 twice, d2 once
  rig.record("b", {d2});
  EXPECT_EQ(rig.store->ref_count(d1), 2u);
  EXPECT_EQ(rig.store->ref_count(d2), 2u);

  const auto stats = rig.mgr->delete_image("t", "a");
  EXPECT_EQ(stats.chunks_released, 3u);
  EXPECT_EQ(stats.chunks_zeroed, 1u);  // d1 hit zero; d2 lives via "b"
  EXPECT_GT(stats.bytes_zeroed, 0u);
  EXPECT_GT(stats.virtual_seconds, 0.0);
  // Deferred store: the zeroed chunk is parked, not freed, until gc().
  EXPECT_EQ(rig.store->ref_count(d1), 0u);
  EXPECT_TRUE(rig.store->contains(d1));
  EXPECT_EQ(rig.store->ref_count(d2), 1u);
  EXPECT_EQ(rig.mgr->graveyard_size(), 1u);
  EXPECT_EQ(rig.mgr->manifests().state("t", "a"), ImageState::kDeleted);
}

TEST(RetentionManager, DeleteErrorsAreTypedAndLeaveStateUntouched) {
  Rig rig;
  rig.record("a", {synth_digest(1)});
  EXPECT_EQ(violation_of([&] { rig.mgr->delete_image("t", "nope"); }),
            RetentionViolation::kUnknownImage);
  rig.mgr->manifests().begin_image("t", "open");
  EXPECT_EQ(violation_of([&] { rig.mgr->delete_image("t", "open"); }),
            RetentionViolation::kImageInProgress);
  rig.mgr->delete_image("t", "a");
  EXPECT_EQ(violation_of([&] { rig.mgr->delete_image("t", "a"); }),
            RetentionViolation::kAlreadyDeleted);
  // The failed deletes released nothing extra.
  EXPECT_EQ(rig.store->ref_count(synth_digest(1)), 0u);
  EXPECT_EQ(rig.mgr->graveyard_size(), 1u);
}

TEST(RetentionManager, GcFreesZeroedChunksOnceUnpinned) {
  Rig rig;
  rig.record("a", {synth_digest(1), synth_digest(2)});

  // A pin taken before the delete keeps its chunks sweep-proof: the pinned
  // walk may still resurrect them via add_ref.
  auto pin = rig.mgr->pin();
  rig.mgr->delete_image("t", "a");
  auto gc1 = rig.mgr->gc();
  EXPECT_EQ(gc1.chunks_freed, 0u);
  EXPECT_EQ(gc1.kept_pinned, 2u);
  EXPECT_TRUE(rig.store->contains(synth_digest(1)));

  pin.release();
  EXPECT_EQ(rig.mgr->active_pins(), 0u);
  auto gc2 = rig.mgr->gc();
  EXPECT_EQ(gc2.chunks_freed, 2u);
  EXPECT_GT(gc2.bytes_freed, 0u);
  EXPECT_GT(gc2.virtual_seconds, 0.0);
  EXPECT_FALSE(rig.store->contains(synth_digest(1)));
  EXPECT_FALSE(rig.store->contains(synth_digest(2)));
  EXPECT_EQ(rig.mgr->graveyard_size(), 0u);
  // Metrics moved.
  EXPECT_EQ(rig.registry.counter_sum("retention.gc_runs_total"), 2u);
  EXPECT_EQ(rig.registry.counter_sum("retention.chunks_freed_total"), 2u);
}

TEST(RetentionManager, SweepStaysConservativeWhilePinsOverlapTheZeroEpoch) {
  Rig rig;
  rig.record("a", {synth_digest(1)});
  rig.mgr->delete_image("t", "a");
  // Taken after the zeroing but in the same epoch: this pin could still have
  // observed (and may yet resurrect) the parked chunk, so the sweep defers
  // until it lifts — conservative by an epoch, never by correctness.
  auto pin = rig.mgr->pin();
  const auto gc = rig.mgr->gc();
  EXPECT_EQ(gc.chunks_freed, 0u);
  EXPECT_EQ(gc.kept_pinned, 1u);
  pin.release();
  EXPECT_EQ(rig.mgr->gc().chunks_freed, 1u);
}

TEST(RetentionManager, ResurrectedChunksEscapeTheGraveyard) {
  Rig rig;
  const auto d = synth_digest(1);
  rig.record("a", {d});
  rig.mgr->delete_image("t", "a");
  // A new backup dedups against the parked chunk before the sweep runs:
  // add_ref resurrects it.
  rig.record("b", {d});
  EXPECT_EQ(rig.store->ref_count(d), 1u);
  const auto gc = rig.mgr->gc();
  EXPECT_EQ(gc.chunks_freed, 0u);
  EXPECT_EQ(gc.resurrected, 1u);
  EXPECT_TRUE(rig.store->contains(d));
  EXPECT_EQ(rig.mgr->graveyard_size(), 0u);
}

TEST(RetentionManager, StoreGaugesTrackOccupancy) {
  Rig rig;
  rig.record("a", {synth_digest(1), synth_digest(2)});
  EXPECT_EQ(rig.registry.gauge("store.chunks").value(), 2.0);
  EXPECT_EQ(rig.registry.gauge("store.refs").value(), 2.0);
  rig.mgr->delete_image("t", "a");
  rig.mgr->gc();
  EXPECT_EQ(rig.registry.gauge("store.chunks").value(), 0.0);
  EXPECT_EQ(rig.registry.gauge("store.bytes").value(), 0.0);
}

// --- Crash consistency ------------------------------------------------------
// Each scenario snapshots the manifest log at the kill point, builds a fresh
// manager over the surviving store state, and recovers. The invariant under
// every kill: after recover(), a digest referenced by any live manifest is
// in the store with refs > 0, and gc() frees only unreferenced chunks.

void expect_live_manifests_intact(RetentionManager& mgr) {
  for (const auto& [key, digests] : mgr.manifests().live_manifests()) {
    for (const auto& d : digests) {
      ASSERT_TRUE(mgr.store()->contains(d)) << "manifest " << key;
      ASSERT_GT(mgr.store()->ref_count(d).value_or(0), 0u);
    }
  }
}

TEST(RetentionCrash, KillBetweenRefsAndManifestWrite) {
  // The dedup walk took its references but the crash ate the manifest seal.
  Rig rig;
  rig.record("done", {synth_digest(1)});
  rig.mgr->manifests().begin_image("t", "torn");
  rig.mgr->manifests().append_chunk("t", "torn", synth_digest(2));
  rig.store->put(synth_digest(2), as_bytes(payload_for(2)));
  const auto log = rig.mgr->manifests().log_records();

  Rig fresh;  // same store, new manager (the RAM state died)
  fresh.store = rig.store;
  fresh.mgr = std::make_unique<RetentionManager>(fresh.store);
  const auto rs = fresh.mgr->recover(log);
  EXPECT_EQ(rs.live_images, 2u);  // torn image recovers as in-progress
  EXPECT_EQ(rs.deletes_rolled_forward, 0u);
  expect_live_manifests_intact(*fresh.mgr);
  // gc() after recovery frees nothing: every chunk is still referenced.
  EXPECT_EQ(fresh.mgr->gc().chunks_freed, 0u);
  EXPECT_TRUE(fresh.store->contains(synth_digest(2)));
}

TEST(RetentionCrash, KillMidReleaseWalkRollsTheDeleteForward) {
  Rig rig;
  const auto shared = synth_digest(1);
  const auto doomed = synth_digest(2);
  rig.record("keep", {shared});
  rig.record("drop", {shared, doomed});
  // Crash mid-delete: intent logged, walk half-done (one of two releases
  // landed), commit never written.
  auto walk = rig.mgr->manifests().begin_delete("t", "drop");
  ASSERT_EQ(walk.size(), 2u);
  rig.store->release_ref(walk[0]);
  const auto log = rig.mgr->manifests().log_records();

  Rig fresh;
  fresh.store = rig.store;
  fresh.mgr = std::make_unique<RetentionManager>(fresh.store);
  const auto rs = fresh.mgr->recover(log);
  EXPECT_EQ(rs.deletes_rolled_forward, 1u);
  EXPECT_EQ(rs.live_images, 1u);
  EXPECT_EQ(fresh.mgr->manifests().state("t", "drop"), ImageState::kDeleted);
  // Refcounts recomputed from the surviving manifests — the partial walk
  // neither under- nor over-releases.
  EXPECT_EQ(fresh.store->ref_count(shared), 1u);
  EXPECT_EQ(fresh.store->ref_count(doomed), 0u);
  expect_live_manifests_intact(*fresh.mgr);
  const auto gc = fresh.mgr->gc();
  EXPECT_EQ(gc.chunks_freed, 1u);  // exactly the doomed chunk
  EXPECT_TRUE(fresh.store->contains(shared));
  EXPECT_FALSE(fresh.store->contains(doomed));
}

TEST(RetentionCrash, KillMidGcSweepRecovers) {
  Rig rig;
  rig.record("keep", {synth_digest(1)});
  rig.record("drop", {synth_digest(2), synth_digest(3)});
  rig.mgr->delete_image("t", "drop");
  // Crash mid-sweep: one graveyard chunk was erased, the other survived.
  rig.store->erase(synth_digest(2));
  const auto log = rig.mgr->manifests().log_records();

  Rig fresh;
  fresh.store = rig.store;
  fresh.mgr = std::make_unique<RetentionManager>(fresh.store);
  const auto rs = fresh.mgr->recover(log);
  EXPECT_EQ(rs.chunks_zeroed, 1u);  // the unswept zombie re-enters the yard
  expect_live_manifests_intact(*fresh.mgr);
  const auto gc = fresh.mgr->gc();
  EXPECT_EQ(gc.chunks_freed, 1u);
  EXPECT_TRUE(fresh.store->contains(synth_digest(1)));
  EXPECT_FALSE(fresh.store->contains(synth_digest(3)));
}

TEST(RetentionCrash, KillDuringCompactionFallsBackToTheOldLog) {
  // Compaction swaps the log atomically; a crash before the swap leaves the
  // pre-compaction log, which must rebuild to the same live state.
  Rig rig;
  rig.record("keep", {synth_digest(1), synth_digest(2)});
  rig.record("drop", {synth_digest(3)});
  rig.mgr->delete_image("t", "drop");
  const auto old_log = rig.mgr->manifests().log_records();
  rig.mgr->manifests().compact();

  ManifestStore from_old;
  from_old.rebuild_from_log(old_log);
  ManifestStore from_new;
  from_new.rebuild_from_log(rig.mgr->manifests().log_records());
  // Both recoveries agree on every live manifest.
  EXPECT_EQ(from_old.live_manifests(), from_new.live_manifests());
  EXPECT_EQ(from_old.digests("t", "keep"), from_new.digests("t", "keep"));
}

// --- Entry-log compaction differential -------------------------------------

TEST(RetentionCompaction, IndexDecisionsBitIdenticalAgainstOracle) {
  dedup::IndexConfig cfg;
  cfg.kind = dedup::IndexKind::kSparse;
  cfg.sparse.container_entries = 64;  // several containers at test scale
  dedup::SparseChunkIndex index(cfg);

  constexpr std::uint64_t kKeys = 4000;
  std::map<std::uint64_t, dedup::ChunkLocation> oracle;
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    const dedup::ChunkLocation loc{k * 7, 1 + static_cast<std::uint32_t>(k % 9)};
    index.lookup_or_insert(synth_digest(k), loc);
    oracle.emplace(k, loc);
  }
  // Kill every third key, as a deleted-and-swept snapshot would.
  std::unordered_map<ChunkDigest, bool, dedup::ChunkDigestHash> live;
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    live[synth_digest(k)] = (k % 3) != 0;
    if ((k % 3) == 0) oracle.erase(k);
  }

  const auto before = index.stats();
  const auto cs = index.compact(
      [&](const ChunkDigest& d, const dedup::ChunkLocation&) {
        return live.at(d);
      });
  EXPECT_EQ(cs.entries_before, kKeys);
  EXPECT_EQ(cs.dropped, kKeys - oracle.size());
  EXPECT_EQ(cs.entries_after, oracle.size());
  EXPECT_EQ(index.size(), oracle.size());
  EXPECT_GT(cs.containers_rewritten, 0u);
  EXPECT_GT(cs.virtual_seconds, 0.0);
  const auto after = index.stats();
  EXPECT_EQ(after.compactions, before.compactions + 1);
  EXPECT_EQ(after.log_entries_dropped - before.log_entries_dropped,
            cs.dropped);

  // Differential: every live key answers exactly its oracle location, every
  // dead key misses.
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    const auto got = index.lookup(synth_digest(k));
    const auto it = oracle.find(k);
    ASSERT_EQ(got.has_value(), it != oracle.end()) << "key " << k;
    if (got.has_value()) {
      EXPECT_EQ(got->store_offset, it->second.store_offset);
      EXPECT_EQ(got->size, it->second.size);
    }
  }
  // And the compacted log itself survives a restart.
  index.rebuild_from_log();
  for (const auto& [k, loc] : oracle) {
    const auto got = index.lookup(synth_digest(k));
    ASSERT_TRUE(got.has_value()) << "key " << k;
    EXPECT_EQ(got->store_offset, loc.store_offset);
  }
}

TEST(RetentionCompaction, ManagerDrivesIndexAndManifestTogether) {
  Rig rig;
  dedup::IndexConfig cfg;
  cfg.kind = dedup::IndexKind::kSparse;
  cfg.sparse.container_entries = 32;
  dedup::SparseChunkIndex index(cfg);

  std::vector<ChunkDigest> keep_digests, drop_digests;
  for (std::uint64_t k = 0; k < 200; ++k) {
    (k % 2 ? keep_digests : drop_digests).push_back(synth_digest(k));
    index.lookup_or_insert(synth_digest(k), {k, 1});
  }
  rig.record("keep", keep_digests);
  rig.record("drop", drop_digests);
  rig.mgr->delete_image("t", "drop");
  rig.mgr->gc();  // dead chunks leave the store; their index entries go stale

  const auto cs = rig.mgr->compact_index(index);
  EXPECT_EQ(cs.index.dropped, drop_digests.size());
  EXPECT_EQ(cs.manifest.images_purged, 1u);
  EXPECT_GT(cs.virtual_seconds, 0.0);
  for (const auto& d : keep_digests) {
    EXPECT_TRUE(index.lookup(d).has_value());
  }
  for (const auto& d : drop_digests) {
    EXPECT_FALSE(index.lookup(d).has_value());
  }
  EXPECT_EQ(rig.registry.counter_sum("retention.compactions_total"), 1u);
}

// --- End-to-end churn through BackupServer ----------------------------------

backup::BackupServerConfig churn_server_config() {
  backup::BackupServerConfig c;
  c.backend = backup::ChunkerBackend::kPthreadsCpu;
  c.chunker.window = 32;
  c.chunker.mask_bits = 11;
  c.chunker.marker = 0x42;
  c.chunker.min_size = 512;
  c.chunker.max_size = 8 * 1024;
  c.shredder.buffer_bytes = 512 * 1024;
  c.cpu_threads = 4;
  c.index.kind = dedup::IndexKind::kSparse;
  c.index.sparse.container_entries = 128;
  return c;
}

TEST(RetentionEndToEnd, ChurnDeleteGcCompactThroughBackupServer) {
  backup::ImageRepoConfig repo_cfg;
  repo_cfg.image_bytes = 2 * 1024 * 1024;
  repo_cfg.segment_bytes = 128 * 1024;
  repo_cfg.seed = 7;
  backup::ImageRepository repo(repo_cfg);
  backup::BackupServer server(churn_server_config());
  backup::BackupAgent agent;

  // Back up 6 mostly-distinct snapshots.
  constexpr int kSnapshots = 6;
  std::vector<ByteVec> images;
  for (int i = 0; i < kSnapshots; ++i) {
    images.push_back(repo.snapshot(0.8, static_cast<std::uint64_t>(i + 1)));
    const auto stats = server.backup_image("snap" + std::to_string(i),
                                           as_bytes(images.back()), repo, agent);
    ASSERT_TRUE(stats.verified);
  }
  ASSERT_EQ(server.retention().manifests().live_images(),
            static_cast<std::uint64_t>(kSnapshots));
  const auto occ_full = server.retention().store()->occupancy();
  const auto log_full = server.index().stats().inserts;

  // Delete the odd snapshots on both sides, then sweep and compact.
  for (int i = 1; i < kSnapshots; i += 2) {
    const std::string id = "snap" + std::to_string(i);
    const auto ds = server.delete_image(id);
    EXPECT_GT(ds.chunks_released, 0u);
    EXPECT_GT(agent.delete_image(id), 0u);
  }
  const auto gc = server.gc();
  EXPECT_GT(gc.chunks_freed, 0u);
  const auto cs = server.compact_index();
  EXPECT_EQ(cs.index.dropped, gc.chunks_freed);

  // Survivors recreate bit-identically on the backup site.
  for (int i = 0; i < kSnapshots; i += 2) {
    const auto recreated = agent.recreate("snap" + std::to_string(i));
    EXPECT_EQ(recreated, images[static_cast<std::size_t>(i)]) << "snap" << i;
  }
  // The mostly-distinct churn reclaims a proportional share of the store
  // and of the entry log (the acceptance bar is enforced at bench scale;
  // here we assert the direction and rough proportion).
  const auto occ_after = server.retention().store()->occupancy();
  EXPECT_LT(occ_after.bytes, occ_full.bytes * 7 / 10);
  EXPECT_LT(cs.index.entries_after, log_full * 7 / 10);
  EXPECT_EQ(occ_after.zero_ref_chunks, 0u);

  // Deleted ids are unknown on both sides...
  EXPECT_THROW(server.delete_image("snap1"), RetentionError);
  EXPECT_THROW(agent.recreate("snap1"), backup::ProtocolError);
  // ...and every surviving manifest digest still resolves in the store.
  for (int i = 0; i < kSnapshots; i += 2) {
    for (const auto& d :
         server.retention().manifests().digests("", "snap" + std::to_string(i))) {
      EXPECT_TRUE(server.retention().store()->contains(d));
    }
  }
}

TEST(RetentionEndToEnd, SelfHealingReshipsAfterOverzealousSweep) {
  // Delete + GC everything, then back the same content up again: every index
  // hit is now stale (the chunks are gone), so the self-healing dedup path
  // must re-ship the full payload and the new backup must still verify.
  backup::ImageRepoConfig repo_cfg;
  repo_cfg.image_bytes = 1 * 1024 * 1024;
  repo_cfg.segment_bytes = 128 * 1024;
  repo_cfg.seed = 11;
  backup::ImageRepository repo(repo_cfg);
  backup::BackupServer server(churn_server_config());
  backup::BackupAgent agent_a;
  const auto image = repo.snapshot(0.0, 1);
  const auto first = server.backup_image("v1", as_bytes(image), repo, agent_a);
  ASSERT_TRUE(first.verified);
  server.delete_image("v1");
  agent_a.delete_image("v1");
  ASSERT_GT(server.gc().chunks_freed, 0u);
  EXPECT_EQ(server.retention().store()->occupancy().chunks, 0u);

  backup::BackupAgent agent_b;
  const auto second = server.backup_image("v2", as_bytes(image), repo, agent_b);
  EXPECT_TRUE(second.verified);
  // No add_ref succeeded — every chunk re-shipped as unique.
  EXPECT_EQ(second.duplicate_chunks, 0u);
  EXPECT_EQ(second.unique_bytes, image.size());
  EXPECT_EQ(agent_b.recreate("v2"), image);
}

// --- Per-tenant deletes through ChunkingService ------------------------------

TEST(RetentionService, PerTenantImageDeleteOverSharedStore) {
  service::ServiceConfig cfg;
  cfg.chunker.window = 32;
  cfg.chunker.mask_bits = 11;
  cfg.chunker.marker = 0x42;
  cfg.chunker.min_size = 512;
  cfg.chunker.max_size = 8 * 1024;
  cfg.buffer_bytes = 256 * 1024;
  cfg.sim_threads = 2;
  cfg.fingerprint_on_device = true;
  cfg.dedup_on_store = true;
  service::ChunkingService svc(cfg);
  ASSERT_NE(svc.retention(), nullptr);

  const auto shared_payload = payload_for(101, 256 * 1024);
  const auto extra_payload = payload_for(202, 128 * 1024);
  ByteVec b_payload = shared_payload;
  b_payload.insert(b_payload.end(), extra_payload.begin(), extra_payload.end());

  const auto run = [&](const std::string& name, ByteSpan data) {
    core::MemorySource source(data, cfg.host.reader_bw);
    service::TenantOptions opts;
    opts.name = name;
    opts.image_id = name + "-snap1";
    return svc.chunk_stream(source, std::move(opts));
  };
  const auto res_a = run("alice", as_bytes(shared_payload));
  const auto res_b = run("bob", as_bytes(b_payload));
  ASSERT_EQ(svc.retention()->manifests().live_images(), 2u);

  // Deleting alice's snapshot must not strand bob: their shared chunks stay
  // referenced, only alice-exclusive ones hit zero.
  const auto ds = svc.delete_image("alice", "alice-snap1");
  EXPECT_EQ(ds.chunks_released, res_a.chunks.size());
  for (const auto& d : res_b.digests) {
    ASSERT_TRUE(svc.chunk_store()->contains(d));
    EXPECT_GT(svc.chunk_store()->ref_count(d).value_or(0), 0u);
  }
  const auto gc = svc.retention()->gc();
  EXPECT_GT(gc.chunks_freed, 0u);
  // Bob's stream still reconstructs from the store after the sweep.
  ByteVec rebuilt;
  for (std::size_t i = 0; i < res_b.chunks.size(); ++i) {
    const auto bytes = svc.chunk_store()->get(res_b.digests[i]);
    ASSERT_TRUE(bytes.has_value());
    rebuilt.insert(rebuilt.end(), bytes->begin(), bytes->end());
  }
  EXPECT_EQ(rebuilt, b_payload);
  // Unknown tenant/image stays a typed error.
  EXPECT_THROW(svc.delete_image("alice", "alice-snap1"), RetentionError);
  svc.shutdown();
}

}  // namespace
}  // namespace shredder::retention
