// Tests for the redundancy-elimination middlebox (paper §9 future work):
// LRU content cache determinism, round-trip correctness, savings behavior
// and sender/receiver cache synchronization.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "redelim/middlebox.h"

namespace shredder::redelim {
namespace {

core::ShredderConfig shredder_config() {
  core::ShredderConfig cfg;
  cfg.chunker.window = 16;
  cfg.chunker.mask_bits = 10;  // ~1 KB chunks
  cfg.chunker.marker = 0x42;
  cfg.buffer_bytes = 128 * 1024;
  cfg.sim_threads = 4;
  return cfg;
}

dedup::Sha1Digest digest_of(std::uint64_t v) {
  return dedup::Sha1::hash(
      ByteSpan{reinterpret_cast<const std::uint8_t*>(&v), sizeof(v)});
}

// --- ContentCache ---

TEST(ContentCache, PutGetRoundTrip) {
  ContentCache cache(1 << 20);
  const auto data = random_bytes(100, 1);
  cache.put(digest_of(1), as_bytes(data));
  EXPECT_EQ(cache.get(digest_of(1)).value(), data);
  EXPECT_FALSE(cache.get(digest_of(2)).has_value());
}

TEST(ContentCache, EvictsLeastRecentlyUsed) {
  ContentCache cache(250);  // fits two 100-byte chunks
  const auto a = random_bytes(100, 1);
  const auto b = random_bytes(100, 2);
  const auto c = random_bytes(100, 3);
  cache.put(digest_of(1), as_bytes(a));
  cache.put(digest_of(2), as_bytes(b));
  cache.get(digest_of(1));  // refresh 1; 2 becomes LRU
  cache.put(digest_of(3), as_bytes(c));
  EXPECT_TRUE(cache.contains(digest_of(1)));
  EXPECT_FALSE(cache.contains(digest_of(2)));
  EXPECT_TRUE(cache.contains(digest_of(3)));
  EXPECT_LE(cache.bytes(), 250u);
}

TEST(ContentCache, RefreshDoesNotDuplicate) {
  ContentCache cache(1 << 20);
  const auto a = random_bytes(100, 1);
  cache.put(digest_of(1), as_bytes(a));
  cache.put(digest_of(1), as_bytes(a));
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_EQ(cache.bytes(), 100u);
}

TEST(ContentCache, RejectsZeroCapacity) {
  EXPECT_THROW(ContentCache(0), std::invalid_argument);
}

// --- Middlebox pair ---

TEST(Middlebox, FirstFlowIsAllLiterals) {
  core::Shredder shredder(shredder_config());
  SenderMiddlebox sender(shredder, 16 << 20);
  ReceiverMiddlebox receiver(16 << 20);
  const auto flow = random_bytes(200000, 7);
  const auto encoded = sender.encode(as_bytes(flow));
  EXPECT_EQ(encoded.tokens, 0u);
  EXPECT_GE(encoded.wire_bytes, flow.size());  // framing overhead only
  EXPECT_EQ(receiver.decode(encoded), flow);
}

TEST(Middlebox, RepeatedFlowIsNearlyAllTokens) {
  core::Shredder shredder(shredder_config());
  SenderMiddlebox sender(shredder, 16 << 20);
  ReceiverMiddlebox receiver(16 << 20);
  const auto flow = random_bytes(200000, 8);
  receiver.decode(sender.encode(as_bytes(flow)));
  const auto again = sender.encode(as_bytes(flow));
  EXPECT_EQ(again.tokens, again.segments.size());
  EXPECT_GT(again.savings(), 0.95);
  EXPECT_EQ(receiver.decode(again), flow);
}

TEST(Middlebox, PartialOverlapSavesProportionally) {
  core::Shredder shredder(shredder_config());
  SenderMiddlebox sender(shredder, 16 << 20);
  ReceiverMiddlebox receiver(16 << 20);
  const auto v1 = random_bytes(500000, 9);
  receiver.decode(sender.encode(as_bytes(v1)));
  // 10% rewritten: most chunks should come back as tokens.
  const auto v2 = mutate_bytes(as_bytes(v1), 0.10, 10);
  const auto encoded = sender.encode(as_bytes(v2));
  EXPECT_GT(encoded.savings(), 0.5);
  EXPECT_LT(encoded.savings(), 0.99);
  EXPECT_EQ(receiver.decode(encoded), v2);
}

TEST(Middlebox, CachesStaySynchronizedUnderEviction) {
  // Small caches force evictions; the streams must still decode because the
  // receiver evicts in exactly the same order as the sender.
  core::Shredder shredder(shredder_config());
  SenderMiddlebox sender(shredder, 64 * 1024);
  ReceiverMiddlebox receiver(64 * 1024);
  SplitMix64 rng(11);
  ByteVec base = random_bytes(100000, 12);
  for (int round = 0; round < 8; ++round) {
    const auto flow = mutate_bytes(as_bytes(base), 0.2, rng.next());
    const auto encoded = sender.encode(as_bytes(flow));
    EXPECT_EQ(receiver.decode(encoded), flow) << "round " << round;
    base = flow;
  }
}

TEST(Middlebox, TokenForUnknownChunkThrows) {
  ReceiverMiddlebox receiver(1 << 20);
  EncodedStream bogus;
  Segment token;
  token.digest = digest_of(99);
  bogus.segments.push_back(token);
  EXPECT_THROW(receiver.decode(bogus), std::runtime_error);
}

TEST(Middlebox, WireAccounting) {
  core::Shredder shredder(shredder_config());
  SenderMiddlebox sender(shredder, 16 << 20);
  const auto flow = random_bytes(100000, 13);
  const auto encoded = sender.encode(as_bytes(flow));
  std::uint64_t sum = 0;
  for (const auto& seg : encoded.segments) sum += seg.wire_bytes();
  EXPECT_EQ(sum, encoded.wire_bytes);
  EXPECT_EQ(encoded.input_bytes, flow.size());
}

}  // namespace
}  // namespace shredder::redelim
