// Tests for the common substrate: rng, stats, queues, thread pool, bytes.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

#include "common/bytes.h"
#include "common/queue.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/thread_pool.h"

namespace shredder {
namespace {

TEST(SplitMix64, DeterministicFromSeed) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiffer) {
  SplitMix64 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.next() == b.next();
  EXPECT_EQ(same, 0);
}

TEST(SplitMix64, NextBelowInRange) {
  SplitMix64 rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(17), 17u);
}

TEST(SplitMix64, NextDoubleInUnitInterval) {
  SplitMix64 rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RandomBytes, SizeAndDeterminism) {
  const auto a = random_bytes(1000, 5);
  const auto b = random_bytes(1000, 5);
  EXPECT_EQ(a.size(), 1000u);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, random_bytes(1000, 6));
}

TEST(RandomBytes, HighEntropy) {
  const auto data = random_bytes(1 << 16, 11);
  std::array<int, 256> counts{};
  for (auto b : data) counts[b]++;
  // Every byte value should appear (64 KB of uniform bytes).
  for (int c : counts) EXPECT_GT(c, 0);
}

TEST(RandomText, ProducesRequestedLength) {
  const auto text = random_text(5000, 3);
  EXPECT_EQ(text.size(), 5000u);
  EXPECT_EQ(text.back(), '\n');
}

TEST(RandomText, Tokenizable) {
  const auto text = random_text(2000, 3);
  // Words are separated by spaces or newlines; no other control characters.
  for (char c : text) {
    EXPECT_TRUE((c >= 'a' && c <= 'z') || c == ' ' || c == '\n') << int(c);
  }
}

TEST(MutateBytes, ZeroFractionIsIdentity) {
  const auto data = random_bytes(4096, 1);
  EXPECT_EQ(mutate_bytes(as_bytes(data), 0.0, 9), data);
}

TEST(MutateBytes, ChangesRoughlyRequestedFraction) {
  const auto data = random_bytes(1 << 20, 1);
  const auto mutated = mutate_bytes(as_bytes(data), 0.10, 9);
  ASSERT_EQ(mutated.size(), data.size());
  std::size_t diff = 0;
  for (std::size_t i = 0; i < data.size(); ++i) diff += data[i] != mutated[i];
  const double frac = static_cast<double>(diff) / data.size();
  EXPECT_GT(frac, 0.05);
  EXPECT_LT(frac, 0.15);
}

TEST(MutateBytes, RejectsBadFraction) {
  const auto data = random_bytes(16, 1);
  EXPECT_THROW(mutate_bytes(as_bytes(data), -0.1, 1), std::invalid_argument);
  EXPECT_THROW(mutate_bytes(as_bytes(data), 1.5, 1), std::invalid_argument);
}

TEST(MutateText, StaysTokenizable) {
  const auto text = random_text(10000, 3);
  const auto mutated = mutate_text(text, 0.2, 4);
  EXPECT_EQ(mutated.size(), text.size());
  for (char c : mutated) {
    EXPECT_TRUE((c >= 'a' && c <= 'z') || c == ' ' || c == '\n');
  }
}

TEST(Summary, BasicMoments) {
  Summary s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.stddev(), 1.2909944, 1e-6);
}

TEST(Summary, StddevStableUnderLargeMean) {
  // Welford regression: with sum_sq - sum^2/n the 1e18-scale squares cancel
  // catastrophically and the old code returned 0 (or garbage) here.
  Summary s;
  for (double x : {1e9 + 0.0, 1e9 + 1.0, 1e9 + 2.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 1e9 + 1.0);
  EXPECT_NEAR(s.stddev(), 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(s.min(), 1e9);
  EXPECT_DOUBLE_EQ(s.max(), 1e9 + 2.0);
}

TEST(Summary, StddevZeroForConstantLargeValues) {
  Summary s;
  for (int i = 0; i < 5; ++i) s.add(1e12);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(Histogram, BucketsAndQuantiles) {
  Histogram h({10, 20, 30});
  for (int i = 1; i <= 30; ++i) h.add(i);
  EXPECT_EQ(h.bucket_count(0), 10u);
  EXPECT_EQ(h.bucket_count(1), 10u);
  EXPECT_EQ(h.bucket_count(2), 10u);
  EXPECT_EQ(h.bucket_count(3), 0u);
  EXPECT_NEAR(h.quantile(0.5), 15.0, 2.0);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram({}), std::invalid_argument);
  EXPECT_THROW(Histogram({3, 2, 1}), std::invalid_argument);
}

TEST(Histogram, OverflowBucketQuantileClampsToLastBound) {
  // All mass lands past the last bound: the overflow bucket has no upper
  // edge, so quantiles must clamp to the bound instead of interpolating
  // into an invented 2x edge.
  Histogram h({10, 20, 30});
  for (int i = 0; i < 7; ++i) h.add(1000.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 30.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 30.0);
  // Mixed mass: quantiles inside real buckets still interpolate.
  Histogram m({10, 20});
  m.add(5.0);
  m.add(500.0);
  EXPECT_LE(m.quantile(0.25), 10.0);
  EXPECT_DOUBLE_EQ(m.quantile(1.0), 20.0);
}

TEST(TablePrinter, FormatsRows) {
  TablePrinter t({"a", "b"});
  t.add_row({"1", "2"});
  const auto s = t.to_string();
  EXPECT_NE(s.find('a'), std::string::npos);
  EXPECT_NE(s.find('1'), std::string::npos);
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(TablePrinter, OversizedCellDoesNotShiftLaterColumns) {
  TablePrinter t({"col0", "col1", "col2"}, 8);
  t.add_row({"wider-cell", "x", "y"});  // 10 chars overflow the 8-wide col0
  t.add_row({"ok", "p", "q"});
  const auto s = t.to_string();
  // Find the two data lines.
  std::vector<std::string> lines;
  std::size_t pos = 0;
  while (pos < s.size()) {
    const auto nl = s.find('\n', pos);
    lines.push_back(s.substr(pos, nl - pos));
    pos = nl + 1;
  }
  ASSERT_GE(lines.size(), 4u);
  const std::string& wide = lines[2];
  const std::string& normal = lines[3];
  // col2 realigns to the 2*8 grid position in both rows: "y" lands at the
  // same column as "q" even though col0 overflowed in the row above.
  EXPECT_EQ(wide.find('y'), normal.find('q'));
  // The overflowing cell still keeps at least one space before col1.
  EXPECT_NE(wide.find("wider-cell x"), std::string::npos);
}

TEST(HumanBytes, Formats) {
  EXPECT_EQ(human_bytes(512), "512 B");
  EXPECT_EQ(human_bytes(16 * 1024 * 1024), "16 MB");
}

TEST(BoundedQueue, FifoOrder) {
  BoundedQueue<int> q(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.push(i));
  for (int i = 0; i < 4; ++i) EXPECT_EQ(q.pop().value(), i);
}

TEST(BoundedQueue, CloseDrains) {
  BoundedQueue<int> q(4);
  q.push(1);
  q.close();
  EXPECT_FALSE(q.push(2));
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(BoundedQueue, RejectsZeroCapacity) {
  EXPECT_THROW(BoundedQueue<int>(0), std::invalid_argument);
}

TEST(BoundedQueue, TryPushRespectsCapacity) {
  BoundedQueue<int> q(2);
  EXPECT_EQ(q.capacity(), 2u);
  int a = 1, b = 2, c = 3;
  EXPECT_TRUE(q.try_push(a));
  EXPECT_TRUE(q.try_push(b));
  EXPECT_FALSE(q.try_push(c));  // full: rejected, not blocked
  EXPECT_EQ(c, 3);              // item untouched on failure
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_TRUE(q.try_push(c));
  EXPECT_EQ(q.pop().value(), 2);
  EXPECT_EQ(q.pop().value(), 3);
}

TEST(BoundedQueue, TryPushOnClosedFails) {
  BoundedQueue<int> q(2);
  q.close();
  int v = 7;
  EXPECT_FALSE(q.try_push(v));
}

TEST(BoundedQueue, ConcurrentProducersConsumers) {
  BoundedQueue<int> q(8);
  constexpr int kPerProducer = 500;
  std::atomic<int> sum{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < 4; ++p) {
    threads.emplace_back([&q] {
      for (int i = 1; i <= kPerProducer; ++i) q.push(i);
    });
  }
  for (int c = 0; c < 4; ++c) {
    threads.emplace_back([&] {
      while (auto v = q.pop()) sum += *v;
    });
  }
  for (int p = 0; p < 4; ++p) threads[static_cast<std::size_t>(p)].join();
  q.close();
  for (int c = 4; c < 8; ++c) threads[static_cast<std::size_t>(c)].join();
  EXPECT_EQ(sum.load(), 4 * kPerProducer * (kPerProducer + 1) / 2);
}

TEST(ThreadPool, ParallelForCoversRange) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) hits[i]++;
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRange) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ExceptionsPropagate) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(10,
                        [](std::size_t, std::size_t) {
                          throw std::runtime_error("boom");
                        }),
      std::runtime_error);
}

TEST(ThreadPool, ForEachIndexRunsAll) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  pool.for_each_index(57, [&](std::size_t) { count++; });
  EXPECT_EQ(count.load(), 57);
}

}  // namespace
}  // namespace shredder
