// Tests for the common substrate: rng, stats, queues, thread pool, bytes.
#include <gtest/gtest.h>

#include <atomic>
#include <limits>
#include <set>
#include <thread>

#include "common/bytes.h"
#include "common/logging.h"
#include "common/queue.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/thread_pool.h"

namespace shredder {
namespace {

TEST(SplitMix64, DeterministicFromSeed) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiffer) {
  SplitMix64 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.next() == b.next();
  EXPECT_EQ(same, 0);
}

TEST(SplitMix64, NextBelowInRange) {
  SplitMix64 rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(17), 17u);
}

TEST(SplitMix64, NextDoubleInUnitInterval) {
  SplitMix64 rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RandomBytes, SizeAndDeterminism) {
  const auto a = random_bytes(1000, 5);
  const auto b = random_bytes(1000, 5);
  EXPECT_EQ(a.size(), 1000u);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, random_bytes(1000, 6));
}

TEST(RandomBytes, HighEntropy) {
  const auto data = random_bytes(1 << 16, 11);
  std::array<int, 256> counts{};
  for (auto b : data) counts[b]++;
  // Every byte value should appear (64 KB of uniform bytes).
  for (int c : counts) EXPECT_GT(c, 0);
}

TEST(RandomText, ProducesRequestedLength) {
  const auto text = random_text(5000, 3);
  EXPECT_EQ(text.size(), 5000u);
  EXPECT_EQ(text.back(), '\n');
}

TEST(RandomText, Tokenizable) {
  const auto text = random_text(2000, 3);
  // Words are separated by spaces or newlines; no other control characters.
  for (char c : text) {
    EXPECT_TRUE((c >= 'a' && c <= 'z') || c == ' ' || c == '\n') << int(c);
  }
}

TEST(MutateBytes, ZeroFractionIsIdentity) {
  const auto data = random_bytes(4096, 1);
  EXPECT_EQ(mutate_bytes(as_bytes(data), 0.0, 9), data);
}

TEST(MutateBytes, ChangesRoughlyRequestedFraction) {
  const auto data = random_bytes(1 << 20, 1);
  const auto mutated = mutate_bytes(as_bytes(data), 0.10, 9);
  ASSERT_EQ(mutated.size(), data.size());
  std::size_t diff = 0;
  for (std::size_t i = 0; i < data.size(); ++i) diff += data[i] != mutated[i];
  const double frac = static_cast<double>(diff) / data.size();
  EXPECT_GT(frac, 0.05);
  EXPECT_LT(frac, 0.15);
}

TEST(MutateBytes, RejectsBadFraction) {
  const auto data = random_bytes(16, 1);
  EXPECT_THROW(mutate_bytes(as_bytes(data), -0.1, 1), std::invalid_argument);
  EXPECT_THROW(mutate_bytes(as_bytes(data), 1.5, 1), std::invalid_argument);
}

TEST(MutateText, StaysTokenizable) {
  const auto text = random_text(10000, 3);
  const auto mutated = mutate_text(text, 0.2, 4);
  EXPECT_EQ(mutated.size(), text.size());
  for (char c : mutated) {
    EXPECT_TRUE((c >= 'a' && c <= 'z') || c == ' ' || c == '\n');
  }
}

TEST(Summary, BasicMoments) {
  Summary s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.stddev(), 1.2909944, 1e-6);
}

TEST(Summary, StddevStableUnderLargeMean) {
  // Welford regression: with sum_sq - sum^2/n the 1e18-scale squares cancel
  // catastrophically and the old code returned 0 (or garbage) here.
  Summary s;
  for (double x : {1e9 + 0.0, 1e9 + 1.0, 1e9 + 2.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 1e9 + 1.0);
  EXPECT_NEAR(s.stddev(), 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(s.min(), 1e9);
  EXPECT_DOUBLE_EQ(s.max(), 1e9 + 2.0);
}

TEST(Summary, StddevZeroForConstantLargeValues) {
  Summary s;
  for (int i = 0; i < 5; ++i) s.add(1e12);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(Histogram, BucketsAndQuantiles) {
  Histogram h({10, 20, 30});
  for (int i = 1; i <= 30; ++i) h.add(i);
  EXPECT_EQ(h.bucket_count(0), 10u);
  EXPECT_EQ(h.bucket_count(1), 10u);
  EXPECT_EQ(h.bucket_count(2), 10u);
  EXPECT_EQ(h.bucket_count(3), 0u);
  EXPECT_NEAR(h.quantile(0.5), 15.0, 2.0);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram({}), std::invalid_argument);
  EXPECT_THROW(Histogram({3, 2, 1}), std::invalid_argument);
}

TEST(Histogram, OverflowBucketQuantileClampsToLastBound) {
  // All mass lands past the last bound: the overflow bucket has no upper
  // edge, so quantiles must clamp to the bound instead of interpolating
  // into an invented 2x edge.
  Histogram h({10, 20, 30});
  for (int i = 0; i < 7; ++i) h.add(1000.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 30.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 30.0);
  // Mixed mass: quantiles inside real buckets still interpolate.
  Histogram m({10, 20});
  m.add(5.0);
  m.add(500.0);
  EXPECT_LE(m.quantile(0.25), 10.0);
  EXPECT_DOUBLE_EQ(m.quantile(1.0), 20.0);
}

TEST(SummaryMerge, MatchesSingleStreamReference) {
  // Two disjoint streams merged must equal one stream that saw everything.
  Summary a, b, ref;
  for (int i = 0; i < 40; ++i) {
    const double x = 1e6 + i * 0.25;  // large mean, small spread: the
    (i % 3 == 0 ? a : b).add(x);      // regime naive combines get wrong
    ref.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), ref.count());
  EXPECT_DOUBLE_EQ(a.mean(), ref.mean());
  EXPECT_DOUBLE_EQ(a.min(), ref.min());
  EXPECT_DOUBLE_EQ(a.max(), ref.max());
  EXPECT_NEAR(a.stddev(), ref.stddev(), 1e-9 * ref.stddev());
  EXPECT_DOUBLE_EQ(a.sum(), ref.sum());
}

TEST(SummaryMerge, EmptyMergeIsIdentity) {
  Summary s;
  s.add(3.0);
  s.add(5.0);
  const Summary before = s;
  Summary empty;
  s.merge(empty);  // empty rhs: no-op
  EXPECT_EQ(s.count(), before.count());
  EXPECT_DOUBLE_EQ(s.mean(), before.mean());
  EXPECT_DOUBLE_EQ(s.stddev(), before.stddev());

  Summary into;
  into.merge(s);  // empty lhs: becomes rhs
  EXPECT_EQ(into.count(), 2u);
  EXPECT_DOUBLE_EQ(into.mean(), 4.0);
  EXPECT_DOUBLE_EQ(into.min(), 3.0);
  EXPECT_DOUBLE_EQ(into.max(), 5.0);

  Summary e1, e2;
  e1.merge(e2);  // both empty stays empty
  EXPECT_EQ(e1.count(), 0u);
}

TEST(SummaryMerge, OneSidedSingletons) {
  Summary a, b;
  a.add(10.0);
  b.add(20.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 15.0);
  EXPECT_NEAR(a.stddev(), 7.0710678, 1e-6);
}

TEST(SummaryFromWindow, CarriesFirstMomentsOnly) {
  const Summary w = Summary::from_window(4, 10.0, 1.0, 4.0);
  EXPECT_EQ(w.count(), 4u);
  EXPECT_DOUBLE_EQ(w.sum(), 10.0);
  EXPECT_DOUBLE_EQ(w.mean(), 2.5);
  EXPECT_DOUBLE_EQ(w.min(), 1.0);
  EXPECT_DOUBLE_EQ(w.max(), 4.0);
  EXPECT_DOUBLE_EQ(w.stddev(), 0.0);  // m2 not recoverable from a window
}

TEST(Histogram, NanCountedSeparately) {
  // Regression: lower_bound files NaN into the overflow bucket (every
  // comparison is false), silently skewing totals and quantiles.
  Histogram h({10, 20});
  h.add(5.0);
  h.add(15.0);
  h.add(std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(h.total(), 2u);
  EXPECT_EQ(h.nan_count(), 1u);
  EXPECT_EQ(h.bucket_count(2), 0u);  // overflow bucket untouched
  EXPECT_LE(h.quantile(1.0), 20.0);
}

TEST(HistogramMerge, AddsCountsAndRequiresIdenticalBounds) {
  Histogram a({10, 20}), b({10, 20});
  a.add(5.0);
  b.add(15.0);
  b.add(25.0);
  b.add(std::numeric_limits<double>::quiet_NaN());
  a.merge(b);
  EXPECT_EQ(a.total(), 3u);
  EXPECT_EQ(a.nan_count(), 1u);
  EXPECT_EQ(a.bucket_count(0), 1u);
  EXPECT_EQ(a.bucket_count(1), 1u);
  EXPECT_EQ(a.bucket_count(2), 1u);

  Histogram c({10, 30});
  EXPECT_THROW(a.merge(c), std::invalid_argument);
}

TEST(LogSpacedBounds, GeometricAndInclusive) {
  const auto b = log_spaced_bounds(1e-6, 1.0, 7);
  ASSERT_EQ(b.size(), 7u);
  EXPECT_DOUBLE_EQ(b.front(), 1e-6);
  EXPECT_DOUBLE_EQ(b.back(), 1.0);  // exact, not accumulated rounding
  for (std::size_t i = 1; i < b.size(); ++i) {
    EXPECT_GT(b[i], b[i - 1]);
    EXPECT_NEAR(b[i] / b[i - 1], 10.0, 1e-6);  // 6 decades over 6 steps
  }
  Histogram h(log_spaced_bounds(1e-6, 1.0, 7));  // valid histogram bounds
  h.add(3e-4);
  EXPECT_EQ(h.total(), 1u);
}

TEST(LogSpacedBounds, RejectsBadArguments) {
  EXPECT_THROW(log_spaced_bounds(0.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(log_spaced_bounds(-1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(log_spaced_bounds(2.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(log_spaced_bounds(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(log_spaced_bounds(1.0, 2.0, 1), std::invalid_argument);
}

TEST(TablePrinter, FormatsRows) {
  TablePrinter t({"a", "b"});
  t.add_row({"1", "2"});
  const auto s = t.to_string();
  EXPECT_NE(s.find('a'), std::string::npos);
  EXPECT_NE(s.find('1'), std::string::npos);
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(TablePrinter, OversizedCellDoesNotShiftLaterColumns) {
  TablePrinter t({"col0", "col1", "col2"}, 8);
  t.add_row({"wider-cell", "x", "y"});  // 10 chars overflow the 8-wide col0
  t.add_row({"ok", "p", "q"});
  const auto s = t.to_string();
  // Find the two data lines.
  std::vector<std::string> lines;
  std::size_t pos = 0;
  while (pos < s.size()) {
    const auto nl = s.find('\n', pos);
    lines.push_back(s.substr(pos, nl - pos));
    pos = nl + 1;
  }
  ASSERT_GE(lines.size(), 4u);
  const std::string& wide = lines[2];
  const std::string& normal = lines[3];
  // col2 realigns to the 2*8 grid position in both rows: "y" lands at the
  // same column as "q" even though col0 overflowed in the row above.
  EXPECT_EQ(wide.find('y'), normal.find('q'));
  // The overflowing cell still keeps at least one space before col1.
  EXPECT_NE(wide.find("wider-cell x"), std::string::npos);
}

TEST(HumanBytes, Formats) {
  EXPECT_EQ(human_bytes(512), "512 B");
  EXPECT_EQ(human_bytes(16 * 1024 * 1024), "16 MB");
}

TEST(BoundedQueue, FifoOrder) {
  BoundedQueue<int> q(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.push(i));
  for (int i = 0; i < 4; ++i) EXPECT_EQ(q.pop().value(), i);
}

TEST(BoundedQueue, CloseDrains) {
  BoundedQueue<int> q(4);
  q.push(1);
  q.close();
  EXPECT_FALSE(q.push(2));
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(BoundedQueue, RejectsZeroCapacity) {
  EXPECT_THROW(BoundedQueue<int>(0), std::invalid_argument);
}

TEST(BoundedQueue, TryPushRespectsCapacity) {
  BoundedQueue<int> q(2);
  EXPECT_EQ(q.capacity(), 2u);
  int a = 1, b = 2, c = 3;
  EXPECT_TRUE(q.try_push(a));
  EXPECT_TRUE(q.try_push(b));
  EXPECT_FALSE(q.try_push(c));  // full: rejected, not blocked
  EXPECT_EQ(c, 3);              // item untouched on failure
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_TRUE(q.try_push(c));
  EXPECT_EQ(q.pop().value(), 2);
  EXPECT_EQ(q.pop().value(), 3);
}

TEST(BoundedQueue, TryPushOnClosedFails) {
  BoundedQueue<int> q(2);
  q.close();
  int v = 7;
  EXPECT_FALSE(q.try_push(v));
}

TEST(BoundedQueue, ConcurrentProducersConsumers) {
  BoundedQueue<int> q(8);
  constexpr int kPerProducer = 500;
  std::atomic<int> sum{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < 4; ++p) {
    threads.emplace_back([&q] {
      for (int i = 1; i <= kPerProducer; ++i) q.push(i);
    });
  }
  for (int c = 0; c < 4; ++c) {
    threads.emplace_back([&] {
      while (auto v = q.pop()) sum += *v;
    });
  }
  for (int p = 0; p < 4; ++p) threads[static_cast<std::size_t>(p)].join();
  q.close();
  for (int c = 4; c < 8; ++c) threads[static_cast<std::size_t>(c)].join();
  EXPECT_EQ(sum.load(), 4 * kPerProducer * (kPerProducer + 1) / 2);
}

// TSan-targeted stress: producers and consumers running full tilt while the
// queue is closed out from under them mid-stream. Exercises the push-drop
// path (push() returning false on a closed queue), the close() broadcast
// waking blocked pushers and poppers, and the post-close drain — the
// happens-before edges the TSan CI lane exists to check.
TEST(BoundedQueue, CloseRacesProducersAndConsumers) {
  BoundedQueue<int> q(4);
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 2000;
  std::atomic<int> pushed{0};
  std::atomic<int> popped{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerProducer; ++i) {
        if (!q.push(i)) return;  // closed under us — expected
        pushed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      while (q.pop()) popped.fetch_add(1, std::memory_order_relaxed);
    });
  }
  q.close();  // races both sides
  for (auto& t : threads) t.join();
  EXPECT_TRUE(q.closed());
  // A push succeeds only while the queue is open, and consumers exit only
  // once the queue is closed AND drained — so every successful push was
  // matched by a pop.
  EXPECT_EQ(popped.load(), pushed.load());
  EXPECT_EQ(q.size(), 0u);
}

TEST(ThreadPool, ParallelForCoversRange) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) hits[i]++;
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRange) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ExceptionsPropagate) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(10,
                        [](std::size_t, std::size_t) {
                          throw std::runtime_error("boom");
                        }),
      std::runtime_error);
}

// Regression: an exception in one range must not unwind parallel_for while
// sibling tasks are still running — every task (even later throwers) runs to
// completion before the first error is rethrown, and the pool stays usable.
TEST(ThreadPool, ExceptionWaitsForSiblingTasks) {
  ThreadPool pool(4);
  std::atomic<int> started{0};
  EXPECT_THROW(pool.parallel_for(8,
                                 [&](std::size_t begin, std::size_t) {
                                   started++;
                                   if (begin % 2 == 0) {
                                     throw std::runtime_error("boom");
                                   }
                                 }),
               std::runtime_error);
  EXPECT_EQ(started.load(), 4);  // one per partition, none abandoned
  std::atomic<int> after{0};
  pool.parallel_for(10, [&](std::size_t begin, std::size_t end) {
    after += static_cast<int>(end - begin);
  });
  EXPECT_EQ(after.load(), 10);
}

TEST(ThreadPool, ForEachIndexRunsAll) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  pool.for_each_index(57, [&](std::size_t) { count++; });
  EXPECT_EQ(count.load(), 57);
}

// RAII capture of log output through the sink seam; restores stderr and the
// previous threshold on destruction so tests don't leak global state.
class LogCapture {
 public:
  explicit LogCapture(LogLevel threshold) : saved_threshold_(log_threshold()) {
    set_log_threshold(threshold);
    set_log_sink([this](LogLevel level, std::string_view tag,
                        const std::string& body) {
      // Called with the logging mutex held: appends are serialized.
      lines_.push_back({level, std::string(tag), body});
    });
  }
  ~LogCapture() {
    set_log_sink(nullptr);
    set_log_threshold(saved_threshold_);
  }

  struct Line {
    LogLevel level;
    std::string tag;
    std::string body;
  };
  const std::vector<Line>& lines() const { return lines_; }

 private:
  LogLevel saved_threshold_;
  std::vector<Line> lines_;
};

TEST(Logging, ThresholdFilters) {
  LogCapture cap(LogLevel::kWarn);
  log(LogLevel::kDebug, "t", "dropped");
  log(LogLevel::kInfo, "t", "dropped");
  log(LogLevel::kWarn, "t", "kept {}", 1);
  log(LogLevel::kError, "t", "kept {}", 2);
  ASSERT_EQ(cap.lines().size(), 2u);
  EXPECT_EQ(cap.lines()[0].body, "kept 1");
  EXPECT_EQ(cap.lines()[1].body, "kept 2");
  EXPECT_EQ(cap.lines()[1].level, LogLevel::kError);
}

TEST(Logging, ThresholdIsAdjustableAtRuntime) {
  LogCapture cap(LogLevel::kError);
  log(LogLevel::kInfo, "t", "dropped");
  set_log_threshold(LogLevel::kDebug);
  log(LogLevel::kDebug, "t", "kept");
  ASSERT_EQ(cap.lines().size(), 1u);
  EXPECT_EQ(cap.lines()[0].body, "kept");
}

TEST(Logging, FormatLineCarriesTimestampLevelAndTag) {
  const auto line =
      detail::format_line(LogLevel::kWarn, "pipeline", "hello", 12.25);
  EXPECT_EQ(line, "[   12.250000] [WARN] pipeline: hello");
  const auto line2 =
      detail::format_line(LogLevel::kError, "svc", "x", 0.0);
  EXPECT_EQ(line2, "[    0.000000] [ERROR] svc: x");
}

TEST(Logging, FormatSubstitutesPlaceholders) {
  LogCapture cap(LogLevel::kDebug);
  log(LogLevel::kInfo, "t", "{} + {} = {}", 1, 2, 3);
  log(LogLevel::kInfo, "t", "trailing {} ignored-extra", 9);
  log(LogLevel::kInfo, "t", "no placeholders");
  ASSERT_EQ(cap.lines().size(), 3u);
  EXPECT_EQ(cap.lines()[0].body, "1 + 2 = 3");
  EXPECT_EQ(cap.lines()[1].body, "trailing 9 ignored-extra");
  EXPECT_EQ(cap.lines()[2].body, "no placeholders");
}

TEST(Logging, RateLimiterPassesThenSuppresses) {
  // Drive the clock explicitly: first call emits, calls inside the interval
  // suppress and count, the first call past the interval emits with the
  // suppressed tally.
  const std::string key = "test\x1f rate-limit-key-A";
  std::uint64_t suppressed = 0;
  EXPECT_TRUE(detail::rate_limit_pass(key, 1.0, 10.0, &suppressed));
  EXPECT_EQ(suppressed, 0u);
  EXPECT_FALSE(detail::rate_limit_pass(key, 1.0, 10.2, &suppressed));
  EXPECT_FALSE(detail::rate_limit_pass(key, 1.0, 10.9, &suppressed));
  EXPECT_TRUE(detail::rate_limit_pass(key, 1.0, 11.5, &suppressed));
  EXPECT_EQ(suppressed, 2u);
  // The tally reset on emission.
  EXPECT_TRUE(detail::rate_limit_pass(key, 1.0, 13.0, &suppressed));
  EXPECT_EQ(suppressed, 0u);
}

TEST(Logging, RateLimiterKeysAreIndependent) {
  std::uint64_t suppressed = 0;
  EXPECT_TRUE(detail::rate_limit_pass("k1", 5.0, 100.0, &suppressed));
  EXPECT_TRUE(detail::rate_limit_pass("k2", 5.0, 100.0, &suppressed));
  EXPECT_FALSE(detail::rate_limit_pass("k1", 5.0, 100.1, &suppressed));
}

TEST(Logging, LogEveryEmitsSuppressedSuffix) {
  LogCapture cap(LogLevel::kDebug);
  // A zero interval always passes; distinct fmt strings are distinct keys,
  // so this emits regardless of earlier tests touching the limiter.
  log_every(LogLevel::kInfo, "pump", 0.0, "queue depth {}", 4);
  ASSERT_EQ(cap.lines().size(), 1u);
  EXPECT_EQ(cap.lines()[0].body, "queue depth 4");
  // Below threshold: filtered before the limiter, no suppressed counting.
  log_every(LogLevel::kDebug, "pump", 0.0, "queue depth {}", 5);
  set_log_threshold(LogLevel::kError);
  log_every(LogLevel::kInfo, "pump", 0.0, "queue depth {}", 6);
  set_log_threshold(LogLevel::kDebug);
  log_every(LogLevel::kInfo, "pump", 0.0, "queue depth {}", 7);
  ASSERT_EQ(cap.lines().size(), 3u);
  EXPECT_EQ(cap.lines()[2].body, "queue depth 7");  // no "(N suppressed)"
}

TEST(Logging, ConcurrentWritersStaySerialized) {
  LogCapture cap(LogLevel::kDebug);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kPerThread; ++i) {
        log(LogLevel::kInfo, "race", "writer {} line {}", t, i);
      }
    });
  }
  for (auto& t : threads) t.join();
  // Every line arrived exactly once and intact (the sink runs under the
  // logging mutex, so a torn/interleaved body would show up here).
  ASSERT_EQ(cap.lines().size(),
            static_cast<std::size_t>(kThreads * kPerThread));
  std::set<std::string> seen;
  for (const auto& line : cap.lines()) {
    EXPECT_EQ(line.tag, "race");
    EXPECT_EQ(line.body.rfind("writer ", 0), 0u);
    seen.insert(line.body);
  }
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(kThreads * kPerThread));
}

TEST(Logging, UptimeClockIsMonotonic) {
  const double a = log_uptime_seconds();
  const double b = log_uptime_seconds();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
}

}  // namespace
}  // namespace shredder
