// Batch-first consumer API suite (core/sink.h, docs/backup_wire.md):
//
//  * adapter equivalence — the per-chunk callback shims produce bit-identical
//    chunk/digest streams to the batch path across Shredder, the service and
//    the backup server;
//  * payload views — ChunkBatchView::chunk_bytes slices the real stream
//    bytes, for in-memory runs and for streaming runs with a rolling tail;
//  * extent-coalesced wire protocol — random duplicate-run layouts recreate
//    bit-exactly, malformed batches are rejected, and the 2 KB small-chunk
//    regression holds the >=1.5x link-stage win over per-chunk framing.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <memory>
#include <vector>

#include "backup/backup_server.h"
#include "common/rng.h"
#include "core/lease.h"
#include "core/shredder.h"
#include "service/service.h"

namespace shredder {
namespace {

// Records every delivered batch: concatenated chunks/digests, batch bounds,
// payload-view copies, and eos bookkeeping.
class RecordingSink final : public ChunkSink {
 public:
  explicit RecordingSink(bool want_payload = false)
      : want_payload_(want_payload) {}

  void on_batch(const ChunkBatchView& batch) override {
    EXPECT_EQ(batch.stream_seq, n_batches_);
    ++n_batches_;
    if (batch.eos) ++eos_batches_;
    EXPECT_TRUE(batch.digests.empty() ||
                batch.digests.size() == batch.chunks.size());
    batch_ends_.push_back(chunks_.size() + batch.chunks.size());
    for (std::size_t i = 0; i < batch.chunks.size(); ++i) {
      chunks_.push_back(batch.chunks[i]);
      if (!batch.digests.empty()) digests_.push_back(batch.digests[i]);
      const ByteSpan bytes = batch.chunk_bytes(i);
      if (want_payload_) {
        ASSERT_EQ(bytes.size(), batch.chunks[i].size);
        payloads_.emplace_back(bytes.begin(), bytes.end());
      }
    }
  }
  bool wants_payload() const noexcept override { return want_payload_; }

  const std::vector<chunking::Chunk>& chunks() const { return chunks_; }
  const std::vector<dedup::ChunkDigest>& digests() const { return digests_; }
  const std::vector<ByteVec>& payloads() const { return payloads_; }
  const std::vector<std::size_t>& batch_ends() const { return batch_ends_; }
  std::uint64_t eos_batches() const { return eos_batches_; }

 private:
  bool want_payload_;
  std::vector<chunking::Chunk> chunks_;
  std::vector<dedup::ChunkDigest> digests_;
  std::vector<ByteVec> payloads_;
  std::vector<std::size_t> batch_ends_;
  std::uint64_t n_batches_ = 0;
  std::uint64_t eos_batches_ = 0;
};

core::ShredderConfig small_shredder_config(bool fingerprint) {
  core::ShredderConfig cfg;
  cfg.chunker.window = 16;
  cfg.chunker.mask_bits = 8;
  cfg.chunker.marker = 0x42;
  cfg.chunker.min_size = 64;
  cfg.chunker.max_size = 2048;
  cfg.buffer_bytes = 64 * 1024;
  cfg.kernel.blocks = 8;
  cfg.kernel.threads_per_block = 16;
  cfg.sim_threads = 4;
  cfg.fingerprint_on_device = fingerprint;
  return cfg;
}

// --- ChunkBatchView / PerChunkAdapter units --------------------------------

TEST(ChunkBatchView, ChunkBytesSlicesAndBoundsChecks) {
  const ByteVec data = random_bytes(256, 1);
  ChunkBatchView view;
  const std::vector<chunking::Chunk> chunks = {
      {100, 50},   // fully inside the window
      {40, 80},    // starts before payload_base
      {280, 40},   // runs past the window's end
  };
  view.chunks = chunks;
  view.payload = ByteSpan{data.data(), data.size()}.subspan(0, 200);
  view.payload_base = 64;
  ASSERT_TRUE(view.has_payload());
  const ByteSpan inside = view.chunk_bytes(0);
  ASSERT_EQ(inside.size(), 50u);
  EXPECT_EQ(std::memcmp(inside.data(), data.data() + (100 - 64), 50), 0);
  EXPECT_TRUE(view.chunk_bytes(1).empty());
  EXPECT_TRUE(view.chunk_bytes(2).empty());
}

TEST(ChunkBatchView, ChunkBytesResolvesThroughTheTail) {
  // Two retained buffers overlapping by a 10-byte carry; the view's
  // contiguous payload is the newest one.
  const ByteVec data = random_bytes(300, 41);
  PayloadTail tail;
  tail.append(ByteSpan{data.data(), 200}, 0);
  tail.append(ByteSpan{data.data() + 190, 110}, 10);
  ChunkBatchView view;
  const std::vector<chunking::Chunk> chunks = {
      {190, 50},   // exactly flush with payload_base: direct subspan
      {150, 80},   // straddles the window start: spliced from both segments
      {100, 50},   // entirely in the older segment: aliased through the tail
      {280, 40},   // runs past the stream end
  };
  view.chunks = chunks;
  view.payload = tail.window();
  view.payload_base = tail.window_base();
  view.tail = &tail;
  EXPECT_EQ(view.payload_base, 190u);
  for (std::size_t i = 0; i < 3; ++i) {
    const ByteSpan bytes = view.chunk_bytes(i);
    ASSERT_EQ(bytes.size(), chunks[i].size) << "chunk " << i;
    EXPECT_EQ(std::memcmp(bytes.data(),
                          data.data() + static_cast<std::size_t>(chunks[i].offset),
                          bytes.size()),
              0)
        << "chunk " << i;
  }
  EXPECT_TRUE(view.chunk_bytes(3).empty());
  // An empty final batch still resolves (to nothing) without a payload.
  ChunkBatchView eos;
  eos.eos = true;
  eos.tail = &tail;
  EXPECT_FALSE(eos.has_payload());
  EXPECT_TRUE(eos.chunks.empty());
}

TEST(PayloadTail, AppendAndTrimKeepTheWindowBoundedAndOrdered) {
  const ByteVec data = random_bytes(1000, 43);
  PayloadTail tail;
  EXPECT_TRUE(tail.empty());
  EXPECT_EQ(tail.base(), 0u);
  EXPECT_EQ(tail.end(), 0u);
  const std::size_t kBuf = 100, kCarry = 10;
  std::uint64_t prev_base = 0;
  for (std::size_t pos = 0; pos < data.size(); pos += kBuf) {
    const std::size_t carry = pos == 0 ? 0 : kCarry;
    tail.append(ByteSpan{data.data() + pos - carry, carry + kBuf}, carry);
    // end tracks the stream; base never moves backwards.
    EXPECT_EQ(tail.end(), pos + kBuf);
    EXPECT_GE(tail.base(), prev_base);
    prev_base = tail.base();
    // The producer invariant: trim to the "open chunk" start, here one and
    // a half buffers back. Retention stays bounded by open chunk + buffer.
    const std::uint64_t keep =
        tail.end() > 150 ? tail.end() - 150 : 0;
    tail.trim(keep);
    EXPECT_LE(tail.base(), keep);
    EXPECT_LE(tail.end() - tail.base(), 150 + kBuf + kCarry);
    // Every retained byte still reads back exactly.
    const std::size_t len = static_cast<std::size_t>(tail.end() - keep);
    const ByteSpan bytes = tail.slice(keep, len);
    ASSERT_EQ(bytes.size(), len);
    EXPECT_EQ(std::memcmp(bytes.data(),
                          data.data() + static_cast<std::size_t>(keep), len),
              0);
    // Out-of-window requests answer empty, not garbage.
    EXPECT_TRUE(tail.slice(tail.end(), 1).empty());
    if (tail.base() > 0) {
      EXPECT_TRUE(tail.slice(tail.base() - 1, 2).empty());
    }
  }
  // Trimming to the stream end empties the window entirely.
  tail.trim(tail.end());
  EXPECT_TRUE(tail.empty());
  EXPECT_EQ(tail.base(), tail.end());
}

TEST(PayloadTail, SlotCapCompactionReleasesPinnedSlots) {
  // Slot-backed segments beyond the cap compact into owned copies at trim,
  // releasing their ring slots while preserving the retained bytes.
  auto pool = std::make_shared<core::detail::SlotPool>(gpu::DeviceSpec{},
                                                       /*slots=*/4,
                                                       /*slot_size=*/128);
  const ByteVec data = random_bytes(3 * 128, 47);
  PayloadTail tail;
  tail.set_slot_cap(1);
  for (std::size_t i = 0; i < 3; ++i) {
    const auto slot = pool->acquire();
    ASSERT_TRUE(slot.has_value());
    auto span = pool->slot_span(*slot);
    std::memcpy(span.data(), data.data() + i * 128, 128);
    tail.append(core::SlotLease::from_slot(pool, *slot, 128), 0);
  }
  EXPECT_EQ(tail.slot_leases(), 3u);
  EXPECT_EQ(pool->leased(), 3u);
  tail.trim(/*keep_from=*/100);  // keeps all three segments alive
  // Compaction narrows the oldest segments to their retained suffix.
  EXPECT_EQ(tail.base(), 100u);
  EXPECT_LE(tail.slot_leases(), 1u);
  EXPECT_LE(pool->leased(), 1u);
  // Compaction must not change what the window reads as.
  const ByteSpan bytes = tail.slice(100, 3 * 128 - 100);
  ASSERT_EQ(bytes.size(), 3u * 128 - 100);
  EXPECT_EQ(std::memcmp(bytes.data(), data.data() + 100, bytes.size()), 0);
  tail.trim(tail.end());
  EXPECT_EQ(pool->leased(), 0u);
}

TEST(PayloadTailDeathTest, RejectsCarryBeyondTheStagedBuffer) {
  // Regression: append() used to compute staged.begin() + carry unchecked;
  // a carry past the staged size walked off the buffer.
  const ByteVec staged = random_bytes(16, 3);
  PayloadTail tail;
  EXPECT_DEATH(tail.append(as_bytes(staged), staged.size() + 1),
               "carry exceeds the staged buffer");
  // A carry reaching before the stream start is equally out of protocol.
  EXPECT_DEATH(tail.append(as_bytes(staged), 1),
               "carry reaches before the stream start");
}

TEST(PerChunkAdapter, ReplaysBatchAsPerChunkUpcalls) {
  std::vector<chunking::Chunk> seen;
  std::vector<dedup::ChunkDigest> seen_digests;
  PerChunkAdapter adapter(
      [&](const chunking::Chunk& c) { seen.push_back(c); },
      [&](const chunking::Chunk&, const dedup::ChunkDigest& d) {
        seen_digests.push_back(d);
      });
  EXPECT_FALSE(adapter.empty());
  const std::vector<chunking::Chunk> chunks = {{0, 10}, {10, 20}};
  const std::vector<dedup::ChunkDigest> digests = {
      dedup::ChunkHasher::hash(as_bytes(random_bytes(4, 2))),
      dedup::ChunkHasher::hash(as_bytes(random_bytes(4, 3)))};
  ChunkBatchView view;
  view.chunks = chunks;
  view.digests = digests;
  adapter.on_batch(view);
  EXPECT_EQ(seen, chunks);
  ASSERT_EQ(seen_digests.size(), 2u);
  EXPECT_EQ(seen_digests[0], digests[0]);
  EXPECT_EQ(seen_digests[1], digests[1]);
  EXPECT_TRUE(PerChunkAdapter({}, {}).empty());
}

// --- Shredder: adapter equivalence + payload views -------------------------

class ShredderSinkModes : public ::testing::TestWithParam<bool> {};

TEST_P(ShredderSinkModes, CallbackShimMatchesBatchPath) {
  const bool fingerprint = GetParam();
  const auto data = random_bytes(300000, 7);

  core::Shredder a(small_shredder_config(fingerprint));
  std::vector<chunking::Chunk> cb_chunks;
  std::vector<dedup::ChunkDigest> cb_digests;
  const auto cb_result = a.run(
      as_bytes(data),
      [&](const chunking::Chunk& c) { cb_chunks.push_back(c); },
      [&](const chunking::Chunk&, const dedup::ChunkDigest& d) {
        cb_digests.push_back(d);
      });

  core::Shredder b(small_shredder_config(fingerprint));
  RecordingSink sink(/*want_payload=*/true);
  const auto batch_result = b.run(as_bytes(data), sink);

  // The shim and the batch path deliver bit-identical streams, both equal to
  // the collected result.
  EXPECT_EQ(cb_chunks, batch_result.chunks);
  EXPECT_EQ(sink.chunks(), batch_result.chunks);
  EXPECT_EQ(cb_result.chunks, batch_result.chunks);
  EXPECT_EQ(sink.eos_batches(), 1u);
  if (fingerprint) {
    ASSERT_EQ(cb_digests.size(), batch_result.chunks.size());
    ASSERT_EQ(sink.digests().size(), batch_result.chunks.size());
    for (std::size_t i = 0; i < cb_digests.size(); ++i) {
      EXPECT_EQ(cb_digests[i], batch_result.digests[i]);
      EXPECT_EQ(sink.digests()[i], batch_result.digests[i]);
    }
  } else {
    EXPECT_TRUE(sink.digests().empty());
  }
  // In-memory runs always provide payload views into the caller's span.
  ASSERT_EQ(sink.payloads().size(), batch_result.chunks.size());
  for (std::size_t i = 0; i < batch_result.chunks.size(); ++i) {
    const auto& c = batch_result.chunks[i];
    EXPECT_EQ(std::memcmp(sink.payloads()[i].data(),
                          data.data() + static_cast<std::size_t>(c.offset),
                          static_cast<std::size_t>(c.size)),
              0)
        << "chunk " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(FingerprintModes, ShredderSinkModes,
                         ::testing::Bool());

TEST_P(ShredderSinkModes, StreamingRollingTailProvidesPayloadViews) {
  // A true DataSource run holds no whole-stream span: the engine returns
  // staged bytes and the store stage keeps a rolling tail for the sink.
  // Both chunk-resolution paths matter — the min/max filter can finalize a
  // chunk in a later batch than the buffer holding its bytes, and the
  // trailing chunks only land in the post-loop eos batch.
  const auto data = random_bytes(300000, 11);
  core::Shredder shredder(small_shredder_config(GetParam()));
  core::MemorySource source(as_bytes(data),
                            shredder.config().host.reader_bw);
  RecordingSink sink(/*want_payload=*/true);
  const auto result = shredder.run(source, sink);
  EXPECT_EQ(result.total_bytes, data.size());
  ASSERT_EQ(sink.payloads().size(), result.chunks.size());
  for (std::size_t i = 0; i < result.chunks.size(); ++i) {
    const auto& c = result.chunks[i];
    EXPECT_EQ(std::memcmp(sink.payloads()[i].data(),
                          data.data() + static_cast<std::size_t>(c.offset),
                          static_cast<std::size_t>(c.size)),
              0)
        << "chunk " << i;
  }
}

TEST(ShredderSink, EmptyStreamDeliversOneEosBatch) {
  core::Shredder shredder(small_shredder_config(/*fingerprint=*/false));
  RecordingSink sink;
  const auto result = shredder.run(ByteSpan{}, sink);
  EXPECT_TRUE(result.chunks.empty());
  EXPECT_TRUE(sink.chunks().empty());
  EXPECT_EQ(sink.eos_batches(), 1u);
}

// --- Service: adapter equivalence ------------------------------------------

service::ServiceConfig small_service_config(bool fingerprint) {
  service::ServiceConfig cfg;
  cfg.chunker.window = 16;
  cfg.chunker.mask_bits = 8;
  cfg.chunker.marker = 0x42;
  cfg.buffer_bytes = 64 * 1024;
  cfg.kernel.blocks = 8;
  cfg.kernel.threads_per_block = 16;
  cfg.sim_threads = 4;
  cfg.fingerprint_on_device = fingerprint;
  return cfg;
}

TEST(ServiceSink, CallbackShimMatchesBatchPath) {
  for (const bool fingerprint : {false, true}) {
    service::ChunkingService svc(small_service_config(fingerprint));
    const auto data = random_bytes(200000, 21);

    std::vector<chunking::Chunk> cb_chunks;
    std::vector<dedup::ChunkDigest> cb_digests;
    service::TenantOptions with_callbacks;
    with_callbacks.on_chunk = [&](const chunking::Chunk& c) {
      cb_chunks.push_back(c);
    };
    with_callbacks.on_digest = [&](const chunking::Chunk&,
                                   const dedup::ChunkDigest& d) {
      cb_digests.push_back(d);
    };
    RecordingSink sink;
    service::TenantOptions with_sink;
    with_sink.sink = &sink;

    const auto id_a = svc.open(std::move(with_callbacks));
    const auto id_b = svc.open(std::move(with_sink));
    for (const auto id : {id_a, id_b}) {
      svc.submit(id, as_bytes(data));
      svc.finish(id);
    }
    const auto res_a = svc.wait(id_a);
    const auto res_b = svc.wait(id_b);
    svc.shutdown();

    EXPECT_EQ(res_a.chunks, res_b.chunks);
    EXPECT_EQ(cb_chunks, res_a.chunks);
    EXPECT_EQ(sink.chunks(), res_b.chunks);
    EXPECT_EQ(sink.eos_batches(), 1u);
    EXPECT_FALSE(sink.batch_ends().empty());
    EXPECT_EQ(sink.batch_ends().back(), res_b.chunks.size());
    if (fingerprint) {
      ASSERT_EQ(cb_digests.size(), res_a.chunks.size());
      ASSERT_EQ(sink.digests().size(), res_b.chunks.size());
      for (std::size_t i = 0; i < cb_digests.size(); ++i) {
        EXPECT_EQ(sink.digests()[i], cb_digests[i]);
      }
    }
  }
}

TEST(ServiceSink, PayloadWantingSinkGetsViewsWithoutStoreRetention) {
  // Retention is a per-session lease window now, not a service-wide engine
  // flag: a payload-slicing sink on a non-storing service gets real views,
  // including one opened mid-run while another stream is already in flight.
  service::ChunkingService svc(small_service_config(/*fingerprint=*/true));
  const auto data_a = random_bytes(200000, 31);
  const auto data_b = random_bytes(150000, 32);

  RecordingSink sink_a(/*want_payload=*/true);
  service::TenantOptions opts_a;
  opts_a.sink = &sink_a;
  const auto id_a = svc.open(std::move(opts_a));
  svc.submit(id_a, as_bytes(data_a));

  // Dynamically added stream: opened after the first tenant is submitted.
  RecordingSink sink_b(/*want_payload=*/true);
  service::TenantOptions opts_b;
  opts_b.sink = &sink_b;
  const auto id_b = svc.open(std::move(opts_b));
  svc.submit(id_b, as_bytes(data_b));

  svc.finish(id_a);
  svc.finish(id_b);
  const auto res_a = svc.wait(id_a);
  const auto res_b = svc.wait(id_b);
  svc.shutdown();

  const auto check = [](const RecordingSink& sink,
                        const service::TenantResult& res, const ByteVec& data) {
    ASSERT_EQ(sink.payloads().size(), res.chunks.size());
    for (std::size_t i = 0; i < res.chunks.size(); ++i) {
      const auto& c = res.chunks[i];
      EXPECT_EQ(std::memcmp(sink.payloads()[i].data(),
                            data.data() + static_cast<std::size_t>(c.offset),
                            static_cast<std::size_t>(c.size)),
                0)
          << "chunk " << i;
    }
  };
  check(sink_a, res_a, data_a);
  check(sink_b, res_b, data_b);
}

TEST(ServiceSink, DedupStoreServiceDeliversPayloadViews) {
  auto cfg = small_service_config(/*fingerprint=*/true);
  cfg.dedup_on_store = true;
  service::ChunkingService svc(cfg);
  const auto data = random_bytes(200000, 51);
  RecordingSink sink(/*want_payload=*/true);
  service::TenantOptions opts;
  opts.sink = &sink;
  const auto id = svc.open(std::move(opts));
  svc.submit(id, as_bytes(data));
  svc.finish(id);
  const auto res = svc.wait(id);
  svc.shutdown();
  ASSERT_EQ(sink.payloads().size(), res.chunks.size());
  for (std::size_t i = 0; i < res.chunks.size(); ++i) {
    const auto& c = res.chunks[i];
    EXPECT_EQ(std::memcmp(sink.payloads()[i].data(),
                          data.data() + static_cast<std::size_t>(c.offset),
                          static_cast<std::size_t>(c.size)),
              0)
        << "chunk " << i;
  }
}

// --- Backup: wire-framing equivalence + extent coalescing ------------------

backup::BackupServerConfig small_server_config(bool batch_link) {
  backup::BackupServerConfig cfg;
  cfg.chunker.window = 32;
  cfg.chunker.mask_bits = 11;  // ~2 KB chunks: the small-chunk operating point
  cfg.chunker.marker = 0x42;
  cfg.chunker.min_size = 512;
  cfg.chunker.max_size = 8 * 1024;
  cfg.shredder.buffer_bytes = 512 * 1024;
  cfg.shredder.sim_threads = 4;
  cfg.batch_link = batch_link;
  return cfg;
}

TEST(BackupWire, BatchFramingMatchesPerChunkFraming) {
  backup::ImageRepoConfig repo_cfg;
  repo_cfg.image_bytes = 4 * 1024 * 1024;
  repo_cfg.segment_bytes = 128 * 1024;
  repo_cfg.seed = 5;
  backup::ImageRepository repo(repo_cfg);
  backup::BackupServer per_chunk(small_server_config(false));
  backup::BackupServer batched(small_server_config(true));
  backup::BackupAgent agent_a, agent_b;
  for (int step = 0; step < 3; ++step) {
    const auto snap = repo.snapshot(0.2 * step, step + 1);
    const std::string id = "vm" + std::to_string(step);
    const auto sa = per_chunk.backup_image(id, as_bytes(snap), repo, agent_a);
    const auto sb = batched.backup_image(id, as_bytes(snap), repo, agent_b);
    // Same chunks, same dedup decisions, same recreated images.
    ASSERT_TRUE(sa.verified);
    ASSERT_TRUE(sb.verified);
    EXPECT_EQ(sa.chunks, sb.chunks);
    EXPECT_EQ(sa.duplicate_chunks, sb.duplicate_chunks);
    EXPECT_EQ(sa.unique_bytes, sb.unique_bytes);
    EXPECT_EQ(agent_a.recreate(id), agent_b.recreate(id));
    // Per-chunk framing ships one message per chunk (+1 begin_image);
    // batch framing one per drained buffer.
    EXPECT_EQ(sa.link_messages, sa.chunks + 1);
    EXPECT_EQ(sa.link_extents, 0u);
    EXPECT_LT(sb.link_messages, sa.link_messages / 4);
    EXPECT_GT(sb.link_extents, 0u);
    EXPECT_LT(sb.link_seconds, sa.link_seconds);
  }
  EXPECT_EQ(agent_a.unique_bytes(), agent_b.unique_bytes());
  EXPECT_EQ(agent_a.unique_chunks(), agent_b.unique_chunks());
}

TEST(BackupWire, ExtentCoalescingPropertyRandomDuplicateRuns) {
  // Random duplicate-run layouts: images stitched from a pool of segments
  // where run lengths of repeats and fresh data vary pseudo-randomly. The
  // extent path must recreate every image bit-exactly.
  SplitMix64 rng(99);
  const std::size_t kSeg = 64 * 1024;
  std::vector<ByteVec> pool;
  for (int i = 0; i < 8; ++i) pool.push_back(random_bytes(kSeg, 1000 + i));

  backup::ImageRepoConfig repo_cfg;  // only used for generation_seconds
  repo_cfg.image_bytes = 1024 * 1024;
  repo_cfg.segment_bytes = 128 * 1024;
  backup::ImageRepository repo(repo_cfg);

  backup::BackupServer server(small_server_config(true));
  backup::BackupAgent agent;
  for (int image = 0; image < 4; ++image) {
    ByteVec bytes;
    std::size_t fresh = 0;
    for (int run = 0; run < 24; ++run) {
      const std::size_t len = 1 + rng.next_below(3);
      if (rng.next_below(2) == 0) {
        // Duplicate run: repeat pool segments back-to-back.
        const std::size_t seg = rng.next_below(pool.size());
        for (std::size_t k = 0; k < len; ++k) {
          bytes.insert(bytes.end(), pool[seg].begin(), pool[seg].end());
        }
      } else {
        // Fresh run: never-seen bytes.
        const auto blob = random_bytes(len * kSeg, 5000 + 100 * image + run);
        bytes.insert(bytes.end(), blob.begin(), blob.end());
        ++fresh;
      }
    }
    ASSERT_GT(fresh, 0u);
    const std::string id = "layout" + std::to_string(image);
    const auto stats = server.backup_image(id, as_bytes(bytes), repo, agent);
    EXPECT_TRUE(stats.verified) << id;
    EXPECT_EQ(agent.recreate(id), bytes) << id;
    if (image > 0) {
      EXPECT_GT(stats.duplicate_chunks, 0u) << id;
    }
  }
}

TEST(BackupWire, ReceiveBatchRejectsMalformedFrames) {
  const auto a = random_bytes(100, 1);
  const auto digest = dedup::ChunkHasher::hash(as_bytes(a));

  {
    // Extents that do not partition the digest array.
    backup::BackupAgent agent;
    agent.begin_image("img");
    backup::BackupAgent::ExtentBatch batch;
    batch.digests = {digest, digest};
    batch.extents = {{0, 1, true}};  // second digest uncovered
    batch.payload_sizes = {100};
    batch.payload = a;
    EXPECT_THROW(agent.receive_batch("img", batch), std::invalid_argument);
  }
  {
    // payload_sizes disagreeing with the unique-chunk count.
    backup::BackupAgent agent;
    agent.begin_image("img");
    backup::BackupAgent::ExtentBatch batch;
    batch.digests = {digest};
    batch.extents = {{0, 1, true}};
    batch.payload = a;  // but no sizes
    EXPECT_THROW(agent.receive_batch("img", batch), std::invalid_argument);
  }
  {
    // Payload bytes not matching the advertised sizes.
    backup::BackupAgent agent;
    agent.begin_image("img");
    backup::BackupAgent::ExtentBatch batch;
    batch.digests = {digest};
    batch.extents = {{0, 1, true}};
    batch.payload_sizes = {64};
    batch.payload = a;  // 100 bytes
    EXPECT_THROW(agent.receive_batch("img", batch), std::invalid_argument);
  }
  {
    // Pointer extent naming an unknown chunk.
    backup::BackupAgent agent;
    agent.begin_image("img");
    backup::BackupAgent::ExtentBatch batch;
    batch.digests = {digest};
    batch.extents = {{0, 1, false}};
    EXPECT_THROW(agent.receive_batch("img", batch), std::invalid_argument);
  }
  {
    // A well-formed mixed batch lands: unique run then a pointer to it.
    backup::BackupAgent agent;
    agent.begin_image("img");
    backup::BackupAgent::ExtentBatch batch;
    batch.digests = {digest, digest};
    batch.extents = {{0, 1, true}, {1, 1, false}};
    batch.payload_sizes = {100};
    batch.payload = a;
    agent.receive_batch("img", batch);
    ByteVec expect(a);
    expect.insert(expect.end(), a.begin(), a.end());
    EXPECT_EQ(agent.recreate("img"), expect);
    EXPECT_EQ(agent.unique_chunks(), 1u);
  }
}

TEST(BackupWire, SmallChunkLinkRegressionAt2KB) {
  // The fig18-style small-chunk operating point: ~2 KB chunks, duplicate-
  // heavy successor snapshot. Extent coalescing must cut the link stage by
  // >=1.5x over per-chunk framing (the full-scale bar BENCH_agent.json
  // enforces; this is the test-scale regression guard).
  backup::ImageRepoConfig repo_cfg;
  repo_cfg.image_bytes = 4 * 1024 * 1024;
  repo_cfg.segment_bytes = 256 * 1024;
  repo_cfg.seed = 17;
  backup::ImageRepository repo(repo_cfg);

  backup::BackupRunStats per_chunk, batched;
  for (const bool batch_link : {false, true}) {
    backup::BackupServer server(small_server_config(batch_link));
    backup::BackupAgent agent;
    const auto base = repo.snapshot(0.0, 1);
    server.backup_image("base", as_bytes(base), repo, agent);
    const auto snap = repo.snapshot(0.05, 2);
    const auto stats = server.backup_image("snap", as_bytes(snap), repo, agent);
    ASSERT_TRUE(stats.verified);
    (batch_link ? batched : per_chunk) = stats;
  }
  EXPECT_EQ(batched.chunks, per_chunk.chunks);
  EXPECT_EQ(batched.duplicate_chunks, per_chunk.duplicate_chunks);
  // The link-stage bar, and the end-to-end consequence: with the per-chunk
  // message term gone the batch path can only be faster.
  EXPECT_GE(per_chunk.link_seconds, 1.5 * batched.link_seconds);
  EXPECT_GE(batched.backup_bandwidth_gbps, per_chunk.backup_bandwidth_gbps);
  // One wire message per drained 512 KiB buffer, segmented by the transport
  // at 256 KiB of frame content (so a payload-heavy buffer can split into up
  // to three frames), plus the begin/end image control frames.
  EXPECT_LE(batched.link_messages,
            3 * (repo_cfg.image_bytes / (512 * 1024)) + 2);
}

}  // namespace
}  // namespace shredder
