// Property-based tests of the min/max post-filter (MinMaxFilter and
// apply_min_max): invariants over randomized boundary streams and sweeps of
// (min, max) parameter combinations.
#include <gtest/gtest.h>

#include <algorithm>

#include "chunking/minmax.h"
#include "common/rng.h"

namespace shredder::chunking {
namespace {

TEST(MinMax, NoConstraintsPassesThrough) {
  const std::vector<std::uint64_t> raw = {5, 17, 90};
  const auto ends = apply_min_max(raw, 100, 0, 0);
  EXPECT_EQ(ends, (std::vector<std::uint64_t>{5, 17, 90, 100}));
}

TEST(MinMax, FinalBoundaryAlwaysTotal) {
  const auto ends = apply_min_max({}, 100, 0, 0);
  EXPECT_EQ(ends, (std::vector<std::uint64_t>{100}));
}

TEST(MinMax, EmptyStream) {
  EXPECT_TRUE(apply_min_max({}, 0, 0, 0).empty());
}

TEST(MinMax, MinFiltersCloseBoundaries) {
  // 5 and 17 are < 20 apart from their predecessors; only 90 survives.
  const auto ends = apply_min_max({5, 17, 90}, 100, 20, 0);
  EXPECT_EQ(ends, (std::vector<std::uint64_t>{90, 100}));
}

TEST(MinMax, MinMeasuredFromLastAccepted) {
  // 30 accepted; 45 is 15 past it (< 20, dropped); 55 is 25 past (kept).
  const auto ends = apply_min_max({30, 45, 55}, 100, 20, 0);
  EXPECT_EQ(ends, (std::vector<std::uint64_t>{30, 55, 100}));
}

TEST(MinMax, MaxForcesBoundaries) {
  const auto ends = apply_min_max({}, 100, 0, 30);
  EXPECT_EQ(ends, (std::vector<std::uint64_t>{30, 60, 90, 100}));
}

TEST(MinMax, MaxForcedBeforeRawBoundary) {
  // Gap 0..80 exceeds max 30 twice before the raw boundary at 80.
  const auto ends = apply_min_max({80}, 100, 0, 30);
  EXPECT_EQ(ends, (std::vector<std::uint64_t>{30, 60, 80, 100}));
}

TEST(MinMax, MinAppliesAfterForcedBoundary) {
  // Forced at 30; raw 35 is only 5 past it -> dropped with min 10.
  const auto ends = apply_min_max({35}, 40, 10, 30);
  EXPECT_EQ(ends, (std::vector<std::uint64_t>{30, 40}));
}

TEST(MinMax, RawAtTotalNotDuplicated) {
  const auto ends = apply_min_max({50, 100}, 100, 0, 0);
  EXPECT_EQ(ends, (std::vector<std::uint64_t>{50, 100}));
}

TEST(MinMax, RejectsMalformedInput) {
  EXPECT_THROW(apply_min_max({10, 10}, 100, 0, 0), std::invalid_argument);
  EXPECT_THROW(apply_min_max({20, 10}, 100, 0, 0), std::invalid_argument);
  EXPECT_THROW(apply_min_max({150}, 100, 0, 0), std::invalid_argument);
  EXPECT_THROW(apply_min_max({}, 100, 50, 20), std::invalid_argument);
}

TEST(MinMax, RejectsZeroBoundary) {
  // Regression: prev_raw_ starts at 0, so the old strictness check
  // `b <= prev_raw_ && prev_raw_ != 0` accepted b == 0 — repeatedly.
  EXPECT_THROW(apply_min_max({0}, 100, 0, 0), std::invalid_argument);
  EXPECT_THROW(apply_min_max({0, 0, 0}, 100, 0, 0), std::invalid_argument);
  std::vector<std::uint64_t> seen;
  MinMaxFilter filter(0, 0, [&](std::uint64_t e) { seen.push_back(e); });
  EXPECT_THROW(filter.push(0), std::invalid_argument);
  EXPECT_TRUE(seen.empty());
  filter.push(10);  // the filter stays usable after the rejected push
  EXPECT_EQ(seen, (std::vector<std::uint64_t>{10}));
}

TEST(MinMaxFilter, DrainForcedMatchesDeferredEmission) {
  // drain_forced(upto) must emit exactly the boundaries a later push/finish
  // would, just earlier — including the inclusive gap == max_size case.
  std::vector<std::uint64_t> eager, deferred;
  {
    MinMaxFilter f(0, 30, [&](std::uint64_t e) { eager.push_back(e); });
    f.push(5);
    f.drain_forced(65);   // emits 35, 65 (65 - 35 == max, inclusive)
    f.push(100);          // forces 95, then accepts 100
    f.finish(120);
  }
  {
    MinMaxFilter f(0, 30, [&](std::uint64_t e) { deferred.push_back(e); });
    f.push(5);
    f.push(100);
    f.finish(120);
  }
  EXPECT_EQ(eager, deferred);
  EXPECT_EQ(eager.front(), 5u);
}

TEST(MinMaxFilter, DrainForcedAtExactTotalMatchesFinish) {
  // Gap of exactly max at the stream end: drain emits the boundary, finish
  // must then not duplicate it.
  std::vector<std::uint64_t> eager, deferred;
  {
    MinMaxFilter f(0, 50, [&](std::uint64_t e) { eager.push_back(e); });
    f.drain_forced(100);  // 50, 100
    f.finish(100);
  }
  {
    MinMaxFilter f(0, 50, [&](std::uint64_t e) { deferred.push_back(e); });
    f.finish(100);  // 50, 100
  }
  EXPECT_EQ(eager, deferred);
  EXPECT_EQ(eager, (std::vector<std::uint64_t>{50, 100}));
}

TEST(MinMaxFilter, StreamingMatchesBatch) {
  SplitMix64 rng(7);
  std::vector<std::uint64_t> raw;
  std::uint64_t pos = 0;
  for (int i = 0; i < 500; ++i) {
    pos += 1 + rng.next_below(400);
    raw.push_back(pos);
  }
  const std::uint64_t total = pos + 123;
  // Push one-by-one through the filter; compare against the batch helper.
  std::vector<std::uint64_t> streamed;
  MinMaxFilter filter(64, 512,
                      [&](std::uint64_t e) { streamed.push_back(e); });
  for (auto b : raw) filter.push(b);
  filter.finish(total);
  EXPECT_EQ(streamed, apply_min_max(raw, total, 64, 512));
}

TEST(MinMaxFilter, FinishTwiceThrows) {
  MinMaxFilter filter(0, 0, [](std::uint64_t) {});
  filter.finish(10);
  EXPECT_THROW(filter.finish(10), std::invalid_argument);
  EXPECT_THROW(filter.push(20), std::invalid_argument);
}

TEST(MinMaxFilter, RejectsNullEmit) {
  EXPECT_THROW(MinMaxFilter(0, 0, nullptr), std::invalid_argument);
}

// ---- Property sweep: randomized raw streams x (min, max) grid ----

struct MinMaxCase {
  std::uint64_t min;
  std::uint64_t max;
  std::uint64_t seed;
};

class MinMaxProperties : public ::testing::TestWithParam<MinMaxCase> {};

TEST_P(MinMaxProperties, Invariants) {
  const auto param = GetParam();
  SplitMix64 rng(param.seed);
  std::vector<std::uint64_t> raw;
  std::uint64_t pos = 0;
  const int n = 200 + static_cast<int>(rng.next_below(300));
  for (int i = 0; i < n; ++i) {
    pos += 1 + rng.next_below(300);
    raw.push_back(pos);
  }
  const std::uint64_t total = pos + rng.next_below(1000);

  const auto ends = apply_min_max(raw, total, param.min, param.max);

  // (1) Partition: ascending, last == total.
  ASSERT_FALSE(ends.empty());
  EXPECT_TRUE(std::is_sorted(ends.begin(), ends.end()));
  EXPECT_EQ(std::adjacent_find(ends.begin(), ends.end()), ends.end());
  EXPECT_EQ(ends.back(), total);

  // (2) Size bounds.
  std::uint64_t last = 0;
  for (std::size_t i = 0; i < ends.size(); ++i) {
    const std::uint64_t size = ends[i] - last;
    if (param.max != 0) {
      EXPECT_LE(size, param.max);
    }
    if (param.min != 0 && i + 1 != ends.size()) {
      EXPECT_GE(size, std::min<std::uint64_t>(param.min, total)) << i;
    }
    last = ends[i];
  }

  // (3) Every output boundary is either a raw boundary or a forced multiple
  //     of max measured from the previous accepted boundary.
  last = 0;
  for (std::uint64_t e : ends) {
    const bool is_raw = std::binary_search(raw.begin(), raw.end(), e);
    const bool is_forced = param.max != 0 && (e - last) == param.max;
    const bool is_final = e == total;
    EXPECT_TRUE(is_raw || is_forced || is_final) << "boundary " << e;
    last = e;
  }

  // (4) Idempotence on the accepted boundaries (already satisfy min/max):
  //     re-filtering the accepted set (minus total) yields the same result.
  std::vector<std::uint64_t> again_input(ends.begin(), ends.end() - 1);
  if (!again_input.empty() || total > 0) {
    const auto again = apply_min_max(again_input, total, param.min, param.max);
    EXPECT_EQ(again, ends);
  }
}

std::vector<MinMaxCase> min_max_grid() {
  std::vector<MinMaxCase> cases;
  const std::uint64_t mins[] = {0, 1, 64, 200, 500};
  const std::uint64_t maxs[] = {0, 256, 512, 1000};
  std::uint64_t seed = 1;
  for (auto mn : mins) {
    for (auto mx : maxs) {
      if (mx != 0 && mn > mx) continue;
      cases.push_back({mn, mx, seed++});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Grid, MinMaxProperties,
                         ::testing::ValuesIn(min_max_grid()));

}  // namespace
}  // namespace shredder::chunking
