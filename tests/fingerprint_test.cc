// Cross-backend equivalence suite for the on-device fingerprint stage:
// device-computed chunk digests must be bit-identical to the host
// dedup::Sha256 over the same chunks, for every backend (Shredder in all
// GPU modes, the multi-tenant service) and every chunk shape (min/max
// forced boundaries, chunks spanning buffers, empty streams, trailing
// chunks), and the precomputed-digest paths through Deduplicator and
// BackupServer must agree with their host-hashing twins.
#include <gtest/gtest.h>

#include <cstddef>
#include <thread>
#include <vector>

#include "backup/backup_server.h"
#include "chunking/cdc.h"
#include "common/rng.h"
#include "core/shredder.h"
#include "dedup/dedup.h"
#include "dedup/digest.h"
#include "service/service.h"

namespace shredder::core {
namespace {

chunking::ChunkerConfig small_chunker() {
  chunking::ChunkerConfig c;
  c.window = 16;
  c.mask_bits = 8;
  c.marker = 0x42;
  return c;
}

ShredderConfig small_config() {
  ShredderConfig cfg;
  cfg.chunker = small_chunker();
  cfg.buffer_bytes = 64 * 1024;
  cfg.kernel.blocks = 8;
  cfg.kernel.threads_per_block = 16;
  cfg.sim_threads = 4;
  cfg.fingerprint_on_device = true;
  return cfg;
}

// Host reference: the serial chunking plus one host SHA-256 per chunk.
std::vector<dedup::ChunkDigest> host_digests(
    ByteSpan data, const std::vector<chunking::Chunk>& chunks) {
  std::vector<dedup::ChunkDigest> out;
  out.reserve(chunks.size());
  for (const auto& c : chunks) {
    out.push_back(dedup::ChunkHasher::hash(
        data.subspan(static_cast<std::size_t>(c.offset),
                     static_cast<std::size_t>(c.size))));
  }
  return out;
}

// --- Shredder: every GPU mode must match the host reference ---

class FingerprintModes : public ::testing::TestWithParam<GpuMode> {};

TEST_P(FingerprintModes, DigestsMatchHostSha256) {
  ShredderConfig cfg = small_config();
  cfg.mode = GetParam();
  Shredder shredder(cfg);
  const auto data = random_bytes(500000, 23);
  const auto result = shredder.run(as_bytes(data));
  const auto expected =
      chunking::chunk_serial(shredder.tables(), cfg.chunker, as_bytes(data));
  EXPECT_EQ(result.chunks, expected);
  ASSERT_EQ(result.digests.size(), result.chunks.size());
  EXPECT_EQ(result.digests, host_digests(as_bytes(data), expected));
  EXPECT_GT(result.fingerprint_totals.virtual_seconds, 0.0);
  EXPECT_GE(result.fingerprint_totals.bytes_processed, data.size());
  EXPECT_GT(result.mean_stage_seconds.fingerprint, 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllModes, FingerprintModes,
                         ::testing::Values(GpuMode::kBasic, GpuMode::kStreams,
                                           GpuMode::kStreamsCoalesced));

TEST(Fingerprint, MinMaxForcedBoundariesHashCorrectly) {
  // Sparse raw boundaries + tight max_size: most chunk ends are forced by
  // the max-size rule, including at buffer seams — the drain_forced path.
  ShredderConfig cfg = small_config();
  cfg.chunker.mask_bits = 14;  // raw boundary every ~16 KB
  cfg.chunker.min_size = 256;
  cfg.chunker.max_size = 1024;
  cfg.buffer_bytes = 4096;
  Shredder shredder(cfg);
  const auto data = random_bytes(100000, 31);
  const auto result = shredder.run(as_bytes(data));
  const auto expected =
      chunking::chunk_serial(shredder.tables(), cfg.chunker, as_bytes(data));
  EXPECT_EQ(result.chunks, expected);
  EXPECT_EQ(result.digests, host_digests(as_bytes(data), expected));
}

TEST(Fingerprint, ChunkSpanningManyBuffersHashesIncrementally) {
  // No max size and a mask that (almost) never fires: chunks span many
  // buffers, so the carried SHA-256 context does the heavy lifting.
  ShredderConfig cfg = small_config();
  cfg.chunker.mask_bits = 22;
  cfg.buffer_bytes = 8192;
  Shredder shredder(cfg);
  const auto data = random_bytes(200000, 37);
  const auto result = shredder.run(as_bytes(data));
  const auto expected =
      chunking::chunk_serial(shredder.tables(), cfg.chunker, as_bytes(data));
  ASSERT_FALSE(result.chunks.empty());
  EXPECT_EQ(result.chunks, expected);
  EXPECT_EQ(result.digests, host_digests(as_bytes(data), expected));
}

TEST(Fingerprint, EmptyInputYieldsNoDigests) {
  Shredder shredder(small_config());
  const auto result = shredder.run(ByteSpan{});
  EXPECT_TRUE(result.chunks.empty());
  EXPECT_TRUE(result.digests.empty());
}

TEST(Fingerprint, TinyInputSingleTrailingChunk) {
  // Smaller than one buffer and than min_size: exactly one chunk, closed by
  // the eos path.
  ShredderConfig cfg = small_config();
  cfg.chunker.min_size = 4096;
  cfg.chunker.max_size = 0;
  Shredder shredder(cfg);
  const auto data = random_bytes(100, 41);
  const auto result = shredder.run(as_bytes(data));
  ASSERT_EQ(result.chunks.size(), 1u);
  EXPECT_EQ(result.chunks[0].size, 100u);
  ASSERT_EQ(result.digests.size(), 1u);
  EXPECT_EQ(result.digests[0], dedup::ChunkHasher::hash(as_bytes(data)));
}

TEST(Fingerprint, DigestCallbackStreamsInChunkOrder) {
  ShredderConfig cfg = small_config();
  Shredder shredder(cfg);
  const auto data = random_bytes(300000, 43);
  std::vector<chunking::Chunk> cb_chunks;
  std::vector<dedup::ChunkDigest> cb_digests;
  const auto result = shredder.run(
      as_bytes(data), {},
      [&](const chunking::Chunk& c, const dedup::ChunkDigest& d) {
        cb_chunks.push_back(c);
        cb_digests.push_back(d);
      });
  EXPECT_EQ(cb_chunks, result.chunks);
  EXPECT_EQ(cb_digests, result.digests);
}

TEST(Fingerprint, OffByDefaultLeavesResultUnchanged) {
  ShredderConfig cfg = small_config();
  cfg.fingerprint_on_device = false;
  Shredder shredder(cfg);
  const auto data = random_bytes(200000, 47);
  const auto result = shredder.run(as_bytes(data));
  EXPECT_TRUE(result.digests.empty());
  EXPECT_DOUBLE_EQ(result.mean_stage_seconds.fingerprint, 0.0);
  EXPECT_EQ(result.chunks, chunking::chunk_serial(shredder.tables(),
                                                  cfg.chunker, as_bytes(data)));
}

// --- Host backends agree with the device digests ---

TEST(Fingerprint, SerialAndParallelHostBackendsAgree) {
  const auto chunker = small_chunker();
  const rabin::RabinTables tables(chunker.window);
  const auto data = random_bytes(300000, 53);

  ShredderConfig cfg = small_config();
  Shredder shredder(cfg);
  const auto device = shredder.run(as_bytes(data));

  // Serial backend.
  const auto serial = chunking::chunk_serial(tables, chunker, as_bytes(data));
  EXPECT_EQ(device.chunks, serial);
  EXPECT_EQ(device.digests, host_digests(as_bytes(data), serial));
  // Parallel host backend.
  const auto parallel =
      chunk_on_host(as_bytes(data), chunker, gpu::HostSpec{}, true, 4);
  EXPECT_EQ(device.chunks, parallel.chunks);
  EXPECT_EQ(device.digests, host_digests(as_bytes(data), parallel.chunks));
}

// --- Multi-tenant service ---

TEST(Fingerprint, ServiceTenantsMatchHostSha256) {
  service::ServiceConfig cfg;
  cfg.chunker = small_chunker();
  cfg.chunker.min_size = 128;
  cfg.chunker.max_size = 2048;
  cfg.buffer_bytes = 32 * 1024;
  cfg.kernel.blocks = 8;
  cfg.kernel.threads_per_block = 16;
  cfg.sim_threads = 4;
  cfg.fingerprint_on_device = true;

  const std::size_t n_streams = 3;
  std::vector<ByteVec> payloads;
  for (std::size_t k = 0; k < n_streams; ++k) {
    payloads.push_back(random_bytes(120000 + 41017 * k, 500 + k));
  }

  service::ChunkingService svc(cfg);
  std::vector<service::ChunkingService::StreamId> ids;
  std::vector<std::vector<dedup::ChunkDigest>> streamed(n_streams);
  for (std::size_t k = 0; k < n_streams; ++k) {
    service::TenantOptions opts;
    opts.on_digest = [&streamed, k](const chunking::Chunk&,
                                    const dedup::ChunkDigest& d) {
      streamed[k].push_back(d);
    };
    ids.push_back(svc.open(std::move(opts)));
  }
  std::vector<std::thread> producers;
  for (std::size_t k = 0; k < n_streams; ++k) {
    producers.emplace_back([&, k] {
      svc.submit(ids[k], as_bytes(payloads[k]));
      svc.finish(ids[k]);
    });
  }
  for (auto& t : producers) t.join();

  const rabin::RabinTables tables(cfg.chunker.window);
  for (std::size_t k = 0; k < n_streams; ++k) {
    const auto result = svc.wait(ids[k]);
    const auto expected =
        chunking::chunk_serial(tables, cfg.chunker, as_bytes(payloads[k]));
    EXPECT_EQ(result.chunks, expected) << "stream " << k;
    EXPECT_EQ(result.digests, host_digests(as_bytes(payloads[k]), expected))
        << "stream " << k;
    EXPECT_EQ(streamed[k], result.digests) << "stream " << k;
    EXPECT_GT(result.report.stage_totals.fingerprint, 0.0);
  }
  svc.shutdown();
}

// --- Precomputed digests through the dedup/backup consumers ---

TEST(Fingerprint, DeduplicatorAcceptsDeviceDigests) {
  ShredderConfig cfg = small_config();
  Shredder shredder(cfg);
  const auto data = random_bytes(256 * 1024, 59);
  const auto result = shredder.run(as_bytes(data));

  dedup::Deduplicator host_path, device_path;
  const auto host_stats = host_path.ingest(as_bytes(data), result.chunks);
  const auto dev_stats =
      device_path.ingest(as_bytes(data), result.chunks, result.digests);
  EXPECT_EQ(dev_stats.chunks_total, host_stats.chunks_total);
  EXPECT_EQ(dev_stats.bytes_duplicate, host_stats.bytes_duplicate);
  EXPECT_EQ(device_path.store().unique_bytes(),
            host_path.store().unique_bytes());
  // The debug-mode ChunkStore::put recheck ran on every insert above; a
  // mismatched vector length must throw before any hashing happens.
  EXPECT_THROW(device_path.ingest(as_bytes(data), result.chunks, {}),
               std::invalid_argument);
}

TEST(Fingerprint, BackupServerDeviceHashMatchesHostHash) {
  backup::ImageRepoConfig repo_cfg;
  repo_cfg.image_bytes = 4 * 1024 * 1024;
  repo_cfg.segment_bytes = 256 * 1024;
  repo_cfg.seed = 77;
  backup::ImageRepository repo(repo_cfg);

  auto server_cfg = [&](bool device_hash) {
    backup::BackupServerConfig c;
    c.backend = backup::ChunkerBackend::kShredderGpu;
    c.chunker = small_chunker();
    c.chunker.min_size = 512;
    c.chunker.max_size = 8 * 1024;
    c.shredder.buffer_bytes = 512 * 1024;
    c.shredder.sim_threads = 4;
    c.fingerprint_on_device = device_hash;
    return c;
  };
  backup::BackupServer host_server(server_cfg(false));
  backup::BackupServer device_server(server_cfg(true));
  backup::BackupAgent host_agent, device_agent;

  for (int step = 0; step < 2; ++step) {
    const auto snap = repo.snapshot(step * 0.1, step + 1);
    const std::string id = "vm" + std::to_string(step);
    const auto hs = host_server.backup_image(id, as_bytes(snap), repo,
                                             host_agent);
    const auto ds = device_server.backup_image(id, as_bytes(snap), repo,
                                               device_agent);
    EXPECT_TRUE(hs.verified);
    EXPECT_TRUE(ds.verified);
    EXPECT_TRUE(ds.device_fingerprint);
    EXPECT_FALSE(hs.device_fingerprint);
    // Same chunks, same digests => identical dedup outcome.
    EXPECT_EQ(ds.chunks, hs.chunks);
    EXPECT_EQ(ds.duplicate_chunks, hs.duplicate_chunks);
    EXPECT_EQ(ds.unique_bytes, hs.unique_bytes);
    // The host hash stage disappears from the device path...
    EXPECT_DOUBLE_EQ(ds.hashing_seconds, 0.0);
    EXPECT_GT(hs.hashing_seconds, 0.0);
    // ...so steady-state backup bandwidth can only improve.
    EXPECT_GE(ds.backup_bandwidth_gbps, hs.backup_bandwidth_gbps);
  }
  EXPECT_EQ(host_agent.unique_bytes(), device_agent.unique_bytes());
}

TEST(Fingerprint, SharedServiceBackendCarriesDeviceDigests) {
  backup::ImageRepoConfig repo_cfg;
  repo_cfg.image_bytes = 2 * 1024 * 1024;
  repo_cfg.segment_bytes = 256 * 1024;
  backup::ImageRepository repo(repo_cfg);

  service::ServiceConfig svc_cfg;
  svc_cfg.chunker = small_chunker();
  svc_cfg.chunker.min_size = 512;
  svc_cfg.chunker.max_size = 8 * 1024;
  svc_cfg.buffer_bytes = 256 * 1024;
  svc_cfg.sim_threads = 4;
  svc_cfg.fingerprint_on_device = true;

  backup::BackupServerConfig cfg;
  cfg.backend = backup::ChunkerBackend::kSharedService;
  cfg.chunker = svc_cfg.chunker;
  cfg.fingerprint_on_device = true;
  cfg.service = std::make_shared<service::ChunkingService>(svc_cfg);

  backup::BackupServer server(cfg);
  backup::BackupAgent agent;
  const auto base = repo.snapshot(0.0, 1);
  std::vector<backup::BackupServer::SnapshotJob> jobs;
  jobs.push_back({"vm1", as_bytes(base)});
  jobs.push_back({"vm2", as_bytes(base)});  // identical: fully deduplicated
  const auto stats = server.backup_images(jobs, repo, agent);
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_TRUE(stats[0].verified);
  EXPECT_TRUE(stats[1].verified);
  EXPECT_TRUE(stats[0].device_fingerprint);
  EXPECT_EQ(stats[1].duplicate_chunks, stats[1].chunks);
  EXPECT_EQ(stats[1].unique_bytes, 0u);
}

TEST(Fingerprint, SharedServiceFingerprintMismatchRejected) {
  service::ServiceConfig svc_cfg;
  svc_cfg.chunker = small_chunker();
  svc_cfg.buffer_bytes = 256 * 1024;
  svc_cfg.sim_threads = 2;
  svc_cfg.fingerprint_on_device = false;

  backup::BackupServerConfig cfg;
  cfg.backend = backup::ChunkerBackend::kSharedService;
  cfg.chunker = svc_cfg.chunker;
  cfg.fingerprint_on_device = true;  // differs from the service
  cfg.service = std::make_shared<service::ChunkingService>(svc_cfg);
  EXPECT_THROW(backup::BackupServer{cfg}, std::invalid_argument);
}

// --- Overlap: the hash kernel must not serialize the pipeline ---

TEST(Fingerprint, PipelinedFingerprintOverlapsStages) {
  ShredderConfig cfg = small_config();
  cfg.buffer_bytes = 256 * 1024;
  Shredder shredder(cfg);
  const auto data = random_bytes(4 << 20, 61);
  const auto result = shredder.run(as_bytes(data));
  // With the hash kernel overlapping the next buffer's H2D, the pipeline
  // makespan stays well below the serialized stage sum.
  EXPECT_LT(result.virtual_seconds, result.serialized_seconds * 0.75);
  EXPECT_GT(result.mean_stage_seconds.fingerprint, 0.0);
}

}  // namespace
}  // namespace shredder::core
