// Tests for the GPU simulator: DRAM bank model, DMA model, pinned memory,
// timeline scheduling, and kernel launch accounting.
#include <gtest/gtest.h>

#include <cstring>

#include "common/rng.h"
#include "gpusim/device.h"
#include "gpusim/dma.h"
#include "gpusim/dram.h"
#include "gpusim/pinned.h"
#include "gpusim/spec.h"
#include "gpusim/timeline.h"

namespace shredder::gpu {
namespace {

DeviceSpec spec() { return DeviceSpec{}; }

// --- DRAM address mapping ---

TEST(DramMapping, ConsecutiveRowsInterleaveAcrossBanks) {
  const auto s = spec();
  const auto a0 = map_address(s, 0);
  const auto a1 = map_address(s, s.row_bytes);
  EXPECT_EQ(a0.row, a1.row);
  EXPECT_TRUE(a0.bank != a1.bank || a0.channel != a1.channel);
}

TEST(DramMapping, SameRowWithinRowBytes) {
  const auto s = spec();
  const auto a0 = map_address(s, 1000);
  const auto a1 = map_address(s, 1001);
  EXPECT_EQ(a0.bank, a1.bank);
  EXPECT_EQ(a0.row, a1.row);
  EXPECT_EQ(a0.channel, a1.channel);
}

TEST(DramMapping, WrapsAfterAllBanks) {
  const auto s = spec();
  const std::uint64_t stride =
      s.row_bytes * static_cast<std::uint64_t>(s.total_banks());
  const auto a0 = map_address(s, 0);
  const auto a1 = map_address(s, stride);
  EXPECT_EQ(a0.bank, a1.bank);
  EXPECT_EQ(a0.channel, a1.channel);
  EXPECT_EQ(a1.row, a0.row + 1);
}

// --- DramSimulator exact accounting ---

TEST(DramSimulator, SequentialStreamRarelySwitches) {
  const auto s = spec();
  DramSimulator dram(s);
  // One sequential reader: row switches only when leaving a row.
  for (std::uint64_t a = 0; a < 1024 * 1024; a += s.burst_bytes) {
    dram.access(a, s.burst_bytes);
  }
  const auto& st = dram.stats();
  EXPECT_GT(st.transactions, 0u);
  // Expected switch fraction ~ burst/row = 128/2048, minus cold rows.
  EXPECT_LT(st.row_switch_fraction(), 0.10);
}

TEST(DramSimulator, InterleavedFarStreamsAlwaysSwitch) {
  const auto s = spec();
  DramSimulator dram(s);
  // 448 streams spaced 4 MB apart, round-robin 16 B reads: the basic
  // chunking kernel's pattern. Nearly every access hits a bank whose open
  // row belongs to another stream.
  constexpr int kStreams = 448;
  constexpr std::uint64_t kSpacing = 4ull * 1024 * 1024;
  for (int step = 0; step < 64; ++step) {
    for (int t = 0; t < kStreams; ++t) {
      dram.access(static_cast<std::uint64_t>(t) * kSpacing +
                      static_cast<std::uint64_t>(step) * 16,
                  16);
    }
  }
  EXPECT_GT(dram.stats().row_switch_fraction(), 0.90);
}

TEST(DramSimulator, AccessSpanningRowsCountsEachBurst) {
  const auto s = spec();
  DramSimulator dram(s);
  dram.access(0, s.burst_bytes * 3);
  EXPECT_EQ(dram.stats().transactions, 3u);
  EXPECT_EQ(dram.stats().bytes_fetched, s.burst_bytes * 3);
}

TEST(DramSimulator, ResetClears) {
  const auto s = spec();
  DramSimulator dram(s);
  dram.access(0, 4096);
  dram.reset();
  EXPECT_EQ(dram.stats().transactions, 0u);
  EXPECT_EQ(dram.stats().row_switches, 0u);
}

// Estimator vs exact simulation, across stream counts (the cross-validation
// promised in DESIGN.md). The estimator assumes streams land on banks
// without systematic alignment, so the exact replay spaces streams with a
// stride co-prime to the bank interleave (a bank-aligned stride is a
// pathological worst case the real kernel's odd sub-stream sizes avoid).
// Validated in the two regimes the kernels operate in: far below the bank
// count (coalesced fetches) and far above it (per-thread sub-streams);
// between those the estimator is a deliberate smooth interpolation.
class EstimatorVsExact : public ::testing::TestWithParam<int> {};

TEST_P(EstimatorVsExact, CloseForInterleavedStreams) {
  const auto s = spec();
  const int streams = GetParam();
  const std::uint64_t txn = 16;
  DramSimulator dram(s);
  // 77 rows per stream step; gcd(77, 96 banks) == 1 spreads streams evenly.
  const std::uint64_t spacing = 77 * s.row_bytes;
  for (int step = 0; step < 256; ++step) {
    for (int t = 0; t < streams; ++t) {
      dram.access(static_cast<std::uint64_t>(t) * spacing +
                      static_cast<std::uint64_t>(step) * txn,
                  txn);
    }
  }
  const double exact = dram.stats().row_switch_fraction();
  const double est = estimate_row_switch_fraction(
      s, static_cast<std::uint64_t>(streams), txn);
  EXPECT_NEAR(est, exact, 0.15) << "streams=" << streams;
}

INSTANTIATE_TEST_SUITE_P(Streams, EstimatorVsExact,
                         ::testing::Values(1, 2, 8, 192, 448, 1024));

TEST(Estimator, MonotonicInStreams) {
  const auto s = spec();
  double prev = 0;
  for (std::uint64_t streams : {1, 2, 4, 14, 96, 448, 3584}) {
    const double f = estimate_row_switch_fraction(s, streams, 16);
    EXPECT_GE(f, prev);
    prev = f;
  }
}

TEST(Estimator, UncoalescedVsCoalescedGap) {
  // The >5x row-switch gap that memory coalescing exploits (Fig 11).
  const auto s = spec();
  const double uncoalesced =
      estimate_row_switch_fraction(s, 3584, s.uncoalesced_txn_bytes);
  const double coalesced =
      estimate_row_switch_fraction(s, 14, s.coalesced_txn_bytes);
  EXPECT_GT(uncoalesced, 0.95);
  EXPECT_LT(coalesced, 0.30);
}

TEST(DramTime, ScalesWithTransactionsAndSwitches) {
  const auto s = spec();
  const double fast = dram_time_seconds(s, 1000, 0.0);
  const double slow = dram_time_seconds(s, 1000, 1.0);
  EXPECT_GT(slow, fast * 5);
  EXPECT_NEAR(dram_time_seconds(s, 2000, 0.5), 2 * dram_time_seconds(s, 1000, 0.5),
              1e-12);
}

// --- DMA model (Figure 3 shapes) ---

TEST(Dma, PinnedFasterThanPageableMidSizes) {
  const auto s = spec();
  for (std::uint64_t bytes : {256ull * 1024, 1ull << 20, 4ull << 20}) {
    EXPECT_GT(dma_effective_bw(s, bytes, Direction::kHostToDevice,
                               HostMemKind::kPinned),
              dma_effective_bw(s, bytes, Direction::kHostToDevice,
                               HostMemKind::kPageable))
        << bytes;
  }
}

TEST(Dma, SmallTransfersAreOverheadDominated) {
  const auto s = spec();
  const double bw4k =
      dma_effective_bw(s, 4096, Direction::kHostToDevice, HostMemKind::kPinned);
  const double bw64m = dma_effective_bw(s, 64ull << 20,
                                        Direction::kHostToDevice,
                                        HostMemKind::kPinned);
  EXPECT_LT(bw4k, bw64m / 5);
}

TEST(Dma, PinnedSaturatesEarlierThanPageable) {
  const auto s = spec();
  auto near_peak = [&](std::uint64_t bytes, HostMemKind kind) {
    const double bw =
        dma_effective_bw(s, bytes, Direction::kHostToDevice, kind);
    return bw > 0.90 * s.h2d_pinned_bw;
  };
  EXPECT_TRUE(near_peak(1ull << 20, HostMemKind::kPinned));      // 1 MB
  EXPECT_FALSE(near_peak(1ull << 20, HostMemKind::kPageable));   // 1 MB
  EXPECT_TRUE(near_peak(64ull << 20, HostMemKind::kPageable));   // 64 MB
}

TEST(Dma, LargeBufferPageableWithinFifteenPercent) {
  // Paper highlight (iii): for >= 32 MB the pageable/pinned gap is small.
  const auto s = spec();
  const double pinned = dma_effective_bw(s, 64ull << 20,
                                         Direction::kHostToDevice,
                                         HostMemKind::kPinned);
  const double pageable = dma_effective_bw(s, 64ull << 20,
                                           Direction::kHostToDevice,
                                           HostMemKind::kPageable);
  EXPECT_GT(pageable, pinned * 0.85);
}

TEST(Dma, DirectionalAsymmetry) {
  const auto s = spec();
  EXPECT_GT(dma_effective_bw(s, 64ull << 20, Direction::kHostToDevice,
                             HostMemKind::kPinned),
            dma_effective_bw(s, 64ull << 20, Direction::kDeviceToHost,
                             HostMemKind::kPinned));
}

TEST(Dma, ZeroBytesZeroSeconds) {
  const auto s = spec();
  EXPECT_EQ(dma_seconds(s, 0, Direction::kHostToDevice, HostMemKind::kPinned),
            0.0);
}

// --- Pinned allocation model (Figure 6 shapes) ---

TEST(Pinned, AllocationOrderOfMagnitudeCostlier) {
  const auto s = spec();
  for (std::uint64_t bytes : {16ull << 20, 64ull << 20, 256ull << 20}) {
    EXPECT_GT(pinned_alloc_seconds(s, bytes),
              8 * pageable_alloc_seconds(s, bytes));
  }
}

TEST(Pinned, RingAmortizesToMemcpyCost) {
  const auto s = spec();
  const std::uint64_t bytes = 32ull << 20;
  // Steady-state ring cost: one pageable->pinned copy, far below a fresh
  // pinned allocation.
  EXPECT_LT(pageable_to_pinned_copy_seconds(s, bytes),
            pinned_alloc_seconds(s, bytes) / 5);
}

TEST(PinnedBuffer, AlignedAndZeroed) {
  PinnedBuffer buf(1 << 16);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buf.span().data()) % 4096, 0u);
  for (auto b : buf.span()) ASSERT_EQ(b, 0);
}

TEST(PinnedRing, RoundRobinReuse) {
  const auto s = spec();
  PinnedRing ring(s, 4, 1024);
  const auto first = ring.acquire();
  ring.acquire();
  ring.acquire();
  ring.acquire();
  const auto again = ring.acquire();
  EXPECT_EQ(first.index, again.index);
  EXPECT_EQ(first.span.data(), again.span.data());
}

TEST(PinnedRing, ConstructionCostCountsAllSlots) {
  const auto s = spec();
  PinnedRing ring(s, 4, 1 << 20);
  EXPECT_NEAR(ring.construction_cost_seconds(),
              4 * pinned_alloc_seconds(s, 1 << 20), 1e-9);
}

TEST(PinnedRing, RejectsBadArguments) {
  const auto s = spec();
  EXPECT_THROW(PinnedRing(s, 0, 1024), std::invalid_argument);
  EXPECT_THROW(PinnedRing(s, 2, 0), std::invalid_argument);
}

// --- Timeline ---

TEST(Timeline, SingleStreamSerializes) {
  GpuTimeline tl(1);
  tl.enqueue(0, EngineKind::kCopyH2D, 1.0);
  tl.enqueue(0, EngineKind::kCompute, 2.0);
  tl.enqueue(0, EngineKind::kCopyH2D, 1.0);
  EXPECT_DOUBLE_EQ(tl.makespan(), 4.0);
}

TEST(Timeline, TwoStreamsOverlapCopyAndCompute) {
  // Double buffering: copy of buffer 2 hides under compute of buffer 1.
  GpuTimeline tl(2);
  tl.enqueue(0, EngineKind::kCopyH2D, 1.0);   // copy A
  tl.enqueue(1, EngineKind::kCopyH2D, 1.0);   // copy B (after A on engine)
  tl.enqueue(0, EngineKind::kCompute, 3.0);   // compute A
  tl.enqueue(1, EngineKind::kCompute, 3.0);   // compute B
  // copyA 0-1, copyB 1-2, computeA 1-4, computeB 4-7.
  EXPECT_DOUBLE_EQ(tl.makespan(), 7.0);
  // Serialized would be 8.
}

TEST(Timeline, EngineExclusivity) {
  GpuTimeline tl(2);
  tl.enqueue(0, EngineKind::kCompute, 2.0);
  tl.enqueue(1, EngineKind::kCompute, 2.0);
  EXPECT_DOUBLE_EQ(tl.makespan(), 4.0);  // same engine -> serial
}

TEST(Timeline, BusyAccounting) {
  GpuTimeline tl(2);
  tl.enqueue(0, EngineKind::kCopyH2D, 1.5);
  tl.enqueue(1, EngineKind::kCopyD2H, 0.5);
  EXPECT_DOUBLE_EQ(tl.engine_busy(EngineKind::kCopyH2D), 1.5);
  EXPECT_DOUBLE_EQ(tl.engine_busy(EngineKind::kCopyD2H), 0.5);
  EXPECT_DOUBLE_EQ(tl.engine_busy(EngineKind::kCompute), 0.0);
}

TEST(Timeline, RejectsBadArguments) {
  EXPECT_THROW(GpuTimeline(0), std::invalid_argument);
  GpuTimeline tl(1);
  EXPECT_THROW(tl.enqueue(1, EngineKind::kCompute, 1.0), std::invalid_argument);
  EXPECT_THROW(tl.enqueue(0, EngineKind::kCompute, -1.0), std::invalid_argument);
  EXPECT_THROW(tl.enqueue(0, EngineKind::kCompute, 1.0, -1.0),
               std::invalid_argument);
}

TEST(Timeline, EarliestStartDelaysOperation) {
  GpuTimeline tl(1);
  // Producer delivers the buffer at t=5; the engine is free long before.
  tl.enqueue(0, EngineKind::kCopyH2D, 1.0, 5.0);
  EXPECT_DOUBLE_EQ(tl.makespan(), 6.0);
  // A later op with an earlier ready time still queues FIFO on the stream.
  tl.enqueue(0, EngineKind::kCompute, 1.0, 0.0);
  EXPECT_DOUBLE_EQ(tl.makespan(), 7.0);
}

TEST(Timeline, AddStreamGrowsDynamically) {
  GpuTimeline tl(1);
  const std::size_t s = tl.add_stream();
  EXPECT_EQ(s, 1u);
  EXPECT_EQ(tl.num_streams(), 2u);
  tl.enqueue(s, EngineKind::kCompute, 2.0);
  EXPECT_DOUBLE_EQ(tl.stream_time(s), 2.0);
}

// --- Timeline invariants under randomized load ---

TEST(TimelineInvariants, EngineBusyNeverExceedsMakespan) {
  // Busy time is a subset of [0, makespan] for every engine, whatever the
  // interleaving; randomized load (deterministic seed) probes interleavings
  // the handwritten schedules above never reach.
  shredder::SplitMix64 rng(42);
  GpuTimeline tl(4);
  const EngineKind kinds[] = {EngineKind::kCopyH2D, EngineKind::kCopyD2H,
                              EngineKind::kCompute};
  double total = 0;
  for (int i = 0; i < 300; ++i) {
    const auto stream = static_cast<std::size_t>(rng.next_below(4));
    const EngineKind engine = kinds[rng.next_below(3)];
    const double dur = rng.next_double() * 2.0;
    const double ready = rng.next_double() * 5.0;
    const double finish = tl.enqueue(stream, engine, dur, ready);
    EXPECT_GE(finish, ready + dur);
    EXPECT_LE(finish, tl.makespan());
    total += dur;
  }
  double busy_sum = 0;
  for (const EngineKind k : kinds) {
    EXPECT_LE(tl.engine_busy(k), tl.makespan());
    EXPECT_GE(tl.engine_busy(k), 0.0);
    busy_sum += tl.engine_busy(k);
  }
  // Every enqueued second lands on exactly one engine.
  EXPECT_NEAR(busy_sum, total, 1e-9);
  // Three engines can't pack more than 3x the makespan.
  EXPECT_LE(busy_sum, 3.0 * tl.makespan() + 1e-9);
}

TEST(TimelineInvariants, OneEngineSerializesAcrossStreams) {
  // All work on a single engine must serialize even from distinct streams:
  // successive finish times are spaced by at least the later op's duration,
  // and the engine ends exactly sum-of-durations busy with no ready gaps.
  shredder::SplitMix64 rng(7);
  GpuTimeline tl(3);
  double prev_finish = 0;
  double total = 0;
  for (int i = 0; i < 100; ++i) {
    const double dur = 0.1 + rng.next_double();
    const double finish = tl.enqueue(static_cast<std::size_t>(rng.next_below(3)),
                                     EngineKind::kCompute, dur);
    EXPECT_GE(finish, prev_finish + dur - 1e-12);
    prev_finish = finish;
    total += dur;
  }
  EXPECT_DOUBLE_EQ(tl.engine_busy(EngineKind::kCompute), total);
  EXPECT_DOUBLE_EQ(tl.makespan(), total);  // back-to-back, no idle gaps
}

TEST(TimelineInvariants, AddStreamMidRunQueuesBehindEngineOnly) {
  GpuTimeline tl(1);
  tl.enqueue(0, EngineKind::kCompute, 4.0);  // compute busy until t=4
  // A stream opened mid-run has no FIFO history: it waits only for the
  // engine. On the idle h2d engine it starts immediately ...
  const std::size_t s = tl.add_stream();
  EXPECT_DOUBLE_EQ(tl.enqueue(s, EngineKind::kCopyH2D, 1.0), 1.0);
  // ... and on the busy compute engine it starts when the engine frees
  // (t=4, not at its own stream frontier t=1).
  EXPECT_DOUBLE_EQ(tl.enqueue(s, EngineKind::kCompute, 0.5), 4.5);
  // A third stream added after all that still sees only engine frontiers:
  // h2d freed at t=1, unaffected by the other streams' compute backlog.
  const std::size_t s2 = tl.add_stream();
  EXPECT_DOUBLE_EQ(tl.enqueue(s2, EngineKind::kCopyH2D, 0.25), 1.25);
  EXPECT_EQ(tl.num_streams(), 3u);
}

TEST(TimelineInvariants, EarliestStartGapIsIdleNotBusy) {
  // The wait for a producer (earliest_start) delays the op but must not be
  // booked as engine busy time — utilisation reports would otherwise count
  // starvation as work.
  GpuTimeline tl(1);
  tl.enqueue(0, EngineKind::kCompute, 2.0, 10.0);
  EXPECT_DOUBLE_EQ(tl.makespan(), 12.0);
  EXPECT_DOUBLE_EQ(tl.engine_busy(EngineKind::kCompute), 2.0);
  // A follow-up with an already-past ready time starts right at the
  // stream/engine frontier; busy accumulates only the durations.
  tl.enqueue(0, EngineKind::kCompute, 1.0, 3.0);
  EXPECT_DOUBLE_EQ(tl.makespan(), 13.0);
  EXPECT_DOUBLE_EQ(tl.engine_busy(EngineKind::kCompute), 3.0);
}

// --- pipeline_makespan (Figure 9 mechanics) ---

TEST(PipelineMakespan, SingleSlotIsSerial) {
  const std::vector<double> stages = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(pipeline_makespan(stages, 10, 1), 100.0);
}

TEST(PipelineMakespan, FullPipelineBoundByBottleneck) {
  const std::vector<double> stages = {1, 2, 3, 4};
  // n large: makespan -> n * bottleneck + startup.
  const double m = pipeline_makespan(stages, 1000, 4);
  EXPECT_NEAR(m / 1000.0, 4.0, 0.05);
}

TEST(PipelineMakespan, EqualStagesApproachStageCountSpeedup) {
  const std::vector<double> stages = {1, 1, 1, 1};
  const double serial = 4.0 * 1000;
  const double m = pipeline_makespan(stages, 1000, 4);
  EXPECT_GT(serial / m, 3.9);
}

TEST(PipelineMakespan, MoreSlotsNeverSlower) {
  const std::vector<double> stages = {1, 2, 1, 3};
  double prev = pipeline_makespan(stages, 100, 1);
  for (std::size_t slots = 2; slots <= 6; ++slots) {
    const double m = pipeline_makespan(stages, 100, slots);
    EXPECT_LE(m, prev + 1e-9);
    prev = m;
  }
}

TEST(PipelineMakespan, UnequalStagesCapSpeedup) {
  // The Figure 9 observation: 4 stages but speedup ~2 when costs differ.
  const std::vector<double> stages = {0.5, 0.2, 0.9, 0.05};
  const double serial = (0.5 + 0.2 + 0.9 + 0.05) * 64;
  const double m = pipeline_makespan(stages, 64, 4);
  const double speedup = serial / m;
  EXPECT_GT(speedup, 1.6);
  EXPECT_LT(speedup, 2.1);
}

TEST(PipelineMakespan, RejectsBadArguments) {
  EXPECT_THROW(pipeline_makespan({}, 10, 2), std::invalid_argument);
  EXPECT_THROW(pipeline_makespan({1.0}, 10, 0), std::invalid_argument);
  EXPECT_THROW(pipeline_makespan({-1.0}, 10, 2), std::invalid_argument);
}

TEST(PipelineMakespan, ZeroBuffers) {
  EXPECT_DOUBLE_EQ(pipeline_makespan({1.0}, 0, 2), 0.0);
}

// --- Device: allocation, copies, kernel launch ---

TEST(Device, AllocRespectsCapacity) {
  Device dev(spec(), 2);
  auto big = dev.alloc(2ull * 1024 * 1024 * 1024);  // 2 GB
  EXPECT_THROW(dev.alloc(700ull * 1024 * 1024), std::runtime_error);
}

TEST(Device, AllocReleaseCycle) {
  Device dev(spec(), 2);
  {
    auto buf = dev.alloc(1 << 20);
    EXPECT_EQ(dev.allocated_bytes(), 1u << 20);
  }
  EXPECT_EQ(dev.allocated_bytes(), 0u);
}

TEST(Device, BuffersStartOnFreshRows) {
  Device dev(spec(), 2);
  auto a = dev.alloc(1000);
  auto b = dev.alloc(1000);
  EXPECT_EQ(a.device_addr() % spec().row_bytes, 0u);
  EXPECT_EQ(b.device_addr() % spec().row_bytes, 0u);
  EXPECT_NE(a.device_addr(), b.device_addr());
}

TEST(Device, MemcpyRoundTrip) {
  Device dev(spec(), 2);
  auto buf = dev.alloc(4096);
  const auto data = random_bytes(4096, 77);
  const double h2d = dev.memcpy_h2d(buf, 0, as_bytes(data), HostMemKind::kPinned);
  EXPECT_GT(h2d, 0.0);
  ByteVec out(4096);
  const double d2h =
      dev.memcpy_d2h({out.data(), out.size()}, buf, 0, HostMemKind::kPinned);
  EXPECT_GT(d2h, 0.0);
  EXPECT_EQ(out, data);
}

TEST(Device, MemcpyBoundsChecked) {
  Device dev(spec(), 2);
  auto buf = dev.alloc(100);
  const auto data = random_bytes(200, 1);
  EXPECT_THROW(dev.memcpy_h2d(buf, 0, as_bytes(data), HostMemKind::kPinned),
               std::invalid_argument);
}

TEST(Device, LaunchRunsEveryBlockOnce) {
  Device dev(spec(), 4);
  LaunchConfig cfg;
  cfg.blocks = 37;
  std::vector<std::atomic<int>> hits(37);
  dev.launch(cfg, [&](BlockCtx& ctx) {
    hits[static_cast<std::size_t>(ctx.block_idx())]++;
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Device, LaunchStatsComputeVsMemory) {
  Device dev(spec(), 4);
  LaunchConfig cfg;
  cfg.blocks = 8;
  cfg.txn_bytes = 16;
  cfg.concurrent_streams = 1024;  // heavy conflicts
  const auto stats = dev.launch(cfg, [&](BlockCtx& ctx) {
    ctx.record_processed(1 << 20);
    ctx.record_global_read(0, 1 << 20);
  });
  EXPECT_EQ(stats.bytes_processed, 8u << 20);
  EXPECT_EQ(stats.transactions, 8u * ((1 << 20) / 16));
  EXPECT_GT(stats.memory_seconds, stats.compute_seconds);
  EXPECT_GT(stats.virtual_seconds, stats.memory_seconds);
}

TEST(Device, SharedMemoryIsPerBlockAndWritable) {
  Device dev(spec(), 4);
  LaunchConfig cfg;
  cfg.blocks = 4;
  dev.launch(cfg, [&](BlockCtx& ctx) {
    auto sh = ctx.shared();
    ASSERT_EQ(sh.size(), spec().shared_mem_per_sm);
    std::memset(sh.data(), ctx.block_idx() + 1, sh.size());
    for (auto b : sh) {
      ASSERT_EQ(b, static_cast<std::uint8_t>(ctx.block_idx() + 1));
    }
  });
}

TEST(Device, ExactDramModeProducesFraction) {
  Device dev(spec(), 2);
  LaunchConfig cfg;
  cfg.blocks = 2;
  cfg.txn_bytes = 128;
  cfg.exact_dram = true;
  const auto stats = dev.launch(cfg, [&](BlockCtx& ctx) {
    // Each block walks a distinct 64 KB region sequentially; two regions
    // 64 KB apart cover disjoint bank ranges, so switches are rare.
    const std::uint64_t base =
        static_cast<std::uint64_t>(ctx.block_idx()) * (1 << 16);
    ctx.record_global_read(base, 1 << 16);
    ctx.record_processed(1 << 16);
  });
  EXPECT_LT(stats.row_switch_fraction, 0.30);
}

TEST(Device, LaunchValidatesConfig) {
  Device dev(spec(), 2);
  LaunchConfig bad;
  bad.blocks = 0;
  EXPECT_THROW(dev.launch(bad, [](BlockCtx&) {}), std::invalid_argument);
  LaunchConfig bad2;
  bad2.txn_bytes = 0;
  EXPECT_THROW(dev.launch(bad2, [](BlockCtx&) {}), std::invalid_argument);
}

}  // namespace
}  // namespace shredder::gpu
