// Tests for the multi-tenant ChunkingService: the service equivalence suite
// (K interleaved streams must be bit-identical to K dedicated Shredder runs),
// backpressure behaviour, weighted fairness, admission control and reports.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "chunking/cdc.h"
#include "common/rng.h"
#include "core/shredder.h"
#include "service/service.h"

namespace shredder::service {
namespace {

chunking::ChunkerConfig small_chunker() {
  chunking::ChunkerConfig c;
  c.window = 16;
  c.mask_bits = 8;
  c.marker = 0x42;
  return c;
}

ServiceConfig small_service_config() {
  ServiceConfig cfg;
  cfg.chunker = small_chunker();
  cfg.buffer_bytes = 64 * 1024;
  cfg.kernel.blocks = 8;
  cfg.kernel.threads_per_block = 16;
  cfg.sim_threads = 4;
  return cfg;
}

core::ShredderConfig matching_shredder_config(const ServiceConfig& cfg) {
  core::ShredderConfig scfg;
  scfg.chunker = cfg.chunker;
  scfg.buffer_bytes = cfg.buffer_bytes;
  scfg.mode = cfg.mode;
  scfg.kernel = cfg.kernel;
  scfg.ring_slots = cfg.ring_slots;
  scfg.device = cfg.device;
  scfg.host = cfg.host;
  scfg.sim_threads = cfg.sim_threads;
  return scfg;
}

// Dedicated single-stream reference for one tenant's bytes.
std::vector<chunking::Chunk> dedicated_chunks(const ServiceConfig& cfg,
                                              ByteSpan data) {
  core::Shredder shredder(matching_shredder_config(cfg));
  return shredder.run(data).chunks;
}

// --- The service equivalence suite -----------------------------------------

struct EquivalenceCase {
  core::GpuMode mode;
  std::size_t buffer_bytes;
  std::size_t n_streams;
  std::uint64_t min_size;
  std::uint64_t max_size;
};

class ServiceEquivalence : public ::testing::TestWithParam<EquivalenceCase> {};

TEST_P(ServiceEquivalence, InterleavedStreamsMatchDedicatedRuns) {
  const auto p = GetParam();
  ServiceConfig cfg = small_service_config();
  cfg.mode = p.mode;
  cfg.buffer_bytes = p.buffer_bytes;
  cfg.chunker.min_size = p.min_size;
  cfg.chunker.max_size = p.max_size;

  // Distinct payload per tenant, deliberately not a multiple of buffer_bytes.
  std::vector<ByteVec> payloads;
  for (std::size_t k = 0; k < p.n_streams; ++k) {
    payloads.push_back(random_bytes(150000 + 37831 * k, 100 + k));
  }

  ChunkingService svc(cfg);
  std::vector<ChunkingService::StreamId> ids;
  for (std::size_t k = 0; k < p.n_streams; ++k) {
    TenantOptions opts;
    opts.name = "t";
    opts.name += std::to_string(k);
    ids.push_back(svc.open(std::move(opts)));
  }

  // Interleave ragged slices of every stream through the shared pipeline.
  std::vector<std::size_t> pos(p.n_streams, 0);
  SplitMix64 rng(7);
  bool progress = true;
  while (progress) {
    progress = false;
    for (std::size_t k = 0; k < p.n_streams; ++k) {
      if (pos[k] >= payloads[k].size()) continue;
      const std::size_t n = std::min<std::size_t>(
          1 + rng.next_below(3 * cfg.buffer_bytes / 2),
          payloads[k].size() - pos[k]);
      svc.submit(ids[k], ByteSpan{payloads[k].data() + pos[k], n});
      pos[k] += n;
      progress = true;
    }
  }
  for (std::size_t k = 0; k < p.n_streams; ++k) svc.finish(ids[k]);

  for (std::size_t k = 0; k < p.n_streams; ++k) {
    const auto result = svc.wait(ids[k]);
    EXPECT_EQ(result.chunks, dedicated_chunks(cfg, as_bytes(payloads[k])))
        << "stream " << k;
    EXPECT_EQ(result.report.total_bytes, payloads[k].size());
    EXPECT_GT(result.report.virtual_seconds, 0.0);
  }
  const auto report = svc.shutdown();
  EXPECT_EQ(report.n_tenants, p.n_streams);
}

std::vector<EquivalenceCase> equivalence_grid() {
  std::vector<EquivalenceCase> cases;
  for (const core::GpuMode mode :
       {core::GpuMode::kBasic, core::GpuMode::kStreams,
        core::GpuMode::kStreamsCoalesced}) {
    for (const std::size_t buffer : {8192uL, 65536uL}) {
      for (const std::size_t k : {1uL, 3uL}) {
        cases.push_back({mode, buffer, k, 0, 0});
      }
    }
  }
  // Min/max splicing interleaved across 5 tenants.
  cases.push_back({core::GpuMode::kStreamsCoalesced, 16384, 5, 256, 2048});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Grid, ServiceEquivalence,
                         ::testing::ValuesIn(equivalence_grid()));

TEST(ChunkingService, ConcurrentProducersMatchDedicatedRuns) {
  ServiceConfig cfg = small_service_config();
  cfg.buffer_bytes = 16 * 1024;
  cfg.tenant_queue_depth = 2;
  constexpr std::size_t kStreams = 6;

  std::vector<ByteVec> payloads;
  for (std::size_t k = 0; k < kStreams; ++k) {
    payloads.push_back(random_bytes(120000 + 9973 * k, 500 + k));
  }

  ChunkingService svc(cfg);
  std::vector<ChunkingService::StreamId> ids;
  for (std::size_t k = 0; k < kStreams; ++k) ids.push_back(svc.open());

  std::vector<std::thread> producers;
  for (std::size_t k = 0; k < kStreams; ++k) {
    producers.emplace_back([&, k] {
      SplitMix64 rng(k);
      std::size_t pos = 0;
      while (pos < payloads[k].size()) {
        const std::size_t n = std::min<std::size_t>(
            1 + rng.next_below(40000), payloads[k].size() - pos);
        svc.submit(ids[k], ByteSpan{payloads[k].data() + pos, n});
        pos += n;
      }
      svc.finish(ids[k]);
    });
  }
  for (auto& t : producers) t.join();

  for (std::size_t k = 0; k < kStreams; ++k) {
    const auto result = svc.wait(ids[k]);
    EXPECT_EQ(result.chunks, dedicated_chunks(cfg, as_bytes(payloads[k])))
        << "stream " << k;
  }
}

// Regression: wait() used to capture a sessions_ iterator before parking on
// complete_cv_ and erase through it afterwards. While the wait has mu_
// released, a concurrent open() can rehash the unordered_map and invalidate
// that iterator (wait() now erases by key). Churn whole sessions from many
// threads so inserts/rehashes land while other threads sit in wait().
TEST(ChunkingService, WaitSurvivesConcurrentSessionChurn) {
  ServiceConfig cfg = small_service_config();
  cfg.buffer_bytes = 8 * 1024;
  cfg.max_tenants = 64;
  ChunkingService svc(cfg);

  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kRounds = 6;
  std::vector<ByteVec> payloads;
  for (std::size_t k = 0; k < kThreads; ++k) {
    payloads.push_back(random_bytes(30000 + 1777 * k, 90 + k));
  }
  std::vector<std::vector<chunking::Chunk>> expected;
  for (std::size_t k = 0; k < kThreads; ++k) {
    expected.push_back(dedicated_chunks(cfg, as_bytes(payloads[k])));
  }

  std::vector<std::thread> workers;
  for (std::size_t k = 0; k < kThreads; ++k) {
    workers.emplace_back([&, k] {
      for (std::size_t r = 0; r < kRounds; ++r) {
        const auto id = svc.open();
        svc.submit(id, as_bytes(payloads[k]));
        svc.finish(id);
        const auto result = svc.wait(id);
        EXPECT_EQ(result.chunks, expected[k])
            << "thread " << k << " round " << r;
      }
    });
  }
  for (auto& t : workers) t.join();
  const auto report = svc.shutdown();
  EXPECT_EQ(report.n_tenants, kThreads * kRounds);
}

TEST(ChunkingService, ChunkStreamMatchesShredderRun) {
  ServiceConfig cfg = small_service_config();
  const auto data = random_bytes(300000, 11);
  ChunkingService svc(cfg);
  core::MemorySource source(as_bytes(data), cfg.host.reader_bw);
  const auto result = svc.chunk_stream(source);
  EXPECT_EQ(result.chunks, dedicated_chunks(cfg, as_bytes(data)));
  EXPECT_EQ(result.report.total_bytes, data.size());
}

// --- Backpressure -----------------------------------------------------------

TEST(ChunkingService, SlowConsumerNeverDeadlocksOrDropsBuffers) {
  // Tiny queues everywhere and a consumer that stalls on every chunk: the
  // whole pipeline backs up to the producer, which must simply block (never
  // drop or deadlock) and the output must still be exact.
  ServiceConfig cfg = small_service_config();
  cfg.buffer_bytes = 4096;
  cfg.ring_slots = 2;
  cfg.tenant_queue_depth = 1;

  const auto data = random_bytes(120000, 21);
  std::atomic<std::uint64_t> delivered{0};
  ChunkingService svc(cfg);
  TenantOptions opts;
  opts.on_chunk = [&](const chunking::Chunk& c) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
    delivered += c.size;
  };
  const auto id = svc.open(std::move(opts));
  svc.submit(id, as_bytes(data));
  svc.finish(id);
  const auto result = svc.wait(id);
  EXPECT_EQ(delivered.load(), data.size());
  EXPECT_EQ(result.chunks, dedicated_chunks(cfg, as_bytes(data)));
  // The producer outran the device, so the dispatch queue really filled up.
  EXPECT_EQ(result.report.max_queue_depth, cfg.tenant_queue_depth);
}

TEST(ChunkingService, TrySubmitShedsLoadInsteadOfBlocking) {
  ServiceConfig cfg = small_service_config();
  cfg.buffer_bytes = 4096;
  cfg.ring_slots = 2;
  cfg.tenant_queue_depth = 1;

  // Stall the store thread on the first chunk so the pipeline stays full.
  std::promise<void> release;
  std::shared_future<void> release_f(release.get_future());
  std::atomic<bool> stalled{false};
  ChunkingService svc(cfg);
  TenantOptions opts;
  opts.on_chunk = [&, release_f](const chunking::Chunk&) {
    if (!stalled.exchange(true)) release_f.wait();
  };
  const auto id = svc.open(std::move(opts));

  const auto buffer = random_bytes(cfg.buffer_bytes, 31);
  // The pipeline holds a bounded number of buffers; with the store stalled,
  // try_submit must start returning false after finitely many successes.
  bool saw_false = false;
  std::size_t accepted = 0;
  for (int i = 0; i < 64 && !saw_false; ++i) {
    if (svc.try_submit(id, as_bytes(buffer))) {
      ++accepted;
    } else {
      saw_false = true;  // refused without blocking or consuming anything
    }
  }
  EXPECT_TRUE(saw_false) << "pipeline accepted unbounded buffers";
  release.set_value();
  svc.finish(id);
  const auto result = svc.wait(id);
  EXPECT_EQ(result.report.total_bytes, accepted * cfg.buffer_bytes);
}

// --- Fairness and reports ---------------------------------------------------

TEST(ChunkingService, WeightedTenantFinishesFirstInVirtualTime) {
  // Deterministic contention: deep tenant queues hold each stream entirely,
  // and the store thread is gated on a promise until both tenants have
  // fully queued — so virtually all dispatches happen with both tenants
  // ready and the credit scheduler in charge, regardless of how the OS
  // interleaves the producers.
  ServiceConfig cfg = small_service_config();
  cfg.buffer_bytes = 8192;
  cfg.tenant_queue_depth = 40;  // holds all 32 buffers of one stream

  const auto data_a = random_bytes(256 * 1024, 41);
  const auto data_b = random_bytes(256 * 1024, 42);
  std::promise<void> gate;
  std::shared_future<void> gate_f(gate.get_future());
  ChunkingService svc(cfg);
  TenantOptions heavy;
  heavy.weight = 8;
  heavy.on_chunk = [gate_f](const chunking::Chunk&) { gate_f.wait(); };
  TenantOptions light;
  light.on_chunk = [gate_f](const chunking::Chunk&) { gate_f.wait(); };
  const auto id_a = svc.open(std::move(heavy));
  const auto id_b = svc.open(std::move(light));

  svc.submit(id_a, as_bytes(data_a));
  svc.submit(id_b, as_bytes(data_b));
  svc.finish(id_a);
  svc.finish(id_b);
  gate.set_value();  // both queues loaded; let the pipeline drain
  const auto ra = svc.wait(id_a);
  const auto rb = svc.wait(id_b);
  // 8x the dispatch share means the heavy tenant's stream completes much
  // earlier on the shared virtual timeline.
  EXPECT_LT(ra.report.virtual_seconds, rb.report.virtual_seconds);
}

TEST(ChunkingService, AggregateReportSumsTenants) {
  ServiceConfig cfg = small_service_config();
  cfg.buffer_bytes = 16 * 1024;
  const auto data = random_bytes(200000, 51);
  ChunkingService svc(cfg);
  const auto a = svc.open();
  const auto b = svc.open();
  svc.submit(a, as_bytes(data));
  svc.submit(b, as_bytes(data));
  svc.finish(a);
  svc.finish(b);
  svc.wait(a);
  svc.wait(b);
  const auto report = svc.shutdown();
  EXPECT_EQ(report.total_bytes, 2 * data.size());
  EXPECT_EQ(report.n_tenants, 2u);
  EXPECT_EQ(report.tenants.size(), 2u);
  EXPECT_GT(report.virtual_seconds, 0.0);
  EXPECT_GT(report.aggregate_throughput_bps, 0.0);
  EXPECT_GT(report.device_occupancy, 0.0);
  EXPECT_LE(report.device_occupancy, 1.0);
  EXPECT_GT(report.h2d_busy_seconds, 0.0);
}

TEST(ChunkingService, SharingBeatsSerialVirtualThroughput) {
  // Four tenants sharing the device must beat one tenant's throughput:
  // the whole point of the service (device no longer idles between one
  // stream's buffers).
  ServiceConfig cfg = small_service_config();
  cfg.buffer_bytes = 256 * 1024;
  auto run_n = [&](std::size_t n) {
    const auto data = random_bytes(1 << 20, 61);
    ChunkingService svc(cfg);
    std::vector<std::thread> producers;
    std::vector<ChunkingService::StreamId> ids;
    for (std::size_t k = 0; k < n; ++k) ids.push_back(svc.open());
    for (std::size_t k = 0; k < n; ++k) {
      producers.emplace_back([&, k] {
        svc.submit(ids[k], as_bytes(data));
        svc.finish(ids[k]);
      });
    }
    for (auto& t : producers) t.join();
    for (const auto id : ids) svc.wait(id);
    return svc.shutdown().aggregate_throughput_bps;
  };
  const double one = run_n(1);
  const double four = run_n(4);
  EXPECT_GT(four, 1.5 * one);
}

// --- Admission and lifecycle ------------------------------------------------

TEST(ChunkingService, AdmissionControl) {
  ServiceConfig cfg = small_service_config();
  cfg.max_tenants = 1;
  ChunkingService svc(cfg);
  const auto id = svc.open();
  EXPECT_THROW(svc.open(), std::runtime_error);
  svc.finish(id);
  svc.wait(id);
  // Slot freed: admission works again.
  const auto id2 = svc.open();
  svc.finish(id2);
  svc.wait(id2);
}

TEST(ChunkingService, LifecycleErrors) {
  ServiceConfig cfg = small_service_config();
  ChunkingService svc(cfg);
  TenantOptions zero_weight;
  zero_weight.weight = 0;
  EXPECT_THROW(svc.open(std::move(zero_weight)), std::invalid_argument);
  EXPECT_THROW(svc.submit(999, {}), std::invalid_argument);
  const auto id = svc.open();
  svc.finish(id);
  const auto payload = random_bytes(10, 1);
  EXPECT_THROW(svc.submit(id, as_bytes(payload)), std::logic_error);
  // shutdown() refuses while another stream is unfinished.
  const auto id2 = svc.open();
  EXPECT_THROW(svc.shutdown(), std::logic_error);
  svc.finish(id2);
  svc.wait(id);
  svc.wait(id2);
  const auto report = svc.shutdown();
  EXPECT_EQ(report.n_tenants, 2u);
  EXPECT_THROW(svc.open(), std::runtime_error);
}

TEST(ChunkingService, EmptyStreamYieldsNoChunks) {
  ServiceConfig cfg = small_service_config();
  ChunkingService svc(cfg);
  const auto id = svc.open();
  svc.finish(id);
  const auto result = svc.wait(id);
  EXPECT_TRUE(result.chunks.empty());
  EXPECT_EQ(result.report.total_bytes, 0u);
}

TEST(ChunkingService, ConfigValidation) {
  ServiceConfig cfg = small_service_config();
  cfg.buffer_bytes = 4;
  EXPECT_THROW(ChunkingService{cfg}, std::invalid_argument);
  cfg = small_service_config();
  cfg.max_tenants = 0;
  EXPECT_THROW(ChunkingService{cfg}, std::invalid_argument);
  cfg = small_service_config();
  cfg.tenant_queue_depth = 0;
  EXPECT_THROW(ChunkingService{cfg}, std::invalid_argument);
  cfg = small_service_config();
  cfg.dedup_on_store = true;  // needs the device digests
  EXPECT_THROW(ChunkingService{cfg}, std::invalid_argument);
}

// --- Inline dedup against the shared fingerprint index ---------------------

TEST(ChunkingService, InlineDedupAcrossTenants) {
  // Two tenants stream the same payload, a third streams distinct bytes.
  // With dedup_on_store every chunk probes one service-wide index, so one
  // copy of the shared payload's chunks is unique and the other is entirely
  // duplicate — regardless of how the streams interleaved.
  for (const auto kind :
       {dedup::IndexKind::kPaperBaseline, dedup::IndexKind::kSparse}) {
    ServiceConfig cfg = small_service_config();
    cfg.fingerprint_on_device = true;
    cfg.dedup_on_store = true;
    cfg.index.kind = kind;
    ChunkingService svc(cfg);
    const auto shared_payload = random_bytes(256 * 1024, 31);
    const auto distinct_payload = random_bytes(256 * 1024, 32);
    const auto shared_chunks =
        dedicated_chunks(cfg, as_bytes(shared_payload)).size();
    const auto distinct_chunks =
        dedicated_chunks(cfg, as_bytes(distinct_payload)).size();

    std::vector<ChunkingService::StreamId> ids;
    for (int k = 0; k < 3; ++k) ids.push_back(svc.open());
    std::vector<std::thread> producers;
    for (int k = 0; k < 3; ++k) {
      producers.emplace_back([&, k] {
        svc.submit(ids[static_cast<std::size_t>(k)],
                   k < 2 ? as_bytes(shared_payload)
                         : as_bytes(distinct_payload));
        svc.finish(ids[static_cast<std::size_t>(k)]);
      });
    }
    for (auto& t : producers) t.join();
    std::uint64_t dup_chunks = 0;
    double index_seconds = 0;
    for (const auto id : ids) {
      const auto res = svc.wait(id);
      dup_chunks += res.report.n_duplicate_chunks;
      index_seconds += res.report.index_seconds;
    }
    const auto report = svc.shutdown();
    ASSERT_NE(svc.dedup_index(), nullptr);
    EXPECT_EQ(report.dedup_unique_chunks, shared_chunks + distinct_chunks);
    EXPECT_EQ(report.dedup_duplicate_chunks, shared_chunks);
    EXPECT_EQ(dup_chunks, shared_chunks);
    EXPECT_GT(index_seconds, 0.0);
    EXPECT_NEAR(report.index_virtual_seconds, index_seconds, 1e-12);
  }
}

TEST(ChunkingService, DedupStoreHoldsUniquePayloads) {
  // With dedup_on_store the service is a backup target: unique chunk
  // payloads land in the shared ChunkStore, duplicates add a reference, and
  // the recorded bytes reconstruct every stream.
  ServiceConfig cfg = small_service_config();
  cfg.fingerprint_on_device = true;
  cfg.dedup_on_store = true;
  ChunkingService svc(cfg);
  ASSERT_NE(svc.chunk_store(), nullptr);
  const auto payload = random_bytes(256 * 1024, 41);

  const auto id_a = svc.open();
  const auto id_b = svc.open();
  for (const auto id : {id_a, id_b}) {
    svc.submit(id, as_bytes(payload));
    svc.finish(id);
  }
  const auto res_a = svc.wait(id_a);
  const auto res_b = svc.wait(id_b);
  const auto report = svc.shutdown();
  const dedup::ChunkStore& store = *svc.chunk_store();

  // One tenant contributed every unique payload, the other only references.
  EXPECT_EQ(res_a.report.stored_bytes + res_b.report.stored_bytes,
            payload.size());
  EXPECT_EQ(report.dedup_stored_bytes, payload.size());
  EXPECT_EQ(store.unique_bytes(), payload.size());
  EXPECT_EQ(store.unique_chunks(), res_a.chunks.size());
  // Both tenants' chunks are referenced: one ref per stored chunk + one per
  // duplicate.
  EXPECT_EQ(store.total_refs(), res_a.chunks.size() + res_b.chunks.size());
  // The stored payloads reconstruct the stream byte-for-byte.
  ByteVec rebuilt;
  for (std::size_t i = 0; i < res_a.chunks.size(); ++i) {
    const auto bytes = store.get(res_a.digests[i]);
    ASSERT_TRUE(bytes.has_value());
    EXPECT_EQ(bytes->size(), res_a.chunks[i].size);
    rebuilt.insert(rebuilt.end(), bytes->begin(), bytes->end());
  }
  EXPECT_EQ(rebuilt, payload);
}

TEST(ChunkingService, SharedStoreSpansServices) {
  // Two services sharing one ChunkStore: the second service re-stores
  // nothing for content the first already holds (store-level dedup even
  // though each service keeps its own index).
  const auto payload = random_bytes(128 * 1024, 43);
  auto store = std::make_shared<dedup::ChunkStore>();
  for (int round = 0; round < 2; ++round) {
    ServiceConfig cfg = small_service_config();
    cfg.fingerprint_on_device = true;
    cfg.dedup_on_store = true;
    cfg.store = store;
    ChunkingService svc(cfg);
    const auto id = svc.open();
    svc.submit(id, as_bytes(payload));
    svc.finish(id);
    const auto res = svc.wait(id);
    svc.shutdown();
    // Round 0 stores everything; round 1 finds every chunk already present.
    EXPECT_EQ(res.report.stored_bytes,
              round == 0 ? payload.size() : 0u);
  }
  EXPECT_EQ(store->unique_bytes(), payload.size());
}

TEST(ChunkingService, StoreWithoutDedupRejected) {
  ServiceConfig cfg = small_service_config();
  cfg.store = std::make_shared<dedup::ChunkStore>();
  EXPECT_THROW(ChunkingService{cfg}, std::invalid_argument);
}

TEST(ChunkingService, NoDedupIndexUnlessEnabled) {
  ServiceConfig cfg = small_service_config();
  ChunkingService svc(cfg);
  EXPECT_EQ(svc.dedup_index(), nullptr);
  const auto id = svc.open();
  svc.finish(id);
  const auto res = svc.wait(id);
  EXPECT_EQ(res.report.n_duplicate_chunks, 0u);
  svc.shutdown();
}

}  // namespace
}  // namespace shredder::service
