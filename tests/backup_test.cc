// Tests for the cloud-backup case study: image repository + similarity
// table, backup agent protocol, and the end-to-end dedup backup server.
#include <gtest/gtest.h>

#include <memory>

#include "backup/agent.h"
#include "backup/backup_server.h"
#include "backup/image.h"
#include "common/rng.h"
#include "service/service.h"

namespace shredder::backup {
namespace {

ImageRepoConfig small_repo_config() {
  ImageRepoConfig c;
  c.image_bytes = 4 * 1024 * 1024;
  c.segment_bytes = 256 * 1024;
  c.seed = 99;
  return c;
}

chunking::ChunkerConfig small_backup_chunker() {
  chunking::ChunkerConfig c;
  c.window = 32;
  c.mask_bits = 11;  // ~2 KB chunks for test density
  c.marker = 0x42;
  c.min_size = 512;
  c.max_size = 8 * 1024;
  return c;
}

std::shared_ptr<service::ChunkingService> make_shared_service() {
  service::ServiceConfig cfg;
  cfg.chunker = small_backup_chunker();
  cfg.buffer_bytes = 512 * 1024;
  cfg.sim_threads = 4;
  return std::make_shared<service::ChunkingService>(cfg);
}

BackupServerConfig small_server_config(ChunkerBackend backend) {
  BackupServerConfig c;
  c.backend = backend;
  c.chunker = small_backup_chunker();
  c.shredder.buffer_bytes = 512 * 1024;
  c.shredder.sim_threads = 4;
  c.cpu_threads = 4;
  if (backend == ChunkerBackend::kSharedService) {
    c.service = make_shared_service();
  }
  return c;
}

// --- ImageRepository ---

TEST(ImageRepository, SnapshotZeroProbabilityIsMaster) {
  ImageRepository repo(small_repo_config());
  const auto snap = repo.snapshot(0.0, 1);
  EXPECT_TRUE(std::equal(snap.begin(), snap.end(), repo.master().begin(),
                         repo.master().end()));
}

TEST(ImageRepository, SnapshotOneReplacesEverySegment) {
  ImageRepository repo(small_repo_config());
  const auto snap = repo.snapshot(1.0, 1);
  const auto master = repo.master();
  // Every segment must differ somewhere.
  const auto seg = small_repo_config().segment_bytes;
  for (std::uint64_t s = 0; s < repo.num_segments(); ++s) {
    const std::size_t begin = static_cast<std::size_t>(s * seg);
    const std::size_t end = std::min<std::size_t>(begin + seg, master.size());
    EXPECT_FALSE(std::equal(snap.begin() + begin, snap.begin() + end,
                            master.begin() + begin))
        << "segment " << s;
  }
}

TEST(ImageRepository, IntermediateProbabilityChangesRoughlyThatFraction) {
  ImageRepoConfig cfg = small_repo_config();
  cfg.image_bytes = 16 * 1024 * 1024;
  cfg.segment_bytes = 64 * 1024;  // 256 segments
  ImageRepository repo(cfg);
  const auto snap = repo.snapshot(0.25, 7);
  const auto master = repo.master();
  std::uint64_t changed = 0;
  for (std::uint64_t s = 0; s < repo.num_segments(); ++s) {
    const std::size_t begin = static_cast<std::size_t>(s * cfg.segment_bytes);
    const std::size_t end =
        std::min<std::size_t>(begin + cfg.segment_bytes, master.size());
    changed += !std::equal(snap.begin() + begin, snap.begin() + end,
                           master.begin() + begin);
  }
  const double frac =
      static_cast<double>(changed) / static_cast<double>(repo.num_segments());
  EXPECT_GT(frac, 0.15);
  EXPECT_LT(frac, 0.35);
}

TEST(ImageRepository, SnapshotsDeterministicPerId) {
  ImageRepository repo(small_repo_config());
  EXPECT_EQ(repo.snapshot(0.3, 5), repo.snapshot(0.3, 5));
  EXPECT_NE(repo.snapshot(0.3, 5), repo.snapshot(0.3, 6));
}

TEST(ImageRepository, GenerationRate) {
  ImageRepository repo(small_repo_config());
  // 10 Gb/s == 1.25 GB/s.
  EXPECT_NEAR(repo.generation_seconds(1250000000ull), 1.0, 1e-9);
}

TEST(ImageRepository, Validation) {
  ImageRepoConfig bad = small_repo_config();
  bad.segment_bytes = 0;
  EXPECT_THROW(ImageRepository{bad}, std::invalid_argument);
  bad = small_repo_config();
  bad.segment_bytes = bad.image_bytes * 2;
  EXPECT_THROW(ImageRepository{bad}, std::invalid_argument);
  ImageRepository repo(small_repo_config());
  EXPECT_THROW(repo.snapshot(-0.1, 0), std::invalid_argument);
}

// --- BackupAgent protocol ---

TEST(BackupAgent, StoresAndRecreates) {
  BackupAgent agent;
  agent.begin_image("img");
  const auto a = random_bytes(100, 1);
  const auto b = random_bytes(50, 2);
  agent.receive("img", {dedup::ChunkHasher::hash(as_bytes(a)), a});
  agent.receive("img", {dedup::ChunkHasher::hash(as_bytes(b)), b});
  // Duplicate chunk as pointer.
  agent.receive("img", {dedup::ChunkHasher::hash(as_bytes(a)), {}});
  const auto out = agent.recreate("img");
  ByteVec expect(a);
  expect.insert(expect.end(), b.begin(), b.end());
  expect.insert(expect.end(), a.begin(), a.end());
  EXPECT_EQ(out, expect);
  EXPECT_EQ(agent.unique_chunks(), 2u);
}

TEST(BackupAgent, PointerToUnknownChunkThrows) {
  BackupAgent agent;
  agent.begin_image("img");
  EXPECT_THROW(
      agent.receive("img", {dedup::ChunkHasher::hash(as_bytes(random_bytes(8, 3))), {}}),
      std::invalid_argument);
}

TEST(BackupAgent, UnknownImageThrows) {
  BackupAgent agent;
  EXPECT_THROW(agent.recreate("nope"), std::invalid_argument);
  const auto a = random_bytes(8, 4);
  EXPECT_THROW(agent.receive("nope", {dedup::ChunkHasher::hash(as_bytes(a)), a}),
               std::invalid_argument);
}

TEST(BackupAgent, BeginImageIdempotentWhileOpen) {
  // A retransmitted begin control frame must neither duplicate nor reset an
  // in-progress recipe; only re-opening a *sealed* image is a violation.
  BackupAgent agent;
  EXPECT_TRUE(agent.begin_image("img"));
  const auto a = random_bytes(100, 1);
  agent.receive("img", {dedup::ChunkHasher::hash(as_bytes(a)), a});
  EXPECT_FALSE(agent.begin_image("img"));  // no-op re-open
  agent.receive("img", {dedup::ChunkHasher::hash(as_bytes(a)), {}});
  EXPECT_EQ(agent.recreate("img").size(), 200u);  // recipe survived intact
  agent.end_image("img", 2);
  EXPECT_TRUE(agent.image_sealed("img"));
  agent.end_image("img", 2);  // sealing twice is harmless
  try {
    agent.begin_image("img");
    FAIL() << "expected ProtocolError";
  } catch (const ProtocolError& e) {
    EXPECT_EQ(e.violation(), ProtocolViolation::kDuplicateImage);
  }
}

TEST(BackupAgent, EndImageValidatesRecipeLength) {
  BackupAgent agent;
  agent.begin_image("img");
  const auto a = random_bytes(64, 9);
  agent.receive("img", {dedup::ChunkHasher::hash(as_bytes(a)), a});
  try {
    agent.end_image("img", 5);  // truncated stream: only 1 chunk arrived
    FAIL() << "expected ProtocolError";
  } catch (const ProtocolError& e) {
    EXPECT_EQ(e.violation(), ProtocolViolation::kRecipeLengthMismatch);
  }
  agent.end_image("img", 1);
  // Data after the seal is a violation too.
  try {
    agent.receive("img", {dedup::ChunkHasher::hash(as_bytes(a)), {}});
    FAIL() << "expected ProtocolError";
  } catch (const ProtocolError& e) {
    EXPECT_EQ(e.violation(), ProtocolViolation::kSealedImage);
  }
}

// --- BackupServer end-to-end ---

class BackupBackends : public ::testing::TestWithParam<ChunkerBackend> {};

TEST_P(BackupBackends, FirstBackupAllUniqueAndVerified) {
  ImageRepository repo(small_repo_config());
  BackupServer server(small_server_config(GetParam()));
  BackupAgent agent;
  const auto snap = repo.snapshot(0.0, 1);
  const auto stats = server.backup_image("vm1", as_bytes(snap), repo, agent);
  EXPECT_TRUE(stats.verified);
  EXPECT_EQ(stats.duplicate_chunks, 0u);
  EXPECT_EQ(stats.unique_bytes, snap.size());
  EXPECT_GT(stats.backup_bandwidth_gbps, 0.0);
}

TEST_P(BackupBackends, SecondIdenticalSnapshotFullyDeduplicated) {
  ImageRepository repo(small_repo_config());
  BackupServer server(small_server_config(GetParam()));
  BackupAgent agent;
  const auto snap = repo.snapshot(0.0, 1);
  server.backup_image("vm1", as_bytes(snap), repo, agent);
  const auto stats = server.backup_image("vm2", as_bytes(snap), repo, agent);
  EXPECT_TRUE(stats.verified);
  EXPECT_EQ(stats.duplicate_chunks, stats.chunks);
  EXPECT_EQ(stats.unique_bytes, 0u);
}

INSTANTIATE_TEST_SUITE_P(Backends, BackupBackends,
                         ::testing::Values(ChunkerBackend::kShredderGpu,
                                           ChunkerBackend::kPthreadsCpu,
                                           ChunkerBackend::kSharedService));

// --- Shared-service backend ---

TEST(BackupServer, SharedServiceMatchesDedicatedGpu) {
  // Routing the chunker through the multi-tenant service must not change a
  // single byte of the backup stream: same chunk counts, same dedup result.
  ImageRepository repo(small_repo_config());
  BackupServer gpu_server(small_server_config(ChunkerBackend::kShredderGpu));
  BackupServer svc_server(small_server_config(ChunkerBackend::kSharedService));
  BackupAgent agent_a, agent_b;
  for (int step = 0; step < 2; ++step) {
    const auto snap = repo.snapshot(step * 0.1, step + 1);
    std::string id = "vm";
    id += std::to_string(step);
    const auto ga = gpu_server.backup_image(id, as_bytes(snap), repo, agent_a);
    const auto gb = svc_server.backup_image(id, as_bytes(snap), repo, agent_b);
    EXPECT_TRUE(ga.verified);
    EXPECT_TRUE(gb.verified);
    EXPECT_EQ(ga.chunks, gb.chunks);
    EXPECT_EQ(ga.duplicate_chunks, gb.duplicate_chunks);
    EXPECT_EQ(ga.unique_bytes, gb.unique_bytes);
    EXPECT_GT(gb.chunking_seconds, 0.0);
  }
  EXPECT_EQ(agent_a.unique_bytes(), agent_b.unique_bytes());
}

TEST(BackupServer, ConcurrentSnapshotsThroughOneDevice) {
  ImageRepository repo(small_repo_config());
  BackupServer server(small_server_config(ChunkerBackend::kSharedService));
  BackupAgent agent;
  const auto base = repo.snapshot(0.0, 1);
  const auto similar = repo.snapshot(0.10, 2);
  std::vector<BackupServer::SnapshotJob> jobs;
  jobs.push_back({"vm1", as_bytes(base)});
  jobs.push_back({"vm2", as_bytes(similar)});
  jobs.push_back({"vm3", as_bytes(base)});  // identical to vm1
  const auto stats = server.backup_images(jobs, repo, agent);
  ASSERT_EQ(stats.size(), 3u);
  for (const auto& s : stats) EXPECT_TRUE(s.verified);
  EXPECT_EQ(stats[0].duplicate_chunks, 0u);
  // vm3 is byte-identical to vm1: everything deduplicates.
  EXPECT_EQ(stats[2].duplicate_chunks, stats[2].chunks);
  EXPECT_EQ(stats[2].unique_bytes, 0u);
  // vm2 shares most content with vm1.
  EXPECT_LT(stats[1].unique_bytes, stats[1].bytes / 2);
  // The shared service stays usable for the next batch.
  const auto again =
      server.backup_image("vm4", as_bytes(similar), repo, agent);
  EXPECT_TRUE(again.verified);
  EXPECT_EQ(again.duplicate_chunks, again.chunks);
}

TEST(BackupServer, SharedServiceConfigValidation) {
  auto cfg = small_server_config(ChunkerBackend::kSharedService);
  cfg.service = nullptr;
  EXPECT_THROW(BackupServer{cfg}, std::invalid_argument);
  cfg = small_server_config(ChunkerBackend::kSharedService);
  cfg.chunker.mask_bits = 9;  // diverges from the service's chunker
  EXPECT_THROW(BackupServer{cfg}, std::invalid_argument);
}

TEST(BackupServer, MinMaxChunkSizesRespected) {
  ImageRepository repo(small_repo_config());
  BackupServer server(small_server_config(ChunkerBackend::kShredderGpu));
  BackupAgent agent;
  const auto snap = repo.snapshot(0.1, 1);
  server.backup_image("vm1", as_bytes(snap), repo, agent);
  // Recreate and re-chunk to check sizes; simpler: rely on config and check
  // chunk count bounds: chunks >= bytes/max and <= bytes/min + 1.
  const auto& cfg = server.config().chunker;
  const auto stats = server.backup_image("vm2", as_bytes(snap), repo, agent);
  EXPECT_GE(stats.chunks, snap.size() / cfg.max_size);
  EXPECT_LE(stats.chunks, snap.size() / cfg.min_size + 1);
}

TEST(BackupServer, SimilarSnapshotMostlyDeduplicated) {
  // 64 segments so a 10% change probability deterministically hits several.
  ImageRepoConfig repo_cfg = small_repo_config();
  repo_cfg.segment_bytes = 64 * 1024;
  ImageRepository repo(repo_cfg);
  BackupServer server(small_server_config(ChunkerBackend::kShredderGpu));
  BackupAgent agent;
  server.backup_image("vm1", as_bytes(repo.snapshot(0.0, 1)), repo, agent);
  const auto snap2 = repo.snapshot(0.10, 2);
  const auto stats = server.backup_image("vm2", as_bytes(snap2), repo, agent);
  EXPECT_TRUE(stats.verified);
  const double unique_frac = static_cast<double>(stats.unique_bytes) /
                             static_cast<double>(stats.bytes);
  EXPECT_GT(unique_frac, 0.03);
  EXPECT_LT(unique_frac, 0.30);
}

TEST(BackupServer, GpuBeatsCpuBandwidth) {
  // The Figure 18 headline: Shredder raises backup bandwidth ~2.5x because
  // the CPU baseline is chunking-bound.
  ImageRepository repo(small_repo_config());
  BackupServer gpu_server(small_server_config(ChunkerBackend::kShredderGpu));
  BackupServer cpu_server(small_server_config(ChunkerBackend::kPthreadsCpu));
  BackupAgent agent_a, agent_b;
  const auto base = repo.snapshot(0.0, 1);
  gpu_server.backup_image("vm1", as_bytes(base), repo, agent_a);
  cpu_server.backup_image("vm1", as_bytes(base), repo, agent_b);
  const auto snap = repo.snapshot(0.10, 2);
  const auto gpu_stats = gpu_server.backup_image("vm2", as_bytes(snap), repo, agent_a);
  const auto cpu_stats = cpu_server.backup_image("vm2", as_bytes(snap), repo, agent_b);
  // At this test scale (4 MB image, 2 KB chunks) the index stage is twice as
  // expensive per byte as the paper's 4 KB configuration and pipeline
  // startup penalizes the GPU path, so the margin is below the ~2.5x of
  // Fig 18 (the full-scale bench reproduces that number).
  EXPECT_GT(gpu_stats.backup_bandwidth_gbps,
            1.4 * cpu_stats.backup_bandwidth_gbps);
}

TEST(BackupServer, BandwidthDecreasesWithDissimilarity) {
  ImageRepository repo(small_repo_config());
  BackupServer server(small_server_config(ChunkerBackend::kShredderGpu));
  BackupAgent agent;
  server.backup_image("base", as_bytes(repo.snapshot(0.0, 1)), repo, agent);
  const auto low = server.backup_image(
      "low", as_bytes(repo.snapshot(0.05, 2)), repo, agent);
  const auto high = server.backup_image(
      "high", as_bytes(repo.snapshot(0.60, 3)), repo, agent);
  EXPECT_GT(low.backup_bandwidth_gbps, high.backup_bandwidth_gbps);
}

// --- Sparse fingerprint index (docs/dedup_index.md) ---

TEST(BackupServer, SparseIndexMatchesBaselineAcrossSimilarity) {
  // The low-similarity regression sweep: 0% / 50% / 100% duplicate
  // snapshots through two servers differing only in IndexKind. The sparse
  // index must (a) make bit-identical dedup decisions and (b) never back up
  // slower than the baseline at any similarity point.
  ImageRepoConfig repo_cfg = small_repo_config();
  repo_cfg.segment_bytes = 64 * 1024;  // enough segments for 50% to bite
  ImageRepository repo(repo_cfg);

  auto cfg_with = [&](dedup::IndexKind kind) {
    auto c = small_server_config(ChunkerBackend::kShredderGpu);
    c.index.kind = kind;
    return c;
  };
  BackupServer baseline(cfg_with(dedup::IndexKind::kPaperBaseline));
  BackupServer sparse(cfg_with(dedup::IndexKind::kSparse));
  BackupAgent agent_a, agent_b;

  const auto base = repo.snapshot(0.0, 1);
  // change_probability 1.0 / 0.5 / 0.0 => ~0% / ~50% / 100% duplicates.
  const double change_probs[] = {1.0, 0.5, 0.0};
  std::uint64_t step = 0;
  for (const double p : change_probs) {
    if (step == 0) {
      baseline.backup_image("base", as_bytes(base), repo, agent_a);
      sparse.backup_image("base", as_bytes(base), repo, agent_b);
    }
    const auto snap = repo.snapshot(p, 100 + step);
    std::string id = "snap" + std::to_string(step++);
    const auto sb = baseline.backup_image(id, as_bytes(snap), repo, agent_a);
    const auto ss = sparse.backup_image(id, as_bytes(snap), repo, agent_b);
    ASSERT_TRUE(sb.verified);
    ASSERT_TRUE(ss.verified);
    // Bit-identical dedup decisions.
    EXPECT_EQ(ss.chunks, sb.chunks) << "p=" << p;
    EXPECT_EQ(ss.duplicate_chunks, sb.duplicate_chunks) << "p=" << p;
    EXPECT_EQ(ss.unique_bytes, sb.unique_bytes) << "p=" << p;
    // The sparse probe path is never the slower one.
    EXPECT_GE(ss.backup_bandwidth_gbps, sb.backup_bandwidth_gbps) << "p=" << p;
    EXPECT_LE(ss.index_seconds, sb.index_seconds) << "p=" << p;
    EXPECT_EQ(ss.index_kind, dedup::IndexKind::kSparse);
    EXPECT_EQ(sb.index_kind, dedup::IndexKind::kPaperBaseline);
  }
  // Identical backup streams reached both agents.
  EXPECT_EQ(agent_a.unique_bytes(), agent_b.unique_bytes());
  EXPECT_EQ(agent_a.unique_chunks(), agent_b.unique_chunks());
  EXPECT_EQ(baseline.index().size(), sparse.index().size());
}

TEST(BackupServer, SparseIndexDuplicateRunsHitThePrefetchCache) {
  // A fully duplicate snapshot probes the index in the same order the base
  // snapshot inserted it, so the sparse backend should serve almost every
  // probe from a prefetched container instead of the modelled flash.
  ImageRepository repo(small_repo_config());
  auto cfg = small_server_config(ChunkerBackend::kShredderGpu);
  cfg.index.kind = dedup::IndexKind::kSparse;
  cfg.index.sparse.container_entries = 64;
  BackupServer server(cfg);
  BackupAgent agent;
  const auto snap = repo.snapshot(0.0, 1);
  server.backup_image("base", as_bytes(snap), repo, agent);
  const auto stats = server.backup_image("dup", as_bytes(snap), repo, agent);
  ASSERT_TRUE(stats.verified);
  EXPECT_EQ(stats.duplicate_chunks, stats.chunks);
  EXPECT_GT(stats.index_cache_hits, 0u);
  // One flash read per sealed container (plus alias noise), far fewer than
  // one per chunk.
  EXPECT_LT(stats.index_flash_reads,
            stats.chunks / 8 + cfg.index.sparse.container_entries);
}

TEST(BackupAgent, CatalogKnobKeepsProtocolExact) {
  // The agent-side catalog index behaves identically under both kinds.
  for (const auto kind :
       {dedup::IndexKind::kPaperBaseline, dedup::IndexKind::kSparse}) {
    dedup::IndexConfig cfg;
    cfg.kind = kind;
    BackupAgent agent(cfg);
    agent.begin_image("img");
    const auto a = random_bytes(100, 1);
    agent.receive("img", {dedup::ChunkHasher::hash(as_bytes(a)), a});
    agent.receive("img", {dedup::ChunkHasher::hash(as_bytes(a)), {}});
    EXPECT_THROW(
        agent.receive(
            "img", {dedup::ChunkHasher::hash(as_bytes(random_bytes(8, 2))), {}}),
        std::invalid_argument);
    ByteVec expect(a);
    expect.insert(expect.end(), a.begin(), a.end());
    EXPECT_EQ(agent.recreate("img"), expect);
    EXPECT_GT(agent.catalog_seconds(), 0.0);
    EXPECT_EQ(agent.catalog().kind(), kind);
  }
}

}  // namespace
}  // namespace shredder::backup
