// Tests for the Inc-HDFS / incremental MapReduce case study: mini-HDFS,
// input formats, the Inc-HDFS client, the MapReduce engine, memoization,
// the three paper workloads, and the incremental experiment harness.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.h"
#include "core/shredder.h"
#include "inchdfs/experiment.h"
#include "inchdfs/hdfs.h"
#include "inchdfs/inc_hdfs.h"
#include "inchdfs/input_format.h"
#include "inchdfs/jobs.h"
#include "inchdfs/mapreduce.h"
#include "inchdfs/textgen.h"

namespace shredder::inchdfs {
namespace {

// --- MiniHdfs ---

TEST(MiniHdfs, WriteReadRoundTrip) {
  MiniHdfs fs(5);
  const auto data = random_bytes(10000, 1);
  std::vector<ByteSpan> blocks;
  for (std::size_t off = 0; off < data.size(); off += 3000) {
    blocks.push_back(
        ByteSpan(data).subspan(off, std::min<std::size_t>(3000, data.size() - off)));
  }
  fs.write_file("f", blocks);
  EXPECT_EQ(fs.read_file("f"), data);
  EXPECT_EQ(fs.total_bytes_stored(), data.size());
}

TEST(MiniHdfs, RoundRobinPlacement) {
  MiniHdfs fs(4);
  const auto data = random_bytes(8000, 2);
  std::vector<ByteSpan> blocks;
  for (std::size_t off = 0; off < data.size(); off += 1000) {
    blocks.push_back(ByteSpan(data).subspan(off, 1000));
  }
  fs.write_file("f", blocks);
  for (std::uint32_t n = 0; n < 4; ++n) {
    EXPECT_EQ(fs.datanode(n).blocks_stored(), 2u);
  }
}

TEST(MiniHdfs, BlockDigestsAreContentDigests) {
  MiniHdfs fs(2);
  const auto data = random_bytes(500, 3);
  fs.write_file("f", {as_bytes(data)});
  const auto refs = fs.namenode().lookup("f");
  ASSERT_EQ(refs.size(), 1u);
  EXPECT_EQ(refs[0].digest, dedup::Sha1::hash(as_bytes(data)));
}

TEST(MiniHdfs, DuplicateFileRejected) {
  MiniHdfs fs(2);
  const auto data = random_bytes(10, 4);
  fs.write_file("f", {as_bytes(data)});
  EXPECT_THROW(fs.write_file("f", {as_bytes(data)}), std::invalid_argument);
}

TEST(MiniHdfs, MissingFileThrows) {
  MiniHdfs fs(2);
  EXPECT_THROW(fs.read_file("nope"), std::out_of_range);
}

TEST(NameNode, RemoveAndRecreate) {
  MiniHdfs fs(2);
  const auto data = random_bytes(10, 5);
  fs.write_file("f", {as_bytes(data)});
  fs.namenode().remove("f");
  EXPECT_FALSE(fs.namenode().exists("f"));
  fs.write_file("f", {as_bytes(data)});
  EXPECT_TRUE(fs.namenode().exists("f"));
}

// --- Input formats ---

TEST(TextInputFormat, AlignsToNextNewline) {
  const std::string text = "aaa\nbbbb\ncc\n";
  TextInputFormat fmt;
  EXPECT_EQ(fmt.align_boundary(as_bytes(text), 0), 0u);
  EXPECT_EQ(fmt.align_boundary(as_bytes(text), 1), 4u);
  EXPECT_EQ(fmt.align_boundary(as_bytes(text), 4), 4u);   // already aligned
  EXPECT_EQ(fmt.align_boundary(as_bytes(text), 5), 9u);
  EXPECT_EQ(fmt.align_boundary(as_bytes(text), 11), 12u);
  EXPECT_EQ(fmt.align_boundary(as_bytes(text), 100), 12u);  // clamped
}

TEST(TextInputFormat, RecordsSplitOnNewlines) {
  const std::string text = "one\ntwo\nthree";
  TextInputFormat fmt;
  const auto records = fmt.records(as_bytes(text));
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].size(), 4u);
  EXPECT_EQ(records[2].size(), 5u);  // no trailing newline
}

TEST(FixedRecordInputFormat, AlignsToMultiples) {
  FixedRecordInputFormat fmt(8);
  ByteVec data(64);
  EXPECT_EQ(fmt.align_boundary(as_bytes(data), 1), 8u);
  EXPECT_EQ(fmt.align_boundary(as_bytes(data), 8), 8u);
  EXPECT_EQ(fmt.align_boundary(as_bytes(data), 9), 16u);
  EXPECT_EQ(fmt.align_boundary(as_bytes(data), 63), 64u);
}

TEST(FixedRecordInputFormat, RejectsZeroRecord) {
  EXPECT_THROW(FixedRecordInputFormat(0), std::invalid_argument);
}

TEST(AlignBoundaries, DropsCollapsedDuplicatesAndCloses) {
  const std::string text = "ab\ncd\nef\n";
  TextInputFormat fmt;
  // Proposed boundaries 1 and 2 both align to 3; the result keeps one.
  const auto out = align_boundaries(fmt, as_bytes(text), {1, 2, 7});
  EXPECT_EQ(out, (std::vector<std::uint64_t>{3, 9}));
}

// --- Inc-HDFS client ---

class IncHdfsUpload : public ::testing::Test {
 protected:
  core::ShredderConfig shredder_config() {
    core::ShredderConfig sc;
    sc.chunker.window = 16;
    sc.chunker.mask_bits = 10;  // ~1 KB splits for test density
    sc.chunker.marker = 0x42;
    sc.buffer_bytes = 64 * 1024;
    sc.sim_threads = 4;
    return sc;
  }
};

TEST_F(IncHdfsUpload, GpuUploadPreservesContentAndAlignment) {
  MiniHdfs fs(4);
  IncHdfsClient client(fs);
  core::Shredder shredder(shredder_config());
  TextInputFormat fmt;
  const std::string text = make_text_corpus(200000, 6);
  const auto stats =
      client.copy_from_local_gpu("f", as_bytes(text), fmt, shredder);
  EXPECT_GT(stats.blocks, 10u);
  // Reassembles exactly.
  const auto back = fs.read_file("f");
  EXPECT_TRUE(std::equal(back.begin(), back.end(), text.begin(), text.end()));
  // Every block except the last ends on a record boundary.
  const auto blocks = fs.read_blocks("f");
  for (std::size_t i = 0; i + 1 < blocks.size(); ++i) {
    EXPECT_EQ(blocks[i].back(), '\n') << "block " << i;
  }
}

TEST_F(IncHdfsUpload, StableSplitsUnderLocalEdit) {
  // The Inc-HDFS property (§6.2): most splits of a slightly-edited file have
  // digests already present in the original upload — even when the edit is
  // an INSERTION that shifts every later byte, which is exactly the case
  // fixed-size chunking cannot survive.
  MiniHdfs fs(4);
  IncHdfsClient client(fs);
  core::Shredder shredder(shredder_config());
  TextInputFormat fmt;
  const std::string v1 = make_text_corpus(500000, 7);
  std::string v2 = v1;
  v2.insert(150000, make_text_corpus(5000, 8));  // localized insertion

  auto reuse_rate = [&](const std::string& a, const std::string& b) {
    std::set<std::string> a_digests;
    for (const auto& ref : fs.namenode().lookup(a)) {
      a_digests.insert(ref.digest.hex());
    }
    const auto b_refs = fs.namenode().lookup(b);
    std::size_t reused = 0;
    for (const auto& ref : b_refs) {
      reused += a_digests.contains(ref.digest.hex());
    }
    return static_cast<double>(reused) / static_cast<double>(b_refs.size());
  };

  client.copy_from_local_gpu("v1", as_bytes(v1), fmt, shredder);
  client.copy_from_local_gpu("v2", as_bytes(v2), fmt, shredder);
  const double cdc_reuse = reuse_rate("v1", "v2");
  EXPECT_GT(cdc_reuse, 0.80);

  client.copy_from_local("v1f", as_bytes(v1), 1024, &fmt);
  client.copy_from_local("v2f", as_bytes(v2), 1024, &fmt);
  const double fixed_reuse = reuse_rate("v1f", "v2f");
  // Fixed-size alignment is destroyed after the insertion point.
  EXPECT_LT(fixed_reuse, 0.45);
  EXPECT_GT(cdc_reuse, fixed_reuse + 0.3);
}

TEST_F(IncHdfsUpload, ReadSplitsMatchesBlocks) {
  MiniHdfs fs(4);
  IncHdfsClient client(fs);
  core::Shredder shredder(shredder_config());
  TextInputFormat fmt;
  const std::string text = make_text_corpus(100000, 9);
  client.copy_from_local_gpu("f", as_bytes(text), fmt, shredder);
  const auto splits = client.read_splits("f");
  const auto blocks = fs.read_blocks("f");
  ASSERT_EQ(splits.size(), blocks.size());
  for (std::size_t i = 0; i < splits.size(); ++i) {
    EXPECT_EQ(splits[i].data, blocks[i]);
    EXPECT_EQ(splits[i].digest, dedup::Sha1::hash(as_bytes(blocks[i])));
  }
}

// --- MapEmitter / engine mechanics ---

TEST(MapEmitter, PartitionIsStable) {
  const std::size_t r1 = MapEmitter::partition("hello", 8);
  EXPECT_EQ(r1, MapEmitter::partition("hello", 8));
  EXPECT_LT(r1, 8u);
}

TEST(MapEmitter, FinalizeSortsAndDigests) {
  MapEmitter a(2), b(2);
  a.emit("x", "1");
  a.emit("y", "2");
  b.emit("y", "2");
  b.emit("x", "1");
  a.finalize();
  b.finalize();
  EXPECT_EQ(a.bucket_digests(), b.bucket_digests());
}

TEST(MapEmitter, RejectsZeroReducers) {
  EXPECT_THROW(MapEmitter(0), std::invalid_argument);
}

Split make_split(const std::string& text) {
  Split s;
  s.data.assign(text.begin(), text.end());
  s.digest = dedup::Sha1::hash(as_bytes(s.data));
  return s;
}

TEST(MapReduceEngine, WordCountCorrectness) {
  MapReduceEngine engine(4);
  const auto job = make_wordcount_job(4);
  std::vector<Split> splits = {make_split("a b b\n"), make_split("b c\na a\n")};
  const auto result = engine.run(job, splits, nullptr);
  EXPECT_EQ(result.output.at("a"), "3");
  EXPECT_EQ(result.output.at("b"), "3");
  EXPECT_EQ(result.output.at("c"), "1");
  EXPECT_EQ(result.stats.map_tasks, 2u);
  EXPECT_EQ(result.stats.map_reused, 0u);
}

TEST(MapReduceEngine, MemoReusesUnchangedSplits) {
  MapReduceEngine engine(4);
  MemoServer memo;
  const auto job = make_wordcount_job(4);
  std::vector<Split> splits = {make_split("a b\n"), make_split("c d\n"),
                               make_split("e f\n")};
  engine.run(job, splits, &memo);
  // Change one split; the other two map tasks and most reducers reuse.
  splits[1] = make_split("c d x\n");
  const auto result = engine.run(job, splits, &memo);
  EXPECT_EQ(result.stats.map_reused, 2u);
  EXPECT_EQ(result.output.at("x"), "1");
}

TEST(MapReduceEngine, FullReuseWhenNothingChanges) {
  MapReduceEngine engine(4);
  MemoServer memo;
  const auto job = make_wordcount_job(4);
  const std::vector<Split> splits = {make_split("a b\n"), make_split("c\n")};
  const auto first = engine.run(job, splits, &memo);
  const auto second = engine.run(job, splits, &memo);
  EXPECT_EQ(second.stats.map_reused, splits.size());
  EXPECT_EQ(second.stats.reduce_reused, second.stats.reduce_tasks);
  EXPECT_EQ(second.output, first.output);
}

TEST(MapReduceEngine, MemoizedMatchesVanilla) {
  MapReduceEngine engine(4);
  MemoServer memo;
  const auto job = make_cooccurrence_job(2, 4);
  const std::string text = make_text_corpus(50000, 10);
  std::vector<Split> splits;
  for (std::size_t off = 0; off < text.size(); off += 5000) {
    splits.push_back(
        make_split(text.substr(off, std::min<std::size_t>(5000, text.size() - off))));
  }
  const auto vanilla = engine.run(job, splits, nullptr);
  engine.run(job, splits, &memo);
  const auto memoized = engine.run(job, splits, &memo);
  EXPECT_EQ(memoized.output, vanilla.output);
}

TEST(MapReduceEngine, ParamsDigestInvalidatesMemo) {
  MapReduceEngine engine(2);
  MemoServer memo;
  auto job = make_cooccurrence_job(1, 2);
  const std::vector<Split> splits = {make_split("a b c\n")};
  engine.run(job, splits, &memo);
  auto wider = make_cooccurrence_job(2, 2);
  const auto result = engine.run(wider, splits, &memo);
  EXPECT_EQ(result.stats.map_reused, 0u);  // different window => no reuse
}

TEST(MapReduceEngine, ValidatesJob) {
  MapReduceEngine engine(2);
  JobSpec bad;
  EXPECT_THROW(engine.run(bad, {}, nullptr), std::invalid_argument);
}

// --- Contraction trees (opt-in incremental reduce) ---

TEST(ContractionTree, OutputMatchesFlatReduce) {
  MapReduceEngine engine(4);
  auto job = make_wordcount_job(4);
  job.use_contraction = true;
  const std::string text = make_text_corpus(200000, 33);
  std::vector<Split> splits;
  for (std::size_t off = 0; off < text.size(); off += 4000) {
    splits.push_back(make_split(
        text.substr(off, std::min<std::size_t>(4000, text.size() - off))));
  }
  const auto flat = engine.run(job, splits, nullptr);  // no memo => flat path
  MemoServer memo;
  const auto contracted = engine.run(job, splits, &memo);
  EXPECT_EQ(contracted.output, flat.output);
  EXPECT_GT(memo.combine_misses(), 0u);
}

TEST(ContractionTree, LocalChangeReusesMostGroups) {
  MapReduceEngine engine(4);
  auto job = make_wordcount_job(4);
  job.use_contraction = true;
  const std::string text = make_text_corpus(400000, 34);
  auto build = [&](const std::string& t) {
    std::vector<Split> splits;
    for (std::size_t off = 0; off < t.size(); off += 4000) {
      splits.push_back(make_split(
          t.substr(off, std::min<std::size_t>(4000, t.size() - off))));
    }
    return splits;
  };
  MemoServer memo;
  engine.run(job, build(text), &memo);
  const auto primed_misses = memo.combine_misses();
  // Change one 4 KB region: only the log-depth contraction path through it
  // should recompute.
  std::string edited = text;
  for (std::size_t i = 200000; i < 204000; ++i) {
    if (edited[i] != ' ' && edited[i] != '\n') edited[i] = 'z';
  }
  const auto r = engine.run(job, build(edited), &memo);
  const auto new_misses = memo.combine_misses() - primed_misses;
  EXPECT_GT(memo.combine_hits(), 3 * new_misses);
  EXPECT_EQ(r.stats.map_reused, r.stats.map_tasks - 1);
}

TEST(ContractionTree, KMeansCombinerPreservesResult) {
  const auto blob = make_points_blob(20000, 4, 35);
  std::vector<Split> splits;
  for (std::size_t off = 0; off < blob.size(); off += 8000) {
    Split s;
    const auto len = std::min<std::size_t>(8000, blob.size() - off);
    s.data.assign(blob.begin() + static_cast<std::ptrdiff_t>(off),
                  blob.begin() + static_cast<std::ptrdiff_t>(off + len));
    s.digest = dedup::Sha1::hash(as_bytes(s.data));
    splits.push_back(std::move(s));
  }
  MapReduceEngine engine(4);
  KMeansDriver driver(4, 10, 36);
  auto job = driver.job_for(driver.initial_centroids(splits));
  const auto flat = engine.run(job, splits, nullptr);
  job.use_contraction = true;
  MemoServer memo;
  const auto contracted = engine.run(job, splits, &memo);
  // Sum order differs; centroids agree to printed precision or very nearly.
  ASSERT_EQ(contracted.output.size(), flat.output.size());
  for (const auto& [k, v] : flat.output) {
    float fx = 0, fy = 0, cx = 0, cy = 0;
    std::sscanf(v.c_str(), "%g,%g", &fx, &fy);
    std::sscanf(contracted.output.at(k).c_str(), "%g,%g", &cx, &cy);
    EXPECT_NEAR(fx, cx, 1e-3);
    EXPECT_NEAR(fy, cy, 1e-3);
  }
}

// --- K-means ---

TEST(KMeans, ConvergesToClusterCentres) {
  const auto blob = make_points_blob(20000, 4, 11);
  std::vector<Split> splits;
  for (std::size_t off = 0; off < blob.size(); off += 16000) {
    Split s;
    const auto len = std::min<std::size_t>(16000, blob.size() - off);
    s.data.assign(blob.begin() + static_cast<std::ptrdiff_t>(off),
                  blob.begin() + static_cast<std::ptrdiff_t>(off + len));
    s.digest = dedup::Sha1::hash(as_bytes(s.data));
    splits.push_back(std::move(s));
  }
  MapReduceEngine engine(4);
  KMeansDriver driver(4, 30, 12);
  const auto result = driver.run(engine, splits, nullptr);
  EXPECT_GT(result.iterations, 1u);
  // Convergence quality: mean squared distance of points to their nearest
  // centroid must approach the intra-cluster noise floor (points are drawn
  // +-15 around centres spaced 100 apart; a merged pair of clusters would
  // blow this up by two orders of magnitude).
  const auto points = decode_points(as_bytes(blob));
  double inertia = 0;
  for (const auto& [px, py] : points) {
    double best = 1e300;
    for (const auto& [cx, cy] : result.centroids) {
      const double dx = px - cx;
      const double dy = py - cy;
      best = std::min(best, dx * dx + dy * dy);
    }
    inertia += best;
  }
  inertia /= static_cast<double>(points.size());
  EXPECT_LT(inertia, 300.0);
}

TEST(KMeans, MemoizedIterationMatchesVanilla) {
  const auto blob = make_points_blob(5000, 4, 13);
  Split s;
  s.data = blob;
  s.digest = dedup::Sha1::hash(as_bytes(blob));
  MapReduceEngine engine(2);
  MemoServer memo;
  KMeansDriver driver(4, 10, 14);
  const auto vanilla = driver.run(engine, {s}, nullptr);
  driver.run(engine, {s}, &memo);
  const auto memoized = driver.run(engine, {s}, &memo);
  EXPECT_EQ(memoized.centroids, vanilla.centroids);
  EXPECT_EQ(memoized.aggregate_stats.map_reused,
            memoized.aggregate_stats.map_tasks);
}

TEST(KMeans, RejectsBadConfig) {
  EXPECT_THROW(KMeansDriver(0, 5, 1), std::invalid_argument);
  EXPECT_THROW(KMeansDriver(4, 0, 1), std::invalid_argument);
}

// --- Point blob generators ---

TEST(PointsBlob, RecordAlignedAndDeterministic) {
  const auto a = make_points_blob(100, 4, 15);
  const auto b = make_points_blob(100, 4, 15);
  EXPECT_EQ(a.size(), 800u);
  EXPECT_EQ(a, b);
}

TEST(PointsBlob, MutationChangesRequestedFraction) {
  const auto a = make_points_blob(100000, 4, 16);
  const auto b = mutate_points_blob(a, 0.2, 17);
  ASSERT_EQ(a.size(), b.size());
  std::size_t changed = 0;
  for (std::size_t p = 0; p < a.size(); p += 8) {
    changed += !std::equal(a.begin() + static_cast<std::ptrdiff_t>(p),
                           a.begin() + static_cast<std::ptrdiff_t>(p + 8),
                           b.begin() + static_cast<std::ptrdiff_t>(p));
  }
  const double frac = static_cast<double>(changed) / 100000.0;
  EXPECT_GT(frac, 0.1);
  EXPECT_LT(frac, 0.3);
}

TEST(PointsBlob, DecodeRoundTrip) {
  const auto blob = make_points_blob(10, 2, 18);
  const auto points = decode_points(as_bytes(blob));
  EXPECT_EQ(points.size(), 10u);
  EXPECT_THROW(decode_points(ByteSpan(blob).subspan(0, 7)),
               std::invalid_argument);
}

// --- The Figure 15 experiment harness (small smoke runs) ---

class ExperimentSmoke : public ::testing::TestWithParam<Workload> {};

TEST_P(ExperimentSmoke, IncrementalFasterAndCorrect) {
  ExperimentConfig config;
  config.workload = GetParam();
  config.input_bytes = GetParam() == Workload::kKMeans ? 400 * 1024
                                                       : 1024 * 1024;
  config.change_fraction = 0.05;
  config.seed = 21;
  config.split_mask_bits = 14;  // ~16 KB splits
  config.split_min = 4 * 1024;
  config.split_max = 64 * 1024;
  const auto result = run_incremental_experiment(config);
  EXPECT_TRUE(result.outputs_match) << workload_name(GetParam());
  EXPECT_GT(result.speedup, 1.0) << workload_name(GetParam());
  // K-means reuses heavily only in the warm-start iteration (later
  // iterations see fresh centroids), so its aggregate reuse is lower.
  const std::uint64_t floor = GetParam() == Workload::kKMeans
                                  ? result.map_tasks / 8
                                  : result.map_tasks / 2;
  EXPECT_GT(result.map_reused, floor) << workload_name(GetParam());
}

INSTANTIATE_TEST_SUITE_P(Workloads, ExperimentSmoke,
                         ::testing::Values(Workload::kWordCount,
                                           Workload::kCoOccurrence,
                                           Workload::kKMeans));

TEST(Experiment, MoreChangesLessReuse) {
  auto run_with = [](double fraction) {
    ExperimentConfig config;
    config.workload = Workload::kWordCount;
    config.input_bytes = 1024 * 1024;
    config.change_fraction = fraction;
    config.seed = 22;
    config.split_mask_bits = 14;
    config.split_min = 4 * 1024;
    config.split_max = 64 * 1024;
    return run_incremental_experiment(config);
  };
  const auto low = run_with(0.02);
  const auto high = run_with(0.30);
  EXPECT_GT(low.map_reused, high.map_reused);
}

TEST(Experiment, RejectsBadFraction) {
  ExperimentConfig config;
  config.change_fraction = 1.5;
  EXPECT_THROW(run_incremental_experiment(config), std::invalid_argument);
}

}  // namespace
}  // namespace shredder::inchdfs
