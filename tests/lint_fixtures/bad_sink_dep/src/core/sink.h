// Fixture: the sink/payload-view layer reaching up into a consumer module.
// Both the module-DAG check and the dedicated sink-isolation check must flag
// this include; the self-test asserts the "sink isolation" wording appears.
#pragma once

#include "service/service.h"

namespace shredder::core {
struct BadSink {};
}  // namespace shredder::core
