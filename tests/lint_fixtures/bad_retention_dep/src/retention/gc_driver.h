// Fixture: the retention control plane reaching up into the layers that
// drive it. Both the module-DAG check and the dedicated retention-isolation
// check must flag this include; the self-test asserts the "retention
// isolation" wording appears.
#pragma once

#include "backup/backup_server.h"

namespace shredder::retention {
struct BadGcDriver {};
}  // namespace shredder::retention
