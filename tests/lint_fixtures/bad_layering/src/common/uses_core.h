// Fixture: deliberate layering violation — common must not reach up to core.
#pragma once
#include "core/pipeline.h"
