// Fixture: deliberate wall-clock read inside virtual-time code.
#include <chrono>
double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
