// Fixture: legal include (core -> chunking via the DAG) and no clock calls.
#include "chunking/chunk.h"
#include "common/bytes.h"

double runtime(double x) { return x; }  // `runtime(` must not trip \btime\(
