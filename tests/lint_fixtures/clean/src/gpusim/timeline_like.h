// Fixture: identifier ending in `time` followed by `(` — the regex must not
// flag stream_time( as a call to time(.
#pragma once
struct TimelineLike {
  double stream_time(unsigned stream) const;
  double lifetime(int id) const;
};
