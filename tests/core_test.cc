// Tests for the Shredder core: sources, GPU kernels (functional equivalence
// with the serial reference), and the end-to-end pipeline in all modes.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <thread>

#include "chunking/cdc.h"
#include "core/kernels.h"
#include "core/pipeline.h"
#include "core/shredder.h"
#include "core/source.h"
#include "common/rng.h"
#include "dedup/digest.h"
#include "gpusim/dma.h"

namespace shredder::core {
namespace {

chunking::ChunkerConfig small_chunker() {
  chunking::ChunkerConfig c;
  c.window = 16;
  c.mask_bits = 8;
  c.marker = 0x42;
  return c;
}

ShredderConfig small_config() {
  ShredderConfig cfg;
  cfg.chunker = small_chunker();
  cfg.buffer_bytes = 64 * 1024;
  cfg.kernel.blocks = 8;
  cfg.kernel.threads_per_block = 16;
  cfg.sim_threads = 4;
  return cfg;
}

// --- Sources ---

TEST(MemorySource, ReadsAll) {
  const auto data = random_bytes(10000, 1);
  MemorySource src(as_bytes(data), 2e9);
  ByteVec out(10000);
  std::size_t total = 0;
  while (total < out.size()) {
    const auto n = src.read({out.data() + total, 3000});
    if (n == 0) break;
    total += n;
  }
  EXPECT_EQ(total, data.size());
  EXPECT_EQ(out, data);
  EXPECT_EQ(src.read({out.data(), 10}), 0u);
}

TEST(MemorySource, ReadSecondsMatchesBandwidth) {
  const auto data = random_bytes(100, 1);
  MemorySource src(as_bytes(data), 2e9);
  EXPECT_DOUBLE_EQ(src.read_seconds(2e9), 1.0);
}

TEST(SyntheticSource, DeterministicAcrossGranularities) {
  SyntheticSource a(10000, 7, 2e9);
  SyntheticSource b(10000, 7, 2e9);
  ByteVec va(10000), vb(10000);
  // Read a in one go, b in ragged pieces.
  EXPECT_EQ(a.read({va.data(), va.size()}), 10000u);
  std::size_t pos = 0;
  SplitMix64 rng(3);
  while (pos < vb.size()) {
    const std::size_t n = std::min<std::size_t>(1 + rng.next_below(977),
                                                vb.size() - pos);
    EXPECT_EQ(b.read({vb.data() + pos, n}), n);
    pos += n;
  }
  EXPECT_EQ(va, vb);
}

TEST(FileSource, ReadsRealFile) {
  const auto data = random_bytes(50000, 2);
  const std::string path = ::testing::TempDir() + "/shredder_filesource_test";
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fwrite(data.data(), 1, data.size(), f);
    std::fclose(f);
  }
  FileSource src(path, 2e9);
  EXPECT_EQ(src.total_bytes(), data.size());
  ByteVec out(data.size());
  std::size_t total = 0;
  while (total < out.size()) {
    const auto n = src.read({out.data() + total, 7777});
    if (n == 0) break;
    total += n;
  }
  EXPECT_EQ(out, data);
  std::remove(path.c_str());
}

TEST(FileSource, MissingFileThrows) {
  EXPECT_THROW(FileSource("/no/such/file/exists", 2e9), std::runtime_error);
}

TEST(FileSource, EndToEndThroughShredder) {
  const auto data = random_bytes(150000, 3);
  const std::string path = ::testing::TempDir() + "/shredder_filesource_e2e";
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fwrite(data.data(), 1, data.size(), f);
    std::fclose(f);
  }
  ShredderConfig cfg = small_config();
  Shredder shredder(cfg);
  FileSource src(path, cfg.host.reader_bw);
  const auto result = shredder.run(src);
  EXPECT_EQ(result.chunks, chunking::chunk_serial(shredder.tables(),
                                                  cfg.chunker, as_bytes(data)));
  std::remove(path.c_str());
}

TEST(SyntheticSource, DifferentSeedsDiffer) {
  SyntheticSource a(1000, 1, 2e9), b(1000, 2, 2e9);
  ByteVec va(1000), vb(1000);
  a.read({va.data(), va.size()});
  b.read({vb.data(), vb.size()});
  EXPECT_NE(va, vb);
}

TEST(AsyncReader, ReassemblesStreamWithCarry) {
  const auto data = random_bytes(100000, 5);
  MemorySource src(as_bytes(data), 2e9);
  AsyncReader reader(src, 8192, 15);
  ByteVec reassembled;
  std::uint64_t expect_offset = 0;
  std::uint64_t index = 0;
  while (auto buf = reader.next()) {
    EXPECT_EQ(buf->index, index++);
    EXPECT_EQ(buf->stream_offset, expect_offset);
    if (buf->index == 0) {
      EXPECT_EQ(buf->carry, 0u);
    } else {
      EXPECT_EQ(buf->carry, 15u);
    }
    // Carry must equal the previous payload's tail.
    const ByteSpan payload{buf->data.data() + buf->carry,
                           buf->data.size() - buf->carry};
    reassembled.insert(reassembled.end(), payload.begin(), payload.end());
    if (buf->carry > 0) {
      EXPECT_TRUE(std::equal(
          buf->data.begin(),
          buf->data.begin() + static_cast<std::ptrdiff_t>(buf->carry),
          data.begin() +
              static_cast<std::ptrdiff_t>(buf->stream_offset - buf->carry)));
    }
    expect_offset += payload.size();
  }
  EXPECT_EQ(reassembled, data);
}

TEST(AsyncReader, RejectsBadGeometry) {
  const auto data = random_bytes(100, 1);
  MemorySource src(as_bytes(data), 2e9);
  EXPECT_THROW(AsyncReader(src, 0, 0), std::invalid_argument);
  EXPECT_THROW(AsyncReader(src, 100, 100), std::invalid_argument);
}

// --- GPU kernels: functional equivalence with serial scan ---

class KernelEquivalence : public ::testing::TestWithParam<bool> {};

TEST_P(KernelEquivalence, MatchesSerialRawBoundaries) {
  const bool coalesced = GetParam();
  const auto config = small_chunker();
  const rabin::RabinTables tables(config.window);
  const auto data = random_bytes(300000, 9);

  gpu::Device device(gpu::DeviceSpec{}, 4);
  auto buf = device.alloc(data.size());
  device.memcpy_h2d(buf, 0, as_bytes(data), gpu::HostMemKind::kPinned);

  KernelParams params;
  params.blocks = 12;
  params.threads_per_block = 32;
  params.coalesced = coalesced;
  const auto result = chunk_on_gpu(device, buf, data.size(), 0, 0, tables,
                                   config, params);
  EXPECT_EQ(result.boundaries,
            chunking::find_raw_boundaries(tables, config, as_bytes(data)));
  EXPECT_EQ(result.stats.bytes_processed >= data.size(), true);
}

INSTANTIATE_TEST_SUITE_P(BasicAndCoalesced, KernelEquivalence,
                         ::testing::Values(false, true));

TEST(Kernels, CarryContextSuppressesAndWarms) {
  // Chunking buffer 2 with the last w-1 bytes of buffer 1 as carry must
  // reproduce exactly the serial boundaries of the concatenation that fall
  // in buffer 2.
  const auto config = small_chunker();
  const rabin::RabinTables tables(config.window);
  const auto data = random_bytes(200000, 10);
  const std::size_t cut = 100000;
  const auto whole = chunking::find_raw_boundaries(tables, config, as_bytes(data));

  gpu::Device device(gpu::DeviceSpec{}, 4);
  const std::size_t carry = config.window - 1;
  // Buffer 2 = carry + second half.
  ByteVec buf2(data.begin() + static_cast<std::ptrdiff_t>(cut - carry),
               data.end());
  auto dev2 = device.alloc(buf2.size());
  device.memcpy_h2d(dev2, 0, as_bytes(buf2), gpu::HostMemKind::kPinned);
  KernelParams params;
  params.blocks = 4;
  params.threads_per_block = 16;
  const auto result =
      chunk_on_gpu(device, dev2, buf2.size(), carry,
                   /*base_offset=*/cut - carry, tables, config, params);
  std::vector<std::uint64_t> expected;
  for (auto b : whole) {
    if (b > cut) expected.push_back(b);
  }
  EXPECT_EQ(result.boundaries, expected);
}

TEST(Kernels, CoalescedReportsSharedStagingAndFewerConflicts) {
  const auto config = small_chunker();
  const rabin::RabinTables tables(config.window);
  const auto data = random_bytes(1 << 20, 11);
  gpu::Device device(gpu::DeviceSpec{}, 4);
  auto buf = device.alloc(data.size());
  device.memcpy_h2d(buf, 0, as_bytes(data), gpu::HostMemKind::kPinned);

  KernelParams basic;
  basic.blocks = 14;
  basic.threads_per_block = 64;
  basic.coalesced = false;
  KernelParams coal = basic;
  coal.coalesced = true;

  const auto rb = chunk_on_gpu(device, buf, data.size(), 0, 0, tables, config,
                               basic);
  const auto rc = chunk_on_gpu(device, buf, data.size(), 0, 0, tables, config,
                               coal);
  EXPECT_EQ(rb.boundaries, rc.boundaries);
  EXPECT_EQ(rb.stats.shared_staged_bytes, 0u);
  EXPECT_GT(rc.stats.shared_staged_bytes, 0u);
  EXPECT_GT(rb.stats.row_switch_fraction, rc.stats.row_switch_fraction);
  // Fewer, larger transactions when coalesced.
  EXPECT_GT(rb.stats.transactions, rc.stats.transactions * 4);
  // And the virtual kernel time improves substantially (Fig 11).
  EXPECT_GT(rb.stats.virtual_seconds, rc.stats.virtual_seconds * 3);
}

TEST(Kernels, ValidatesArguments) {
  const auto config = small_chunker();
  const rabin::RabinTables tables(config.window);
  gpu::Device device(gpu::DeviceSpec{}, 2);
  auto buf = device.alloc(1000);
  KernelParams params;
  EXPECT_THROW(chunk_on_gpu(device, buf, 2000, 0, 0, tables, config, params),
               std::invalid_argument);
  EXPECT_THROW(chunk_on_gpu(device, buf, 500, 600, 0, tables, config, params),
               std::invalid_argument);
}

// --- Shredder end-to-end ---

class ShredderModes : public ::testing::TestWithParam<GpuMode> {};

TEST_P(ShredderModes, MatchesSerialChunking) {
  ShredderConfig cfg = small_config();
  cfg.mode = GetParam();
  Shredder shredder(cfg);
  const auto data = random_bytes(500000, 13);
  const auto result = shredder.run(as_bytes(data));
  const auto expected =
      chunking::chunk_serial(shredder.tables(), cfg.chunker, as_bytes(data));
  EXPECT_EQ(result.chunks, expected);
  EXPECT_EQ(result.total_bytes, data.size());
  EXPECT_GT(result.n_buffers, 1u);
  EXPECT_GT(result.virtual_seconds, 0.0);
  EXPECT_GT(result.virtual_throughput_bps, 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllModes, ShredderModes,
                         ::testing::Values(GpuMode::kBasic, GpuMode::kStreams,
                                           GpuMode::kStreamsCoalesced));

TEST(Shredder, MinMaxEndToEnd) {
  ShredderConfig cfg = small_config();
  cfg.chunker.min_size = 128;
  cfg.chunker.max_size = 1024;
  Shredder shredder(cfg);
  const auto data = random_bytes(300000, 14);
  const auto result = shredder.run(as_bytes(data));
  EXPECT_EQ(result.chunks, chunking::chunk_serial(shredder.tables(),
                                                  cfg.chunker, as_bytes(data)));
  for (std::size_t i = 0; i + 1 < result.chunks.size(); ++i) {
    EXPECT_GE(result.chunks[i].size, 128u);
    EXPECT_LE(result.chunks[i].size, 1024u);
  }
}

TEST(Shredder, UpcallsStreamInOrder) {
  ShredderConfig cfg = small_config();
  Shredder shredder(cfg);
  const auto data = random_bytes(200000, 15);
  std::vector<chunking::Chunk> streamed;
  const auto result = shredder.run(
      as_bytes(data), [&](const chunking::Chunk& c) { streamed.push_back(c); });
  EXPECT_EQ(streamed, result.chunks);
}

TEST(Shredder, BoundarySpanningBuffersIsFound) {
  // Force a tiny buffer so chunks regularly straddle buffer seams.
  ShredderConfig cfg = small_config();
  cfg.buffer_bytes = 4096;
  Shredder shredder(cfg);
  const auto data = random_bytes(100000, 16);
  const auto result = shredder.run(as_bytes(data));
  EXPECT_EQ(result.chunks, chunking::chunk_serial(shredder.tables(),
                                                  cfg.chunker, as_bytes(data)));
}

TEST(Shredder, StreamsModesFasterThanBasicVirtually) {
  const auto data = random_bytes(2 << 20, 17);
  auto run_mode = [&](GpuMode mode) {
    ShredderConfig cfg = small_config();
    cfg.buffer_bytes = 256 * 1024;
    cfg.mode = mode;
    Shredder shredder(cfg);
    return shredder.run(as_bytes(data)).virtual_throughput_bps;
  };
  const double basic = run_mode(GpuMode::kBasic);
  const double streams = run_mode(GpuMode::kStreams);
  const double full = run_mode(GpuMode::kStreamsCoalesced);
  EXPECT_GT(streams, basic);
  EXPECT_GT(full, streams);
}

TEST(Shredder, ReportsStageBreakdown) {
  ShredderConfig cfg = small_config();
  Shredder shredder(cfg);
  const auto data = random_bytes(400000, 18);
  const auto result = shredder.run(as_bytes(data));
  const auto& s = result.mean_stage_seconds;
  EXPECT_GT(s.reader, 0.0);
  EXPECT_GT(s.transfer, 0.0);
  EXPECT_GT(s.kernel, 0.0);
  EXPECT_GT(s.store, 0.0);
  EXPECT_NEAR(result.serialized_seconds,
              s.sum() * static_cast<double>(result.n_buffers),
              result.serialized_seconds * 0.2);
  EXPECT_LE(result.virtual_seconds, result.serialized_seconds + 1e-9);
}

TEST(Shredder, EmptyInputYieldsNoChunks) {
  ShredderConfig cfg = small_config();
  Shredder shredder(cfg);
  const auto result = shredder.run(ByteSpan{});
  EXPECT_TRUE(result.chunks.empty());
  EXPECT_EQ(result.total_bytes, 0u);
}

TEST(Shredder, ConfigValidation) {
  ShredderConfig cfg = small_config();
  cfg.buffer_bytes = 4;
  EXPECT_THROW(Shredder{cfg}, std::invalid_argument);
  cfg = small_config();
  cfg.ring_slots = 0;
  EXPECT_THROW(Shredder{cfg}, std::invalid_argument);
  cfg = small_config();
  cfg.kernel.blocks = 0;
  EXPECT_THROW(Shredder{cfg}, std::invalid_argument);
}

// --- Host chunker comparison path ---

TEST(HostChunker, MatchesSerial) {
  const auto chunker = small_chunker();
  const auto data = random_bytes(300000, 19);
  const rabin::RabinTables tables(chunker.window);
  const auto expected = chunking::chunk_serial(tables, chunker, as_bytes(data));
  for (bool arena : {false, true}) {
    const auto result =
        chunk_on_host(as_bytes(data), chunker, gpu::HostSpec{}, arena, 4);
    EXPECT_EQ(result.chunks, expected);
    EXPECT_GT(result.virtual_throughput_bps, 0.0);
    EXPECT_GT(result.wall_throughput_bps, 0.0);
  }
}

TEST(HostChunker, HoardCalibrationFasterThanMalloc) {
  const auto chunker = small_chunker();
  const auto data = random_bytes(100000, 20);
  const auto with =
      chunk_on_host(as_bytes(data), chunker, gpu::HostSpec{}, true, 4);
  const auto without =
      chunk_on_host(as_bytes(data), chunker, gpu::HostSpec{}, false, 4);
  EXPECT_GT(with.virtual_throughput_bps, without.virtual_throughput_bps);
}

// The library's central invariant, swept across the configuration grid:
// every (mode, buffer size, window, min/max) combination must produce chunks
// bit-identical to the serial reference scanner.
struct GridCase {
  GpuMode mode;
  std::size_t buffer_bytes;
  std::size_t window;
  std::uint64_t min_size;
  std::uint64_t max_size;
};

class ShredderConfigGrid : public ::testing::TestWithParam<GridCase> {};

TEST_P(ShredderConfigGrid, MatchesSerialReference) {
  const auto p = GetParam();
  ShredderConfig cfg;
  cfg.chunker.window = p.window;
  cfg.chunker.mask_bits = 9;
  cfg.chunker.marker = 0x42;
  cfg.chunker.min_size = p.min_size;
  cfg.chunker.max_size = p.max_size;
  cfg.buffer_bytes = p.buffer_bytes;
  cfg.mode = p.mode;
  cfg.kernel.blocks = 6;
  cfg.kernel.threads_per_block = 16;
  cfg.sim_threads = 4;
  Shredder shredder(cfg);
  const auto data = random_bytes(200000, 77 + p.window);
  const auto result = shredder.run(as_bytes(data));
  EXPECT_EQ(result.chunks, chunking::chunk_serial(shredder.tables(),
                                                  cfg.chunker, as_bytes(data)));
}

std::vector<GridCase> shredder_grid() {
  std::vector<GridCase> cases;
  for (const GpuMode mode :
       {GpuMode::kBasic, GpuMode::kStreams, GpuMode::kStreamsCoalesced}) {
    for (const std::size_t buffer : {8192uL, 65536uL}) {
      for (const std::size_t window : {8uL, 48uL}) {
        for (const auto& [mn, mx] :
             {std::pair<std::uint64_t, std::uint64_t>{0, 0},
              std::pair<std::uint64_t, std::uint64_t>{256, 2048}}) {
          cases.push_back({mode, buffer, window, mn, mx});
        }
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(FullGrid, ShredderConfigGrid,
                         ::testing::ValuesIn(shredder_grid()));

TEST(Shredder, VirtualThroughputBeatsCalibratedHost) {
  // The headline: full Shredder > 5x the calibrated host throughput
  // (reader-capped at 2 GB/s vs 0.4 GB/s chunk-bound host).
  const auto data = random_bytes(16 << 20, 21);
  ShredderConfig cfg = small_config();
  cfg.buffer_bytes = 1 << 20;
  cfg.mode = GpuMode::kStreamsCoalesced;
  cfg.kernel.blocks = 28;
  cfg.kernel.threads_per_block = 128;
  Shredder shredder(cfg);
  const auto gpu_result = shredder.run(as_bytes(data));
  const auto host_result =
      chunk_on_host(as_bytes(data), cfg.chunker, gpu::HostSpec{}, true, 4);
  EXPECT_GT(gpu_result.virtual_throughput_bps,
            4.0 * host_result.virtual_throughput_bps);
}

// --- Store-stage D2H batching ---
// Boundary and digest arrays ride back in ONE DMA descriptor per buffer
// (ROADMAP item: batch the fingerprint digests into the Store D2H).

TEST(Pipeline, StoreStageIsOneDescriptorPerBuffer) {
  const gpu::DeviceSpec spec;
  const std::size_t digest_bytes = 512 * sizeof(dedup::ChunkDigest);
  for (const bool pinned : {false, true}) {
    const gpu::HostMemKind kind =
        pinned ? gpu::HostMemKind::kPinned : gpu::HostMemKind::kPageable;
    for (const std::size_t n : {std::size_t{1}, std::size_t{1000}}) {
      const double batched = store_stage_seconds(spec, n, pinned, digest_bytes);
      // Exactly one combined transfer plus per-boundary handling...
      EXPECT_NEAR(batched,
                  gpu::dma_seconds(spec, n * 8 + digest_bytes,
                                   gpu::Direction::kDeviceToHost, kind) +
                      static_cast<double>(n) * 2e-9,
                  1e-15);
      // ...strictly cheaper than shipping the two arrays separately (the
      // per-transfer setup cost is paid once, not twice).
      const double split =
          gpu::dma_seconds(spec, n * 8, gpu::Direction::kDeviceToHost, kind) +
          gpu::dma_seconds(spec, digest_bytes, gpu::Direction::kDeviceToHost,
                           kind) +
          static_cast<double>(n) * 2e-9;
      EXPECT_LT(batched, split);
    }
    // An eos batch carrying only the trailing digest is a single digest DMA.
    EXPECT_NEAR(store_stage_seconds(spec, 0, pinned, digest_bytes),
                gpu::dma_seconds(spec, digest_bytes,
                                 gpu::Direction::kDeviceToHost, kind),
                1e-15);
  }
}

TEST(Pipeline, BatchedDigestReadbackLeavesDigestsUnchanged) {
  // End-to-end guard for the descriptor change: a fingerprinting run's
  // digests stay bit-identical to host SHA-256 over the same chunks.
  ShredderConfig cfg = small_config();
  cfg.fingerprint_on_device = true;
  Shredder shredder(cfg);
  const auto data = random_bytes(300000, 77);
  const auto result = shredder.run(as_bytes(data));
  ASSERT_EQ(result.digests.size(), result.chunks.size());
  ASSERT_GT(result.chunks.size(), 1u);
  for (std::size_t i = 0; i < result.chunks.size(); ++i) {
    const auto& c = result.chunks[i];
    EXPECT_EQ(result.digests[i],
              dedup::ChunkHasher::hash(as_bytes(data).subspan(
                  static_cast<std::size_t>(c.offset),
                  static_cast<std::size_t>(c.size))))
        << "chunk " << i;
  }
  EXPECT_GT(result.mean_stage_seconds.store, 0.0);
}

// --- Zero-copy slot leases ---

TEST(SlotLease, SharesSlotUntilLastReferenceDrops) {
  auto pool = std::make_shared<detail::SlotPool>(gpu::DeviceSpec{},
                                                 /*slots=*/2, /*slot_size=*/64);
  EXPECT_EQ(pool->leased(), 0u);
  const auto slot = pool->acquire();
  ASSERT_TRUE(slot.has_value());
  std::memset(pool->slot_span(*slot).data(), 7, 64);
  {
    SlotLease lease = SlotLease::from_slot(pool, *slot, 16);
    EXPECT_TRUE(lease.slot_backed());
    EXPECT_EQ(lease.size(), 16u);
    EXPECT_EQ(pool->leased(), 1u);
    SlotLease copy = lease;  // shares the slot, no second lease charge
    const SlotLease moved = std::move(lease);
    EXPECT_TRUE(lease.empty());  // moved-from holds no stale view
    EXPECT_EQ(pool->leased(), 1u);
    EXPECT_EQ(moved.bytes()[0], 7);
    EXPECT_EQ(copy.bytes().data(), moved.bytes().data());
  }
  EXPECT_EQ(pool->leased(), 0u);  // last reference dropped -> slot recycled
  ASSERT_TRUE(pool->acquire().has_value());  // and acquirable again

  const SlotLease owned = SlotLease::from_owned(ByteVec{1, 2, 3});
  EXPECT_FALSE(owned.slot_backed());
  EXPECT_EQ(owned.size(), 3u);
  EXPECT_FALSE(SlotLease{}.slot_backed());
}

TEST(SlotPool, StopWakesWaitersAndRefusesNewLeases) {
  auto pool = std::make_shared<detail::SlotPool>(gpu::DeviceSpec{}, 1, 64);
  const auto slot = pool->acquire();
  ASSERT_TRUE(slot.has_value());
  std::atomic<bool> woke{false};
  std::thread waiter([&] {
    EXPECT_FALSE(pool->acquire().has_value());  // blocked, then stopped
    woke.store(true);
  });
  pool->stop();
  waiter.join();
  EXPECT_TRUE(woke.load());
  pool->release(*slot);                       // outstanding slots still return
  EXPECT_FALSE(pool->acquire().has_value());  // but nothing new is handed out
}

// Engine-level regression for the double-splice bug: every batch's payload
// must be byte-identical to carry_prefix ++ data as submitted, in both the
// slot-backed (streams) and owned (basic) representations.
class PipelinePayloadModes : public ::testing::TestWithParam<GpuMode> {};

TEST_P(PipelinePayloadModes, BatchPayloadIsCarryPrefixPlusData) {
  const auto chunker = small_chunker();
  const rabin::RabinTables tables(chunker.window);
  gpu::Device device(gpu::DeviceSpec{}, 2);
  PipelineEngineConfig cfg;
  cfg.mode = GetParam();
  cfg.slot_bytes = 8192;
  cfg.ring_slots = 3;
  cfg.kernel.blocks = 4;
  cfg.kernel.threads_per_block = 16;
  PipelineEngine engine(cfg, device, tables, chunker);

  const auto data = random_bytes(3 * 4096, 91);
  const std::size_t carry = chunker.window - 1;
  std::vector<ByteVec> expect_staged;
  std::vector<std::size_t> expect_carry;
  for (std::size_t i = 0; i < 3; ++i) {
    StreamBuffer buf;
    buf.seq = i;
    const std::size_t pos = i * 4096;
    buf.base_offset = i == 0 ? 0 : pos - carry;
    if (i == 1) {
      // Carry staged inside `data`, the AsyncReader shape.
      buf.carry = carry;
      buf.data.assign(data.begin() + static_cast<std::ptrdiff_t>(pos - carry),
                      data.begin() + static_cast<std::ptrdiff_t>(pos + 4096));
    } else {
      // Carry as a separate prefix, the service-scheduler shape — the
      // layout the double host splice corrupted-by-copy.
      if (i > 0) {
        buf.carry_prefix.assign(
            data.begin() + static_cast<std::ptrdiff_t>(pos - carry),
            data.begin() + static_cast<std::ptrdiff_t>(pos));
      }
      buf.data.assign(data.begin() + static_cast<std::ptrdiff_t>(pos),
                      data.begin() + static_cast<std::ptrdiff_t>(pos + 4096));
    }
    expect_staged.emplace_back(
        data.begin() + static_cast<std::ptrdiff_t>(buf.base_offset),
        data.begin() + static_cast<std::ptrdiff_t>(pos + 4096));
    expect_carry.push_back(i == 0 ? 0 : carry);
    ASSERT_TRUE(engine.submit(std::move(buf)));
  }
  StreamBuffer eos;
  eos.seq = 3;
  eos.eos = true;
  ASSERT_TRUE(engine.submit(std::move(eos)));
  engine.close();

  std::size_t i = 0;
  while (auto batch = engine.next_batch()) {
    if (batch->eos) continue;
    ASSERT_LT(i, expect_staged.size());
    EXPECT_EQ(batch->payload.slot_backed(), engine.pipelined());
    ASSERT_EQ(batch->payload.size(), expect_staged[i].size());
    EXPECT_EQ(std::memcmp(batch->payload.bytes().data(),
                          expect_staged[i].data(), expect_staged[i].size()),
              0)
        << "buffer " << i;
    EXPECT_EQ(batch->payload_carry, expect_carry[i]);
    ++i;
  }
  EXPECT_EQ(i, 3u);
  EXPECT_EQ(engine.slots_leased(), 0u);  // every lease dropped with its batch
}

INSTANTIATE_TEST_SUITE_P(BasicAndStreams, PipelinePayloadModes,
                         ::testing::Values(GpuMode::kBasic, GpuMode::kStreams,
                                           GpuMode::kStreamsCoalesced));

TEST(Pipeline, LeaseHoldersExtendBackpressureWithoutLeaking) {
  // A consumer sitting on a batch's lease keeps the slot out of circulation:
  // with a 1-slot ring the producer cannot stage buffer i+1 until batch i's
  // lease drops. The slots_leased gauge tracks the outstanding count.
  const auto chunker = small_chunker();
  const rabin::RabinTables tables(chunker.window);
  gpu::Device device(gpu::DeviceSpec{}, 2);
  obs::Registry registry;
  PipelineEngineConfig cfg;
  cfg.mode = GpuMode::kStreams;
  cfg.slot_bytes = 4096;
  cfg.ring_slots = 1;
  cfg.kernel.blocks = 4;
  cfg.kernel.threads_per_block = 16;
  cfg.registry = &registry;
  PipelineEngine engine(cfg, device, tables, chunker);

  const auto data = random_bytes(3 * 2048, 93);
  std::atomic<std::size_t> submitted{0};
  std::thread producer([&] {
    for (std::size_t i = 0; i < 3; ++i) {
      StreamBuffer buf;
      buf.seq = i;
      buf.base_offset = i * 2048;
      buf.data.assign(data.begin() + static_cast<std::ptrdiff_t>(i * 2048),
                      data.begin() + static_cast<std::ptrdiff_t>((i + 1) * 2048));
      if (!engine.submit(std::move(buf))) break;
      submitted.fetch_add(1);
    }
    engine.close();
  });

  auto first = engine.next_batch();
  ASSERT_TRUE(first.has_value());
  ASSERT_FALSE(first->eos);
  // While we hold the only slot's lease, the producer is stuck staging
  // buffer 1 (buffer 0's submit was the one that went through).
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(submitted.load(), 1u);
  EXPECT_EQ(engine.slots_leased(), 1u);
  EXPECT_EQ(registry.gauge("pipeline.slots_leased").value(), 1.0);

  first.reset();  // drop the lease: the ring slot recycles, the producer runs
  while (auto batch = engine.next_batch()) {
  }
  producer.join();
  EXPECT_EQ(submitted.load(), 3u);
  EXPECT_EQ(engine.slots_leased(), 0u);
  EXPECT_EQ(registry.gauge("pipeline.slots_leased").value(), 0.0);
}

}  // namespace
}  // namespace shredder::core
