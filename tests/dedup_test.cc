// Tests for the dedup substrate: SHA-1/SHA-256 against official vectors,
// chunk index, content-addressed store, and the deduplicator.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <unordered_map>

#include "chunking/cdc.h"
#include "common/rng.h"
#include "dedup/dedup.h"
#include "dedup/index.h"
#include "dedup/sha1.h"
#include "dedup/sha256.h"
#include "dedup/store.h"

namespace shredder::dedup {
namespace {

ByteSpan str_bytes(const char* s) {
  return {reinterpret_cast<const std::uint8_t*>(s), std::strlen(s)};
}

// --- SHA-1: FIPS 180-1 / RFC 3174 vectors ---

TEST(Sha1, EmptyString) {
  EXPECT_EQ(Sha1::hash({}).hex(), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
}

TEST(Sha1, Abc) {
  EXPECT_EQ(Sha1::hash(str_bytes("abc")).hex(),
            "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1, TwoBlockMessage) {
  EXPECT_EQ(
      Sha1::hash(str_bytes(
                     "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))
          .hex(),
      "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha1, MillionAs) {
  std::string a(1000000, 'a');
  EXPECT_EQ(Sha1::hash(as_bytes(a)).hex(),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1, IncrementalMatchesOneShot) {
  const auto data = random_bytes(100000, 1);
  Sha1 h;
  std::size_t pos = 0;
  SplitMix64 rng(2);
  while (pos < data.size()) {
    const std::size_t n =
        std::min<std::size_t>(1 + rng.next_below(300), data.size() - pos);
    h.update(ByteSpan(data).subspan(pos, n));
    pos += n;
  }
  EXPECT_EQ(h.finish(), Sha1::hash(as_bytes(data)));
}

TEST(Sha1, FinishResets) {
  Sha1 h;
  h.update(str_bytes("abc"));
  h.finish();
  h.update(str_bytes("abc"));
  EXPECT_EQ(h.finish().hex(), "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1, Prefix64MatchesHexPrefix) {
  const auto d = Sha1::hash(str_bytes("abc"));
  EXPECT_EQ(d.prefix64(), 0xa9993e364706816aull);
}

// --- SHA-256: FIPS 180-4 vectors ---

TEST(Sha256, EmptyString) {
  EXPECT_EQ(Sha256::hash({}).hex(),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(Sha256::hash(str_bytes("abc")).hex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(
      Sha256::hash(str_bytes(
                       "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))
          .hex(),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  std::string a(1000000, 'a');
  EXPECT_EQ(Sha256::hash(as_bytes(a)).hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  const auto data = random_bytes(50000, 3);
  Sha256 h;
  std::size_t pos = 0;
  SplitMix64 rng(4);
  while (pos < data.size()) {
    const std::size_t n =
        std::min<std::size_t>(1 + rng.next_below(177), data.size() - pos);
    h.update(ByteSpan(data).subspan(pos, n));
    pos += n;
  }
  EXPECT_EQ(h.finish(), Sha256::hash(as_bytes(data)));
}

// --- ChunkIndex ---

TEST(ChunkIndex, LookupOrInsertSemantics) {
  ChunkIndex index;
  const auto d = ChunkHasher::hash(str_bytes("chunk-1"));
  EXPECT_FALSE(index.lookup_or_insert(d, {0, 100}).has_value());
  const auto existing = index.lookup_or_insert(d, {999, 1});
  ASSERT_TRUE(existing.has_value());
  EXPECT_EQ(existing->store_offset, 0u);
  EXPECT_EQ(existing->size, 100u);
  EXPECT_EQ(index.size(), 1u);
}

TEST(ChunkIndex, LookupMiss) {
  ChunkIndex index;
  EXPECT_FALSE(index.lookup(ChunkHasher::hash(str_bytes("nope"))).has_value());
}

TEST(ChunkIndex, ProbeAccountingAndVirtualCost) {
  ChunkIndex index(1e-6);
  const auto d = ChunkHasher::hash(str_bytes("x"));
  index.lookup_or_insert(d, {0, 1});
  index.lookup(d);
  index.lookup(d);
  EXPECT_EQ(index.probes(), 3u);
  EXPECT_NEAR(index.virtual_seconds(), 3e-6, 1e-12);
}

TEST(ChunkIndex, RejectsNegativeProbeCost) {
  EXPECT_THROW(ChunkIndex(-1.0), std::invalid_argument);
}

TEST(ChunkIndex, ConcurrentInsertsExactlyOneWinner) {
  ChunkIndex index;
  const auto d = ChunkHasher::hash(str_bytes("contested"));
  std::atomic<int> inserted{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 100; ++i) {
        if (!index
                 .lookup_or_insert(d, {static_cast<std::uint64_t>(t), 1})
                 .has_value()) {
          inserted++;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(inserted.load(), 1);
  EXPECT_EQ(index.size(), 1u);
}

// --- ChunkStore ---

TEST(ChunkStore, ReleaseRefReclaimsOnLastReference) {
  ChunkStore store;
  const auto a = random_bytes(64, 7);
  const auto b = random_bytes(32, 8);
  const auto da = ChunkHasher::hash(as_bytes(a));
  const auto db = ChunkHasher::hash(as_bytes(b));
  store.put(da, as_bytes(a));
  store.put(db, as_bytes(b));
  store.add_ref(da);  // a: 2 refs, b: 1 ref
  std::uint64_t remaining = 99;
  EXPECT_EQ(store.release_ref(da, &remaining), ReleaseOutcome::kLive);
  EXPECT_EQ(remaining, 1u);
  EXPECT_TRUE(store.contains(da));
  EXPECT_EQ(store.release_ref(da, &remaining), ReleaseOutcome::kReclaimed);
  EXPECT_EQ(remaining, 0u);
  EXPECT_FALSE(store.contains(da));  // reclaimed with the last reference
  EXPECT_EQ(store.unique_chunks(), 1u);
  EXPECT_EQ(store.unique_bytes(), b.size());
  EXPECT_EQ(store.total_refs(), 1u);
}

TEST(ChunkStore, ReleaseRefUnknownDigestIsTypedAndInert) {
  ChunkStore store;
  const auto a = random_bytes(64, 7);
  const auto da = ChunkHasher::hash(as_bytes(a));
  std::uint64_t remaining = 99;
  // Unknown digest: typed outcome, `remaining` untouched, store unchanged.
  EXPECT_EQ(store.release_ref(da, &remaining),
            ReleaseOutcome::kUnknownDigest);
  EXPECT_EQ(remaining, 99u);
  EXPECT_EQ(store.total_refs(), 0u);
  store.put(da, as_bytes(a));
  EXPECT_EQ(store.release_ref(da), ReleaseOutcome::kReclaimed);
  EXPECT_EQ(store.release_ref(da), ReleaseOutcome::kUnknownDigest);
}

TEST(ChunkStore, DeferredReclaimParksAndResurrects) {
  ChunkStore store(/*deferred_reclaim=*/true);
  const auto a = random_bytes(64, 21);
  const auto da = ChunkHasher::hash(as_bytes(a));
  store.put(da, as_bytes(a));
  EXPECT_EQ(store.release_ref(da), ReleaseOutcome::kDeferred);
  // Parked, not freed: still resident, counted as zero-ref.
  EXPECT_TRUE(store.contains(da));
  EXPECT_EQ(store.zero_ref_chunks(), 1u);
  EXPECT_EQ(store.zero_ref_bytes(), a.size());
  EXPECT_EQ(store.ref_count(da), 0u);
  // Double release on a parked chunk is a typed error, not an underflow.
  EXPECT_EQ(store.release_ref(da), ReleaseOutcome::kNoRefs);
  // add_ref resurrects.
  EXPECT_TRUE(store.add_ref(da));
  EXPECT_EQ(store.ref_count(da), 1u);
  EXPECT_EQ(store.zero_ref_chunks(), 0u);
  // Park again, then resurrect via put.
  EXPECT_EQ(store.release_ref(da), ReleaseOutcome::kDeferred);
  EXPECT_EQ(store.put(da, as_bytes(a)), PutOutcome::kRefAdded);
  EXPECT_EQ(store.ref_count(da), 1u);
  EXPECT_EQ(store.zero_ref_bytes(), 0u);
}

TEST(ChunkStore, SweepFreesOnlyUnkeptZeroRefChunks) {
  ChunkStore store(/*deferred_reclaim=*/true);
  const auto a = random_bytes(64, 22);
  const auto b = random_bytes(32, 23);
  const auto c = random_bytes(16, 24);
  const auto da = ChunkHasher::hash(as_bytes(a));
  const auto db = ChunkHasher::hash(as_bytes(b));
  const auto dc = ChunkHasher::hash(as_bytes(c));
  store.put(da, as_bytes(a));
  store.put(db, as_bytes(b));
  store.put(dc, as_bytes(c));
  store.release_ref(da);
  store.release_ref(db);  // a and b parked; c live
  const auto stats =
      store.sweep_zero_refs([&](const ChunkDigest& d) { return d == db; });
  EXPECT_EQ(stats.scanned, 3u);
  EXPECT_EQ(stats.freed_chunks, 1u);
  EXPECT_EQ(stats.freed_bytes, a.size());
  EXPECT_EQ(stats.kept, 1u);
  EXPECT_FALSE(store.contains(da));
  EXPECT_TRUE(store.contains(db));  // vetoed by keep (still pinned)
  EXPECT_TRUE(store.contains(dc));  // live, never a candidate
  EXPECT_EQ(store.zero_ref_chunks(), 1u);
}

TEST(ChunkStore, OccupancyObserverSeesEveryMutation) {
  ChunkStore store(/*deferred_reclaim=*/true);
  StoreOccupancy last;
  int calls = 0;
  store.set_observer([&](const StoreOccupancy& o) {
    last = o;
    ++calls;
  });
  EXPECT_EQ(calls, 1);  // installation publishes the current state
  const auto a = random_bytes(64, 25);
  const auto da = ChunkHasher::hash(as_bytes(a));
  store.put(da, as_bytes(a));
  EXPECT_EQ(last.chunks, 1u);
  EXPECT_EQ(last.bytes, a.size());
  EXPECT_EQ(last.refs, 1u);
  store.add_ref(da);
  EXPECT_EQ(last.refs, 2u);
  store.release_ref(da);
  store.release_ref(da);
  EXPECT_EQ(last.refs, 0u);
  EXPECT_EQ(last.zero_ref_chunks, 1u);
  store.sweep_zero_refs();
  EXPECT_EQ(last.chunks, 0u);
  EXPECT_EQ(last.bytes, 0u);
  EXPECT_GE(calls, 6);
}

TEST(ChunkStore, RebuildRefsRecomputesFromAuthority) {
  ChunkStore store(/*deferred_reclaim=*/true);
  const auto a = random_bytes(64, 26);
  const auto b = random_bytes(32, 27);
  const auto da = ChunkHasher::hash(as_bytes(a));
  const auto db = ChunkHasher::hash(as_bytes(b));
  store.put(da, as_bytes(a));
  store.put(db, as_bytes(b));
  store.add_ref(da);  // a: 2, b: 1 — pretend these drifted from the truth
  std::unordered_map<ChunkDigest, std::uint64_t, ChunkDigestHash> counts;
  counts[da] = 5;  // manifests say 5 occurrences
  const auto zeroed = store.rebuild_refs(counts);  // b unreferenced
  EXPECT_EQ(store.ref_count(da), 5u);
  EXPECT_EQ(store.ref_count(db), 0u);  // parked, not freed
  EXPECT_EQ(store.total_refs(), 5u);
  ASSERT_EQ(zeroed.size(), 1u);
  EXPECT_EQ(zeroed[0], db);
  // Immediate-reclaim mode frees instead of parking.
  ChunkStore eager;
  eager.put(da, as_bytes(a));
  eager.put(db, as_bytes(b));
  const auto zeroed2 = eager.rebuild_refs(counts);
  EXPECT_TRUE(zeroed2.empty());
  EXPECT_FALSE(eager.contains(db));
  EXPECT_EQ(eager.unique_bytes(), a.size());
}

TEST(ChunkStore, EraseRemovesRegardlessOfRefs) {
  ChunkStore store;
  const auto a = random_bytes(64, 9);
  const auto da = ChunkHasher::hash(as_bytes(a));
  store.put(da, as_bytes(a));
  store.add_ref(da);
  EXPECT_EQ(store.erase(da), EraseOutcome::kErased);
  EXPECT_FALSE(store.contains(da));
  EXPECT_EQ(store.total_refs(), 0u);
  EXPECT_EQ(store.unique_bytes(), 0u);
  // Unknown digest: typed outcome (negative-path contract).
  EXPECT_EQ(store.erase(da), EraseOutcome::kUnknownDigest);
}

TEST(ChunkStore, PutReportsInsertedVsRefAdded) {
  ChunkStore store;
  const auto a = random_bytes(64, 10);
  const auto da = ChunkHasher::hash(as_bytes(a));
  EXPECT_EQ(store.put(da, as_bytes(a)), PutOutcome::kInserted);
  EXPECT_EQ(store.put(da, as_bytes(a)), PutOutcome::kRefAdded);
  EXPECT_EQ(store.total_refs(), 2u);
  EXPECT_EQ(store.unique_chunks(), 1u);
}

TEST(ChunkStore, PutGetRoundTrip) {
  ChunkStore store;
  const auto data = random_bytes(1000, 5);
  const auto d = ChunkHasher::hash(as_bytes(data));
  EXPECT_EQ(store.put(d, as_bytes(data)), PutOutcome::kInserted);
  EXPECT_EQ(store.put(d, as_bytes(data)), PutOutcome::kRefAdded);  // duplicate
  EXPECT_EQ(store.get(d).value(), data);
  EXPECT_EQ(store.unique_chunks(), 1u);
  EXPECT_EQ(store.unique_bytes(), 1000u);
  EXPECT_EQ(store.total_refs(), 2u);
}

TEST(ChunkStore, GetMissing) {
  ChunkStore store;
  EXPECT_FALSE(store.get(ChunkHasher::hash(str_bytes("missing"))).has_value());
  EXPECT_FALSE(store.add_ref(ChunkHasher::hash(str_bytes("missing"))));
}

TEST(ChunkStore, AddRefCounts) {
  ChunkStore store;
  const auto data = random_bytes(10, 6);
  const auto d = ChunkHasher::hash(as_bytes(data));
  store.put(d, as_bytes(data));
  EXPECT_TRUE(store.add_ref(d));
  EXPECT_EQ(store.total_refs(), 2u);
}

// --- Deduplicator ---

TEST(Deduplicator, FirstIngestAllUnique) {
  const auto data = random_bytes(256 * 1024, 7);
  chunking::ChunkerConfig cfg;
  cfg.window = 16;
  cfg.mask_bits = 8;
  cfg.marker = 0x42;
  const rabin::RabinTables tables(cfg.window);
  const auto chunks = chunking::chunk_serial(tables, cfg, as_bytes(data));
  Deduplicator dedup;
  const auto stats = dedup.ingest(as_bytes(data), chunks);
  EXPECT_EQ(stats.chunks_total, chunks.size());
  EXPECT_EQ(stats.chunks_duplicate, 0u);
  EXPECT_EQ(stats.bytes_total, data.size());
  EXPECT_EQ(dedup.store().unique_bytes(), data.size());
}

TEST(Deduplicator, SecondIngestFullyDuplicate) {
  const auto data = random_bytes(128 * 1024, 8);
  chunking::ChunkerConfig cfg;
  cfg.window = 16;
  cfg.mask_bits = 8;
  cfg.marker = 0x42;
  const rabin::RabinTables tables(cfg.window);
  const auto chunks = chunking::chunk_serial(tables, cfg, as_bytes(data));
  Deduplicator dedup;
  dedup.ingest(as_bytes(data), chunks);
  const auto stats = dedup.ingest(as_bytes(data), chunks);
  EXPECT_EQ(stats.bytes_duplicate, stats.bytes_total);
  EXPECT_DOUBLE_EQ(stats.dedup_ratio(), 1.0);
}

TEST(Deduplicator, MutatedVersionMostlyDuplicate) {
  // The end-to-end CDC dedup property on a 5% mutated payload.
  const auto v1 = random_bytes(1 << 20, 9);
  const auto v2 = mutate_bytes(as_bytes(v1), 0.05, 10);
  chunking::ChunkerConfig cfg;
  cfg.window = 32;
  cfg.mask_bits = 11;  // ~2 KB chunks
  cfg.marker = 0x42;
  const rabin::RabinTables tables(cfg.window);
  Deduplicator dedup;
  dedup.ingest(as_bytes(v1), chunking::chunk_serial(tables, cfg, as_bytes(v1)));
  const auto stats = dedup.ingest(
      as_bytes(v2), chunking::chunk_serial(tables, cfg, as_bytes(v2)));
  EXPECT_GT(stats.dedup_ratio(), 0.6);
  EXPECT_LT(stats.dedup_ratio(), 1.0);
}

TEST(Deduplicator, RejectsOutOfRangeChunks) {
  Deduplicator dedup;
  const auto data = random_bytes(100, 11);
  EXPECT_THROW(dedup.ingest(as_bytes(data), {{50, 100}}),
               std::invalid_argument);
}

TEST(Deduplicator, ReconstructionFromStore) {
  // Everything ingested can be reassembled from the content-addressed store:
  // the backup-agent property.
  const auto data = random_bytes(512 * 1024, 12);
  chunking::ChunkerConfig cfg;
  cfg.window = 16;
  cfg.mask_bits = 9;
  cfg.marker = 0x42;
  const rabin::RabinTables tables(cfg.window);
  const auto chunks = chunking::chunk_serial(tables, cfg, as_bytes(data));
  Deduplicator dedup;
  dedup.ingest(as_bytes(data), chunks);
  ByteVec reassembled;
  for (const auto& c : chunks) {
    const auto payload = ByteSpan(data).subspan(c.offset, c.size);
    const auto stored = dedup.store().get(ChunkHasher::hash(payload));
    ASSERT_TRUE(stored.has_value());
    reassembled.insert(reassembled.end(), stored->begin(), stored->end());
  }
  EXPECT_EQ(reassembled, data);
}

}  // namespace
}  // namespace shredder::dedup
