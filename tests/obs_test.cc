// Tests for the observability layer: metrics registry and virtual-time
// tracer (docs/observability.md).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "obs/registry.h"
#include "obs/trace.h"

namespace shredder::obs {
namespace {

TEST(Registry, CounterRegistrationIsIdempotent) {
  Registry reg;
  Counter& a = reg.counter("svc.bytes_total");
  Counter& b = reg.counter("svc.bytes_total");
  EXPECT_EQ(&a, &b);
  a.add(3);
  b.add(4);
  EXPECT_EQ(a.value(), 7u);
}

TEST(Registry, LabelOrderDoesNotSplitMetrics) {
  Registry reg;
  Counter& a = reg.counter("m", {{"b", "2"}, {"a", "1"}});
  Counter& b = reg.counter("m", {{"a", "1"}, {"b", "2"}});
  EXPECT_EQ(&a, &b);
  Counter& other = reg.counter("m", {{"a", "1"}, {"b", "3"}});
  EXPECT_NE(&a, &other);
}

TEST(Registry, TypeMismatchThrows) {
  Registry reg;
  reg.counter("m");
  EXPECT_THROW(reg.gauge("m"), std::invalid_argument);
  EXPECT_THROW(reg.timing("m"), std::invalid_argument);
  reg.timing("t");
  EXPECT_THROW(reg.counter("t"), std::invalid_argument);
}

TEST(Registry, DisabledMutatorsFreezeValues) {
  Registry reg;
  Counter& c = reg.counter("c");
  Gauge& g = reg.gauge("g");
  Timing& t = reg.timing("t");
  c.add(5);
  g.set(2.5);
  t.observe(1.0);
  reg.set_enabled(false);
  c.add(100);
  g.set(99.0);
  t.observe(100.0);
  EXPECT_EQ(c.value(), 5u);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  EXPECT_EQ(t.summary().count(), 1u);
  reg.set_enabled(true);
  c.add(1);
  EXPECT_EQ(c.value(), 6u);
}

TEST(Registry, TimingMergesAcrossThreads) {
  Registry reg;
  Timing& t = reg.timing("stage_seconds");
  constexpr int kThreads = 6;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> threads;
  for (int w = 0; w < kThreads; ++w) {
    threads.emplace_back([&t, w] {
      for (int i = 0; i < kPerThread; ++i) {
        t.observe(static_cast<double>(w) + 1.0);
      }
    });
  }
  for (auto& th : threads) th.join();
  const Summary s = t.summary();
  EXPECT_EQ(s.count(), static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 6.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
}

// TSan-targeted stress: writer threads mutating their per-thread Timing
// shards while another thread repeatedly Welford-merges them via
// Registry::snapshot(). The shard mutex is "only ever contended by a
// concurrent snapshot" (registry.h) — this test manufactures exactly that
// contention, plus concurrent metric registration forcing shard-vector
// growth under shards_mu_. Monotonicity of the observed counts across
// snapshots is the correctness witness; TSan checks the memory ordering.
TEST(Registry, SnapshotRacesShardWriters) {
  Registry reg;
  Timing& t = reg.timing("hot_stage_seconds");
  constexpr int kWriters = 4;
  constexpr int kPerWriter = 4000;
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&t, &reg, w] {
      // Interleave observes with fresh registrations so the snapshot thread
      // also races entries_ growth, not just shard merging.
      Counter& c = reg.counter("writer_total", {{"w", std::to_string(w)}});
      for (int i = 0; i < kPerWriter; ++i) {
        t.observe(static_cast<double>(i % 7));
        c.add(1);
      }
    });
  }
  std::uint64_t last_count = 0;
  std::thread snapshotter([&] {
    while (!stop.load(std::memory_order_acquire)) {
      for (const MetricSample& s : reg.snapshot()) {
        if (s.name == "hot_stage_seconds") {
          EXPECT_GE(s.summary.count(), last_count);  // merged counts only grow
          last_count = s.summary.count();
        }
      }
    }
  });
  for (int w = 0; w < kWriters; ++w) threads[static_cast<std::size_t>(w)].join();
  stop.store(true, std::memory_order_release);
  snapshotter.join();
  EXPECT_EQ(t.summary().count(),
            static_cast<std::uint64_t>(kWriters * kPerWriter));
  EXPECT_EQ(reg.counter_sum("writer_total"),
            static_cast<std::uint64_t>(kWriters * kPerWriter));
}

TEST(Registry, TimingHistogramBuckets) {
  Registry reg;
  Timing& t = reg.timing("lat", {}, {1.0, 10.0, 100.0});
  ASSERT_TRUE(t.has_buckets());
  t.observe(0.5);
  t.observe(5.0);
  t.observe(5000.0);
  const auto hist = t.histogram();
  ASSERT_TRUE(hist.has_value());
  EXPECT_EQ(hist->total(), 3u);
  EXPECT_EQ(hist->bucket_count(0), 1u);
  EXPECT_EQ(hist->bucket_count(1), 1u);
  EXPECT_EQ(hist->bucket_count(3), 1u);  // overflow
}

TEST(Registry, CounterSumRollsUpLabelSets) {
  Registry reg;
  reg.counter("svc.retx_total", {{"tenant", "a"}}).add(2);
  reg.counter("svc.retx_total", {{"tenant", "b"}}).add(5);
  reg.counter("other").add(100);
  EXPECT_EQ(reg.counter_sum("svc.retx_total"), 7u);
  EXPECT_EQ(reg.counter_sum("absent"), 0u);
}

TEST(Registry, SnapshotAndDelta) {
  Registry reg;
  Counter& c = reg.counter("c");
  Gauge& g = reg.gauge("g");
  Timing& t = reg.timing("t");
  c.add(10);
  g.set(1.0);
  t.observe(2.0);
  const auto base = reg.snapshot();
  c.add(5);
  g.set(7.0);
  t.observe(4.0);
  t.observe(6.0);
  const auto now = reg.snapshot();
  const auto d = Registry::delta(base, now);
  ASSERT_EQ(d.size(), 3u);
  EXPECT_DOUBLE_EQ(d[0].value, 5.0);   // counter delta
  EXPECT_DOUBLE_EQ(d[1].value, 7.0);   // gauge passes through
  EXPECT_EQ(d[2].summary.count(), 2u);  // window count
  EXPECT_DOUBLE_EQ(d[2].summary.mean(), 5.0);  // (4+6)/2
}

TEST(Registry, DeltaHandlesMetricsBornAfterBase) {
  Registry reg;
  reg.counter("old").add(1);
  const auto base = reg.snapshot();
  reg.counter("new").add(9);
  const auto d = Registry::delta(base, reg.snapshot());
  ASSERT_EQ(d.size(), 2u);
  EXPECT_DOUBLE_EQ(d[1].value, 9.0);  // deltas against zero
}

TEST(Registry, JsonExportIsWellFormed) {
  Registry reg;
  reg.counter("c", {{"k", "v\"quote"}}).add(1);
  reg.gauge("g").set(2.5);
  reg.timing("t").observe(3.0);
  const std::string json = reg.to_json();
  // Structural sanity: balanced braces/brackets outside strings and the
  // escaped label survived.
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char ch = json[i];
    if (in_string) {
      if (ch == '\\') ++i;
      else if (ch == '"') in_string = false;
      continue;
    }
    if (ch == '"') in_string = true;
    else if (ch == '{' || ch == '[') ++depth;
    else if (ch == '}' || ch == ']') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
  EXPECT_NE(json.find("\\\"quote"), std::string::npos);
  EXPECT_NE(json.find("\"c\""), std::string::npos);
}

TEST(Registry, TableExportListsEveryMetric) {
  Registry reg;
  reg.counter("alpha").add(1);
  reg.timing("beta", {{"stage", "h2d"}}).observe(0.5);
  const std::string table = reg.to_table();
  EXPECT_NE(table.find("alpha"), std::string::npos);
  EXPECT_NE(table.find("beta"), std::string::npos);
  EXPECT_NE(table.find("h2d"), std::string::npos);
}

TEST(MetricKey, CanonicalRendering) {
  EXPECT_EQ(metric_key("m", {}), "m");
  EXPECT_EQ(metric_key("m", {{"a", "1"}, {"b", "2"}}), "m{a=1,b=2}");
}

TEST(Tracer, TrackBusySumsSpans) {
  Tracer tr;
  tr.span("engine/h2d", "a", 0.0, 1.5);
  tr.span("engine/h2d", "b", 2.0, 2.25);
  tr.span("engine/compute", "c", 0.0, 10.0);
  EXPECT_DOUBLE_EQ(tr.track_busy("engine/h2d"), 1.75);
  EXPECT_DOUBLE_EQ(tr.track_busy("engine/compute"), 10.0);
  EXPECT_DOUBLE_EQ(tr.track_busy("absent"), 0.0);
}

TEST(Tracer, NegativeDurationClampsToZero) {
  Tracer tr;
  tr.span("t", "backwards", 5.0, 3.0);
  EXPECT_DOUBLE_EQ(tr.track_busy("t"), 0.0);
  EXPECT_EQ(tr.event_count(), 1u);
}

TEST(Tracer, DisabledRecordsNothing) {
  Tracer tr;
  tr.set_enabled(false);
  tr.span("t", "a", 0.0, 1.0);
  tr.instant("t", "b", 0.5);
  tr.counter("t", "c", 0.5, 1.0);
  EXPECT_EQ(tr.event_count(), 0u);
}

TEST(Tracer, JsonHasMetadataAndSortedEvents) {
  Tracer tr;
  tr.span("tenant/alpha", "late", 2.0, 3.0, {{"seq", "1"}});
  tr.span("engine/h2d", "early", 0.0, 1.0);
  tr.instant("tenant/alpha", "eos", 4.0);
  tr.counter("sched/alpha", "credit", 1.0, 0.5);
  const std::string json = tr.to_json();
  EXPECT_EQ(json.rfind("{\"displayTimeUnit\"", 0), 0u);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  // One thread_name metadata row per track.
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("tenant/alpha"), std::string::npos);
  EXPECT_NE(json.find("engine/h2d"), std::string::npos);
  EXPECT_NE(json.find("sched/alpha"), std::string::npos);
  // Events sorted by timestamp: "early" (ts 0) precedes "late" (ts 2e6 us).
  EXPECT_LT(json.find("\"early\""), json.find("\"late\""));
  // Event phases present: complete span, instant, counter.
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  // Span args survive.
  EXPECT_NE(json.find("\"seq\":\"1\""), std::string::npos);
}

TEST(Tracer, WriteJsonRoundTrips) {
  Tracer tr;
  tr.span("t", "a", 0.0, 1.0);
  const std::string path = ::testing::TempDir() + "obs_trace_test.json";
  tr.write_json(path);
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string contents;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) contents.append(buf, n);
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_EQ(contents, tr.to_json());
  EXPECT_THROW(tr.write_json("/nonexistent-dir/x/y.json"),
               std::runtime_error);
}

TEST(Tracer, ConcurrentRecordingKeepsEveryEvent) {
  Tracer tr;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  for (int w = 0; w < kThreads; ++w) {
    threads.emplace_back([&tr, w] {
      const std::string track = "track/" + std::to_string(w % 3);
      for (int i = 0; i < kPerThread; ++i) {
        tr.span(track, "op", i, i + 0.5);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(tr.event_count(),
            static_cast<std::size_t>(kThreads * kPerThread));
  const double busy = tr.track_busy("track/0") + tr.track_busy("track/1") +
                      tr.track_busy("track/2");
  EXPECT_NEAR(busy, kThreads * kPerThread * 0.5, 1e-6);
}

}  // namespace
}  // namespace shredder::obs
