// Property/differential suite for the fingerprint-index backends
// (docs/dedup_index.md): the ChunkStash-style SparseChunkIndex is held
// bit-identical to a std::unordered_map oracle AND to the paper-baseline
// ChunkIndex across randomized insert/lookup streams, forced 2-byte
// signature aliases, cuckoo kickout chains at high load factor and table
// growth. A two-thread stress test hammers lookup_or_insert on both
// backends and asserts no lost inserts and exact probe counters.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <optional>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "dedup/index.h"
#include "dedup/sparse_index.h"

namespace shredder::dedup {
namespace {

// Deterministic synthetic digest: every byte driven by the seed, so two
// seeds collide with probability ~2^-256 (the test universe is collision
// free unless a test crafts collisions on purpose).
ChunkDigest synth_digest(std::uint64_t seed) {
  ChunkDigest d{};
  SplitMix64 rng(seed ^ 0x5EED5EED5EED5EEDull);
  for (auto& b : d.bytes) b = static_cast<std::uint8_t>(rng.next());
  return d;
}

// Digest with chosen primary-bucket bits and signature: prefix64 is the
// big-endian load of bytes [0,8) (bucket = prefix64 & mask) and the
// signature is bytes [8,10); the tail keeps full digests distinct.
ChunkDigest craft_digest(std::uint64_t bucket_bits, std::uint16_t sig,
                         std::uint64_t tail) {
  ChunkDigest d{};
  for (int i = 0; i < 8; ++i) {
    d.bytes[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(bucket_bits >> (8 * (7 - i)));
  }
  d.bytes[8] = static_cast<std::uint8_t>(sig >> 8);
  d.bytes[9] = static_cast<std::uint8_t>(sig & 0xFF);
  for (int i = 0; i < 8; ++i) {
    d.bytes[static_cast<std::size_t>(10 + i)] =
        static_cast<std::uint8_t>(tail >> (8 * i));
  }
  return d;
}

IndexConfig sparse_config() {
  IndexConfig cfg;
  cfg.kind = IndexKind::kSparse;
  return cfg;
}

struct OracleHash {
  std::size_t operator()(const ChunkDigest& d) const noexcept {
    return static_cast<std::size_t>(d.prefix64());
  }
};
using Oracle = std::unordered_map<ChunkDigest, ChunkLocation, OracleHash>;

// One randomized operation stream replayed against an oracle map; every
// backend must agree with the oracle on every single result.
void run_differential(IndexBackend& index, std::uint64_t seed,
                      std::size_t n_ops, std::uint64_t key_space) {
  Oracle oracle;
  SplitMix64 rng(seed);
  for (std::size_t op = 0; op < n_ops; ++op) {
    const auto key = rng.next_below(key_space);
    const ChunkDigest d = synth_digest(key);
    const std::uint32_t stream = static_cast<std::uint32_t>(rng.next_below(3));
    if (rng.next_below(4) == 0) {
      // Read-only probe.
      const auto got = index.lookup(d, stream);
      const auto it = oracle.find(d);
      ASSERT_EQ(got.has_value(), it != oracle.end()) << "op " << op;
      if (got.has_value()) {
        EXPECT_EQ(got->store_offset, it->second.store_offset);
        EXPECT_EQ(got->size, it->second.size);
      }
    } else {
      const ChunkLocation loc{op, 1 + rng.next_below(65536)};
      const auto got = index.lookup_or_insert(d, loc, stream);
      const auto [it, inserted] = oracle.try_emplace(d, loc);
      ASSERT_EQ(got.has_value(), !inserted) << "op " << op;
      if (got.has_value()) {
        EXPECT_EQ(got->store_offset, it->second.store_offset);
        EXPECT_EQ(got->size, it->second.size);
      }
    }
  }
  EXPECT_EQ(index.size(), oracle.size());
}

TEST(SparseIndex, DifferentialAgainstOracleRandomStreams) {
  for (const std::uint64_t seed : {1ull, 7ull, 42ull}) {
    SparseChunkIndex index(sparse_config());
    run_differential(index, seed, 20000, 4096);
  }
}

TEST(SparseIndex, DifferentialSmallTableManyResizes) {
  IndexConfig cfg = sparse_config();
  cfg.sparse.buckets = 2;  // 8 slots: growth is exercised constantly
  cfg.sparse.container_entries = 16;
  SparseChunkIndex index(cfg);
  run_differential(index, 99, 20000, 3000);
  EXPECT_GT(index.stats().resizes, 0u);
  EXPECT_GT(index.bucket_count(), 2u);
}

TEST(BaselineIndex, DifferentialAgainstOracle) {
  ChunkIndex index(0.0);
  run_differential(index, 5, 20000, 4096);
}

TEST(SparseIndex, AgreesWithBaselineOnIdenticalStreams) {
  // Replay one stream through both backends; every lookup_or_insert must
  // return the same answer — the dedup-decision bit-identity the backup
  // server relies on when the knob flips.
  SparseChunkIndex sparse(sparse_config());
  ChunkIndex baseline(0.0);
  SplitMix64 rng(123);
  for (std::size_t op = 0; op < 30000; ++op) {
    const ChunkDigest d = synth_digest(rng.next_below(2048));
    const ChunkLocation loc{op, 4096};
    const auto a = sparse.lookup_or_insert(d, loc);
    const auto b = baseline.lookup_or_insert(d, loc);
    ASSERT_EQ(a.has_value(), b.has_value()) << "op " << op;
    if (a.has_value()) {
      EXPECT_EQ(a->store_offset, b->store_offset);
      EXPECT_EQ(a->size, b->size);
    }
  }
  EXPECT_EQ(sparse.size(), baseline.size());
  EXPECT_EQ(sparse.probes(), baseline.probes());
}

TEST(SparseIndex, SignatureAliasesNeverChangeResults) {
  // Digests sharing bucket bits AND the 2-byte signature are
  // indistinguishable in RAM; only the full-entry confirmation separates
  // them. Insert a pile of aliases and check exact behavior.
  SparseChunkIndex index(sparse_config());
  constexpr std::uint64_t kBucket = 17;
  constexpr std::uint16_t kSig = 0xBEEF;
  std::vector<ChunkDigest> aliases;
  for (std::uint64_t t = 0; t < 32; ++t) {
    aliases.push_back(craft_digest(kBucket, kSig, t));
    ASSERT_EQ(SparseChunkIndex::signature(aliases.back()), kSig);
  }
  for (std::uint64_t t = 0; t < aliases.size(); ++t) {
    EXPECT_FALSE(
        index.lookup_or_insert(aliases[t], {t, 100 + t}).has_value());
  }
  for (std::uint64_t t = 0; t < aliases.size(); ++t) {
    const auto got = index.lookup(aliases[t]);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->store_offset, t);
    EXPECT_EQ(got->size, 100 + t);
  }
  // A same-signature digest never inserted must miss despite RAM matches.
  EXPECT_FALSE(index.lookup(craft_digest(kBucket, kSig, 10'000)).has_value());
  const auto stats = index.stats();
  EXPECT_GT(stats.false_signature_hits, 0u);
  EXPECT_EQ(stats.inserts, aliases.size());
}

TEST(SparseIndex, KickoutChainsAtHighLoadKeepEveryEntry) {
  IndexConfig cfg = sparse_config();
  cfg.sparse.buckets = 64;
  cfg.sparse.max_load = 1.0;  // no early growth: force kickout pressure
  SparseChunkIndex index(cfg);
  const std::size_t n = 64 * SparseChunkIndex::kSlotsPerBucket - 8;
  for (std::uint64_t i = 0; i < n; ++i) {
    ASSERT_FALSE(
        index.lookup_or_insert(synth_digest(i), {i, 1}).has_value());
  }
  for (std::uint64_t i = 0; i < n; ++i) {
    const auto got = index.lookup(synth_digest(i));
    ASSERT_TRUE(got.has_value()) << "entry " << i << " lost";
    EXPECT_EQ(got->store_offset, i);
  }
  EXPECT_GT(index.stats().kickouts, 0u);
}

TEST(SparseIndex, FullTableGrowsAndRetainsAll) {
  IndexConfig cfg = sparse_config();
  cfg.sparse.buckets = 2;
  cfg.sparse.max_load = 1.0;  // growth only when placement actually fails
  SparseChunkIndex index(cfg);
  for (std::uint64_t i = 0; i < 4096; ++i) {
    ASSERT_FALSE(
        index.lookup_or_insert(synth_digest(i), {i, 1}).has_value());
  }
  EXPECT_EQ(index.size(), 4096u);
  EXPECT_GT(index.stats().resizes, 0u);
  for (std::uint64_t i = 0; i < 4096; ++i) {
    ASSERT_TRUE(index.lookup(synth_digest(i)).has_value());
  }
}

TEST(SparseIndex, LocalityRunsCostOneContainerFetch) {
  // Insert a backup-ordered stream, then re-probe it in the same order from
  // a fresh stream: every container should be fetched once and the
  // remaining probes served from the prefetch cache.
  IndexConfig cfg = sparse_config();
  cfg.sparse.container_entries = 64;
  SparseChunkIndex index(cfg);
  const std::uint64_t n = 1024;
  for (std::uint64_t i = 0; i < n; ++i) {
    index.lookup_or_insert(synth_digest(i), {i, 1}, /*stream=*/1);
  }
  const auto before = index.stats();
  for (std::uint64_t i = 0; i < n; ++i) {
    ASSERT_TRUE(index.lookup(synth_digest(i), /*stream=*/2).has_value());
  }
  const auto after = index.stats();
  const auto flash = after.flash_reads - before.flash_reads;
  // n/container_entries sealed containers, one fetch each (aliases may add
  // a handful); the rest confirm from cache.
  EXPECT_GE(flash, n / cfg.sparse.container_entries - 1);
  EXPECT_LE(flash, n / cfg.sparse.container_entries + 4);
  EXPECT_GE(after.cache_hits - before.cache_hits,
            n - flash - cfg.sparse.container_entries);
}

TEST(SparseIndex, MissProbesStayInRam) {
  SparseChunkIndex index(sparse_config());
  for (std::uint64_t i = 0; i < 512; ++i) {
    index.lookup_or_insert(synth_digest(i), {i, 1});
  }
  const auto before = index.stats();
  for (std::uint64_t i = 0; i < 512; ++i) {
    EXPECT_FALSE(index.lookup(synth_digest(1'000'000 + i)).has_value());
  }
  const auto after = index.stats();
  // A miss costs one RAM probe; only a rare signature alias may touch the
  // log region.
  const double per_miss =
      (after.virtual_seconds - before.virtual_seconds) / 512.0;
  EXPECT_LT(per_miss, 2 * IndexCostModel{}.ram_probe_s +
                          0.1 * IndexCostModel{}.flash_read_s);
}

TEST(SparseIndex, StreamCacheMapStaysBounded) {
  // Streams are minted per snapshot/tenant for the index's whole lifetime;
  // the prefetch-cache map must retire old streams instead of growing.
  IndexConfig cfg = sparse_config();
  cfg.sparse.container_entries = 16;
  cfg.sparse.max_stream_caches = 4;
  SparseChunkIndex index(cfg);
  const std::uint64_t n = 256;
  for (std::uint64_t i = 0; i < n; ++i) {
    index.lookup_or_insert(synth_digest(i), {i, 1}, /*stream=*/0);
  }
  // 100 distinct one-shot streams each probing sealed containers.
  for (std::uint32_t s = 1; s <= 100; ++s) {
    for (std::uint64_t i = 0; i < 32; ++i) {
      ASSERT_TRUE(index.lookup(synth_digest(i), s).has_value());
    }
  }
  EXPECT_LE(index.stream_cache_count(), 4u);
}

TEST(SparseIndex, Validation) {
  IndexConfig cfg = sparse_config();
  cfg.sparse.buckets = 3;  // not a power of two
  EXPECT_THROW(SparseChunkIndex{cfg}, std::invalid_argument);
  cfg = sparse_config();
  cfg.sparse.container_entries = 0;
  EXPECT_THROW(SparseChunkIndex{cfg}, std::invalid_argument);
  cfg = sparse_config();
  cfg.sparse.max_load = 0.0;
  EXPECT_THROW(SparseChunkIndex{cfg}, std::invalid_argument);
  cfg = sparse_config();
  cfg.sparse.max_kick_nodes = 1;
  EXPECT_THROW(SparseChunkIndex{cfg}, std::invalid_argument);
  cfg = sparse_config();
  cfg.sparse.max_stream_caches = 0;
  EXPECT_THROW(SparseChunkIndex{cfg}, std::invalid_argument);
  cfg = sparse_config();
  cfg.costs.flash_read_s = -1.0;
  EXPECT_THROW(SparseChunkIndex{cfg}, std::invalid_argument);
}

TEST(IndexFactory, MakesTheRequestedBackend) {
  IndexConfig cfg;
  cfg.kind = IndexKind::kPaperBaseline;
  EXPECT_EQ(make_index(cfg)->kind(), IndexKind::kPaperBaseline);
  cfg.kind = IndexKind::kSparse;
  EXPECT_EQ(make_index(cfg)->kind(), IndexKind::kSparse);
}

TEST(BaselineIndex, InsertSecondsAccounted) {
  ChunkIndex index(1e-6, 5e-6);
  const auto d1 = synth_digest(1);
  index.lookup_or_insert(d1, {0, 1});           // probe + insert
  index.lookup_or_insert(d1, {0, 1});           // probe only
  index.lookup(d1);                             // probe only
  EXPECT_NEAR(index.virtual_seconds(), 3e-6 + 5e-6, 1e-12);
  EXPECT_EQ(index.stats().inserts, 1u);
}

// --- Concurrency stress: lookup thread + store thread ---

void run_stress(IndexBackend& index) {
  // The store thread inserts a keyspace in order while the lookup thread
  // probes the same keyspace (mixed hits and not-yet-inserted misses).
  // Afterwards: exactly one entry per key (no lost or duplicated inserts)
  // and the probe counter equals the exact number of calls issued.
  constexpr std::uint64_t kKeys = 8000;
  constexpr std::uint64_t kLookups = 16000;
  std::atomic<std::uint64_t> wins{0};
  std::thread store([&] {
    for (std::uint64_t i = 0; i < kKeys; ++i) {
      if (!index.lookup_or_insert(synth_digest(i), {i, 1}, /*stream=*/1)
               .has_value()) {
        wins.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  std::thread lookup([&] {
    SplitMix64 rng(777);
    for (std::uint64_t i = 0; i < kLookups; ++i) {
      const auto key = rng.next_below(kKeys);
      const auto got = index.lookup(synth_digest(key), /*stream=*/2);
      if (got.has_value()) {
        // A hit must carry the store thread's value for that key.
        EXPECT_EQ(got->store_offset, key);
        EXPECT_EQ(got->size, 1u);
      }
    }
  });
  store.join();
  lookup.join();
  EXPECT_EQ(wins.load(), kKeys);        // no lost inserts
  EXPECT_EQ(index.size(), kKeys);
  EXPECT_EQ(index.probes(), kKeys + kLookups);  // exact probe accounting
  for (std::uint64_t i = 0; i < kKeys; ++i) {
    ASSERT_TRUE(index.lookup(synth_digest(i)).has_value()) << "key " << i;
  }
}

TEST(IndexStress, SparseLookupAndStoreThreads) {
  SparseChunkIndex index(sparse_config());
  run_stress(index);
}

TEST(IndexStress, BaselineLookupAndStoreThreads) {
  ChunkIndex index(0.0);
  run_stress(index);
}

// --- Recovery: rebuild the RAM cuckoo from the entry region ----------------

TEST(SparseIndexRecovery, CrashRestartDifferential) {
  // The entry region is the persistent state; a crash loses the RAM cuckoo,
  // spill bin and prefetch caches. A restarted index rebuilt from the log
  // must answer every probe exactly like the index that never crashed —
  // hits, misses, locations and subsequent inserts alike.
  constexpr std::uint64_t kKeys = 3000;
  SparseChunkIndex survivor(sparse_config());
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    survivor.lookup_or_insert(synth_digest(k), {k, 1});
  }

  SparseChunkIndex restarted(sparse_config());
  restarted.rebuild_from_log(survivor.log_records());
  EXPECT_EQ(restarted.size(), survivor.size());
  EXPECT_EQ(restarted.stats().recoveries, 1u);
  // The recovery scan pays one modelled flash read per container.
  const auto containers =
      (kKeys + sparse_config().sparse.container_entries - 1) /
      sparse_config().sparse.container_entries;
  EXPECT_GE(restarted.stats().flash_reads, containers);
  // The table was sized for the recovered population, not grown one entry
  // at a time.
  EXPECT_EQ(restarted.bucket_count(), survivor.bucket_count());

  // Differential probe pass: every known key hits with the same location,
  // unknown keys miss, on both indexes.
  SplitMix64 rng(123);
  for (int op = 0; op < 4000; ++op) {
    const ChunkDigest d = synth_digest(rng.next_below(2 * kKeys));
    const auto a = survivor.lookup(d);
    const auto b = restarted.lookup(d);
    ASSERT_EQ(a.has_value(), b.has_value()) << "op " << op;
    if (a.has_value()) {
      EXPECT_EQ(a->store_offset, b->store_offset);
      EXPECT_EQ(a->size, b->size);
    }
  }
  // Continued operation: inserts after recovery stay in lockstep.
  for (std::uint64_t k = kKeys; k < kKeys + 500; ++k) {
    const ChunkDigest d = synth_digest(k);
    EXPECT_EQ(survivor.lookup_or_insert(d, {k, 1}).has_value(),
              restarted.lookup_or_insert(d, {k, 1}).has_value());
  }
  EXPECT_EQ(restarted.size(), survivor.size());
}

TEST(SparseIndexRecovery, InPlaceRebuildPreservesAnswers) {
  // rebuild_from_log() on a live index simulates a restart that kept the
  // object: RAM structures are wiped and rebuilt from the index's own log.
  SparseChunkIndex index(sparse_config());
  constexpr std::uint64_t kKeys = 1500;
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    index.lookup_or_insert(synth_digest(k), {k, 1});
  }
  const auto before = index.stats();
  index.rebuild_from_log();
  EXPECT_EQ(index.stats().recoveries, before.recoveries + 1);
  EXPECT_EQ(index.size(), kKeys);
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    const auto got = index.lookup(synth_digest(k));
    ASSERT_TRUE(got.has_value()) << "key " << k;
    EXPECT_EQ(got->store_offset, k);
  }
  EXPECT_FALSE(index.lookup(synth_digest(kKeys + 7)).has_value());
}

TEST(SparseIndexRecovery, AdversarialAliasesSurviveRecovery) {
  // Bucket+signature aliases that live in the spill bin must still be found
  // after a rebuild (the spill bin is RAM state and is reconstructed too).
  IndexConfig cfg = sparse_config();
  cfg.sparse.buckets = 4;
  cfg.sparse.max_kick_nodes = 4;
  SparseChunkIndex index(cfg);
  // More same-bucket same-signature keys than two buckets can hold.
  constexpr std::uint64_t kAliases = 12;
  for (std::uint64_t t = 0; t < kAliases; ++t) {
    index.lookup_or_insert(craft_digest(0, 0x7777, t), {t, 1});
  }
  SparseChunkIndex restarted(cfg);
  restarted.rebuild_from_log(index.log_records());
  for (std::uint64_t t = 0; t < kAliases; ++t) {
    const auto got = restarted.lookup(craft_digest(0, 0x7777, t));
    ASSERT_TRUE(got.has_value()) << "alias " << t;
    EXPECT_EQ(got->store_offset, t);
  }
}

}  // namespace
}  // namespace shredder::dedup
