#include "core/shredder.h"

#include <algorithm>
#include <stdexcept>
#include <thread>

#include "chunking/minmax.h"
#include "chunking/parallel.h"
#include "common/check.h"
#include "common/timer.h"
#include "core/pipeline.h"
#include "gpusim/dma.h"
#include "gpusim/timeline.h"

namespace shredder::core {

void ShredderConfig::validate() const {
  chunker.validate();
  if (buffer_bytes < chunker.window * 2) {
    throw std::invalid_argument("ShredderConfig: buffer_bytes too small");
  }
  if (ring_slots == 0) {
    throw std::invalid_argument("ShredderConfig: ring_slots must be >= 1");
  }
  if (kernel.blocks <= 0 || kernel.threads_per_block <= 0) {
    throw std::invalid_argument("ShredderConfig: bad kernel geometry");
  }
}

Shredder::Shredder(ShredderConfig config)
    : config_(std::move(config)),
      tables_(config_.chunker.window) {
  config_.validate();
  device_ = std::make_unique<gpu::Device>(config_.device, config_.sim_threads);
}

ShredderResult Shredder::run_impl(DataSource& source, ChunkSink* sink,
                                  ByteSpan whole) {
  const Stopwatch wall;
  ShredderResult result;
  const std::size_t carry_bytes = config_.chunker.window - 1;
  const bool pipelined = config_.mode != GpuMode::kBasic;
  const bool fingerprint = config_.fingerprint_on_device;
  // Streaming sources only retain payload leases when the sink asks; an
  // in-memory `whole` span provides views for free.
  const bool rolling =
      whole.empty() && sink != nullptr && sink->wants_payload();

  PipelineEngineConfig engine_cfg;
  engine_cfg.mode = config_.mode;
  engine_cfg.slot_bytes = config_.buffer_bytes + carry_bytes;
  engine_cfg.ring_slots = config_.ring_slots;
  engine_cfg.kernel = config_.kernel;
  engine_cfg.fingerprint = fingerprint;
  engine_cfg.registry = config_.registry;
  PipelineEngine engine(engine_cfg, *device_, tables_, config_.chunker);
  result.init_seconds = engine.init_seconds();
  obs::Timing* m_store_s =
      config_.registry != nullptr
          ? &config_.registry->timing("core.store_seconds")
          : nullptr;

  // Store-side state: min/max filter resolving final chunks. In fingerprint
  // mode the chunk ends arrive already resolved (the engine runs the min/max
  // cut on the device side), paired with their digests.
  std::uint64_t last_end = 0;
  std::vector<chunking::Chunk> chunks;
  std::vector<dedup::ChunkDigest> digests;
  // Only the non-fingerprint path resolves chunks host-side; in fingerprint
  // mode the engine is the sole chunk-emission mechanism, so don't even
  // construct the filter.
  std::optional<chunking::MinMaxFilter> filter;
  if (!fingerprint) {
    filter.emplace(config_.chunker.min_size, config_.chunker.max_size,
                   [&](std::uint64_t end) {
                     chunks.push_back({last_end, end - last_end});
                     last_end = end;
                   });
  }

  // Batch delivery to the sink: one ChunkBatchView per buffer that finalized
  // chunks (spans over the tails of `chunks`/`digests`), plus one eos batch.
  PayloadTail tail;             // rolling lease window (streaming sinks)
  // Single consumer draining the engine directly: park up to the
  // recommended number of slots in the tail for zero-copy views while
  // always leaving the pipeline a slot to circulate.
  tail.set_slot_cap(PayloadTail::recommended_slot_cap(config_.ring_slots));
  std::uint64_t batch_seq = 0;
  const auto deliver = [&](std::size_t first, bool eos) {
    if (sink == nullptr) return;
    if (!eos && chunks.size() == first) return;
    ChunkBatchView view;
    view.stream_id = 0;
    view.stream_seq = batch_seq++;
    view.eos = eos;
    view.chunks = std::span<const chunking::Chunk>(chunks).subspan(first);
    if (fingerprint) {
      view.digests =
          std::span<const dedup::ChunkDigest>(digests).subspan(first);
    }
    if (!whole.empty()) {
      view.payload = whole;
      view.payload_base = 0;
    } else if (rolling) {
      view.payload = tail.window();
      view.payload_base = tail.window_base();
      view.tail = &tail;
    }
    sink->on_batch(view);
  };

  // --- The pipeline ---
  // Reader runs inside AsyncReader's thread; a feeder thread stages its
  // buffers into the engine (transfer + kernel threads live inside it);
  // the Store stage runs on this thread, matching Figure 8's four stages.
  std::vector<StageSeconds> stage_log;
  std::uint64_t total_bytes = 0;
  std::uint64_t n_buffers = 0;

  std::exception_ptr feed_error;
  std::thread feeder([&] {
    try {
      AsyncReader reader(source, config_.buffer_bytes, carry_bytes,
                         /*queue_depth=*/pipelined ? config_.ring_slots : 1);
      std::uint64_t submitted_end = 0;
      std::uint64_t next_seq = 0;
      while (auto buf = reader.next()) {
        StreamBuffer sb;
        sb.stream_id = 0;
        sb.seq = buf->index;
        sb.carry = buf->carry;
        sb.base_offset = buf->stream_offset - buf->carry;
        sb.reader_seconds = buf->read_seconds;
        sb.data = std::move(buf->data);
        submitted_end = sb.base_offset + sb.data.size();
        next_seq = sb.seq + 1;
        if (!engine.submit(std::move(sb))) return;
      }
      if (fingerprint) {
        // The trailing chunk only closes at end of stream; tell the engine.
        StreamBuffer eos;
        eos.stream_id = 0;
        eos.seq = next_seq;
        eos.eos = true;
        eos.base_offset = submitted_end;
        if (!engine.submit(std::move(eos))) return;
      }
      engine.close();
    } catch (...) {
      feed_error = std::current_exception();
      engine.close();
    }
  });

  // Store stage runs on this thread. A pipeline-stage failure surfaces as a
  // rethrow from next_batch(); capture it so the feeder thread can be
  // unblocked and joined before the exception propagates.
  std::exception_ptr store_error;
  // Emits the batch's finalized chunks with their device digests.
  const auto emit_fingerprinted = [&](const BoundaryBatch& batch) {
    for_each_fingerprinted_chunk(
        batch, last_end, [&](const chunking::Chunk& c,
                             const dedup::ChunkDigest& d) {
          chunks.push_back(c);
          digests.push_back(d);
        });
  };
  try {
  while (auto batch = engine.next_batch()) {
    total_bytes = batch->payload_end;
    const std::size_t batch_first = chunks.size();
    if (batch->eos) {
      // Fingerprint mode: the stream's trailing chunk closes here. Its
      // digest still crosses the bus, so account the D2H even though the
      // eos batch carries no boundaries.
      if (!batch->digests.empty()) {
        batch->stages.store = store_stage_seconds(
            config_.device, 0, pipelined,
            batch->digests.size() * sizeof(dedup::ChunkDigest));
        stage_log.push_back(batch->stages);
      }
      emit_fingerprinted(*batch);
      deliver(batch_first, /*eos=*/true);
      continue;
    }
    if (rolling && !batch->payload.empty()) {
      // Zero-copy retention: the batch's lease moves into the tail, keeping
      // the pinned slot (or basic-mode vector) alive for payload views.
      tail.append(std::move(batch->payload), batch->payload_carry);
    }
    // Copy boundaries (and digests) back device -> host, then resolve
    // chunks: min/max filter here, or the engine's pre-cut chunk ends.
    batch->stages.store = store_stage_seconds(
        config_.device, batch->boundaries.size(), pipelined,
        batch->digests.size() * sizeof(dedup::ChunkDigest));
    if (m_store_s != nullptr) m_store_s->observe(batch->stages.store);
    if (fingerprint) {
      emit_fingerprinted(*batch);
    } else {
      for (std::uint64_t b : batch->boundaries) filter->push(b);
    }
    deliver(batch_first, /*eos=*/false);
    if (rolling) tail.trim(last_end);
    result.raw_boundaries += batch->boundaries.size();
    ++n_buffers;
    stage_log.push_back(batch->stages);
    // Aggregate kernel statistics across buffers.
    result.kernel_totals += batch->kernel_stats;
    if (fingerprint) {
      result.fingerprint_totals += batch->fingerprint_stats;
    }
  }
  } catch (...) {
    store_error = std::current_exception();
    engine.stop();  // wakes a feeder blocked on a slot lease
  }
  feeder.join();
  if (store_error) std::rethrow_exception(store_error);
  if (feed_error) std::rethrow_exception(feed_error);

  if (!fingerprint) {
    const std::size_t batch_first = chunks.size();
    filter->finish(total_bytes);
    deliver(batch_first, /*eos=*/true);
  }

  // --- Reporting ---
  result.chunks = std::move(chunks);
  result.digests = std::move(digests);
  result.total_bytes = total_bytes;
  result.n_buffers = n_buffers;
  StageSeconds mean;
  for (const auto& s : stage_log) {
    mean.reader += s.reader;
    mean.transfer += s.transfer;
    mean.kernel += s.kernel;
    mean.fingerprint += s.fingerprint;
    mean.store += s.store;
    result.serialized_seconds += s.sum();
  }
  if (n_buffers > 0) {
    const auto n = static_cast<double>(n_buffers);
    mean.reader /= n;
    mean.transfer /= n;
    mean.kernel /= n;
    mean.fingerprint /= n;
    mean.store /= n;
  }
  result.mean_stage_seconds = mean;
  if (pipelined) {
    // Chunk and hash kernels share the one compute engine, so they form a
    // single pipeline stage: buffer i+1's chunk kernel cannot start while
    // buffer i's hash kernel holds the engine.
    result.virtual_seconds = gpu::pipeline_makespan(
        {mean.reader, mean.transfer, mean.kernel + mean.fingerprint,
         mean.store},
        n_buffers, config_.ring_slots);
  } else {
    result.virtual_seconds = result.serialized_seconds;
  }
  result.virtual_throughput_bps =
      result.virtual_seconds > 0
          ? static_cast<double>(total_bytes) / result.virtual_seconds
          : 0.0;
  result.wall_seconds = wall.elapsed_seconds();
  return result;
}

ShredderResult Shredder::run(DataSource& source, ChunkSink& sink) {
  return run_impl(source, &sink, {});
}

ShredderResult Shredder::run(ByteSpan data, ChunkSink& sink) {
  MemorySource source(data, config_.host.reader_bw);
  return run_impl(source, &sink, data);
}

ShredderResult Shredder::run(DataSource& source, const ChunkCallback& on_chunk,
                             const DigestCallback& on_digest) {
  PerChunkAdapter adapter(on_chunk, on_digest);
  return run_impl(source, adapter.empty() ? nullptr : &adapter, {});
}

ShredderResult Shredder::run(ByteSpan data, const ChunkCallback& on_chunk,
                             const DigestCallback& on_digest) {
  MemorySource source(data, config_.host.reader_bw);
  PerChunkAdapter adapter(on_chunk, on_digest);
  return run_impl(source, adapter.empty() ? nullptr : &adapter, data);
}

HostChunkResult chunk_on_host(ByteSpan data,
                              const chunking::ChunkerConfig& chunker,
                              const gpu::HostSpec& host, bool use_arena,
                              std::size_t threads) {
  HostChunkResult result;
  const Stopwatch wall;
  rabin::RabinTables tables(chunker.window);
  chunking::ParallelChunker parallel(
      tables, chunker, threads == 0 ? static_cast<std::size_t>(host.cores) : threads,
      use_arena ? chunking::AllocMode::kThreadArena
                : chunking::AllocMode::kSharedLockedHeap);
  result.chunks = parallel.chunk(data);
  result.total_bytes = data.size();
  result.wall_seconds = wall.elapsed_seconds();
  result.wall_throughput_bps =
      result.wall_seconds > 0
          ? static_cast<double>(data.size()) / result.wall_seconds
          : 0.0;
  const double chunk_bw = use_arena ? host.pthreads_chunking_bw_hoard
                                    : host.pthreads_chunking_bw_malloc;
  // Reader and chunking overlap (both are pipelined on the host); the
  // calibrated X5650 is chunking-bound either way.
  const double reader_s = static_cast<double>(data.size()) / host.reader_bw;
  const double chunk_s = static_cast<double>(data.size()) / chunk_bw;
  result.virtual_seconds = std::max(reader_s, chunk_s);
  result.virtual_throughput_bps =
      result.virtual_seconds > 0
          ? static_cast<double>(data.size()) / result.virtual_seconds
          : 0.0;
  return result;
}

}  // namespace shredder::core
