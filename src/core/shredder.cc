#include "core/shredder.h"

#include <algorithm>
#include <cstring>
#include <semaphore>
#include <stdexcept>
#include <thread>

#include "chunking/minmax.h"
#include "chunking/parallel.h"
#include "common/check.h"
#include "common/queue.h"
#include "common/timer.h"
#include "gpusim/dma.h"
#include "gpusim/timeline.h"

namespace shredder::core {

void ShredderConfig::validate() const {
  chunker.validate();
  if (buffer_bytes < chunker.window * 2) {
    throw std::invalid_argument("ShredderConfig: buffer_bytes too small");
  }
  if (ring_slots == 0) {
    throw std::invalid_argument("ShredderConfig: ring_slots must be >= 1");
  }
  if (kernel.blocks <= 0 || kernel.threads_per_block <= 0) {
    throw std::invalid_argument("ShredderConfig: bad kernel geometry");
  }
}

Shredder::Shredder(ShredderConfig config)
    : config_(std::move(config)),
      tables_(config_.chunker.window) {
  config_.validate();
  device_ = std::make_unique<gpu::Device>(config_.device, config_.sim_threads);
}

namespace {

// Work item flowing between pipeline stages.
struct PipelineItem {
  ReadBuffer buf;
  std::size_t dev_slot = 0;  // which device twin holds the payload
  StageSeconds stages;
};

struct BoundaryBatch {
  std::vector<std::uint64_t> boundaries;
  StageSeconds stages;
  gpu::KernelRunStats kernel_stats;
  std::uint64_t payload_end = 0;  // absolute end offset covered so far
};

}  // namespace

ShredderResult Shredder::run(DataSource& source,
                             const ChunkCallback& on_chunk) {
  const Stopwatch wall;
  ShredderResult result;
  const std::size_t w = config_.chunker.window;
  const std::size_t carry_bytes = w - 1;
  const std::size_t slot_bytes = config_.buffer_bytes + carry_bytes;
  const bool pipelined = config_.mode != GpuMode::kBasic;
  const gpu::HostMemKind host_kind = pipelined ? gpu::HostMemKind::kPinned
                                               : gpu::HostMemKind::kPageable;

  KernelParams kparams = config_.kernel;
  kparams.coalesced = config_.mode == GpuMode::kStreamsCoalesced;

  // Host-side staging: a ring of pinned buffers (allocated once, §4.1.2) in
  // the streams modes; a pageable buffer per iteration in basic mode. The
  // reader's output lands here before the DMA.
  std::optional<gpu::PinnedRing> ring;
  if (pipelined) {
    ring.emplace(config_.device, config_.ring_slots, slot_bytes);
    result.init_seconds = ring->construction_cost_seconds();
  }

  // Device twin buffers (double buffering, §4.1.1).
  const std::size_t n_twins = pipelined ? 2 : 1;
  std::vector<gpu::DeviceBuffer> twins;
  for (std::size_t i = 0; i < n_twins; ++i) {
    twins.push_back(device_->alloc(slot_bytes));
  }
  std::counting_semaphore<2> twin_free(static_cast<std::ptrdiff_t>(n_twins));

  // Store-side state: min/max filter upcalling the application.
  std::uint64_t last_end = 0;
  std::vector<chunking::Chunk> chunks;
  chunking::MinMaxFilter filter(
      config_.chunker.min_size, config_.chunker.max_size,
      [&](std::uint64_t end) {
        chunking::Chunk c{last_end, end - last_end};
        last_end = end;
        chunks.push_back(c);
        if (on_chunk) on_chunk(c);
      });

  // --- The pipeline ---
  // Reader runs inside AsyncReader's thread; Transfer and Kernel+Store run
  // on two further threads connected by depth-1 queues, so up to four
  // buffers are in flight, matching the 4-stage pipeline of Figure 8.
  AsyncReader reader(source, config_.buffer_bytes, carry_bytes,
                     /*queue_depth=*/pipelined ? config_.ring_slots : 1);
  BoundedQueue<PipelineItem> to_kernel(pipelined ? 2 : 1);
  BoundedQueue<BoundaryBatch> to_store(pipelined ? 2 : 1);

  std::vector<StageSeconds> stage_log;
  std::uint64_t total_bytes = 0;
  std::uint64_t n_buffers = 0;

  std::exception_ptr transfer_error;
  std::thread transfer_thread([&] {
    try {
      std::size_t next_twin = 0;
      while (auto buf = reader.next()) {
        PipelineItem item;
        item.stages.reader = buf->read_seconds;
        ByteSpan dma_src{buf->data.data(), buf->data.size()};
        if (pipelined) {
          // Reader output -> pinned ring slot; the DMA then reads from the
          // pinned slot. No extra virtual cost: the paper's asynchronous I/O
          // lands SAN reads directly in the pinned ring (§5.2.1), so this
          // in-process hop is plumbing, not a modelled stage.
          auto slot = ring->acquire();
          SHREDDER_CHECK(buf->data.size() <= slot.span.size());
          std::memcpy(slot.span.data(), buf->data.data(), buf->data.size());
          dma_src = ByteSpan{slot.span.data(), buf->data.size()};
        }
        twin_free.acquire();
        item.dev_slot = next_twin;
        next_twin = (next_twin + 1) % n_twins;
        item.stages.transfer =
            device_->memcpy_h2d(twins[item.dev_slot], 0, dma_src, host_kind);
        item.buf = std::move(*buf);
        if (!to_kernel.push(std::move(item))) return;
      }
      to_kernel.close();
    } catch (...) {
      transfer_error = std::current_exception();
      to_kernel.close();
    }
  });

  std::exception_ptr kernel_error;
  std::thread kernel_thread([&] {
    try {
      while (auto item = to_kernel.pop()) {
        const std::size_t data_len = item->buf.data.size();
        const std::uint64_t base =
            item->buf.stream_offset - item->buf.carry;
        GpuChunkResult kr = chunk_on_gpu(
            *device_, twins[item->dev_slot], data_len, item->buf.carry, base,
            tables_, config_.chunker, kparams);
        twin_free.release();
        BoundaryBatch batch;
        batch.stages = item->stages;
        batch.stages.kernel = kr.stats.virtual_seconds;
        batch.kernel_stats = kr.stats;
        batch.boundaries = std::move(kr.boundaries);
        batch.payload_end = base + data_len;
        if (!to_store.push(std::move(batch))) return;
      }
      to_store.close();
    } catch (...) {
      kernel_error = std::current_exception();
      twin_free.release();
      to_store.close();
    }
  });

  // Store stage runs on this thread.
  while (auto batch = to_store.pop()) {
    // Copy boundaries back (device -> host) and run the min/max filter.
    const std::uint64_t boundary_bytes = batch->boundaries.size() * 8;
    batch->stages.store =
        gpu::dma_seconds(config_.device, boundary_bytes,
                         gpu::Direction::kDeviceToHost, host_kind) +
        static_cast<double>(batch->boundaries.size()) * 2e-9;
    for (std::uint64_t b : batch->boundaries) filter.push(b);
    result.raw_boundaries += batch->boundaries.size();
    total_bytes = batch->payload_end;
    ++n_buffers;
    stage_log.push_back(batch->stages);
    // Aggregate kernel statistics across buffers.
    auto& kt = result.kernel_totals;
    const auto& ks = batch->kernel_stats;
    kt.virtual_seconds += ks.virtual_seconds;
    kt.launch_seconds += ks.launch_seconds;
    kt.compute_seconds += ks.compute_seconds;
    kt.memory_seconds += ks.memory_seconds;
    kt.row_switch_fraction = ks.row_switch_fraction;  // constant per config
    kt.transactions += ks.transactions;
    kt.bytes_processed += ks.bytes_processed;
    kt.bytes_fetched += ks.bytes_fetched;
    kt.shared_staged_bytes += ks.shared_staged_bytes;
    kt.wall_seconds += ks.wall_seconds;
  }
  transfer_thread.join();
  kernel_thread.join();
  if (transfer_error) std::rethrow_exception(transfer_error);
  if (kernel_error) std::rethrow_exception(kernel_error);

  filter.finish(total_bytes);

  // --- Reporting ---
  result.chunks = std::move(chunks);
  result.total_bytes = total_bytes;
  result.n_buffers = n_buffers;
  StageSeconds mean;
  for (const auto& s : stage_log) {
    mean.reader += s.reader;
    mean.transfer += s.transfer;
    mean.kernel += s.kernel;
    mean.store += s.store;
    result.serialized_seconds += s.sum();
  }
  if (n_buffers > 0) {
    const auto n = static_cast<double>(n_buffers);
    mean.reader /= n;
    mean.transfer /= n;
    mean.kernel /= n;
    mean.store /= n;
  }
  result.mean_stage_seconds = mean;
  if (pipelined) {
    result.virtual_seconds = gpu::pipeline_makespan(
        {mean.reader, mean.transfer, mean.kernel, mean.store}, n_buffers,
        config_.ring_slots);
  } else {
    result.virtual_seconds = result.serialized_seconds;
  }
  result.virtual_throughput_bps =
      result.virtual_seconds > 0
          ? static_cast<double>(total_bytes) / result.virtual_seconds
          : 0.0;
  result.wall_seconds = wall.elapsed_seconds();
  return result;
}

ShredderResult Shredder::run(ByteSpan data, const ChunkCallback& on_chunk) {
  MemorySource source(data, config_.host.reader_bw);
  return run(source, on_chunk);
}

HostChunkResult chunk_on_host(ByteSpan data,
                              const chunking::ChunkerConfig& chunker,
                              const gpu::HostSpec& host, bool use_arena,
                              std::size_t threads) {
  HostChunkResult result;
  const Stopwatch wall;
  rabin::RabinTables tables(chunker.window);
  chunking::ParallelChunker parallel(
      tables, chunker, threads == 0 ? static_cast<std::size_t>(host.cores) : threads,
      use_arena ? chunking::AllocMode::kThreadArena
                : chunking::AllocMode::kSharedLockedHeap);
  result.chunks = parallel.chunk(data);
  result.total_bytes = data.size();
  result.wall_seconds = wall.elapsed_seconds();
  result.wall_throughput_bps =
      result.wall_seconds > 0
          ? static_cast<double>(data.size()) / result.wall_seconds
          : 0.0;
  const double chunk_bw = use_arena ? host.pthreads_chunking_bw_hoard
                                    : host.pthreads_chunking_bw_malloc;
  // Reader and chunking overlap (both are pipelined on the host); the
  // calibrated X5650 is chunking-bound either way.
  const double reader_s = static_cast<double>(data.size()) / host.reader_bw;
  const double chunk_s = static_cast<double>(data.size()) / chunk_bw;
  result.virtual_seconds = std::max(reader_s, chunk_s);
  result.virtual_throughput_bps =
      result.virtual_seconds > 0
          ? static_cast<double>(data.size()) / result.virtual_seconds
          : 0.0;
  return result;
}

}  // namespace shredder::core
