// Reusable GPU chunking pipeline engine (paper §4.1–4.2, Figure 8).
//
// PipelineEngine is the transfer→kernel core of Shredder's 4-stage pipeline,
// factored out of core::Shredder so that *any* number of producers can share
// one device: every work item is tagged with the client stream that produced
// it, flows through the pinned staging ring, the H2D DMA and the chunking
// kernel in submission order, and comes back out as a BoundaryBatch carrying
// the same tag. Single-stream Shredder::run and the multi-tenant
// service::ChunkingService are both thin shells around this engine.
//
// Stage layout (each arrow is a bounded queue; depth bounds the buffers in
// flight, exactly like Figure 8's ring):
//
//   submit() ──copy into leased pinned slot──► transfer thread
//     (H2D DMA into a free device twin)
//   ──► kernel thread (chunk_on_gpu [+ fingerprint_on_gpu]) ──►
//       next_batch() on the caller (batch carries the slot's SlotLease)
//
// With config.fingerprint set, the kernel thread runs a second device
// kernel per buffer: it resolves the final (min/max-filtered) chunk ends on
// the device side and SHA-256-hashes each chunk over the still-resident
// twin, so batches come back with chunk+digest pairs and the host never
// rehashes. The hash kernel of buffer i overlaps the H2D of buffer i+1 on
// the other twin (docs/fingerprint.md has the timeline).
//
// Pinned-ring slots are *leased*: submit() blocks while every slot is in
// flight, which is the engine-level backpressure the service relies on when
// clients outrun the device. A slot stays leased until the LAST SlotLease
// referencing it drops (core/lease.h) — every BoundaryBatch carries its
// buffer's staged bytes as a refcounted lease, so consumers that retain
// payload windows (rolling PayloadTail, the service's dedup store path)
// alias the pinned slot directly instead of copying, and a consumer that
// holds leases too long simply extends the same backpressure to producers.
// The pipeline.slots_leased gauge tracks the outstanding count.
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <memory>
#include <optional>
#include <thread>
#include <unordered_map>
#include <vector>

#include "chunking/chunk.h"
#include "common/annotations.h"
#include "common/bytes.h"
#include "common/mutex.h"
#include "common/queue.h"
#include "core/kernels.h"
#include "core/lease.h"
#include "dedup/digest.h"
#include "gpusim/device.h"
#include "gpusim/pinned.h"
#include "obs/registry.h"
#include "rabin/rabin.h"

namespace shredder::core {

// Operating modes exposing the paper's optimization ladder (Fig 12).
enum class GpuMode { kBasic, kStreams, kStreamsCoalesced };

// Per-buffer virtual durations of the pipeline stages. `fingerprint` is the
// on-device hash kernel (zero unless the engine fingerprints); it runs on
// the compute engine right after the chunking kernel, overlapping the next
// buffer's H2D exactly like the chunking kernel does.
struct StageSeconds {
  double reader = 0;
  double transfer = 0;
  double kernel = 0;
  double fingerprint = 0;
  double store = 0;

  double sum() const noexcept {
    return reader + transfer + kernel + fingerprint + store;
  }
};

// A unit of pipeline work tagged with the client stream that produced it.
// The staged bytes are carry_prefix ++ data: producers that already hold
// carry and payload contiguously (AsyncReader) put everything in `data` and
// set `carry`; producers with a separate window-context tail (the service
// scheduler) pass it via `carry_prefix` and the engine splices the two
// directly into the pinned slot — no concatenation copy on the hot path.
struct StreamBuffer {
  std::uint32_t stream_id = 0;
  std::uint64_t seq = 0;          // per-stream buffer sequence number
  std::size_t carry = 0;          // leading window-context bytes in `data`
  ByteVec carry_prefix;           // window-context bytes staged before `data`
  std::uint64_t base_offset = 0;  // absolute offset of the first staged byte
  ByteVec data;                   // (carry +) payload
  double reader_seconds = 0;      // modelled producer time for the payload
  bool eos = false;               // end-of-stream marker; data must be empty
  // Scheduler context stamped by the producer (the service's dispatch path)
  // and echoed back on the BoundaryBatch, so the store thread can emit
  // credit/queue-depth trace points at the batch's virtual completion time.
  double sched_credit = 0;
  std::uint32_t queue_depth = 0;
};

// Raw content boundaries of one buffer, tagged like the StreamBuffer that
// produced them. eos batches carry no boundaries and mark that every
// preceding buffer of that stream has been delivered.
//
// When the engine fingerprints, chunk_ends/digests carry the stream's
// *final* chunking (min/max applied on the device side) resolved as far as
// this buffer allows, with one device-computed SHA-256 per chunk; the eos
// batch then carries the stream's trailing chunk. Consumers use them
// directly instead of running their own min/max filter.
struct BoundaryBatch {
  std::uint32_t stream_id = 0;
  std::uint64_t seq = 0;
  bool eos = false;
  std::vector<std::uint64_t> boundaries;
  std::vector<std::uint64_t> chunk_ends;      // fingerprint mode only
  std::vector<dedup::ChunkDigest> digests;    // 1:1 with chunk_ends
  StageSeconds stages;
  gpu::KernelRunStats kernel_stats;
  gpu::KernelRunStats fingerprint_stats;
  std::uint64_t payload_end = 0;  // absolute end offset covered so far
  // The buffer's staged bytes, riding back with the batch as a refcounted
  // lease: payload covers [payload_end - payload.size(), payload_end), and
  // its first payload_carry bytes are window context repeated from the
  // previous buffer. Slot-backed in streams modes (zero-copy view of the
  // pinned slot; the slot recycles when the last lease drops), an owned
  // vector in basic mode. Consumers that don't retain payloads just drop
  // the batch and the storage frees itself. Empty on eos batches.
  SlotLease payload;
  std::size_t payload_carry = 0;
  // Scheduler context echoed from the StreamBuffer (see StreamBuffer).
  double sched_credit = 0;
  std::uint32_t queue_depth = 0;
};

// Modelled Store-stage seconds for one batch: one D2H DMA descriptor
// carrying the boundary array AND the digest array when the fingerprint
// stage ran (digest_bytes = sizeof(ChunkDigest) * n_digests; the two arrays
// are contiguous in the device result region, so a single transfer per
// buffer brings both back), plus per-boundary filter handling.
double store_stage_seconds(const gpu::DeviceSpec& spec,
                           std::size_t n_boundaries, bool pinned,
                           std::size_t digest_bytes = 0) noexcept;

// Walks a fingerprint-mode batch's (chunk_ends, digests) pairs: rebuilds
// each chunk from the stream's previous end offset, advances it, and hands
// (chunk, digest) to `fn` — the one place the pairing/reassembly rule
// lives, shared by every consumer (Shredder's store loop, the service's
// per-tenant store path).
template <typename Fn>
void for_each_fingerprinted_chunk(const BoundaryBatch& batch,
                                  std::uint64_t& last_end, Fn&& fn) {
  for (std::size_t i = 0; i < batch.chunk_ends.size(); ++i) {
    const chunking::Chunk c{last_end, batch.chunk_ends[i] - last_end};
    last_end = batch.chunk_ends[i];
    fn(c, batch.digests[i]);
  }
}

struct PipelineEngineConfig {
  GpuMode mode = GpuMode::kStreamsCoalesced;
  std::size_t slot_bytes = 0;  // staging slot size = buffer_bytes + (w-1)
  std::size_t ring_slots = 4;  // pinned ring = number of leasable slots
  KernelParams kernel;         // coalesced flag is derived from `mode`
  // Adds the on-device fingerprint stage: after the chunking kernel, a
  // SHA-256 kernel hashes every resolved chunk over the still-resident
  // buffer and the digests ride back with the batch. Requires producers to
  // submit an eos StreamBuffer per stream (the trailing chunk closes there).
  bool fingerprint = false;
  // Optional metrics registry (borrowed; must outlive the engine). The
  // engine publishes pipeline.buffers_total / pipeline.bytes_total, the
  // per-stage virtual-second timings and the pipeline.slots_leased gauge.
  // Null => no metrics, zero cost.
  obs::Registry* registry = nullptr;

  void validate() const;
};

class PipelineEngine {
 public:
  // The engine borrows `device`, `tables` and `chunker`; all three must
  // outlive it. Throws std::invalid_argument on bad configuration.
  PipelineEngine(const PipelineEngineConfig& config, gpu::Device& device,
                 const rabin::RabinTables& tables,
                 const chunking::ChunkerConfig& chunker);
  ~PipelineEngine();

  PipelineEngine(const PipelineEngine&) = delete;
  PipelineEngine& operator=(const PipelineEngine&) = delete;

  // Moves `buf` into the pipeline: leases a pinned slot (blocking while all
  // slots are in flight — this is the backpressure point), stages the bytes
  // and hands them to the transfer thread. Returns false if the engine was
  // shut down. Buffers of one stream must be submitted in stream order.
  bool submit(StreamBuffer buf);

  // Signals end of all submissions; next_batch() drains and then returns
  // nullopt.
  void close();

  // Next finished batch in global submission order; nullopt once closed and
  // drained. Rethrows any pipeline-thread failure.
  std::optional<BoundaryBatch> next_batch();

  // Hard-stops the pipeline: wakes any producer blocked on a slot lease
  // (their submit returns false), closes every queue and joins the stage
  // threads. Idempotent; also runs from the destructor.
  void stop();

  // One-time pinned-ring construction cost (streams modes only).
  double init_seconds() const noexcept { return init_seconds_; }
  std::size_t ring_slots() const noexcept { return config_.ring_slots; }
  bool pipelined() const noexcept { return config_.mode != GpuMode::kBasic; }
  // Pinned slots currently held by a lease — in-flight pipeline items plus
  // whatever consumers retain. 0 in basic mode and after full drains.
  std::size_t slots_leased() const;

 private:
  // A StreamBuffer whose payload has been staged into a leased pinned slot
  // (streams modes; `lease` keeps the slot alive through DMA and beyond) or
  // left in `meta.data` (basic mode).
  struct StagedItem {
    StreamBuffer meta;
    SlotLease lease;
    std::size_t data_len = 0;
    std::size_t dev_slot = 0;
    double transfer_seconds = 0;
  };

  // Per-stream device-resident fingerprint state (kernel thread only):
  // the min/max cutter resolving final chunk ends and the running SHA-256
  // of the open chunk. Defined in pipeline.cc.
  struct FingerprintSession;

  FingerprintSession& fp_session(std::uint32_t stream_id);
  void fingerprint_batch(StagedItem& item, BoundaryBatch& batch);
  void finish_fingerprint(std::uint32_t stream_id, std::uint64_t total,
                          BoundaryBatch& batch);

  bool acquire_twin();
  void release_twin();
  void record_error_and_unblock();
  void transfer_loop();
  void kernel_loop();

  PipelineEngineConfig config_;
  gpu::Device& device_;
  const rabin::RabinTables& tables_;
  const chunking::ChunkerConfig& chunker_;
  // Metric handles resolved once at construction (null when no registry):
  // submit() and the kernel thread touch them lock-free on the hot path.
  obs::Counter* m_buffers_ = nullptr;
  obs::Counter* m_bytes_ = nullptr;
  obs::Timing* m_reader_s_ = nullptr;
  obs::Timing* m_h2d_s_ = nullptr;
  obs::Timing* m_kernel_s_ = nullptr;
  obs::Timing* m_fingerprint_s_ = nullptr;
  KernelParams kparams_;
  gpu::HostMemKind host_kind_;
  double init_seconds_ = 0;

  // The pinned ring + free-slot accounting, shared with every slot-backed
  // lease so consumer-held leases outlive the engine safely. Null in basic
  // mode (no ring; payloads travel as owned vectors).
  std::shared_ptr<detail::SlotPool> pool_;
  std::atomic<bool> stopping_{false};  // wakes twin waiters at shutdown

  std::vector<gpu::DeviceBuffer> twins_;
  Mutex twin_mutex_;
  CondVar twin_cv_;
  std::size_t twins_free_ GUARDED_BY(twin_mutex_) = 0;

  BoundedQueue<StagedItem> to_transfer_;
  BoundedQueue<StagedItem> to_kernel_;
  BoundedQueue<BoundaryBatch> to_store_;

  // Kernel-thread-only: one fingerprint session per live stream.
  std::unordered_map<std::uint32_t, std::unique_ptr<FingerprintSession>>
      fp_sessions_;

  Mutex error_mutex_;
  std::exception_ptr error_ GUARDED_BY(error_mutex_);
  std::thread transfer_thread_;
  std::thread kernel_thread_;
};

}  // namespace shredder::core
