// GPU chunking kernels (paper §3.1 and §4.3).
//
// Both kernels divide the buffer's payload into one contiguous sub-stream
// per GPU thread and compute Rabin fingerprints over a sliding window,
// emitting a boundary wherever the masked fingerprint equals the marker.
// Each thread warms its window on the w-1 bytes preceding its sub-stream, so
// the concatenated output is bit-identical to a serial scan of the buffer.
//
//  * Basic kernel (§3.1): each thread reads its own sub-stream directly from
//    global device memory in 16 B segments — thousands of interleaved
//    streams, which row-switches the DRAM banks on almost every transaction.
//  * Coalesced kernel (§4.3): the threads of a block cooperatively stage
//    tiles of their sub-streams into on-chip shared memory with contiguous
//    128 B half-warp transactions, then fingerprint out of shared memory.
#pragma once

#include <cstdint>
#include <vector>

#include "chunking/chunk.h"
#include "dedup/digest.h"
#include "gpusim/device.h"
#include "rabin/rabin.h"

namespace shredder::core {

struct KernelParams {
  int blocks = 28;             // 2 resident blocks per SM on the C2050
  int threads_per_block = 128;
  bool coalesced = true;
  bool exact_dram = false;     // exact bank accounting (tests / small runs)
};

struct GpuChunkResult {
  // Absolute end offsets of raw content boundaries, ascending.
  std::vector<std::uint64_t> boundaries;
  gpu::KernelRunStats stats;
};

// Chunks buf[0, data_len). The first `carry` bytes are window context from
// the previous buffer (boundaries inside them are not re-emitted);
// `base_offset` is the absolute stream offset of buf[0].
GpuChunkResult chunk_on_gpu(gpu::Device& device, const gpu::DeviceBuffer& buf,
                            std::size_t data_len, std::size_t carry,
                            std::uint64_t base_offset,
                            const rabin::RabinTables& tables,
                            const chunking::ChunkerConfig& config,
                            const KernelParams& params);

struct GpuFingerprintResult {
  // One SHA-256 digest per cut, in cut order; bit-identical to the host
  // dedup::Sha256 over the same chunk bytes.
  std::vector<dedup::ChunkDigest> digests;
  gpu::KernelRunStats stats;
};

// Fingerprint kernel (§4.3-style second device stage): hashes the payload
// bytes buf[carry, data_len) — still resident from the chunking kernel —
// into per-chunk SHA-256 digests. `cuts` are the resolved chunk end offsets
// (absolute, ascending, each in (base_offset+carry, base_offset+data_len]).
// `carry_ctx` is the running hash of the open chunk's bytes from previous
// buffers; on return it holds the bytes after the last cut, so chunks that
// span buffers hash incrementally without re-reading evicted data. Each
// closed chunk is an independent hash task, mapped one-per-thread across the
// launch's blocks.
GpuFingerprintResult fingerprint_on_gpu(
    gpu::Device& device, const gpu::DeviceBuffer& buf, std::size_t data_len,
    std::size_t carry, std::uint64_t base_offset,
    const std::vector<std::uint64_t>& cuts, dedup::ChunkHasher& carry_ctx,
    const KernelParams& params);

}  // namespace shredder::core
