// Refcounted payload leases: the zero-copy hand-off between the pipeline's
// pinned staging ring and downstream consumers (docs/zero_copy.md).
//
// A SlotLease is a shared, immutable view of one buffer's staged bytes.
// Slot-backed leases alias a pinned ring slot directly: the slot returns to
// the free list when the LAST lease referencing it drops — not when the H2D
// DMA completes — so the store stage, a payload-slicing ChunkSink and the
// service's dedup store thread can all read the staged bytes without a host
// copy. Ring backpressure extends naturally to slow consumers: submit()
// blocks while they hold slots, and the pipeline.slots_leased gauge tracks
// the outstanding count. Owned leases wrap a plain ByteVec for producers
// without a ring (basic/pageable mode) and for PayloadTail compaction.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "common/annotations.h"
#include "common/bytes.h"
#include "common/mutex.h"
#include "gpusim/pinned.h"
#include "obs/registry.h"

namespace shredder::core {
namespace detail {

// Owns the pinned staging ring plus its free-slot accounting. Held by
// shared_ptr from the engine AND from every slot-backed lease, so leases
// stay valid after the engine dies. acquire() is the engine-level
// backpressure point: it blocks while every slot is leased and returns
// nullopt once stop() has run — even when slots are free, because a
// stopping engine must not hand out new work.
class SlotPool {
 public:
  SlotPool(const gpu::DeviceSpec& spec, std::size_t slots,
           std::size_t slot_size);

  SlotPool(const SlotPool&) = delete;
  SlotPool& operator=(const SlotPool&) = delete;

  std::optional<std::size_t> acquire();
  void release(std::size_t slot);

  // Wakes every acquire() waiter with nullopt. Outstanding leases stay
  // valid and still release into the free list.
  void stop();

  // Publishes the outstanding-lease count into `gauge`; nullptr detaches.
  // The engine detaches before its registry can die, because leases held by
  // consumers may outlive both.
  void set_gauge(obs::Gauge* gauge);

  MutableByteSpan slot_span(std::size_t index) noexcept {
    return ring_.slot_span(index);
  }
  double construction_cost_seconds() const noexcept {
    return ring_.construction_cost_seconds();
  }
  std::size_t slots() const noexcept { return ring_.slots(); }
  // Leases currently outstanding (slot-leak checks in tests).
  std::size_t leased() const;

 private:
  gpu::PinnedRing ring_;
  mutable Mutex mu_;
  CondVar cv_;
  std::vector<std::size_t> free_ GUARDED_BY(mu_);
  std::size_t leased_ GUARDED_BY(mu_) = 0;
  bool stopping_ GUARDED_BY(mu_) = false;
  obs::Gauge* gauge_ GUARDED_BY(mu_) = nullptr;
};

}  // namespace detail

// Shared immutable view of one staged buffer (see file comment). Copies
// share the underlying storage — pinned slot or owned vector — which is
// released when the last copy drops.
class SlotLease {
 public:
  SlotLease() = default;

  SlotLease(const SlotLease&) = default;
  SlotLease& operator=(const SlotLease&) = default;
  SlotLease(SlotLease&& other) noexcept
      : rep_(std::move(other.rep_)), span_(other.span_) {
    other.span_ = {};
  }
  SlotLease& operator=(SlotLease&& other) noexcept {
    rep_ = std::move(other.rep_);
    span_ = other.span_;
    other.span_ = {};
    return *this;
  }

  // Wraps bytes the lease owns outright (pageable-mode staging, tail
  // compaction copies).
  static SlotLease from_owned(ByteVec bytes);

  // Aliases `len` bytes of `pool`'s slot `slot`; the slot is released back
  // to the pool when the last lease drops.
  static SlotLease from_slot(std::shared_ptr<detail::SlotPool> pool,
                             std::size_t slot, std::size_t len);

  ByteSpan bytes() const noexcept { return span_; }
  std::size_t size() const noexcept { return span_.size(); }
  bool empty() const noexcept { return span_.empty(); }
  bool slot_backed() const noexcept;
  explicit operator bool() const noexcept { return rep_ != nullptr; }
  void reset() noexcept {
    rep_.reset();
    span_ = {};
  }

 private:
  struct Rep;
  SlotLease(std::shared_ptr<const Rep> rep, ByteSpan span)
      : rep_(std::move(rep)), span_(span) {}

  std::shared_ptr<const Rep> rep_;
  ByteSpan span_;
};

}  // namespace shredder::core
