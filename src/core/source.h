// Data sources for the Shredder Reader thread (paper §3.1, §5.2.1).
//
// The paper's Reader consumes a SAN stream at ~2 GB/s via asynchronous I/O.
// Here a DataSource hands out sequential buffers and reports the *modelled*
// read time per buffer; AsyncReader runs a background thread that prefetches
// buffers ahead of the consumer, which is the lio_listio-style overlap of
// §5.2.1.
#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/bytes.h"
#include "common/queue.h"
#include "gpusim/spec.h"

namespace shredder::core {

// Sequential byte source. Implementations are single-consumer.
class DataSource {
 public:
  virtual ~DataSource() = default;

  // Total bytes this source will deliver (known up front for all our
  // sources; a live SAN stream would return a running estimate).
  virtual std::uint64_t total_bytes() const = 0;

  // Reads up to dst.size() bytes into dst; returns bytes read (0 = EOF).
  virtual std::size_t read(MutableByteSpan dst) = 0;

  // Modelled seconds to deliver `bytes` from this source's backing channel.
  virtual double read_seconds(std::uint64_t bytes) const = 0;
};

// Serves a caller-owned in-memory buffer at a modelled channel bandwidth
// (default: the paper's 2 GB/s SAN reader).
class MemorySource final : public DataSource {
 public:
  MemorySource(ByteSpan data, double channel_bw);

  std::uint64_t total_bytes() const override { return data_.size(); }
  std::size_t read(MutableByteSpan dst) override;
  double read_seconds(std::uint64_t bytes) const override;

 private:
  ByteSpan data_;
  std::size_t offset_ = 0;
  double channel_bw_;
};

// Reads a file from the local filesystem at a modelled channel bandwidth.
// Throws std::runtime_error if the file cannot be opened.
class FileSource final : public DataSource {
 public:
  FileSource(const std::string& path, double channel_bw);
  ~FileSource() override;

  FileSource(const FileSource&) = delete;
  FileSource& operator=(const FileSource&) = delete;

  std::uint64_t total_bytes() const override { return total_; }
  std::size_t read(MutableByteSpan dst) override;
  double read_seconds(std::uint64_t bytes) const override;

 private:
  std::FILE* file_ = nullptr;
  std::uint64_t total_ = 0;
  double channel_bw_;
};

// Deterministic synthetic stream (seeded) without materialising the whole
// payload: useful for multi-GB runs.
class SyntheticSource final : public DataSource {
 public:
  SyntheticSource(std::uint64_t total, std::uint64_t seed, double channel_bw);

  std::uint64_t total_bytes() const override { return total_; }
  std::size_t read(MutableByteSpan dst) override;
  double read_seconds(std::uint64_t bytes) const override;

 private:
  std::uint64_t total_;
  std::uint64_t produced_ = 0;
  std::uint64_t seed_;
  double channel_bw_;
};

// A buffer handed from the reader to the rest of the pipeline.
struct ReadBuffer {
  std::uint64_t index = 0;        // sequence number
  std::uint64_t stream_offset = 0;  // absolute offset of payload[carry..]
  std::size_t carry = 0;          // leading window-context bytes (w-1)
  ByteVec data;                   // carry + payload
  double read_seconds = 0;        // modelled reader time for the payload
};

// Background prefetching reader: fills ReadBuffers of `payload_bytes` each,
// prefixing every buffer with the last `carry_bytes` of the previous one so
// chunk windows spanning buffer seams are never lost.
class AsyncReader {
 public:
  AsyncReader(DataSource& source, std::size_t payload_bytes,
              std::size_t carry_bytes, std::size_t queue_depth = 4);
  ~AsyncReader();

  AsyncReader(const AsyncReader&) = delete;
  AsyncReader& operator=(const AsyncReader&) = delete;

  // Next buffer in stream order; nullopt at end of stream.
  std::optional<ReadBuffer> next();

 private:
  void run(DataSource& source, std::size_t payload_bytes,
           std::size_t carry_bytes);

  BoundedQueue<ReadBuffer> queue_;
  std::thread thread_;
};

}  // namespace shredder::core
