#include "core/lease.h"

#include <utility>

#include "common/check.h"

namespace shredder::core {
namespace detail {

SlotPool::SlotPool(const gpu::DeviceSpec& spec, std::size_t slots,
                   std::size_t slot_size)
    : ring_(spec, slots, slot_size) {
  free_.reserve(slots);
  for (std::size_t i = 0; i < slots; ++i) free_.push_back(i);
}

std::optional<std::size_t> SlotPool::acquire() {
  MutexLock lock(mu_);
  while (free_.empty() && !stopping_) cv_.wait(mu_);
  if (stopping_) return std::nullopt;
  const std::size_t slot = free_.back();
  free_.pop_back();
  ++leased_;
  if (gauge_ != nullptr) gauge_->set(static_cast<double>(leased_));
  return slot;
}

void SlotPool::release(std::size_t slot) {
  {
    MutexLock lock(mu_);
    SHREDDER_CHECK_MSG(leased_ > 0, "SlotPool: release without a lease");
    free_.push_back(slot);
    --leased_;
    if (gauge_ != nullptr) gauge_->set(static_cast<double>(leased_));
  }
  cv_.notify_one();
}

void SlotPool::stop() {
  {
    MutexLock lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
}

void SlotPool::set_gauge(obs::Gauge* gauge) {
  MutexLock lock(mu_);
  gauge_ = gauge;
  if (gauge_ != nullptr) gauge_->set(static_cast<double>(leased_));
}

std::size_t SlotPool::leased() const {
  MutexLock lock(mu_);
  return leased_;
}

}  // namespace detail

struct SlotLease::Rep {
  ByteVec owned;
  std::shared_ptr<detail::SlotPool> pool;
  std::size_t slot = 0;
  bool slot_backed = false;

  Rep() = default;
  Rep(const Rep&) = delete;
  Rep& operator=(const Rep&) = delete;
  ~Rep() {
    if (slot_backed) pool->release(slot);
  }
};

SlotLease SlotLease::from_owned(ByteVec bytes) {
  auto rep = std::make_shared<Rep>();
  rep->owned = std::move(bytes);
  const ByteSpan span{rep->owned.data(), rep->owned.size()};
  return SlotLease(std::move(rep), span);
}

SlotLease SlotLease::from_slot(std::shared_ptr<detail::SlotPool> pool,
                               std::size_t slot, std::size_t len) {
  SHREDDER_CHECK_MSG(pool != nullptr, "SlotLease: null pool");
  auto rep = std::make_shared<Rep>();
  rep->pool = std::move(pool);
  rep->slot = slot;
  rep->slot_backed = true;
  const MutableByteSpan storage = rep->pool->slot_span(slot);
  SHREDDER_CHECK_MSG(len <= storage.size(),
                     "SlotLease: length exceeds the slot");
  return SlotLease(std::move(rep), ByteSpan{storage.data(), len});
}

bool SlotLease::slot_backed() const noexcept {
  return rep_ != nullptr && rep_->slot_backed;
}

}  // namespace shredder::core
