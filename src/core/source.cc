#include "core/source.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "common/rng.h"

namespace shredder::core {

MemorySource::MemorySource(ByteSpan data, double channel_bw)
    : data_(data), channel_bw_(channel_bw) {
  if (channel_bw <= 0) {
    throw std::invalid_argument("MemorySource: bandwidth must be positive");
  }
}

std::size_t MemorySource::read(MutableByteSpan dst) {
  const std::size_t n = std::min(dst.size(), data_.size() - offset_);
  if (n != 0) std::memcpy(dst.data(), data_.data() + offset_, n);
  offset_ += n;
  return n;
}

double MemorySource::read_seconds(std::uint64_t bytes) const {
  return static_cast<double>(bytes) / channel_bw_;
}

FileSource::FileSource(const std::string& path, double channel_bw)
    : channel_bw_(channel_bw) {
  if (channel_bw <= 0) {
    throw std::invalid_argument("FileSource: bandwidth must be positive");
  }
  file_ = std::fopen(path.c_str(), "rb");
  if (file_ == nullptr) {
    throw std::runtime_error("FileSource: cannot open " + path);
  }
  std::fseek(file_, 0, SEEK_END);
  const long size = std::ftell(file_);
  std::fseek(file_, 0, SEEK_SET);
  total_ = size > 0 ? static_cast<std::uint64_t>(size) : 0;
}

FileSource::~FileSource() {
  if (file_ != nullptr) std::fclose(file_);
}

std::size_t FileSource::read(MutableByteSpan dst) {
  return std::fread(dst.data(), 1, dst.size(), file_);
}

double FileSource::read_seconds(std::uint64_t bytes) const {
  return static_cast<double>(bytes) / channel_bw_;
}

SyntheticSource::SyntheticSource(std::uint64_t total, std::uint64_t seed,
                                 double channel_bw)
    : total_(total), seed_(seed), channel_bw_(channel_bw) {
  if (channel_bw <= 0) {
    throw std::invalid_argument("SyntheticSource: bandwidth must be positive");
  }
}

std::size_t SyntheticSource::read(MutableByteSpan dst) {
  const std::uint64_t remaining = total_ - produced_;
  const std::size_t n =
      static_cast<std::size_t>(std::min<std::uint64_t>(dst.size(), remaining));
  // Deterministic content independent of read granularity: each 8-byte
  // aligned word of the stream is SplitMix64(seed ^ word_index), computed
  // once per word rather than per byte.
  std::size_t i = 0;
  while (i < n) {
    const std::uint64_t pos = produced_ + i;
    const std::uint64_t word_index = pos / 8;
    SplitMix64 rng(seed_ ^ (word_index * 0x9e3779b97f4a7c15ull));
    const std::uint64_t w = rng.next();
    const std::size_t byte_in_word = static_cast<std::size_t>(pos % 8);
    const std::size_t take = std::min<std::size_t>(8 - byte_in_word, n - i);
    for (std::size_t b = 0; b < take; ++b) {
      dst[i + b] = static_cast<std::uint8_t>(w >> (8 * (byte_in_word + b)));
    }
    i += take;
  }
  produced_ += n;
  return n;
}

double SyntheticSource::read_seconds(std::uint64_t bytes) const {
  return static_cast<double>(bytes) / channel_bw_;
}

AsyncReader::AsyncReader(DataSource& source, std::size_t payload_bytes,
                         std::size_t carry_bytes, std::size_t queue_depth)
    : queue_(queue_depth) {
  if (payload_bytes == 0) {
    throw std::invalid_argument("AsyncReader: payload_bytes must be > 0");
  }
  if (carry_bytes >= payload_bytes) {
    throw std::invalid_argument("AsyncReader: carry must be < payload");
  }
  thread_ = std::thread([this, &source, payload_bytes, carry_bytes] {
    run(source, payload_bytes, carry_bytes);
  });
}

AsyncReader::~AsyncReader() {
  queue_.close();
  if (thread_.joinable()) thread_.join();
}

void AsyncReader::run(DataSource& source, std::size_t payload_bytes,
                      std::size_t carry_bytes) {
  ByteVec carry;
  std::uint64_t index = 0;
  std::uint64_t offset = 0;
  for (;;) {
    ReadBuffer buf;
    buf.index = index;
    buf.carry = carry.size();
    buf.stream_offset = offset;
    buf.data.resize(carry.size() + payload_bytes);
    std::copy(carry.begin(), carry.end(), buf.data.begin());
    const std::size_t got =
        source.read({buf.data.data() + carry.size(), payload_bytes});
    if (got == 0) break;
    buf.data.resize(carry.size() + got);
    buf.read_seconds = source.read_seconds(got);
    // Keep the last carry_bytes of the payload for the next buffer's window
    // context.
    const std::size_t keep = std::min(carry_bytes, buf.data.size());
    carry.assign(buf.data.end() - static_cast<std::ptrdiff_t>(keep),
                 buf.data.end());
    offset += got;
    ++index;
    if (!queue_.push(std::move(buf))) return;  // consumer went away
  }
  queue_.close();
}

std::optional<ReadBuffer> AsyncReader::next() { return queue_.pop(); }

}  // namespace shredder::core
