// Shredder: the GPU-accelerated content-based chunking service
// (paper §3–§5). This is the library's primary public API.
//
// The workflow matches Figure 2/8 of the paper: a Reader thread pulls the
// input stream into host buffers, a Transfer thread DMAs them into device
// memory (double-buffered twins), the chunking kernel finds raw content
// boundaries in parallel on the (simulated) GPU, and a Store thread copies
// boundaries back, applies min/max sizes and upcalls the application with
// finished chunks.
//
// Three operating modes expose the paper's optimization ladder (Fig 12):
//   kBasic            serialized stages, pageable host memory, direct
//                     device-memory kernel                       (§3.1)
//   kStreams          pinned ring buffers + double buffering + 4-stage
//                     streaming pipeline                          (§4.1–4.2)
//   kStreamsCoalesced kStreams + memory-coalesced kernel          (§4.3)
//
// Every run does the real work on real bytes (the returned chunks are
// bit-identical to chunking::chunk_serial) and additionally reports virtual
// timings under the calibrated C2050 model so CPU/GPU comparisons reproduce
// the paper's era rather than this host.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "chunking/chunk.h"
#include "core/kernels.h"
#include "core/pipeline.h"
#include "core/sink.h"
#include "core/source.h"
#include "gpusim/device.h"
#include "gpusim/pinned.h"
#include "gpusim/spec.h"
#include "rabin/rabin.h"

namespace shredder::core {

// GpuMode and StageSeconds live in core/pipeline.h (the pipeline engine is
// shared with the multi-tenant service); both are re-exported here because
// this header is the single-stream public API.

struct ShredderConfig {
  chunking::ChunkerConfig chunker;
  std::size_t buffer_bytes = 32ull * 1024 * 1024;  // pipeline buffer size
  GpuMode mode = GpuMode::kStreamsCoalesced;
  KernelParams kernel;
  std::size_t ring_slots = 4;  // pinned ring = number of pipeline stages
  gpu::DeviceSpec device;
  gpu::HostSpec host;
  std::size_t sim_threads = 0;  // host threads simulating the GPU (0 = auto)
  // Run the on-device fingerprint stage: each chunk is SHA-256-hashed by a
  // second kernel while its buffer is still resident, and the result carries
  // one digest per chunk (bit-identical to host dedup::Sha256).
  bool fingerprint_on_device = false;
  // Optional metrics registry (borrowed; must outlive the Shredder's runs).
  // Forwarded to the pipeline engine, which publishes pipeline.* counters
  // and stage timings; the store stage adds core.store_seconds. Virtual-time
  // *tracing* runs through the service path (a 1-tenant ChunkingService is
  // the single-stream trace) — see docs/observability.md.
  obs::Registry* registry = nullptr;

  void validate() const;
};

struct ShredderResult {
  std::vector<chunking::Chunk> chunks;
  // One digest per chunk when fingerprint_on_device is set; empty otherwise.
  std::vector<dedup::ChunkDigest> digests;
  std::uint64_t total_bytes = 0;
  std::uint64_t n_buffers = 0;
  std::uint64_t raw_boundaries = 0;

  // Virtual end-to-end time under the configured mode (serialized for
  // kBasic; 4-stage pipeline makespan otherwise) and its throughput.
  double virtual_seconds = 0;
  double virtual_throughput_bps = 0;
  // Sum of all stage durations (the fully serialized execution).
  double serialized_seconds = 0;
  // Mean per-buffer stage durations (inputs to pipeline modelling).
  StageSeconds mean_stage_seconds;
  // One-time pinned-ring construction cost (streams modes only).
  double init_seconds = 0;
  // Aggregated kernel statistics over all buffers.
  gpu::KernelRunStats kernel_totals;
  // Aggregated fingerprint-kernel statistics (fingerprint mode only).
  gpu::KernelRunStats fingerprint_totals;
  // Real host time spent executing the run.
  double wall_seconds = 0;
};

class Shredder {
 public:
  // Legacy per-chunk upcall types (now shims over the batch path; see
  // core/sink.h). on_digest only fires when fingerprint_on_device is set.
  using ChunkCallback = ::shredder::ChunkCallback;
  using DigestCallback = ::shredder::DigestCallback;

  // Throws std::invalid_argument on bad configuration.
  explicit Shredder(ShredderConfig config);

  // Batch-first consumption: `sink` receives one ChunkBatchView per drained
  // pipeline buffer that finalized chunks, in stream order, plus exactly one
  // eos batch — no per-chunk dispatch on the store path. The ByteSpan
  // overload always provides payload views into `data`; the DataSource
  // overload retains buffer bytes for them only when sink.wants_payload().
  ShredderResult run(DataSource& source, ChunkSink& sink);
  ShredderResult run(ByteSpan data, ChunkSink& sink);

  // Chunks the whole stream from `source`, invoking `on_chunk` (if set) as
  // chunks become final. Returns the full result. Kept as a PerChunkAdapter
  // shim over the batch path; output is bit-identical to the sink overloads.
  ShredderResult run(DataSource& source, const ChunkCallback& on_chunk = {},
                     const DigestCallback& on_digest = {});

  // Convenience: chunk an in-memory buffer served at the host reader
  // bandwidth (the SAN model).
  ShredderResult run(ByteSpan data, const ChunkCallback& on_chunk = {},
                     const DigestCallback& on_digest = {});

  const ShredderConfig& config() const noexcept { return config_; }
  const rabin::RabinTables& tables() const noexcept { return tables_; }
  gpu::Device& device() noexcept { return *device_; }

 private:
  // `whole` is the full stream bytes when the caller holds them in memory
  // (payload views come for free); empty for true streaming sources.
  ShredderResult run_impl(DataSource& source, ChunkSink* sink, ByteSpan whole);

  ShredderConfig config_;
  rabin::RabinTables tables_;
  std::unique_ptr<gpu::Device> device_;
};

// Host-only parallel chunking with the same result/report shape, for the
// CPU-vs-GPU comparisons of Fig 12 (paper §5.1). Virtual timings use the
// calibrated X5650 pthreads throughput from HostSpec.
struct HostChunkResult {
  std::vector<chunking::Chunk> chunks;
  std::uint64_t total_bytes = 0;
  double virtual_seconds = 0;        // max(reader, chunking) — overlapped
  double virtual_throughput_bps = 0;
  double wall_seconds = 0;           // real measured time on this machine
  double wall_throughput_bps = 0;
};

HostChunkResult chunk_on_host(ByteSpan data,
                              const chunking::ChunkerConfig& chunker,
                              const gpu::HostSpec& host, bool use_arena,
                              std::size_t threads = 0);

}  // namespace shredder::core
