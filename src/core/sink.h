// Batch-first consumer API: the library's preferred way to receive chunks.
//
// Every producer surface used to upcall its consumer once per chunk through a
// std::function — N virtual dispatches per drained buffer, and (on the backup
// path) N wire messages where one would do. ChunkSink inverts that: the store
// stage hands the consumer ONE ChunkBatchView per drained pipeline buffer,
// carrying spans over everything the buffer finalized — chunks, their device
// digests when the fingerprint stage ran, and (when the producer retains
// payload bytes) a window of the stream the chunks can be sliced from.
//
// The per-chunk std::function surfaces (Shredder::run callbacks,
// service::TenantOptions::on_chunk/on_digest) are kept as thin shims: they
// wrap the callbacks in a PerChunkAdapter and ride the batch path, so legacy
// consumers see bit-identical chunk/digest streams (tests/sink_test.cc holds
// exactly that) while batch consumers pay no per-chunk dispatch at all.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <span>

#include "chunking/chunk.h"
#include "common/bytes.h"
#include "core/lease.h"
#include "dedup/digest.h"

namespace shredder {

class PayloadTail;

// Per-chunk upcall types shared by every frontend (core::Shredder, the
// multi-tenant service). Kept for compatibility; new consumers should
// implement ChunkSink instead.
using ChunkCallback = std::function<void(const chunking::Chunk&)>;
using DigestCallback =
    std::function<void(const chunking::Chunk&, const dedup::ChunkDigest&)>;

// Everything one drained buffer finalized, delivered in stream order. All
// spans point into producer-owned storage and are valid only for the
// duration of the on_batch() call — copy what must outlive it.
struct ChunkBatchView {
  std::uint32_t stream_id = 0;   // producing stream (0 for single-stream runs)
  std::uint64_t stream_seq = 0;  // delivered-batch ordinal within the stream
  // Final batch of the stream. Always delivered exactly once, even when no
  // trailing chunks remain, so sinks have a flush point.
  bool eos = false;

  std::span<const chunking::Chunk> chunks;  // finalized by this buffer
  // Device-computed digests, 1:1 with `chunks` when the producer ran the
  // fingerprint stage; empty otherwise.
  std::span<const dedup::ChunkDigest> digests;

  // Stream bytes covering [payload_base, payload_base + payload.size()),
  // when the producer retains them (Shredder::run over an in-memory span
  // always does; streaming producers when the sink wants_payload() or the
  // service stores payloads). For streaming runs this is the current
  // buffer's leased staging bytes — zero-copy — and chunks reaching
  // further back resolve through `tail`. Empty otherwise.
  ByteSpan payload;
  std::uint64_t payload_base = 0;  // absolute stream offset of payload[0]

  // The producer's full rolling retention window, when one exists; lets
  // chunk_bytes resolve chunks that start before `payload` (min/max
  // filtering can finalize a chunk a buffer late). Borrowed, valid only
  // during on_batch().
  const PayloadTail* tail = nullptr;

  bool has_payload() const noexcept { return !payload.empty(); }

  // Bytes of chunks[i]: a direct subspan of `payload` when the chunk lies
  // inside it, else resolved through `tail` (which may splice a copy for
  // chunks spanning retained buffers), else an empty span. The returned
  // span is invalidated by the next chunk_bytes call on the same view.
  ByteSpan chunk_bytes(std::size_t i) const;
};

// The batch-first consumer interface. on_batch runs on the producer's store
// thread, in stream order; it must not re-enter the producer.
class ChunkSink {
 public:
  virtual ~ChunkSink() = default;

  virtual void on_batch(const ChunkBatchView& batch) = 0;

  // Sinks that slice chunk payloads out of the batch return true so
  // streaming producers know to retain buffer bytes for them. Retention is
  // a refcounted slot lease per buffer (core/lease.h) — no per-buffer copy
  // — so this is cheap to want; it only extends how long staging slots
  // stay leased.
  virtual bool wants_payload() const noexcept { return false; }
};

// Rolling window of stream bytes a streaming producer retains for
// payload-slicing consumers, covering [base(), end()). Zero-copy: the
// window is a list of leased buffer segments (core/lease.h), each one
// buffer's staged bytes, adjacent segments overlapping by the carry bytes
// the producer re-staged. The invariant every frontend shares (Shredder's
// store loop, the service's per-tenant store path): append one buffer's
// payload lease per batch, hand window()/window_base() (+ the tail itself)
// to the ChunkBatchView, then trim to the open chunk's start so retention
// stays bounded by (open chunk + one buffer).
//
// Slot backpressure: segments holding pinned-slot leases keep ring slots
// out of circulation. set_slot_cap bounds that: trim() compacts the oldest
// slot-backed segments beyond the cap into owned copies of just the bytes
// still retained. Producers whose consumers run on the engine's own
// drain path (the multi-tenant service) use cap 0 so no session can starve
// the shared ring; a single-consumer Shredder run keeps
// recommended_slot_cap(ring_slots) slots parked for zero-copy delivery.
class PayloadTail {
 public:
  // Appends one buffer's staged bytes (carry prefix ++ payload) as a leased
  // segment; the first `carry` bytes repeat bytes the window already covers
  // (the new segment overlaps the previous one by `carry`). Aborts if
  // `carry` exceeds the staged size or the stream position.
  void append(core::SlotLease lease, std::size_t carry);
  // Convenience for producers without a lease: copies `staged` into an
  // owned segment.
  void append(ByteSpan staged, std::size_t carry);

  // Drops whole segments no longer needed for offsets >= `keep_from`
  // (typically the open chunk's start), then compacts slot-backed segments
  // beyond the slot cap into owned copies of their retained suffix.
  void trim(std::uint64_t keep_from);

  // The most recent segment — the current buffer's bytes — which is what a
  // ChunkBatchView exposes as its contiguous `payload`.
  ByteSpan window() const noexcept;
  std::uint64_t window_base() const noexcept;

  // Bytes of [offset, offset + len): a direct alias into one segment when a
  // single segment covers the range, else a splice into an internal scratch
  // buffer (each call invalidates the previous splice). Empty when the
  // range is outside [base(), end()).
  ByteSpan slice(std::uint64_t offset, std::size_t len) const;

  std::uint64_t base() const noexcept {
    return segments_.empty() ? end_ : segments_.front().base;
  }
  std::uint64_t end() const noexcept { return end_; }
  bool empty() const noexcept { return segments_.empty(); }

  // Slot-backed segments currently held (lease-leak checks in tests).
  std::size_t slot_leases() const noexcept;
  void set_slot_cap(std::size_t cap) noexcept { slot_cap_ = cap; }
  // Largest cap that always leaves a slot circulating for the pipeline:
  // 0 for rings of <= 1 slot, 1 for 2 slots, ring_slots - 2 above that.
  static std::size_t recommended_slot_cap(std::size_t ring_slots) noexcept {
    if (ring_slots <= 1) return 0;
    if (ring_slots == 2) return 1;
    return ring_slots - 2;
  }

 private:
  struct Segment {
    core::SlotLease lease;
    std::uint64_t base = 0;  // absolute stream offset of lease.bytes()[0]
  };

  std::deque<Segment> segments_;
  std::uint64_t end_ = 0;  // absolute end of the window (and the stream)
  std::size_t slot_cap_ = static_cast<std::size_t>(-1);
  mutable ByteVec scratch_;  // splice target for cross-segment slices
};

// Shim keeping the per-chunk callback surfaces alive: replays a batch as the
// exact per-chunk upcall sequence the legacy API produced.
class PerChunkAdapter final : public ChunkSink {
 public:
  explicit PerChunkAdapter(ChunkCallback on_chunk,
                           DigestCallback on_digest = {});

  void on_batch(const ChunkBatchView& batch) override;

  // True when both callbacks are unset (nothing to dispatch).
  bool empty() const noexcept { return !on_chunk_ && !on_digest_; }

 private:
  ChunkCallback on_chunk_;
  DigestCallback on_digest_;
};

}  // namespace shredder
