// Batch-first consumer API: the library's preferred way to receive chunks.
//
// Every producer surface used to upcall its consumer once per chunk through a
// std::function — N virtual dispatches per drained buffer, and (on the backup
// path) N wire messages where one would do. ChunkSink inverts that: the store
// stage hands the consumer ONE ChunkBatchView per drained pipeline buffer,
// carrying spans over everything the buffer finalized — chunks, their device
// digests when the fingerprint stage ran, and (when the producer retains
// payload bytes) a window of the stream the chunks can be sliced from.
//
// The per-chunk std::function surfaces (Shredder::run callbacks,
// service::TenantOptions::on_chunk/on_digest) are kept as thin shims: they
// wrap the callbacks in a PerChunkAdapter and ride the batch path, so legacy
// consumers see bit-identical chunk/digest streams (tests/sink_test.cc holds
// exactly that) while batch consumers pay no per-chunk dispatch at all.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <span>

#include "chunking/chunk.h"
#include "common/bytes.h"
#include "dedup/digest.h"

namespace shredder {

// Per-chunk upcall types shared by every frontend (core::Shredder, the
// multi-tenant service). Kept for compatibility; new consumers should
// implement ChunkSink instead.
using ChunkCallback = std::function<void(const chunking::Chunk&)>;
using DigestCallback =
    std::function<void(const chunking::Chunk&, const dedup::ChunkDigest&)>;

// Everything one drained buffer finalized, delivered in stream order. All
// spans point into producer-owned storage and are valid only for the
// duration of the on_batch() call — copy what must outlive it.
struct ChunkBatchView {
  std::uint32_t stream_id = 0;   // producing stream (0 for single-stream runs)
  std::uint64_t stream_seq = 0;  // delivered-batch ordinal within the stream
  // Final batch of the stream. Always delivered exactly once, even when no
  // trailing chunks remain, so sinks have a flush point.
  bool eos = false;

  std::span<const chunking::Chunk> chunks;  // finalized by this buffer
  // Device-computed digests, 1:1 with `chunks` when the producer ran the
  // fingerprint stage; empty otherwise.
  std::span<const dedup::ChunkDigest> digests;

  // Stream bytes covering [payload_base, payload_base + payload.size()),
  // when the producer retains them (Shredder::run over an in-memory span
  // always does; streaming producers only when the sink wants_payload() or
  // the service stores payloads). Empty otherwise.
  ByteSpan payload;
  std::uint64_t payload_base = 0;  // absolute stream offset of payload[0]

  bool has_payload() const noexcept { return !payload.empty(); }

  // Bytes of chunks[i], or an empty span when the chunk's range is not fully
  // inside `payload`.
  ByteSpan chunk_bytes(std::size_t i) const noexcept;
};

// The batch-first consumer interface. on_batch runs on the producer's store
// thread, in stream order; it must not re-enter the producer.
class ChunkSink {
 public:
  virtual ~ChunkSink() = default;

  virtual void on_batch(const ChunkBatchView& batch) = 0;

  // Sinks that slice chunk payloads out of the batch return true so
  // streaming producers know to retain buffer bytes for them (retention
  // costs a payload-sized copy per buffer, so it is opt-in).
  virtual bool wants_payload() const noexcept { return false; }
};

// Rolling window of stream bytes a streaming producer retains for
// payload-slicing consumers, covering [base(), base() + bytes().size()).
// The invariant every frontend shares (Shredder's store loop, the service's
// per-tenant store path): append one buffer's staged bytes per batch —
// skipping the carry prefix the window already holds — hand bytes()/base()
// to the ChunkBatchView, then trim to the open chunk's start so the window
// stays bounded by (open chunk + one buffer).
class PayloadTail {
 public:
  // Splices `staged` (carry prefix ++ payload) onto the window; the first
  // `carry` bytes repeat bytes the window already covers and are skipped.
  void append(ByteSpan staged, std::size_t carry) {
    tail_.insert(tail_.end(),
                 staged.begin() + static_cast<std::ptrdiff_t>(carry),
                 staged.end());
  }

  // Drops everything before the absolute offset `keep_from` (typically the
  // open chunk's start). No-op when the window starts at or after it.
  void trim(std::uint64_t keep_from) {
    if (keep_from <= base_) return;
    const std::size_t drop = std::min<std::size_t>(
        tail_.size(), static_cast<std::size_t>(keep_from - base_));
    tail_.erase(tail_.begin(), tail_.begin() + static_cast<std::ptrdiff_t>(drop));
    base_ += drop;
  }

  ByteSpan bytes() const noexcept { return {tail_.data(), tail_.size()}; }
  std::uint64_t base() const noexcept { return base_; }
  bool empty() const noexcept { return tail_.empty(); }

 private:
  ByteVec tail_;
  std::uint64_t base_ = 0;
};

// Shim keeping the per-chunk callback surfaces alive: replays a batch as the
// exact per-chunk upcall sequence the legacy API produced.
class PerChunkAdapter final : public ChunkSink {
 public:
  explicit PerChunkAdapter(ChunkCallback on_chunk,
                           DigestCallback on_digest = {});

  void on_batch(const ChunkBatchView& batch) override;

  // True when both callbacks are unset (nothing to dispatch).
  bool empty() const noexcept { return !on_chunk_ && !on_digest_; }

 private:
  ChunkCallback on_chunk_;
  DigestCallback on_digest_;
};

}  // namespace shredder
