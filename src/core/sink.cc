#include "core/sink.h"

#include <utility>

namespace shredder {

ByteSpan ChunkBatchView::chunk_bytes(std::size_t i) const noexcept {
  const chunking::Chunk& c = chunks[i];
  if (c.offset < payload_base) return {};
  const std::uint64_t rel = c.offset - payload_base;
  if (rel + c.size > payload.size()) return {};
  return payload.subspan(static_cast<std::size_t>(rel),
                         static_cast<std::size_t>(c.size));
}

PerChunkAdapter::PerChunkAdapter(ChunkCallback on_chunk,
                                 DigestCallback on_digest)
    : on_chunk_(std::move(on_chunk)), on_digest_(std::move(on_digest)) {}

void PerChunkAdapter::on_batch(const ChunkBatchView& batch) {
  const bool paired = batch.digests.size() == batch.chunks.size();
  for (std::size_t i = 0; i < batch.chunks.size(); ++i) {
    if (on_chunk_) on_chunk_(batch.chunks[i]);
    if (on_digest_ && paired) on_digest_(batch.chunks[i], batch.digests[i]);
  }
}

}  // namespace shredder
