#include "core/sink.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "common/check.h"

namespace shredder {

ByteSpan ChunkBatchView::chunk_bytes(std::size_t i) const {
  const chunking::Chunk& c = chunks[i];
  if (c.offset >= payload_base) {
    const std::uint64_t rel = c.offset - payload_base;
    if (rel + c.size <= payload.size()) {
      return payload.subspan(static_cast<std::size_t>(rel),
                             static_cast<std::size_t>(c.size));
    }
  }
  // Chunks finalized late (min/max filtering) can start before the current
  // buffer; the retention window resolves them.
  if (tail != nullptr) {
    return tail->slice(c.offset, static_cast<std::size_t>(c.size));
  }
  return {};
}

void PayloadTail::append(core::SlotLease lease, std::size_t carry) {
  SHREDDER_CHECK_MSG(carry <= lease.size(),
                     "PayloadTail: carry exceeds the staged buffer");
  SHREDDER_CHECK_MSG(carry <= end_,
                     "PayloadTail: carry reaches before the stream start");
  if (lease.empty()) return;
  Segment seg;
  seg.base = end_ - carry;
  seg.lease = std::move(lease);
  end_ = seg.base + seg.lease.size();
  segments_.push_back(std::move(seg));
}

void PayloadTail::append(ByteSpan staged, std::size_t carry) {
  SHREDDER_CHECK_MSG(carry <= staged.size(),
                     "PayloadTail: carry exceeds the staged buffer");
  append(core::SlotLease::from_owned(ByteVec(staged.begin(), staged.end())),
         carry);
}

void PayloadTail::trim(std::uint64_t keep_from) {
  // A segment is droppable when everything at or past keep_from is covered
  // by the segments after it (their overlap makes the front redundant once
  // the next segment's base reaches keep_from), or — for the last segment —
  // when it ends at or before keep_from.
  while (!segments_.empty()) {
    const Segment& front = segments_.front();
    const bool redundant =
        segments_.size() > 1
            ? segments_[1].base <= keep_from
            : front.base + front.lease.size() <= keep_from;
    if (!redundant) break;
    segments_.pop_front();
  }
  // Slot-cap compaction: copy the oldest over-cap slot segments' retained
  // suffix into owned storage so their pinned slots recycle. Only the open
  // chunk's bytes survive a trim, so the copy is bounded by max_size, not
  // by the buffer size.
  std::size_t n_slots = slot_leases();
  for (auto& seg : segments_) {
    if (n_slots <= slot_cap_) break;
    if (!seg.lease.slot_backed()) continue;
    const std::uint64_t seg_end = seg.base + seg.lease.size();
    const std::uint64_t from = std::max(seg.base, keep_from);
    ByteVec kept;
    if (from < seg_end) {
      const ByteSpan b = seg.lease.bytes().subspan(
          static_cast<std::size_t>(from - seg.base),
          static_cast<std::size_t>(seg_end - from));
      kept.assign(b.begin(), b.end());
    }
    seg.base = from;
    seg.lease = core::SlotLease::from_owned(std::move(kept));
    --n_slots;
  }
}

ByteSpan PayloadTail::window() const noexcept {
  return segments_.empty() ? ByteSpan{} : segments_.back().lease.bytes();
}

std::uint64_t PayloadTail::window_base() const noexcept {
  return segments_.empty() ? end_ : segments_.back().base;
}

ByteSpan PayloadTail::slice(std::uint64_t offset, std::size_t len) const {
  if (len == 0) return {};
  const std::uint64_t want_end = offset + len;
  if (segments_.empty() || offset < base() || want_end > end_) return {};
  // Fast path: the newest segment whose base covers `offset` — if it holds
  // the whole range, alias it directly. (Later segments repeat earlier
  // bytes via the carry overlap, so preferring the newest is safe.)
  for (auto it = segments_.rbegin(); it != segments_.rend(); ++it) {
    if (it->base > offset) continue;
    if (want_end <= it->base + it->lease.size()) {
      return it->lease.bytes().subspan(
          static_cast<std::size_t>(offset - it->base), len);
    }
    break;
  }
  // The range spans segments: splice their overlaps into scratch. Adjacent
  // segments overlap by the carry, so some bytes are written twice with
  // identical values — harmless, and simpler than overlap bookkeeping.
  scratch_.resize(len);
  for (const Segment& seg : segments_) {
    const std::uint64_t seg_end = seg.base + seg.lease.size();
    const std::uint64_t lo = std::max(offset, seg.base);
    const std::uint64_t hi = std::min(want_end, seg_end);
    if (lo >= hi) continue;
    std::memcpy(scratch_.data() + static_cast<std::size_t>(lo - offset),
                seg.lease.bytes().data() + static_cast<std::size_t>(lo - seg.base),
                static_cast<std::size_t>(hi - lo));
  }
  return {scratch_.data(), scratch_.size()};
}

std::size_t PayloadTail::slot_leases() const noexcept {
  std::size_t n = 0;
  for (const Segment& seg : segments_) {
    if (seg.lease.slot_backed()) ++n;
  }
  return n;
}

PerChunkAdapter::PerChunkAdapter(ChunkCallback on_chunk,
                                 DigestCallback on_digest)
    : on_chunk_(std::move(on_chunk)), on_digest_(std::move(on_digest)) {}

void PerChunkAdapter::on_batch(const ChunkBatchView& batch) {
  const bool paired = batch.digests.size() == batch.chunks.size();
  for (std::size_t i = 0; i < batch.chunks.size(); ++i) {
    if (on_chunk_) on_chunk_(batch.chunks[i]);
    if (on_digest_ && paired) on_digest_(batch.chunks[i], batch.digests[i]);
  }
}

}  // namespace shredder
