#include "core/kernels.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "chunking/cdc.h"
#include "common/check.h"

namespace shredder::core {

namespace {

// Sub-stream of one GPU thread: emit boundaries with end offsets in
// (emit_begin, emit_end], warming the window on the w-1 preceding bytes.
struct ThreadRange {
  std::size_t scan_begin;  // first byte pushed through the window
  std::size_t emit_begin;  // boundaries must end strictly after this index
  std::size_t emit_end;    // and at or before this index
};

ThreadRange thread_range(std::size_t payload_begin, std::size_t payload_end,
                         int total_threads, int global_thread,
                         std::size_t window) {
  const std::size_t payload = payload_end - payload_begin;
  const auto t = static_cast<std::size_t>(global_thread);
  const auto n = static_cast<std::size_t>(total_threads);
  const std::size_t per = (payload + n - 1) / n;
  const std::size_t begin = payload_begin + std::min(payload, t * per);
  const std::size_t end = payload_begin + std::min(payload, (t + 1) * per);
  const std::size_t warm = std::min(begin, window - 1);
  return ThreadRange{begin - warm, begin, end};
}

}  // namespace

GpuChunkResult chunk_on_gpu(gpu::Device& device, const gpu::DeviceBuffer& buf,
                            std::size_t data_len, std::size_t carry,
                            std::uint64_t base_offset,
                            const rabin::RabinTables& tables,
                            const chunking::ChunkerConfig& config,
                            const KernelParams& params) {
  config.validate();
  if (data_len > buf.size()) {
    throw std::invalid_argument("chunk_on_gpu: data_len exceeds buffer");
  }
  if (carry > data_len) {
    throw std::invalid_argument("chunk_on_gpu: carry exceeds data_len");
  }
  const ByteSpan data = buf.span().first(data_len);
  const std::size_t w = tables.window();
  const int total_threads = params.blocks * params.threads_per_block;

  gpu::LaunchConfig launch;
  launch.blocks = params.blocks;
  launch.threads_per_block = params.threads_per_block;
  launch.exact_dram = params.exact_dram;
  const auto& spec = device.spec();
  if (params.coalesced) {
    launch.txn_bytes = spec.coalesced_txn_bytes;
    // Tiles are fetched block-cooperatively, one tile at a time per block, so
    // DRAM sees ~one stream per concurrently resident block.
    launch.concurrent_streams = static_cast<std::uint64_t>(
        std::min(params.blocks, spec.num_sms));
  } else {
    launch.txn_bytes = spec.uncoalesced_txn_bytes;
    launch.concurrent_streams = static_cast<std::uint64_t>(total_threads);
  }

  // Per-thread boundary outputs (flattened in thread order afterwards; the
  // ranges are disjoint and ordered so the result is ascending).
  std::vector<std::vector<std::uint64_t>> out(
      static_cast<std::size_t>(total_threads));

  const auto kernel = [&](gpu::BlockCtx& ctx) {
    const std::size_t tpb = static_cast<std::size_t>(ctx.threads_per_block());
    for (std::size_t t = 0; t < tpb; ++t) {
      const int g = ctx.block_idx() * ctx.threads_per_block() +
                    static_cast<int>(t);
      const ThreadRange r =
          thread_range(carry, data_len, total_threads, g, w);
      if (r.emit_begin >= r.emit_end) continue;
      auto& boundaries = out[static_cast<std::size_t>(g)];
      const std::uint64_t dev_base = buf.device_addr();
      auto emit = [&](std::uint64_t end, std::uint64_t) {
        boundaries.push_back(end);
      };
      if (!params.coalesced) {
        // Direct global-memory walk, one 16 B segment per thread at a time.
        // One contiguous span per thread: straight through the batched
        // buffer fast path.
        ctx.record_global_read(dev_base + r.scan_begin,
                               r.emit_end - r.scan_begin);
        ctx.record_processed(r.emit_end - r.scan_begin);
        chunking::scan_buffer(
            tables, config,
            data.subspan(r.scan_begin, r.emit_end - r.scan_begin),
            r.emit_begin - r.scan_begin, base_offset + r.scan_begin, emit);
      } else {
        // Cooperative staging: the thread's sub-stream is consumed in tiles
        // sized to this thread's slice of the block's shared memory, each
        // staged with coalesced transactions before being fingerprinted.
        // Every tile restages the w-1 bytes preceding its payload (the
        // halo), so each tile is a self-contained scan_buffer call — the
        // fast path needs no scanner state carried across tiles.
        const std::size_t slice = ctx.shared().size() / tpb;
        MutableByteSpan stage = ctx.shared().subspan(t * slice, slice);
        std::size_t pos = r.emit_begin;  // next emit position to cover
        while (pos < r.emit_end) {
          const std::size_t halo = std::min(w - 1, pos);
          // Payload that fits beside the halo in the stage slice, but at
          // least 64 bytes per tile (tiny slices overflow to global memory).
          const std::size_t fit = stage.size() > halo ? stage.size() - halo : 0;
          const std::size_t payload =
              std::min(r.emit_end - pos, std::max<std::size_t>(64, fit));
          const std::size_t len = halo + payload;
          ctx.record_global_read(dev_base + (pos - halo), len);
          ctx.record_processed(len);
          if (len <= stage.size()) {
            // Real staging copy (device "global" -> on-chip buffer), then
            // the scan runs out of shared memory, proving the restructured
            // data path preserves the output.
            std::memcpy(stage.data(), data.data() + (pos - halo), len);
            ctx.record_shared_stage(len);
            chunking::scan_buffer(tables, config, ByteSpan{stage.data(), len},
                                  halo, base_offset + (pos - halo), emit);
          } else {
            // Tile larger than the stage slice (tiny shared configs): scan
            // the whole tile straight from global memory, no staging.
            chunking::scan_buffer(tables, config,
                                  data.subspan(pos - halo, len), halo,
                                  base_offset + (pos - halo), emit);
          }
          pos += payload;
        }
      }
    }
  };

  GpuChunkResult result;
  result.stats = device.launch(launch, kernel);

  std::size_t total = 0;
  for (const auto& v : out) total += v.size();
  result.boundaries.reserve(total);
  for (const auto& v : out) {
    result.boundaries.insert(result.boundaries.end(), v.begin(), v.end());
  }
  SHREDDER_CHECK_MSG(
      std::is_sorted(result.boundaries.begin(), result.boundaries.end()),
      "per-thread boundary ranges must concatenate in ascending order");
  return result;
}

GpuFingerprintResult fingerprint_on_gpu(
    gpu::Device& device, const gpu::DeviceBuffer& buf, std::size_t data_len,
    std::size_t carry, std::uint64_t base_offset,
    const std::vector<std::uint64_t>& cuts, dedup::ChunkHasher& carry_ctx,
    const KernelParams& params) {
  if (data_len > buf.size()) {
    throw std::invalid_argument("fingerprint_on_gpu: data_len exceeds buffer");
  }
  if (carry > data_len) {
    throw std::invalid_argument("fingerprint_on_gpu: carry exceeds data_len");
  }
  const std::uint64_t hash_begin = base_offset + carry;
  const std::uint64_t hash_end = base_offset + data_len;
  if (!std::is_sorted(cuts.begin(), cuts.end()) ||
      (!cuts.empty() && (cuts.front() <= hash_begin || cuts.back() > hash_end))) {
    throw std::invalid_argument("fingerprint_on_gpu: cuts out of range");
  }
  const ByteSpan data = buf.span().first(data_len);

  // Hash tasks over the payload: task k < cuts.size() closes the chunk
  // ending at cuts[k]; the final task absorbs the open tail into the ctx
  // carried to the next buffer. Task 0 continues `carry_ctx` (a chunk that
  // began in an earlier buffer); every other task hashes bytes fully
  // resident here, so tasks are independent and hash in parallel.
  const std::size_t n_tasks = cuts.size() + 1;
  GpuFingerprintResult result;
  result.digests.resize(cuts.size());
  dedup::ChunkHasher tail_ctx;  // written by the block that owns the tail

  gpu::LaunchConfig launch;
  launch.blocks = params.blocks;
  launch.threads_per_block = params.threads_per_block;
  launch.exact_dram = params.exact_dram;
  const auto& spec = device.spec();
  launch.cycles_per_byte = spec.sha256_cycles_per_byte;
  if (params.coalesced) {
    launch.txn_bytes = spec.coalesced_txn_bytes;
    launch.concurrent_streams = static_cast<std::uint64_t>(
        std::min(params.blocks, spec.num_sms));
  } else {
    launch.txn_bytes = spec.uncoalesced_txn_bytes;
    launch.concurrent_streams =
        static_cast<std::uint64_t>(launch.total_threads());
  }

  const auto kernel = [&](gpu::BlockCtx& ctx) {
    // Contiguous task ranges per block, like the chunking kernel's
    // sub-streams: block b owns tasks [b*per, (b+1)*per).
    const auto nb = static_cast<std::size_t>(ctx.num_blocks());
    const auto b = static_cast<std::size_t>(ctx.block_idx());
    const std::size_t per = (n_tasks + nb - 1) / nb;
    const std::size_t first = std::min(n_tasks, b * per);
    const std::size_t last = std::min(n_tasks, (b + 1) * per);
    const std::uint64_t dev_base = buf.device_addr();
    for (std::size_t t = first; t < last; ++t) {
      const std::uint64_t seg_begin = t == 0 ? hash_begin : cuts[t - 1];
      const std::uint64_t seg_end = t < cuts.size() ? cuts[t] : hash_end;
      const std::size_t off = static_cast<std::size_t>(seg_begin - base_offset);
      const std::size_t len = static_cast<std::size_t>(seg_end - seg_begin);
      if (len > 0) {
        ctx.record_global_read(dev_base + off, len);
        ctx.record_processed(len);
      }
      if (t < cuts.size()) {
        if (t == 0) {
          carry_ctx.update(data.subspan(off, len));
          result.digests[t] = carry_ctx.finish();
        } else {
          dedup::ChunkHasher h;
          h.update(data.subspan(off, len));
          result.digests[t] = h.finish();
        }
      } else if (t == 0) {
        // No cut in this buffer: the whole payload extends the open chunk.
        carry_ctx.update(data.subspan(off, len));
        tail_ctx = carry_ctx;
      } else {
        dedup::ChunkHasher h;
        h.update(data.subspan(off, len));
        tail_ctx = h;
      }
    }
  };

  result.stats = device.launch(launch, kernel);
  carry_ctx = tail_ctx;
  // Fixed per-chunk cost (schedule + padding + digest write) on top of the
  // byte-rate model.
  const double per_chunk =
      static_cast<double>(cuts.size()) * spec.sha256_per_chunk_s;
  result.stats.compute_seconds += per_chunk;
  result.stats.virtual_seconds =
      result.stats.launch_seconds +
      std::max(result.stats.compute_seconds, result.stats.memory_seconds);
  return result;
}

}  // namespace shredder::core
