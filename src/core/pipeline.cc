#include "core/pipeline.h"

#include <cstring>
#include <stdexcept>
#include <utility>

#include "chunking/minmax.h"
#include "common/check.h"
#include "gpusim/dma.h"

namespace shredder::core {

double store_stage_seconds(const gpu::DeviceSpec& spec,
                           std::size_t n_boundaries, bool pinned,
                           std::size_t digest_bytes) noexcept {
  const gpu::HostMemKind kind =
      pinned ? gpu::HostMemKind::kPinned : gpu::HostMemKind::kPageable;
  // Boundary and digest arrays ride back in ONE D2H DMA descriptor: the
  // fingerprint kernel writes its digests into the tail of the boundary
  // result region, so the readback is a single contiguous transfer and the
  // per-transfer setup cost is paid once per buffer instead of twice.
  return gpu::dma_seconds(
             spec, static_cast<std::uint64_t>(n_boundaries) * 8 + digest_bytes,
             gpu::Direction::kDeviceToHost, kind) +
         static_cast<double>(n_boundaries) * 2e-9;
}

// Device-side chunk resolution for the fingerprint stage. The cutter is a
// MinMaxFilter fed the buffer's raw boundaries plus a drain_forced() at each
// buffer end, which makes every chunk end at or before the buffer's last
// payload byte final while the bytes are still resident — the emitted
// sequence is provably identical to the plain store-side filter's (see
// drain_forced in chunking/minmax.h). `ctx` accumulates the open chunk's
// hash across buffers so chunks larger than a buffer never need evicted
// bytes re-read.
struct PipelineEngine::FingerprintSession {
  std::vector<std::uint64_t> pending;  // cuts resolved for the current buffer
  chunking::MinMaxFilter cutter;
  dedup::ChunkHasher ctx;

  FingerprintSession(std::uint64_t min_size, std::uint64_t max_size)
      : cutter(min_size, max_size,
               [this](std::uint64_t end) { pending.push_back(end); }) {}
};

void PipelineEngineConfig::validate() const {
  if (slot_bytes == 0) {
    throw std::invalid_argument("PipelineEngineConfig: slot_bytes must be > 0");
  }
  if (ring_slots == 0) {
    throw std::invalid_argument(
        "PipelineEngineConfig: ring_slots must be >= 1");
  }
  if (kernel.blocks <= 0 || kernel.threads_per_block <= 0) {
    throw std::invalid_argument("PipelineEngineConfig: bad kernel geometry");
  }
}

PipelineEngine::PipelineEngine(const PipelineEngineConfig& config,
                               gpu::Device& device,
                               const rabin::RabinTables& tables,
                               const chunking::ChunkerConfig& chunker)
    : config_(config),
      device_(device),
      tables_(tables),
      chunker_(chunker),
      kparams_(config.kernel),
      host_kind_(config.mode != GpuMode::kBasic ? gpu::HostMemKind::kPinned
                                                : gpu::HostMemKind::kPageable),
      to_transfer_(config.mode != GpuMode::kBasic ? config.ring_slots : 1),
      to_kernel_(config.mode != GpuMode::kBasic ? 2 : 1),
      to_store_(config.mode != GpuMode::kBasic ? 2 : 1) {
  config_.validate();
  kparams_.coalesced = config_.mode == GpuMode::kStreamsCoalesced;
  if (config_.registry != nullptr) {
    obs::Registry& reg = *config_.registry;
    m_buffers_ = &reg.counter("pipeline.buffers_total");
    m_bytes_ = &reg.counter("pipeline.bytes_total");
    m_reader_s_ = &reg.timing("pipeline.stage_seconds", {{"stage", "reader"}});
    m_h2d_s_ = &reg.timing("pipeline.stage_seconds", {{"stage", "h2d"}});
    m_kernel_s_ = &reg.timing("pipeline.stage_seconds", {{"stage", "kernel"}});
    m_fingerprint_s_ =
        &reg.timing("pipeline.stage_seconds", {{"stage", "fingerprint"}});
  }
  if (pipelined()) {
    pool_ = std::make_shared<detail::SlotPool>(
        device_.spec(), config_.ring_slots, config_.slot_bytes);
    init_seconds_ = pool_->construction_cost_seconds();
    if (config_.registry != nullptr) {
      pool_->set_gauge(&config_.registry->gauge("pipeline.slots_leased"));
    }
  }
  // Device twin buffers (double buffering, §4.1.1).
  const std::size_t n_twins = pipelined() ? 2 : 1;
  for (std::size_t i = 0; i < n_twins; ++i) {
    twins_.push_back(device_.alloc(config_.slot_bytes));
  }
  twins_free_ = n_twins;
  transfer_thread_ = std::thread([this] { transfer_loop(); });
  kernel_thread_ = std::thread([this] { kernel_loop(); });
}

PipelineEngine::~PipelineEngine() {
  stop();
  // Consumer-held leases may outlive the engine AND its registry: detach
  // the gauge so their releases stop touching it. After the joins above no
  // engine thread can race this.
  if (pool_ != nullptr) pool_->set_gauge(nullptr);
}

void PipelineEngine::stop() {
  stopping_.store(true);
  if (pool_ != nullptr) pool_->stop();
  {
    MutexLock lock(twin_mutex_);
  }
  twin_cv_.notify_all();
  to_transfer_.close();
  to_kernel_.close();
  to_store_.close();
  if (transfer_thread_.joinable()) transfer_thread_.join();
  if (kernel_thread_.joinable()) kernel_thread_.join();
}

std::size_t PipelineEngine::slots_leased() const {
  return pool_ != nullptr ? pool_->leased() : 0;
}

bool PipelineEngine::acquire_twin() {
  MutexLock lock(twin_mutex_);
  while (twins_free_ == 0 && !stopping_.load()) twin_cv_.wait(twin_mutex_);
  if (twins_free_ == 0) return false;
  --twins_free_;
  return true;
}

void PipelineEngine::release_twin() {
  {
    MutexLock lock(twin_mutex_);
    ++twins_free_;
  }
  twin_cv_.notify_one();
}

// Called from a stage thread's catch block: store the exception for
// next_batch() and unblock every other party — producers waiting on a slot
// lease or a full queue, and the peer stage thread waiting on a twin.
void PipelineEngine::record_error_and_unblock() {
  {
    MutexLock lock(error_mutex_);
    if (!error_) error_ = std::current_exception();
  }
  stopping_.store(true);
  if (pool_ != nullptr) pool_->stop();
  {
    MutexLock lock(twin_mutex_);
  }
  twin_cv_.notify_all();
  to_transfer_.close();
  to_kernel_.close();
  to_store_.close();
}

bool PipelineEngine::submit(StreamBuffer buf) {
  SHREDDER_CHECK_MSG(!buf.eos || buf.data.empty(),
                     "PipelineEngine: eos buffers must carry no data");
  StagedItem item;
  item.data_len = buf.carry_prefix.size() + buf.data.size();
  if (m_buffers_ != nullptr && !buf.eos) {
    m_buffers_->add(1);
    m_bytes_->add(buf.data.size());  // payload only; carry bytes are repeats
  }
  if (pipelined() && !buf.eos) {
    const auto slot = pool_->acquire();
    if (!slot.has_value()) return false;
    auto span = pool_->slot_span(*slot);
    SHREDDER_CHECK(item.data_len <= span.size());
    if (!buf.carry_prefix.empty()) {
      std::memcpy(span.data(), buf.carry_prefix.data(),
                  buf.carry_prefix.size());
    }
    if (!buf.data.empty()) {
      std::memcpy(span.data() + buf.carry_prefix.size(), buf.data.data(),
                  buf.data.size());
    }
    // The staged bytes live in the pinned slot now; the lease is the ONLY
    // host copy, travelling with the item all the way to the consumer as
    // BoundaryBatch::payload. No second splice, no return_payload copy.
    item.lease = SlotLease::from_slot(pool_, *slot, item.data_len);
    buf.carry += buf.carry_prefix.size();
    buf.data = ByteVec{};
    buf.carry_prefix = ByteVec{};
  } else if (!buf.eos && !buf.carry_prefix.empty()) {
    // Basic (pageable) mode DMAs straight from host memory, which must be
    // one contiguous span: splice prefix + payload here.
    ByteVec staged;
    staged.reserve(item.data_len);
    staged.insert(staged.end(), buf.carry_prefix.begin(),
                  buf.carry_prefix.end());
    staged.insert(staged.end(), buf.data.begin(), buf.data.end());
    buf.carry += buf.carry_prefix.size();
    buf.carry_prefix = ByteVec{};
    buf.data = std::move(staged);
  }
  item.meta = std::move(buf);
  // On push failure the moved-from item is destroyed inside push(); its
  // lease drops and the slot recycles automatically.
  return to_transfer_.push(std::move(item));
}

void PipelineEngine::close() { to_transfer_.close(); }

void PipelineEngine::transfer_loop() {
  try {
    std::size_t next_twin = 0;
    while (auto item = to_transfer_.pop()) {
      if (item->meta.eos) {
        if (!to_kernel_.push(std::move(*item))) return;
        continue;
      }
      const ByteSpan dma_src = item->lease
                                   ? item->lease.bytes()
                                   : ByteSpan{item->meta.data.data(),
                                              item->data_len};
      if (!acquire_twin()) return;
      item->dev_slot = next_twin;
      next_twin = (next_twin + 1) % twins_.size();
      item->transfer_seconds =
          device_.memcpy_h2d(twins_[item->dev_slot], 0, dma_src, host_kind_);
      // The slot is NOT released here: the lease rides to the kernel stage
      // and out with the batch, recycling when its last holder drops it.
      if (!to_kernel_.push(std::move(*item))) return;
    }
    to_kernel_.close();
  } catch (...) {
    record_error_and_unblock();
  }
}

PipelineEngine::FingerprintSession& PipelineEngine::fp_session(
    std::uint32_t stream_id) {
  auto it = fp_sessions_.find(stream_id);
  if (it == fp_sessions_.end()) {
    it = fp_sessions_
             .emplace(stream_id, std::make_unique<FingerprintSession>(
                                     chunker_.min_size, chunker_.max_size))
             .first;
  }
  return *it->second;
}

// Runs the fingerprint kernel for one chunked buffer: resolve the chunk ends
// this buffer makes final, hash them over the resident device twin, and
// attach (ends, digests, stage seconds) to the batch.
void PipelineEngine::fingerprint_batch(StagedItem& item, BoundaryBatch& batch) {
  FingerprintSession& s = fp_session(item.meta.stream_id);
  s.pending.clear();
  for (const std::uint64_t b : batch.boundaries) s.cutter.push(b);
  s.cutter.drain_forced(batch.payload_end);
  GpuFingerprintResult fr = fingerprint_on_gpu(
      device_, twins_[item.dev_slot], item.data_len, item.meta.carry,
      item.meta.base_offset, s.pending, s.ctx, kparams_);
  batch.stages.fingerprint = fr.stats.virtual_seconds;
  batch.fingerprint_stats = fr.stats;
  batch.chunk_ends = std::move(s.pending);
  batch.digests = std::move(fr.digests);
  s.pending = {};
}

// eos: closes the stream's trailing chunk. All payload bytes have already
// been absorbed into the carried hash context, so the final digest needs no
// device work beyond the finalize round.
void PipelineEngine::finish_fingerprint(std::uint32_t stream_id,
                                        std::uint64_t total,
                                        BoundaryBatch& batch) {
  const auto it = fp_sessions_.find(stream_id);
  if (it == fp_sessions_.end()) return;  // empty stream: nothing to close
  FingerprintSession& s = *it->second;
  s.pending.clear();
  s.cutter.finish(total);
  SHREDDER_CHECK_MSG(s.pending.size() <= 1,
                     "fingerprint eos resolved more than the trailing chunk");
  if (!s.pending.empty()) {
    batch.chunk_ends = std::move(s.pending);
    batch.digests.push_back(s.ctx.finish());
  }
  fp_sessions_.erase(it);
}

void PipelineEngine::kernel_loop() {
  try {
    while (auto item = to_kernel_.pop()) {
      BoundaryBatch batch;
      batch.stream_id = item->meta.stream_id;
      batch.seq = item->meta.seq;
      if (item->meta.eos) {
        batch.eos = true;
        // For eos markers base_offset carries the stream's total byte count
        // so the consumer can finalize without extra synchronization.
        batch.payload_end = item->meta.base_offset;
        if (config_.fingerprint) {
          finish_fingerprint(batch.stream_id, batch.payload_end, batch);
        }
        if (!to_store_.push(std::move(batch))) return;
        continue;
      }
      GpuChunkResult kr = chunk_on_gpu(
          device_, twins_[item->dev_slot], item->data_len, item->meta.carry,
          item->meta.base_offset, tables_, chunker_, kparams_);
      batch.stages.reader = item->meta.reader_seconds;
      batch.stages.transfer = item->transfer_seconds;
      batch.stages.kernel = kr.stats.virtual_seconds;
      batch.kernel_stats = kr.stats;
      batch.boundaries = std::move(kr.boundaries);
      batch.payload_end = item->meta.base_offset + item->data_len;
      batch.sched_credit = item->meta.sched_credit;
      batch.queue_depth = item->meta.queue_depth;
      if (m_reader_s_ != nullptr) {
        m_reader_s_->observe(batch.stages.reader);
        m_h2d_s_->observe(batch.stages.transfer);
        m_kernel_s_->observe(batch.stages.kernel);
      }
      if (config_.fingerprint) {
        // The hash kernel reads the same resident twin, so it must finish
        // before the twin is released; the next buffer's H2D still overlaps
        // on the other twin — exactly the copy/compute overlap of §4.1.1.
        fingerprint_batch(*item, batch);
        if (m_fingerprint_s_ != nullptr) {
          m_fingerprint_s_->observe(batch.stages.fingerprint);
        }
      }
      // The staged bytes always ride back with the batch: slot-backed lease
      // in streams modes, the already-spliced host vector in basic mode.
      // Non-retaining consumers drop the batch and the storage frees itself.
      batch.payload = item->lease
                          ? std::move(item->lease)
                          : SlotLease::from_owned(std::move(item->meta.data));
      batch.payload_carry = item->meta.carry;
      release_twin();
      if (!to_store_.push(std::move(batch))) return;
    }
    to_store_.close();
  } catch (...) {
    record_error_and_unblock();
  }
}

std::optional<BoundaryBatch> PipelineEngine::next_batch() {
  auto batch = to_store_.pop();
  if (!batch.has_value()) {
    MutexLock lock(error_mutex_);
    if (error_) {
      auto err = error_;
      error_ = nullptr;
      std::rethrow_exception(err);
    }
  }
  return batch;
}

}  // namespace shredder::core
