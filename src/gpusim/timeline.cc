#include "gpusim/timeline.h"

#include <algorithm>
#include <stdexcept>

namespace shredder::gpu {

GpuTimeline::GpuTimeline(std::size_t streams) : stream_free_(streams, 0.0) {
  if (streams == 0) throw std::invalid_argument("GpuTimeline: streams >= 1");
}

std::size_t GpuTimeline::add_stream() {
  stream_free_.push_back(0.0);
  return stream_free_.size() - 1;
}

double GpuTimeline::enqueue(std::size_t stream, EngineKind engine,
                            double duration, double earliest_start) {
  if (stream >= stream_free_.size()) {
    throw std::invalid_argument("GpuTimeline: bad stream index");
  }
  if (duration < 0 || earliest_start < 0) {
    throw std::invalid_argument("GpuTimeline: negative duration");
  }
  const auto e = static_cast<std::size_t>(engine);
  const double start =
      std::max({stream_free_[stream], engine_free_[e], earliest_start});
  const double finish = start + duration;
  stream_free_[stream] = finish;
  engine_free_[e] = finish;
  engine_busy_[e] += duration;
  makespan_ = std::max(makespan_, finish);
  return finish;
}

double GpuTimeline::stream_time(std::size_t stream) const {
  if (stream >= stream_free_.size()) {
    throw std::invalid_argument("GpuTimeline: bad stream index");
  }
  return stream_free_[stream];
}

double GpuTimeline::makespan() const noexcept { return makespan_; }

double GpuTimeline::engine_busy(EngineKind engine) const noexcept {
  return engine_busy_[static_cast<std::size_t>(engine)];
}

double pipeline_makespan(const std::vector<double>& stage_seconds,
                         std::uint64_t n_buffers, std::size_t slots) {
  if (stage_seconds.empty()) {
    throw std::invalid_argument("pipeline_makespan: no stages");
  }
  if (slots == 0) {
    throw std::invalid_argument("pipeline_makespan: slots must be >= 1");
  }
  for (double d : stage_seconds) {
    if (d < 0) throw std::invalid_argument("pipeline_makespan: negative stage");
  }
  const std::size_t stages = stage_seconds.size();
  // finish[s] = finish time of the most recent buffer through stage s.
  std::vector<double> stage_finish(stages, 0.0);
  // Completion time of each buffer (ring-slot reuse constraint).
  std::vector<double> buffer_done;
  buffer_done.reserve(static_cast<std::size_t>(n_buffers));
  for (std::uint64_t i = 0; i < n_buffers; ++i) {
    double t = 0.0;
    // Ring slot: buffer i reuses the slot of buffer i - slots.
    if (i >= slots) t = buffer_done[static_cast<std::size_t>(i - slots)];
    for (std::size_t s = 0; s < stages; ++s) {
      const double start = std::max(t, stage_finish[s]);
      t = start + stage_seconds[s];
      stage_finish[s] = t;
    }
    buffer_done.push_back(t);
  }
  return buffer_done.empty() ? 0.0 : buffer_done.back();
}

}  // namespace shredder::gpu
