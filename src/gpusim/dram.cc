#include "gpusim/dram.h"

#include <cmath>

namespace shredder::gpu {

DramAddress map_address(const DeviceSpec& spec, std::uint64_t addr) noexcept {
  const std::uint64_t row_index = addr / spec.row_bytes;
  const auto total_banks = static_cast<std::uint64_t>(spec.total_banks());
  const std::uint64_t bank_linear = row_index % total_banks;
  return DramAddress{
      .channel = static_cast<int>(bank_linear %
                                  static_cast<std::uint64_t>(spec.mem_channels)),
      .bank = static_cast<int>(bank_linear /
                               static_cast<std::uint64_t>(spec.mem_channels)),
      .row = row_index / total_banks,
  };
}

DramSimulator::DramSimulator(const DeviceSpec& spec)
    : spec_(spec),
      open_row_(static_cast<std::size_t>(spec.total_banks()), kNoRow) {}

void DramSimulator::access(std::uint64_t addr, std::uint64_t bytes) noexcept {
  if (bytes == 0) return;
  // Round the touched range out to whole bursts.
  const std::uint64_t burst = spec_.burst_bytes;
  std::uint64_t first = addr / burst * burst;
  const std::uint64_t last = (addr + bytes - 1) / burst * burst;
  for (std::uint64_t a = first; a <= last; a += burst) {
    const DramAddress where = map_address(spec_, a);
    const std::size_t slot =
        static_cast<std::size_t>(where.channel) *
            static_cast<std::size_t>(spec_.banks_per_channel) +
        static_cast<std::size_t>(where.bank);
    ++stats_.transactions;
    stats_.bytes_fetched += burst;
    if (open_row_[slot] != where.row) {
      if (open_row_[slot] != kNoRow) ++stats_.row_switches;
      open_row_[slot] = where.row;
    }
  }
}

void DramSimulator::reset() noexcept {
  for (auto& r : open_row_) r = kNoRow;
  stats_ = DramStats{};
}

double estimate_row_switch_fraction(const DeviceSpec& spec,
                                    std::uint64_t n_streams,
                                    std::uint64_t txn_bytes) noexcept {
  const double banks = static_cast<double>(spec.total_banks());
  // A lone sequential stream only switches when it leaves a row (and rows
  // interleave across banks, so returning to the same bank means a new row).
  const double sequential_fraction =
      static_cast<double>(txn_bytes) / static_cast<double>(spec.row_bytes);
  if (n_streams <= 1) return std::min(1.0, sequential_fraction);
  // Probability that a given stream currently shares its bank with at least
  // one other stream (balls-in-bins): those accesses alternate rows within
  // the bank and essentially always switch.
  const double p_share =
      1.0 - std::pow(1.0 - 1.0 / banks, static_cast<double>(n_streams - 1));
  return std::min(1.0, p_share + (1.0 - p_share) * sequential_fraction);
}

double dram_time_seconds(const DeviceSpec& spec, std::uint64_t transactions,
                         double row_switch_fraction) noexcept {
  const double per_channel_bw =
      spec.mem_clock_bw / static_cast<double>(spec.mem_channels);
  const double burst_occupancy_s =
      static_cast<double>(spec.burst_bytes) / per_channel_bw;
  const double per_txn_s =
      burst_occupancy_s + row_switch_fraction * spec.row_switch_ns * 1e-9;
  return static_cast<double>(transactions) * per_txn_s /
         static_cast<double>(spec.mem_channels);
}

}  // namespace shredder::gpu
