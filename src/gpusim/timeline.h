// Virtual-time scheduling of GPU operations and pipelines.
//
// GpuTimeline models the Fermi engine layout: one H2D copy engine, one D2H
// copy engine and one compute engine, fed by per-stream FIFOs. An operation
// starts when both its stream's previous operation and its engine are free —
// which is exactly what makes double buffering (§4.1.1) overlap copy with
// compute across two streams while a single stream serializes.
//
// pipeline_makespan() schedules a linear multi-stage pipeline (§4.2,
// Figure 8): stage s of buffer i starts when stage s-1 of buffer i is done,
// stage s has finished buffer i-1, and a ring slot is free (buffer i-slots
// has fully drained). This produces Figure 9's speedups.
#pragma once

#include <cstdint>
#include <vector>

namespace shredder::gpu {

enum class EngineKind { kCopyH2D, kCopyD2H, kCompute };

class GpuTimeline {
 public:
  // Creates `streams` FIFO streams (CUDA streams). At least 1.
  explicit GpuTimeline(std::size_t streams);

  // Adds one more stream (tenant sessions open dynamically in the service);
  // returns its index.
  std::size_t add_stream();

  std::size_t num_streams() const noexcept { return stream_free_.size(); }

  // Enqueues an operation of `duration` seconds on `stream` using `engine`;
  // returns its virtual finish time. The operation starts no earlier than
  // `earliest_start` (e.g. when the producing client has delivered the
  // bytes), no earlier than the stream's previous operation, and no earlier
  // than the engine frees up.
  double enqueue(std::size_t stream, EngineKind engine, double duration,
                 double earliest_start = 0.0);

  // Finish time of the last operation enqueued on `stream` so far.
  double stream_time(std::size_t stream) const;

  // Finish time of all work enqueued so far.
  double makespan() const noexcept;

  // Total busy time of one engine (for utilisation reporting).
  double engine_busy(EngineKind engine) const noexcept;

 private:
  std::vector<double> stream_free_;
  double engine_free_[3] = {0, 0, 0};
  double engine_busy_[3] = {0, 0, 0};
  double makespan_ = 0;
};

// Makespan of `n` buffers through a pipeline whose per-buffer stage
// durations are `stage_seconds` (same for every buffer), admitting at most
// `slots` buffers in flight. `slots >= stages` gives the full pipeline;
// slots == 1 degenerates to fully serialized execution.
double pipeline_makespan(const std::vector<double>& stage_seconds,
                         std::uint64_t n_buffers, std::size_t slots);

}  // namespace shredder::gpu
