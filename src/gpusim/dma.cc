#include "gpusim/dma.h"

#include <algorithm>

namespace shredder::gpu {

double dma_seconds(const DeviceSpec& spec, std::uint64_t bytes, Direction dir,
                   HostMemKind kind) noexcept {
  if (bytes == 0) return 0.0;
  const double link_bw = dir == Direction::kHostToDevice ? spec.h2d_pinned_bw
                                                         : spec.d2h_pinned_bw;
  const double wire_s = static_cast<double>(bytes) / link_bw;
  if (kind == HostMemKind::kPinned) {
    return spec.dma_fixed_pinned_s + wire_s;
  }
  // Pageable: staged through bounce buffers. The CPU-side staging work (per-
  // chunk driver cost + memcpy) pipelines against the PCIe transfers, so the
  // total is the slower of the two paths.
  const std::uint64_t chunk = bytes >= spec.staging_batch_threshold
                                  ? spec.staging_chunk_large
                                  : spec.staging_chunk_small;
  const std::uint64_t n_chunks = (bytes + chunk - 1) / chunk;
  const double staging_s =
      static_cast<double>(n_chunks) * spec.staging_per_chunk_s +
      static_cast<double>(bytes) / spec.staging_memcpy_bw;
  return spec.dma_fixed_pageable_s + std::max(wire_s, staging_s);
}

double dma_effective_bw(const DeviceSpec& spec, std::uint64_t bytes,
                        Direction dir, HostMemKind kind) noexcept {
  if (bytes == 0) return 0.0;
  return static_cast<double>(bytes) / dma_seconds(spec, bytes, dir, kind);
}

}  // namespace shredder::gpu
