#include "gpusim/device.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "common/check.h"
#include "common/timer.h"

namespace shredder::gpu {

BlockCtx::BlockCtx(int block_idx, const LaunchConfig& config,
                   const DeviceSpec& spec, LaunchAccumulators& acc,
                   MutableByteSpan shared,
                   std::vector<std::uint64_t>* exact_addrs)
    : block_idx_(block_idx),
      config_(&config),
      spec_(&spec),
      acc_(&acc),
      shared_(shared),
      exact_addrs_(exact_addrs) {}

void BlockCtx::record_global_read(std::uint64_t addr,
                                  std::uint64_t bytes) noexcept {
  if (bytes == 0) return;
  const std::uint64_t txn = config_->txn_bytes;
  const std::uint64_t n = (bytes + txn - 1) / txn;
  acc_->transactions.fetch_add(n, std::memory_order_relaxed);
  if (exact_addrs_ != nullptr) {
    for (std::uint64_t i = 0; i < n; ++i) {
      exact_addrs_->push_back(addr + i * txn);
    }
  }
}

DeviceBuffer::DeviceBuffer(Device* device, std::size_t size, std::uint64_t addr)
    : device_(device), data_(size), device_addr_(addr) {}

DeviceBuffer::DeviceBuffer(DeviceBuffer&& other) noexcept
    : device_(other.device_),
      data_(std::move(other.data_)),
      device_addr_(other.device_addr_) {
  other.device_ = nullptr;
  other.data_.clear();
}

DeviceBuffer& DeviceBuffer::operator=(DeviceBuffer&& other) noexcept {
  if (this != &other) {
    if (device_ != nullptr) device_->release(data_.size());
    device_ = other.device_;
    data_ = std::move(other.data_);
    device_addr_ = other.device_addr_;
    other.device_ = nullptr;
    other.data_.clear();
  }
  return *this;
}

DeviceBuffer::~DeviceBuffer() {
  if (device_ != nullptr) device_->release(data_.size());
}

Device::Device(DeviceSpec spec, std::size_t worker_threads)
    : spec_(spec), pool_(worker_threads) {}

DeviceBuffer Device::alloc(std::size_t size) {
  if (size == 0) throw std::invalid_argument("Device::alloc: size 0");
  std::uint64_t addr = 0;
  {
    MutexLock lock(mutex_);
    if (allocated_ + size > spec_.global_mem_bytes) {
      throw std::runtime_error(
          "Device::alloc: out of device memory (2.6 GB simulated capacity)");
    }
    allocated_ += size;
    // Device addresses are row-aligned so buffers start on a fresh row.
    addr = next_addr_;
    const std::uint64_t align = spec_.row_bytes;
    next_addr_ += (size + align - 1) / align * align;
  }
  return DeviceBuffer(this, size, addr);
}

std::uint64_t Device::allocated_bytes() const noexcept {
  MutexLock lock(mutex_);
  return allocated_;
}

void Device::release(std::uint64_t bytes) noexcept {
  MutexLock lock(mutex_);
  SHREDDER_CHECK(allocated_ >= bytes);
  allocated_ -= bytes;
}

double Device::memcpy_h2d(DeviceBuffer& dst, std::size_t dst_offset,
                          ByteSpan src, HostMemKind kind) {
  if (dst_offset + src.size() > dst.size()) {
    throw std::invalid_argument("memcpy_h2d: out of range");
  }
  std::memcpy(dst.span().data() + dst_offset, src.data(), src.size());
  return dma_seconds(spec_, src.size(), Direction::kHostToDevice, kind);
}

double Device::memcpy_d2h(MutableByteSpan dst, const DeviceBuffer& src,
                          std::size_t src_offset, HostMemKind kind) {
  if (src_offset + dst.size() > src.size()) {
    throw std::invalid_argument("memcpy_d2h: out of range");
  }
  std::memcpy(dst.data(), src.span().data() + src_offset, dst.size());
  return dma_seconds(spec_, dst.size(), Direction::kDeviceToHost, kind);
}

KernelRunStats Device::launch(const LaunchConfig& config, const KernelFn& fn) {
  if (config.blocks <= 0 || config.threads_per_block <= 0) {
    throw std::invalid_argument("launch: blocks/threads must be positive");
  }
  if (config.txn_bytes == 0) {
    throw std::invalid_argument("launch: txn_bytes must be positive");
  }
  Stopwatch wall;
  LaunchAccumulators acc;

  // Per-block shared-memory staging and (optionally) exact address traces.
  std::vector<std::vector<std::uint8_t>> shared(
      static_cast<std::size_t>(config.blocks));
  std::vector<std::vector<std::uint64_t>> traces(
      config.exact_dram ? static_cast<std::size_t>(config.blocks) : 0);

  pool_.for_each_index(static_cast<std::size_t>(config.blocks),
                       [&](std::size_t b) {
                         shared[b].resize(spec_.shared_mem_per_sm);
                         BlockCtx ctx(static_cast<int>(b), config, spec_, acc,
                                      {shared[b].data(), shared[b].size()},
                                      config.exact_dram ? &traces[b] : nullptr);
                         fn(ctx);
                       });

  KernelRunStats stats;
  stats.bytes_processed = acc.bytes_processed.load();
  stats.transactions = acc.transactions.load();
  stats.shared_staged_bytes = acc.shared_staged_bytes.load();
  stats.bytes_fetched = stats.transactions * spec_.burst_bytes;

  // Row-switch fraction: exact replay (SIMT round-robin across block traces)
  // or the analytic estimator.
  if (config.exact_dram) {
    DramSimulator dram(spec_);
    bool any = true;
    std::vector<std::size_t> cursor(traces.size(), 0);
    while (any) {
      any = false;
      for (std::size_t b = 0; b < traces.size(); ++b) {
        if (cursor[b] < traces[b].size()) {
          dram.access(traces[b][cursor[b]++], config.txn_bytes);
          any = true;
        }
      }
    }
    stats.row_switch_fraction = dram.stats().row_switch_fraction();
  } else {
    const std::uint64_t streams =
        config.concurrent_streams != 0
            ? config.concurrent_streams
            : static_cast<std::uint64_t>(config.total_threads());
    stats.row_switch_fraction =
        estimate_row_switch_fraction(spec_, streams, config.txn_bytes);
  }

  const double cpb = config.cycles_per_byte > 0 ? config.cycles_per_byte
                                                : spec_.compute_cycles_per_byte;
  stats.compute_seconds =
      static_cast<double>(stats.bytes_processed) * cpb /
      (static_cast<double>(spec_.total_sps()) * spec_.clock_hz);
  stats.memory_seconds =
      dram_time_seconds(spec_, stats.transactions, stats.row_switch_fraction);
  stats.launch_seconds = stats.bytes_processed >= spec_.launch_large_threshold
                             ? spec_.launch_large_s
                             : spec_.launch_small_s;
  stats.virtual_seconds =
      stats.launch_seconds + std::max(stats.compute_seconds, stats.memory_seconds);
  stats.wall_seconds = wall.elapsed_seconds();
  return stats;
}

}  // namespace shredder::gpu
