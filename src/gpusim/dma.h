// DMA transfer-time model for the PCIe link between host and device
// (paper §4.1.1, Figure 3).
//
// Pinned (page-locked) host memory is DMA'd directly: a fixed setup cost
// plus bytes at the PCIe rate. Pageable memory bounces through driver
// staging buffers: each staging chunk pays a driver cost and a host memcpy,
// overlapped with the PCIe burst of the previous chunk, which is why
// pageable transfers saturate only at much larger buffer sizes.
#pragma once

#include <cstdint>

#include "gpusim/spec.h"

namespace shredder::gpu {

enum class Direction { kHostToDevice, kDeviceToHost };
enum class HostMemKind { kPageable, kPinned };

// Modelled wall time of a single DMA transfer, seconds.
double dma_seconds(const DeviceSpec& spec, std::uint64_t bytes, Direction dir,
                   HostMemKind kind) noexcept;

// Effective bandwidth (bytes/s) for convenience; 0 for empty transfers.
double dma_effective_bw(const DeviceSpec& spec, std::uint64_t bytes,
                        Direction dir, HostMemKind kind) noexcept;

}  // namespace shredder::gpu
