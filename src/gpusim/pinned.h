// Pinned (page-locked) host memory: real page-aligned buffers plus the
// allocation cost model behind Figure 6 and the ring-buffer optimization of
// §4.1.2.
//
// We cannot page-lock memory inside this container, so PinnedBuffer holds
// ordinary page-aligned memory (functionally identical for the simulator's
// DMA engine) and the *cost* of pinning is modelled from DeviceSpec.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/bytes.h"
#include "gpusim/spec.h"

namespace shredder::gpu {

// Modelled cost (seconds) of allocating + page-locking `bytes`.
double pinned_alloc_seconds(const DeviceSpec& spec, std::uint64_t bytes) noexcept;

// Modelled cost (seconds) of a pageable allocation forced resident with
// bzero (the paper's measurement methodology for Figure 6).
double pageable_alloc_seconds(const DeviceSpec& spec,
                              std::uint64_t bytes) noexcept;

// Modelled cost (seconds) of memcpy'ing a pageable buffer into an already-
// pinned region (the steady-state cost once the ring buffer is in place).
double pageable_to_pinned_copy_seconds(const DeviceSpec& spec,
                                       std::uint64_t bytes) noexcept;

// A page-aligned host buffer standing in for a CUDA pinned allocation.
class PinnedBuffer {
 public:
  PinnedBuffer() = default;
  explicit PinnedBuffer(std::size_t size);

  MutableByteSpan span() noexcept { return {data_.get(), size_}; }
  ByteSpan span() const noexcept { return {data_.get(), size_}; }
  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

 private:
  struct AlignedDelete {
    void operator()(std::uint8_t* p) const noexcept { ::operator delete[](p, std::align_val_t{4096}); }
  };
  std::unique_ptr<std::uint8_t[], AlignedDelete> data_;
  std::size_t size_ = 0;
};

// Circular ring of pinned buffers (§4.1.2, Figure 7): allocated once at
// construction and handed out round-robin, so the per-iteration pinned-
// allocation cost drops to zero after startup. `acquire` returns the next
// slot; the caller is responsible for not reusing a slot that is still in
// flight (the Shredder pipeline guarantees this by sizing the ring to the
// number of in-flight pipeline stages).
class PinnedRing {
 public:
  // Throws std::invalid_argument if slots == 0 or slot_size == 0.
  PinnedRing(const DeviceSpec& spec, std::size_t slots, std::size_t slot_size);

  std::size_t slots() const noexcept { return buffers_.size(); }
  std::size_t slot_size() const noexcept { return slot_size_; }

  // Modelled one-time construction cost (all slots pinned at startup).
  double construction_cost_seconds() const noexcept { return construction_cost_s_; }

  struct Slot {
    std::size_t index;
    MutableByteSpan span;
  };
  Slot acquire() noexcept;

  // Direct access to one slot's storage, for callers that manage slot
  // ownership themselves (the PipelineEngine leases indices explicitly).
  MutableByteSpan slot_span(std::size_t index) noexcept {
    return buffers_[index].span();
  }

 private:
  std::size_t slot_size_;
  std::vector<PinnedBuffer> buffers_;
  std::size_t next_ = 0;
  double construction_cost_s_ = 0.0;
};

}  // namespace shredder::gpu
