// GDDR5 bank/row accounting (paper §2.3).
//
// Memory is organised as channels x banks x rows; a bank's sense amplifier
// holds one open row. Accessing a different row in the same bank costs a
// PRE (write back) + ACT (activate) pair, which is the "bank conflict"
// phenomenon that makes the unoptimized chunking kernel memory-bound.
//
// Two implementations of the same accounting:
//  * DramSimulator — exact: tracks every bank's open row transaction by
//    transaction. Used by tests and small runs.
//  * RowSwitchEstimator — analytic: closed-form expected row-switch fraction
//    for K interleaved sequential streams. Used by kernel launches, where
//    running the exact simulator per transaction would dominate runtime.
// A gtest cross-validates the two on identical access patterns.
#pragma once

#include <cstdint>
#include <vector>

#include "gpusim/spec.h"

namespace shredder::gpu {

// Address mapping: consecutive rows interleave across banks (then channels),
// the standard layout for streaming bandwidth.
struct DramAddress {
  int channel;
  int bank;        // bank within channel
  std::uint64_t row;
};

DramAddress map_address(const DeviceSpec& spec, std::uint64_t addr) noexcept;

struct DramStats {
  std::uint64_t transactions = 0;
  std::uint64_t row_switches = 0;
  std::uint64_t bytes_fetched = 0;  // full bursts

  double row_switch_fraction() const noexcept {
    return transactions == 0
               ? 0.0
               : static_cast<double>(row_switches) /
                     static_cast<double>(transactions);
  }
};

// Exact per-transaction simulator.
class DramSimulator {
 public:
  explicit DramSimulator(const DeviceSpec& spec);

  // One transaction touching [addr, addr+bytes). Transactions are rounded up
  // to full bursts; a burst that crosses rows counts each row it opens.
  void access(std::uint64_t addr, std::uint64_t bytes) noexcept;

  const DramStats& stats() const noexcept { return stats_; }
  void reset() noexcept;

 private:
  DeviceSpec spec_;
  // open_row_[channel * banks_per_channel + bank]; kNoRow when cold.
  static constexpr std::uint64_t kNoRow = ~std::uint64_t{0};
  std::vector<std::uint64_t> open_row_;
  DramStats stats_;
};

// Analytic expectation for `n_streams` concurrent sequential readers, each
// issuing `txn_bytes` transactions round-robin, streams spaced far apart
// (> banks * row_bytes), which is exactly the unoptimized kernel's pattern.
// For the coalesced kernel, n_streams is the number of concurrently fetching
// thread blocks and txn_bytes the coalesced transaction size.
double estimate_row_switch_fraction(const DeviceSpec& spec,
                                    std::uint64_t n_streams,
                                    std::uint64_t txn_bytes) noexcept;

// Seconds spent in device memory for `transactions` bursts with the given
// row-switch fraction: per transaction, burst occupancy (bandwidth) plus the
// exposed PRE/ACT serialization on switches, spread over the channels.
double dram_time_seconds(const DeviceSpec& spec, std::uint64_t transactions,
                         double row_switch_fraction) noexcept;

}  // namespace shredder::gpu
