// Calibration constants for the simulated GPU and host.
//
// DeviceSpec defaults model the NVidia Tesla C2050 (Fermi) of the paper's
// testbed (Table 1 / §5.3); HostSpec models the 12-core Xeon X5650 host.
// Every timing the simulator reports derives from these numbers, so DESIGN.md
// §5 documents each value's provenance. Changing a field re-calibrates the
// whole stack coherently (benches expose some as sweeps).
#pragma once

#include <cstdint>

namespace shredder::gpu {

struct DeviceSpec {
  // --- Compute (paper §5.3: 14 SMs x 32 SPs @ 1.15 GHz) ---
  int num_sms = 14;
  int sps_per_sm = 32;
  int warp_size = 32;
  double clock_hz = 1.15e9;
  // Cost of the Rabin inner loop (table lookups, shifts, xor, compare) on a
  // simple in-order scalar core. Calibrated so the coalesced kernel's
  // compute-bound asymptote matches Fig 11 (~0.1 s/GB over 448 SPs).
  double compute_cycles_per_byte = 50.0;

  // --- Device (global) memory: GDDR5, Table 1 + §2.3 ---
  std::uint64_t global_mem_bytes = 2600ull * 1024 * 1024;  // 2.6 GB
  double mem_clock_bw = 144e9;     // peak aggregate bandwidth, B/s
  int mem_channels = 6;            // C2050: 6 x 64-bit GDDR5 channels
  int banks_per_channel = 16;
  std::uint64_t row_bytes = 2048;  // sense-amplifier row size
  // Every DRAM transaction fetches a full 128 B burst (Fermi transaction
  // granularity), regardless of how many bytes the threads asked for.
  std::uint64_t burst_bytes = 128;
  // Exposed serialization cost of PRE+ACT when a transaction lands on a bank
  // whose sense amplifier holds a different row (§2.3). Calibrated with
  // Fig 11: ~70 ns per conflicted transaction.
  double row_switch_ns = 70.0;
  int mem_latency_cycles = 500;    // Table 1: 400-600 cycles
  std::uint64_t shared_mem_per_sm = 48ull * 1024;  // 48 KB on-chip
  int shared_banks = 32;

  // Per-thread read granularity of the unoptimized kernel (each thread walks
  // its own sub-stream; the hardware still fetches full bursts).
  std::uint64_t uncoalesced_txn_bytes = 16;
  // Half-warp cooperative fetch: 16 threads x 8 B = one 128 B transaction.
  std::uint64_t coalesced_txn_bytes = 128;

  // --- Fingerprint (SHA-256) kernel, second storage primitive offloaded to
  // the device (Al-Kiswany et al., "GPUs as Storage System Accelerators") ---
  // SHA-256 compression on a scalar SP: 64 rounds of 32-bit ALU work per
  // 64-byte block. ~100 cycles/byte puts the 448-SP aggregate near 5 GB/s,
  // in the range Fermi-era GPU hashing studies report.
  double sha256_cycles_per_byte = 100.0;
  // Fixed per-chunk cost (schedule + padding + final digest round + output
  // write) of hashing one chunk inside the fingerprint kernel.
  double sha256_per_chunk_s = 0.3e-6;

  // --- PCIe / DMA (Table 1, Fig 3) ---
  double h2d_pinned_bw = 5.406e9;
  double d2h_pinned_bw = 5.129e9;
  double dma_fixed_pinned_s = 12e-6;
  double dma_fixed_pageable_s = 35e-6;
  // Pageable transfers bounce through driver staging buffers: 64 KB chunks
  // (1 MB once the transfer is >= 32 MB, when the driver batches), each with
  // a per-chunk driver cost, staged at host-memcpy speed, overlapped with
  // the PCIe burst of the previous chunk.
  double staging_memcpy_bw = 6.0e9;
  double staging_per_chunk_s = 6e-6;
  std::uint64_t staging_chunk_small = 64ull * 1024;
  std::uint64_t staging_chunk_large = 1024ull * 1024;
  std::uint64_t staging_batch_threshold = 32ull * 1024 * 1024;

  // --- Kernel launch (Table 2) ---
  double launch_small_s = 30e-6;
  double launch_large_s = 85e-6;
  std::uint64_t launch_large_threshold = 128ull * 1024 * 1024;

  // --- Pinned-memory allocation (Fig 6) ---
  // Page-locking walks and locks every page and zeroes it: ~0.67 GB/s.
  double pin_fixed_s = 7e-6;
  double pin_per_byte_s = 1.5e-9;
  // Pageable allocation is lazy; the paper forces allocation with bzero.
  double pageable_touch_bw = 8.0e9;
  double pageable_fixed_s = 2e-6;

  int total_sps() const noexcept { return num_sms * sps_per_sm; }
  int total_banks() const noexcept { return mem_channels * banks_per_channel; }
};

struct HostSpec {
  // 12 x Intel Xeon X5650 @ 2.67 GHz (paper §5.3).
  int cores = 12;
  double clock_hz = 2.67e9;
  // End-to-end host-only chunking throughput of the pthreads implementation
  // (Fig 12 calibration): with the Hoard-like arena allocator and without.
  double pthreads_chunking_bw_hoard = 0.40e9;
  double pthreads_chunking_bw_malloc = 0.30e9;
  // Reader (SAN) I/O bandwidth, Table 1.
  double reader_bw = 2.0e9;
  // Plain host memcpy bandwidth (used by the reader when the source is
  // already resident, and by pageable->pinned staging copies).
  double memcpy_bw = 6.0e9;
};

}  // namespace shredder::gpu
