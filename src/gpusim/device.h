// Device facade: allocation of device (global) memory, DMA copies, and
// kernel launches — the simulated equivalent of the CUDA runtime surface
// Shredder uses.
//
// Real data always moves (copies are real memcpys; kernels do real work);
// every operation additionally returns its *virtual* duration under the
// DeviceSpec timing model. Virtual-time composition across operations is the
// caller's job, via GpuTimeline (double buffering) or pipeline_makespan.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/annotations.h"
#include "common/bytes.h"
#include "common/mutex.h"
#include "common/thread_pool.h"
#include "gpusim/dma.h"
#include "gpusim/dram.h"
#include "gpusim/kernel.h"
#include "gpusim/spec.h"

namespace shredder::gpu {

class Device;

// Global-memory buffer. Holds real host storage standing in for GDDR5.
// The owning Device must outlive its buffers.
class DeviceBuffer {
 public:
  DeviceBuffer() = default;
  DeviceBuffer(DeviceBuffer&&) noexcept;
  DeviceBuffer& operator=(DeviceBuffer&&) noexcept;
  DeviceBuffer(const DeviceBuffer&) = delete;
  DeviceBuffer& operator=(const DeviceBuffer&) = delete;
  ~DeviceBuffer();

  MutableByteSpan span() noexcept { return {data_.data(), data_.size()}; }
  ByteSpan span() const noexcept { return {data_.data(), data_.size()}; }
  std::size_t size() const noexcept { return data_.size(); }
  // Base device address of this buffer in the simulated address space
  // (used by the DRAM bank model).
  std::uint64_t device_addr() const noexcept { return device_addr_; }

 private:
  friend class Device;
  DeviceBuffer(Device* device, std::size_t size, std::uint64_t addr);

  Device* device_ = nullptr;
  std::vector<std::uint8_t> data_;
  std::uint64_t device_addr_ = 0;
};

class Device {
 public:
  // `worker_threads` host threads simulate the SMs (0 = hardware
  // concurrency).
  explicit Device(DeviceSpec spec = DeviceSpec{}, std::size_t worker_threads = 0);

  const DeviceSpec& spec() const noexcept { return spec_; }

  // Allocates global memory; throws std::bad_alloc-like std::runtime_error
  // when the 2.6 GB device capacity would be exceeded.
  DeviceBuffer alloc(std::size_t size);

  std::uint64_t allocated_bytes() const noexcept;

  // Synchronous copies: real memcpy + modelled DMA seconds returned.
  double memcpy_h2d(DeviceBuffer& dst, std::size_t dst_offset, ByteSpan src,
                    HostMemKind kind);
  double memcpy_d2h(MutableByteSpan dst, const DeviceBuffer& src,
                    std::size_t src_offset, HostMemKind kind);

  // Runs `fn` once per block on the worker pool and converts the recorded
  // work into virtual time.
  KernelRunStats launch(const LaunchConfig& config, const KernelFn& fn);

 private:
  friend class DeviceBuffer;
  void release(std::uint64_t bytes) noexcept;

  DeviceSpec spec_;
  ThreadPool pool_;
  mutable Mutex mutex_;
  std::uint64_t allocated_ GUARDED_BY(mutex_) = 0;
  // Bump allocator for device addresses.
  std::uint64_t next_addr_ GUARDED_BY(mutex_) = 0;
};

}  // namespace shredder::gpu
