#include "gpusim/pinned.h"

#include <cstring>
#include <new>
#include <stdexcept>

namespace shredder::gpu {

double pinned_alloc_seconds(const DeviceSpec& spec,
                            std::uint64_t bytes) noexcept {
  return spec.pin_fixed_s + static_cast<double>(bytes) * spec.pin_per_byte_s;
}

double pageable_alloc_seconds(const DeviceSpec& spec,
                              std::uint64_t bytes) noexcept {
  return spec.pageable_fixed_s +
         static_cast<double>(bytes) / spec.pageable_touch_bw;
}

double pageable_to_pinned_copy_seconds(const DeviceSpec& spec,
                                       std::uint64_t bytes) noexcept {
  return static_cast<double>(bytes) / spec.staging_memcpy_bw;
}

PinnedBuffer::PinnedBuffer(std::size_t size) : size_(size) {
  if (size == 0) throw std::invalid_argument("PinnedBuffer: size 0");
  auto* raw = static_cast<std::uint8_t*>(
      ::operator new[](size, std::align_val_t{4096}));
  std::memset(raw, 0, size);  // force residency, as the paper does with bzero
  data_.reset(raw);
}

PinnedRing::PinnedRing(const DeviceSpec& spec, std::size_t slots,
                       std::size_t slot_size)
    : slot_size_(slot_size) {
  if (slots == 0) throw std::invalid_argument("PinnedRing: slots must be >= 1");
  if (slot_size == 0) throw std::invalid_argument("PinnedRing: slot_size 0");
  buffers_.reserve(slots);
  for (std::size_t i = 0; i < slots; ++i) {
    buffers_.emplace_back(slot_size);
    construction_cost_s_ += pinned_alloc_seconds(spec, slot_size);
  }
}

PinnedRing::Slot PinnedRing::acquire() noexcept {
  const std::size_t index = next_;
  next_ = (next_ + 1) % buffers_.size();
  return Slot{index, buffers_[index].span()};
}

}  // namespace shredder::gpu
