// Kernel launch/execution types for the simulated GPU.
//
// A kernel is a C++ callable executed once per thread block (CUDA's dynamic
// block-to-SM scheduling is modelled by a host thread pool). The callable
// does *real* work on real bytes; it reports its memory behaviour through
// BlockCtx so the launch can convert the work into virtual C2050 time:
//
//   virtual time = launch overhead + max(compute time, device-memory time)
//
// compute time  = bytes_processed * cycles_per_byte / (SMs * SPs * clock)
// memory time   = DRAM transaction accounting (gpusim/dram.h) using the
//                 row-switch fraction for the launch's access pattern.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/bytes.h"
#include "gpusim/spec.h"

namespace shredder::gpu {

struct LaunchConfig {
  int blocks = 1;
  int threads_per_block = 128;
  // Compute intensity of this kernel's inner loop, SP cycles per processed
  // byte. Defaults to the Rabin loop cost from DeviceSpec when <= 0.
  double cycles_per_byte = -1.0;
  // Number of concurrent access streams presented to DRAM (the row-switch
  // estimator's input): total threads for the per-thread-substream pattern,
  // ~num_sms for the block-cooperative (coalesced) pattern. When 0, defaults
  // to blocks * threads_per_block.
  std::uint64_t concurrent_streams = 0;
  // Transaction size presented to DRAM by this kernel.
  std::uint64_t txn_bytes = 16;
  // When true, every transaction address is recorded and replayed through
  // the exact DramSimulator in SIMT round-robin order (tests / small runs).
  bool exact_dram = false;

  int total_threads() const noexcept { return blocks * threads_per_block; }
};

struct KernelRunStats {
  double virtual_seconds = 0;   // launch + max(compute, memory)
  double launch_seconds = 0;
  double compute_seconds = 0;
  double memory_seconds = 0;
  double row_switch_fraction = 0;
  std::uint64_t transactions = 0;
  std::uint64_t bytes_processed = 0;
  std::uint64_t bytes_fetched = 0;  // full DRAM bursts
  std::uint64_t shared_staged_bytes = 0;
  double wall_seconds = 0;      // real host time spent simulating

  // Aggregates per-launch stats across buffers. Times/counters add;
  // row_switch_fraction is constant for a fixed launch configuration, so
  // the latest value stands.
  KernelRunStats& operator+=(const KernelRunStats& o) noexcept {
    virtual_seconds += o.virtual_seconds;
    launch_seconds += o.launch_seconds;
    compute_seconds += o.compute_seconds;
    memory_seconds += o.memory_seconds;
    row_switch_fraction = o.row_switch_fraction;
    transactions += o.transactions;
    bytes_processed += o.bytes_processed;
    bytes_fetched += o.bytes_fetched;
    shared_staged_bytes += o.shared_staged_bytes;
    wall_seconds += o.wall_seconds;
    return *this;
  }
};

// Accumulators shared by all blocks of one launch.
struct LaunchAccumulators {
  std::atomic<std::uint64_t> bytes_processed{0};
  std::atomic<std::uint64_t> transactions{0};
  std::atomic<std::uint64_t> shared_staged_bytes{0};
};

// Per-block execution context handed to the kernel callable.
class BlockCtx {
 public:
  BlockCtx(int block_idx, const LaunchConfig& config, const DeviceSpec& spec,
           LaunchAccumulators& acc, MutableByteSpan shared,
           std::vector<std::uint64_t>* exact_addrs);

  int block_idx() const noexcept { return block_idx_; }
  int num_blocks() const noexcept { return config_->blocks; }
  int threads_per_block() const noexcept { return config_->threads_per_block; }
  int total_threads() const noexcept { return config_->total_threads(); }
  const DeviceSpec& spec() const noexcept { return *spec_; }

  // On-chip shared memory of this block's SM (real staging storage, at most
  // DeviceSpec::shared_mem_per_sm bytes).
  MutableByteSpan shared() noexcept { return shared_; }

  // Accounts `bytes` of input consumed by the kernel's compute loop.
  void record_processed(std::uint64_t bytes) noexcept {
    acc_->bytes_processed.fetch_add(bytes, std::memory_order_relaxed);
  }

  // Accounts a global-memory read of `bytes` issued as `txn_bytes`-sized
  // transactions starting at device address `addr`.
  void record_global_read(std::uint64_t addr, std::uint64_t bytes) noexcept;

  // Accounts data staged into shared memory by the cooperative fetch.
  void record_shared_stage(std::uint64_t bytes) noexcept {
    acc_->shared_staged_bytes.fetch_add(bytes, std::memory_order_relaxed);
  }

 private:
  int block_idx_;
  const LaunchConfig* config_;
  const DeviceSpec* spec_;
  LaunchAccumulators* acc_;
  MutableByteSpan shared_;
  std::vector<std::uint64_t>* exact_addrs_;  // non-null in exact_dram mode
};

using KernelFn = std::function<void(BlockCtx&)>;

}  // namespace shredder::gpu
