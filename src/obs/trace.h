// Virtual-time pipeline tracer with Chrome trace-event JSON export
// (docs/observability.md has the track/span mapping and a Perfetto walkthrough).
//
// Everything performance-shaped in this repo happens in *virtual* time —
// GpuTimeline engine clocks, the transport's event loop — so a tracer that
// sampled wall clocks would record the simulator, not the simulated system.
// Tracer instead takes explicit virtual timestamps from the code that
// already computes them: the service emits one span per pipeline stage per
// buffer using the exact start/finish the timeline assigned (so per-track
// busy time equals GpuTimeline::engine_busy by construction), and the
// transport emits one span per wire transmission from its busy-until clocks.
//
// Export is the Chrome trace-event format (`{"traceEvents":[...]}`), which
// Perfetto (https://ui.perfetto.dev) and chrome://tracing load directly:
// each named track becomes a thread row, spans are "X" complete events,
// scheduler/fault marks are "i" instants, and credit/queue-depth series are
// "C" counter events. Timestamps are microseconds of virtual time.
//
// Thread-safe; every record call is one short critical section appending to
// a vector. Tracing is opt-in per run (consumers hold a Tracer* that is null
// when off), so the hot path's disabled cost is a pointer test.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/annotations.h"
#include "common/mutex.h"
#include "obs/registry.h"  // Labels

namespace shredder::obs {

class Tracer {
 public:
  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // Disabling turns every record call into a relaxed load + branch.
  void set_enabled(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }
  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  // A span [start_s, end_s) of virtual time on the named track (e.g.
  // "engine/h2d", "tenant/alpha"). Tracks are created on first use; spans
  // may arrive in any time order (export sorts). end_s < start_s clamps to
  // a zero-duration span at start_s.
  void span(const std::string& track, const std::string& name, double start_s,
            double end_s, const Labels& args = {});

  // A zero-duration mark (a drop, a stall onset, an eos).
  void instant(const std::string& track, const std::string& name, double t_s,
               const Labels& args = {});

  // One point of a numeric time series (scheduler credit, queue depth);
  // Perfetto renders same-named counter events as a stepped graph.
  void counter(const std::string& track, const std::string& name, double t_s,
               double value);

  // Sum of span durations recorded on `track` (0 for unknown tracks) — the
  // cross-check the obs bench runs against GpuTimeline::engine_busy.
  double track_busy(const std::string& track) const;

  std::size_t event_count() const;

  // Chrome trace-event JSON: thread-name metadata per track, then all
  // events sorted by timestamp. Loadable as-is in Perfetto.
  std::string to_json() const;
  // Writes to_json() to `path`; throws std::runtime_error on I/O failure.
  void write_json(const std::string& path) const;

 private:
  struct Event {
    char ph = 'X';  // X = span, i = instant, C = counter
    int tid = 0;
    std::string name;
    double ts_us = 0;
    double dur_us = 0;   // spans only
    double value = 0;    // counters only
    Labels args;
  };

  int track_id_locked(const std::string& track) REQUIRES(mu_);

  mutable Mutex mu_;
  std::vector<Event> events_ GUARDED_BY(mu_);
  std::vector<std::string> tracks_ GUARDED_BY(mu_);  // index = tid - 1
  std::unordered_map<std::string, int> track_ids_ GUARDED_BY(mu_);
  std::atomic<bool> enabled_{true};
};

}  // namespace shredder::obs
