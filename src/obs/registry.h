// Unified metrics registry: named, labeled counters/gauges/timings shared by
// every subsystem (docs/observability.md).
//
// The repo's telemetry grew one struct per layer — TenantReport,
// BackupRunStats, TransportStats, IndexStats, KernelRunStats, LinkStats —
// each plumbed by hand to whoever wanted it. The registry is the common
// sink: a hook site increments a Counter or observes a Timing, and any
// consumer (ServiceHealth, the obs bench, a test) reads one snapshot instead
// of six structs.
//
// Design constraints, in order:
//   * Near-zero cost when disabled: every mutator early-outs on one relaxed
//     atomic load, so hooks can live on per-buffer hot paths unconditionally
//     ("compiled in but disabled" is the bar BENCH_obs.json enforces).
//   * Cheap when enabled: counters/gauges are single relaxed atomics;
//     timings write to a per-thread shard (uncontended mutex on the owning
//     thread) and shards are Welford-merged only at snapshot time.
//   * No behavior change either way: metrics are write-only from the hot
//     path; nothing in the pipeline reads them back.
//
// Metric identity is (name, labels) with labels sorted by key, so
// `timing("stage_seconds", {{"stage","h2d"}})` always lands on the same
// object regardless of call-site label order. Naming scheme:
// `<module>.<noun>_<unit>` with `_total` for counters
// (e.g. "service.bytes_total", "pipeline.stage_seconds").
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/annotations.h"
#include "common/mutex.h"
#include "common/stats.h"

namespace shredder::obs {

// Sorted-by-key label set; the registry canonicalizes order on registration.
using Labels = std::vector<std::pair<std::string, std::string>>;

class Registry;

// Monotonically increasing event/byte count.
class Counter {
 public:
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void add(std::uint64_t n = 1) noexcept {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  friend class Registry;
  explicit Counter(const std::atomic<bool>* enabled) : enabled_(enabled) {}

  const std::atomic<bool>* enabled_;
  std::atomic<std::uint64_t> value_{0};
};

// Last-write-wins instantaneous value (queue depth, credit, occupancy).
class Gauge {
 public:
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void set(double v) noexcept {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    value_.store(v, std::memory_order_relaxed);
  }
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  friend class Registry;
  explicit Gauge(const std::atomic<bool>* enabled) : enabled_(enabled) {}

  const std::atomic<bool>* enabled_;
  std::atomic<double> value_{0.0};
};

// Distribution of observed values (stage seconds, chunk sizes): a Summary
// plus an optional fixed-bucket Histogram, sharded per writer thread. Each
// thread owns one shard for the metric's lifetime — the shard mutex is only
// ever contended by a concurrent snapshot, never by another writer — and
// summary()/histogram() Welford-merge the shards on demand.
class Timing {
 public:
  Timing(const Timing&) = delete;
  Timing& operator=(const Timing&) = delete;

  void observe(double v);

  Summary summary() const;                  // merged across shards
  std::optional<Histogram> histogram() const;  // nullopt without bounds
  bool has_buckets() const noexcept { return !bounds_.empty(); }

 private:
  friend class Registry;
  Timing(const std::atomic<bool>* enabled, std::vector<double> bounds,
         std::uint64_t id)
      : enabled_(enabled), bounds_(std::move(bounds)), id_(id) {}

  struct Shard {
    mutable Mutex mu;
    Summary summary GUARDED_BY(mu);
    std::optional<Histogram> hist GUARDED_BY(mu);
  };
  Shard& local_shard() EXCLUDES(shards_mu_);

  const std::atomic<bool>* enabled_;
  const std::vector<double> bounds_;
  // Process-unique metric id: the thread-local shard cache keys on it, not
  // on `this`, so a new Timing reusing a dead one's address can never pick
  // up the dead metric's shard.
  const std::uint64_t id_;
  mutable Mutex shards_mu_;
  std::vector<std::unique_ptr<Shard>> shards_ GUARDED_BY(shards_mu_);
};

// One metric's state at snapshot time.
struct MetricSample {
  enum class Type { kCounter, kGauge, kTiming };

  std::string name;
  Labels labels;
  Type type = Type::kCounter;
  double value = 0;   // counter (as double) or gauge
  Summary summary;    // timing only
  std::vector<double> bounds;            // timing with buckets
  std::vector<std::uint64_t> buckets;    // bounds.size() + 1 (overflow last)
  std::uint64_t nan_count = 0;
};

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  // Disabling makes every mutator a relaxed load + branch; existing values
  // freeze but stay readable.
  void set_enabled(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }
  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  // Idempotent registration: the same (name, labels) returns the same
  // object; a type mismatch throws std::invalid_argument. Returned
  // references stay valid for the registry's lifetime.
  Counter& counter(const std::string& name, Labels labels = {});
  Gauge& gauge(const std::string& name, Labels labels = {});
  // `bounds` (ascending histogram upper bounds) only applies on first
  // registration; see log_spaced_bounds() for latency-style buckets.
  Timing& timing(const std::string& name, Labels labels = {},
                 std::vector<double> bounds = {});

  // All metrics in registration order.
  std::vector<MetricSample> snapshot() const;

  // now - base, matched by (name, labels): counters and timing
  // count/sum/bucket deltas subtract; gauges pass through; a timing delta's
  // mean is recomputed from the window while min/max stay run-cumulative
  // (windowed extrema are not recoverable from two cumulative snapshots).
  // Metrics born after `base` delta against zero.
  static std::vector<MetricSample> delta(
      const std::vector<MetricSample>& base,
      const std::vector<MetricSample>& now);

  // Sum of a counter across every label set (0 when absent); the roll-up
  // primitive ServiceHealth aggregates per-tenant counters with.
  std::uint64_t counter_sum(const std::string& name) const;

  std::string to_json() const;
  static std::string to_json(const std::vector<MetricSample>& samples);
  std::string to_table() const;
  static std::string to_table(const std::vector<MetricSample>& samples);

  // Process-wide default instance for tools that want one without plumbing.
  static Registry& global();

 private:
  struct Entry {
    MetricSample::Type type = MetricSample::Type::kCounter;
    std::string name;
    Labels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Timing> timing;
  };

  Entry& entry(MetricSample::Type type, const std::string& name,
               Labels labels, std::vector<double> bounds) EXCLUDES(mu_);

  mutable Mutex mu_;
  // Registration order; entries are never removed, so pointers handed out by
  // counter()/gauge()/timing() stay valid without the lock.
  std::vector<std::unique_ptr<Entry>> entries_ GUARDED_BY(mu_);
  std::unordered_map<std::string, Entry*> by_key_ GUARDED_BY(mu_);
  std::atomic<bool> enabled_{true};
};

// Canonical "name{k=v,...}" rendering shared by exports and tests.
std::string metric_key(const std::string& name, const Labels& labels);

}  // namespace shredder::obs
