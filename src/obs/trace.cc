#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace shredder::obs {

namespace {

void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

// Microsecond timestamps with nanosecond resolution: plenty for virtual
// times, compact enough that big traces stay loadable.
void append_us(std::string& out, double us) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.3f", us);
  out += buf;
}

constexpr double kSecondsToUs = 1e6;

}  // namespace

int Tracer::track_id_locked(const std::string& track) {
  const auto it = track_ids_.find(track);
  if (it != track_ids_.end()) return it->second;
  tracks_.push_back(track);
  const int tid = static_cast<int>(tracks_.size());
  track_ids_.emplace(track, tid);
  return tid;
}

void Tracer::span(const std::string& track, const std::string& name,
                  double start_s, double end_s, const Labels& args) {
  if (!enabled()) return;
  Event ev;
  ev.ph = 'X';
  ev.name = name;
  ev.ts_us = start_s * kSecondsToUs;
  ev.dur_us = std::max(0.0, (end_s - start_s) * kSecondsToUs);
  ev.args = args;
  MutexLock lock(mu_);
  ev.tid = track_id_locked(track);
  events_.push_back(std::move(ev));
}

void Tracer::instant(const std::string& track, const std::string& name,
                     double t_s, const Labels& args) {
  if (!enabled()) return;
  Event ev;
  ev.ph = 'i';
  ev.name = name;
  ev.ts_us = t_s * kSecondsToUs;
  ev.args = args;
  MutexLock lock(mu_);
  ev.tid = track_id_locked(track);
  events_.push_back(std::move(ev));
}

void Tracer::counter(const std::string& track, const std::string& name,
                     double t_s, double value) {
  if (!enabled()) return;
  Event ev;
  ev.ph = 'C';
  ev.name = name;
  ev.ts_us = t_s * kSecondsToUs;
  ev.value = value;
  MutexLock lock(mu_);
  ev.tid = track_id_locked(track);
  events_.push_back(std::move(ev));
}

double Tracer::track_busy(const std::string& track) const {
  MutexLock lock(mu_);
  const auto it = track_ids_.find(track);
  if (it == track_ids_.end()) return 0.0;
  double busy_us = 0;
  for (const auto& ev : events_) {
    if (ev.ph == 'X' && ev.tid == it->second) busy_us += ev.dur_us;
  }
  return busy_us / kSecondsToUs;
}

std::size_t Tracer::event_count() const {
  MutexLock lock(mu_);
  return events_.size();
}

std::string Tracer::to_json() const {
  MutexLock lock(mu_);
  // Stable export: events sorted by (timestamp, record order). Sort
  // (timestamp, index) keys so ties keep insertion order — and so the
  // comparator stays free of guarded-member accesses (a lambda body is
  // analyzed as its own function and cannot see that mu_ is held here).
  std::vector<std::pair<double, std::size_t>> order;
  order.reserve(events_.size());
  for (std::size_t i = 0; i < events_.size(); ++i) {
    order.emplace_back(events_[i].ts_us, i);
  }
  std::stable_sort(order.begin(), order.end(),
                   [](const std::pair<double, std::size_t>& a,
                      const std::pair<double, std::size_t>& b) {
                     return a.first < b.first;
                   });

  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  const auto comma = [&] {
    if (!first) out += ',';
    first = false;
  };
  // Thread-name metadata: one row per track, in creation order, so Perfetto
  // shows "engine/h2d" instead of "Thread 3".
  for (std::size_t i = 0; i < tracks_.size(); ++i) {
    comma();
    out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":";
    out += std::to_string(i + 1);
    out += ",\"args\":{\"name\":";
    append_json_string(out, tracks_[i]);
    out += "}}";
  }
  for (const auto& [ts_us, i] : order) {
    const Event& ev = events_[i];
    comma();
    out += "{\"name\":";
    append_json_string(out, ev.name);
    out += ",\"ph\":\"";
    out += ev.ph;
    out += "\",\"pid\":1,\"tid\":";
    out += std::to_string(ev.tid);
    out += ",\"ts\":";
    append_us(out, ev.ts_us);
    if (ev.ph == 'X') {
      out += ",\"dur\":";
      append_us(out, ev.dur_us);
    }
    if (ev.ph == 'i') out += ",\"s\":\"t\"";
    if (ev.ph == 'C') {
      out += ",\"args\":{\"value\":";
      append_us(out, ev.value);
      out += '}';
    } else if (!ev.args.empty()) {
      out += ",\"args\":{";
      for (std::size_t k = 0; k < ev.args.size(); ++k) {
        if (k > 0) out += ',';
        append_json_string(out, ev.args[k].first);
        out += ':';
        append_json_string(out, ev.args[k].second);
      }
      out += '}';
    }
    out += '}';
  }
  out += "]}";
  return out;
}

void Tracer::write_json(const std::string& path) const {
  const std::string json = to_json();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    throw std::runtime_error("Tracer: cannot open " + path + " for writing");
  }
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const int rc = std::fclose(f);
  if (written != json.size() || rc != 0) {
    throw std::runtime_error("Tracer: short write to " + path);
  }
}

}  // namespace shredder::obs
