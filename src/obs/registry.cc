#include "obs/registry.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace shredder::obs {

namespace {

std::atomic<std::uint64_t> g_next_timing_id{1};

void sort_labels(Labels& labels) {
  std::sort(labels.begin(), labels.end());
}

// Minimal JSON string escaping: quotes, backslashes and control bytes —
// metric names and label values are plain identifiers in practice, but the
// export must never emit invalid JSON.
void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_number(std::string& out, double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  out += buf;
}

const char* type_name(MetricSample::Type t) {
  switch (t) {
    case MetricSample::Type::kCounter: return "counter";
    case MetricSample::Type::kGauge: return "gauge";
    case MetricSample::Type::kTiming: return "timing";
  }
  return "?";
}

}  // namespace

std::string metric_key(const std::string& name, const Labels& labels) {
  if (labels.empty()) return name;  // bare name reads better in tables
  std::string key = name;
  key += '{';
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) key += ',';
    key += labels[i].first;
    key += '=';
    key += labels[i].second;
  }
  key += '}';
  return key;
}

// --- Timing ----------------------------------------------------------------

Timing::Shard& Timing::local_shard() {
  // One cache per thread mapping metric id -> that thread's shard. Ids are
  // process-unique and never reused, so a stale entry for a destroyed metric
  // is inert (never looked up again) rather than dangerous.
  thread_local std::unordered_map<std::uint64_t, Shard*> cache;
  const auto it = cache.find(id_);
  if (it != cache.end()) return *it->second;
  MutexLock lock(shards_mu_);
  auto shard = std::make_unique<Shard>();
  if (!bounds_.empty()) shard->hist.emplace(bounds_);
  Shard* p = shard.get();
  shards_.push_back(std::move(shard));
  cache.emplace(id_, p);
  return *p;
}

void Timing::observe(double v) {
  if (!enabled_->load(std::memory_order_relaxed)) return;
  Shard& s = local_shard();
  MutexLock lock(s.mu);
  s.summary.add(v);
  if (s.hist.has_value()) s.hist->add(v);
}

Summary Timing::summary() const {
  Summary merged;
  MutexLock lock(shards_mu_);
  for (const auto& shard : shards_) {
    MutexLock slock(shard->mu);
    merged.merge(shard->summary);
  }
  return merged;
}

std::optional<Histogram> Timing::histogram() const {
  if (bounds_.empty()) return std::nullopt;
  Histogram merged(bounds_);
  MutexLock lock(shards_mu_);
  for (const auto& shard : shards_) {
    MutexLock slock(shard->mu);
    if (shard->hist.has_value()) merged.merge(*shard->hist);
  }
  return merged;
}

// --- Registry --------------------------------------------------------------

Registry::Entry& Registry::entry(MetricSample::Type type,
                                 const std::string& name, Labels labels,
                                 std::vector<double> bounds) {
  sort_labels(labels);
  const std::string key = metric_key(name, labels);
  MutexLock lock(mu_);
  const auto it = by_key_.find(key);
  if (it != by_key_.end()) {
    if (it->second->type != type) {
      throw std::invalid_argument("Registry: metric '" + key +
                                  "' re-registered as a different type");
    }
    return *it->second;
  }
  auto e = std::make_unique<Entry>();
  e->type = type;
  e->name = name;
  e->labels = std::move(labels);
  switch (type) {
    case MetricSample::Type::kCounter:
      e->counter.reset(new Counter(&enabled_));
      break;
    case MetricSample::Type::kGauge:
      e->gauge.reset(new Gauge(&enabled_));
      break;
    case MetricSample::Type::kTiming:
      e->timing.reset(new Timing(
          &enabled_, std::move(bounds),
          g_next_timing_id.fetch_add(1, std::memory_order_relaxed)));
      break;
  }
  Entry* p = e.get();
  entries_.push_back(std::move(e));
  by_key_.emplace(key, p);
  return *p;
}

Counter& Registry::counter(const std::string& name, Labels labels) {
  return *entry(MetricSample::Type::kCounter, name, std::move(labels), {})
              .counter;
}

Gauge& Registry::gauge(const std::string& name, Labels labels) {
  return *entry(MetricSample::Type::kGauge, name, std::move(labels), {}).gauge;
}

Timing& Registry::timing(const std::string& name, Labels labels,
                         std::vector<double> bounds) {
  return *entry(MetricSample::Type::kTiming, name, std::move(labels),
                std::move(bounds))
              .timing;
}

std::vector<MetricSample> Registry::snapshot() const {
  // Copy the entry list under the lock, then read metric values without it:
  // Timing::summary() takes its own locks and entries are never removed.
  std::vector<const Entry*> entries;
  {
    MutexLock lock(mu_);
    entries.reserve(entries_.size());
    for (const auto& e : entries_) entries.push_back(e.get());
  }
  std::vector<MetricSample> out;
  out.reserve(entries.size());
  for (const Entry* e : entries) {
    MetricSample s;
    s.name = e->name;
    s.labels = e->labels;
    s.type = e->type;
    switch (e->type) {
      case MetricSample::Type::kCounter:
        s.value = static_cast<double>(e->counter->value());
        break;
      case MetricSample::Type::kGauge:
        s.value = e->gauge->value();
        break;
      case MetricSample::Type::kTiming: {
        s.summary = e->timing->summary();
        if (const auto hist = e->timing->histogram(); hist.has_value()) {
          s.bounds.assign(hist->bounds().begin(), hist->bounds().end());
          for (std::size_t i = 0; i < hist->num_buckets(); ++i) {
            s.buckets.push_back(hist->bucket_count(i));
          }
          s.nan_count = hist->nan_count();
        }
        break;
      }
    }
    out.push_back(std::move(s));
  }
  return out;
}

std::vector<MetricSample> Registry::delta(
    const std::vector<MetricSample>& base,
    const std::vector<MetricSample>& now) {
  std::unordered_map<std::string, const MetricSample*> by_key;
  for (const auto& s : base) by_key.emplace(metric_key(s.name, s.labels), &s);
  std::vector<MetricSample> out;
  out.reserve(now.size());
  for (const auto& s : now) {
    MetricSample d = s;
    const auto it = by_key.find(metric_key(s.name, s.labels));
    if (it != by_key.end()) {
      const MetricSample& b = *it->second;
      switch (s.type) {
        case MetricSample::Type::kCounter:
          d.value = s.value - b.value;
          break;
        case MetricSample::Type::kGauge:
          break;  // instantaneous: the current value IS the delta view
        case MetricSample::Type::kTiming: {
          // Window count/sum subtract exactly; the mean is recomputed from
          // them. min/max stay run-cumulative and stddev is zeroed (see
          // header: windowed second moments/extrema are not recoverable
          // from two cumulative snapshots).
          const std::uint64_t dcount =
              s.summary.count() - b.summary.count();
          const double dsum = s.summary.sum() - b.summary.sum();
          Summary w;
          if (dcount > 0) {
            w = Summary::from_window(dcount, dsum, s.summary.min(),
                                     s.summary.max());
          }
          d.summary = w;
          if (!s.bounds.empty() && s.bounds == b.bounds &&
              s.buckets.size() == b.buckets.size()) {
            for (std::size_t i = 0; i < d.buckets.size(); ++i) {
              d.buckets[i] = s.buckets[i] - b.buckets[i];
            }
            d.nan_count = s.nan_count - b.nan_count;
          }
          break;
        }
      }
    }
    out.push_back(std::move(d));
  }
  return out;
}

std::uint64_t Registry::counter_sum(const std::string& name) const {
  MutexLock lock(mu_);
  std::uint64_t sum = 0;
  for (const auto& e : entries_) {
    if (e->type == MetricSample::Type::kCounter && e->name == name) {
      sum += e->counter->value();
    }
  }
  return sum;
}

std::string Registry::to_json() const { return to_json(snapshot()); }

std::string Registry::to_json(const std::vector<MetricSample>& samples) {
  std::string out = "{\"metrics\":[";
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const auto& s = samples[i];
    if (i > 0) out += ',';
    out += "{\"name\":";
    append_json_string(out, s.name);
    out += ",\"labels\":{";
    for (std::size_t k = 0; k < s.labels.size(); ++k) {
      if (k > 0) out += ',';
      append_json_string(out, s.labels[k].first);
      out += ':';
      append_json_string(out, s.labels[k].second);
    }
    out += "},\"type\":\"";
    out += type_name(s.type);
    out += '"';
    if (s.type == MetricSample::Type::kTiming) {
      out += ",\"count\":";
      append_number(out, static_cast<double>(s.summary.count()));
      out += ",\"sum\":";
      append_number(out, s.summary.sum());
      out += ",\"mean\":";
      append_number(out, s.summary.count() > 0 ? s.summary.mean() : 0.0);
      out += ",\"min\":";
      append_number(out, s.summary.count() > 0 ? s.summary.min() : 0.0);
      out += ",\"max\":";
      append_number(out, s.summary.count() > 0 ? s.summary.max() : 0.0);
      out += ",\"stddev\":";
      append_number(out, s.summary.stddev());
      if (!s.bounds.empty()) {
        out += ",\"buckets\":[";
        for (std::size_t b = 0; b < s.buckets.size(); ++b) {
          if (b > 0) out += ',';
          out += "{\"le\":";
          if (b < s.bounds.size()) {
            append_number(out, s.bounds[b]);
          } else {
            out += "\"inf\"";
          }
          out += ",\"count\":";
          append_number(out, static_cast<double>(s.buckets[b]));
          out += '}';
        }
        out += "],\"nan_count\":";
        append_number(out, static_cast<double>(s.nan_count));
      }
    } else {
      out += ",\"value\":";
      append_number(out, s.value);
    }
    out += '}';
  }
  out += "]}";
  return out;
}

std::string Registry::to_table() const { return to_table(snapshot()); }

std::string Registry::to_table(const std::vector<MetricSample>& samples) {
  TablePrinter table({"metric", "type", "value/count", "mean", "min", "max"},
                     /*col_width=*/18);
  for (const auto& s : samples) {
    std::vector<std::string> row;
    row.push_back(metric_key(s.name, s.labels));
    row.push_back(type_name(s.type));
    if (s.type == MetricSample::Type::kTiming) {
      row.push_back(std::to_string(s.summary.count()));
      row.push_back(TablePrinter::fmt(
          s.summary.count() > 0 ? s.summary.mean() : 0.0, 6));
      row.push_back(TablePrinter::fmt(
          s.summary.count() > 0 ? s.summary.min() : 0.0, 6));
      row.push_back(TablePrinter::fmt(
          s.summary.count() > 0 ? s.summary.max() : 0.0, 6));
    } else {
      row.push_back(TablePrinter::fmt(s.value, 3));
      row.push_back("-");
      row.push_back("-");
      row.push_back("-");
    }
    table.add_row(row);
  }
  return table.to_string();
}

Registry& Registry::global() {
  static Registry* instance = new Registry();  // leaked: process lifetime
  return *instance;
}

}  // namespace shredder::obs
