// Network redundancy elimination middlebox (paper §9 future work, building
// on EndRE/SmartRE from §8's related work).
//
// A pair of middleboxes brackets a WAN link. The sender-side box chunks the
// outgoing byte stream with Shredder, replaces chunks it has seen before
// with small tokens, and keeps a bounded content cache; the receiver-side
// box holds the mirror cache and re-expands tokens. The paper's point is
// that chunking throughput is what gates deploying this at line rate —
// which is exactly what the GPU-accelerated chunker provides.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "chunking/chunk.h"
#include "common/bytes.h"
#include "core/shredder.h"
#include "dedup/sha1.h"

namespace shredder::redelim {

// One element of the encoded stream: either a literal chunk payload or a
// token referencing a previously transmitted chunk.
struct Segment {
  dedup::Sha1Digest digest;
  ByteVec literal;  // empty => token

  bool is_token() const noexcept { return literal.empty(); }
  // Bytes this segment occupies on the wire (tokens cost digest + length).
  std::uint64_t wire_bytes() const noexcept {
    return is_token() ? sizeof(dedup::Sha1Digest) + 8 : literal.size() + 8;
  }
};

struct EncodedStream {
  std::vector<Segment> segments;
  std::uint64_t input_bytes = 0;
  std::uint64_t wire_bytes = 0;
  std::uint64_t tokens = 0;

  double savings() const noexcept {
    return input_bytes == 0
               ? 0.0
               : 1.0 - static_cast<double>(wire_bytes) /
                           static_cast<double>(input_bytes);
  }
};

// Bounded LRU content cache, identical on both sides of the link. Eviction
// is deterministic (strict LRU on insertion/refresh order), so sender and
// receiver stay synchronized as long as they see the same segment sequence.
class ContentCache {
 public:
  explicit ContentCache(std::uint64_t capacity_bytes);

  // Inserts (or refreshes) a chunk; evicts LRU entries beyond capacity.
  void put(const dedup::Sha1Digest& digest, ByteSpan payload);
  // Looks a chunk up and refreshes its LRU position.
  std::optional<ByteVec> get(const dedup::Sha1Digest& digest);
  bool contains(const dedup::Sha1Digest& digest) const;

  std::uint64_t bytes() const noexcept { return bytes_; }
  std::uint64_t entries() const noexcept { return entries_.size(); }

 private:
  struct Entry {
    ByteVec payload;
    std::list<dedup::Sha1Digest>::iterator lru_pos;
  };
  void evict_to_capacity();

  std::uint64_t capacity_;
  std::uint64_t bytes_ = 0;
  std::list<dedup::Sha1Digest> lru_;  // front = most recent
  std::unordered_map<dedup::Sha1Digest, Entry, dedup::Sha1DigestHash> entries_;
};

// Sender-side box: chunk + tokenize.
class SenderMiddlebox {
 public:
  // `shredder` provides the chunking service; `cache_bytes` bounds the
  // content cache on both ends.
  SenderMiddlebox(core::Shredder& shredder, std::uint64_t cache_bytes);

  // Encodes one outgoing flow (e.g. an HTTP response or replication batch).
  EncodedStream encode(ByteSpan flow);

  const ContentCache& cache() const noexcept { return cache_; }

 private:
  core::Shredder* shredder_;
  ContentCache cache_;
};

// Receiver-side box: re-expand tokens. Throws std::runtime_error on a token
// miss (sender/receiver caches out of sync — a protocol bug).
class ReceiverMiddlebox {
 public:
  explicit ReceiverMiddlebox(std::uint64_t cache_bytes);

  ByteVec decode(const EncodedStream& stream);

  const ContentCache& cache() const noexcept { return cache_; }

 private:
  ContentCache cache_;
};

}  // namespace shredder::redelim
