#include "redelim/middlebox.h"

#include <stdexcept>

namespace shredder::redelim {

ContentCache::ContentCache(std::uint64_t capacity_bytes)
    : capacity_(capacity_bytes) {
  if (capacity_bytes == 0) {
    throw std::invalid_argument("ContentCache: capacity must be > 0");
  }
}

void ContentCache::evict_to_capacity() {
  while (bytes_ > capacity_ && !lru_.empty()) {
    const auto victim = lru_.back();
    lru_.pop_back();
    const auto it = entries_.find(victim);
    if (it != entries_.end()) {
      bytes_ -= it->second.payload.size();
      entries_.erase(it);
    }
  }
}

void ContentCache::put(const dedup::Sha1Digest& digest, ByteSpan payload) {
  const auto it = entries_.find(digest);
  if (it != entries_.end()) {
    // Refresh LRU position only.
    lru_.erase(it->second.lru_pos);
    lru_.push_front(digest);
    it->second.lru_pos = lru_.begin();
    return;
  }
  lru_.push_front(digest);
  entries_.emplace(digest,
                   Entry{ByteVec(payload.begin(), payload.end()), lru_.begin()});
  bytes_ += payload.size();
  evict_to_capacity();
}

std::optional<ByteVec> ContentCache::get(const dedup::Sha1Digest& digest) {
  const auto it = entries_.find(digest);
  if (it == entries_.end()) return std::nullopt;
  lru_.erase(it->second.lru_pos);
  lru_.push_front(digest);
  it->second.lru_pos = lru_.begin();
  return it->second.payload;
}

bool ContentCache::contains(const dedup::Sha1Digest& digest) const {
  return entries_.contains(digest);
}

SenderMiddlebox::SenderMiddlebox(core::Shredder& shredder,
                                 std::uint64_t cache_bytes)
    : shredder_(&shredder), cache_(cache_bytes) {}

EncodedStream SenderMiddlebox::encode(ByteSpan flow) {
  EncodedStream out;
  out.input_bytes = flow.size();
  const auto result = shredder_->run(flow);
  out.segments.reserve(result.chunks.size());
  for (const auto& c : result.chunks) {
    const ByteSpan payload = flow.subspan(static_cast<std::size_t>(c.offset),
                                          static_cast<std::size_t>(c.size));
    const auto digest = dedup::Sha1::hash(payload);
    Segment seg;
    seg.digest = digest;
    if (cache_.contains(digest)) {
      ++out.tokens;
      // Refresh sender-side LRU exactly as the receiver will.
      cache_.get(digest);
    } else {
      seg.literal.assign(payload.begin(), payload.end());
      cache_.put(digest, payload);
    }
    out.wire_bytes += seg.wire_bytes();
    out.segments.push_back(std::move(seg));
  }
  return out;
}

ReceiverMiddlebox::ReceiverMiddlebox(std::uint64_t cache_bytes)
    : cache_(cache_bytes) {}

ByteVec ReceiverMiddlebox::decode(const EncodedStream& stream) {
  ByteVec out;
  out.reserve(stream.input_bytes);
  for (const auto& seg : stream.segments) {
    if (seg.is_token()) {
      const auto payload = cache_.get(seg.digest);
      if (!payload.has_value()) {
        throw std::runtime_error(
            "ReceiverMiddlebox: token for unknown chunk (caches diverged)");
      }
      out.insert(out.end(), payload->begin(), payload->end());
    } else {
      out.insert(out.end(), seg.literal.begin(), seg.literal.end());
      cache_.put(seg.digest, as_bytes(seg.literal));
    }
  }
  return out;
}

}  // namespace shredder::redelim
