#include "service/service.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "common/check.h"

namespace shredder::service {

void ServiceConfig::validate() const {
  chunker.validate();
  if (buffer_bytes < chunker.window * 2) {
    throw std::invalid_argument("ServiceConfig: buffer_bytes too small");
  }
  if (ring_slots == 0) {
    throw std::invalid_argument("ServiceConfig: ring_slots must be >= 1");
  }
  if (kernel.blocks <= 0 || kernel.threads_per_block <= 0) {
    throw std::invalid_argument("ServiceConfig: bad kernel geometry");
  }
  if (max_tenants == 0) {
    throw std::invalid_argument("ServiceConfig: max_tenants must be >= 1");
  }
  if (tenant_queue_depth == 0) {
    throw std::invalid_argument(
        "ServiceConfig: tenant_queue_depth must be >= 1");
  }
  if (dedup_on_store && !fingerprint_on_device) {
    throw std::invalid_argument(
        "ServiceConfig: dedup_on_store requires fingerprint_on_device");
  }
  if (store != nullptr && !dedup_on_store) {
    throw std::invalid_argument(
        "ServiceConfig: a chunk store requires dedup_on_store");
  }
}

ChunkingService::ChunkingService(ServiceConfig config)
    : config_(std::move(config)),
      tables_(config_.chunker.window),
      timeline_(1) {
  config_.validate();
  device_ = std::make_unique<gpu::Device>(config_.device, config_.sim_threads);
  if (config_.registry != nullptr) {
    registry_ = config_.registry;
  } else {
    owned_registry_ = std::make_unique<obs::Registry>();
    registry_ = owned_registry_.get();
  }
  tracer_ = config_.tracer;
  m_bytes_ingested_ = &registry_->counter("service.bytes_ingested_total");
  m_buffers_dispatched_ =
      &registry_->counter("service.buffers_dispatched_total");
  m_transport_reports_ =
      &registry_->counter("service.transport_reports_total");
  m_transport_degraded_ =
      &registry_->counter("service.transport_degraded_total");
  m_transport_retx_ =
      &registry_->counter("service.transport_retransmits_total");
  m_transport_repairs_ =
      &registry_->counter("service.transport_repairs_total");
  core::PipelineEngineConfig engine_cfg;
  engine_cfg.mode = config_.mode;
  engine_cfg.slot_bytes = config_.buffer_bytes + config_.chunker.window - 1;
  engine_cfg.ring_slots = config_.ring_slots;
  engine_cfg.kernel = config_.kernel;
  engine_cfg.fingerprint = config_.fingerprint_on_device;
  engine_cfg.registry = registry_;
  engine_ = std::make_unique<core::PipelineEngine>(engine_cfg, *device_,
                                                   tables_, config_.chunker);
  if (config_.dedup_on_store) {
    index_ = dedup::make_index(config_.index);
    // Service-owned stores run in deferred-reclaim mode so delete_image
    // parks zero-ref chunks for the GC epoch protocol instead of freeing
    // them under concurrent sessions.
    store_ = config_.store != nullptr
                 ? config_.store
                 : std::make_shared<dedup::ChunkStore>(
                       /*deferred_reclaim=*/true);
    retention::RetentionConfig retention_cfg;
    retention_cfg.registry = registry_;
    retention_cfg.tracer = tracer_;
    retention_ =
        std::make_unique<retention::RetentionManager>(store_, retention_cfg);
  }
  aggregate_.init_seconds = engine_->init_seconds();
  scheduler_thread_ = std::thread([this] { scheduler_loop(); });
  store_thread_ = std::thread([this] { store_loop(); });
}

ChunkingService::~ChunkingService() {
  bool stopped;
  {
    MutexLock lock(mu_);
    stopped = stopped_;
    if (!stopped) draining_ = true;
  }
  if (!stopped) {
    // Best-effort teardown for services abandoned without shutdown():
    // stop the engine (unblocks a scheduler parked on a slot lease and the
    // store thread parked on next_batch), then join our threads.
    sched_cv_.notify_all();
    engine_->stop();
    if (scheduler_thread_.joinable()) scheduler_thread_.join();
    if (store_thread_.joinable()) store_thread_.join();
  }
}

ChunkingService::StreamId ChunkingService::open(TenantOptions opts) {
  MutexLock lock(mu_);
  if (draining_ || stopped_) {
    throw std::runtime_error("ChunkingService: open after shutdown");
  }
  if (open_sessions_ >= config_.max_tenants) {
    throw std::runtime_error("ChunkingService: tenant capacity reached");
  }
  if (opts.weight == 0) {
    throw std::invalid_argument("ChunkingService: weight must be >= 1");
  }
  auto session = std::make_unique<Session>();
  const StreamId id = next_id_++;
  session->id = id;
  // A newcomer starts at the minimum credit among active sessions (virtual-
  // time normalization): starting at 0 would let it monopolize the device
  // until it caught up with long-running incumbents.
  double min_credit = 0;
  bool have_active = false;
  for (const auto& [sid, existing] : sessions_) {
    if (existing->complete) continue;
    min_credit = have_active ? std::min(min_credit, existing->credit)
                             : existing->credit;
    have_active = true;
  }
  session->credit = have_active ? min_credit : 0.0;
  session->channel_bw =
      opts.channel_bw > 0 ? opts.channel_bw : config_.host.reader_bw;
  session->queue =
      std::make_unique<BoundedQueue<PendingBuffer>>(config_.tenant_queue_depth);
  session->report.stream_id = id;
  if (opts.name.empty()) {
    session->report.name = "tenant-";
    session->report.name += std::to_string(id);
  } else {
    session->report.name = opts.name;
  }
  session->report.weight = opts.weight;
  session->filter = std::make_unique<chunking::MinMaxFilter>(
      config_.chunker.min_size, config_.chunker.max_size,
      [s = session.get()](std::uint64_t end) {
        s->chunks.push_back({s->last_end, end - s->last_end});
        s->last_end = end;
      });
  session->opts = std::move(opts);
  // Batch-first consumption: the store thread talks to one sink per tenant.
  // Per-chunk callbacks become a PerChunkAdapter shim over the batch path,
  // so the hot loop never dispatches a per-chunk std::function.
  if (session->opts.sink != nullptr) {
    session->sink = session->opts.sink;
  } else if (session->opts.on_chunk || session->opts.on_digest) {
    session->adapter = std::make_unique<PerChunkAdapter>(
        session->opts.on_chunk, session->opts.on_digest);
    session->sink = session->adapter.get();
  }
  // Every batch carries its staged bytes as a refcounted lease, so honoring
  // wants_payload() is per-session and free — including for tenants opened
  // mid-run. Cap 0: the store thread never parks pinned slots in a tenant
  // tail across batches (see Session::retain).
  session->retain =
      config_.dedup_on_store ||
      (session->sink != nullptr && session->sink->wants_payload());
  session->tail.set_slot_cap(0);
  // Dedup sessions pin the GC epoch for their whole walk (retention.h).
  if (retention_) session->pin = retention_->pin();
  sessions_.emplace(id, std::move(session));
  ++open_sessions_;
  ++aggregate_.n_tenants;
  return id;
}

ChunkingService::Session* ChunkingService::find_session(StreamId id) {
  MutexLock lock(mu_);
  const auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    throw std::invalid_argument("ChunkingService: unknown stream id");
  }
  return it->second.get();
}

void ChunkingService::enqueue_payload(Session& s, ByteVec payload) {
  PendingBuffer pending;
  pending.reader_seconds =
      static_cast<double>(payload.size()) / s.channel_bw;
  pending.payload = std::move(payload);
  m_bytes_ingested_->add(pending.payload.size());
  if (!s.queue->push(std::move(pending))) {
    throw std::runtime_error("ChunkingService: stream closed during submit");
  }
  const std::size_t depth = s.queue->size();
  std::size_t seen = s.max_depth.load(std::memory_order_relaxed);
  while (depth > seen &&
         !s.max_depth.compare_exchange_weak(seen, depth,
                                            std::memory_order_relaxed)) {
  }
  {
    MutexLock lock(mu_);
  }
  sched_cv_.notify_one();
}

void ChunkingService::submit(StreamId id, ByteSpan data) {
  Session& s = *find_session(id);
  {
    MutexLock lock(mu_);
    if (s.finishing) {
      throw std::logic_error("ChunkingService: submit after finish");
    }
  }
  std::size_t pos = 0;
  while (pos < data.size()) {
    const std::size_t take =
        std::min(config_.buffer_bytes - s.staging.size(), data.size() - pos);
    s.staging.insert(s.staging.end(), data.begin() + pos,
                     data.begin() + pos + take);
    pos += take;
    if (s.staging.size() == config_.buffer_bytes) {
      ByteVec payload;
      payload.swap(s.staging);
      enqueue_payload(s, std::move(payload));
    }
  }
}

bool ChunkingService::try_submit(StreamId id, ByteSpan data) {
  Session& s = *find_session(id);
  {
    MutexLock lock(mu_);
    if (s.finishing) {
      throw std::logic_error("ChunkingService: submit after finish");
    }
  }
  // Each stream has a single producer and only the scheduler pops, so a
  // capacity check now cannot be invalidated by another producer later.
  const std::size_t buffers_needed =
      (s.staging.size() + data.size()) / config_.buffer_bytes;
  const std::size_t queued = s.queue->size();
  if (buffers_needed > s.queue->capacity() - queued) return false;
  submit(id, data);
  return true;
}

void ChunkingService::finish(StreamId id) {
  Session& s = *find_session(id);
  {
    MutexLock lock(mu_);
    if (s.finishing) return;  // idempotent
  }
  if (!s.staging.empty()) {
    ByteVec payload;
    payload.swap(s.staging);
    enqueue_payload(s, std::move(payload));
  }
  {
    MutexLock lock(mu_);
    s.finishing = true;
  }
  sched_cv_.notify_one();
}

TenantResult ChunkingService::wait(StreamId id) {
  MutexLock lock(mu_);
  const auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    throw std::invalid_argument("ChunkingService: unknown stream id");
  }
  Session* s = it->second.get();
  while (!s->complete && !store_error_) complete_cv_.wait(mu_);
  if (store_error_ && !s->complete) {
    std::rethrow_exception(store_error_);
  }
  TenantResult result;
  result.report = std::move(s->report);
  result.chunks = std::move(s->chunks);
  result.digests = std::move(s->digests);
  // Erase by key: a concurrent open() may have rehashed sessions_ while the
  // wait above had mu_ released, invalidating `it`.
  sessions_.erase(id);
  --open_sessions_;
  return result;
}

TenantResult ChunkingService::chunk_stream(core::DataSource& source,
                                           TenantOptions opts) {
  const StreamId id = open(std::move(opts));
  ByteVec buf(config_.buffer_bytes);
  for (;;) {
    const std::size_t n = source.read({buf.data(), buf.size()});
    if (n == 0) break;
    submit(id, ByteSpan{buf.data(), n});
  }
  finish(id);
  return wait(id);
}

ChunkingService::Session* ChunkingService::pick_locked(bool* send_eos) {
  Session* best = nullptr;
  Session* eos_candidate = nullptr;
  for (auto& [id, session] : sessions_) {
    Session* s = session.get();
    if (s->queue->size() > 0) {
      if (best == nullptr || s->credit < best->credit) best = s;
    } else if (s->finishing && !s->eos_sent) {
      if (eos_candidate == nullptr) eos_candidate = s;
    }
  }
  if (best != nullptr) {
    *send_eos = false;
    // Charge the dispatch here, under mu_, so open() can read credits when
    // normalizing a newcomer.
    best->credit += 1.0 / static_cast<double>(best->report.weight);
    return best;
  }
  if (eos_candidate != nullptr) {
    *send_eos = true;
    eos_candidate->eos_sent = true;
    return eos_candidate;
  }
  return nullptr;
}

void ChunkingService::dispatch(Session& s, bool send_eos) {
  core::StreamBuffer sb;
  sb.stream_id = s.id;
  sb.seq = s.seq++;
  if (send_eos) {
    sb.eos = true;
    sb.base_offset = s.dispatched_bytes;
    engine_->submit(std::move(sb));
    return;
  }
  auto pending = s.queue->try_pop();
  SHREDDER_CHECK_MSG(pending.has_value(),
                     "ChunkingService: scheduler raced an empty queue");
  ByteVec& payload = pending->payload;
  sb.base_offset = s.dispatched_bytes - s.carry.size();
  sb.reader_seconds = pending->reader_seconds;
  // Scheduler context rides with the buffer so the store thread can stamp
  // credit/queue-depth trace points at the buffer's virtual time. Both are
  // scheduler-thread state: credit was charged in pick_locked, the queue
  // only shrinks from this thread.
  sb.sched_credit = s.credit;
  sb.queue_depth = static_cast<std::uint32_t>(s.queue->size());
  m_buffers_dispatched_->add(1);
  // Next buffer's window context: the last w-1 staged bytes, computed
  // before carry and payload are moved into the work item.
  const std::size_t keep = std::min(config_.chunker.window - 1,
                                    s.carry.size() + payload.size());
  ByteVec next_carry;
  if (payload.size() >= keep) {
    next_carry.assign(payload.end() - static_cast<std::ptrdiff_t>(keep),
                      payload.end());
  } else {
    const std::size_t from_carry = keep - payload.size();
    next_carry.assign(s.carry.end() - static_cast<std::ptrdiff_t>(from_carry),
                      s.carry.end());
    next_carry.insert(next_carry.end(), payload.begin(), payload.end());
  }
  s.dispatched_bytes += payload.size();
  // Carry travels as a separate prefix: the engine splices it directly into
  // the pinned slot, so no payload-sized concatenation happens here.
  sb.carry_prefix = std::move(s.carry);
  sb.data = std::move(payload);
  s.carry = std::move(next_carry);
  engine_->submit(std::move(sb));
}

void ChunkingService::scheduler_loop() {
  for (;;) {
    Session* pick = nullptr;
    bool send_eos = false;
    {
      MutexLock lock(mu_);
      for (;;) {
        pick = pick_locked(&send_eos);
        if (pick != nullptr) break;
        if (draining_) {
          lock.unlock();
          engine_->close();
          return;
        }
        sched_cv_.wait(mu_);
      }
    }
    // Dispatch outside the lock: engine_->submit may block on a pinned-slot
    // lease, and the store thread needs mu_ to make progress meanwhile.
    dispatch(*pick, send_eos);
  }
}

void ChunkingService::store_loop() {
  try {
    while (auto batch = engine_->next_batch()) {
      Session* s;
      {
        MutexLock lock(mu_);
        const auto it = sessions_.find(batch->stream_id);
        SHREDDER_CHECK_MSG(it != sessions_.end(),
                           "ChunkingService: batch for unknown session");
        s = it->second.get();
      }
      // Fingerprint mode: chunk ends arrive resolved, paired with device
      // digests — emit them directly instead of running the host filter.
      // With dedup_on_store every chunk also probes the shared index (the
      // tenant id keys the sparse backend's prefetch cache); unique payloads
      // are sliced from the session's rolling tail into the shared store,
      // duplicates add a reference to the stored copy.
      const auto emit_fingerprinted = [&] {
        const double index_t0 = index_ ? index_->virtual_seconds() : 0.0;
        const dedup::IndexStats index_before =
            index_ ? index_->stats() : dedup::IndexStats{};
        core::for_each_fingerprinted_chunk(
            *batch, s->last_end,
            [&](const chunking::Chunk& c, const dedup::ChunkDigest& d) {
              s->chunks.push_back(c);
              s->digests.push_back(d);
              if (index_) {
                const auto existing = index_->lookup_or_insert(
                    d, dedup::ChunkLocation{next_store_offset_, c.size},
                    s->id);
                // A failed add_ref on an index hit is a stale entry — the
                // chunk was deleted and GC-swept after the index recorded
                // it. Self-heal: treat the chunk as unique and re-store the
                // payload (dedup ratio degrades, correctness never).
                bool duplicate = existing.has_value();
                if (duplicate && !store_->add_ref(d)) duplicate = false;
                if (duplicate) {
                  ++s->report.n_duplicate_chunks;
                  s->report.duplicate_bytes += c.size;
                } else {
                  SHREDDER_CHECK_MSG(
                      c.offset >= s->tail.base() && c.end() <= s->tail.end(),
                      "ChunkingService: chunk outside the rolling tail");
                  // Usually a direct alias of the leased slot; spliced only
                  // for chunks spanning buffers. The put() below is then
                  // the unique byte's single copy: leased slot -> store.
                  const ByteSpan bytes = s->tail.slice(
                      c.offset, static_cast<std::size_t>(c.size));
                  next_store_offset_ += c.size;
                  if (store_->put(d, bytes) == dedup::PutOutcome::kInserted) {
                    s->report.stored_bytes += c.size;
                  }
                }
              }
            });
        if (index_) {
          s->report.index_seconds += index_->virtual_seconds() - index_t0;
          publish_index_delta(index_before);
        }
      };
      const std::size_t batch_first = s->chunks.size();
      // Extend the rolling tail before emitting: chunk payload slices and
      // sink views read from it. The lease moves in — zero-copy — and
      // non-retaining sessions drop it with the batch instead.
      if (s->retain && !batch->payload.empty()) {
        s->tail.append(std::move(batch->payload), batch->payload_carry);
      }
      if (batch->eos) {
        // The trailing chunk's digest still crosses the bus: extend the
        // tenant's timeline with its D2H before closing the session.
        if (!batch->digests.empty() &&
            s->tl_base != static_cast<std::size_t>(-1)) {
          const double d2h = core::store_stage_seconds(
              config_.device, 0, engine_->pipelined(),
              batch->digests.size() * sizeof(dedup::ChunkDigest));
          s->last_finish_v = timeline_.enqueue(
              s->tl_base + static_cast<std::size_t>(batch->seq % 2),
              gpu::EngineKind::kCopyD2H, d2h);
          s->report.stage_totals.store += d2h;
          if (tracer_ != nullptr) {
            tracer_->span("engine/d2h", "trailing_digest_d2h",
                          s->last_finish_v - d2h, s->last_finish_v,
                          {{"tenant", s->report.name},
                           {"seq", std::to_string(batch->seq)}});
          }
        }
        emit_fingerprinted();  // the stream's trailing chunk closes here
        if (tracer_ != nullptr) {
          tracer_->instant("tenant/" + s->report.name, "eos",
                           s->last_finish_v);
        }
        finalize_session(*s, batch->payload_end, batch_first);
        continue;
      }
      batch->stages.store = core::store_stage_seconds(
          config_.device, batch->boundaries.size(), engine_->pipelined(),
          batch->digests.size() * sizeof(dedup::ChunkDigest));
      const double index_seconds_before = s->report.index_seconds;
      if (config_.fingerprint_on_device) {
        emit_fingerprinted();
      } else {
        for (std::uint64_t b : batch->boundaries) s->filter->push(b);
      }
      deliver_batch(*s, batch_first, /*eos=*/false);

      // Virtual-time composition: the tenant's twin timeline streams model
      // per-stream double buffering; the three engines are shared. The hash
      // kernel is a second compute-engine op right after the chunk kernel —
      // it overlaps the next buffer's H2D exactly like compute always has.
      if (s->tl_base == static_cast<std::size_t>(-1)) {
        s->tl_base = timeline_.add_stream();
        timeline_.add_stream();
      }
      s->ready_v += batch->stages.reader;
      const std::size_t tl_stream =
          s->tl_base + static_cast<std::size_t>(batch->seq % 2);
      const double h2d_finish =
          timeline_.enqueue(tl_stream, gpu::EngineKind::kCopyH2D,
                            batch->stages.transfer, s->ready_v);
      if (s->report.n_buffers == 0) {
        s->first_start_v = h2d_finish - batch->stages.transfer;
      }
      const double kernel_finish = timeline_.enqueue(
          tl_stream, gpu::EngineKind::kCompute, batch->stages.kernel);
      double fp_finish = kernel_finish;
      if (batch->stages.fingerprint > 0) {
        fp_finish = timeline_.enqueue(tl_stream, gpu::EngineKind::kCompute,
                                      batch->stages.fingerprint);
      }
      s->last_finish_v = timeline_.enqueue(
          tl_stream, gpu::EngineKind::kCopyD2H, batch->stages.store);
      if (tracer_ != nullptr) {
        trace_batch(*s, *batch, h2d_finish, kernel_finish, fp_finish,
                    s->last_finish_v,
                    s->report.index_seconds - index_seconds_before);
      }

      auto& r = s->report;
      r.n_buffers += 1;
      r.raw_boundaries += batch->boundaries.size();
      r.stage_totals.reader += batch->stages.reader;
      r.stage_totals.transfer += batch->stages.transfer;
      r.stage_totals.kernel += batch->stages.kernel;
      r.stage_totals.fingerprint += batch->stages.fingerprint;
      r.stage_totals.store += batch->stages.store;
      {
        MutexLock lock(mu_);
        aggregate_.n_buffers += 1;
      }
    }
  } catch (...) {
    // Fail the whole service: wake producers blocked in submit() (their
    // queue push fails), let the scheduler drain out, and surface the
    // error from wait()/shutdown().
    engine_->stop();
    MutexLock lock(mu_);
    store_error_ = std::current_exception();
    draining_ = true;
    for (auto& [id, session] : sessions_) session->queue->close();
    sched_cv_.notify_all();
    complete_cv_.notify_all();
  }
}

void ChunkingService::trace_batch(const Session& s,
                                  const core::BoundaryBatch& batch,
                                  double h2d_finish, double kernel_finish,
                                  double fp_finish, double d2h_finish,
                                  double index_seconds) {
  const obs::Labels args{{"tenant", s.report.name},
                         {"seq", std::to_string(batch.seq)}};
  // Engine tracks: exact [finish - duration, finish) intervals from the
  // timeline, so summed track busy == GpuTimeline::engine_busy.
  const double h2d_start = h2d_finish - batch.stages.transfer;
  tracer_->span("engine/h2d", "h2d", h2d_start, h2d_finish, args);
  tracer_->span("engine/compute", "chunk_kernel",
                kernel_finish - batch.stages.kernel, kernel_finish, args);
  if (batch.stages.fingerprint > 0) {
    tracer_->span("engine/compute", "fingerprint_kernel",
                  fp_finish - batch.stages.fingerprint, fp_finish, args);
  }
  tracer_->span("engine/d2h", "store_d2h", d2h_finish - batch.stages.store,
                d2h_finish, args);
  // Tenant track: the client-side produce interval and the buffer's device
  // residency (H2D start through boundary readback).
  const std::string tenant_track = "tenant/" + s.report.name;
  tracer_->span(tenant_track, "reader", s.ready_v - batch.stages.reader,
                s.ready_v, args);
  tracer_->span(tenant_track, "buffer", h2d_start, d2h_finish, args);
  // Store-side index probing: modelled time that runs after the digests
  // land on the host, not on a device engine.
  if (index_seconds > 0) {
    tracer_->span("index", "probe", d2h_finish, d2h_finish + index_seconds,
                  args);
  }
  // Scheduler series, stamped when the buffer reached the device: credit
  // after the dispatch charge, queue depth right after the pop.
  const std::string sched_track = "sched/" + s.report.name;
  tracer_->counter(sched_track, "credit", h2d_start, batch.sched_credit);
  tracer_->counter(sched_track, "queue_depth", h2d_start,
                   static_cast<double>(batch.queue_depth));
}

void ChunkingService::publish_index_delta(const dedup::IndexStats& before) {
  const dedup::IndexStats now = index_->stats();
  obs::Registry& reg = *registry_;
  reg.counter("index.probes_total").add(now.probes - before.probes);
  reg.counter("index.inserts_total").add(now.inserts - before.inserts);
  reg.counter("index.signature_hits_total")
      .add(now.signature_hits - before.signature_hits);
  reg.counter("index.false_signature_hits_total")
      .add(now.false_signature_hits - before.false_signature_hits);
  reg.counter("index.flash_reads_total")
      .add(now.flash_reads - before.flash_reads);
  reg.counter("index.cache_hits_total")
      .add(now.cache_hits - before.cache_hits);
}

// One ChunkBatchView to the session's sink: the chunks appended since
// `first`, their digests, and — when the service retains payloads — a view
// of the rolling tail. Skips chunkless non-eos batches; the eos batch is
// always delivered so sinks have a flush point. Afterwards the tail is
// trimmed to the open chunk's start, keeping the window bounded.
void ChunkingService::deliver_batch(Session& s, std::size_t first, bool eos) {
  if (s.sink != nullptr && (eos || s.chunks.size() > first)) {
    ChunkBatchView view;
    view.stream_id = s.id;
    view.stream_seq = s.batch_seq++;
    view.eos = eos;
    view.chunks = std::span<const chunking::Chunk>(s.chunks).subspan(first);
    if (config_.fingerprint_on_device) {
      view.digests =
          std::span<const dedup::ChunkDigest>(s.digests).subspan(first);
    }
    if (!s.tail.empty()) {
      view.payload = s.tail.window();
      view.payload_base = s.tail.window_base();
      view.tail = &s.tail;
    }
    s.sink->on_batch(view);
  }
  s.tail.trim(s.last_end);
}

void ChunkingService::finalize_session(Session& s, std::uint64_t total_bytes,
                                       std::size_t batch_first) {
  if (config_.fingerprint_on_device) {
    // The engine's device-side cutter already closed the trailing chunk.
    SHREDDER_CHECK_MSG(s.last_end == total_bytes,
                       "fingerprint session ended short of the stream total");
  } else {
    s.filter->finish(total_bytes);
  }
  deliver_batch(s, batch_first, /*eos=*/true);
  auto& r = s.report;
  r.total_bytes = total_bytes;
  r.n_chunks = s.chunks.size();
  r.max_queue_depth = s.max_depth.load(std::memory_order_relaxed);
  r.virtual_start_seconds = s.first_start_v;
  r.virtual_finish_seconds = s.last_finish_v;
  r.virtual_seconds = s.last_finish_v - s.first_start_v;
  r.virtual_throughput_bps =
      r.virtual_seconds > 0
          ? static_cast<double>(total_bytes) / r.virtual_seconds
          : 0.0;
  // Retention: the completed stream's digest list becomes its snapshot
  // manifest (the durable record delete_image walks), and the session's GC
  // pin lifts — chunks this walk zero-stamped are now the sweep's to free.
  if (retention_ && !s.opts.image_id.empty()) {
    retention_->record_image(r.name, s.opts.image_id, s.digests);
  }
  s.pin.release();
  {
    MutexLock lock(mu_);
    aggregate_.total_bytes += total_bytes;
    aggregate_.dedup_stored_bytes += r.stored_bytes;
    aggregate_.tenants.push_back(r);  // summary copy; chunks stay in session
    s.complete = true;
  }
  complete_cv_.notify_all();
}

ServiceReport ChunkingService::shutdown() {
  {
    MutexLock lock(mu_);
    if (stopped_) {
      throw std::logic_error("ChunkingService: shutdown called twice");
    }
    // Every open session must have been finish()ed; wait for completion.
    for (auto& [id, session] : sessions_) {
      if (!session->finishing) {
        std::string msg = "ChunkingService: shutdown with unfinished stream ";
        msg += std::to_string(id);
        throw std::logic_error(msg);
      }
    }
    for (;;) {
      bool done = store_error_ != nullptr;
      if (!done) {
        done = true;
        for (auto& [id, session] : sessions_) {
          if (!session->complete) {
            done = false;
            break;
          }
        }
      }
      if (done) break;
      complete_cv_.wait(mu_);
    }
    draining_ = true;
  }
  sched_cv_.notify_all();
  scheduler_thread_.join();  // closes the engine on exit
  store_thread_.join();
  std::exception_ptr err;
  {
    MutexLock lock(mu_);
    stopped_ = true;
    err = store_error_;
  }
  if (err) std::rethrow_exception(err);

  ServiceReport report = std::move(aggregate_);
  report.virtual_seconds = timeline_.makespan();
  report.aggregate_throughput_bps =
      report.virtual_seconds > 0
          ? static_cast<double>(report.total_bytes) / report.virtual_seconds
          : 0.0;
  report.h2d_busy_seconds = timeline_.engine_busy(gpu::EngineKind::kCopyH2D);
  report.compute_busy_seconds =
      timeline_.engine_busy(gpu::EngineKind::kCompute);
  report.d2h_busy_seconds = timeline_.engine_busy(gpu::EngineKind::kCopyD2H);
  report.device_occupancy =
      report.virtual_seconds > 0
          ? report.compute_busy_seconds / report.virtual_seconds
          : 0.0;
  if (index_) {
    const auto istats = index_->stats();
    report.dedup_unique_chunks = istats.inserts;
    // Summed from the store-thread decisions, not derived from the probe
    // counter: external read-only probes of dedup_index() must not skew it.
    for (const auto& t : report.tenants) {
      report.dedup_duplicate_chunks += t.n_duplicate_chunks;
    }
    report.index_virtual_seconds = istats.virtual_seconds;
  }
  report.wall_seconds = wall_.elapsed_seconds();
  {
    MutexLock tlock(transport_mu_);
    report.transport.assign(transport_health_.begin(),
                            transport_health_.end());
  }
  report.health = health();
  report.degraded_agents =
      static_cast<std::size_t>(report.health.degraded_agents);
  return report;
}

ServiceHealth ChunkingService::health() const {
  ServiceHealth h;
  {
    MutexLock lock(mu_);
    h.open_sessions = open_sessions_;
  }
  const obs::Registry& reg = *registry_;
  h.buffers_dispatched = reg.counter_sum("service.buffers_dispatched_total");
  h.bytes_ingested = reg.counter_sum("service.bytes_ingested_total");
  h.transport_reports = reg.counter_sum("service.transport_reports_total");
  h.degraded_agents = reg.counter_sum("service.transport_degraded_total");
  h.transport_retransmits =
      reg.counter_sum("service.transport_retransmits_total");
  h.transport_repairs = reg.counter_sum("service.transport_repairs_total");
  return h;
}

retention::RetentionManager::DeleteStats ChunkingService::delete_image(
    const std::string& tenant, const std::string& image) {
  if (!retention_) {
    throw std::logic_error(
        "ChunkingService: delete_image requires dedup_on_store");
  }
  return retention_->delete_image(tenant, image);
}

void ChunkingService::set_tenant_transport(const std::string& tenant,
                                           const TenantTransport& transport) {
  MutexLock lock(transport_mu_);
  tenant_transports_[tenant] = transport;
}

std::optional<TenantTransport> ChunkingService::tenant_transport(
    const std::string& tenant) const {
  MutexLock lock(transport_mu_);
  const auto it = tenant_transports_.find(tenant);
  if (it == tenant_transports_.end()) return std::nullopt;
  return it->second;
}

void ChunkingService::report_transport_health(TenantTransportHealth health) {
  // The registry is the single source of truth for the verdict counters;
  // health()/shutdown() read them back instead of a parallel tally.
  m_transport_reports_->add(1);
  if (health.degraded) m_transport_degraded_->add(1);
  m_transport_retx_->add(health.retransmits);
  m_transport_repairs_->add(health.repairs);
  MutexLock lock(transport_mu_);
  transport_health_.push_back(std::move(health));
  while (transport_health_.size() > config_.transport_health_capacity) {
    transport_health_.pop_front();
  }
}

std::vector<TenantTransportHealth> ChunkingService::transport_health() const {
  MutexLock lock(transport_mu_);
  return {transport_health_.begin(), transport_health_.end()};
}

}  // namespace shredder::service
