// Multi-tenant chunking service: one GPU pipeline shared by many client
// streams.
//
// Shredder's premise (paper §3–§5) is that the device chunks far faster than
// any single client produces data, so a dedicated per-stream pipeline leaves
// the GPU idle between buffers. ChunkingService closes that gap: it keeps
// one core::PipelineEngine (pinned ring + device twins + kernel) alive for
// the process lifetime and multiplexes N concurrent tenant streams over it.
//
// Architecture (docs/service.md has the full design):
//
//   client threads ──submit()──► per-tenant BoundedQueue  (backpressure #1)
//        scheduler thread: weighted-fair pick ──► engine.submit()
//                                  (pinned-slot lease = backpressure #2)
//        engine: transfer thread ─► kernel thread  (tagged BoundaryBatches)
//        store thread: per-tenant min/max splice, chunk upcalls, stats
//
// Per-tenant session state (Rabin carry across buffers, min/max filter,
// sequence numbers) keeps every stream's output bit-identical to a dedicated
// core::Shredder::run over the same bytes — the service equivalence suite in
// tests/service_test.cc asserts exactly that. With fingerprint_on_device the
// engine also SHA-256-hashes every chunk on the device and tenants receive
// chunk+digest pairs (tests/fingerprint_test.cc holds the digests
// bit-identical to host dedup::Sha256).
//
// Virtual-time model: every tenant gets a twin pair of GpuTimeline streams
// (double buffering); H2D/compute/D2H ops of all tenants compete for the
// three device engines, and a buffer cannot start its H2D before the
// tenant's modelled channel has delivered it. Aggregate throughput is
// total bytes over the timeline makespan — the number BENCH_service.json
// tracks against the single-stream baseline.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "chunking/chunk.h"
#include "chunking/minmax.h"
#include "common/annotations.h"
#include "common/bytes.h"
#include "common/mutex.h"
#include "common/queue.h"
#include "common/timer.h"
#include "core/pipeline.h"
#include "core/sink.h"
#include "dedup/index.h"
#include "dedup/store.h"
#include "core/source.h"
#include "gpusim/device.h"
#include "gpusim/spec.h"
#include "gpusim/timeline.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "rabin/rabin.h"
#include "retention/retention.h"

namespace shredder::service {

struct ServiceConfig {
  chunking::ChunkerConfig chunker;
  std::size_t buffer_bytes = 32ull * 1024 * 1024;  // device dispatch unit
  core::GpuMode mode = core::GpuMode::kStreamsCoalesced;
  core::KernelParams kernel;
  std::size_t ring_slots = 4;
  gpu::DeviceSpec device;
  gpu::HostSpec host;
  std::size_t sim_threads = 0;     // host threads simulating the GPU
  std::size_t max_tenants = 64;    // concurrent session cap (admission)
  std::size_t tenant_queue_depth = 4;  // per-tenant buffers awaiting dispatch
  // Run the engine's on-device fingerprint stage for every tenant: chunks
  // arrive with device-computed SHA-256 digests (bit-identical to host
  // dedup::Sha256), delivered via TenantOptions::on_digest and
  // TenantResult::digests.
  bool fingerprint_on_device = false;
  // Deduplicate every tenant's chunks inline on the store thread against one
  // service-wide fingerprint index (cross-tenant dedup): per-chunk
  // lookup_or_insert keyed by the device digest, duplicate counters and
  // modelled index time reported per tenant. Requires fingerprint_on_device
  // (the index consumes the device digests). The backend — paper-baseline
  // map or ChunkStash-style sparse index — is picked by `index.kind`; the
  // sparse backend's container prefetch cache is keyed per tenant stream.
  //
  // With dedup_on_store the service is a full backup target: unique chunk
  // payloads land in a shared content-addressed ChunkStore (duplicates add a
  // reference), per-tenant stored_bytes and ServiceReport totals track what
  // each stream contributed, and tenant sinks receive payload views.
  bool dedup_on_store = false;
  dedup::IndexConfig index;
  // The chunk store backing dedup_on_store. Leave null for a service-owned
  // instance; pass one in to share a store across services (the index stays
  // per service, so cross-service duplicates are caught by the store's own
  // digest keying). Ignored — and rejected — without dedup_on_store.
  std::shared_ptr<dedup::ChunkStore> store;
  // Bound on the retained per-tenant transport health reports (oldest
  // evicted); see report_transport_health below.
  std::size_t transport_health_capacity = 1024;
  // Optional metrics registry (borrowed; must outlive the service). Null =>
  // the service owns a private one, reachable via registry(). The service
  // publishes service.* counters, forwards the registry to its pipeline
  // engine (pipeline.* metrics) and aggregates transport-health verdicts
  // through it (see ServiceHealth).
  obs::Registry* registry = nullptr;
  // Optional virtual-time tracer (borrowed). When set, the store thread
  // emits one span per pipeline stage per buffer on the shared engine
  // tracks ("engine/h2d", "engine/compute", "engine/d2h") and per-tenant
  // tracks, plus scheduler credit/queue-depth counter series — Chrome
  // trace-event exportable via obs::Tracer::to_json (docs/observability.md).
  obs::Tracer* tracer = nullptr;

  void validate() const;
};

// Per-tenant overrides for the backup transport a server uses when shipping
// this tenant's snapshots (backup/transport.h). Plain values only — the
// service sits below the backup layer, so this is a registry of knobs, not
// of backup types. Sentinels mean "keep the server default": 0 for the
// counts/timeouts/seed, negative for the rates.
struct TenantTransport {
  std::size_t window_frames = 0;  // sender window override; 0 = default
  double rto_s = 0;               // initial RTO override; 0 = default
  double agent_apply_bw = -1;     // agent apply bandwidth; <0 = default
  // FaultModel probabilities; <0 = keep default.
  double drop = -1;
  double reorder = -1;
  double duplicate = -1;
  double delay = -1;
  double stall = -1;
  std::uint64_t fault_seed = 0;   // 0 = default
};

// One snapshot's transport health as reported back by a backup server:
// enough to spot the degraded agents in a fleet without holding backup-layer
// stats types here.
struct TenantTransportHealth {
  std::string tenant;
  std::uint64_t frames_sent = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t repairs = 0;      // repair-data frames the server served
  double stall_seconds = 0;       // sender time spent window-blocked
  double link_seconds = 0;        // transport makespan
  bool degraded = false;
};

// Unified live-health roll-up, readable at any time via
// ChunkingService::health(). Every count is aggregated from the metrics
// registry (summed across label sets with Registry::counter_sum), so the
// verdict and the exported metrics can never disagree. Absorbs the old
// ad-hoc degraded_agents tally: `degraded_agents` here and in the shutdown
// report both read the service.transport_degraded_total counter.
struct ServiceHealth {
  std::size_t open_sessions = 0;
  std::uint64_t buffers_dispatched = 0;   // service.buffers_dispatched_total
  std::uint64_t bytes_ingested = 0;       // service.bytes_ingested_total
  std::uint64_t transport_reports = 0;    // service.transport_reports_total
  std::uint64_t degraded_agents = 0;      // service.transport_degraded_total
  std::uint64_t transport_retransmits = 0;  // ...transport_retransmits_total
  std::uint64_t transport_repairs = 0;      // ...transport_repairs_total

  bool healthy() const noexcept { return degraded_agents == 0; }
};

// Legacy per-chunk upcall types, shared with core (see core/sink.h).
using ChunkCallback = ::shredder::ChunkCallback;
using DigestCallback = ::shredder::DigestCallback;

struct TenantOptions {
  std::string name;          // label for reports; defaults to "tenant-<id>"
  std::uint32_t weight = 1;  // weighted-fair share of device dispatches
  double channel_bw = 0;     // modelled client channel, B/s; 0 = reader_bw
  // Batch-first consumer: one ChunkBatchView per drained buffer that
  // finalized chunks plus an eos batch, delivered on the store thread in
  // stream order. Not owned; must outlive the session. Payload views ride
  // whenever the sink wants_payload() (per-session retention is a
  // refcounted slot lease, core/lease.h — no copy, so any tenant may ask,
  // including ones opened mid-run) or the service stores payloads
  // (dedup_on_store). When a sink is set the per-chunk callbacks below are
  // ignored.
  ChunkSink* sink = nullptr;
  // Per-chunk shims (wrapped in a PerChunkAdapter over the batch path).
  ChunkCallback on_chunk;    // invoked on the store thread, in stream order
  DigestCallback on_digest;  // per-chunk digest upcall (fingerprint mode)
  // Snapshot identity for retention (dedup_on_store services only). When
  // set, the session's ordered digest list is recorded as a chunk manifest
  // under (name, image_id) once the stream completes, making the snapshot
  // deletable via delete_image(). Empty = the stream leaves no manifest
  // (its store references are then permanent until the service dies).
  std::string image_id;
};

// Per-tenant statistics, final after the session completes.
struct TenantReport {
  std::uint32_t stream_id = 0;
  std::string name;
  std::uint32_t weight = 1;
  std::uint64_t total_bytes = 0;
  std::uint64_t n_buffers = 0;
  std::uint64_t raw_boundaries = 0;
  std::uint64_t n_chunks = 0;
  core::StageSeconds stage_totals;  // summed virtual stage durations
  // Virtual timestamps of this tenant's first device-op start and last
  // device-op finish on the shared timeline, the duration between them
  // (what a dedicated run's makespan corresponds to) and the stream
  // throughput it implies (bytes / virtual_seconds).
  double virtual_start_seconds = 0;
  double virtual_finish_seconds = 0;
  double virtual_seconds = 0;
  double virtual_throughput_bps = 0;
  std::size_t max_queue_depth = 0;  // backpressure high-water mark

  // Inline-dedup counters (dedup_on_store mode): chunks of this stream that
  // were already in the shared index, the modelled index time this stream's
  // probes consumed, and the unique payload bytes this stream added to the
  // shared chunk store.
  std::uint64_t n_duplicate_chunks = 0;
  std::uint64_t duplicate_bytes = 0;
  std::uint64_t stored_bytes = 0;
  double index_seconds = 0;
};

struct TenantResult {
  TenantReport report;
  std::vector<chunking::Chunk> chunks;  // the stream's final chunking
  // One device digest per chunk when the service fingerprints on-device.
  std::vector<dedup::ChunkDigest> digests;
};

// Aggregate service report, produced by shutdown().
struct ServiceReport {
  std::uint64_t total_bytes = 0;
  std::uint64_t n_buffers = 0;
  std::size_t n_tenants = 0;           // sessions admitted over the lifetime
  double virtual_seconds = 0;          // timeline makespan over all tenants
  double aggregate_throughput_bps = 0;
  double h2d_busy_seconds = 0;
  double compute_busy_seconds = 0;
  double d2h_busy_seconds = 0;
  double device_occupancy = 0;         // compute-engine busy fraction
  double init_seconds = 0;             // one-time pinned-ring construction
  double wall_seconds = 0;             // real host time the service ran
  // Shared-index totals (dedup_on_store mode).
  std::uint64_t dedup_unique_chunks = 0;
  std::uint64_t dedup_duplicate_chunks = 0;
  std::uint64_t dedup_stored_bytes = 0;  // payload bytes added to the store
  double index_virtual_seconds = 0;
  std::vector<TenantReport> tenants;   // in completion order
  // Backup-transport health reports received over the service lifetime and
  // how many of them crossed a degraded threshold.
  std::vector<TenantTransportHealth> transport;
  std::size_t degraded_agents = 0;
  // Final registry-backed health roll-up (same counters health() reads).
  ServiceHealth health;
};

class ChunkingService {
 public:
  using StreamId = std::uint32_t;

  // Throws std::invalid_argument on bad configuration.
  explicit ChunkingService(ServiceConfig config);
  ~ChunkingService();

  ChunkingService(const ChunkingService&) = delete;
  ChunkingService& operator=(const ChunkingService&) = delete;

  // Admits a new tenant stream. Throws std::runtime_error when
  // max_tenants sessions are currently open or the service is shut down.
  StreamId open(TenantOptions opts = {});

  // Appends bytes to the stream. Each stream is single-producer: one thread
  // per StreamId (different streams may submit concurrently). Blocks while
  // the tenant's dispatch queue is full — the backpressure the paper's SAN
  // reader would exert on its producer.
  void submit(StreamId id, ByteSpan data);

  // Non-blocking submit: returns false (consuming nothing) if the bytes
  // would have to wait on a full dispatch queue.
  bool try_submit(StreamId id, ByteSpan data);

  // Marks the stream complete; no further submits are allowed.
  void finish(StreamId id);

  // Blocks until the stream has fully drained, then returns its chunks and
  // report and frees the session slot. finish() must have been called.
  TenantResult wait(StreamId id);

  // Convenience: feed a whole DataSource as one tenant (open/submit/finish/
  // wait). Runs on the calling thread; concurrent calls = concurrent tenants.
  TenantResult chunk_stream(core::DataSource& source, TenantOptions opts = {});

  // Waits for all open sessions to complete (every stream must have been
  // finish()ed), stops the pipeline and returns the aggregate report.
  // The service cannot be used afterwards.
  ServiceReport shutdown();

  // --- per-tenant backup-transport registry -------------------------------
  // Backup servers driving this service consult the registry before opening
  // a transport to a tenant's agent, and report each snapshot's transport
  // health afterwards (bounded history; degraded agents are aggregated into
  // the shutdown report). Thread-safe against concurrent snapshots.
  void set_tenant_transport(const std::string& tenant,
                            const TenantTransport& transport);
  std::optional<TenantTransport> tenant_transport(
      const std::string& tenant) const;
  void report_transport_health(TenantTransportHealth health);
  std::vector<TenantTransportHealth> transport_health() const;

  // The metrics registry the service publishes into: the configured one, or
  // the service-owned fallback. Valid for the service's lifetime.
  obs::Registry& registry() noexcept { return *registry_; }
  // Live health roll-up aggregated from the registry; thread-safe, callable
  // at any point of the service lifecycle.
  ServiceHealth health() const;

  const ServiceConfig& config() const noexcept { return config_; }
  const rabin::RabinTables& tables() const noexcept { return tables_; }
  // The shared inline-dedup index; nullptr unless dedup_on_store is set.
  const dedup::IndexBackend* dedup_index() const noexcept {
    return index_.get();
  }
  // The shared chunk store holding unique payloads; nullptr unless
  // dedup_on_store is set.
  const dedup::ChunkStore* chunk_store() const noexcept {
    return store_.get();
  }

  // --- snapshot retention (dedup_on_store mode) ---------------------------
  // The retention manager over the shared chunk store (manifests, GC,
  // compaction); nullptr unless dedup_on_store. Sessions opened with
  // TenantOptions::image_id record their manifests here.
  retention::RetentionManager* retention() noexcept { return retention_.get(); }
  const retention::RetentionManager* retention() const noexcept {
    return retention_.get();
  }

  // Per-tenant snapshot delete: walks the manifest recorded under
  // (tenant, image) — the tenant's name and its TenantOptions::image_id —
  // releasing one shared-store reference per chunk occurrence. Safe against
  // concurrent sessions: every open session holds a GC pin, and the dedup
  // path self-heals stale index hits. Throws std::logic_error without
  // dedup_on_store, retention::RetentionError for unknown / in-progress /
  // double deletes.
  retention::RetentionManager::DeleteStats delete_image(
      const std::string& tenant, const std::string& image);

 private:
  struct PendingBuffer {
    ByteVec payload;
    double reader_seconds = 0;
  };

  struct Session {
    StreamId id = 0;
    TenantOptions opts;
    double channel_bw = 0;

    // Client side (single producer).
    ByteVec staging;  // partial buffer accumulating towards buffer_bytes
    std::unique_ptr<BoundedQueue<PendingBuffer>> queue;
    std::atomic<std::size_t> max_depth{0};
    bool finishing = false;  // guarded by mu_

    // Scheduler side.
    ByteVec carry;  // last w-1 payload bytes, window context for next buffer
    std::uint64_t dispatched_bytes = 0;
    std::uint64_t seq = 0;
    double credit = 0;  // dispatches weighted by 1/weight; min credit wins
    bool eos_sent = false;  // guarded by mu_

    // Store side.
    std::unique_ptr<chunking::MinMaxFilter> filter;
    std::uint64_t last_end = 0;
    std::vector<chunking::Chunk> chunks;
    std::vector<dedup::ChunkDigest> digests;  // fingerprint mode, 1:1 chunks
    // Batch delivery: the consumer sink (opts.sink, or the adapter wrapping
    // the per-chunk callbacks), the delivered-batch ordinal, and — when the
    // session retains payloads — the rolling lease window from which chunk
    // payloads are sliced. `retain` is fixed at open(): dedup_on_store
    // services always retain (the store slices unique chunks), otherwise
    // only sessions whose sink wants_payload(). The tail runs with slot
    // cap 0 so no tenant parks pinned slots across batches — N sessions
    // each holding under-cap leases could otherwise starve the shared ring.
    ChunkSink* sink = nullptr;
    std::unique_ptr<PerChunkAdapter> adapter;
    // GC pin held for the session's whole dedup walk (dedup_on_store): a
    // concurrent gc() must not free a chunk between this stream's index hit
    // and its add_ref. Released by finalize_session.
    retention::RetentionManager::Pin pin;
    std::uint64_t batch_seq = 0;
    bool retain = false;
    PayloadTail tail;
    TenantReport report;
    double ready_v = 0;         // cumulative modelled client-produce time
    double first_start_v = 0;   // start of the first H2D on the timeline
    double last_finish_v = 0;   // finish time of the latest device op
    std::size_t tl_base = static_cast<std::size_t>(-1);  // twin stream pair
    bool complete = false;  // guarded by mu_
  };

  Session* find_session(StreamId id);
  void enqueue_payload(Session& s, ByteVec payload);
  Session* pick_locked(bool* send_eos) REQUIRES(mu_);
  void dispatch(Session& s, bool send_eos);
  void scheduler_loop();
  void store_loop();
  // Emits one buffer's stage spans: engine tracks use the exact start/finish
  // the timeline assigned (so Tracer::track_busy("engine/X") equals
  // GpuTimeline::engine_busy by construction), tenant tracks get the
  // client-side reader span and the device-residency span, and the sched
  // track gets credit/queue-depth counter points. Store thread only.
  void trace_batch(const Session& s, const core::BoundaryBatch& batch,
                   double h2d_finish, double kernel_finish, double fp_finish,
                   double d2h_finish, double index_seconds);
  // Adds the IndexStats movement since `before` to the index.* counters.
  void publish_index_delta(const dedup::IndexStats& before);
  void deliver_batch(Session& s, std::size_t first, bool eos);
  void finalize_session(Session& s, std::uint64_t total_bytes,
                        std::size_t batch_first);

  ServiceConfig config_;
  rabin::RabinTables tables_;
  std::unique_ptr<gpu::Device> device_;
  // Observability: registry_ always points at a live registry (config's or
  // the owned fallback); tracer_ may be null. Hot-path counters are resolved
  // once here, not per buffer.
  std::unique_ptr<obs::Registry> owned_registry_;
  obs::Registry* registry_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
  obs::Counter* m_bytes_ingested_ = nullptr;
  obs::Counter* m_buffers_dispatched_ = nullptr;
  obs::Counter* m_transport_reports_ = nullptr;
  obs::Counter* m_transport_degraded_ = nullptr;
  obs::Counter* m_transport_retx_ = nullptr;
  obs::Counter* m_transport_repairs_ = nullptr;
  std::unique_ptr<core::PipelineEngine> engine_;
  // Shared inline-dedup state, store thread only (dedup_on_store mode).
  std::unique_ptr<dedup::IndexBackend> index_;
  std::shared_ptr<dedup::ChunkStore> store_;
  std::unique_ptr<retention::RetentionManager> retention_;
  std::uint64_t next_store_offset_ = 0;
  const Stopwatch wall_;

  // Backup-transport registry + health history (own lock: touched by backup
  // servers around snapshots, never on the chunking hot path).
  mutable Mutex transport_mu_;
  std::unordered_map<std::string, TenantTransport> tenant_transports_
      GUARDED_BY(transport_mu_);
  std::deque<TenantTransportHealth> transport_health_
      GUARDED_BY(transport_mu_);

  mutable Mutex mu_;  // sessions map, scheduler wakeups, completion
  CondVar sched_cv_;
  CondVar complete_cv_;
  std::unordered_map<StreamId, std::unique_ptr<Session>> sessions_
      GUARDED_BY(mu_);
  StreamId next_id_ GUARDED_BY(mu_) = 1;
  std::size_t open_sessions_ GUARDED_BY(mu_) = 0;
  bool draining_ GUARDED_BY(mu_) = false;
  bool stopped_ GUARDED_BY(mu_) = false;
  std::exception_ptr store_error_ GUARDED_BY(mu_);

  gpu::GpuTimeline timeline_;
  ServiceReport aggregate_;  // store thread only, until shutdown

  std::thread scheduler_thread_;
  std::thread store_thread_;
};

}  // namespace shredder::service
