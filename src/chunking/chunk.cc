#include "chunking/chunk.h"

namespace shredder::chunking {

std::vector<Chunk> boundaries_to_chunks(const std::vector<std::uint64_t>& ends,
                                        std::uint64_t total) {
  std::vector<Chunk> chunks;
  if (total == 0) {
    if (!ends.empty()) {
      throw std::invalid_argument("boundaries_to_chunks: ends for empty data");
    }
    return chunks;
  }
  if (ends.empty() || ends.back() != total) {
    throw std::invalid_argument(
        "boundaries_to_chunks: final boundary must equal total size");
  }
  chunks.reserve(ends.size());
  std::uint64_t last = 0;
  for (std::uint64_t e : ends) {
    if (e <= last || e > total) {
      throw std::invalid_argument(
          "boundaries_to_chunks: boundaries must be ascending and <= total");
    }
    chunks.push_back(Chunk{last, e - last});
    last = e;
  }
  return chunks;
}

}  // namespace shredder::chunking
