#include "chunking/parallel.h"

#include <algorithm>

#include "chunking/minmax.h"
#include "common/timer.h"

namespace shredder::chunking {

namespace {

// Per-chunk record node, allocated via the configured Allocator to exercise
// allocator behaviour under contention (the phenomenon §5.1 is about).
struct BoundaryNode {
  std::uint64_t end;
  BoundaryNode* next;
};

}  // namespace

ParallelChunker::ParallelChunker(const rabin::RabinTables& tables,
                                 ChunkerConfig config, std::size_t threads,
                                 AllocMode alloc_mode)
    : tables_(tables),
      config_(config),
      alloc_mode_(alloc_mode),
      pool_(threads) {
  config_.validate();
  if (config_.window != tables.window()) {
    throw std::invalid_argument(
        "ParallelChunker: config window differs from Rabin tables window");
  }
}

std::vector<std::uint64_t> ParallelChunker::raw_boundaries(ByteSpan data) {
  const std::size_t n = data.size();
  const std::size_t parts = std::max<std::size_t>(1, pool_.size());
  const std::size_t w = tables_.window();

  // Per-region boundary lists (linked nodes through the allocator, then
  // flattened). Regions are contiguous; region r covers scan indices
  // [r*len, min((r+1)*len, n)).
  struct RegionOut {
    BoundaryNode* head = nullptr;
    BoundaryNode* tail = nullptr;
    std::uint64_t count = 0;
  };
  std::vector<RegionOut> regions(parts);
  LockedHeapAllocator shared_heap;
  std::vector<std::unique_ptr<ArenaAllocator>> arenas;
  if (alloc_mode_ == AllocMode::kThreadArena) {
    arenas.reserve(parts);
    for (std::size_t i = 0; i < parts; ++i) {
      arenas.push_back(std::make_unique<ArenaAllocator>());
    }
  }

  Stopwatch scan_watch;
  pool_.for_each_index(parts, [&](std::size_t r) {
    const std::size_t len = (n + parts - 1) / parts;
    const std::size_t begin = r * len;
    const std::size_t end = std::min(n, begin + len);
    if (begin >= end) return;
    // Warm the window with up to w-1 preceding bytes so raw boundaries are
    // identical to a serial scan.
    const std::size_t warm = std::min(begin, w - 1);
    ByteSpan slice = data.subspan(begin - warm, (end - begin) + warm);
    Allocator* alloc = alloc_mode_ == AllocMode::kThreadArena
                           ? static_cast<Allocator*>(arenas[r].get())
                           : static_cast<Allocator*>(&shared_heap);
    RegionOut& out = regions[r];
    scan_raw(tables_, config_, slice, warm,
             /*base=*/static_cast<std::uint64_t>(begin - warm),
             [&](std::uint64_t e, std::uint64_t) {
               auto* node = static_cast<BoundaryNode*>(
                   alloc->allocate(sizeof(BoundaryNode)));
               node->end = e;
               node->next = nullptr;
               if (out.tail == nullptr) {
                 out.head = out.tail = node;
               } else {
                 out.tail->next = node;
                 out.tail = node;
               }
               ++out.count;
             });
  });
  stats_.scan_seconds = scan_watch.elapsed_seconds();
  stats_.bytes_scanned = n;

  // Merge: regions are in stream order and internally ascending.
  Stopwatch merge_watch;
  std::uint64_t total_count = 0;
  for (const auto& r : regions) total_count += r.count;
  std::vector<std::uint64_t> raw;
  raw.reserve(static_cast<std::size_t>(total_count));
  for (const auto& r : regions) {
    for (BoundaryNode* node = r.head; node != nullptr; node = node->next) {
      raw.push_back(node->end);
    }
  }
  stats_.merge_seconds = merge_watch.elapsed_seconds();
  stats_.raw_boundaries = raw.size();
  return raw;
}

std::vector<Chunk> ParallelChunker::chunk(ByteSpan data) {
  auto raw = raw_boundaries(data);
  Stopwatch merge_watch;
  auto ends =
      apply_min_max(raw, data.size(), config_.min_size, config_.max_size);
  auto chunks = boundaries_to_chunks(ends, data.size());
  stats_.merge_seconds += merge_watch.elapsed_seconds();
  return chunks;
}

}  // namespace shredder::chunking
