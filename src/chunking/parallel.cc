#include "chunking/parallel.h"

#include <algorithm>

#include "chunking/minmax.h"
#include "common/timer.h"

namespace shredder::chunking {

namespace {

// Per-region boundary accumulator: flat blocks of end offsets drawn from the
// configured Allocator, chained only block-to-block. Compared with the old
// one-node-per-boundary linked list this turns the merge into a handful of
// memcpy-style appends per region (no per-boundary pointer chasing) and
// amortises allocator traffic geometrically — while still routing every
// byte of storage through the Allocator, so the malloc-vs-arena contrast of
// §5.1 remains measurable.
class BoundarySink {
 public:
  explicit BoundarySink(Allocator* alloc) noexcept : alloc_(alloc) {}

  void push(std::uint64_t end) {
    if (len_ == cap_) grow();
    entries_[len_++] = end;
  }

  std::uint64_t count() const noexcept {
    std::uint64_t total = len_;
    for (const Block* b = head_; b != nullptr; b = b->next) total += b->len;
    return total;
  }

  // Appends all accumulated offsets, in push order, to `out`.
  void append_to(std::vector<std::uint64_t>& out) const {
    for (const Block* b = head_; b != nullptr; b = b->next) {
      const auto* e = entries_of(b);
      out.insert(out.end(), e, e + b->len);
    }
    out.insert(out.end(), entries_, entries_ + len_);
  }

 private:
  struct Block {
    Block* next;
    std::size_t len;
  };

  static std::uint64_t* entries_of(Block* b) noexcept {
    return reinterpret_cast<std::uint64_t*>(b + 1);
  }
  static const std::uint64_t* entries_of(const Block* b) noexcept {
    return reinterpret_cast<const std::uint64_t*>(b + 1);
  }

  void grow() {
    if (tail_ != nullptr) tail_->len = len_;
    cap_ = cap_ == 0 ? kFirstBlockEntries : cap_ * 2;
    auto* block = static_cast<Block*>(
        alloc_->allocate(sizeof(Block) + cap_ * sizeof(std::uint64_t)));
    block->next = nullptr;
    block->len = 0;
    if (tail_ == nullptr) {
      head_ = block;
    } else {
      tail_->next = block;
    }
    tail_ = block;
    entries_ = entries_of(block);
    len_ = 0;
  }

  static constexpr std::size_t kFirstBlockEntries = 256;

  Allocator* alloc_;
  Block* head_ = nullptr;
  Block* tail_ = nullptr;       // == block entries_ points into
  std::uint64_t* entries_ = nullptr;
  std::size_t len_ = 0;         // filled entries in the tail block
  std::size_t cap_ = 0;         // capacity of the tail block
};

}  // namespace

ParallelChunker::ParallelChunker(const rabin::RabinTables& tables,
                                 ChunkerConfig config, std::size_t threads,
                                 AllocMode alloc_mode)
    : tables_(tables),
      config_(config),
      alloc_mode_(alloc_mode),
      pool_(threads) {
  config_.validate();
  if (config_.window != tables.window()) {
    throw std::invalid_argument(
        "ParallelChunker: config window differs from Rabin tables window");
  }
}

std::vector<std::uint64_t> ParallelChunker::raw_boundaries(ByteSpan data) {
  const std::size_t n = data.size();
  const std::size_t parts = std::max<std::size_t>(1, pool_.size());
  const std::size_t w = tables_.window();

  // Per-region flat boundary buffers (arena-backed blocks through the
  // allocator). Regions are contiguous; region r covers scan indices
  // [r*len, min((r+1)*len, n)).
  std::vector<std::unique_ptr<BoundarySink>> regions(parts);
  LockedHeapAllocator shared_heap;
  std::vector<std::unique_ptr<ArenaAllocator>> arenas;
  if (alloc_mode_ == AllocMode::kThreadArena) {
    arenas.reserve(parts);
    for (std::size_t i = 0; i < parts; ++i) {
      arenas.push_back(std::make_unique<ArenaAllocator>());
    }
  }

  Stopwatch scan_watch;
  pool_.for_each_index(parts, [&](std::size_t r) {
    const std::size_t len = (n + parts - 1) / parts;
    const std::size_t begin = r * len;
    const std::size_t end = std::min(n, begin + len);
    if (begin >= end) return;
    // Warm the window with up to w-1 preceding bytes so raw boundaries are
    // identical to a serial scan.
    const std::size_t warm = std::min(begin, w - 1);
    ByteSpan slice = data.subspan(begin - warm, (end - begin) + warm);
    Allocator* alloc = alloc_mode_ == AllocMode::kThreadArena
                           ? static_cast<Allocator*>(arenas[r].get())
                           : static_cast<Allocator*>(&shared_heap);
    regions[r] = std::make_unique<BoundarySink>(alloc);
    BoundarySink& out = *regions[r];
    scan_buffer(tables_, config_, slice, warm,
                /*base=*/static_cast<std::uint64_t>(begin - warm),
                [&](std::uint64_t e, std::uint64_t) { out.push(e); });
  });
  stats_.scan_seconds = scan_watch.elapsed_seconds();
  stats_.bytes_scanned = n;

  // Merge: regions are in stream order and internally ascending, so the
  // merge is one bulk append per block.
  Stopwatch merge_watch;
  std::uint64_t total_count = 0;
  for (const auto& r : regions) {
    if (r != nullptr) total_count += r->count();
  }
  std::vector<std::uint64_t> raw;
  raw.reserve(static_cast<std::size_t>(total_count));
  for (const auto& r : regions) {
    if (r != nullptr) r->append_to(raw);
  }
  stats_.merge_seconds = merge_watch.elapsed_seconds();
  stats_.raw_boundaries = raw.size();
  return raw;
}

std::vector<Chunk> ParallelChunker::chunk(ByteSpan data) {
  auto raw = raw_boundaries(data);
  Stopwatch merge_watch;
  auto ends =
      apply_min_max(raw, data.size(), config_.min_size, config_.max_size);
  auto chunks = boundaries_to_chunks(ends, data.size());
  stats_.merge_seconds += merge_watch.elapsed_seconds();
  return chunks;
}

}  // namespace shredder::chunking
