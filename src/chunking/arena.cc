#include "chunking/arena.h"

#include <stdexcept>

namespace shredder::chunking {

void* LockedHeapAllocator::allocate(std::size_t size) {
  if (size == 0) throw std::invalid_argument("allocate: size 0");
  MutexLock lock(mutex_);
  blocks_.push_back(std::make_unique<std::byte[]>(size));
  return blocks_.back().get();
}

ArenaAllocator::ArenaAllocator(std::size_t slab_size) : slab_size_(slab_size) {
  if (slab_size == 0) throw std::invalid_argument("ArenaAllocator: slab 0");
}

void* ArenaAllocator::allocate(std::size_t size) {
  if (size == 0) throw std::invalid_argument("allocate: size 0");
  if (size > slab_size_) {
    // Oversized allocations get their own slab.
    slabs_.push_back(std::make_unique<std::byte[]>(size));
    return slabs_.back().get();
  }
  // Align to 8 bytes.
  used_ = (used_ + 7) & ~std::size_t{7};
  if (slabs_.empty() || current_ >= slabs_.size() ||
      used_ + size > slab_size_) {
    if (current_ + 1 < slabs_.size()) {
      ++current_;
    } else {
      slabs_.push_back(std::make_unique<std::byte[]>(slab_size_));
      current_ = slabs_.size() - 1;
    }
    used_ = 0;
  }
  void* p = slabs_[current_].get() + used_;
  used_ += size;
  return p;
}

void ArenaAllocator::reset() noexcept {
  current_ = 0;
  used_ = 0;
}

}  // namespace shredder::chunking
