#include "chunking/samplebyte.h"

#include <stdexcept>

#include "common/rng.h"

namespace shredder::chunking {

SampleByteChunker::SampleByteChunker(std::uint64_t expected_size,
                                     unsigned marker_bytes, std::uint64_t seed)
    : expected_size_(expected_size), skip_(expected_size / 2) {
  if (expected_size < 2) {
    throw std::invalid_argument("SampleByteChunker: expected_size >= 2");
  }
  if (marker_bytes == 0 || marker_bytes > 256) {
    throw std::invalid_argument("SampleByteChunker: marker_bytes in [1,256]");
  }
  SplitMix64 rng(seed);
  unsigned placed = 0;
  while (placed < marker_bytes) {
    const auto b = static_cast<std::size_t>(rng.next_below(256));
    if (!is_marker_[b]) {
      is_marker_[b] = true;
      ++placed;
    }
  }
}

std::vector<std::uint64_t> SampleByteChunker::boundaries(ByteSpan data) const {
  std::vector<std::uint64_t> ends;
  const std::uint64_t n = data.size();
  if (n == 0) return ends;
  std::uint64_t i = 0;
  while (i < n) {
    if (is_marker_[data[static_cast<std::size_t>(i)]]) {
      const std::uint64_t end = std::min<std::uint64_t>(i + 1, n);
      ends.push_back(end);
      i = end + skip_;  // skip p/2 bytes after a boundary (EndRE)
    } else {
      ++i;
    }
  }
  if (ends.empty() || ends.back() != n) ends.push_back(n);
  return ends;
}

std::vector<Chunk> SampleByteChunker::chunk(ByteSpan data) const {
  return boundaries_to_chunks(boundaries(data), data.size());
}

}  // namespace shredder::chunking
