// Allocators used by the parallel host chunker (paper §5.1).
//
// The paper found that per-chunk dynamic allocation serialises the pthreads
// chunker and switched to the Hoard allocator. We reproduce the contrast
// with two allocation strategies behind one interface:
//   * LockedHeapAllocator — a deliberately global-locked heap ("malloc" as it
//     behaves under contention in a 2011 glibc),
//   * ArenaAllocator      — a per-thread slab arena (the Hoard substitution:
//     thread-local allocation, no shared lock on the hot path).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/annotations.h"
#include "common/mutex.h"

namespace shredder::chunking {

// Interface: bump-allocates `size`-byte blocks. Memory lives until the
// allocator is destroyed (chunk records are gathered before that).
class Allocator {
 public:
  virtual ~Allocator() = default;
  virtual void* allocate(std::size_t size) = 0;
};

// Global-locked heap: every allocation takes a shared mutex, modelling a
// serialising malloc under multithreaded load.
class LockedHeapAllocator final : public Allocator {
 public:
  void* allocate(std::size_t size) override;

 private:
  Mutex mutex_;
  std::vector<std::unique_ptr<std::byte[]>> blocks_ GUARDED_BY(mutex_);
};

// Per-thread slab arena ("Hoard-like"): lock-free within a thread.
// Not thread-safe — create one per worker thread.
class ArenaAllocator final : public Allocator {
 public:
  explicit ArenaAllocator(std::size_t slab_size = 1 << 20);

  void* allocate(std::size_t size) override;

  // Releases everything (slabs retained for reuse).
  void reset() noexcept;

  std::size_t slabs_allocated() const noexcept { return slabs_.size(); }

 private:
  std::size_t slab_size_;
  std::vector<std::unique_ptr<std::byte[]>> slabs_;
  std::size_t current_ = 0;   // slab index
  std::size_t used_ = 0;      // bytes used in current slab
};

}  // namespace shredder::chunking
