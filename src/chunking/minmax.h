// Min/max chunk-size post-processing (paper §2.1 and §7.3).
//
// The GPU pipeline computes *raw* content boundaries and only afterwards does
// the Store thread (a) discard boundaries closer than `min_size` to the last
// accepted boundary and (b) force a boundary whenever `max_size` bytes pass
// without one. We adopt that post-filter as the canonical min/max semantics
// for every backend so outputs are comparable bit-for-bit.
//
// MinMaxFilter is the streaming form used by the Store thread (emit chunks as
// soon as they are final); apply_min_max is the batch convenience wrapper.
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <vector>

#include "chunking/chunk.h"

namespace shredder::chunking {

class MinMaxFilter {
 public:
  using EmitFn = std::function<void(std::uint64_t end)>;

  // min_size == 0 disables the minimum; max_size == 0 disables the maximum.
  // Throws std::invalid_argument if 0 < max_size < min_size.
  MinMaxFilter(std::uint64_t min_size, std::uint64_t max_size, EmitFn emit);

  // Feeds the next raw boundary (strictly ascending). Emits zero or more
  // accepted boundaries.
  void push(std::uint64_t raw_boundary);

  // Closes the stream at `total` bytes: forces trailing max-size boundaries
  // and the final boundary at `total` (the final chunk may be < min_size).
  void finish(std::uint64_t total);

  // Eagerly emits every max-size boundary at or before `upto`, given that
  // all raw boundaries <= upto have already been pushed. The emitted
  // sequence stays identical to what later push()/finish() calls would
  // produce — this only moves emission earlier, which is what lets the GPU
  // fingerprint stage cut chunk hashes while the buffer is still resident
  // on the device. No-op when max_size == 0.
  void drain_forced(std::uint64_t upto);

  std::uint64_t last_accepted() const noexcept { return last_; }

 private:
  void force_up_to(std::uint64_t target);

  std::uint64_t min_size_;
  std::uint64_t max_size_;
  EmitFn emit_;
  std::uint64_t last_ = 0;
  std::uint64_t prev_raw_ = 0;
  bool finished_ = false;
};

// Batch form: applies min/max to ascending raw boundary end-offsets over a
// stream of `total` bytes and appends the final boundary at `total`. The
// result always partitions [0, total):
//   * every chunk except possibly the last has size >= min_size
//   * every chunk has size <= max_size (when max_size != 0)
// Throws std::invalid_argument if `raw` is not strictly ascending or exceeds
// `total`.
std::vector<std::uint64_t> apply_min_max(const std::vector<std::uint64_t>& raw,
                                         std::uint64_t total,
                                         std::uint64_t min_size,
                                         std::uint64_t max_size);

}  // namespace shredder::chunking
