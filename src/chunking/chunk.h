// Chunk and chunker-configuration types shared by every chunking backend.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "common/bytes.h"

namespace shredder::chunking {

// Maximum supported sliding-window size. Bounds StreamScanner's stack ring
// buffer and is the limit ChunkerConfig::validate and the scanners enforce.
inline constexpr std::size_t kMaxWindow = 256;

// A chunk is the half-open byte range [offset, offset + size).
struct Chunk {
  std::uint64_t offset = 0;
  std::uint64_t size = 0;

  std::uint64_t end() const noexcept { return offset + size; }
  friend bool operator==(const Chunk&, const Chunk&) = default;
};

// Configuration of the content-defined chunker.
//
// A boundary is declared after byte position e (an *end offset*) when the
// Rabin fingerprint of the w-byte window ending at e satisfies
// (fp & mask) == marker with mask = 2^mask_bits - 1. The paper uses w = 48
// and the low-order 13 bits, giving an expected chunk size of
// 2^mask_bits bytes between content markers.
struct ChunkerConfig {
  std::size_t window = 48;       // sliding-window size w, bytes
  unsigned mask_bits = 13;       // number of low-order fingerprint bits tested
  std::uint64_t marker = 0x78;   // value the masked fingerprint must equal
  std::uint64_t min_size = 0;    // minimum chunk size; 0 = none
  std::uint64_t max_size = 0;    // maximum chunk size; 0 = unbounded

  std::uint64_t boundary_mask() const noexcept {
    return (std::uint64_t{1} << mask_bits) - 1;
  }
  std::uint64_t expected_chunk_size() const noexcept {
    return std::uint64_t{1} << mask_bits;
  }
  bool is_boundary_fp(std::uint64_t fp) const noexcept {
    return (fp & boundary_mask()) == marker;
  }

  // Throws std::invalid_argument on inconsistent settings.
  void validate() const {
    // The scanners bound their window state by kMaxWindow, so larger
    // windows must be rejected, never truncated.
    if (window == 0 || window > kMaxWindow) {
      throw std::invalid_argument(
          "ChunkerConfig: window must be in [1, kMaxWindow]");
    }
    if (mask_bits == 0 || mask_bits > 48) {
      throw std::invalid_argument("ChunkerConfig: mask_bits must be in [1,48]");
    }
    if (marker > boundary_mask()) {
      throw std::invalid_argument("ChunkerConfig: marker wider than mask");
    }
    if (max_size != 0 && min_size > max_size) {
      throw std::invalid_argument("ChunkerConfig: min_size > max_size");
    }
    if (max_size != 0 && max_size < window) {
      throw std::invalid_argument("ChunkerConfig: max_size < window");
    }
  }
};

// Converts ascending boundary end-offsets (each <= total, strictly
// increasing, final element total unless total == 0) into chunks covering
// [0, total). Throws std::invalid_argument if the list is malformed.
std::vector<Chunk> boundaries_to_chunks(const std::vector<std::uint64_t>& ends,
                                        std::uint64_t total);

}  // namespace shredder::chunking
