// Internals of the scan_buffer fast path (chunking/cdc.h). Split out so the
// public header stays readable; include cdc.h, not this file.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <utility>
#include <vector>

#include "rabin/rabin.h"

namespace shredder::chunking::detail {

// One unaligned 8-byte load with the first byte of memory in the most
// significant position (stream order, matching slide4's in/out packing).
inline std::uint64_t load8_be(const std::uint8_t* p) noexcept {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  if constexpr (std::endian::native == std::endian::little) {
    v = __builtin_bswap64(v);
  }
  return v;
}

// Fingerprints of the eight windows ending at positions i .. i+7, given
// fp = fingerprint of the window ending at i-1 (window must be full). The
// carried value hops fp -> f3 -> f7 through slide4, so the loop-carried
// dependency is one fused table round per FOUR bytes; the six intermediate
// fingerprints hang off the hop values, outside the critical path. The
// incoming and leaving bytes are fetched as one 8-byte word each and split
// with register shifts, keeping load traffic to the table lookups plus two
// data words per batch. Named members (not an array) so the whole batch
// stays in registers after inlining.
struct Batch8 {
  std::uint64_t f0, f1, f2, f3, f4, f5, f6, f7;

  std::uint64_t get(std::size_t k) const noexcept {
    switch (k) {
      case 0: return f0;
      case 1: return f1;
      case 2: return f2;
      case 3: return f3;
      case 4: return f4;
      case 5: return f5;
      case 6: return f6;
      default: return f7;
    }
  }
};

inline Batch8 batch8(const rabin::RabinTables& t, const std::uint8_t* p,
                     std::size_t i, std::size_t w, std::uint64_t fp) noexcept {
  const std::uint64_t in8 = load8_be(p + i);
  const std::uint64_t out8 = load8_be(p + i - w);
  Batch8 b;
  b.f0 = t.slide(fp, static_cast<std::uint8_t>(in8 >> 56),
                 static_cast<std::uint8_t>(out8 >> 56));
  b.f1 = t.slide(b.f0, static_cast<std::uint8_t>(in8 >> 48),
                 static_cast<std::uint8_t>(out8 >> 48));
  b.f2 = t.slide(b.f1, static_cast<std::uint8_t>(in8 >> 40),
                 static_cast<std::uint8_t>(out8 >> 40));
  b.f3 = t.slide4(fp, static_cast<std::uint32_t>(in8 >> 32),
                  static_cast<std::uint8_t>(out8 >> 56),
                  static_cast<std::uint8_t>(out8 >> 48),
                  static_cast<std::uint8_t>(out8 >> 40),
                  static_cast<std::uint8_t>(out8 >> 32));
  b.f4 = t.slide(b.f3, static_cast<std::uint8_t>(in8 >> 24),
                 static_cast<std::uint8_t>(out8 >> 24));
  b.f5 = t.slide(b.f4, static_cast<std::uint8_t>(in8 >> 16),
                 static_cast<std::uint8_t>(out8 >> 16));
  b.f6 = t.slide(b.f5, static_cast<std::uint8_t>(in8 >> 8),
                 static_cast<std::uint8_t>(out8 >> 8));
  b.f7 = t.slide4(b.f3, static_cast<std::uint32_t>(in8),
                  static_cast<std::uint8_t>(out8 >> 24),
                  static_cast<std::uint8_t>(out8 >> 16),
                  static_cast<std::uint8_t>(out8 >> 8),
                  static_cast<std::uint8_t>(out8));
  return b;
}

// Boundary-mask test over one batch, hoisted into a single accumulated
// predicate (boundaries are ~1 in 2^mask_bits bytes, so the per-batch
// branch taken on this value is almost never taken and predicts perfectly).
inline unsigned batch_any(const Batch8& b, std::uint64_t mask,
                          std::uint64_t marker) noexcept {
  return static_cast<unsigned>((b.f0 & mask) == marker) |
         static_cast<unsigned>((b.f1 & mask) == marker) |
         static_cast<unsigned>((b.f2 & mask) == marker) |
         static_cast<unsigned>((b.f3 & mask) == marker) |
         static_cast<unsigned>((b.f4 & mask) == marker) |
         static_cast<unsigned>((b.f5 & mask) == marker) |
         static_cast<unsigned>((b.f6 & mask) == marker) |
         static_cast<unsigned>((b.f7 & mask) == marker);
}

// Single-lane scan over positions [start, end_n) of p: warmup prologue that
// fills the window once (so the steady loop has no `filled == w` check and
// no ring buffer — the leaving byte is just p[i - w]), then batches of 8,
// then a per-byte tail. A check at position i means "the window ending at
// byte i"; its end offset is base + i + 1. Positions below emit_floor only
// advance state. Requires end_n - start >= w to emit anything.
template <typename Sink>
inline void scan_lane(const rabin::RabinTables& tables, std::uint64_t mask,
                      std::uint64_t marker, const std::uint8_t* p,
                      std::size_t start, std::size_t end_n,
                      std::size_t emit_floor, std::uint64_t base,
                      Sink&& sink) {
  const std::size_t w = tables.window();
  if (end_n - start < w) return;
  std::uint64_t fp = 0;
  for (std::size_t i = start; i < start + w; ++i) fp = tables.push(fp, p[i]);
  // First full window: position start + w - 1.
  if (start + w - 1 >= emit_floor && (fp & mask) == marker) {
    sink(base + start + w, fp);
  }
  std::size_t i = start + w;
  for (; i < end_n && i < emit_floor; ++i) {
    fp = tables.slide(fp, p[i], p[i - w]);
  }
  for (; i + 8 <= end_n; i += 8) {
    const Batch8 b = batch8(tables, p, i, w, fp);
    fp = b.f7;
    if (batch_any(b, mask, marker) != 0) [[unlikely]] {
      for (std::size_t k = 0; k < 8; ++k) {
        const std::uint64_t f = b.get(k);
        if ((f & mask) == marker) sink(base + i + k + 1, f);
      }
    }
  }
  for (; i < end_n; ++i) {
    fp = tables.slide(fp, p[i], p[i - w]);
    if ((fp & mask) == marker) sink(base + i + 1, fp);
  }
}

// Two interleaved lanes over [0, n): lane A emits positions [0, c), lane B
// positions [c, n), with B's window warmed on the w-1 true stream bytes
// before c so the union is exactly the single-lane boundary stream. The
// fused loop advances both lanes per iteration: their carried fingerprint
// chains are independent, so the out-of-order core overlaps them and the
// scan is no longer limited by one chain's hop latency. Lane B's hits are
// buffered (they must come after all of A's); lane A streams directly.
template <typename Emit>
inline void scan_two_lanes(const rabin::RabinTables& tables,
                           std::uint64_t mask, std::uint64_t marker,
                           const std::uint8_t* p, std::size_t n,
                           std::size_t warmup, std::uint64_t base,
                           Emit&& emit) {
  const std::size_t w = tables.window();
  const std::size_t c = n / 2;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> hits_b;
  hits_b.reserve(64);

  // Prologues. Lane A warms on [0, w); lane B on [c+1-w, c+1) so its first
  // check is position c (end offset c + 1).
  std::uint64_t fp_a = 0;
  for (std::size_t i = 0; i < w; ++i) fp_a = tables.push(fp_a, p[i]);
  if (w - 1 >= warmup && (fp_a & mask) == marker) emit(base + w, fp_a);
  std::uint64_t fp_b = 0;
  for (std::size_t i = c + 1 - w; i < c + 1; ++i) fp_b = tables.push(fp_b, p[i]);
  if (c >= warmup && (fp_b & mask) == marker) {
    hits_b.emplace_back(base + c + 1, fp_b);
  }

  std::size_t ia = w;
  for (; ia < c && ia < warmup; ++ia) fp_a = tables.slide(fp_a, p[ia], p[ia - w]);
  std::size_t ib = c + 1;
  for (; ib < n && ib < warmup; ++ib) fp_b = tables.slide(fp_b, p[ib], p[ib - w]);

  while (ia + 8 <= c && ib + 8 <= n) {
    const Batch8 ba = batch8(tables, p, ia, w, fp_a);
    const Batch8 bb = batch8(tables, p, ib, w, fp_b);
    fp_a = ba.f7;
    fp_b = bb.f7;
    if (batch_any(ba, mask, marker) != 0) [[unlikely]] {
      for (std::size_t k = 0; k < 8; ++k) {
        const std::uint64_t f = ba.get(k);
        if ((f & mask) == marker) emit(base + ia + k + 1, f);
      }
    }
    if (batch_any(bb, mask, marker) != 0) [[unlikely]] {
      for (std::size_t k = 0; k < 8; ++k) {
        const std::uint64_t f = bb.get(k);
        if ((f & mask) == marker) hits_b.emplace_back(base + ib + k + 1, f);
      }
    }
    ia += 8;
    ib += 8;
  }
  // Ragged tails (the lanes differ in length by at most a few bytes).
  for (; ia < c; ++ia) {
    fp_a = tables.slide(fp_a, p[ia], p[ia - w]);
    if ((fp_a & mask) == marker) emit(base + ia + 1, fp_a);
  }
  for (; ib < n; ++ib) {
    fp_b = tables.slide(fp_b, p[ib], p[ib - w]);
    if ((fp_b & mask) == marker) hits_b.emplace_back(base + ib + 1, fp_b);
  }
  for (const auto& [end, fp] : hits_b) emit(end, fp);
}

// Spans at least this large use the two-lane scan (the crossover is far
// lower, but small spans are latency-sensitive and lane warmup costs 2w
// table walks; GPU tiles and parallel regions stay single-lane).
inline constexpr std::size_t kTwoLaneMinBytes = std::size_t{256} << 10;

}  // namespace shredder::chunking::detail
