// SampleByte-style sampling chunker (EndRE, NSDI'10) — the fast-but-lossy
// alternative the paper argues against for large chunks (§1, §2.1).
//
// Instead of fingerprinting a window at every position, SampleByte declares a
// boundary whenever a *single byte* is in a 256-entry marker set, then skips
// half the target chunk size. One table lookup per byte (and big skips) make
// it much faster than Rabin, but sampling misses dedup opportunities as
// chunks grow — which is why Shredder keeps Rabin and accelerates it instead.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "chunking/chunk.h"
#include "common/bytes.h"

namespace shredder::chunking {

class SampleByteChunker {
 public:
  // `expected_size`: target average chunk size; the skip is expected_size/2
  // as in EndRE. `marker_bytes`: how many of the 256 byte values mark a
  // boundary (EndRE derived them from training; we pick them pseudo-randomly
  // from `seed`). Throws std::invalid_argument on zero arguments.
  SampleByteChunker(std::uint64_t expected_size, unsigned marker_bytes,
                    std::uint64_t seed);

  // Boundary end-offsets (ascending, final element data.size()).
  std::vector<std::uint64_t> boundaries(ByteSpan data) const;

  std::vector<Chunk> chunk(ByteSpan data) const;

  // Fraction of positions actually inspected in the last call is implied by
  // construction: roughly 2/expected_size of bytes are fingerprinted.
  std::uint64_t skip() const noexcept { return skip_; }

 private:
  std::uint64_t expected_size_;
  std::uint64_t skip_;
  std::array<bool, 256> is_marker_{};
};

}  // namespace shredder::chunking
