#include "chunking/fixed.h"

#include <stdexcept>

namespace shredder::chunking {

std::vector<Chunk> chunk_fixed(std::uint64_t total, std::uint64_t chunk_size) {
  if (chunk_size == 0) {
    throw std::invalid_argument("chunk_fixed: chunk_size must be > 0");
  }
  std::vector<Chunk> chunks;
  chunks.reserve(static_cast<std::size_t>(total / chunk_size) + 1);
  for (std::uint64_t off = 0; off < total; off += chunk_size) {
    chunks.push_back(Chunk{off, std::min(chunk_size, total - off)});
  }
  return chunks;
}

}  // namespace shredder::chunking
