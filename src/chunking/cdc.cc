#include "chunking/cdc.h"

#include "chunking/minmax.h"

namespace shredder::chunking {

std::vector<std::uint64_t> find_raw_boundaries(const rabin::RabinTables& tables,
                                               const ChunkerConfig& config,
                                               ByteSpan data) {
  config.validate();
  std::vector<std::uint64_t> ends;
  scan_buffer(tables, config, data, /*warmup=*/0, /*base=*/0,
              [&](std::uint64_t end, std::uint64_t) { ends.push_back(end); });
  return ends;
}

std::vector<Chunk> chunk_serial(const rabin::RabinTables& tables,
                                const ChunkerConfig& config, ByteSpan data) {
  const auto raw = find_raw_boundaries(tables, config, data);
  const auto ends =
      apply_min_max(raw, data.size(), config.min_size, config.max_size);
  return boundaries_to_chunks(ends, data.size());
}

}  // namespace shredder::chunking
