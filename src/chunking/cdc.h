// Content-defined chunking: the canonical scanner.
//
// All chunking backends in the repository (serial, parallel CPU, GPU basic
// kernel, GPU coalesced kernel) share one inner loop — StreamScanner — so
// their raw boundary streams are bit-identical by construction, and min/max
// handling composes as a separate pass (chunking/minmax.h) exactly like the
// paper's Store thread does (§3.1, §7.3).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "chunking/chunk.h"
#include "common/bytes.h"
#include "rabin/rabin.h"

namespace shredder::chunking {

// Maximum supported sliding-window size (bounds the stack ring buffer).
inline constexpr std::size_t kMaxWindow = 256;

// Incremental raw-boundary scanner. Feed bytes in any granularity; emits
// `emit(end, fp)` for every raw boundary, where `end` is the absolute end
// offset of the window whose fingerprint matched.
//
//  - `base`   : absolute stream offset of the first byte that will be fed.
//  - `warmup` : number of leading bytes that only warm the window; boundaries
//               ending at or before base + warmup are not emitted. A parallel
//               worker passes the w-1 bytes preceding its region here.
//
// A boundary is emitted only once the window is completely full, so the first
// w-1 positions of the whole stream can never produce a boundary — matching
// serial semantics regardless of how the stream is partitioned or fed.
class StreamScanner {
 public:
  StreamScanner(const rabin::RabinTables& tables, const ChunkerConfig& config,
                std::uint64_t base = 0, std::uint64_t warmup = 0)
      : tables_(&tables),
        mask_(config.boundary_mask()),
        marker_(config.marker),
        next_pos_(base),
        emit_after_(base + warmup) {
    config.validate();
  }

  // Absolute offset of the next byte to be fed.
  std::uint64_t position() const noexcept { return next_pos_; }

  template <typename Emit>
  void feed(ByteSpan data, Emit&& emit) {
    const std::size_t w = tables_->window();
    // Local copies of the hot state for the inner loop.
    std::uint64_t fp = fp_;
    std::size_t pos = pos_;
    std::size_t filled = filled_;
    std::uint64_t at = next_pos_;
    for (std::size_t i = 0; i < data.size(); ++i) {
      const std::uint8_t b = data[i];
      if (filled == w) {
        fp = tables_->pop(fp, ring_[pos]);
      } else {
        ++filled;
      }
      ring_[pos] = b;
      pos = pos + 1 == w ? 0 : pos + 1;
      fp = tables_->push(fp, b);
      ++at;
      if (filled == w && (fp & mask_) == marker_ && at > emit_after_) {
        emit(at, fp);
      }
    }
    fp_ = fp;
    pos_ = pos;
    filled_ = filled;
    next_pos_ = at;
  }

 private:
  const rabin::RabinTables* tables_;
  std::uint64_t mask_;
  std::uint64_t marker_;
  std::array<std::uint8_t, kMaxWindow> ring_{};
  std::uint64_t fp_ = 0;
  std::size_t pos_ = 0;
  std::size_t filled_ = 0;
  std::uint64_t next_pos_;
  std::uint64_t emit_after_;
};

// One-shot scan of `data` located at absolute offset `base`, with the first
// `warmup` bytes warming the window only.
template <typename Emit>
void scan_raw(const rabin::RabinTables& tables, const ChunkerConfig& config,
              ByteSpan data, std::size_t warmup, std::uint64_t base,
              Emit&& emit) {
  StreamScanner scanner(tables, config, base, warmup);
  scanner.feed(data, emit);
}

// Raw boundaries (no min/max) of an in-memory buffer. End offsets are
// strictly ascending and never include `data.size()` unless the final window
// happens to match.
std::vector<std::uint64_t> find_raw_boundaries(const rabin::RabinTables& tables,
                                               const ChunkerConfig& config,
                                               ByteSpan data);

// Full serial content-defined chunking: raw scan + min/max post-pass +
// final boundary at data.size(). This is the canonical output every other
// backend must reproduce.
std::vector<Chunk> chunk_serial(const rabin::RabinTables& tables,
                                const ChunkerConfig& config, ByteSpan data);

}  // namespace shredder::chunking
