// Content-defined chunking: the canonical scanners.
//
// Two implementations produce bit-identical raw boundary streams:
//
//  * scan_buffer — the branch-free batched fast path for in-memory spans.
//    All chunking backends (serial, parallel CPU, GPU basic kernel, GPU
//    coalesced kernel) run their inner loop through it. See docs/perf.md.
//  * StreamScanner — the incremental scanner for data arriving in arbitrary
//    granularity. It is also the reference oracle the equivalence tests hold
//    scan_buffer against.
//
// Min/max handling composes as a separate pass (chunking/minmax.h) exactly
// like the paper's Store thread does (§3.1, §7.3).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "chunking/cdc_fastpath.h"
#include "chunking/chunk.h"
#include "common/bytes.h"
#include "rabin/rabin.h"

namespace shredder::chunking {
// kMaxWindow (chunk.h) bounds StreamScanner's stack ring buffer; both
// scanners reject larger Rabin tables.

// Incremental raw-boundary scanner. Feed bytes in any granularity; emits
// `emit(end, fp)` for every raw boundary, where `end` is the absolute end
// offset of the window whose fingerprint matched.
//
//  - `base`   : absolute stream offset of the first byte that will be fed.
//  - `warmup` : number of leading bytes that only warm the window; boundaries
//               ending at or before base + warmup are not emitted. A parallel
//               worker passes the w-1 bytes preceding its region here.
//
// A boundary is emitted only once the window is completely full, so the first
// w-1 positions of the whole stream can never produce a boundary — matching
// serial semantics regardless of how the stream is partitioned or fed.
class StreamScanner {
 public:
  StreamScanner(const rabin::RabinTables& tables, const ChunkerConfig& config,
                std::uint64_t base = 0, std::uint64_t warmup = 0)
      : tables_(&tables),
        mask_(config.boundary_mask()),
        marker_(config.marker),
        next_pos_(base),
        emit_after_(base + warmup) {
    config.validate();
    if (tables.window() > kMaxWindow) {
      // The ring buffer is a fixed stack array; a larger window would index
      // past it and silently corrupt the stack.
      throw std::invalid_argument(
          "StreamScanner: tables window exceeds kMaxWindow");
    }
  }

  // Absolute offset of the next byte to be fed.
  std::uint64_t position() const noexcept { return next_pos_; }

  template <typename Emit>
  void feed(ByteSpan data, Emit&& emit) {
    const std::size_t w = tables_->window();
    // Local copies of the hot state for the inner loop.
    std::uint64_t fp = fp_;
    std::size_t pos = pos_;
    std::size_t filled = filled_;
    std::uint64_t at = next_pos_;
    for (std::size_t i = 0; i < data.size(); ++i) {
      const std::uint8_t b = data[i];
      if (filled == w) {
        fp = tables_->pop(fp, ring_[pos]);
      } else {
        ++filled;
      }
      ring_[pos] = b;
      pos = pos + 1 == w ? 0 : pos + 1;
      fp = tables_->push(fp, b);
      ++at;
      if (filled == w && (fp & mask_) == marker_ && at > emit_after_) {
        emit(at, fp);
      }
    }
    fp_ = fp;
    pos_ = pos;
    filled_ = filled;
    next_pos_ = at;
  }

 private:
  const rabin::RabinTables* tables_;
  std::uint64_t mask_;
  std::uint64_t marker_;
  std::array<std::uint8_t, kMaxWindow> ring_{};
  std::uint64_t fp_ = 0;
  std::size_t pos_ = 0;
  std::size_t filled_ = 0;
  std::uint64_t next_pos_;
  std::uint64_t emit_after_;
};

// One-shot scan of `data` located at absolute offset `base`, with the first
// `warmup` bytes warming the window only. Reference implementation; use
// scan_buffer on the hot path.
template <typename Emit>
void scan_raw(const rabin::RabinTables& tables, const ChunkerConfig& config,
              ByteSpan data, std::size_t warmup, std::uint64_t base,
              Emit&& emit) {
  StreamScanner scanner(tables, config, base, warmup);
  scanner.feed(data, emit);
}

// Branch-free batched scan of an in-memory span: the hot path shared by
// every backend. Emits exactly the boundaries scan_raw would, bit for bit,
// but with none of StreamScanner's per-byte overhead:
//
//  * no ring buffer — the byte leaving the window is just data[i - w];
//  * a warmup prologue fills the window once, so the steady-state loop has
//    no `filled == w` check and no wraparound arithmetic;
//  * the steady state runs in unrolled batches of 8 with the boundary-mask
//    test hoisted into one accumulated predicate per batch, and the carried
//    fingerprint hops four bytes per fused table round (RabinTables::slide4)
//    instead of one table walk per byte;
//  * large spans additionally run as two interleaved lanes whose carried
//    chains are independent, hiding the hop latency entirely.
//
// See docs/perf.md for the design rationale and measurements.
template <typename Emit>
void scan_buffer(const rabin::RabinTables& tables, const ChunkerConfig& config,
                 ByteSpan data, std::size_t warmup, std::uint64_t base,
                 Emit&& emit) {
  config.validate();
  const std::size_t w = tables.window();
  if (w > kMaxWindow) {
    throw std::invalid_argument("scan_buffer: tables window exceeds kMaxWindow");
  }
  const std::size_t n = data.size();
  if (n < w) return;  // the window never fills: no boundary possible
  const std::uint64_t mask = config.boundary_mask();
  const std::uint64_t marker = config.marker;
  const std::uint8_t* const p = data.data();
  if (n >= detail::kTwoLaneMinBytes) {
    detail::scan_two_lanes(tables, mask, marker, p, n, warmup, base, emit);
  } else {
    detail::scan_lane(tables, mask, marker, p, /*start=*/0, n, warmup, base,
                      emit);
  }
}

// Raw boundaries (no min/max) of an in-memory buffer. End offsets are
// strictly ascending and never include `data.size()` unless the final window
// happens to match.
std::vector<std::uint64_t> find_raw_boundaries(const rabin::RabinTables& tables,
                                               const ChunkerConfig& config,
                                               ByteSpan data);

// Full serial content-defined chunking: raw scan + min/max post-pass +
// final boundary at data.size(). This is the canonical output every other
// backend must reproduce.
std::vector<Chunk> chunk_serial(const rabin::RabinTables& tables,
                                const ChunkerConfig& config, ByteSpan data);

}  // namespace shredder::chunking
