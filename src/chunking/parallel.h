// Parallel host-only content-defined chunking (paper §5.1).
//
// SPMD decomposition: the input is divided into N equal regions; each worker
// scans its region with a Rabin window warmed on the w-1 bytes preceding the
// region, so the concatenated per-region raw boundaries are bit-identical to
// a serial scan. Neighbouring results are then merged and the min/max pass
// runs once, sequentially, exactly like the serial reference.
//
// Chunk records are allocated through a pluggable Allocator so the
// malloc-vs-Hoard contrast of the paper is reproducible (see arena.h).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "chunking/arena.h"
#include "chunking/cdc.h"
#include "chunking/chunk.h"
#include "common/bytes.h"
#include "common/thread_pool.h"
#include "rabin/rabin.h"

namespace shredder::chunking {

enum class AllocMode {
  kSharedLockedHeap,  // one global-locked heap shared by all workers
  kThreadArena,       // a private slab arena per worker (Hoard substitute)
};

struct ParallelChunkerStats {
  std::uint64_t bytes_scanned = 0;
  std::uint64_t raw_boundaries = 0;
  double scan_seconds = 0;   // parallel region only
  double merge_seconds = 0;  // boundary merge + min/max
};

class ParallelChunker {
 public:
  // `threads` == 0 means hardware concurrency. The pool is owned by the
  // chunker and reused across calls.
  ParallelChunker(const rabin::RabinTables& tables, ChunkerConfig config,
                  std::size_t threads = 0,
                  AllocMode alloc_mode = AllocMode::kThreadArena);

  // Chunks `data`, returning the same result as chunk_serial.
  std::vector<Chunk> chunk(ByteSpan data);

  // Raw boundaries only (no min/max, no final boundary).
  std::vector<std::uint64_t> raw_boundaries(ByteSpan data);

  const ParallelChunkerStats& stats() const noexcept { return stats_; }
  std::size_t threads() const noexcept { return pool_.size(); }

 private:
  const rabin::RabinTables& tables_;
  ChunkerConfig config_;
  AllocMode alloc_mode_;
  ThreadPool pool_;
  ParallelChunkerStats stats_;
};

}  // namespace shredder::chunking
