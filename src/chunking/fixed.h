// Fixed-size chunking baseline.
//
// This is what stock HDFS does (paper §6.2) and what Shredder's content-based
// chunking replaces: boundaries at multiples of `chunk_size` regardless of
// content, so a single-byte insertion shifts every later boundary and defeats
// deduplication.
#pragma once

#include <cstdint>
#include <vector>

#include "chunking/chunk.h"
#include "common/bytes.h"

namespace shredder::chunking {

// Splits [0, total) into `chunk_size`-byte chunks (last one may be short).
// Throws std::invalid_argument if chunk_size == 0.
std::vector<Chunk> chunk_fixed(std::uint64_t total, std::uint64_t chunk_size);

inline std::vector<Chunk> chunk_fixed(ByteSpan data, std::uint64_t chunk_size) {
  return chunk_fixed(data.size(), chunk_size);
}

}  // namespace shredder::chunking
