#include "chunking/minmax.h"

namespace shredder::chunking {

MinMaxFilter::MinMaxFilter(std::uint64_t min_size, std::uint64_t max_size,
                           EmitFn emit)
    : min_size_(min_size), max_size_(max_size), emit_(std::move(emit)) {
  if (max_size != 0 && min_size > max_size) {
    throw std::invalid_argument("MinMaxFilter: min_size > max_size");
  }
  if (!emit_) throw std::invalid_argument("MinMaxFilter: emit required");
}

void MinMaxFilter::force_up_to(std::uint64_t target) {
  if (max_size_ == 0) return;
  while (target - last_ > max_size_) {
    last_ += max_size_;
    emit_(last_);
  }
}

void MinMaxFilter::push(std::uint64_t b) {
  if (finished_) throw std::invalid_argument("MinMaxFilter: already finished");
  // b == 0 must be rejected explicitly: prev_raw_ starts at 0, so the
  // ascending check alone would let a zero boundary through repeatedly.
  if (b == 0 || b <= prev_raw_) {
    throw std::invalid_argument("MinMaxFilter: raw not strictly ascending");
  }
  prev_raw_ = b;
  // Force max-size boundaries in the gap before this raw boundary.
  force_up_to(b);
  // Discard boundaries inside the minimum-size skip region.
  if (b - last_ < min_size_ || b == last_) return;
  last_ = b;
  emit_(last_);
}

void MinMaxFilter::drain_forced(std::uint64_t upto) {
  if (finished_) throw std::invalid_argument("MinMaxFilter: already finished");
  if (max_size_ == 0) return;
  // Inclusive bound, unlike force_up_to's strict one: once `upto` bytes have
  // streamed past, a gap of exactly max_size already forces a boundary —
  // either a later push(b > upto) or finish() would emit it at this same
  // offset, so emitting it now keeps the output sequence identical while
  // making every boundary at or before `upto` final.
  while (upto >= last_ + max_size_) {
    last_ += max_size_;
    emit_(last_);
  }
}

void MinMaxFilter::finish(std::uint64_t total) {
  if (finished_) throw std::invalid_argument("MinMaxFilter: already finished");
  if (total < prev_raw_) {
    throw std::invalid_argument("MinMaxFilter: total below last boundary");
  }
  finished_ = true;
  if (total == 0) return;
  force_up_to(total);
  if (last_ != total) {
    last_ = total;
    emit_(total);
  }
}

std::vector<std::uint64_t> apply_min_max(const std::vector<std::uint64_t>& raw,
                                         std::uint64_t total,
                                         std::uint64_t min_size,
                                         std::uint64_t max_size) {
  std::vector<std::uint64_t> ends;
  MinMaxFilter filter(min_size, max_size,
                      [&](std::uint64_t end) { ends.push_back(end); });
  for (std::uint64_t b : raw) {
    if (b > total) {
      throw std::invalid_argument("apply_min_max: boundary beyond total");
    }
    filter.push(b);
  }
  filter.finish(total);
  return ends;
}

}  // namespace shredder::chunking
