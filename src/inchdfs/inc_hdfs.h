// Inc-HDFS client (paper §6.2–6.3): content-defined, record-aligned block
// placement via the Shredder chunking service, plus the stock fixed-size
// upload path for comparison.
//
// The shell analogy: copy_from_local == `hdfs -copyFromLocal` (fixed-size
// blocks), copy_from_local_gpu == the new `-copyFromLocalGPU` command, which
// pushes the file through Shredder's GPU pipeline, aligns the resulting
// boundaries to record boundaries (semantic chunking), and uploads the
// chunks as blocks whose identity is the SHA-1 of their content.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/shredder.h"
#include "inchdfs/hdfs.h"
#include "inchdfs/input_format.h"

namespace shredder::inchdfs {

// An input split handed to a Map task: the payload plus its content digest
// (the memoization key for incremental MapReduce).
struct Split {
  dedup::Sha1Digest digest;
  ByteVec data;
};

struct UploadStats {
  std::uint64_t blocks = 0;
  std::uint64_t bytes = 0;
  double chunking_virtual_seconds = 0;  // Shredder pipeline model time
  double wall_seconds = 0;
};

class IncHdfsClient {
 public:
  explicit IncHdfsClient(MiniHdfs& fs) : fs_(&fs) {}

  // Stock HDFS path: fixed-size blocks (default 64 KB to keep in-process
  // experiments dense; the constant does not change any conclusion). When a
  // format is supplied, boundaries are record-aligned the way Hadoop's
  // InputSplit logic extends splits to record boundaries.
  UploadStats copy_from_local(const std::string& name, ByteSpan data,
                              std::uint64_t block_size = 64 * 1024,
                              const InputFormat* format = nullptr);

  // Shredder path: content-defined chunking on the (simulated) GPU, record
  // alignment through `format`, then upload.
  UploadStats copy_from_local_gpu(const std::string& name, ByteSpan data,
                                  const InputFormat& format,
                                  core::Shredder& shredder);

  // Reads a file's blocks back as splits (digest + payload).
  std::vector<Split> read_splits(const std::string& name) const;

 private:
  UploadStats upload(const std::string& name, ByteSpan data,
                     const std::vector<std::uint64_t>& boundaries);

  MiniHdfs* fs_;
};

}  // namespace shredder::inchdfs
