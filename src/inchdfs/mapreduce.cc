#include "inchdfs/mapreduce.h"

#include <algorithm>
#include <atomic>
#include <unordered_map>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "common/timer.h"

namespace shredder::inchdfs {

namespace {

// FNV-1a, for a partition function that is stable across platforms (memo
// keys must not depend on std::hash).
std::uint64_t fnv1a(const std::string& s) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}

dedup::Sha1Digest map_memo_key(const JobSpec& job, const Split& split) {
  dedup::Sha1 h;
  h.update(as_bytes(job.name));
  h.update(as_bytes(job.params_digest));
  h.update(ByteSpan{split.digest.bytes.data(), split.digest.bytes.size()});
  return h.finish();
}

dedup::Sha1Digest reduce_memo_key(
    const JobSpec& job, std::size_t reducer,
    const std::vector<const dedup::Sha1Digest*>& bucket_digests) {
  dedup::Sha1 h;
  h.update(as_bytes(job.name));
  h.update(as_bytes(job.params_digest));
  const auto r64 = static_cast<std::uint64_t>(reducer);
  h.update(ByteSpan{reinterpret_cast<const std::uint8_t*>(&r64), sizeof(r64)});
  for (const auto* d : bucket_digests) {
    h.update(ByteSpan{d->bytes.data(), d->bytes.size()});
  }
  return h.finish();
}

// --- Contraction trees (Incoop §6.1 mechanism) ---
// Combine sorted KV buckets in content-defined groups so a changed input
// bucket only invalidates its log-depth path instead of the whole reducer.

// Combines a group of sorted KV lists into one sorted list with one value
// per key (via combine_fn) and a content digest.
std::shared_ptr<MemoizedCombine> combine_group(
    const JobSpec& job, const std::vector<const std::vector<KeyValue>*>& group) {
  // Inputs are sorted by key; a flat sort-merge beats node-based maps by a
  // wide margin on the saturated vocabularies upper tree levels see.
  std::vector<const KeyValue*> all;
  std::size_t total = 0;
  for (const auto* kvs : group) total += kvs->size();
  all.reserve(total);
  for (const auto* kvs : group) {
    for (const auto& kv : *kvs) all.push_back(&kv);
  }
  std::sort(all.begin(), all.end(), [](const KeyValue* a, const KeyValue* b) {
    return a->key != b->key ? a->key < b->key : a->value < b->value;
  });
  auto out = std::make_shared<MemoizedCombine>();
  dedup::Sha1 h;
  std::vector<std::string> values;
  for (std::size_t i = 0; i < all.size();) {
    std::size_t j = i;
    values.clear();
    while (j < all.size() && all[j]->key == all[i]->key) {
      values.push_back(all[j]->value);
      ++j;
    }
    KeyValue kv{all[i]->key, job.combine_fn(all[i]->key, values)};
    h.update(as_bytes(kv.key));
    const std::uint8_t sep0 = 0;
    h.update(ByteSpan{&sep0, 1});
    h.update(as_bytes(kv.value));
    const std::uint8_t sep1 = 1;
    h.update(ByteSpan{&sep1, 1});
    out->kvs.push_back(std::move(kv));
    i = j;
  }
  out->digest = h.finish();
  return out;
}

// Content-defined grouping: a bucket digest whose low bits are zero closes
// the current group (expected arity 8), so group membership is stable under
// local insertions/removals of buckets — the same self-synchronization idea
// as content-defined chunking.
bool closes_group(const dedup::Sha1Digest& digest) noexcept {
  return (digest.prefix64() & 0x7) == 0;
}

dedup::Sha1Digest combine_memo_key(
    const JobSpec& job, std::size_t reducer, unsigned level,
    const std::vector<const dedup::Sha1Digest*>& members) {
  dedup::Sha1 h;
  h.update(as_bytes(job.name));
  h.update(as_bytes(job.params_digest));
  const char tag[] = "combine";
  h.update(ByteSpan{reinterpret_cast<const std::uint8_t*>(tag), sizeof(tag)});
  const auto r64 = static_cast<std::uint64_t>(reducer);
  h.update(ByteSpan{reinterpret_cast<const std::uint8_t*>(&r64), sizeof(r64)});
  const auto l64 = static_cast<std::uint64_t>(level);
  h.update(ByteSpan{reinterpret_cast<const std::uint8_t*>(&l64), sizeof(l64)});
  for (const auto* d : members) {
    h.update(ByteSpan{d->bytes.data(), d->bytes.size()});
  }
  return h.finish();
}

}  // namespace

MapEmitter::MapEmitter(std::size_t num_reducers) : buckets_(num_reducers) {
  if (num_reducers == 0) {
    throw std::invalid_argument("MapEmitter: num_reducers must be >= 1");
  }
}

std::size_t MapEmitter::partition(const std::string& key,
                                  std::size_t num_reducers) noexcept {
  return static_cast<std::size_t>(fnv1a(key) % num_reducers);
}

void MapEmitter::emit(std::string key, std::string value) {
  auto& bucket = buckets_[partition(key, buckets_.size())];
  bucket.push_back(KeyValue{std::move(key), std::move(value)});
}

void MapEmitter::finalize() {
  digests_.clear();
  digests_.reserve(buckets_.size());
  for (auto& bucket : buckets_) {
    std::sort(bucket.begin(), bucket.end(),
              [](const KeyValue& a, const KeyValue& b) {
                return a.key != b.key ? a.key < b.key : a.value < b.value;
              });
    dedup::Sha1 h;
    for (const auto& kv : bucket) {
      h.update(as_bytes(kv.key));
      const std::uint8_t sep0 = 0;
      h.update(ByteSpan{&sep0, 1});
      h.update(as_bytes(kv.value));
      const std::uint8_t sep1 = 1;
      h.update(ByteSpan{&sep1, 1});
    }
    digests_.push_back(h.finish());
  }
}

void JobSpec::validate() const {
  if (name.empty()) throw std::invalid_argument("JobSpec: name required");
  if (!map_fn) throw std::invalid_argument("JobSpec: map_fn required");
  if (!reduce_fn) throw std::invalid_argument("JobSpec: reduce_fn required");
  if (num_reducers == 0) {
    throw std::invalid_argument("JobSpec: num_reducers must be >= 1");
  }
}

JobResult MapReduceEngine::run(const JobSpec& job,
                               const std::vector<Split>& splits,
                               MemoServer* memo) {
  job.validate();
  Stopwatch wall;
  JobResult result;
  result.stats.map_tasks = splits.size();

  // --- Map phase ---
  std::vector<MemoServer::MapOutputPtr> map_outputs(splits.size());
  std::atomic<std::uint64_t> reused{0};
  pool_.for_each_index(splits.size(), [&](std::size_t i) {
    const Split& split = splits[i];
    const auto key = memo != nullptr ? map_memo_key(job, split)
                                     : dedup::Sha1Digest{};
    if (memo != nullptr) {
      if (auto hit = memo->get_map(key)) {
        map_outputs[i] = std::move(hit);
        reused.fetch_add(1, std::memory_order_relaxed);
        return;
      }
    }
    MapEmitter emitter(job.num_reducers);
    job.map_fn(split, emitter);
    emitter.finalize();
    auto out = std::make_shared<MemoizedMapOutput>();
    out->buckets = emitter.buckets();
    out->bucket_digests = emitter.bucket_digests();
    if (memo != nullptr) memo->put_map(key, out);
    map_outputs[i] = std::move(out);
  });
  result.stats.map_reused = reused.load();
  if (std::getenv("SHREDDER_MR_DEBUG") != nullptr) {
    std::fprintf(stderr, "[mr] %s map phase %.2fms (%llu/%llu reused)\n",
                 job.name.c_str(), wall.elapsed_seconds() * 1e3,
                 static_cast<unsigned long long>(result.stats.map_reused),
                 static_cast<unsigned long long>(result.stats.map_tasks));
  }

  // --- Reduce phase ---
  result.stats.reduce_tasks = job.num_reducers;
  std::vector<std::map<std::string, std::string>> reduce_outputs(
      job.num_reducers);
  std::atomic<std::uint64_t> reduce_reused{0};
  pool_.for_each_index(job.num_reducers, [&](std::size_t r) {
    // Gather this reducer's partition from every map output (split order).
    std::vector<const dedup::Sha1Digest*> digests;
    digests.reserve(map_outputs.size());
    for (const auto& out : map_outputs) {
      digests.push_back(&out->bucket_digests[r]);
    }
    const auto key = memo != nullptr
                         ? reduce_memo_key(job, r, digests)
                         : dedup::Sha1Digest{};
    if (memo != nullptr) {
      if (auto hit = memo->get_reduce(key)) {
        reduce_outputs[r] = std::move(*hit);
        reduce_reused.fetch_add(1, std::memory_order_relaxed);
        return;
      }
    }

    if (job.combine_fn && job.use_contraction && memo != nullptr &&
        map_outputs.size() > 8) {
      // Contraction tree: fold the buckets level by level in content-defined
      // groups, memoizing each group's combined result. Only groups touching
      // changed buckets recompute.
      std::vector<MemoServer::CombinePtr> level;
      std::vector<const std::vector<KeyValue>*> level_kvs;
      std::vector<const dedup::Sha1Digest*> level_digests;
      for (const auto& out : map_outputs) {
        level_kvs.push_back(&out->buckets[r]);
        level_digests.push_back(&out->bucket_digests[r]);
      }
      unsigned depth = 0;
      while (level_kvs.size() > 1 && depth < 32) {
        std::vector<MemoServer::CombinePtr> next;
        std::size_t begin = 0;
        for (std::size_t i = 0; i < level_kvs.size(); ++i) {
          const bool close = closes_group(*level_digests[i]) ||
                             i + 1 == level_kvs.size();
          if (!close) continue;
          std::vector<const std::vector<KeyValue>*> group(
              level_kvs.begin() + static_cast<std::ptrdiff_t>(begin),
              level_kvs.begin() + static_cast<std::ptrdiff_t>(i + 1));
          std::vector<const dedup::Sha1Digest*> group_digests(
              level_digests.begin() + static_cast<std::ptrdiff_t>(begin),
              level_digests.begin() + static_cast<std::ptrdiff_t>(i + 1));
          const auto ckey = combine_memo_key(job, r, depth, group_digests);
          auto node = memo->get_combine(ckey);
          if (node == nullptr) {
            node = combine_group(job, group);
            memo->put_combine(ckey, node);
          }
          next.push_back(std::move(node));
          begin = i + 1;
        }
        const bool shrunk = next.size() < level_kvs.size();
        level = std::move(next);
        level_kvs.clear();
        level_digests.clear();
        for (const auto& node : level) {
          level_kvs.push_back(&node->kvs);
          level_digests.push_back(&node->digest);
        }
        ++depth;
        if (!shrunk) break;  // singleton closers would re-close forever
      }
      // Fold whatever is left in one final (memoized) step. This also
      // covers the no-shrink exit above.
      MemoServer::CombinePtr root;
      if (level_kvs.size() > 1) {
        const auto root_key = combine_memo_key(job, r, 0xff, level_digests);
        root = memo->get_combine(root_key);
        if (root == nullptr) {
          root = combine_group(job, level_kvs);
          memo->put_combine(root_key, root);
        }
        level_kvs = {&root->kvs};
      }
      std::map<std::string, std::string> out;
      if (!level_kvs.empty()) {
        for (const auto& kv : *level_kvs[0]) {
          out.emplace(kv.key, job.reduce_fn(kv.key, {kv.value}));
        }
      }
      memo->put_reduce(key, out);
      reduce_outputs[r] = std::move(out);
      return;
    }

    std::unordered_map<std::string, std::vector<std::string>> grouped;
    std::size_t total_kvs = 0;
    for (const auto& out : map_outputs) total_kvs += out->buckets[r].size();
    grouped.reserve(total_kvs / 2 + 8);
    for (const auto& out : map_outputs) {
      for (const auto& kv : out->buckets[r]) {
        grouped[kv.key].push_back(kv.value);
      }
    }
    std::map<std::string, std::string> out;  // sorted, deterministic
    for (const auto& [k, values] : grouped) {
      out.emplace(k, job.reduce_fn(k, values));
    }
    if (memo != nullptr) memo->put_reduce(key, out);
    reduce_outputs[r] = std::move(out);
  });
  result.stats.reduce_reused = reduce_reused.load();

  if (std::getenv("SHREDDER_MR_DEBUG") != nullptr) {
    std::fprintf(stderr, "[mr] %s after reduce %.2fms\n", job.name.c_str(),
                 wall.elapsed_seconds() * 1e3);
  }

  // --- Merge ---
  for (auto& part : reduce_outputs) {
    result.output.merge(part);
  }
  result.stats.wall_seconds = wall.elapsed_seconds();
  return result;
}

}  // namespace shredder::inchdfs
