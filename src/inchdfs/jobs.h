// The three MapReduce applications of the paper's Figure 15: Word-Count,
// Co-occurrence Matrix, and K-means clustering.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "inchdfs/mapreduce.h"

namespace shredder::inchdfs {

// Word-Count: map tokenizes and locally combines, reduce sums.
JobSpec make_wordcount_job(std::size_t num_reducers = 8);

// Co-occurrence Matrix: counts ordered word pairs within a sliding window of
// `window` following words (window >= 1). Map-heavy.
JobSpec make_cooccurrence_job(unsigned window, std::size_t num_reducers = 8);

// K-means over 2-D float points (8-byte records, FixedRecordInputFormat).
// Each iteration is one MapReduce job whose params_digest encodes the
// centroids, so memoization is valid per iteration.
class KMeansDriver {
 public:
  KMeansDriver(unsigned k, unsigned max_iterations, std::uint64_t seed);

  struct Result {
    std::vector<std::pair<float, float>> centroids;
    unsigned iterations = 0;
    JobStats aggregate_stats;  // summed over iterations
  };

  // Runs to convergence (or max_iterations) over `splits`; memo may be
  // null. `warm_start` seeds the iteration with a previous run's converged
  // centroids — the incremental-iterative pattern: a warm start over
  // little-changed data converges in a fraction of the iterations AND its
  // first iteration's map tasks hit the memo (the priming run's final
  // iteration used the same params over mostly the same splits).
  Result run(MapReduceEngine& engine, const std::vector<Split>& splits,
             MemoServer* memo,
             const std::vector<std::pair<float, float>>* warm_start =
                 nullptr) const;

  // One iteration's JobSpec for the given centroids (exposed for tests).
  JobSpec job_for(const std::vector<std::pair<float, float>>& centroids,
                  std::size_t num_reducers = 4) const;

  // Forgy-style initialization from the data itself: k points sampled
  // deterministically (by `seed`) from the first split. Both the baseline
  // and the incremental run see the same leading bytes, so their centroid
  // trajectories coincide and memoized iterations match.
  std::vector<std::pair<float, float>> initial_centroids(
      const std::vector<Split>& splits) const;

 private:
  unsigned k_;
  unsigned max_iterations_;
  std::uint64_t seed_;
};

}  // namespace shredder::inchdfs
