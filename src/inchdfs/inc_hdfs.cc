#include "inchdfs/inc_hdfs.h"

#include "chunking/fixed.h"
#include "common/timer.h"

namespace shredder::inchdfs {

UploadStats IncHdfsClient::upload(const std::string& name, ByteSpan data,
                                  const std::vector<std::uint64_t>& boundaries) {
  std::vector<ByteSpan> blocks;
  blocks.reserve(boundaries.size());
  std::uint64_t last = 0;
  for (std::uint64_t end : boundaries) {
    blocks.push_back(data.subspan(static_cast<std::size_t>(last),
                                  static_cast<std::size_t>(end - last)));
    last = end;
  }
  fs_->write_file(name, blocks);
  UploadStats stats;
  stats.blocks = blocks.size();
  stats.bytes = data.size();
  return stats;
}

UploadStats IncHdfsClient::copy_from_local(const std::string& name,
                                           ByteSpan data,
                                           std::uint64_t block_size,
                                           const InputFormat* format) {
  Stopwatch wall;
  const auto chunks = chunking::chunk_fixed(data, block_size);
  std::vector<std::uint64_t> boundaries;
  boundaries.reserve(chunks.size());
  for (const auto& c : chunks) boundaries.push_back(c.end());
  if (format != nullptr) boundaries = align_boundaries(*format, data, boundaries);
  auto stats = upload(name, data, boundaries);
  stats.wall_seconds = wall.elapsed_seconds();
  return stats;
}

UploadStats IncHdfsClient::copy_from_local_gpu(const std::string& name,
                                               ByteSpan data,
                                               const InputFormat& format,
                                               core::Shredder& shredder) {
  Stopwatch wall;
  const auto result = shredder.run(data);
  std::vector<std::uint64_t> proposed;
  proposed.reserve(result.chunks.size());
  for (const auto& c : result.chunks) proposed.push_back(c.end());
  const auto aligned = align_boundaries(format, data, proposed);
  auto stats = upload(name, data, aligned);
  stats.chunking_virtual_seconds = result.virtual_seconds;
  stats.wall_seconds = wall.elapsed_seconds();
  return stats;
}

std::vector<Split> IncHdfsClient::read_splits(const std::string& name) const {
  std::vector<Split> splits;
  const auto refs = fs_->namenode().lookup(name);
  auto blocks = fs_->read_blocks(name);
  splits.reserve(blocks.size());
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    splits.push_back(Split{refs[i].digest, std::move(blocks[i])});
  }
  return splits;
}

}  // namespace shredder::inchdfs
