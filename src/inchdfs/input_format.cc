#include "inchdfs/input_format.h"

#include <stdexcept>

namespace shredder::inchdfs {

std::uint64_t TextInputFormat::align_boundary(ByteSpan data,
                                              std::uint64_t proposed) const {
  if (proposed == 0) return 0;  // start of file is a record boundary
  std::uint64_t pos = std::min<std::uint64_t>(proposed, data.size());
  while (pos < data.size() && data[static_cast<std::size_t>(pos) - 1] != '\n') {
    ++pos;
  }
  return pos;
}

std::vector<ByteSpan> TextInputFormat::records(ByteSpan block) const {
  std::vector<ByteSpan> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i < block.size(); ++i) {
    if (block[i] == '\n') {
      out.push_back(block.subspan(start, i + 1 - start));
      start = i + 1;
    }
  }
  if (start < block.size()) out.push_back(block.subspan(start));
  return out;
}

FixedRecordInputFormat::FixedRecordInputFormat(std::size_t record_bytes)
    : record_bytes_(record_bytes) {
  if (record_bytes == 0) {
    throw std::invalid_argument("FixedRecordInputFormat: record_bytes 0");
  }
}

std::uint64_t FixedRecordInputFormat::align_boundary(
    ByteSpan data, std::uint64_t proposed) const {
  const std::uint64_t rb = record_bytes_;
  const std::uint64_t aligned = (proposed + rb - 1) / rb * rb;
  return std::min<std::uint64_t>(aligned, data.size());
}

std::vector<ByteSpan> FixedRecordInputFormat::records(ByteSpan block) const {
  std::vector<ByteSpan> out;
  for (std::size_t off = 0; off < block.size(); off += record_bytes_) {
    out.push_back(block.subspan(off, std::min(record_bytes_,
                                              block.size() - off)));
  }
  return out;
}

std::vector<std::uint64_t> align_boundaries(
    const InputFormat& format, ByteSpan data,
    const std::vector<std::uint64_t>& proposed) {
  std::vector<std::uint64_t> out;
  std::uint64_t last = 0;
  for (std::uint64_t p : proposed) {
    const std::uint64_t aligned = format.align_boundary(data, p);
    if (aligned > last && aligned <= data.size()) {
      out.push_back(aligned);
      last = aligned;
    }
  }
  if (data.size() != 0 && (out.empty() || out.back() != data.size())) {
    out.push_back(data.size());
  }
  return out;
}

}  // namespace shredder::inchdfs
