// Miniature in-process HDFS (paper §6.2 substrate).
//
// A NameNode maps file names to ordered lists of block references; DataNodes
// hold block payloads in memory. Replication is 1 (the paper's experiments
// are about recomputation, not fault tolerance). Stock HDFS places fixed-
// size blocks; Inc-HDFS (inc_hdfs.h) places content-defined, record-aligned
// blocks whose identity is the SHA-1 of their content — that digest is what
// makes incremental MapReduce possible.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/annotations.h"
#include "common/bytes.h"
#include "common/mutex.h"
#include "dedup/sha1.h"

namespace shredder::inchdfs {

struct BlockRef {
  std::uint64_t block_id = 0;
  std::uint32_t datanode = 0;
  std::uint64_t size = 0;
  dedup::Sha1Digest digest;  // content identity (Inc-HDFS)
};

class DataNode {
 public:
  explicit DataNode(std::uint32_t id) : id_(id) {}

  std::uint32_t id() const noexcept { return id_; }

  void put(std::uint64_t block_id, ByteSpan data);
  std::optional<ByteVec> get(std::uint64_t block_id) const;
  std::uint64_t bytes_stored() const;
  std::uint64_t blocks_stored() const;

 private:
  std::uint32_t id_;
  mutable Mutex mutex_;
  std::unordered_map<std::uint64_t, ByteVec> blocks_ GUARDED_BY(mutex_);
  std::uint64_t bytes_ GUARDED_BY(mutex_) = 0;
};

class NameNode {
 public:
  // Registers a file with its block list. Throws if the file exists.
  void create_file(const std::string& name, std::vector<BlockRef> blocks);

  bool exists(const std::string& name) const;
  // Block list of a file; throws std::out_of_range if missing.
  std::vector<BlockRef> lookup(const std::string& name) const;
  void remove(const std::string& name);
  std::uint64_t file_count() const;

  std::uint64_t next_block_id();

 private:
  mutable Mutex mutex_;
  std::map<std::string, std::vector<BlockRef>> files_ GUARDED_BY(mutex_);
  std::uint64_t next_block_id_ GUARDED_BY(mutex_) = 1;
};

// The assembled cluster: one NameNode, `nodes` DataNodes, round-robin block
// placement.
class MiniHdfs {
 public:
  explicit MiniHdfs(std::uint32_t nodes = 20);

  NameNode& namenode() noexcept { return namenode_; }
  DataNode& datanode(std::uint32_t id);
  std::uint32_t num_datanodes() const noexcept {
    return static_cast<std::uint32_t>(datanodes_.size());
  }

  // Writes pre-chunked blocks as a file, placing them round-robin.
  void write_file(const std::string& name,
                  const std::vector<ByteSpan>& blocks);

  // Reads a whole file back (concatenated blocks).
  ByteVec read_file(const std::string& name) const;

  // Per-block payloads, in order.
  std::vector<ByteVec> read_blocks(const std::string& name) const;

  std::uint64_t total_bytes_stored() const;

 private:
  NameNode namenode_;
  // deque: DataNode holds a mutex and is immovable; deque never relocates.
  std::deque<DataNode> datanodes_;
  std::uint32_t next_node_ = 0;
};

}  // namespace shredder::inchdfs
