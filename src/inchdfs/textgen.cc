#include "inchdfs/textgen.h"

#include <cmath>
#include <cstring>
#include <stdexcept>

#include "common/rng.h"

namespace shredder::inchdfs {

std::string make_text_corpus(std::uint64_t bytes, std::uint64_t seed) {
  return random_text(bytes, seed);
}

std::string mutate_text_corpus(const std::string& corpus, double fraction,
                               std::uint64_t seed, unsigned edit_regions) {
  if (edit_regions == 0) {
    throw std::invalid_argument("mutate_text_corpus: edit_regions >= 1");
  }
  // Average word is ~6 characters in the generated corpus.
  const double chars = fraction * static_cast<double>(corpus.size());
  const auto run_words = static_cast<std::size_t>(
      std::max(1.0, chars / (6.0 * static_cast<double>(edit_regions))));
  return mutate_text(corpus, fraction, seed, run_words);
}

namespace {

std::pair<float, float> cluster_centre(unsigned cluster) {
  // Deterministic centres on a coarse grid, well separated relative to the
  // unit noise below.
  const float x = static_cast<float>((cluster % 8) * 100 + 50);
  const float y = static_cast<float>((cluster / 8) * 100 + 50);
  return {x, y};
}

void write_point(std::uint8_t* dst, float x, float y) {
  std::memcpy(dst, &x, 4);
  std::memcpy(dst + 4, &y, 4);
}

std::pair<float, float> draw_point(SplitMix64& rng, unsigned clusters) {
  const auto c = static_cast<unsigned>(rng.next_below(clusters));
  const auto [cx, cy] = cluster_centre(c);
  // Box-Muller-free noise: sum of uniforms, +-10 around the centre.
  const float nx = static_cast<float>(rng.next_double() + rng.next_double() +
                                      rng.next_double() - 1.5) *
                   10.0f;
  const float ny = static_cast<float>(rng.next_double() + rng.next_double() +
                                      rng.next_double() - 1.5) *
                   10.0f;
  return {cx + nx, cy + ny};
}

}  // namespace

ByteVec make_points_blob(std::uint64_t n_points, unsigned clusters,
                         std::uint64_t seed) {
  if (clusters == 0) {
    throw std::invalid_argument("make_points_blob: clusters must be >= 1");
  }
  ByteVec blob(n_points * 8);
  SplitMix64 rng(seed);
  for (std::uint64_t i = 0; i < n_points; ++i) {
    const auto [x, y] = draw_point(rng, clusters);
    write_point(blob.data() + i * 8, x, y);
  }
  return blob;
}

ByteVec mutate_points_blob(const ByteVec& blob, double fraction,
                           std::uint64_t seed, unsigned edit_regions) {
  if (fraction < 0.0 || fraction > 1.0) {
    throw std::invalid_argument("mutate_points_blob: fraction in [0,1]");
  }
  if (blob.size() % 8 != 0) {
    throw std::invalid_argument("mutate_points_blob: blob not record-aligned");
  }
  ByteVec out = blob;
  const std::uint64_t n_points = blob.size() / 8;
  if (n_points == 0 || fraction == 0.0) return out;
  SplitMix64 rng(seed);
  if (edit_regions == 0) {
    throw std::invalid_argument("mutate_points_blob: edit_regions >= 1");
  }
  const auto target =
      static_cast<std::uint64_t>(fraction * static_cast<double>(n_points));
  std::uint64_t mutated = 0;
  const std::uint64_t run =
      std::max<std::uint64_t>(1, target / edit_regions);  // points per edit
  while (mutated < target) {
    const std::uint64_t len = std::min(run, target - mutated);
    const std::uint64_t start = rng.next_below(n_points);
    for (std::uint64_t i = 0; i < len && start + i < n_points; ++i) {
      const auto [x, y] = draw_point(rng, 8);
      write_point(out.data() + (start + i) * 8, x, y);
    }
    mutated += len;
  }
  return out;
}

std::vector<std::pair<float, float>> decode_points(ByteSpan data) {
  if (data.size() % 8 != 0) {
    throw std::invalid_argument("decode_points: not record-aligned");
  }
  std::vector<std::pair<float, float>> out;
  out.reserve(data.size() / 8);
  for (std::size_t off = 0; off + 8 <= data.size(); off += 8) {
    float x, y;
    std::memcpy(&x, data.data() + off, 4);
    std::memcpy(&y, data.data() + off + 4, 4);
    out.emplace_back(x, y);
  }
  return out;
}

}  // namespace shredder::inchdfs
