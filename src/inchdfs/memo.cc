#include "inchdfs/memo.h"

#include "inchdfs/mapreduce.h"

namespace shredder::inchdfs {

MemoServer::MapOutputPtr MemoServer::get_map(const dedup::Sha1Digest& key) {
  MutexLock lock(mutex_);
  const auto it = map_memo_.find(key);
  if (it == map_memo_.end()) {
    ++map_misses_;
    return nullptr;
  }
  ++map_hits_;
  return it->second;
}

void MemoServer::put_map(const dedup::Sha1Digest& key, MapOutputPtr value) {
  MutexLock lock(mutex_);
  map_memo_[key] = std::move(value);
}

std::optional<std::map<std::string, std::string>> MemoServer::get_reduce(
    const dedup::Sha1Digest& key) {
  MutexLock lock(mutex_);
  const auto it = reduce_memo_.find(key);
  if (it == reduce_memo_.end()) {
    ++reduce_misses_;
    return std::nullopt;
  }
  ++reduce_hits_;
  return it->second;
}

void MemoServer::put_reduce(const dedup::Sha1Digest& key,
                            std::map<std::string, std::string> value) {
  MutexLock lock(mutex_);
  reduce_memo_[key] = std::move(value);
}

MemoServer::CombinePtr MemoServer::get_combine(const dedup::Sha1Digest& key) {
  MutexLock lock(mutex_);
  const auto it = combine_memo_.find(key);
  if (it == combine_memo_.end()) {
    ++combine_misses_;
    return nullptr;
  }
  ++combine_hits_;
  return it->second;
}

void MemoServer::put_combine(const dedup::Sha1Digest& key, CombinePtr value) {
  MutexLock lock(mutex_);
  combine_memo_[key] = std::move(value);
}

std::uint64_t MemoServer::combine_hits() const {
  MutexLock lock(mutex_);
  return combine_hits_;
}
std::uint64_t MemoServer::combine_misses() const {
  MutexLock lock(mutex_);
  return combine_misses_;
}

std::uint64_t MemoServer::map_hits() const {
  MutexLock lock(mutex_);
  return map_hits_;
}
std::uint64_t MemoServer::map_misses() const {
  MutexLock lock(mutex_);
  return map_misses_;
}
std::uint64_t MemoServer::reduce_hits() const {
  MutexLock lock(mutex_);
  return reduce_hits_;
}
std::uint64_t MemoServer::reduce_misses() const {
  MutexLock lock(mutex_);
  return reduce_misses_;
}
std::uint64_t MemoServer::entries() const {
  MutexLock lock(mutex_);
  return map_memo_.size() + reduce_memo_.size();
}

}  // namespace shredder::inchdfs
