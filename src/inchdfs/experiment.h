// The Figure 15 experiment harness: incremental MapReduce speedup versus
// fraction of input change, for Word-Count, Co-occurrence Matrix and
// K-means.
//
// Protocol (matching §6.3): the original input is uploaded through the
// Shredder-enabled Inc-HDFS client and the job runs once to prime the
// memoization server. The input is then mutated by `change_fraction`,
// re-uploaded, and the job runs twice on the mutated data:
//   * "Hadoop"  — stock runtime: fixed-size splits, no memoization,
//   * "Incoop"  — content-defined splits + memoization.
// Speedup is wall-clock Hadoop / Incoop; outputs are verified equal.
#pragma once

#include <cstdint>
#include <string>

#include "inchdfs/mapreduce.h"

namespace shredder::inchdfs {

enum class Workload { kWordCount, kCoOccurrence, kKMeans };

const char* workload_name(Workload w) noexcept;

struct ExperimentConfig {
  Workload workload = Workload::kWordCount;
  // Text bytes for the word jobs; points * 8 bytes for K-means.
  std::uint64_t input_bytes = 8ull * 1024 * 1024;
  double change_fraction = 0.05;
  std::uint64_t seed = 1;
  std::size_t engine_threads = 0;
  // Content-defined split parameters (expected split = 2^mask_bits bytes).
  unsigned split_mask_bits = 16;   // ~64 KB splits
  std::uint64_t split_min = 16 * 1024;
  std::uint64_t split_max = 256 * 1024;
};

struct ExperimentResult {
  double hadoop_seconds = 0;
  double incremental_seconds = 0;
  double speedup = 0;
  bool outputs_match = false;
  std::uint64_t map_tasks = 0;
  std::uint64_t map_reused = 0;
  std::uint64_t reduce_tasks = 0;
  std::uint64_t reduce_reused = 0;
};

ExperimentResult run_incremental_experiment(const ExperimentConfig& config);

}  // namespace shredder::inchdfs
