// Memoization server (paper §6.1): the fine-grained result-reuse store that
// Incoop consults before executing a task.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/annotations.h"
#include "common/mutex.h"
#include "dedup/sha1.h"

namespace shredder::inchdfs {

struct KeyValue;

// Immutable memoized map-task output: one bucket per reducer plus digests.
struct MemoizedMapOutput {
  std::vector<std::vector<KeyValue>> buckets;
  std::vector<dedup::Sha1Digest> bucket_digests;
};

// Immutable memoized contraction-tree node: a combined bucket.
struct MemoizedCombine {
  std::vector<KeyValue> kvs;
  dedup::Sha1Digest digest;  // content digest of kvs
};

class MemoServer {
 public:
  using MapOutputPtr = std::shared_ptr<const MemoizedMapOutput>;

  MapOutputPtr get_map(const dedup::Sha1Digest& key);
  void put_map(const dedup::Sha1Digest& key, MapOutputPtr value);

  std::optional<std::map<std::string, std::string>> get_reduce(
      const dedup::Sha1Digest& key);
  void put_reduce(const dedup::Sha1Digest& key,
                  std::map<std::string, std::string> value);

  using CombinePtr = std::shared_ptr<const MemoizedCombine>;
  CombinePtr get_combine(const dedup::Sha1Digest& key);
  void put_combine(const dedup::Sha1Digest& key, CombinePtr value);
  std::uint64_t combine_hits() const;
  std::uint64_t combine_misses() const;

  std::uint64_t map_hits() const;
  std::uint64_t map_misses() const;
  std::uint64_t reduce_hits() const;
  std::uint64_t reduce_misses() const;
  std::uint64_t entries() const;

 private:
  mutable Mutex mutex_;
  std::unordered_map<dedup::Sha1Digest, MapOutputPtr, dedup::Sha1DigestHash>
      map_memo_ GUARDED_BY(mutex_);
  std::unordered_map<dedup::Sha1Digest, std::map<std::string, std::string>,
                     dedup::Sha1DigestHash>
      reduce_memo_ GUARDED_BY(mutex_);
  std::unordered_map<dedup::Sha1Digest, CombinePtr, dedup::Sha1DigestHash>
      combine_memo_ GUARDED_BY(mutex_);
  std::uint64_t combine_hits_ GUARDED_BY(mutex_) = 0;
  std::uint64_t combine_misses_ GUARDED_BY(mutex_) = 0;
  std::uint64_t map_hits_ GUARDED_BY(mutex_) = 0;
  std::uint64_t map_misses_ GUARDED_BY(mutex_) = 0;
  std::uint64_t reduce_hits_ GUARDED_BY(mutex_) = 0;
  std::uint64_t reduce_misses_ GUARDED_BY(mutex_) = 0;
};

}  // namespace shredder::inchdfs
