#include "inchdfs/jobs.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <unordered_map>

#include "common/rng.h"
#include "inchdfs/textgen.h"

namespace shredder::inchdfs {

namespace {

// Tokenizes text into lowercase words (the corpus generator emits only
// [a-z ] and newlines, but stay robust to arbitrary bytes).
template <typename Fn>
void for_each_word(ByteSpan data, Fn&& fn) {
  std::size_t start = 0;
  auto is_word = [](std::uint8_t c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
           (c >= '0' && c <= '9');
  };
  for (std::size_t i = 0; i <= data.size(); ++i) {
    const bool end = i == data.size() || !is_word(data[i]);
    if (end) {
      if (i > start) {
        fn(std::string_view(reinterpret_cast<const char*>(data.data()) + start,
                            i - start));
      }
      start = i + 1;
    }
  }
}

std::uint64_t parse_u64(const std::string& s) {
  std::uint64_t v = 0;
  std::from_chars(s.data(), s.data() + s.size(), v);
  return v;
}

}  // namespace

JobSpec make_wordcount_job(std::size_t num_reducers) {
  JobSpec job;
  job.name = "word-count";
  job.num_reducers = num_reducers;
  job.map_fn = [](const Split& split, MapEmitter& emitter) {
    std::unordered_map<std::string, std::uint64_t> local;
    for_each_word(as_bytes(split.data),
                  [&](std::string_view word) { local[std::string(word)]++; });
    for (auto& [word, count] : local) {
      emitter.emit(word, std::to_string(count));
    }
  };
  job.reduce_fn = [](const std::string&, const std::vector<std::string>& vs) {
    std::uint64_t sum = 0;
    for (const auto& v : vs) sum += parse_u64(v);
    return std::to_string(sum);
  };
  job.combine_fn = job.reduce_fn;  // summation is associative
  return job;
}

JobSpec make_cooccurrence_job(unsigned window, std::size_t num_reducers) {
  if (window == 0) {
    throw std::invalid_argument("make_cooccurrence_job: window >= 1");
  }
  JobSpec job;
  job.name = "co-occurrence";
  job.params_digest = "w=" + std::to_string(window);
  job.num_reducers = num_reducers;
  job.map_fn = [window](const Split& split, MapEmitter& emitter) {
    // Pairs are counted within a record (line) so the result is independent
    // of how the stream was split: record-aligned splits never cut a line.
    std::unordered_map<std::string, std::uint64_t> local;
    ByteSpan data = as_bytes(split.data);
    std::size_t line_start = 0;
    std::vector<std::string> words;
    auto flush_line = [&](std::size_t end) {
      words.clear();
      for_each_word(data.subspan(line_start, end - line_start),
                    [&](std::string_view w) { words.emplace_back(w); });
      for (std::size_t i = 0; i < words.size(); ++i) {
        for (std::size_t j = i + 1; j <= i + window && j < words.size(); ++j) {
          local[words[i] + "|" + words[j]]++;
        }
      }
      line_start = end + 1;
    };
    for (std::size_t i = 0; i < data.size(); ++i) {
      if (data[i] == '\n') flush_line(i);
    }
    if (line_start < data.size()) flush_line(data.size());
    for (auto& [pair, count] : local) {
      emitter.emit(pair, std::to_string(count));
    }
  };
  job.reduce_fn = [](const std::string&, const std::vector<std::string>& vs) {
    std::uint64_t sum = 0;
    for (const auto& v : vs) sum += parse_u64(v);
    return std::to_string(sum);
  };
  job.combine_fn = job.reduce_fn;  // summation is associative
  return job;
}

KMeansDriver::KMeansDriver(unsigned k, unsigned max_iterations,
                           std::uint64_t seed)
    : k_(k), max_iterations_(max_iterations), seed_(seed) {
  if (k == 0) throw std::invalid_argument("KMeansDriver: k >= 1");
  if (max_iterations == 0) {
    throw std::invalid_argument("KMeansDriver: max_iterations >= 1");
  }
}

std::vector<std::pair<float, float>> KMeansDriver::initial_centroids(
    const std::vector<Split>& splits) const {
  std::vector<std::pair<float, float>> centroids;
  centroids.reserve(k_);
  if (splits.empty() || splits[0].data.size() < 8) {
    // Degenerate input: fall back to a deterministic spread.
    SplitMix64 rng(seed_);
    for (unsigned i = 0; i < k_; ++i) {
      centroids.emplace_back(static_cast<float>(rng.next_double() * 100.0),
                             static_cast<float>(rng.next_double() * 100.0));
    }
    return centroids;
  }
  const auto points = decode_points(as_bytes(splits[0].data));
  // Sample only among the leading points so the choice is identical no
  // matter how the stream was split (fixed-size vs content-defined layouts
  // share the same leading bytes).
  const std::uint64_t pool = std::min<std::uint64_t>(points.size(), 256);
  SplitMix64 rng(seed_);
  for (unsigned i = 0; i < k_; ++i) {
    centroids.push_back(points[rng.next_below(pool)]);
  }
  return centroids;
}

JobSpec KMeansDriver::job_for(
    const std::vector<std::pair<float, float>>& centroids,
    std::size_t num_reducers) const {
  JobSpec job;
  job.name = "k-means";
  job.num_reducers = num_reducers;
  // Exact (bit-level) centroid serialization: the params digest must be
  // identical iff the centroids are.
  std::string params;
  params.reserve(centroids.size() * 16);
  for (const auto& [x, y] : centroids) {
    char buf[32];
    std::uint32_t xb, yb;
    std::memcpy(&xb, &x, 4);
    std::memcpy(&yb, &y, 4);
    std::snprintf(buf, sizeof(buf), "%08x%08x;", xb, yb);
    params += buf;
  }
  job.params_digest = params;
  const auto cents = centroids;  // captured by value
  job.map_fn = [cents](const Split& split, MapEmitter& emitter) {
    // Partial sums per centroid: sx, sy, n.
    std::vector<double> sx(cents.size(), 0), sy(cents.size(), 0);
    std::vector<std::uint64_t> n(cents.size(), 0);
    const auto points = decode_points(as_bytes(split.data));
    for (const auto& [px, py] : points) {
      std::size_t best = 0;
      double best_d = 1e300;
      for (std::size_t c = 0; c < cents.size(); ++c) {
        const double dx = static_cast<double>(px) - cents[c].first;
        const double dy = static_cast<double>(py) - cents[c].second;
        const double d = dx * dx + dy * dy;
        if (d < best_d) {
          best_d = d;
          best = c;
        }
      }
      sx[best] += px;
      sy[best] += py;
      n[best] += 1;
    }
    for (std::size_t c = 0; c < cents.size(); ++c) {
      if (n[c] == 0) continue;
      char buf[96];
      std::snprintf(buf, sizeof(buf), "%.17g,%.17g,%llu", sx[c], sy[c],
                    static_cast<unsigned long long>(n[c]));
      emitter.emit(std::to_string(c), buf);
    }
  };
  job.reduce_fn = [](const std::string&, const std::vector<std::string>& vs) {
    double sx = 0, sy = 0;
    std::uint64_t n = 0;
    for (const auto& v : vs) {
      double psx = 0, psy = 0;
      unsigned long long pn = 0;
      std::sscanf(v.c_str(), "%lg,%lg,%llu", &psx, &psy, &pn);
      sx += psx;
      sy += psy;
      n += pn;
    }
    if (n == 0) return std::string("nan,nan");
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.9g,%.9g",
                  sx / static_cast<double>(n), sy / static_cast<double>(n));
    return std::string(buf);
  };
  // Combiner keeps the partial-sum form (sx, sy, n) so it stays associative;
  // only the final reduce normalizes to a centroid.
  job.combine_fn = [](const std::string&, const std::vector<std::string>& vs) {
    double sx = 0, sy = 0;
    std::uint64_t n = 0;
    for (const auto& v : vs) {
      double psx = 0, psy = 0;
      unsigned long long pn = 0;
      std::sscanf(v.c_str(), "%lg,%lg,%llu", &psx, &psy, &pn);
      sx += psx;
      sy += psy;
      n += pn;
    }
    char buf[96];
    std::snprintf(buf, sizeof(buf), "%.17g,%.17g,%llu", sx, sy,
                  static_cast<unsigned long long>(n));
    return std::string(buf);
  };
  return job;
}

KMeansDriver::Result KMeansDriver::run(MapReduceEngine& engine,
                                       const std::vector<Split>& splits,
                                       MemoServer* memo,
                                       const std::vector<std::pair<float, float>>*
                                           warm_start) const {
  Result result;
  auto centroids = warm_start != nullptr && warm_start->size() == k_
                       ? *warm_start
                       : initial_centroids(splits);
  std::vector<std::pair<float, float>> last_params;
  for (unsigned iter = 0; iter < max_iterations_; ++iter) {
    const JobSpec job = job_for(centroids);
    last_params = centroids;
    const JobResult jr = engine.run(job, splits, memo);
    result.aggregate_stats.map_tasks += jr.stats.map_tasks;
    result.aggregate_stats.map_reused += jr.stats.map_reused;
    result.aggregate_stats.reduce_tasks += jr.stats.reduce_tasks;
    result.aggregate_stats.reduce_reused += jr.stats.reduce_reused;
    result.aggregate_stats.wall_seconds += jr.stats.wall_seconds;
    ++result.iterations;
    auto next = centroids;
    for (std::size_t c = 0; c < centroids.size(); ++c) {
      const auto it = jr.output.find(std::to_string(c));
      if (it == jr.output.end()) continue;  // empty cluster keeps centroid
      float x = 0, y = 0;
      std::sscanf(it->second.c_str(), "%g,%g", &x, &y);
      if (!std::isnan(x) && !std::isnan(y)) next[c] = {x, y};
    }
    // Epsilon convergence: exact float equality can ping-pong forever, and
    // a single boundary point flipping between clusters moves a mean by
    // ~spacing/cluster_size, so the threshold sits above that noise.
    double moved = 0;
    for (std::size_t c = 0; c < centroids.size(); ++c) {
      moved = std::max(
          {moved, std::abs(static_cast<double>(next[c].first) -
                           centroids[c].first),
           std::abs(static_cast<double>(next[c].second) - centroids[c].second)});
    }
    if (moved < 0.1) break;
    centroids = std::move(next);
  }
  // Return the params of the LAST EXECUTED job (not its output): a warm
  // start from these centroids replays a job whose map results are already
  // memoized, which is what makes the incremental rerun cheap.
  result.centroids = std::move(last_params);
  return result;
}

}  // namespace shredder::inchdfs
