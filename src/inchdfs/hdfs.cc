#include "inchdfs/hdfs.h"

#include <stdexcept>

namespace shredder::inchdfs {

void DataNode::put(std::uint64_t block_id, ByteSpan data) {
  MutexLock lock(mutex_);
  auto [it, inserted] =
      blocks_.try_emplace(block_id, ByteVec(data.begin(), data.end()));
  if (!inserted) {
    throw std::invalid_argument("DataNode::put: block id already stored");
  }
  bytes_ += data.size();
}

std::optional<ByteVec> DataNode::get(std::uint64_t block_id) const {
  MutexLock lock(mutex_);
  const auto it = blocks_.find(block_id);
  if (it == blocks_.end()) return std::nullopt;
  return it->second;
}

std::uint64_t DataNode::bytes_stored() const {
  MutexLock lock(mutex_);
  return bytes_;
}

std::uint64_t DataNode::blocks_stored() const {
  MutexLock lock(mutex_);
  return blocks_.size();
}

void NameNode::create_file(const std::string& name,
                           std::vector<BlockRef> blocks) {
  MutexLock lock(mutex_);
  auto [it, inserted] = files_.try_emplace(name, std::move(blocks));
  if (!inserted) {
    throw std::invalid_argument("NameNode: file exists: " + name);
  }
}

bool NameNode::exists(const std::string& name) const {
  MutexLock lock(mutex_);
  return files_.contains(name);
}

std::vector<BlockRef> NameNode::lookup(const std::string& name) const {
  MutexLock lock(mutex_);
  const auto it = files_.find(name);
  if (it == files_.end()) {
    throw std::out_of_range("NameNode: no such file: " + name);
  }
  return it->second;
}

void NameNode::remove(const std::string& name) {
  MutexLock lock(mutex_);
  files_.erase(name);
}

std::uint64_t NameNode::file_count() const {
  MutexLock lock(mutex_);
  return files_.size();
}

std::uint64_t NameNode::next_block_id() {
  MutexLock lock(mutex_);
  return next_block_id_++;
}

MiniHdfs::MiniHdfs(std::uint32_t nodes) {
  if (nodes == 0) throw std::invalid_argument("MiniHdfs: need >= 1 datanode");
  for (std::uint32_t i = 0; i < nodes; ++i) datanodes_.emplace_back(i);
}

DataNode& MiniHdfs::datanode(std::uint32_t id) {
  if (id >= datanodes_.size()) {
    throw std::out_of_range("MiniHdfs: bad datanode id");
  }
  return datanodes_[id];
}

void MiniHdfs::write_file(const std::string& name,
                          const std::vector<ByteSpan>& blocks) {
  std::vector<BlockRef> refs;
  refs.reserve(blocks.size());
  for (const ByteSpan& block : blocks) {
    BlockRef ref;
    ref.block_id = namenode_.next_block_id();
    ref.datanode = next_node_;
    ref.size = block.size();
    ref.digest = dedup::Sha1::hash(block);
    datanodes_[next_node_].put(ref.block_id, block);
    next_node_ = (next_node_ + 1) % datanodes_.size();
    refs.push_back(ref);
  }
  namenode_.create_file(name, std::move(refs));
}

ByteVec MiniHdfs::read_file(const std::string& name) const {
  ByteVec out;
  for (const auto& ref : namenode_.lookup(name)) {
    const auto block = datanodes_[ref.datanode].get(ref.block_id);
    if (!block.has_value()) {
      throw std::runtime_error("MiniHdfs: missing block");
    }
    out.insert(out.end(), block->begin(), block->end());
  }
  return out;
}

std::vector<ByteVec> MiniHdfs::read_blocks(const std::string& name) const {
  std::vector<ByteVec> out;
  for (const auto& ref : namenode_.lookup(name)) {
    auto block = datanodes_[ref.datanode].get(ref.block_id);
    if (!block.has_value()) {
      throw std::runtime_error("MiniHdfs: missing block");
    }
    out.push_back(std::move(*block));
  }
  return out;
}

std::uint64_t MiniHdfs::total_bytes_stored() const {
  std::uint64_t total = 0;
  for (const auto& node : datanodes_) total += node.bytes_stored();
  return total;
}

}  // namespace shredder::inchdfs
