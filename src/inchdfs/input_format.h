// Semantic chunking framework (paper §6.3).
//
// Content-based chunking is oblivious to record structure, so a boundary can
// land mid-record. Like Hadoop's InputFormat, these classes adjust proposed
// split boundaries to the next record boundary so Map tasks always see whole
// records. The adjustment is a deterministic function of the content, so
// record-aligned content-defined splits remain stable under local edits.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.h"

namespace shredder::inchdfs {

class InputFormat {
 public:
  virtual ~InputFormat() = default;

  // Given `data` and a proposed boundary end-offset, returns the nearest
  // record-aligned end-offset at or after it (clamped to data.size()).
  virtual std::uint64_t align_boundary(ByteSpan data,
                                       std::uint64_t proposed) const = 0;

  // Splits one record-aligned block into records (for Map tasks).
  virtual std::vector<ByteSpan> records(ByteSpan block) const = 0;
};

// Records are '\n'-terminated lines.
class TextInputFormat final : public InputFormat {
 public:
  std::uint64_t align_boundary(ByteSpan data,
                               std::uint64_t proposed) const override;
  std::vector<ByteSpan> records(ByteSpan block) const override;
};

// Fixed-length binary records (e.g. the points file of the K-means job).
class FixedRecordInputFormat final : public InputFormat {
 public:
  explicit FixedRecordInputFormat(std::size_t record_bytes);

  std::uint64_t align_boundary(ByteSpan data,
                               std::uint64_t proposed) const override;
  std::vector<ByteSpan> records(ByteSpan block) const override;

  std::size_t record_bytes() const noexcept { return record_bytes_; }

 private:
  std::size_t record_bytes_;
};

// Applies align_boundary to every proposed boundary, dropping collapsed
// duplicates; the final boundary is always data.size().
std::vector<std::uint64_t> align_boundaries(const InputFormat& format,
                                            ByteSpan data,
                                            const std::vector<std::uint64_t>& proposed);

}  // namespace shredder::inchdfs
