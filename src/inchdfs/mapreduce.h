// Miniature MapReduce runtime with Incoop-style task memoization
// (paper §6.1): map tasks keyed by their input split's content digest,
// reduce tasks keyed by the digests of their shuffled input partitions.
// Running with a MemoServer is "Incoop"; running without is stock "Hadoop".
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "dedup/sha1.h"
#include "inchdfs/inc_hdfs.h"
#include "inchdfs/memo.h"

namespace shredder::inchdfs {

struct KeyValue {
  std::string key;
  std::string value;

  friend bool operator==(const KeyValue&, const KeyValue&) = default;
};

// Collects map-task output and partitions it across reducers. Emission
// order is normalised (sorted) at finalize time so a split's bucket content
// is a pure function of the split content — the property reduce memoization
// rests on.
class MapEmitter {
 public:
  explicit MapEmitter(std::size_t num_reducers);

  void emit(std::string key, std::string value);

  // Sorts buckets and computes their digests. Called by the engine.
  void finalize();

  const std::vector<std::vector<KeyValue>>& buckets() const noexcept {
    return buckets_;
  }
  const std::vector<dedup::Sha1Digest>& bucket_digests() const noexcept {
    return digests_;
  }

  // Deterministic cross-platform partition function.
  static std::size_t partition(const std::string& key,
                               std::size_t num_reducers) noexcept;

 private:
  std::vector<std::vector<KeyValue>> buckets_;
  std::vector<dedup::Sha1Digest> digests_;
};

struct JobSpec {
  std::string name;
  // Non-input parameters that affect the computation (e.g. the K-means
  // centroids of this iteration); folded into every memo key.
  std::string params_digest;
  std::function<void(const Split&, MapEmitter&)> map_fn;
  std::function<std::string(const std::string& key,
                            const std::vector<std::string>& values)>
      reduce_fn;
  // Optional associative combiner (value x value -> value, same signature as
  // reduce). When set, reducers aggregate their inputs through a memoized
  // CONTRACTION TREE (Incoop's mechanism for incremental reduce): buckets
  // are grouped content-defined by their digests, each group's combined
  // result is memoized, and a change to one input bucket only recomputes the
  // log-depth path of groups containing it instead of the whole reduction.
  std::function<std::string(const std::string& key,
                            const std::vector<std::string>& values)>
      combine_fn;
  // Contraction only pays when buckets are large relative to the distinct
  // key count (long per-key value lists); for saturated small vocabularies
  // the upper tree levels redo near-full-width work on every dirty path and
  // the flat memoized reduce wins, so it is opt-in.
  bool use_contraction = false;
  std::size_t num_reducers = 8;

  void validate() const;
};

struct JobStats {
  std::uint64_t map_tasks = 0;
  std::uint64_t map_reused = 0;
  std::uint64_t reduce_tasks = 0;
  std::uint64_t reduce_reused = 0;
  double wall_seconds = 0;
};

struct JobResult {
  std::map<std::string, std::string> output;  // merged reducer outputs
  JobStats stats;
};

class MapReduceEngine {
 public:
  explicit MapReduceEngine(std::size_t threads = 0) : pool_(threads) {}

  // Runs the job over `splits`. With `memo` non-null, map and reduce tasks
  // whose memoized results are valid are skipped (Incoop); with nullptr
  // everything recomputes (Hadoop).
  JobResult run(const JobSpec& job, const std::vector<Split>& splits,
                MemoServer* memo);

 private:
  ThreadPool pool_;
};

}  // namespace shredder::inchdfs
