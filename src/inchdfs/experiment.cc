#include "inchdfs/experiment.h"

#include <cmath>
#include <stdexcept>
#include <thread>

#include "common/timer.h"
#include "core/shredder.h"
#include "inchdfs/hdfs.h"
#include "inchdfs/inc_hdfs.h"
#include "inchdfs/input_format.h"
#include "inchdfs/jobs.h"
#include "inchdfs/textgen.h"

namespace shredder::inchdfs {

const char* workload_name(Workload w) noexcept {
  switch (w) {
    case Workload::kWordCount:
      return "Word-Count";
    case Workload::kCoOccurrence:
      return "Co-occurrence Matrix";
    case Workload::kKMeans:
      return "K-means Clustering";
  }
  return "?";
}

namespace {

core::ShredderConfig shredder_config(const ExperimentConfig& config) {
  core::ShredderConfig sc;
  sc.chunker.window = 48;
  sc.chunker.mask_bits = config.split_mask_bits;
  sc.chunker.marker = 0x78;
  sc.chunker.min_size = config.split_min;
  sc.chunker.max_size = config.split_max;
  sc.buffer_bytes = 4ull * 1024 * 1024;
  sc.mode = core::GpuMode::kStreamsCoalesced;
  return sc;
}

ByteVec make_input(const ExperimentConfig& config) {
  if (config.workload == Workload::kKMeans) {
    return make_points_blob(config.input_bytes / 8, 8, config.seed);
  }
  const std::string text = make_text_corpus(config.input_bytes, config.seed);
  return ByteVec(text.begin(), text.end());
}

ByteVec mutate_input(const ExperimentConfig& config, const ByteVec& input) {
  if (config.workload == Workload::kKMeans) {
    return mutate_points_blob(input, config.change_fraction, config.seed + 1);
  }
  const std::string text(input.begin(), input.end());
  const std::string mutated =
      mutate_text_corpus(text, config.change_fraction, config.seed + 1);
  return ByteVec(mutated.begin(), mutated.end());
}

}  // namespace

ExperimentResult run_incremental_experiment(const ExperimentConfig& config) {
  if (config.change_fraction < 0 || config.change_fraction > 1) {
    throw std::invalid_argument("change_fraction in [0,1]");
  }
  const bool kmeans = config.workload == Workload::kKMeans;

  MiniHdfs fs(20);
  IncHdfsClient client(fs);
  core::Shredder shredder(shredder_config(config));
  TextInputFormat text_format;
  FixedRecordInputFormat record_format(8);
  const InputFormat& format =
      kmeans ? static_cast<const InputFormat&>(record_format)
             : static_cast<const InputFormat&>(text_format);

  MapReduceEngine engine(config.engine_threads);
  MemoServer memo;
  const KMeansDriver kmeans_driver(8, 12, config.seed + 17);

  // One reducer per available core (the paper's cluster runs reducers on
  // every node); fewer reducers would serialize the shuffle-heavy phase.
  const std::size_t reducers =
      std::max<std::size_t>(8, std::thread::hardware_concurrency());
  const JobSpec word_job =
      config.workload == Workload::kWordCount
          ? make_wordcount_job(reducers)
          : make_cooccurrence_job(8, reducers);

  // --- Run 1: original input, memoized (primes the memo server) ---
  const ByteVec v1 = make_input(config);
  client.copy_from_local_gpu("input-v1", as_bytes(v1), format, shredder);
  const auto splits_v1 = client.read_splits("input-v1");
  std::vector<std::pair<float, float>> primed_centroids;
  if (kmeans) {
    primed_centroids = kmeans_driver.run(engine, splits_v1, &memo).centroids;
  } else {
    engine.run(word_job, splits_v1, &memo);
  }

  // --- Mutated input, uploaded both ways ---
  const ByteVec v2 = mutate_input(config, v1);
  client.copy_from_local_gpu("input-v2", as_bytes(v2), format, shredder);
  // Fixed blocks sized to the expected content-defined split so the two
  // runtimes see comparable task counts.
  client.copy_from_local("input-v2-fixed", as_bytes(v2),
                         std::uint64_t{1} << config.split_mask_bits, &format);
  const auto splits_v2 = client.read_splits("input-v2");
  const auto splits_v2_fixed = client.read_splits("input-v2-fixed");

  ExperimentResult result;

  // --- "Hadoop": vanilla runtime on fixed-size splits ---
  std::map<std::string, std::string> hadoop_output;
  KMeansDriver::Result hadoop_kmeans;
  {
    Stopwatch sw;
    if (kmeans) {
      hadoop_kmeans = kmeans_driver.run(engine, splits_v2_fixed, nullptr);
    } else {
      hadoop_output = engine.run(word_job, splits_v2_fixed, nullptr).output;
    }
    result.hadoop_seconds = sw.elapsed_seconds();
  }

  // --- "Incoop": memoized runtime on content-defined splits ---
  std::map<std::string, std::string> inc_output;
  KMeansDriver::Result inc_kmeans;
  {
    Stopwatch sw;
    if (kmeans) {
      inc_kmeans =
          kmeans_driver.run(engine, splits_v2, &memo, &primed_centroids);
      result.map_tasks = inc_kmeans.aggregate_stats.map_tasks;
      result.map_reused = inc_kmeans.aggregate_stats.map_reused;
      result.reduce_tasks = inc_kmeans.aggregate_stats.reduce_tasks;
      result.reduce_reused = inc_kmeans.aggregate_stats.reduce_reused;
    } else {
      const auto jr = engine.run(word_job, splits_v2, &memo);
      inc_output = jr.output;
      result.map_tasks = jr.stats.map_tasks;
      result.map_reused = jr.stats.map_reused;
      result.reduce_tasks = jr.stats.reduce_tasks;
      result.reduce_reused = jr.stats.reduce_reused;
    }
    result.incremental_seconds = sw.elapsed_seconds();
  }

  if (kmeans) {
    // Centroid labels can permute between the cold and warm runs, and double
    // summation order differs across split layouts; compare as a set with a
    // tolerance.
    bool match = inc_kmeans.centroids.size() == hadoop_kmeans.centroids.size();
    for (std::size_t i = 0; match && i < inc_kmeans.centroids.size(); ++i) {
      double best = 1e300;
      for (const auto& [hx, hy] : hadoop_kmeans.centroids) {
        const double dx = std::abs(
            static_cast<double>(inc_kmeans.centroids[i].first) - hx);
        const double dy = std::abs(
            static_cast<double>(inc_kmeans.centroids[i].second) - hy);
        best = std::min(best, std::max(dx, dy));
      }
      match = best < 1.0;
    }
    result.outputs_match = match;
  } else {
    result.outputs_match = inc_output == hadoop_output;
  }
  result.speedup = result.incremental_seconds > 0
                       ? result.hadoop_seconds / result.incremental_seconds
                       : 0.0;
  return result;
}

}  // namespace shredder::inchdfs
