// Workload generators for the incremental-computation case study (Fig 15):
// text corpora for Word-Count / Co-occurrence and clustered point sets for
// K-means, plus mutators that model the "x% of the input changed between
// consecutive runs" axis of the figure.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"

namespace shredder::inchdfs {

// English-like text corpus (see common/rng.h).
std::string make_text_corpus(std::uint64_t bytes, std::uint64_t seed);

// Rewrites ~`fraction` of the corpus in a handful of localized word-aligned
// runs (the Figure 15 change model: consecutive runs of a job see a few
// regions of the input replaced, not uniform noise).
std::string mutate_text_corpus(const std::string& corpus, double fraction,
                               std::uint64_t seed, unsigned edit_regions = 4);

// 2-D points (two float32 per record, 8 bytes) drawn around `clusters`
// deterministic cluster centres.
ByteVec make_points_blob(std::uint64_t n_points, unsigned clusters,
                         std::uint64_t seed);

// Replaces ~`fraction` of the points in a handful of contiguous record-
// aligned runs with freshly drawn points.
ByteVec mutate_points_blob(const ByteVec& blob, double fraction,
                           std::uint64_t seed, unsigned edit_regions = 4);

// Decodes a record-aligned byte range into (x, y) pairs.
std::vector<std::pair<float, float>> decode_points(ByteSpan data);

}  // namespace shredder::inchdfs
