// Table-driven Rabin fingerprinting over a sliding window (paper §2.1).
//
// The fingerprint of a byte sequence is its residue modulo an irreducible
// degree-64 polynomial P (the leading x^64 coefficient is implicit; `poly()`
// returns the low 64 bits). Two 256-entry tables make both appending a byte
// and expiring the oldest window byte O(1):
//
//   push_table[t] = (t * x^64)        mod P   (reduction of the byte shifted
//                                              out of the 64-bit register)
//   pop_table[b]  = (b * x^(8*(w-1))) mod P   (contribution of the byte
//                                              leaving a w-byte window)
//
// RabinTables is immutable after construction and safe to share across
// threads; RabinWindow is a small per-thread cursor.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.h"

namespace shredder::rabin {

// Low 64 bits of the default degree-64 irreducible polynomial (the x^64
// coefficient is implicit). Found with gf2_random_irreducible and verified
// by Rabin's irreducibility test at table construction. (The classic LBFS
// constant 0xbfe6b8a5bf378d83 is a degree-63 polynomial with an explicit
// leading bit; we use full 64-bit residues instead, which keeps the
// byte-push reduction branch-free.)
inline constexpr std::uint64_t kDefaultPoly = 0xfd845ef300ce2d0bull;

class RabinTables {
 public:
  // window_bytes is the sliding-window size w (the paper uses 48).
  // poly_low64 are the low 64 bits of an irreducible degree-64 polynomial.
  // Throws std::invalid_argument for w == 0 or a reducible polynomial.
  explicit RabinTables(std::size_t window_bytes = 48,
                       std::uint64_t poly_low64 = kDefaultPoly);

  std::size_t window() const noexcept { return window_; }
  std::uint64_t poly() const noexcept { return poly_; }

  // fp' = (fp * x^8 + b) mod P
  std::uint64_t push(std::uint64_t fp, std::uint8_t b) const noexcept {
    const std::uint8_t shifted_out = static_cast<std::uint8_t>(fp >> 56);
    return ((fp << 8) | b) ^ push_table_[shifted_out];
  }

  // Removes the contribution of the byte that is leaving a full window.
  std::uint64_t pop(std::uint64_t fp, std::uint8_t oldest) const noexcept {
    return fp ^ pop_table_[oldest];
  }

  // Fingerprint of an entire buffer (no window), for tests and whole-chunk
  // fingerprints.
  std::uint64_t fingerprint(ByteSpan data) const noexcept;

 private:
  std::size_t window_;
  std::uint64_t poly_;
  std::array<std::uint64_t, 256> push_table_;
  std::array<std::uint64_t, 256> pop_table_;
};

// Sliding-window cursor. push() returns the fingerprint of the last
// min(window, #bytes pushed) bytes.
class RabinWindow {
 public:
  explicit RabinWindow(const RabinTables& tables);

  std::uint64_t push(std::uint8_t b) noexcept {
    if (filled_ == tables_->window()) {
      fp_ = tables_->pop(fp_, ring_[pos_]);
    } else {
      ++filled_;
    }
    ring_[pos_] = b;
    pos_ = pos_ + 1 == tables_->window() ? 0 : pos_ + 1;
    fp_ = tables_->push(fp_, b);
    return fp_;
  }

  std::uint64_t value() const noexcept { return fp_; }
  bool full() const noexcept { return filled_ == tables_->window(); }
  void reset() noexcept;

 private:
  const RabinTables* tables_;
  ByteVec ring_;
  std::size_t pos_ = 0;
  std::size_t filled_ = 0;
  std::uint64_t fp_ = 0;
};

}  // namespace shredder::rabin
