// Table-driven Rabin fingerprinting over a sliding window (paper §2.1).
//
// The fingerprint of a byte sequence is its residue modulo an irreducible
// degree-64 polynomial P (the leading x^64 coefficient is implicit; `poly()`
// returns the low 64 bits). Two 256-entry tables make both appending a byte
// and expiring the oldest window byte O(1):
//
//   push_table[t] = (t * x^64)        mod P   (reduction of the byte shifted
//                                              out of the 64-bit register)
//   pop_table[b]  = (b * x^(8*(w-1))) mod P   (contribution of the byte
//                                              leaving a w-byte window)
//
// A third table fuses the two for a full sliding-window step. Because
// reduction is GF(2)-linear, pop-then-push over a full window equals a plain
// push plus one extra XOR:
//
//   slide_table[b] = (b * x^(8*w))    mod P   (= pop_table[b] advanced one
//                                              byte through the register)
//   slide(fp, in, out) = push(fp, in) ^ slide_table[out]
//
// slide() still carries a serial dependency of one table walk per byte
// (fp -> load -> xor -> fp). slide4() breaks it: linearity lets four window
// steps collapse into ONE carried operation whose four reduction lookups are
// indexed by independent bytes of fp and so issue in parallel:
//
//   jump_table[j][c] = (c * x^(64+8*(3-j)))   mod P   (register bytes shifted
//                                                      out by fp * x^32)
//   out4_table[m][o] = (o * x^(8*w+8*(3-m)))  mod P   (the m-th of the four
//                                                      leaving window bytes)
//
// The carried chain thus advances four bytes per hop; a buffer scan computes
// the three intermediate fingerprints off the critical path (see
// chunking::scan_buffer). An 8-byte hop was prototyped the same way and
// measured no faster (the scan is resource-bound by then, docs/perf.md), so
// the tables stop at the 4-byte tier.
//
// RabinTables is immutable after construction and safe to share across
// threads; RabinWindow is a small per-thread cursor.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.h"

namespace shredder::rabin {

// Low 64 bits of the default degree-64 irreducible polynomial (the x^64
// coefficient is implicit). Found with gf2_random_irreducible and verified
// by Rabin's irreducibility test at table construction. (The classic LBFS
// constant 0xbfe6b8a5bf378d83 is a degree-63 polynomial with an explicit
// leading bit; we use full 64-bit residues instead, which keeps the
// byte-push reduction branch-free.)
inline constexpr std::uint64_t kDefaultPoly = 0xfd845ef300ce2d0bull;

class RabinTables {
 public:
  // window_bytes is the sliding-window size w (the paper uses 48).
  // poly_low64 are the low 64 bits of an irreducible degree-64 polynomial.
  // Throws std::invalid_argument for w == 0 or a reducible polynomial.
  explicit RabinTables(std::size_t window_bytes = 48,
                       std::uint64_t poly_low64 = kDefaultPoly);

  std::size_t window() const noexcept { return window_; }
  std::uint64_t poly() const noexcept { return poly_; }

  // fp' = (fp * x^8 + b) mod P
  std::uint64_t push(std::uint64_t fp, std::uint8_t b) const noexcept {
    const std::uint8_t shifted_out = static_cast<std::uint8_t>(fp >> 56);
    return ((fp << 8) | b) ^ push_table_[shifted_out];
  }

  // Removes the contribution of the byte that is leaving a full window.
  std::uint64_t pop(std::uint64_t fp, std::uint8_t oldest) const noexcept {
    return fp ^ pop_table_[oldest];
  }

  // Full-window step: slide(fp, in, out) == push(pop(fp, out), in), fused
  // into one shift and two XORs via slide_table. This is the whole inner
  // loop of the buffer fast path (chunking::scan_buffer).
  std::uint64_t slide(std::uint64_t fp, std::uint8_t in,
                      std::uint8_t out) const noexcept {
    const std::uint8_t shifted_out = static_cast<std::uint8_t>(fp >> 56);
    return (((fp << 8) | in) ^ push_table_[shifted_out]) ^ slide_table_[out];
  }

  // Four full-window steps fused into one carried operation. Equivalent to
  //   slide(slide(slide(slide(fp, in0, out0), in1, out1), in2, out2),
  //         in3, out3)
  // with in4_be = in0<<24 | in1<<16 | in2<<8 | in3, but the four reduction
  // lookups depend on disjoint bytes of fp and issue in parallel, so the
  // loop-carried latency is one hop per FOUR bytes instead of four
  // dependent table walks. Requires a full window (like slide).
  std::uint64_t slide4(std::uint64_t fp, std::uint32_t in4_be,
                       std::uint8_t out0, std::uint8_t out1,
                       std::uint8_t out2, std::uint8_t out3) const noexcept {
    return ((fp << 32) | in4_be) ^
           jump_table_[0][static_cast<std::uint8_t>(fp >> 56)] ^
           jump_table_[1][static_cast<std::uint8_t>(fp >> 48)] ^
           jump_table_[2][static_cast<std::uint8_t>(fp >> 40)] ^
           push_table_[static_cast<std::uint8_t>(fp >> 32)] ^
           out4_table_[0][out0] ^ out4_table_[1][out1] ^
           out4_table_[2][out2] ^ slide_table_[out3];
  }

  // x^(8*k) mod P, by square-and-multiply — O(log k) instead of k byte
  // shifts. This is the "jump" polynomial: appending k arbitrary bytes to a
  // stream multiplies its fingerprint by x^(8k), so batch entry/exit states
  // are computable without per-byte table walks (see concat()).
  std::uint64_t x_pow_8k(std::uint64_t k) const;

  // Fingerprint of the concatenation A||B from fingerprint(A),
  // fingerprint(B) and |B|: fp(A||B) = fp(A) * x^(8|B|) + fp(B) mod P.
  std::uint64_t concat(std::uint64_t prefix_fp, std::uint64_t suffix_fp,
                       std::uint64_t suffix_len) const;

  // Fingerprint of an entire buffer (no window), for tests and whole-chunk
  // fingerprints.
  std::uint64_t fingerprint(ByteSpan data) const noexcept;

 private:
  std::size_t window_;
  std::uint64_t poly_;
  std::array<std::uint64_t, 256> push_table_;
  std::array<std::uint64_t, 256> pop_table_;
  std::array<std::uint64_t, 256> slide_table_;
  // jump_table_[j][c] = c * x^(88-8j) mod P; the j=3 case is push_table_.
  std::array<std::array<std::uint64_t, 256>, 3> jump_table_;
  // out4_table_[m][o] = o * x^(8w+8(3-m)) mod P; the m=3 case is
  // slide_table_.
  std::array<std::array<std::uint64_t, 256>, 3> out4_table_;
};

// Sliding-window cursor. push() returns the fingerprint of the last
// min(window, #bytes pushed) bytes.
class RabinWindow {
 public:
  explicit RabinWindow(const RabinTables& tables);

  std::uint64_t push(std::uint8_t b) noexcept {
    if (filled_ == tables_->window()) {
      fp_ = tables_->pop(fp_, ring_[pos_]);
    } else {
      ++filled_;
    }
    ring_[pos_] = b;
    pos_ = pos_ + 1 == tables_->window() ? 0 : pos_ + 1;
    fp_ = tables_->push(fp_, b);
    return fp_;
  }

  std::uint64_t value() const noexcept { return fp_; }
  bool full() const noexcept { return filled_ == tables_->window(); }
  void reset() noexcept;

 private:
  const RabinTables* tables_;
  ByteVec ring_;
  std::size_t pos_ = 0;
  std::size_t filled_ = 0;
  std::uint64_t fp_ = 0;
};

}  // namespace shredder::rabin
