// Polynomial arithmetic over GF(2) (each bit is a coefficient).
//
// This is the mathematical substrate of Rabin fingerprinting (paper §2.1,
// eq. 1): a byte stream is a polynomial over GF(2) and its fingerprint is the
// residue modulo a fixed irreducible polynomial. We support polynomials up to
// degree 127 via unsigned __int128, which covers the degree-64 fingerprint
// modulus plus all intermediate products of 64-bit residues.
#pragma once

#include <cstdint>

namespace shredder::rabin {

using Gf2Poly = unsigned __int128;

// Degree of p (index of highest set bit); degree of the zero polynomial is -1.
int gf2_degree(Gf2Poly p) noexcept;

// a mod b. b must be non-zero.
Gf2Poly gf2_mod(Gf2Poly a, Gf2Poly b);

// Carry-less product a*b. Both inputs must have degree <= 63 so the result
// fits in 128 bits.
Gf2Poly gf2_mul(Gf2Poly a, Gf2Poly b);

// (a*b) mod m, for a, b already reduced mod m and deg(m) <= 64.
Gf2Poly gf2_mulmod(Gf2Poly a, Gf2Poly b, Gf2Poly m);

// Greatest common divisor.
Gf2Poly gf2_gcd(Gf2Poly a, Gf2Poly b) noexcept;

// x^(2^k) mod m, by repeated squaring.
Gf2Poly gf2_pow2k_x_mod(unsigned k, Gf2Poly m);

// Rabin's irreducibility test: f (degree n >= 1, explicit leading bit) is
// irreducible over GF(2) iff x^(2^n) == x (mod f) and, for each prime divisor
// q of n, gcd(f, x^(2^(n/q)) - x) == 1.
bool gf2_is_irreducible(Gf2Poly f);

// Finds a random irreducible polynomial of the given degree (2..64),
// deterministically from `seed`. Returned with the explicit leading bit set.
Gf2Poly gf2_random_irreducible(int degree, std::uint64_t seed);

}  // namespace shredder::rabin
