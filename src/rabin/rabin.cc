#include "rabin/rabin.h"

#include <stdexcept>

#include "rabin/gf2.h"

namespace shredder::rabin {

namespace {

// Full modulus with the implicit x^64 bit made explicit.
Gf2Poly full_poly(std::uint64_t low64) {
  return (Gf2Poly(1) << 64) | Gf2Poly(low64);
}

}  // namespace

RabinTables::RabinTables(std::size_t window_bytes, std::uint64_t poly_low64)
    : window_(window_bytes), poly_(poly_low64) {
  if (window_bytes == 0) {
    throw std::invalid_argument("RabinTables: window must be >= 1");
  }
  const Gf2Poly p = full_poly(poly_low64);
  if (!gf2_is_irreducible(p)) {
    throw std::invalid_argument("RabinTables: polynomial is not irreducible");
  }

  // push_table[t] = t * x^64 mod P for the byte t shifted out of bits 56..63.
  for (unsigned t = 0; t < 256; ++t) {
    const Gf2Poly v = gf2_mod(Gf2Poly(t) << 64, p);
    push_table_[t] = static_cast<std::uint64_t>(v);
  }

  // pop_table[b] = b * x^(8*(w-1)) mod P. Build x^(8*(w-1)) mod P by repeated
  // byte shifts so no large exponent object is needed.
  Gf2Poly x_pow = 1;  // x^0
  for (std::size_t i = 0; i + 1 < window_bytes; ++i) {
    x_pow = gf2_mod(x_pow << 8, p);
  }
  for (unsigned b = 0; b < 256; ++b) {
    const Gf2Poly v = gf2_mod(gf2_mul(Gf2Poly(b), x_pow), p);
    pop_table_[b] = static_cast<std::uint64_t>(v);
  }

  // slide_table[b] = b * x^(8*w) mod P: the pop contribution advanced one
  // more byte, so that pop-then-push fuses into push ^ slide_table[out]
  // (reduction is GF(2)-linear, so the two reductions combine).
  const Gf2Poly x_pow_w = gf2_mod(x_pow << 8, p);
  for (unsigned b = 0; b < 256; ++b) {
    const Gf2Poly v = gf2_mod(gf2_mul(Gf2Poly(b), x_pow_w), p);
    slide_table_[b] = static_cast<std::uint64_t>(v);
  }

  // slide4 tables. jump_table[j][c] = c * x^(88-8j): the reduction of the
  // register bytes shifted out by fp * x^32 (j = 3 is push_table itself).
  // out4_table[m][o] = o * x^(8w+8(3-m)): the m-th of the four window bytes
  // leaving during the jump (m = 3 is slide_table itself).
  Gf2Poly x_exp = gf2_mod(gf2_mod(Gf2Poly(1) << 64, p) << 8, p);  // x^72
  for (int j = 2; j >= 0; --j) {
    for (unsigned c = 0; c < 256; ++c) {
      jump_table_[static_cast<std::size_t>(j)][c] =
          static_cast<std::uint64_t>(gf2_mod(gf2_mul(Gf2Poly(c), x_exp), p));
    }
    x_exp = gf2_mod(x_exp << 8, p);
  }
  Gf2Poly out_exp = gf2_mod(x_pow_w << 8, p);  // x^(8w+8)
  for (int m = 2; m >= 0; --m) {
    for (unsigned o = 0; o < 256; ++o) {
      out4_table_[static_cast<std::size_t>(m)][o] =
          static_cast<std::uint64_t>(gf2_mod(gf2_mul(Gf2Poly(o), out_exp), p));
    }
    out_exp = gf2_mod(out_exp << 8, p);
  }
}

std::uint64_t RabinTables::x_pow_8k(std::uint64_t k) const {
  const Gf2Poly p = full_poly(poly_);
  Gf2Poly result = 1;                              // x^0
  Gf2Poly sq = gf2_mod(Gf2Poly(1) << 8, p);        // x^8
  while (k != 0) {
    if (k & 1) result = gf2_mulmod(result, sq, p);
    sq = gf2_mulmod(sq, sq, p);
    k >>= 1;
  }
  return static_cast<std::uint64_t>(result);
}

std::uint64_t RabinTables::concat(std::uint64_t prefix_fp,
                                  std::uint64_t suffix_fp,
                                  std::uint64_t suffix_len) const {
  const Gf2Poly p = full_poly(poly_);
  const Gf2Poly shifted =
      gf2_mulmod(Gf2Poly(prefix_fp), Gf2Poly(x_pow_8k(suffix_len)), p);
  return static_cast<std::uint64_t>(shifted) ^ suffix_fp;
}

std::uint64_t RabinTables::fingerprint(ByteSpan data) const noexcept {
  std::uint64_t fp = 0;
  for (std::uint8_t b : data) fp = push(fp, b);
  return fp;
}

RabinWindow::RabinWindow(const RabinTables& tables)
    : tables_(&tables), ring_(tables.window(), 0) {}

void RabinWindow::reset() noexcept {
  pos_ = 0;
  filled_ = 0;
  fp_ = 0;
}

}  // namespace shredder::rabin
