#include "rabin/rabin.h"

#include <stdexcept>

#include "rabin/gf2.h"

namespace shredder::rabin {

namespace {

// Full modulus with the implicit x^64 bit made explicit.
Gf2Poly full_poly(std::uint64_t low64) {
  return (Gf2Poly(1) << 64) | Gf2Poly(low64);
}

}  // namespace

RabinTables::RabinTables(std::size_t window_bytes, std::uint64_t poly_low64)
    : window_(window_bytes), poly_(poly_low64) {
  if (window_bytes == 0) {
    throw std::invalid_argument("RabinTables: window must be >= 1");
  }
  const Gf2Poly p = full_poly(poly_low64);
  if (!gf2_is_irreducible(p)) {
    throw std::invalid_argument("RabinTables: polynomial is not irreducible");
  }

  // push_table[t] = t * x^64 mod P for the byte t shifted out of bits 56..63.
  for (unsigned t = 0; t < 256; ++t) {
    const Gf2Poly v = gf2_mod(Gf2Poly(t) << 64, p);
    push_table_[t] = static_cast<std::uint64_t>(v);
  }

  // pop_table[b] = b * x^(8*(w-1)) mod P. Build x^(8*(w-1)) mod P by repeated
  // byte shifts so no large exponent object is needed.
  Gf2Poly x_pow = 1;  // x^0
  for (std::size_t i = 0; i + 1 < window_bytes; ++i) {
    x_pow = gf2_mod(x_pow << 8, p);
  }
  for (unsigned b = 0; b < 256; ++b) {
    const Gf2Poly v = gf2_mod(gf2_mul(Gf2Poly(b), x_pow), p);
    pop_table_[b] = static_cast<std::uint64_t>(v);
  }
}

std::uint64_t RabinTables::fingerprint(ByteSpan data) const noexcept {
  std::uint64_t fp = 0;
  for (std::uint8_t b : data) fp = push(fp, b);
  return fp;
}

RabinWindow::RabinWindow(const RabinTables& tables)
    : tables_(&tables), ring_(tables.window(), 0) {}

void RabinWindow::reset() noexcept {
  pos_ = 0;
  filled_ = 0;
  fp_ = 0;
}

}  // namespace shredder::rabin
