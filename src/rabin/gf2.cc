#include "rabin/gf2.h"

#include <stdexcept>
#include <vector>

#include "common/rng.h"

namespace shredder::rabin {

int gf2_degree(Gf2Poly p) noexcept {
  if (p == 0) return -1;
  int deg = 0;
  const auto hi = static_cast<std::uint64_t>(p >> 64);
  if (hi != 0) {
    deg = 64 + (63 - __builtin_clzll(hi));
  } else {
    deg = 63 - __builtin_clzll(static_cast<std::uint64_t>(p));
  }
  return deg;
}

Gf2Poly gf2_mod(Gf2Poly a, Gf2Poly b) {
  if (b == 0) throw std::invalid_argument("gf2_mod: division by zero");
  const int db = gf2_degree(b);
  int da = gf2_degree(a);
  while (da >= db) {
    a ^= b << (da - db);
    da = gf2_degree(a);
  }
  return a;
}

Gf2Poly gf2_mul(Gf2Poly a, Gf2Poly b) {
  if (gf2_degree(a) > 63 || gf2_degree(b) > 63) {
    throw std::invalid_argument("gf2_mul: operands must have degree <= 63");
  }
  Gf2Poly result = 0;
  while (b != 0) {
    if (b & 1) result ^= a;
    a <<= 1;
    b >>= 1;
  }
  return result;
}

Gf2Poly gf2_mulmod(Gf2Poly a, Gf2Poly b, Gf2Poly m) {
  if (gf2_degree(m) > 64) {
    throw std::invalid_argument("gf2_mulmod: modulus degree must be <= 64");
  }
  return gf2_mod(gf2_mul(gf2_mod(a, m), gf2_mod(b, m)), m);
}

Gf2Poly gf2_gcd(Gf2Poly a, Gf2Poly b) noexcept {
  while (b != 0) {
    // gf2_mod cannot throw here because b != 0.
    Gf2Poly r = a;
    const int db = gf2_degree(b);
    int dr = gf2_degree(r);
    while (dr >= db) {
      r ^= b << (dr - db);
      dr = gf2_degree(r);
    }
    a = b;
    b = r;
  }
  return a;
}

Gf2Poly gf2_pow2k_x_mod(unsigned k, Gf2Poly m) {
  Gf2Poly h = 2;  // the polynomial x
  h = gf2_mod(h, m);
  for (unsigned i = 0; i < k; ++i) {
    h = gf2_mulmod(h, h, m);
  }
  return h;
}

namespace {

std::vector<unsigned> prime_divisors(unsigned n) {
  std::vector<unsigned> out;
  for (unsigned p = 2; p * p <= n; ++p) {
    if (n % p == 0) {
      out.push_back(p);
      while (n % p == 0) n /= p;
    }
  }
  if (n > 1) out.push_back(n);
  return out;
}

}  // namespace

bool gf2_is_irreducible(Gf2Poly f) {
  const int n = gf2_degree(f);
  if (n < 1) return false;
  if (n == 1) return true;  // x and x+1
  // Constant term must be 1, otherwise x divides f.
  if ((f & 1) == 0) return false;
  // x^(2^n) == x (mod f)
  const Gf2Poly x = 2;
  if (gf2_pow2k_x_mod(static_cast<unsigned>(n), f) != gf2_mod(x, f)) {
    return false;
  }
  for (unsigned q : prime_divisors(static_cast<unsigned>(n))) {
    const Gf2Poly h = gf2_pow2k_x_mod(static_cast<unsigned>(n) / q, f) ^ gf2_mod(x, f);
    if (gf2_degree(gf2_gcd(f, h)) != 0) return false;
  }
  return true;
}

Gf2Poly gf2_random_irreducible(int degree, std::uint64_t seed) {
  if (degree < 2 || degree > 64) {
    throw std::invalid_argument("gf2_random_irreducible: degree in [2,64]");
  }
  SplitMix64 rng(seed);
  for (int attempt = 0; attempt < 100000; ++attempt) {
    Gf2Poly candidate = rng.next();
    if (degree < 64) {
      candidate &= (Gf2Poly(1) << degree) - 1;
    }
    candidate |= Gf2Poly(1) << degree;  // leading coefficient
    candidate |= 1;                     // constant term (required)
    if (gf2_is_irreducible(candidate)) return candidate;
  }
  throw std::runtime_error("gf2_random_irreducible: no polynomial found");
}

}  // namespace shredder::rabin
