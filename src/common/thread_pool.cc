#include "common/thread_pool.h"

#include <algorithm>
#include <exception>

namespace shredder {

ThreadPool::ThreadPool(std::size_t threads)
    : queue_(1024),
      workers_() {
  std::size_t n = threads == 0 ? std::max(1u, std::thread::hardware_concurrency())
                               : threads;
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  queue_.close();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::worker_loop() {
  while (auto task = queue_.pop()) {
    task->work();
  }
}

std::future<void> ThreadPool::submit(std::function<void()> fn) {
  Task task{std::packaged_task<void()>(std::move(fn))};
  auto future = task.work.get_future();
  queue_.push(std::move(task));
  return future;
}

void ThreadPool::parallel_for(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t parts = std::min(n, size());
  const std::size_t base = n / parts;
  const std::size_t rem = n % parts;
  std::vector<std::future<void>> futures;
  futures.reserve(parts);
  std::size_t begin = 0;
  for (std::size_t p = 0; p < parts; ++p) {
    const std::size_t len = base + (p < rem ? 1 : 0);
    const std::size_t end = begin + len;
    futures.push_back(submit([&fn, begin, end] { fn(begin, end); }));
    begin = end;
  }
  drain(futures);
}

void ThreadPool::for_each_index(std::size_t n,
                                const std::function<void(std::size_t)>& fn) {
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    futures.push_back(submit([&fn, i] { fn(i); }));
  }
  drain(futures);
}

// Tasks capture `fn` by reference, so every future must be waited on before
// the caller's frame can unwind — rethrowing on the first failure would leave
// queued tasks reading a dead stack slot. Wait for all, then surface the
// first error.
void ThreadPool::drain(std::vector<std::future<void>>& futures) {
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace shredder
