#include "common/check.h"

#include <cstdio>
#include <cstdlib>

namespace shredder {

void check_failed(const char* expr, const char* file, int line,
                  std::string_view message) {
  std::fprintf(stderr, "SHREDDER_CHECK failed: %s at %s:%d", expr, file, line);
  if (!message.empty()) {
    std::fprintf(stderr, " — %.*s", static_cast<int>(message.size()),
                 message.data());
  }
  std::fputc('\n', stderr);
  std::abort();
}

}  // namespace shredder
