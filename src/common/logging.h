// Minimal leveled logger. Thread-safe; writes to stderr (or an injected
// sink).
//
// Usage:
//   shredder::log(shredder::LogLevel::kInfo, "pipeline", "started {} stages", n);
// The format string supports "{}" placeholders (streamed with operator<<).
//
// Output lines carry a monotonic timestamp (seconds since the process's
// first log touch — wall clocks can step backwards mid-run) and the tag:
//   [   12.345678] [WARN] pipeline: started 4 stages
//
// For hooks that can fire per buffer or per frame, log_every() rate-limits
// per (tag, call-site message) key: at most one emitted line per
// min_interval_s, with a "(N suppressed)" suffix accounting for the drops.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <sstream>
#include <string>
#include <string_view>

namespace shredder {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

// Global log threshold; messages below it are dropped. Default: kWarn so
// benches/tests stay quiet unless asked. Atomic: readable from any thread
// while another adjusts it.
LogLevel log_threshold() noexcept;
void set_log_threshold(LogLevel level) noexcept;

// Monotonic seconds since the logger was first touched in this process.
double log_uptime_seconds() noexcept;

// Test seam: when set, formatted messages go to the sink (called with the
// logging mutex held, so concurrent writers stay serialized) instead of
// stderr. Pass nullptr to restore stderr.
using LogSink =
    std::function<void(LogLevel, std::string_view tag, const std::string&)>;
void set_log_sink(LogSink sink);

namespace detail {

void log_write(LogLevel level, std::string_view tag, const std::string& body);

// The exact line the stderr path emits (timestamp, level, tag, body) —
// exposed so tests can assert the format without capturing stderr.
std::string format_line(LogLevel level, std::string_view tag,
                        const std::string& body, double uptime_seconds);

// Rate-limiter core: true if a message keyed by `key` may emit `now`
// (seconds on the uptime clock), at most once per min_interval_s per key.
// On emission *suppressed receives the number of drops since the last
// emission. Exposed so tests can drive the clock explicitly.
bool rate_limit_pass(std::string_view key, double min_interval_s, double now,
                     std::uint64_t* suppressed);

inline void format_rest(std::ostringstream& out, std::string_view fmt) {
  out << fmt;
}

template <typename T, typename... Rest>
void format_rest(std::ostringstream& out, std::string_view fmt, const T& head,
                 const Rest&... rest) {
  const auto pos = fmt.find("{}");
  if (pos == std::string_view::npos) {
    out << fmt;
    return;
  }
  out << fmt.substr(0, pos) << head;
  format_rest(out, fmt.substr(pos + 2), rest...);
}

}  // namespace detail

template <typename... Args>
void log(LogLevel level, std::string_view tag, std::string_view fmt,
         const Args&... args) {
  if (level < log_threshold()) return;
  std::ostringstream out;
  detail::format_rest(out, fmt, args...);
  detail::log_write(level, tag, out.str());
}

// Rate-limited log: emits at most once per min_interval_s per (tag, fmt)
// key; suppressed occurrences are counted and reported as a suffix on the
// next emitted line. Threshold filtering happens first, so suppressed
// counts only cover messages that would otherwise have been written.
template <typename... Args>
void log_every(LogLevel level, std::string_view tag, double min_interval_s,
               std::string_view fmt, const Args&... args) {
  if (level < log_threshold()) return;
  std::string key(tag);
  key += '\x1f';  // tag/fmt separator that cannot appear in either
  key += fmt;
  std::uint64_t suppressed = 0;
  if (!detail::rate_limit_pass(key, min_interval_s, log_uptime_seconds(),
                               &suppressed)) {
    return;
  }
  std::ostringstream out;
  detail::format_rest(out, fmt, args...);
  if (suppressed > 0) out << " (" << suppressed << " suppressed)";
  detail::log_write(level, tag, out.str());
}

}  // namespace shredder
