// Minimal leveled logger. Thread-safe; writes to stderr.
//
// Usage:
//   shredder::log(shredder::LogLevel::kInfo, "pipeline", "started {} stages", n);
// The format string supports "{}" placeholders (streamed with operator<<).
#pragma once

#include <mutex>
#include <sstream>
#include <string>
#include <string_view>

namespace shredder {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

// Global log threshold; messages below it are dropped. Default: kWarn so
// benches/tests stay quiet unless asked.
LogLevel log_threshold() noexcept;
void set_log_threshold(LogLevel level) noexcept;

namespace detail {

void log_write(LogLevel level, std::string_view tag, const std::string& body);

inline void format_rest(std::ostringstream& out, std::string_view fmt) {
  out << fmt;
}

template <typename T, typename... Rest>
void format_rest(std::ostringstream& out, std::string_view fmt, const T& head,
                 const Rest&... rest) {
  const auto pos = fmt.find("{}");
  if (pos == std::string_view::npos) {
    out << fmt;
    return;
  }
  out << fmt.substr(0, pos) << head;
  format_rest(out, fmt.substr(pos + 2), rest...);
}

}  // namespace detail

template <typename... Args>
void log(LogLevel level, std::string_view tag, std::string_view fmt,
         const Args&... args) {
  if (level < log_threshold()) return;
  std::ostringstream out;
  detail::format_rest(out, fmt, args...);
  detail::log_write(level, tag, out.str());
}

}  // namespace shredder
