// Capability-annotated mutex wrappers for Clang Thread Safety Analysis.
//
// std::mutex under libstdc++ carries no `capability` attribute, so members
// guarded by a raw std::mutex are invisible to `-Wthread-safety`. These thin
// wrappers (zero overhead beyond the standard types they delegate to) give
// the analysis something to track:
//
//   Mutex mu_;
//   int value_ GUARDED_BY(mu_);
//
//   void bump() {
//     MutexLock lock(mu_);
//     ++value_;                       // OK: analysis sees the lock
//   }
//
// Condition waits use CondVar, which waits on the Mutex directly (it is a
// BasicLockable) and is annotated REQUIRES(mu), so predicates become plain
// while-loops inside the locked region — the shape the analysis verifies:
//
//   MutexLock lock(mu_);
//   while (!ready_) cv_.wait(mu_);
#pragma once

#include <condition_variable>
#include <mutex>

#include "common/annotations.h"

namespace shredder {

// Annotated exclusive lock delegating to std::mutex.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

// RAII guard (std::lock_guard shape) with an early-release escape for the
// unlock-before-notify pattern.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(&mu) { mu_->lock(); }
  ~MutexLock() RELEASE() {
    if (mu_ != nullptr) mu_->unlock();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  // Releases now instead of at scope exit (so notify_one/notify_all can run
  // without the lock held). The guard must not be used afterwards.
  void unlock() RELEASE() {
    mu_->unlock();
    mu_ = nullptr;
  }

 private:
  Mutex* mu_;
};

// Condition variable waiting directly on a Mutex. wait() REQUIRES the mutex,
// which keeps the caller's predicate loop inside the analyzed critical
// section; the internal unlock/relock of the wait itself happens inside the
// standard library, outside the analysis's view (by design — the capability
// is held again by the time wait() returns).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(Mutex& mu) REQUIRES(mu) { cv_.wait(mu); }
  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace shredder
