#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "common/check.h"

namespace shredder {

void Summary::add(double x) noexcept {
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double Summary::stddev() const noexcept {
  if (count_ < 2) return 0.0;
  const double var = m2_ / (static_cast<double>(count_) - 1.0);
  return var > 0.0 ? std::sqrt(var) : 0.0;
}

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  if (bounds_.empty()) throw std::invalid_argument("Histogram: no buckets");
  if (!std::is_sorted(bounds_.begin(), bounds_.end())) {
    throw std::invalid_argument("Histogram: bounds must be ascending");
  }
  counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::add(double x) noexcept {
  // Bucket i holds values in (bounds[i-1], bounds[i]] — bounds are inclusive
  // upper bounds.
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
  counts_[static_cast<std::size_t>(it - bounds_.begin())]++;
  ++total_;
}

std::uint64_t Histogram::bucket_count(std::size_t i) const {
  if (i >= counts_.size()) throw std::out_of_range("Histogram::bucket_count");
  return counts_[i];
}

double Histogram::quantile(double q) const {
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("quantile: q in [0,1]");
  if (total_ == 0) return 0.0;
  const double target = q * static_cast<double>(total_);
  double cum = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cum + static_cast<double>(counts_[i]);
    if (next >= target) {
      // The overflow bucket has no upper edge; interpolating into an invented
      // one would fabricate mass, so clamp its quantiles to the last bound.
      if (i >= bounds_.size()) return bounds_.back();
      const double lo = i == 0 ? 0.0 : bounds_[i - 1];
      const double hi = bounds_[i];
      const double frac =
          counts_[i] == 0 ? 0.0 : (target - cum) / static_cast<double>(counts_[i]);
      return lo + frac * (hi - lo);
    }
    cum = next;
  }
  return bounds_.back();
}

std::string Histogram::to_string() const {
  std::ostringstream out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (i < bounds_.size()) {
      out << "<= " << bounds_[i];
    } else {
      out << " > " << bounds_.back();
    }
    out << ": " << counts_[i] << "\n";
  }
  return out.str();
}

TablePrinter::TablePrinter(std::vector<std::string> headers, int col_width)
    : headers_(std::move(headers)), col_width_(col_width) {
  SHREDDER_CHECK_MSG(!headers_.empty(), "table needs at least one column");
}

void TablePrinter::add_row(const std::vector<std::string>& cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("TablePrinter: row width mismatch");
  }
  rows_.push_back(cells);
}

std::string TablePrinter::fmt(double v, int precision) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TablePrinter::to_string() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& cells) {
    // Columns live on a fixed grid at i * col_width_. A cell wider than its
    // column borrows from the gap but later cells re-align to the grid, so
    // one oversized value cannot shift the rest of the row.
    std::size_t len = 0;
    for (std::size_t i = 0; i < cells.size(); ++i) {
      out << cells[i];
      len += cells[i].size();
      const std::size_t next_col = (i + 1) * static_cast<std::size_t>(col_width_);
      const std::size_t pad = len < next_col ? next_col - len : 1;
      for (std::size_t p = 0; p < pad; ++p) out << ' ';
      len += pad;
    }
    out << '\n';
  };
  emit(headers_);
  std::string rule(headers_.size() * static_cast<std::size_t>(col_width_), '-');
  out << rule << '\n';
  for (const auto& row : rows_) emit(row);
  return out.str();
}

void TablePrinter::print() const { std::fputs(to_string().c_str(), stdout); }

}  // namespace shredder
