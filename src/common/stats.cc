#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "common/check.h"

namespace shredder {

void Summary::add(double x) noexcept {
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void Summary::merge(const Summary& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  // Chan et al. parallel combine: m2 = m2a + m2b + delta^2 * na*nb/(na+nb).
  m2_ += other.m2_ + delta * delta * (na * nb / (na + nb));
  mean_ = (na * mean_ + nb * other.mean_) / (na + nb);
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

Summary Summary::from_window(std::uint64_t count, double sum, double min,
                             double max) noexcept {
  Summary s;
  if (count == 0) return s;
  s.count_ = count;
  s.sum_ = sum;
  s.mean_ = sum / static_cast<double>(count);
  s.min_ = min;
  s.max_ = max;
  return s;
}

double Summary::stddev() const noexcept {
  if (count_ < 2) return 0.0;
  const double var = m2_ / (static_cast<double>(count_) - 1.0);
  return var > 0.0 ? std::sqrt(var) : 0.0;
}

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  if (bounds_.empty()) throw std::invalid_argument("Histogram: no buckets");
  if (!std::is_sorted(bounds_.begin(), bounds_.end())) {
    throw std::invalid_argument("Histogram: bounds must be ascending");
  }
  counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::add(double x) noexcept {
  // NaN compares false against every bound, so lower_bound would file it in
  // the overflow bucket; count it separately and keep it out of total_ (and
  // thus out of quantiles).
  if (std::isnan(x)) {
    ++nan_count_;
    return;
  }
  // Bucket i holds values in (bounds[i-1], bounds[i]] — bounds are inclusive
  // upper bounds.
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
  counts_[static_cast<std::size_t>(it - bounds_.begin())]++;
  ++total_;
}

void Histogram::merge(const Histogram& other) {
  if (bounds_ != other.bounds_) {
    throw std::invalid_argument("Histogram::merge: bounds differ");
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  total_ += other.total_;
  nan_count_ += other.nan_count_;
}

std::uint64_t Histogram::bucket_count(std::size_t i) const {
  if (i >= counts_.size()) throw std::out_of_range("Histogram::bucket_count");
  return counts_[i];
}

double Histogram::quantile(double q) const {
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("quantile: q in [0,1]");
  if (total_ == 0) return 0.0;
  const double target = q * static_cast<double>(total_);
  double cum = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cum + static_cast<double>(counts_[i]);
    if (next >= target) {
      // The overflow bucket has no upper edge; interpolating into an invented
      // one would fabricate mass, so clamp its quantiles to the last bound.
      if (i >= bounds_.size()) return bounds_.back();
      const double lo = i == 0 ? 0.0 : bounds_[i - 1];
      const double hi = bounds_[i];
      const double frac =
          counts_[i] == 0 ? 0.0 : (target - cum) / static_cast<double>(counts_[i]);
      return lo + frac * (hi - lo);
    }
    cum = next;
  }
  return bounds_.back();
}

std::string Histogram::to_string() const {
  std::ostringstream out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (i < bounds_.size()) {
      out << "<= " << bounds_[i];
    } else {
      out << " > " << bounds_.back();
    }
    out << ": " << counts_[i] << "\n";
  }
  return out.str();
}

std::vector<double> log_spaced_bounds(double lo, double hi,
                                      std::size_t count) {
  if (!(lo > 0.0) || !(hi > lo)) {
    throw std::invalid_argument("log_spaced_bounds: need 0 < lo < hi");
  }
  if (count < 2) {
    throw std::invalid_argument("log_spaced_bounds: need count >= 2");
  }
  std::vector<double> bounds;
  bounds.reserve(count);
  const double step =
      std::log(hi / lo) / static_cast<double>(count - 1);
  for (std::size_t i = 0; i < count; ++i) {
    bounds.push_back(lo * std::exp(step * static_cast<double>(i)));
  }
  bounds.back() = hi;  // exact endpoint despite float rounding
  return bounds;
}

TablePrinter::TablePrinter(std::vector<std::string> headers, int col_width)
    : headers_(std::move(headers)), col_width_(col_width) {
  SHREDDER_CHECK_MSG(!headers_.empty(), "table needs at least one column");
}

void TablePrinter::add_row(const std::vector<std::string>& cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("TablePrinter: row width mismatch");
  }
  rows_.push_back(cells);
}

std::string TablePrinter::fmt(double v, int precision) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TablePrinter::to_string() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& cells) {
    // Columns live on a fixed grid at i * col_width_. A cell wider than its
    // column borrows from the gap but later cells re-align to the grid, so
    // one oversized value cannot shift the rest of the row.
    std::size_t len = 0;
    for (std::size_t i = 0; i < cells.size(); ++i) {
      out << cells[i];
      len += cells[i].size();
      const std::size_t next_col = (i + 1) * static_cast<std::size_t>(col_width_);
      const std::size_t pad = len < next_col ? next_col - len : 1;
      for (std::size_t p = 0; p < pad; ++p) out << ' ';
      len += pad;
    }
    out << '\n';
  };
  emit(headers_);
  std::string rule(headers_.size() * static_cast<std::size_t>(col_width_), '-');
  out << rule << '\n';
  for (const auto& row : rows_) emit(row);
  return out.str();
}

void TablePrinter::print() const { std::fputs(to_string().c_str(), stdout); }

}  // namespace shredder
