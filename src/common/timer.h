// Wall-clock timing utilities.
#pragma once

#include <chrono>
#include <cstdint>

namespace shredder {

// Monotonic stopwatch. Started on construction.
class Stopwatch {
 public:
  Stopwatch() noexcept : start_(Clock::now()) {}

  void restart() noexcept { start_ = Clock::now(); }

  double elapsed_seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  std::uint64_t elapsed_nanos() const noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start_)
            .count());
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

// Measures the wall-clock duration of a callable, in seconds.
template <typename F>
double time_seconds(F&& fn) {
  Stopwatch sw;
  fn();
  return sw.elapsed_seconds();
}

}  // namespace shredder
