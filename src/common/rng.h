// Deterministic pseudo-random generation and synthetic data sources.
//
// All randomness in the repository flows through SplitMix64 so that tests and
// benches are reproducible from a seed.
#pragma once

#include <cstdint>
#include <string>

#include "common/bytes.h"

namespace shredder {

// SplitMix64: tiny, fast, well-distributed 64-bit generator.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  // Uniform in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) noexcept {
    return next() % bound;
  }

  // Uniform double in [0, 1).
  double next_double() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  std::uint64_t state_;
};

// Fills `n` bytes of pseudo-random data (high entropy; representative of
// compressed/encrypted storage payloads).
ByteVec random_bytes(std::uint64_t n, std::uint64_t seed);

// Generates `n` bytes of synthetic English-like text (whitespace-separated
// words drawn from a Zipf-ish dictionary). Representative of the MapReduce
// text workloads in the paper's case study I.
std::string random_text(std::uint64_t n, std::uint64_t seed);

// Mutates roughly `fraction` of the input *in contiguous runs*, modelling
// localized edits (the incremental-computation workload of Fig 15). Each run
// is `run_len` bytes; runs are placed uniformly. Returns the mutated copy.
ByteVec mutate_bytes(ByteSpan input, double fraction, std::uint64_t seed,
                     std::size_t run_len = 4096);

// Text-preserving variant: rewrites whole words so the result remains token-
// izable text. `fraction` is the approximate fraction of characters affected;
// edits happen in runs of ~`run_words` consecutive words (few large runs
// model localized document edits, many small runs model scattered noise).
std::string mutate_text(const std::string& input, double fraction,
                        std::uint64_t seed, std::size_t run_words = 32);

}  // namespace shredder
