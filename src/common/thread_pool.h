// Fixed-size thread pool with a parallel_for helper.
//
// Pool threads are created once; parallel_for partitions [0, n) into
// contiguous ranges, which matches the SPMD decomposition used by both the
// host chunker (§5.1) and the GPU-simulator block scheduler.
#pragma once

#include <cstddef>
#include <functional>
#include <future>
#include <thread>
#include <vector>

#include "common/queue.h"

namespace shredder {

class ThreadPool {
 public:
  // threads == 0 means hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return workers_.size(); }

  // Schedules fn; returns a future for completion/exception propagation.
  std::future<void> submit(std::function<void()> fn);

  // Runs fn(begin, end) over a partition of [0, n) into ~size() contiguous
  // ranges and waits for completion. Exceptions propagate to the caller.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t, std::size_t)>& fn);

  // Runs fn(i) for each i in [0, n) with one task per index (used when items
  // are coarse, e.g. map tasks). Waits for completion.
  void for_each_index(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  struct Task {
    std::packaged_task<void()> work;
  };

  void worker_loop();
  // Waits on every future (so by-reference captures stay alive until all
  // tasks finish), then rethrows the first captured exception, if any.
  static void drain(std::vector<std::future<void>>& futures);

  BoundedQueue<Task> queue_;
  std::vector<std::thread> workers_;
};

}  // namespace shredder
