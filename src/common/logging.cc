#include "common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <unordered_map>

#include "common/annotations.h"
#include "common/mutex.h"

namespace shredder {

namespace {

std::atomic<LogLevel> g_threshold{LogLevel::kWarn};
Mutex g_log_mutex;

// Sink and rate-limiter state live behind g_log_mutex.
LogSink g_sink GUARDED_BY(g_log_mutex);  // empty => stderr

struct RateState {
  double last_emit = 0.0;
  bool emitted_once = false;
  std::uint64_t suppressed = 0;
};
std::unordered_map<std::string, RateState> g_rate_states
    GUARDED_BY(g_log_mutex);

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

std::chrono::steady_clock::time_point log_epoch() {
  // Anchored at the first logger touch; steady_clock cannot step backwards,
  // so deltas are monotone even across wall-clock adjustments.
  static const auto epoch = std::chrono::steady_clock::now();
  return epoch;
}

}  // namespace

LogLevel log_threshold() noexcept {
  return g_threshold.load(std::memory_order_relaxed);
}

void set_log_threshold(LogLevel level) noexcept {
  g_threshold.store(level, std::memory_order_relaxed);
}

double log_uptime_seconds() noexcept {
  const auto now = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(now - log_epoch()).count();
}

void set_log_sink(LogSink sink) {
  MutexLock lock(g_log_mutex);
  g_sink = std::move(sink);
}

namespace detail {

std::string format_line(LogLevel level, std::string_view tag,
                        const std::string& body, double uptime_seconds) {
  char head[64];
  std::snprintf(head, sizeof(head), "[%12.6f] [%s] ", uptime_seconds,
                level_name(level));
  std::string line(head);
  line.append(tag.data(), tag.size());
  line += ": ";
  line += body;
  return line;
}

void log_write(LogLevel level, std::string_view tag, const std::string& body) {
  const double uptime = log_uptime_seconds();
  MutexLock lock(g_log_mutex);
  if (g_sink) {
    g_sink(level, tag, body);
    return;
  }
  const std::string line = format_line(level, tag, body, uptime);
  std::fprintf(stderr, "%s\n", line.c_str());
}

bool rate_limit_pass(std::string_view key, double min_interval_s, double now,
                     std::uint64_t* suppressed) {
  MutexLock lock(g_log_mutex);
  RateState& state = g_rate_states[std::string(key)];
  if (state.emitted_once && now - state.last_emit < min_interval_s) {
    ++state.suppressed;
    return false;
  }
  *suppressed = state.suppressed;
  state.suppressed = 0;
  state.last_emit = now;
  state.emitted_once = true;
  return true;
}

}  // namespace detail

}  // namespace shredder
