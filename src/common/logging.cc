#include "common/logging.h"

#include <atomic>
#include <cstdio>

namespace shredder {

namespace {
std::atomic<LogLevel> g_threshold{LogLevel::kWarn};
std::mutex g_log_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

LogLevel log_threshold() noexcept { return g_threshold.load(std::memory_order_relaxed); }

void set_log_threshold(LogLevel level) noexcept {
  g_threshold.store(level, std::memory_order_relaxed);
}

namespace detail {

void log_write(LogLevel level, std::string_view tag, const std::string& body) {
  std::lock_guard lock(g_log_mutex);
  std::fprintf(stderr, "[%s] %.*s: %s\n", level_name(level),
               static_cast<int>(tag.size()), tag.data(), body.c_str());
}

}  // namespace detail

}  // namespace shredder
