#include "common/bytes.h"

#include <array>
#include <cstdio>

namespace shredder {

std::string human_bytes(std::uint64_t n) {
  static constexpr std::array<const char*, 5> kUnits = {"B", "KB", "MB", "GB",
                                                        "TB"};
  double value = static_cast<double>(n);
  std::size_t unit = 0;
  while (value >= 1024.0 && unit + 1 < kUnits.size()) {
    value /= 1024.0;
    ++unit;
  }
  char buf[32];
  if (unit == 0) {
    std::snprintf(buf, sizeof(buf), "%llu B", static_cast<unsigned long long>(n));
  } else {
    std::snprintf(buf, sizeof(buf), "%.4g %s", value, kUnits[unit]);
  }
  return buf;
}

std::string human_rate(double bytes_per_sec) {
  static constexpr std::array<const char*, 4> kUnits = {"B/s", "KB/s", "MB/s",
                                                        "GB/s"};
  double value = bytes_per_sec;
  std::size_t unit = 0;
  while (value >= 1000.0 && unit + 1 < kUnits.size()) {
    value /= 1000.0;
    ++unit;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3g %s", value, kUnits[unit]);
  return buf;
}

}  // namespace shredder
