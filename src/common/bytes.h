// Byte-buffer helpers shared across modules.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace shredder {

using ByteSpan = std::span<const std::uint8_t>;
using MutableByteSpan = std::span<std::uint8_t>;
using ByteVec = std::vector<std::uint8_t>;

inline ByteSpan as_bytes(const std::string& s) noexcept {
  return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

inline ByteSpan as_bytes(const ByteVec& v) noexcept { return {v.data(), v.size()}; }

// "16 MB" style rendering for logs/benches (binary units).
std::string human_bytes(std::uint64_t n);

// "1.23 GB/s" rendering of a byte rate.
std::string human_rate(double bytes_per_sec);

inline constexpr std::uint64_t operator"" _KiB(unsigned long long v) {
  return v * 1024ull;
}
inline constexpr std::uint64_t operator"" _MiB(unsigned long long v) {
  return v * 1024ull * 1024ull;
}
inline constexpr std::uint64_t operator"" _GiB(unsigned long long v) {
  return v * 1024ull * 1024ull * 1024ull;
}

}  // namespace shredder
