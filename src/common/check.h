// Internal invariant checking.
//
// SHREDDER_CHECK is for *programmer* errors (broken invariants); it aborts
// with a message. Argument validation on public API boundaries throws
// std::invalid_argument instead (see the per-module headers).
#pragma once

#include <string_view>

namespace shredder {

// Aborts the process with a diagnostic. Never returns.
[[noreturn]] void check_failed(const char* expr, const char* file, int line,
                               std::string_view message);

namespace detail {
inline void check_impl(bool ok, const char* expr, const char* file, int line,
                       std::string_view message) {
  if (!ok) check_failed(expr, file, line, message);
}
}  // namespace detail

}  // namespace shredder

// Function-style wrapper kept as a macro only to capture expression text and
// source location; the body is a real function call.
#define SHREDDER_CHECK(expr) \
  ::shredder::detail::check_impl(static_cast<bool>(expr), #expr, __FILE__, __LINE__, {})
#define SHREDDER_CHECK_MSG(expr, msg) \
  ::shredder::detail::check_impl(static_cast<bool>(expr), #expr, __FILE__, __LINE__, (msg))
