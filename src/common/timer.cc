#include "common/timer.h"

// Header-only for now; this TU anchors the library target.
