// Bounded, blocking multi-producer multi-consumer queue.
//
// Used as the conveyor belt between pipeline stages (Reader → Transfer →
// Kernel → Store). close() lets producers signal end-of-stream; pop() then
// drains remaining items and returns std::nullopt once empty.
//
// Locking: every member below is guarded by mutex_ (thread-safety analysis
// enforces this under clang); condition waits are predicate loops inside the
// locked region, and notifies run after an early MutexLock::unlock so a woken
// thread never bounces straight into a held lock.
#pragma once

#include <deque>
#include <optional>
#include <stdexcept>

#include "common/annotations.h"
#include "common/mutex.h"

namespace shredder {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {
    if (capacity == 0) throw std::invalid_argument("BoundedQueue: capacity 0");
  }

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  // Blocks while full. Returns false (item dropped) if the queue was closed.
  bool push(T item) EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    while (items_.size() >= capacity_ && !closed_) not_full_.wait(mutex_);
    if (closed_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  // Non-blocking push: false when full or closed (the item is untouched on
  // failure, so the caller can retry or shed load).
  bool try_push(T& item) EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    if (closed_ || items_.size() >= capacity_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  // Blocks while empty and not closed. nullopt == closed and drained.
  std::optional<T> pop() EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    while (items_.empty() && !closed_) not_empty_.wait(mutex_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  // Non-blocking pop; nullopt when nothing available right now.
  std::optional<T> try_pop() EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  void close() EXCLUDES(mutex_) {
    {
      MutexLock lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return closed_;
  }

  std::size_t size() const EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return items_.size();
  }

  std::size_t capacity() const noexcept { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable Mutex mutex_;
  CondVar not_empty_;
  CondVar not_full_;
  std::deque<T> items_ GUARDED_BY(mutex_);
  bool closed_ GUARDED_BY(mutex_) = false;
};

}  // namespace shredder
