// Bounded, blocking multi-producer multi-consumer queue.
//
// Used as the conveyor belt between pipeline stages (Reader → Transfer →
// Kernel → Store). close() lets producers signal end-of-stream; pop() then
// drains remaining items and returns std::nullopt once empty.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <stdexcept>

namespace shredder {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {
    if (capacity == 0) throw std::invalid_argument("BoundedQueue: capacity 0");
  }

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  // Blocks while full. Returns false (item dropped) if the queue was closed.
  bool push(T item) {
    std::unique_lock lock(mutex_);
    not_full_.wait(lock, [&] { return items_.size() < capacity_ || closed_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  // Non-blocking push: false when full or closed (the item is untouched on
  // failure, so the caller can retry or shed load).
  bool try_push(T& item) {
    std::unique_lock lock(mutex_);
    if (closed_ || items_.size() >= capacity_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  // Blocks while empty and not closed. nullopt == closed and drained.
  std::optional<T> pop() {
    std::unique_lock lock(mutex_);
    not_empty_.wait(lock, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  // Non-blocking pop; nullopt when nothing available right now.
  std::optional<T> try_pop() {
    std::unique_lock lock(mutex_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  void close() {
    {
      std::lock_guard lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard lock(mutex_);
    return items_.size();
  }

  std::size_t capacity() const noexcept { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace shredder
