// Clang Thread Safety Analysis annotations (no-ops off-clang).
//
// The macros follow the attribute set documented at
// https://clang.llvm.org/docs/ThreadSafetyAnalysis.html and are compiled out
// entirely on non-clang compilers, so gcc builds see plain C++. The strict CI
// build turns the analysis into errors (`-Werror=thread-safety`) whenever the
// compiler is clang (see CMakeLists.txt), which makes the locking contracts
// below machine-checked:
//
//   * a member annotated GUARDED_BY(mu) may only be touched with mu held;
//   * a function annotated REQUIRES(mu) may only be called with mu held;
//   * ACQUIRE/RELEASE/TRY_ACQUIRE describe lock-management functions;
//   * EXCLUDES(mu) declares "calls me without mu" (non-reentrancy).
//
// Annotate with the shredder::Mutex / MutexLock / CondVar wrappers from
// common/mutex.h — std::mutex itself carries no capability attribute under
// libstdc++, so raw standard types cannot participate in the analysis.
//
// docs/static_analysis.md covers how to annotate new code and the (narrow)
// policy for NO_THREAD_SAFETY_ANALYSIS escapes.
#pragma once

#if defined(__clang__) && !defined(SHREDDER_NO_THREAD_SAFETY_ANALYSIS)
#define SHREDDER_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define SHREDDER_THREAD_ANNOTATION(x)  // no-op off clang
#endif

// A type that is a lockable capability ("mutex" in diagnostics).
#define CAPABILITY(x) SHREDDER_THREAD_ANNOTATION(capability(x))

// An RAII type that acquires a capability in its constructor and releases it
// in its destructor (std::lock_guard shape).
#define SCOPED_CAPABILITY SHREDDER_THREAD_ANNOTATION(scoped_lockable)

// Data members: may only be read/written while holding the capability.
#define GUARDED_BY(x) SHREDDER_THREAD_ANNOTATION(guarded_by(x))
#define PT_GUARDED_BY(x) SHREDDER_THREAD_ANNOTATION(pt_guarded_by(x))

// Lock-ordering declarations (deadlock detection).
#define ACQUIRED_BEFORE(...) \
  SHREDDER_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) \
  SHREDDER_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

// Function contracts: the caller must hold (REQUIRES) / must not hold
// (EXCLUDES) the listed capabilities.
#define REQUIRES(...) \
  SHREDDER_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  SHREDDER_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define EXCLUDES(...) SHREDDER_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

// Lock-management functions: acquire/release the listed capabilities (the
// object itself when the list is empty).
#define ACQUIRE(...) \
  SHREDDER_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  SHREDDER_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) \
  SHREDDER_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  SHREDDER_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define RELEASE_GENERIC(...) \
  SHREDDER_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) \
  SHREDDER_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define TRY_ACQUIRE_SHARED(...) \
  SHREDDER_THREAD_ANNOTATION(try_acquire_shared_capability(__VA_ARGS__))

// Runtime assertion that the capability is held (for code reached both with
// and without the lock).
#define ASSERT_CAPABILITY(x) \
  SHREDDER_THREAD_ANNOTATION(assert_capability(x))
#define ASSERT_SHARED_CAPABILITY(x) \
  SHREDDER_THREAD_ANNOTATION(assert_shared_capability(x))

// The function returns a reference to the given capability (accessors).
#define RETURN_CAPABILITY(x) SHREDDER_THREAD_ANNOTATION(lock_returned(x))

// Escape hatch: disables analysis for one function. Every use must carry a
// written justification (docs/static_analysis.md).
#define NO_THREAD_SAFETY_ANALYSIS \
  SHREDDER_THREAD_ANNOTATION(no_thread_safety_analysis)
