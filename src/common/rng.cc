#include "common/rng.h"

#include <algorithm>
#include <array>
#include <stdexcept>

namespace shredder {

ByteVec random_bytes(std::uint64_t n, std::uint64_t seed) {
  ByteVec out(n);
  SplitMix64 rng(seed);
  std::uint64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const std::uint64_t v = rng.next();
    for (int b = 0; b < 8; ++b) out[i + b] = static_cast<std::uint8_t>(v >> (8 * b));
  }
  if (i < n) {
    const std::uint64_t v = rng.next();
    for (int b = 0; i < n; ++i, ++b) out[i] = static_cast<std::uint8_t>(v >> (8 * b));
  }
  return out;
}

namespace {

// Small dictionary; sampling is Zipf-like by squaring a uniform draw so early
// (common) words dominate, which gives word-count jobs realistic skew.
constexpr std::array<const char*, 64> kWords = {
    "the",    "of",      "and",    "to",      "in",     "a",       "is",
    "that",   "for",     "it",     "was",     "on",     "with",    "as",
    "be",     "by",      "at",     "this",    "from",   "or",      "an",
    "are",    "not",     "but",    "had",     "his",    "they",    "storage",
    "system", "data",    "chunk",  "gpu",     "kernel", "memory",  "pipeline",
    "stream", "backup",  "dedup",  "hash",    "index",  "cloud",   "node",
    "file",   "block",   "thread", "buffer",  "cache",  "latency", "band",
    "width",  "marker",  "rabin",  "window",  "shred",  "incr",    "mental",
    "map",    "reduce",  "split",  "record",  "task",   "input",   "output",
    "result"};

std::string pick_word(SplitMix64& rng) {
  const double u = rng.next_double();
  const auto idx = static_cast<std::size_t>(u * u * kWords.size());
  return kWords[std::min(idx, kWords.size() - 1)];
}

}  // namespace

std::string random_text(std::uint64_t n, std::uint64_t seed) {
  std::string out;
  out.reserve(n + 16);
  SplitMix64 rng(seed);
  std::uint64_t since_newline = 0;
  while (out.size() < n) {
    out += pick_word(rng);
    since_newline += 8;
    // Lines of ~60-120 chars: newline with increasing probability.
    if (since_newline > 60 && rng.next_below(8) == 0) {
      out += '\n';
      since_newline = 0;
    } else {
      out += ' ';
    }
  }
  out.resize(n);
  if (!out.empty()) out.back() = '\n';
  return out;
}

ByteVec mutate_bytes(ByteSpan input, double fraction, std::uint64_t seed,
                     std::size_t run_len) {
  if (fraction < 0.0 || fraction > 1.0) {
    throw std::invalid_argument("mutate_bytes: fraction must be in [0,1]");
  }
  ByteVec out(input.begin(), input.end());
  if (out.empty() || fraction == 0.0) return out;
  SplitMix64 rng(seed);
  const auto total = static_cast<std::uint64_t>(fraction * static_cast<double>(out.size()));
  std::uint64_t mutated = 0;
  while (mutated < total) {
    const std::size_t len = std::min<std::uint64_t>(run_len, total - mutated);
    const std::size_t pos = rng.next_below(out.size());
    for (std::size_t i = 0; i < len && pos + i < out.size(); ++i) {
      out[pos + i] = static_cast<std::uint8_t>(rng.next());
    }
    mutated += len;
  }
  return out;
}

std::string mutate_text(const std::string& input, double fraction,
                        std::uint64_t seed, std::size_t run_words) {
  if (fraction < 0.0 || fraction > 1.0) {
    throw std::invalid_argument("mutate_text: fraction must be in [0,1]");
  }
  if (run_words == 0) {
    throw std::invalid_argument("mutate_text: run_words must be >= 1");
  }
  std::string out = input;
  if (out.empty() || fraction == 0.0) return out;
  SplitMix64 rng(seed);
  const auto target = static_cast<std::uint64_t>(fraction * static_cast<double>(out.size()));
  std::uint64_t mutated = 0;
  while (mutated < target) {
    // Pick a position, extend to word boundaries, replace with other words.
    std::size_t pos = rng.next_below(out.size());
    while (pos > 0 && out[pos - 1] != ' ' && out[pos - 1] != '\n') --pos;
    std::size_t end = pos;
    // Replace a run of ~run_words words to model a localized edit.
    for (std::size_t w = 0; w < run_words && end < out.size(); ++w) {
      while (end < out.size() && out[end] != ' ' && out[end] != '\n') ++end;
      if (end < out.size()) ++end;
    }
    // Overwrite each word slot with a dictionary word cycled to the slot's
    // length: the text stays drawn from a bounded vocabulary (documents are
    // edited into other text, not into random noise) while the bytes change.
    std::size_t i = pos;
    while (i < end) {
      if (out[i] == ' ' || out[i] == '\n') {
        ++i;
        continue;
      }
      std::size_t word_end = i;
      while (word_end < end && out[word_end] != ' ' && out[word_end] != '\n') {
        ++word_end;
      }
      const std::string replacement = pick_word(rng);
      for (std::size_t j = i; j < word_end; ++j) {
        out[j] = replacement[(j - i) % replacement.size()];
      }
      i = word_end;
    }
    mutated += end - pos;
  }
  return out;
}

}  // namespace shredder
