// Summary statistics and fixed-bucket histograms for benches and tests.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace shredder {

// Streaming summary (count/mean/min/max/stddev) over doubles.
class Summary {
 public:
  void add(double x) noexcept;

  // Folds `other` in as if its observations had been add()ed here, using
  // the parallel Welford combine (Chan et al.): the merged m2 stays
  // numerically stable even when the two streams' means dwarf their
  // spreads. Merging an empty summary (either side) is the identity.
  // Per-thread metric shards aggregate through this at snapshot time.
  void merge(const Summary& other) noexcept;

  // A summary carrying only first-moment window data — count, sum,
  // mean = sum/count — plus caller-provided extrema; m2 (hence stddev) is
  // zero. Used by metric snapshot deltas, where a window's second moments
  // are not recoverable from two cumulative snapshots.
  static Summary from_window(std::uint64_t count, double sum, double min,
                             double max) noexcept;

  std::uint64_t count() const noexcept { return count_; }
  double mean() const noexcept { return mean_; }
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }
  double stddev() const noexcept;
  double sum() const noexcept { return sum_; }

 private:
  // Welford's online algorithm: mean_ and m2_ (sum of squared deviations)
  // stay numerically stable even when the mean dwarfs the spread, where the
  // naive sum_sq - sum^2/n form cancels catastrophically.
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Histogram with caller-supplied bucket upper bounds (last bucket is
// unbounded). Used to inspect chunk-size and latency distributions.
//
// NaN observations are counted separately (nan_count) instead of being
// bucketed: every comparison against NaN is false, so lower_bound would
// silently file them in the overflow bucket and skew quantiles.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void add(double x) noexcept;

  // Adds `other`'s bucket counts; throws std::invalid_argument unless the
  // two histograms have identical bounds. Per-thread metric shards
  // aggregate through this at snapshot time.
  void merge(const Histogram& other);

  std::uint64_t bucket_count(std::size_t i) const;
  std::size_t num_buckets() const noexcept { return counts_.size(); }
  std::uint64_t total() const noexcept { return total_; }
  std::uint64_t nan_count() const noexcept { return nan_count_; }
  const std::vector<double>& bounds() const noexcept { return bounds_; }

  // Approximate quantile (linear within buckets). q in [0,1].
  double quantile(double q) const;

  std::string to_string() const;

 private:
  std::vector<double> bounds_;  // ascending
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  std::uint64_t nan_count_ = 0;
};

// `count` geometrically spaced bucket bounds from `lo` to `hi` inclusive —
// the natural shape for latency histograms, whose interesting structure
// spans orders of magnitude. Requires 0 < lo < hi and count >= 2.
std::vector<double> log_spaced_bounds(double lo, double hi,
                                      std::size_t count);

// Table printer: fixed-width columns for figure reproduction output.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers, int col_width = 14);

  void add_row(const std::vector<std::string>& cells);
  std::string to_string() const;
  void print() const;  // to stdout

  static std::string fmt(double v, int precision = 3);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
  int col_width_;
};

}  // namespace shredder
