#include "retention/retention.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace shredder::retention {

RetentionManager::RetentionManager(std::shared_ptr<dedup::ChunkStore> store,
                                   RetentionConfig config)
    : costs_(config.costs),
      registry_(config.registry),
      tracer_(config.tracer),
      store_(std::move(store)) {
  SHREDDER_CHECK_MSG(store_ != nullptr, "RetentionManager: null store");
  if (registry_ != nullptr) {
    // Pre-resolve the gauges once; the observer then runs under the store
    // lock on every mutation and must stay at set()-on-an-atomic cost.
    obs::Gauge* chunks = &registry_->gauge("store.chunks");
    obs::Gauge* bytes = &registry_->gauge("store.bytes");
    obs::Gauge* refs = &registry_->gauge("store.refs");
    obs::Gauge* zchunks = &registry_->gauge("store.zero_ref_chunks");
    obs::Gauge* zbytes = &registry_->gauge("store.zero_ref_bytes");
    store_->set_observer([=](const dedup::StoreOccupancy& o) {
      chunks->set(static_cast<double>(o.chunks));
      bytes->set(static_cast<double>(o.bytes));
      refs->set(static_cast<double>(o.refs));
      zchunks->set(static_cast<double>(o.zero_ref_chunks));
      zbytes->set(static_cast<double>(o.zero_ref_bytes));
    });
  }
}

RetentionManager::~RetentionManager() {
  // The observer captures registry gauges; detach it so a store outliving
  // this manager cannot call into a dead registry.
  store_->set_observer({});
}

void RetentionManager::Pin::release() {
  if (mgr_ != nullptr) {
    mgr_->unpin(epoch_);
    mgr_ = nullptr;
  }
}

RetentionManager::Pin RetentionManager::pin() {
  std::uint64_t e;
  {
    MutexLock lock(mu_);
    e = epoch_;
    ++pins_by_epoch_[e];
  }
  publish_gauges();
  return Pin(this, e);
}

void RetentionManager::unpin(std::uint64_t epoch) {
  {
    MutexLock lock(mu_);
    const auto it = pins_by_epoch_.find(epoch);
    SHREDDER_CHECK_MSG(it != pins_by_epoch_.end() && it->second > 0,
                       "RetentionManager: unpin without pin");
    if (--it->second == 0) pins_by_epoch_.erase(it);
  }
  publish_gauges();
}

std::uint64_t RetentionManager::safe_epoch_locked() const {
  return pins_by_epoch_.empty() ? epoch_ : pins_by_epoch_.begin()->first;
}

void RetentionManager::record_image(const std::string& tenant,
                                    const std::string& image,
                                    const std::vector<dedup::ChunkDigest>& digests) {
  manifests_.record_image(tenant, image, digests);
  {
    MutexLock lock(mu_);
    // begin + one record per chunk + seal, all log appends.
    vclock_ += static_cast<double>(digests.size() + 2) *
               costs_.manifest_append_s;
  }
  if (registry_ != nullptr) {
    registry_->counter("retention.images_recorded_total").add(1);
  }
  publish_gauges();
}

RetentionManager::DeleteStats RetentionManager::delete_image(
    const std::string& tenant, const std::string& image) {
  // Phase 1: durable delete intent. Throws (manifest untouched) on unknown /
  // in-progress / double delete.
  const std::vector<dedup::ChunkDigest> digests =
      manifests_.begin_delete(tenant, image);

  DeleteStats stats;
  const dedup::StoreOccupancy before = store_->occupancy();
  for (const dedup::ChunkDigest& d : digests) {
    const dedup::ReleaseOutcome out = store_->release_ref(d);
    SHREDDER_CHECK_MSG(out != dedup::ReleaseOutcome::kUnknownDigest &&
                           out != dedup::ReleaseOutcome::kNoRefs,
                       "RetentionManager::delete_image: manifest references "
                       "a chunk the store has no reference for");
    ++stats.chunks_released;
    if (out == dedup::ReleaseOutcome::kDeferred) {
      ++stats.chunks_zeroed;
      MutexLock lock(mu_);
      graveyard_.push_back(Grave{d, epoch_});
    } else if (out == dedup::ReleaseOutcome::kReclaimed) {
      ++stats.chunks_zeroed;
    }
  }
  // Phase 2: tombstone. A crash before this point recovers by rolling the
  // delete forward from the intent record.
  manifests_.commit_delete(tenant, image);

  const dedup::StoreOccupancy after = store_->occupancy();
  // Zeroed bytes = newly parked (deferred) + freed inline (immediate mode).
  stats.bytes_zeroed = (after.zero_ref_bytes - before.zero_ref_bytes) +
                       (before.bytes - after.bytes);
  {
    MutexLock lock(mu_);
    stats.virtual_seconds =
        static_cast<double>(digests.size()) * costs_.release_s +
        2 * costs_.manifest_append_s;
    vclock_ += stats.virtual_seconds;
  }
  if (registry_ != nullptr) {
    registry_->counter("retention.deletes_total").add(1);
    registry_->counter("retention.chunks_zeroed_total")
        .add(stats.chunks_zeroed);
  }
  publish_gauges();
  return stats;
}

RetentionManager::GcStats RetentionManager::gc() {
  GcStats stats;
  double span_start = 0;
  std::unordered_set<dedup::ChunkDigest, dedup::ChunkDigestHash> reclaim;
  {
    MutexLock lock(mu_);
    ++epoch_;
    stats.epoch = epoch_;
    span_start = vclock_;
    const std::uint64_t safe = safe_epoch_locked();
    // Partition the graveyard: entries zeroed before every active pin's
    // epoch are reclaim candidates (re-checking the live refcount drops
    // resurrected chunks); younger entries stay for a later sweep.
    std::vector<Grave> survivors;
    survivors.reserve(graveyard_.size());
    for (const Grave& g : graveyard_) {
      if (g.epoch >= safe) {
        ++stats.kept_pinned;
        survivors.push_back(g);
        continue;
      }
      const auto rc = store_->ref_count(g.digest);
      if (rc.has_value() && *rc == 0) {
        reclaim.insert(g.digest);
      } else if (rc.has_value()) {
        ++stats.resurrected;
      }
      // nullopt: already gone (e.g. duplicate graveyard entry) — drop.
    }
    graveyard_ = std::move(survivors);
  }

  const dedup::SweepStats sweep = store_->sweep_zero_refs(
      [&](const dedup::ChunkDigest& d) { return !reclaim.contains(d); });
  stats.chunks_freed = sweep.freed_chunks;
  stats.bytes_freed = sweep.freed_bytes;

  {
    MutexLock lock(mu_);
    stats.virtual_seconds =
        static_cast<double>(sweep.scanned) * costs_.sweep_scan_s +
        static_cast<double>(sweep.freed_chunks) * costs_.reclaim_s;
    vclock_ = span_start + stats.virtual_seconds;
  }
  if (tracer_ != nullptr) {
    tracer_->span("retention/gc", "gc_sweep", span_start,
                  span_start + stats.virtual_seconds,
                  {{"epoch", std::to_string(stats.epoch)},
                   {"chunks_freed", std::to_string(stats.chunks_freed)},
                   {"bytes_freed", std::to_string(stats.bytes_freed)}});
  }
  if (registry_ != nullptr) {
    registry_->counter("retention.gc_runs_total").add(1);
    registry_->counter("retention.chunks_freed_total").add(stats.chunks_freed);
    registry_->counter("retention.bytes_freed_total").add(stats.bytes_freed);
  }
  publish_gauges();
  return stats;
}

RetentionManager::CompactStats RetentionManager::compact_index(
    dedup::SparseChunkIndex& index) {
  CompactStats stats;
  double span_start;
  {
    MutexLock lock(mu_);
    span_start = vclock_;
  }
  // Liveness = the store still holds the chunk (referenced or parked —
  // parked entries are the GC's to free, not compaction's). Run GC first to
  // let compaction drop the dead entries.
  stats.index = index.compact(
      [&](const dedup::ChunkDigest& d, const dedup::ChunkLocation&) {
        return store_->contains(d);
      });
  stats.manifest = manifests_.compact();
  {
    MutexLock lock(mu_);
    stats.virtual_seconds = stats.index.virtual_seconds;
    vclock_ = span_start + stats.virtual_seconds;
  }
  if (tracer_ != nullptr) {
    tracer_->span(
        "retention/compact", "log_compaction", span_start,
        span_start + stats.virtual_seconds,
        {{"entries_dropped", std::to_string(stats.index.dropped)},
         {"manifest_records_dropped",
          std::to_string(stats.manifest.dropped_records)}});
  }
  if (registry_ != nullptr) {
    registry_->counter("retention.compactions_total").add(1);
    registry_->counter("retention.log_entries_dropped_total")
        .add(stats.index.dropped);
  }
  publish_gauges();
  return stats;
}

RetentionManager::RecoveryStats RetentionManager::recover(
    std::vector<ManifestRecord> records) {
  RecoveryStats stats;
  const std::size_t n_records = records.size();
  manifests_.rebuild_from_log(std::move(records));
  // Roll delete intents forward: the walk may have been interrupted but the
  // refcounts are recomputed from live manifests below, so committing is
  // always consistent.
  for (const auto& [tenant, image] : manifests_.deleting_images()) {
    manifests_.commit_delete(tenant, image);
    ++stats.deletes_rolled_forward;
  }
  // Recompute every refcount from the durable authority: one reference per
  // digest occurrence across live (in-progress or sealed) manifests. A
  // chunk referenced anywhere ends with refs > 0 — recovery can only park
  // or free chunks no manifest mentions.
  std::unordered_map<dedup::ChunkDigest, std::uint64_t, dedup::ChunkDigestHash>
      counts;
  for (const auto& [name, digests] : manifests_.live_manifests()) {
    (void)name;
    ++stats.live_images;
    for (const dedup::ChunkDigest& d : digests) ++counts[d];
  }
  const std::vector<dedup::ChunkDigest> zeroed = store_->rebuild_refs(counts);
  stats.chunks_zeroed = zeroed.size();
  {
    MutexLock lock(mu_);
    // A crash killed every in-flight backup with its pins; re-seed the
    // graveyard at epoch 0 so the next sweep may reclaim immediately.
    pins_by_epoch_.clear();
    graveyard_.clear();
    graveyard_.reserve(zeroed.size());
    for (const dedup::ChunkDigest& d : zeroed) {
      graveyard_.push_back(Grave{d, 0});
    }
    // Recovery scans the manifest log once and touches every store entry —
    // charged like the index's rebuild scan.
    stats.virtual_seconds =
        static_cast<double>(n_records) * costs_.manifest_append_s +
        static_cast<double>(store_->unique_chunks()) * costs_.sweep_scan_s;
    vclock_ += stats.virtual_seconds;
  }
  if (registry_ != nullptr) {
    registry_->counter("retention.recoveries_total").add(1);
  }
  publish_gauges();
  return stats;
}

std::uint64_t RetentionManager::epoch() const {
  MutexLock lock(mu_);
  return epoch_;
}

std::uint64_t RetentionManager::active_pins() const {
  MutexLock lock(mu_);
  std::uint64_t n = 0;
  for (const auto& [e, c] : pins_by_epoch_) {
    (void)e;
    n += c;
  }
  return n;
}

std::uint64_t RetentionManager::graveyard_size() const {
  MutexLock lock(mu_);
  return graveyard_.size();
}

double RetentionManager::virtual_seconds() const {
  MutexLock lock(mu_);
  return vclock_;
}

void RetentionManager::publish_gauges() {
  if (registry_ == nullptr) return;
  std::uint64_t epoch, pins, graves;
  {
    MutexLock lock(mu_);
    epoch = epoch_;
    graves = graveyard_.size();
    pins = 0;
    for (const auto& [e, c] : pins_by_epoch_) {
      (void)e;
      pins += c;
    }
  }
  registry_->gauge("retention.epoch").set(static_cast<double>(epoch));
  registry_->gauge("retention.pins_active").set(static_cast<double>(pins));
  registry_->gauge("retention.graveyard_chunks")
      .set(static_cast<double>(graves));
  registry_->gauge("retention.images_live")
      .set(static_cast<double>(manifests_.live_images()));
  registry_->gauge("retention.images_deleted")
      .set(static_cast<double>(manifests_.deleted_images()));
}

}  // namespace shredder::retention
