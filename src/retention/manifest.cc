#include "retention/manifest.h"

#include <algorithm>
#include <utility>

namespace shredder::retention {

namespace {

std::string describe(const std::string& tenant, const std::string& image) {
  return "tenant '" + tenant + "' image '" + image + "'";
}

}  // namespace

ManifestStore::Image* ManifestStore::find_locked(const std::string& tenant,
                                                 const std::string& image) {
  const auto it = images_.find(Key{tenant, image});
  return it == images_.end() ? nullptr : &it->second;
}

const ManifestStore::Image* ManifestStore::find_locked(
    const std::string& tenant, const std::string& image) const {
  const auto it = images_.find(Key{tenant, image});
  return it == images_.end() ? nullptr : &it->second;
}

void ManifestStore::append_locked(ManifestOp op, const std::string& tenant,
                                  const std::string& image,
                                  const dedup::ChunkDigest& digest) {
  log_.push_back(ManifestRecord{op, tenant, image, digest});
}

void ManifestStore::begin_image(const std::string& tenant,
                                const std::string& image) {
  MutexLock lock(mu_);
  if (Image* img = find_locked(tenant, image);
      img != nullptr && img->state != ImageState::kDeleted) {
    throw RetentionError(RetentionViolation::kImageExists,
                         "ManifestStore::begin_image: " +
                             describe(tenant, image) + " is live");
  }
  images_[Key{tenant, image}] = Image{};
  append_locked(ManifestOp::kBegin, tenant, image);
}

void ManifestStore::append_chunk(const std::string& tenant,
                                 const std::string& image,
                                 const dedup::ChunkDigest& digest) {
  MutexLock lock(mu_);
  Image* img = find_locked(tenant, image);
  if (img == nullptr || img->state == ImageState::kDeleted) {
    throw RetentionError(RetentionViolation::kUnknownImage,
                         "ManifestStore::append_chunk: unknown " +
                             describe(tenant, image));
  }
  if (img->state != ImageState::kInProgress) {
    throw RetentionError(RetentionViolation::kImageSealed,
                         "ManifestStore::append_chunk: " +
                             describe(tenant, image) + " already sealed");
  }
  img->digests.push_back(digest);
  append_locked(ManifestOp::kChunk, tenant, image, digest);
}

void ManifestStore::seal_image(const std::string& tenant,
                               const std::string& image) {
  MutexLock lock(mu_);
  Image* img = find_locked(tenant, image);
  if (img == nullptr || img->state == ImageState::kDeleted) {
    throw RetentionError(RetentionViolation::kUnknownImage,
                         "ManifestStore::seal_image: unknown " +
                             describe(tenant, image));
  }
  if (img->state != ImageState::kInProgress) {
    throw RetentionError(RetentionViolation::kImageSealed,
                         "ManifestStore::seal_image: " +
                             describe(tenant, image) + " already sealed");
  }
  img->state = ImageState::kSealed;
  append_locked(ManifestOp::kSeal, tenant, image);
}

void ManifestStore::record_image(const std::string& tenant,
                                 const std::string& image,
                                 const std::vector<dedup::ChunkDigest>& digests) {
  begin_image(tenant, image);
  for (const dedup::ChunkDigest& d : digests) append_chunk(tenant, image, d);
  seal_image(tenant, image);
}

std::vector<dedup::ChunkDigest> ManifestStore::begin_delete(
    const std::string& tenant, const std::string& image) {
  MutexLock lock(mu_);
  Image* img = find_locked(tenant, image);
  if (img == nullptr) {
    throw RetentionError(RetentionViolation::kUnknownImage,
                         "ManifestStore::begin_delete: unknown " +
                             describe(tenant, image));
  }
  switch (img->state) {
    case ImageState::kInProgress:
      throw RetentionError(RetentionViolation::kImageInProgress,
                           "ManifestStore::begin_delete: " +
                               describe(tenant, image) + " still in progress");
    case ImageState::kDeleting:
    case ImageState::kDeleted:
      throw RetentionError(RetentionViolation::kAlreadyDeleted,
                           "ManifestStore::begin_delete: " +
                               describe(tenant, image) + " already deleted");
    case ImageState::kSealed:
      break;
  }
  img->state = ImageState::kDeleting;
  append_locked(ManifestOp::kDeleteBegin, tenant, image);
  return img->digests;
}

void ManifestStore::commit_delete(const std::string& tenant,
                                  const std::string& image) {
  MutexLock lock(mu_);
  Image* img = find_locked(tenant, image);
  if (img == nullptr || img->state != ImageState::kDeleting) {
    throw RetentionError(RetentionViolation::kUnknownImage,
                         "ManifestStore::commit_delete: " +
                             describe(tenant, image) + " is not mid-delete");
  }
  img->state = ImageState::kDeleted;
  img->digests.clear();
  img->digests.shrink_to_fit();
  append_locked(ManifestOp::kDeleteCommit, tenant, image);
}

std::optional<ImageState> ManifestStore::state(const std::string& tenant,
                                               const std::string& image) const {
  MutexLock lock(mu_);
  const Image* img = find_locked(tenant, image);
  if (img == nullptr) return std::nullopt;
  return img->state;
}

std::vector<dedup::ChunkDigest> ManifestStore::digests(
    const std::string& tenant, const std::string& image) const {
  MutexLock lock(mu_);
  const Image* img = find_locked(tenant, image);
  if (img == nullptr) {
    throw RetentionError(RetentionViolation::kUnknownImage,
                         "ManifestStore::digests: unknown " +
                             describe(tenant, image));
  }
  if (img->state == ImageState::kDeleting ||
      img->state == ImageState::kDeleted) {
    throw RetentionError(RetentionViolation::kAlreadyDeleted,
                         "ManifestStore::digests: " + describe(tenant, image) +
                             " deleted");
  }
  return img->digests;
}

std::vector<std::string> ManifestStore::images(const std::string& tenant) const {
  MutexLock lock(mu_);
  std::vector<std::string> out;
  for (const auto& [key, img] : images_) {
    if (key.first != tenant) continue;
    if (img.state == ImageState::kDeleted) continue;
    out.push_back(key.second);
  }
  return out;  // std::map iteration order: already sorted
}

std::vector<std::pair<std::string, std::string>> ManifestStore::deleting_images()
    const {
  MutexLock lock(mu_);
  std::vector<std::pair<std::string, std::string>> out;
  for (const auto& [key, img] : images_) {
    if (img.state == ImageState::kDeleting) out.push_back(key);
  }
  return out;
}

std::vector<std::pair<std::string, std::vector<dedup::ChunkDigest>>>
ManifestStore::live_manifests() const {
  MutexLock lock(mu_);
  std::vector<std::pair<std::string, std::vector<dedup::ChunkDigest>>> out;
  for (const auto& [key, img] : images_) {
    if (img.state == ImageState::kDeleted ||
        img.state == ImageState::kDeleting) {
      continue;
    }
    out.emplace_back(key.first + "/" + key.second, img.digests);
  }
  return out;
}

std::uint64_t ManifestStore::live_images() const {
  MutexLock lock(mu_);
  std::uint64_t n = 0;
  for (const auto& [key, img] : images_) {
    (void)key;
    if (img.state != ImageState::kDeleted) ++n;
  }
  return n;
}

std::uint64_t ManifestStore::deleted_images() const {
  MutexLock lock(mu_);
  std::uint64_t n = 0;
  for (const auto& [key, img] : images_) {
    (void)key;
    if (img.state == ImageState::kDeleted) ++n;
  }
  return n;
}

std::uint64_t ManifestStore::record_count() const {
  MutexLock lock(mu_);
  return log_.size();
}

std::vector<ManifestRecord> ManifestStore::log_records() const {
  MutexLock lock(mu_);
  return log_;
}

std::uint64_t ManifestStore::replay_locked(
    std::vector<ManifestRecord> records) {
  images_.clear();
  log_.clear();
  for (ManifestRecord& r : records) {
    const Key key{r.tenant, r.image};
    const auto it = images_.find(key);
    Image* img = it == images_.end() ? nullptr : &it->second;
    bool applied = false;
    switch (r.op) {
      case ManifestOp::kBegin:
        if (img == nullptr || img->state == ImageState::kDeleted) {
          images_[key] = Image{};
          applied = true;
        }
        break;
      case ManifestOp::kChunk:
        if (img != nullptr && img->state == ImageState::kInProgress) {
          img->digests.push_back(r.digest);
          applied = true;
        }
        break;
      case ManifestOp::kSeal:
        if (img != nullptr && img->state == ImageState::kInProgress) {
          img->state = ImageState::kSealed;
          applied = true;
        }
        break;
      case ManifestOp::kDeleteBegin:
        if (img != nullptr && img->state == ImageState::kSealed) {
          img->state = ImageState::kDeleting;
          applied = true;
        }
        break;
      case ManifestOp::kDeleteCommit:
        if (img != nullptr && img->state == ImageState::kDeleting) {
          img->state = ImageState::kDeleted;
          img->digests.clear();
          applied = true;
        }
        break;
    }
    // Records for impossible states (torn tail, duplicated replay) are
    // dropped rather than fatal; the surviving log stays self-consistent.
    if (applied) log_.push_back(std::move(r));
  }
  std::uint64_t deleting = 0;
  for (const auto& [key, img] : images_) {
    (void)key;
    if (img.state == ImageState::kDeleting) ++deleting;
  }
  return deleting;
}

std::uint64_t ManifestStore::rebuild_from_log(
    std::vector<ManifestRecord> records) {
  MutexLock lock(mu_);
  return replay_locked(std::move(records));
}

ManifestStore::CompactionStats ManifestStore::compact() {
  MutexLock lock(mu_);
  CompactionStats cs;
  cs.records_before = log_.size();
  std::vector<ManifestRecord> kept;
  kept.reserve(log_.size());
  for (ManifestRecord& r : log_) {
    const auto it = images_.find(Key{r.tenant, r.image});
    if (it != images_.end() && it->second.state == ImageState::kDeleted) {
      continue;
    }
    kept.push_back(std::move(r));
  }
  log_ = std::move(kept);
  for (auto it = images_.begin(); it != images_.end();) {
    if (it->second.state == ImageState::kDeleted) {
      ++cs.images_purged;
      it = images_.erase(it);
    } else {
      ++it;
    }
  }
  cs.records_after = log_.size();
  cs.dropped_records = cs.records_before - cs.records_after;
  return cs;
}

}  // namespace shredder::retention
