// RetentionManager — the snapshot-lifecycle driver (docs/retention.md).
// Owns the ManifestStore, orchestrates delete → release_ref walks over a
// deferred-reclaim ChunkStore, and runs the GC epoch/pin protocol that makes
// reclamation safe against in-flight backups:
//
//   * Pins. Every in-flight backup holds an RAII Pin for its whole dedup
//     walk. A pin remembers the epoch it was taken in.
//   * Zeroing. delete_image walks the manifest releasing one reference per
//     occurrence; chunks whose count hits zero are parked (deferred-reclaim
//     store) and enter the graveyard stamped with the current epoch.
//   * Sweeping. gc() advances the epoch and frees graveyard chunks whose
//     zero-stamp precedes every active pin's epoch — any backup that could
//     still resurrect the digest via add_ref was pinned after the chunk was
//     parked and is ordered behind us. Chunks resurrected in the meantime
//     (ref_count > 0 again) silently leave the graveyard.
//
// The data plane stays self-healing regardless: the dedup paths treat a
// failed add_ref (index hit on a chunk GC freed between probe and take) as
// a unique chunk and re-ship the payload, so even a mistimed sweep degrades
// dedup ratio, never correctness.
//
// All reclamation is cost-modelled on virtual time (one flash read per
// container scanned, one flash write per container rewritten — the same
// constants as docs/dedup_index.md) and published as retention.* / store.*
// metrics; GC and compaction emit virtual-time spans through obs::Tracer.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/annotations.h"
#include "common/mutex.h"
#include "dedup/digest.h"
#include "dedup/sparse_index.h"
#include "dedup/store.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "retention/manifest.h"

namespace shredder::retention {

// Modelled costs of the retention control plane. The store sweep touches
// chunk metadata (RAM-resident refcount table) per chunk and pays a flash
// erase per chunk actually freed; manifest records append to a log write
// buffer like index entries do.
struct RetentionCostModel {
  double sweep_scan_s = 0.05e-6;      // per chunk examined by the GC sweep
  double reclaim_s = 1.0e-6;          // per chunk freed (amortized erase)
  double release_s = 0.2e-6;          // per manifest digest release-walked
  double manifest_append_s = 0.3e-6;  // per manifest-log record appended
};

struct RetentionConfig {
  RetentionCostModel costs;
  obs::Registry* registry = nullptr;  // store.* / retention.* metrics
  obs::Tracer* tracer = nullptr;      // GC / compaction spans
};

class RetentionManager {
 public:
  // The store should be constructed with deferred_reclaim = true; with an
  // immediate-reclaim store the manager still works (deletes free chunks
  // inline, gc() finds nothing) but the epoch protocol is vacuous.
  // Installs itself as the store's occupancy observer when a registry is
  // configured (store.chunks / store.bytes / store.refs gauges).
  RetentionManager(std::shared_ptr<dedup::ChunkStore> store,
                   RetentionConfig config = {});
  ~RetentionManager();

  RetentionManager(const RetentionManager&) = delete;
  RetentionManager& operator=(const RetentionManager&) = delete;

  // --- Pins (in-flight backup protection) ---
  class Pin {
   public:
    Pin() = default;
    Pin(Pin&& other) noexcept { *this = std::move(other); }
    Pin& operator=(Pin&& other) noexcept {
      release();
      mgr_ = other.mgr_;
      epoch_ = other.epoch_;
      other.mgr_ = nullptr;
      return *this;
    }
    Pin(const Pin&) = delete;
    Pin& operator=(const Pin&) = delete;
    ~Pin() { release(); }

    void release();
    std::uint64_t epoch() const noexcept { return epoch_; }
    bool active() const noexcept { return mgr_ != nullptr; }

   private:
    friend class RetentionManager;
    Pin(RetentionManager* mgr, std::uint64_t epoch)
        : mgr_(mgr), epoch_(epoch) {}
    RetentionManager* mgr_ = nullptr;
    std::uint64_t epoch_ = 0;
  };
  Pin pin();

  // --- Manifests (the backup path records, the delete path walks) ---
  ManifestStore& manifests() noexcept { return manifests_; }
  const ManifestStore& manifests() const noexcept { return manifests_; }

  // Records a sealed image's ordered digest list (begin + chunks + seal)
  // and charges the manifest-log append cost. The store references were
  // already taken by the dedup path (one per occurrence).
  void record_image(const std::string& tenant, const std::string& image,
                    const std::vector<dedup::ChunkDigest>& digests);

  // Deletes a snapshot: two-phase manifest tombstone around a release_ref
  // walk. Chunks parked at zero refs enter the graveyard stamped with the
  // current epoch. Throws RetentionError (kUnknownImage / kImageInProgress /
  // kAlreadyDeleted); the manifest is untouched on the error paths.
  struct DeleteStats {
    std::uint64_t chunks_released = 0;  // digest occurrences walked
    std::uint64_t chunks_zeroed = 0;    // parked (or freed) at zero refs
    std::uint64_t bytes_zeroed = 0;     // reclaimable payload bytes
    double virtual_seconds = 0;
  };
  DeleteStats delete_image(const std::string& tenant,
                           const std::string& image);

  // --- GC (epoch-scoped graveyard sweep) ---
  struct GcStats {
    std::uint64_t epoch = 0;            // epoch after the advance
    std::uint64_t chunks_freed = 0;
    std::uint64_t bytes_freed = 0;
    std::uint64_t kept_pinned = 0;      // zeroed too recently for active pins
    std::uint64_t resurrected = 0;      // re-referenced; left the graveyard
    double virtual_seconds = 0;
  };
  GcStats gc();

  // --- Entry-log compaction driver ---
  // Compacts `index` keeping only digests still referenced by the store
  // (live or parked — parked entries are the GC's to free, not ours), then
  // compacts the manifest log. Emits a retention/compact span.
  struct CompactStats {
    dedup::SparseChunkIndex::CompactionStats index;
    ManifestStore::CompactionStats manifest;
    double virtual_seconds = 0;
  };
  CompactStats compact_index(dedup::SparseChunkIndex& index);

  // --- Crash recovery ---
  // Rebuilds the manifest map from `records`, rolls kDeleting images
  // forward to kDeleted (their intent is durable), recomputes every store
  // refcount from the surviving live manifests, and re-seeds the graveyard
  // from the chunks left at zero refs. Never frees a referenced chunk: a
  // digest appearing in any live manifest ends with refs > 0.
  struct RecoveryStats {
    std::uint64_t live_images = 0;
    std::uint64_t deletes_rolled_forward = 0;
    std::uint64_t chunks_zeroed = 0;  // graveyard re-seeded
    double virtual_seconds = 0;
  };
  RecoveryStats recover(std::vector<ManifestRecord> records);

  std::uint64_t epoch() const;
  std::uint64_t active_pins() const;
  std::uint64_t graveyard_size() const;
  double virtual_seconds() const;
  const std::shared_ptr<dedup::ChunkStore>& store() const noexcept {
    return store_;
  }

 private:
  void unpin(std::uint64_t epoch);
  void publish_gauges();
  // Oldest active pin's epoch, or current epoch when no pins are held.
  std::uint64_t safe_epoch_locked() const REQUIRES(mu_);

  const RetentionCostModel costs_;
  obs::Registry* const registry_;
  obs::Tracer* const tracer_;
  std::shared_ptr<dedup::ChunkStore> store_;
  ManifestStore manifests_;

  struct Grave {
    dedup::ChunkDigest digest;
    std::uint64_t epoch = 0;  // epoch the chunk hit zero refs in
  };
  mutable Mutex mu_;
  std::uint64_t epoch_ GUARDED_BY(mu_) = 1;
  std::map<std::uint64_t, std::uint64_t> pins_by_epoch_ GUARDED_BY(mu_);
  std::vector<Grave> graveyard_ GUARDED_BY(mu_);
  double vclock_ GUARDED_BY(mu_) = 0;  // cumulative modelled retention time
};

}  // namespace shredder::retention
