// Per-snapshot chunk manifests — the durable authority of the retention
// subsystem (docs/retention.md). Every sealed image owns an ordered digest
// list; deletes walk it releasing store references. Persistence mirrors the
// sparse index's entry log: the manifest log is an append-only sequence of
// small records and the RAM map is derived state a crash loses —
// rebuild_from_log() reconstructs it exactly, tolerating a torn tail
// (an image whose seal record never landed recovers as in-progress, so its
// chunks stay referenced; recovery never frees a referenced chunk).
//
// Image lifecycle:   (begin) kInProgress → (seal) kSealed
//                    → (begin_delete) kDeleting → (commit_delete) kDeleted
// kDeleting is the delete-intent window: the release_ref walk runs between
// the two records, so a crash mid-walk recovers with intent logged and the
// retention manager rolls the delete forward, recomputing store refcounts
// from the surviving live manifests.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/annotations.h"
#include "common/mutex.h"
#include "dedup/digest.h"

namespace shredder::retention {

// What exactly a retention request violated. Carried by RetentionError so
// servers and tests branch on the cause instead of parsing messages
// (same shape as backup::ProtocolError).
enum class RetentionViolation {
  kUnknownImage,     // tenant/image never recorded (or purged by compaction)
  kImageExists,      // begin_image over a live image id
  kImageInProgress,  // delete/seal-sensitive op on an unsealed image
  kImageSealed,      // append_chunk/seal on an already-sealed image
  kAlreadyDeleted,   // double delete
};

// Typed retention violation. Subclasses std::invalid_argument so generic
// catch sites and EXPECT_THROW assertions keep working.
class RetentionError : public std::invalid_argument {
 public:
  RetentionError(RetentionViolation violation, const std::string& what)
      : std::invalid_argument(what), violation_(violation) {}
  RetentionViolation violation() const noexcept { return violation_; }

 private:
  RetentionViolation violation_;
};

enum class ImageState { kInProgress, kSealed, kDeleting, kDeleted };

// One persisted manifest-log record. kChunk carries a digest; the control
// records carry only the image key.
enum class ManifestOp : std::uint8_t {
  kBegin,
  kChunk,
  kSeal,
  kDeleteBegin,
  kDeleteCommit,
};

struct ManifestRecord {
  ManifestOp op = ManifestOp::kBegin;
  std::string tenant;
  std::string image;
  dedup::ChunkDigest digest{};  // kChunk only
};

class ManifestStore {
 public:
  ManifestStore() = default;

  // --- Recording (the backup path) ---
  // Throws RetentionError{kImageExists} if (tenant, image) is live
  // (in-progress, sealed or mid-delete); a fully deleted id may be reused.
  void begin_image(const std::string& tenant, const std::string& image);
  // Throws kUnknownImage / kImageSealed.
  void append_chunk(const std::string& tenant, const std::string& image,
                    const dedup::ChunkDigest& digest);
  // Throws kUnknownImage / kImageSealed (sealing twice is a violation: the
  // caller's image bookkeeping is broken).
  void seal_image(const std::string& tenant, const std::string& image);
  // Convenience for callers that buffer the digest list: begin + chunks +
  // seal in one call.
  void record_image(const std::string& tenant, const std::string& image,
                    const std::vector<dedup::ChunkDigest>& digests);

  // --- Deletion (two-phase; the manager walks refs between the phases) ---
  // Logs delete intent and returns the ordered digest walk list. Throws
  // kUnknownImage / kImageInProgress / kAlreadyDeleted (kDeleting counts as
  // already deleted: the intent is logged, the walk is the manager's job).
  std::vector<dedup::ChunkDigest> begin_delete(const std::string& tenant,
                                               const std::string& image);
  // Seals the tombstone; the digest list is dropped from RAM. Throws
  // kUnknownImage if not mid-delete.
  void commit_delete(const std::string& tenant, const std::string& image);

  // --- Introspection ---
  std::optional<ImageState> state(const std::string& tenant,
                                  const std::string& image) const;
  // Ordered digest list of a live image. Throws kUnknownImage/kAlreadyDeleted.
  std::vector<dedup::ChunkDigest> digests(const std::string& tenant,
                                          const std::string& image) const;
  // Live (in-progress/sealed/deleting) image ids of a tenant, sorted.
  std::vector<std::string> images(const std::string& tenant) const;
  // Images stuck mid-delete (intent logged, commit missing) — what a crash
  // between the two phases leaves behind for the manager to roll forward.
  std::vector<std::pair<std::string, std::string>> deleting_images() const;
  // All live manifests' digest occurrences, by (tenant, image) — the
  // recovery input for ChunkStore::rebuild_refs. kDeleting images are
  // excluded: their delete intent is durable and rolls forward.
  std::vector<std::pair<std::string, std::vector<dedup::ChunkDigest>>>
  live_manifests() const;

  std::uint64_t live_images() const;
  std::uint64_t deleted_images() const;
  // Manifest-log length in records (the durable footprint compaction
  // shrinks).
  std::uint64_t record_count() const;

  // --- Persistence (mirrors SparseChunkIndex::log_records/rebuild) ---
  std::vector<ManifestRecord> log_records() const;
  // Replays `records` as the persisted log. Tolerates a torn tail: records
  // referencing images in impossible states (a kChunk after a crash ate the
  // kBegin) are skipped rather than fatal, and an unsealed trailing image
  // recovers as kInProgress. Returns the count of kDeleting images found —
  // crashed mid-walk, awaiting the manager's roll-forward.
  std::uint64_t rebuild_from_log(std::vector<ManifestRecord> records);

  // Rewrites the log dropping deleted images' records (and their
  // tombstones) entirely. After compaction a purged image id reads as
  // kUnknownImage and may be reused.
  struct CompactionStats {
    std::uint64_t records_before = 0;
    std::uint64_t records_after = 0;
    std::uint64_t dropped_records = 0;
    std::uint64_t images_purged = 0;
  };
  CompactionStats compact();

 private:
  struct Image {
    std::vector<dedup::ChunkDigest> digests;
    ImageState state = ImageState::kInProgress;
  };
  using Key = std::pair<std::string, std::string>;  // (tenant, image)

  Image* find_locked(const std::string& tenant, const std::string& image)
      REQUIRES(mu_);
  const Image* find_locked(const std::string& tenant,
                           const std::string& image) const REQUIRES(mu_);
  void append_locked(ManifestOp op, const std::string& tenant,
                     const std::string& image,
                     const dedup::ChunkDigest& digest = {}) REQUIRES(mu_);
  std::uint64_t replay_locked(std::vector<ManifestRecord> records)
      REQUIRES(mu_);

  mutable Mutex mu_;
  std::map<Key, Image> images_ GUARDED_BY(mu_);
  std::vector<ManifestRecord> log_ GUARDED_BY(mu_);
};

}  // namespace shredder::retention
