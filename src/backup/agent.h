// Backup-site Shredder agent (paper §7.2): receives the stream of chunks
// and pointers produced by the backup server, stores unique chunks in a
// content-addressed store, and can recreate the original uncompressed image
// from its recipe.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "dedup/digest.h"
#include "dedup/index.h"
#include "dedup/store.h"

namespace shredder::backup {

class BackupAgent {
 public:
  // The agent keeps a fingerprint catalog in front of its chunk store — the
  // same IndexKind knob as the server side, so the backup site's membership
  // path can be modelled with either the baseline map or the ChunkStash-
  // style sparse index (docs/dedup_index.md). Results are exact either way;
  // only the modelled catalog time (catalog_seconds) differs.
  explicit BackupAgent(dedup::IndexConfig catalog_config = {});
  // One element of the backup stream: a pointer (digest only) or a payload-
  // carrying chunk.
  struct Message {
    dedup::ChunkDigest digest;
    ByteVec payload;  // empty => pointer to an already-stored chunk
  };

  // Opens a new image recipe. Throws if the id is already known.
  void begin_image(const std::string& image_id);

  // Appends one chunk/pointer to the image. A pointer to an unknown digest
  // throws std::invalid_argument (protocol violation by the server).
  void receive(const std::string& image_id, const Message& message);

  // Recreates the full image from its recipe.
  ByteVec recreate(const std::string& image_id) const;

  std::uint64_t unique_chunks() const { return store_.unique_chunks(); }
  std::uint64_t unique_bytes() const { return store_.unique_bytes(); }

  // Modelled time the catalog index has consumed answering the server's
  // chunk/pointer stream.
  double catalog_seconds() const { return catalog_->virtual_seconds(); }
  const dedup::IndexBackend& catalog() const noexcept { return *catalog_; }

 private:
  dedup::ChunkStore store_;
  std::unique_ptr<dedup::IndexBackend> catalog_;
  std::uint64_t catalog_offset_ = 0;
  std::map<std::string, std::vector<dedup::ChunkDigest>> recipes_;
};

}  // namespace shredder::backup
