// Backup-site Shredder agent (paper §7.2): receives the stream of chunks
// and pointers produced by the backup server, stores unique chunks in a
// content-addressed store, and can recreate the original uncompressed image
// from its recipe.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "dedup/digest.h"
#include "dedup/store.h"

namespace shredder::backup {

class BackupAgent {
 public:
  // One element of the backup stream: a pointer (digest only) or a payload-
  // carrying chunk.
  struct Message {
    dedup::ChunkDigest digest;
    ByteVec payload;  // empty => pointer to an already-stored chunk
  };

  // Opens a new image recipe. Throws if the id is already known.
  void begin_image(const std::string& image_id);

  // Appends one chunk/pointer to the image. A pointer to an unknown digest
  // throws std::invalid_argument (protocol violation by the server).
  void receive(const std::string& image_id, const Message& message);

  // Recreates the full image from its recipe.
  ByteVec recreate(const std::string& image_id) const;

  std::uint64_t unique_chunks() const { return store_.unique_chunks(); }
  std::uint64_t unique_bytes() const { return store_.unique_bytes(); }

 private:
  dedup::ChunkStore store_;
  std::map<std::string, std::vector<dedup::ChunkDigest>> recipes_;
};

}  // namespace shredder::backup
