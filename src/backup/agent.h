// Backup-site Shredder agent (paper §7.2): receives the stream of chunks
// and pointers produced by the backup server, stores unique chunks in a
// content-addressed store, and can recreate the original uncompressed image
// from its recipe.
//
// The agent is the trust boundary of the backup protocol: everything it
// consumes arrived over a wire that may drop, reorder, duplicate or truncate
// frames (docs/backup_wire.md). It therefore validates every frame before
// applying it and reports violations as typed ProtocolError exceptions, and
// its control surface is idempotent where the transport can legitimately
// re-deliver (begin_image / end_image). Payload-stripped frames — a sender
// that exhausted payload retransmits and shipped metadata only — enter a
// bounded repair flow: the digests are recorded in the recipe, missing
// payloads are tracked in a pending-repair table, and receive_repair()
// materializes them later (the firedancer repair-tile shape: bounded
// needed-item table, re-request by hash).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/bytes.h"
#include "dedup/digest.h"
#include "dedup/index.h"
#include "dedup/store.h"

namespace shredder::backup {

// What exactly a malformed or out-of-protocol frame violated. Carried by
// ProtocolError so transports and tests can branch on the cause instead of
// parsing message strings.
enum class ProtocolViolation {
  kUnknownImage,          // frame names an image never begun
  kDuplicateImage,        // begin_image for an already-sealed image id
  kSealedImage,           // data frame for an image already sealed
  kBadExtentPartition,    // extents do not partition [0, digests.size())
  kPayloadCountMismatch,  // payload_sizes count != unique-chunk count
  kPayloadBytesMismatch,  // concatenated payload != sum(payload_sizes)
  kEmptyChunk,            // a unique chunk advertised with zero bytes
  kUnknownPointer,        // pointer to a digest the agent has never stored
  kBadRepairPayload,      // repair payload does not hash to its digest
  kRecipeLengthMismatch,  // end_image chunk count != recipe length
  kRecipeIncomplete,      // recreate() while repairs are still pending
  kImageInProgress,       // delete_image for an image not yet sealed
};

// Typed protocol violation. Subclasses std::invalid_argument so existing
// catch sites (and EXPECT_THROW assertions) keep working unchanged.
class ProtocolError : public std::invalid_argument {
 public:
  ProtocolError(ProtocolViolation violation, const std::string& what)
      : std::invalid_argument(what), violation_(violation) {}
  ProtocolViolation violation() const noexcept { return violation_; }

 private:
  ProtocolViolation violation_;
};

class BackupAgent {
 public:
  // The agent keeps a fingerprint catalog in front of its chunk store — the
  // same IndexKind knob as the server side, so the backup site's membership
  // path can be modelled with either the baseline map or the ChunkStash-
  // style sparse index (docs/dedup_index.md). Results are exact either way;
  // only the modelled catalog time (catalog_seconds) differs.
  explicit BackupAgent(dedup::IndexConfig catalog_config = {});
  // One element of the backup stream: a pointer (digest only) or a payload-
  // carrying chunk. Legacy unit of the per-chunk wire framing.
  struct Message {
    dedup::ChunkDigest digest;
    ByteVec payload;  // empty => pointer to an already-stored chunk
  };

  // One extent-coalesced wire batch (docs/backup_wire.md): everything one
  // drained server buffer finalized. `digests` names every chunk in stream
  // order; `extents` is a run-length partition of them into duplicate-
  // pointer runs and unique (payload-carrying) runs; the unique payloads
  // ride concatenated in `payload`, sliced by `payload_sizes`. Runs of
  // consecutive duplicate pointers thus cost one extent record instead of
  // one message per chunk.
  struct ExtentBatch {
    struct Extent {
      std::uint32_t first = 0;  // index of the run's first chunk in `digests`
      std::uint32_t count = 0;  // run length
      bool unique = false;      // payload-carrying run vs duplicate pointers
    };
    std::vector<dedup::ChunkDigest> digests;   // one per chunk, stream order
    std::vector<Extent> extents;               // partition of [0, size)
    std::vector<std::uint32_t> payload_sizes;  // one per unique chunk
    ByteVec payload;                           // concatenated unique payloads
  };

  // Opens a new image recipe. Idempotent while the image is open — a
  // retransmitted control frame is a no-op and cannot reset an in-progress
  // recipe. Throws ProtocolError{kDuplicateImage} if the id names an image
  // that was already sealed by end_image(). Returns true when a new recipe
  // was opened, false on the idempotent re-open.
  bool begin_image(const std::string& image_id);

  // Seals the image: no further data frames are accepted and a duplicate
  // begin_image for the id becomes a protocol violation. Idempotent on an
  // already-sealed image. If `expected_chunks` is nonzero it must match the
  // recipe length (ProtocolError{kRecipeLengthMismatch} otherwise) — the
  // sender's end-of-image frame carries the count so truncation is detected
  // even when every delivered frame was individually well-formed.
  void end_image(const std::string& image_id, std::uint64_t expected_chunks = 0);

  bool image_sealed(const std::string& image_id) const;

  // Appends one chunk/pointer to the image. A pointer to an unknown digest
  // throws ProtocolError{kUnknownPointer}. Kept as a one-chunk shim over
  // receive_batch().
  void receive(const std::string& image_id, const Message& message);

  // Appends a whole extent batch to the image. Throws ProtocolError when the
  // batch is malformed (extents not a partition, payload sizes inconsistent,
  // zero-byte unique chunks) — checked before anything is applied — or on a
  // pointer to an unknown digest (the batch may then be partially applied;
  // the connection is considered broken either way).
  void receive_batch(const std::string& image_id, const ExtentBatch& batch);

  // Appends a payload-stripped batch: same framing as receive_batch but
  // `payload` must be empty (`payload_sizes` still advertises the chunk
  // sizes). Recipe entries are recorded; unique chunks whose payload the
  // agent does not already hold become repair-pending. Returns the digests
  // that newly entered the pending-repair table, in stream order — the gaps
  // the agent must re-request from the server by digest.
  std::vector<dedup::ChunkDigest> receive_stripped(const std::string& image_id,
                                                   const ExtentBatch& batch);

  // Delivers the payload for a repair-pending digest. Returns false when the
  // digest is not pending (a duplicated repair frame — ignored). Throws
  // ProtocolError{kBadRepairPayload} when the payload does not hash to the
  // digest (a corrupt or misdirected repair must not poison the store).
  bool receive_repair(const dedup::ChunkDigest& digest, ByteSpan payload);
  // Adopting overload: moves the payload into the store (transports that
  // own the repair buffer hand it over instead of copying).
  bool receive_repair(const dedup::ChunkDigest& digest, ByteVec&& payload);

  // Digests referenced by the image's recipe whose payloads are still
  // repair-pending, deduplicated, in first-reference order. Empty once the
  // image can be recreated bit-exactly.
  std::vector<dedup::ChunkDigest> missing_chunks(const std::string& image_id) const;

  // Total digests currently in the pending-repair table (all images).
  std::size_t pending_repairs() const { return pending_repair_.size(); }

  // Recreates the full image from its recipe. Throws
  // ProtocolError{kRecipeIncomplete} while any recipe chunk is still
  // repair-pending.
  ByteVec recreate(const std::string& image_id) const;

  // Snapshot delete, mirroring the server's retention walk on the backup
  // site: releases one store reference per recipe occurrence (chunks whose
  // last reference goes are reclaimed) and forgets the recipe, so the image
  // id may be reused. Throws ProtocolError{kUnknownImage} for an unknown or
  // already-deleted id, {kImageInProgress} before end_image sealed it, and
  // {kRecipeIncomplete} while repairs are pending (their deferred references
  // have not been taken yet, so a walk would desync the counts). Returns the
  // number of references released.
  std::uint64_t delete_image(const std::string& image_id);

  std::uint64_t unique_chunks() const { return store_.unique_chunks(); }
  std::uint64_t unique_bytes() const { return store_.unique_bytes(); }

  // Modelled time the catalog index has consumed answering the server's
  // chunk/pointer stream.
  double catalog_seconds() const { return catalog_->virtual_seconds(); }
  const dedup::IndexBackend& catalog() const noexcept { return *catalog_; }

 private:
  struct Recipe {
    std::vector<dedup::ChunkDigest> chunks;
    bool sealed = false;
  };

  Recipe& open_recipe(const std::string& image_id);

  // Frame validation shared by both receive paths, before any state changes.
  // `stripped` batches must carry no payload bytes; full batches must slice
  // exactly. Returns the number of unique chunks in the batch.
  static std::size_t validate_batch(std::size_t n_digests,
                                    const std::vector<ExtentBatch::Extent>& extents,
                                    const std::vector<std::uint32_t>& payload_sizes,
                                    std::size_t payload_bytes, bool stripped);

  // Stores a freshly arrived unique chunk and registers it in the catalog.
  void admit_chunk(const dedup::ChunkDigest& digest, ByteSpan bytes);
  void admit_chunk(const dedup::ChunkDigest& digest, ByteVec&& bytes);

  // Shared applier behind both receive paths: `payload` is the concatenated
  // unique-chunk bytes (a view — the wire buffer is never copied).
  void apply_batch(const std::string& image_id,
                   const std::vector<dedup::ChunkDigest>& digests,
                   const std::vector<ExtentBatch::Extent>& extents,
                   const std::vector<std::uint32_t>& payload_sizes,
                   ByteSpan payload);

  dedup::ChunkStore store_;
  std::unique_ptr<dedup::IndexBackend> catalog_;
  std::uint64_t catalog_offset_ = 0;
  std::map<std::string, Recipe> recipes_;
  // Pending-repair table: digest -> recipe references recorded so far. When
  // the repair payload arrives the chunk is stored once and ref-counted up
  // to the deferred reference count.
  std::unordered_map<dedup::ChunkDigest, std::uint64_t, dedup::ChunkDigestHash>
      pending_repair_;
};

}  // namespace shredder::backup
