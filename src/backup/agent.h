// Backup-site Shredder agent (paper §7.2): receives the stream of chunks
// and pointers produced by the backup server, stores unique chunks in a
// content-addressed store, and can recreate the original uncompressed image
// from its recipe.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "dedup/digest.h"
#include "dedup/index.h"
#include "dedup/store.h"

namespace shredder::backup {

class BackupAgent {
 public:
  // The agent keeps a fingerprint catalog in front of its chunk store — the
  // same IndexKind knob as the server side, so the backup site's membership
  // path can be modelled with either the baseline map or the ChunkStash-
  // style sparse index (docs/dedup_index.md). Results are exact either way;
  // only the modelled catalog time (catalog_seconds) differs.
  explicit BackupAgent(dedup::IndexConfig catalog_config = {});
  // One element of the backup stream: a pointer (digest only) or a payload-
  // carrying chunk. Legacy unit of the per-chunk wire framing.
  struct Message {
    dedup::ChunkDigest digest;
    ByteVec payload;  // empty => pointer to an already-stored chunk
  };

  // One extent-coalesced wire batch (docs/backup_wire.md): everything one
  // drained server buffer finalized. `digests` names every chunk in stream
  // order; `extents` is a run-length partition of them into duplicate-
  // pointer runs and unique (payload-carrying) runs; the unique payloads
  // ride concatenated in `payload`, sliced by `payload_sizes`. Runs of
  // consecutive duplicate pointers thus cost one extent record instead of
  // one message per chunk.
  struct ExtentBatch {
    struct Extent {
      std::uint32_t first = 0;  // index of the run's first chunk in `digests`
      std::uint32_t count = 0;  // run length
      bool unique = false;      // payload-carrying run vs duplicate pointers
    };
    std::vector<dedup::ChunkDigest> digests;   // one per chunk, stream order
    std::vector<Extent> extents;               // partition of [0, size)
    std::vector<std::uint32_t> payload_sizes;  // one per unique chunk
    ByteVec payload;                           // concatenated unique payloads
  };

  // Opens a new image recipe. Throws if the id is already known.
  void begin_image(const std::string& image_id);

  // Appends one chunk/pointer to the image. A pointer to an unknown digest
  // throws std::invalid_argument (protocol violation by the server). Kept as
  // a one-chunk shim over receive_batch().
  void receive(const std::string& image_id, const Message& message);

  // Appends a whole extent batch to the image. Throws std::invalid_argument
  // when the batch is malformed (extents not a partition, payload sizes
  // inconsistent) — checked before anything is applied — or on a pointer to
  // an unknown digest (the batch may then be partially applied; the
  // connection is considered broken either way).
  void receive_batch(const std::string& image_id, const ExtentBatch& batch);

  // Recreates the full image from its recipe.
  ByteVec recreate(const std::string& image_id) const;

  std::uint64_t unique_chunks() const { return store_.unique_chunks(); }
  std::uint64_t unique_bytes() const { return store_.unique_bytes(); }

  // Modelled time the catalog index has consumed answering the server's
  // chunk/pointer stream.
  double catalog_seconds() const { return catalog_->virtual_seconds(); }
  const dedup::IndexBackend& catalog() const noexcept { return *catalog_; }

 private:
  // Shared applier behind both receive paths: `payload` is the concatenated
  // unique-chunk bytes (a view — the wire buffer is never copied).
  void apply_batch(const std::string& image_id,
                   const std::vector<dedup::ChunkDigest>& digests,
                   const std::vector<ExtentBatch::Extent>& extents,
                   const std::vector<std::uint32_t>& payload_sizes,
                   ByteSpan payload);

  dedup::ChunkStore store_;
  std::unique_ptr<dedup::IndexBackend> catalog_;
  std::uint64_t catalog_offset_ = 0;
  std::map<std::string, std::vector<dedup::ChunkDigest>> recipes_;
};

}  // namespace shredder::backup
