// VM-image workload for the cloud-backup case study (paper §7.3).
//
// Matching the paper's memory-driven emulation: a master image is divided
// into segments; an image similarity table assigns each segment a
// probability of being replaced by different content. The snapshot generator
// produces per-VM images by sampling the table, at a modelled generation
// rate of 10 Gb/s (the I/O rate of the backup servers the paper targets).
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.h"

namespace shredder::backup {

struct ImageRepoConfig {
  std::uint64_t image_bytes = 64ull * 1024 * 1024;
  std::uint64_t segment_bytes = 1ull * 1024 * 1024;
  std::uint64_t seed = 42;
  double generation_rate_bps = 10e9 / 8;  // 10 Gb/s in bytes/s
};

class ImageRepository {
 public:
  explicit ImageRepository(ImageRepoConfig config);

  const ImageRepoConfig& config() const noexcept { return config_; }
  ByteSpan master() const noexcept { return as_bytes(master_); }
  std::uint64_t num_segments() const noexcept;

  // A snapshot with each segment independently replaced with probability
  // `change_probability` (the x-axis of Figure 18). Replacement content is
  // fresh random data, deterministic in (seed, snapshot_id).
  ByteVec snapshot(double change_probability, std::uint64_t snapshot_id) const;

  // Modelled time for the backup agent to materialize `bytes` of snapshot
  // data (the 10 Gb/s source).
  double generation_seconds(std::uint64_t bytes) const noexcept;

 private:
  ImageRepoConfig config_;
  ByteVec master_;
};

}  // namespace shredder::backup
