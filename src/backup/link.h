// Server→agent wire model (docs/backup_wire.md).
//
// The paper's backup server ships one message per chunk: a payload-carrying
// chunk or a bare pointer. At small chunk sizes the flat per-message
// handling cost — syscall, header parse, dispatch at both ends — dominates
// the link stage for duplicate-heavy snapshots: N pointer messages where one
// extent record would do ("A Moveable Beast": what crosses the boundary, and
// at what granularity, is the design lever).
//
// AgentLink owns that framing model. It offers both framings over the same
// BackupAgent protocol:
//   * send()       — legacy, one wire message per chunk/pointer;
//   * send_batch() — extent-coalesced, one wire message per drained buffer,
//     duplicate-pointer runs collapsed to {first, count} extent records and
//     unique payloads riding concatenated in the same frame.
// Every send charges the modelled per-message and per-byte costs and
// forwards to the agent, so the delivered images are bit-identical across
// framings while the link-stage seconds tell them apart.
#pragma once

#include <cstdint>
#include <string>

#include "backup/agent.h"

namespace shredder::backup {

// Modelled framing costs of the backup link. Bandwidth matches the §7.3
// 10 GbE; the message constants model a 2012-era kernel network stack
// (per-message handling dominated by syscall + interrupt + protocol work).
struct LinkCostModel {
  double bw = 1.25e9;          // payload bandwidth, B/s (10 GbE)
  double msg_s = 2.0e-6;       // flat per-wire-message handling, both ends
  std::size_t msg_header_bytes = 64;     // framing bytes per wire message
  std::size_t extent_record_bytes = 16;  // bytes per extent record
};

// Cumulative wire telemetry.
struct LinkStats {
  std::uint64_t messages = 0;       // wire messages shipped (incl. control)
  std::uint64_t extents = 0;        // extent records inside batch messages
  std::uint64_t chunks = 0;         // chunk entries shipped (pointers + data)
  std::uint64_t wire_bytes = 0;     // total link bytes incl. framing
  std::uint64_t payload_bytes = 0;  // unique chunk payload bytes
  double virtual_seconds = 0;       // modelled link-stage time
};

class AgentLink {
 public:
  AgentLink(BackupAgent& agent, const LinkCostModel& costs);

  // Control message opening a new image recipe at the agent.
  void begin_image(const std::string& image_id);

  // Legacy framing: one wire message per chunk/pointer.
  void send(const std::string& image_id, const BackupAgent::Message& message);

  // Extent-coalesced framing: one wire message per drained buffer.
  void send_batch(const std::string& image_id,
                  const BackupAgent::ExtentBatch& batch);

  const LinkStats& stats() const noexcept { return stats_; }

 private:
  // Charges one wire message carrying `bytes` beyond the frame header.
  void charge_message(std::size_t bytes);

  BackupAgent& agent_;
  LinkCostModel costs_;
  LinkStats stats_;
};

}  // namespace shredder::backup
