// Windowed, ack-clocked server→agent transport with loss, retransmit, flow
// control and digest-keyed repair (docs/backup_wire.md §transport).
//
// AgentLink (link.h) models a lossless, infinitely buffered wire: every
// frame arrives, in order, instantly applied. That is fine for calibrating
// the framing costs of fig18 but useless for the ROADMAP's "deployable over
// a real WAN" goal, where the backup stream must survive drops, reordering,
// duplication, multi-millisecond delay spikes and agents that apply slower
// than the server ships. Transport replaces it on the batched path with a
// real ARQ protocol, simulated in deterministic virtual time:
//
//   * every control/data frame carries a sequence number; the receiver
//     reassembles in order through a bounded out-of-order buffer and
//     acknowledges with a cumulative ack + selective-ack list + its
//     advertised free-buffer window;
//   * the sender keeps at most window_frames (and at most the agent's
//     advertised window) outstanding, retransmits on RTO with exponential
//     backoff, fast-retransmits on triple duplicate acks, and probes a
//     zero window instead of spinning;
//   * a frame whose payload keeps getting lost is eventually *stripped*:
//     the metadata (digests, extents, sizes) retransmits without the
//     payload bytes, the recipe completes, and the missing chunks move to a
//     digest-keyed repair protocol — the agent re-requests them from a
//     bounded pending-repair table and the server serves the bytes from its
//     ChunkStore (the firedancer repair-tile shape: bounded needed-item
//     tables, selective re-request by hash);
//   * an injectable FaultModel (seeded SplitMix64) decides per transmission
//     whether to drop, duplicate, delay or jitter-reorder the frame, and
//     whether the agent stalls while applying — so the whole recovery
//     machinery is exercised reproducibly and delivered images stay
//     bit-identical to the lossless path under any schedule.
//
// Everything runs inside virtual time like the rest of the repo: the
// transport is an event-driven simulation (transmissions serialize on
// per-direction busy-until clocks, arrivals/timeouts pop from an event
// queue ordered by (time, id)), so makespans are exact and reproducible.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "backup/agent.h"
#include "backup/link.h"
#include "common/bytes.h"
#include "common/rng.h"
#include "dedup/digest.h"
#include "obs/trace.h"

namespace shredder::backup {

// Per-transmission fault probabilities, drawn from one seeded SplitMix64 so
// every schedule is reproducible. Applied to both directions (data/repair
// frames server→agent, acks/repair-requests agent→server).
struct FaultModel {
  double drop = 0;       // transmission lost entirely
  double duplicate = 0;  // delivered twice (second copy slightly later)
  double reorder = 0;    // arrival jittered by up to reorder_jitter_s
  double delay = 0;      // arrival late by delay_s (a routing hiccup)
  double stall = 0;      // agent stalls for stall_s while applying a frame
  double reorder_jitter_s = 250e-6;
  double delay_s = 2e-3;
  double stall_s = 5e-3;
  std::uint64_t seed = 1;

  bool any() const {
    return drop > 0 || duplicate > 0 || reorder > 0 || delay > 0 || stall > 0;
  }
};

struct TransportConfig {
  // Framing costs shared with AgentLink so lossless transport seconds are
  // directly comparable to the fire-and-forget link model.
  LinkCostModel link;
  double latency_s = 10e-6;  // one-way propagation (LAN default)
  // Frames larger than this are segmented at chunk boundaries: content bytes
  // (digests + extent records + size records + payload) per data frame.
  std::size_t max_frame_bytes = 256 * 1024;
  std::size_t window_frames = 32;  // sender's max outstanding frames
  std::size_t recv_frames = 128;   // agent receive buffers (advertised window)
  std::size_t reorder_slots = 64;  // out-of-order reassembly bound
  // Agent apply bandwidth, B/s; 0 = infinitely fast (applies never occupy
  // receive buffers, the advertised window never closes from apply lag).
  double agent_apply_bw = 0;
  double rto_s = 1e-3;        // initial retransmission timeout
  double rto_backoff = 2.0;   // per-retransmit multiplier
  double rto_max_s = 64e-3;   // backoff cap
  // After this many payload retransmissions of one frame the payload is
  // stripped and the missing chunks shift to the repair path (only when a
  // repair source is wired up; otherwise retransmission continues).
  std::size_t max_payload_retx = 8;
  std::size_t repair_window = 64;  // max digests awaiting repair in flight
  std::size_t repair_batch = 16;   // digests per repair-request frame
  double repair_rto_s = 2e-3;      // re-request timeout (same backoff/cap)
  // Health thresholds: an agent is "degraded" when the retransmit share of
  // data-plane transmissions or the window-stalled share of the makespan
  // crosses these.
  double degraded_retransmit_rate = 0.05;
  double degraded_stall_fraction = 0.25;
  FaultModel faults;
  // Optional virtual-time tracer (borrowed; must outlive the transport).
  // When set, every wire transmission becomes a span on the direction's
  // track ("transport/<label>/tx" server→agent, ".../rx" agent→server) named
  // by frame kind (data/retx/probe/repair_data/ack/repair_req), dropped
  // transmissions become instants, agent applies span "agent/<label>", and
  // window-stall intervals span ".../stall". Null => no tracing, zero cost.
  obs::Tracer* tracer = nullptr;
  std::string trace_label = "link";  // distinguishes tenants on shared tracers
};

// Cumulative transport telemetry. `link` counts each *original* frame once,
// exactly as AgentLink would have (no double-charge on the retransmit path);
// everything physical — retransmissions, acks, repair traffic, stall time —
// is accounted beside it.
struct TransportStats {
  LinkStats link;  // logical stream: originals only, framing-model costs

  // Data-plane transmissions server→agent:
  //   frames_sent == link.messages + retransmits + repair_frames + probes.
  std::uint64_t frames_sent = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t retransmit_wire_bytes = 0;
  std::uint64_t fast_retransmits = 0;  // triggered by triple duplicate acks
  std::uint64_t rto_fires = 0;
  std::uint64_t probes = 0;  // zero-window persist probes

  // Ack plane (agent→server).
  std::uint64_t acks_sent = 0;
  std::uint64_t ack_wire_bytes = 0;

  // Fault-model outcomes actually drawn (both directions).
  std::uint64_t frames_dropped = 0;
  std::uint64_t frames_duplicated = 0;
  std::uint64_t frames_delayed = 0;
  std::uint64_t frames_reordered = 0;

  // Receiver reassembly.
  std::uint64_t out_of_order_frames = 0;  // parked awaiting the gap
  std::uint64_t reassembly_drops = 0;     // arrivals with no buffer to park in
  std::uint64_t duplicate_frames = 0;     // arrivals at/below the cum ack

  // Flow control and agent health.
  std::uint64_t window_stalls = 0;  // sender entered a window-blocked state
  double window_stall_seconds = 0;  // time the sender sat window-blocked
  std::uint64_t agent_stalls = 0;   // fault-injected apply stalls
  double agent_stall_seconds = 0;

  // Repair protocol.
  std::uint64_t payloads_stripped = 0;        // frames shipped metadata-only
  std::uint64_t repair_requests = 0;          // request frames agent→server
  std::uint64_t repair_digests_requested = 0; // digests requested incl retries
  std::uint64_t repair_retries = 0;           // re-requests after timeout
  std::uint64_t repair_frames = 0;            // repair-data frames served
  std::uint64_t repair_payload_bytes = 0;

  double virtual_seconds = 0;  // makespan: start of send to fully delivered
  double goodput_bps = 0;      // delivered payload bits / makespan
  bool degraded = false;       // crossed a degraded-health threshold
};

// Serves the payload for a repaired chunk, typically bound to the server's
// shared dedup::ChunkStore. Returning nullopt is a hard protocol error (the
// server advertised a digest it cannot produce).
using RepairSource =
    std::function<std::optional<ByteVec>(const dedup::ChunkDigest&)>;

// One logical connection server→agent shipping one or more images. The
// caller drives the sender half (begin_image / send_batch / end_image /
// flush); the receiver half — reassembly, acks, the agent upcalls, the
// repair requester — runs inside the same virtual-time event loop.
class Transport {
 public:
  Transport(BackupAgent& agent, TransportConfig config,
            RepairSource repair = nullptr);

  // Enqueues the open-image control frame (sequenced; delivery idempotent at
  // the agent, so a duplicated or retransmitted begin is harmless).
  void begin_image(const std::string& image_id);

  // Segments the batch into data frames at chunk boundaries (max_frame_bytes
  // of content each) and enqueues them. Pumps the event loop until the
  // sender's spool drains below the send window — the caller is
  // backpressured exactly like the agent backpressures the server.
  void send_batch(const std::string& image_id,
                  const BackupAgent::ExtentBatch& batch);
  // Adopting overload: a batch that fits one data frame is moved into the
  // frame whole — the payload bytes are never re-copied into frame storage
  // (the frame then owns them for retransmission). Batches that must be
  // segmented fall back to the copying path.
  void send_batch(const std::string& image_id,
                  BackupAgent::ExtentBatch&& batch);

  // Enqueues the end-of-image control frame carrying the total chunk count;
  // the agent seals the recipe on delivery and detects truncation.
  void end_image(const std::string& image_id);

  // Runs the event loop to completion: every frame delivered and acked,
  // every stripped payload repaired, the agent idle. Finalizes makespan,
  // goodput and the degraded flag.
  void flush();

  const TransportStats& stats() const noexcept { return stats_; }

 private:
  struct Frame {
    enum class Kind { kBegin, kData, kEnd, kProbe };
    Kind kind = Kind::kData;
    std::uint64_t seq = 0;  // kProbe is unsequenced
    std::string image_id;
    BackupAgent::ExtentBatch batch;      // kData
    std::uint64_t expected_chunks = 0;   // kEnd
    bool stripped = false;               // kData with payload removed
    std::size_t content_bytes = 0;       // wire bytes beyond the header
  };
  using FramePtr = std::shared_ptr<const Frame>;

  struct Ack {
    std::uint64_t cum = 0;  // next sequence the receiver expects
    std::vector<std::uint64_t> sacks;
    std::size_t window = 0;  // advertised free receive buffers
  };

  struct Outstanding {
    FramePtr frame;
    double expires = 0;
    double rto = 0;
    std::size_t retx = 0;
    bool sacked = false;
    // One fast retransmit per hole (NewReno-style): while the repair is in
    // flight the receiver keeps emitting sack-bearing dup acks, and without
    // this latch every third one would re-fire the same retransmission.
    bool fast_done = false;
  };

  struct Event {
    enum class Kind {
      kFrameArrive,       // data-plane frame at the agent
      kAckArrive,         // ack at the server
      kRepairReqArrive,   // digest re-request at the server
      kRepairDataArrive,  // repaired payloads at the agent
      kApplyDone,         // agent finished applying one frame
    };
    double t = 0;
    std::uint64_t id = 0;  // tie-break: schedule order
    Kind kind = Kind::kFrameArrive;
    FramePtr frame;
    Ack ack;
    std::vector<dedup::ChunkDigest> digests;
    std::vector<std::pair<dedup::ChunkDigest, ByteVec>> repairs;
    bool operator>(const Event& o) const {
      return t != o.t ? t > o.t : id > o.id;
    }
  };

  struct PendingRepair {
    double expires = 0;
    double rto = 0;
    std::size_t retries = 0;
  };

  // --- sender side ---
  void enqueue(Frame frame);
  bool can_send() const;
  void transmit_next();
  void transmit(const FramePtr& frame, bool retransmit);
  void handle_ack(const Ack& ack);
  void retransmit_frame(Outstanding& out);
  void fire_probe();
  void serve_repair(const std::vector<dedup::ChunkDigest>& digests);

  // --- receiver (agent) side ---
  void on_frame(const FramePtr& frame);
  void deliver(const FramePtr& frame);
  void send_ack();
  std::size_t advertised_window() const;
  void queue_repair(std::vector<dedup::ChunkDigest> digests);
  void send_repair_requests();
  void on_repair_data(
      std::vector<std::pair<dedup::ChunkDigest, ByteVec>>&& repairs);

  // --- wire + event machinery ---
  // Transmits `content` bytes in `dir` (0 = server→agent, 1 = agent→server),
  // drawing faults, and schedules `make_event(arrival_time)` per delivered
  // copy. Returns the transmission finish time on the local clock. `what`
  // names the transmission's trace span (data/retx/ack/...).
  double wire_send(int dir, std::size_t content, const char* what,
                   const std::function<Event(double)>& make_event);
  void schedule(Event ev);
  double next_timeout() const;
  void fire_timeouts();
  void pump(std::size_t target_backlog);
  bool idle() const;

  BackupAgent& agent_;
  TransportConfig cfg_;
  RepairSource repair_;
  TransportStats stats_;
  SplitMix64 rng_;

  // Trace track names, resolved once from trace_label (empty when untraced).
  std::string track_tx_;
  std::string track_rx_;
  std::string track_agent_;
  std::string track_stall_;

  // Virtual clocks.
  double now_ = 0;
  double tx_busy_until_ = 0;  // server→agent wire serialization
  double rx_busy_until_ = 0;  // agent→server wire serialization
  double apply_busy_until_ = 0;

  // Event queue ordered by (time, schedule id).
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> events_;
  std::uint64_t next_event_id_ = 0;

  // Sender state.
  std::deque<FramePtr> backlog_;  // sequenced frames not yet transmitted
  std::map<std::uint64_t, Outstanding> unacked_;
  std::uint64_t next_seq_ = 0;
  std::size_t peer_window_;
  std::uint64_t max_cum_seen_ = 0;
  std::size_t dup_acks_ = 0;
  double probe_deadline_ = 0;  // active while zero-window probing
  double probe_rto_ = 0;
  bool probing_ = false;
  bool stalled_ = false;  // currently window-blocked (stall accounting)
  std::unordered_map<std::string, std::uint64_t> image_chunks_;

  // Receiver state.
  std::uint64_t cum_ = 0;  // next expected sequence
  std::map<std::uint64_t, FramePtr> parked_;
  std::size_t apply_outstanding_ = 0;
  bool window_was_zero_ = false;

  // Agent-side repair requester.
  std::deque<dedup::ChunkDigest> repair_backlog_;
  std::unordered_map<dedup::ChunkDigest, PendingRepair, dedup::ChunkDigestHash>
      repair_inflight_;
};

}  // namespace shredder::backup
