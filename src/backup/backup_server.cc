#include "backup/backup_server.h"

#include <algorithm>
#include <optional>
#include <stdexcept>
#include <thread>

#include "common/timer.h"

namespace shredder::backup {

namespace {

bool chunker_equal(const chunking::ChunkerConfig& a,
                   const chunking::ChunkerConfig& b) {
  return a.window == b.window && a.mask_bits == b.mask_bits &&
         a.marker == b.marker && a.min_size == b.min_size &&
         a.max_size == b.max_size;
}

// ChunkSink recording the drained-buffer batch structure of a chunking run
// as cumulative chunk counts — the granularity the wire batches reuse.
class BatchRecorder final : public ChunkSink {
 public:
  explicit BatchRecorder(std::vector<std::size_t>& ends) : ends_(ends) {}
  void on_batch(const ChunkBatchView& batch) override {
    total_ += batch.chunks.size();
    if (!batch.chunks.empty()) ends_.push_back(total_);
  }

 private:
  std::vector<std::size_t>& ends_;
  std::size_t total_ = 0;
};

}  // namespace

BackupServer::BackupServer(BackupServerConfig config)
    : config_(std::move(config)) {
  config_.chunker.validate();
  // The repair source of the batched transport path: every unique chunk the
  // server ships is also retained here, so a re-requested digest can always
  // be served. Shareable (e.g. with a dedup_on_store service). Server-owned
  // instances run in deferred-reclaim mode: snapshot deletes park zero-ref
  // chunks for the GC epoch protocol instead of freeing them inline.
  store_ = config_.store ? config_.store
                         : std::make_shared<dedup::ChunkStore>(
                               /*deferred_reclaim=*/true);
  // The baseline backend's flat probe/insert costs live in BackupCostModel
  // (§7.3 calibration); copy them into the index config so both knobs agree.
  dedup::IndexConfig index_cfg = config_.index;
  index_cfg.costs.probe_s = config_.costs.index_probe_s;
  index_cfg.costs.insert_s = config_.costs.index_insert_s;
  index_ = dedup::make_index(index_cfg);
  // With a shared service and no explicit registry, the server publishes
  // into the service's registry so one snapshot() covers both layers.
  registry_ = config_.registry;
  if (registry_ == nullptr && config_.service) {
    registry_ = &config_.service->registry();
  }
  // Snapshot lifecycle over the repair store: manifests, delete walks, GC.
  retention::RetentionConfig retention_cfg;
  retention_cfg.costs = config_.retention_costs;
  retention_cfg.registry = registry_;
  retention_cfg.tracer = config_.tracer;
  retention_ = std::make_unique<retention::RetentionManager>(store_,
                                                             retention_cfg);
  switch (config_.backend) {
    case ChunkerBackend::kShredderGpu:
      config_.shredder.chunker = config_.chunker;
      config_.shredder.fingerprint_on_device = config_.fingerprint_on_device;
      config_.shredder.registry = registry_;
      shredder_ = std::make_unique<core::Shredder>(config_.shredder);
      break;
    case ChunkerBackend::kPthreadsCpu:
      // The CPU baseline has no device to fingerprint on.
      config_.fingerprint_on_device = false;
      cpu_tables_ = std::make_unique<rabin::RabinTables>(config_.chunker.window);
      cpu_chunker_ = std::make_unique<chunking::ParallelChunker>(
          *cpu_tables_, config_.chunker, config_.cpu_threads,
          chunking::AllocMode::kThreadArena);
      break;
    case ChunkerBackend::kSharedService:
      if (!config_.service) {
        throw std::invalid_argument(
            "BackupServer: kSharedService requires a ChunkingService");
      }
      if (!chunker_equal(config_.service->config().chunker, config_.chunker)) {
        throw std::invalid_argument(
            "BackupServer: shared service chunker configuration differs");
      }
      if (config_.service->config().fingerprint_on_device !=
          config_.fingerprint_on_device) {
        throw std::invalid_argument(
            "BackupServer: shared service fingerprint_on_device differs");
      }
      break;
  }
}

TransportConfig BackupServer::transport_config(
    const std::string& image_id) const {
  TransportConfig cfg = config_.transport;
  // Single source of truth for the framing calibration: the transport
  // always prices frames with the cost model's link constants.
  cfg.link = config_.costs.link;
  cfg.tracer = config_.tracer;
  cfg.trace_label = image_id;
  if (config_.backend == ChunkerBackend::kSharedService && config_.service) {
    if (const auto t = config_.service->tenant_transport(image_id)) {
      if (t->window_frames > 0) cfg.window_frames = t->window_frames;
      if (t->rto_s > 0) cfg.rto_s = t->rto_s;
      if (t->agent_apply_bw >= 0) cfg.agent_apply_bw = t->agent_apply_bw;
      if (t->drop >= 0) cfg.faults.drop = t->drop;
      if (t->reorder >= 0) cfg.faults.reorder = t->reorder;
      if (t->duplicate >= 0) cfg.faults.duplicate = t->duplicate;
      if (t->delay >= 0) cfg.faults.delay = t->delay;
      if (t->stall >= 0) cfg.faults.stall = t->stall;
      if (t->fault_seed != 0) cfg.faults.seed = t->fault_seed;
    }
  }
  return cfg;
}

double BackupServer::chunk_image(const std::string& image_id, ByteSpan image,
                                 std::vector<chunking::Chunk>& chunks,
                                 std::vector<dedup::ChunkDigest>& digests,
                                 std::vector<std::size_t>& batch_ends) {
  BatchRecorder recorder(batch_ends);
  switch (config_.backend) {
    case ChunkerBackend::kShredderGpu: {
      auto result = shredder_->run(image, recorder);
      chunks = std::move(result.chunks);
      digests = std::move(result.digests);
      return result.virtual_seconds;
    }
    case ChunkerBackend::kPthreadsCpu: {
      chunks = cpu_chunker_->chunk(image);
      // No pipeline buffers on the CPU path: synthesize batch bounds at the
      // same buffer granularity the GPU backends ship at, so the wire
      // protocol amortizes identically. (Exact bounds may differ at buffer
      // seams — a spanning chunk lands in the earlier batch here but in the
      // draining buffer's batch on the pipeline backends.)
      const std::size_t buffer = config_.shredder.buffer_bytes;
      std::uint64_t limit = buffer;
      for (std::size_t i = 0; i < chunks.size(); ++i) {
        if (chunks[i].end() >= limit) {
          batch_ends.push_back(i + 1);
          while (limit <= chunks[i].end()) limit += buffer;
        }
      }
      if (batch_ends.empty() || batch_ends.back() != chunks.size()) {
        batch_ends.push_back(chunks.size());
      }
      const gpu::HostSpec host;
      return static_cast<double>(image.size()) /
             host.pthreads_chunking_bw_hoard;
    }
    case ChunkerBackend::kSharedService: {
      core::MemorySource source(image,
                                config_.service->config().host.reader_bw);
      service::TenantOptions opts;
      opts.name = image_id;
      opts.sink = &recorder;
      auto result = config_.service->chunk_stream(source, std::move(opts));
      chunks = std::move(result.chunks);
      digests = std::move(result.digests);
      return result.report.virtual_seconds;
    }
  }
  throw std::logic_error("BackupServer: unknown backend");
}

BackupRunStats BackupServer::dedup_and_ship(
    const std::string& image_id, ByteSpan image,
    std::vector<chunking::Chunk> chunks,
    std::vector<dedup::ChunkDigest> digests,
    std::vector<std::size_t> batch_ends, double generation_seconds,
    double chunking_seconds, BackupAgent& agent) {
  Stopwatch wall;
  BackupRunStats stats;
  stats.bytes = image.size();
  stats.generation_seconds = generation_seconds;
  stats.chunking_seconds = chunking_seconds;
  stats.chunks = chunks.size();
  stats.device_fingerprint = !digests.empty();
  if (stats.device_fingerprint && digests.size() != chunks.size()) {
    throw std::invalid_argument(
        "BackupServer: digest/chunk count mismatch from the chunking stage");
  }
  if (batch_ends.empty() || batch_ends.back() != chunks.size()) {
    batch_ends.push_back(chunks.size());
  }

  // --- Hash + index lookup + transfer stages ---
  // With device fingerprints the hash stage already happened inside the
  // chunking pipeline (its kernel time is part of chunking_seconds), so the
  // host hashing term drops out of the bandwidth equation.
  stats.hashing_seconds =
      stats.device_fingerprint
          ? 0.0
          : static_cast<double>(image.size()) / config_.costs.host_hash_bw;
  // The wire: batched streams ride the windowed ack-clocked Transport (with
  // the server's chunk store as the repair source); the per-chunk framing
  // keeps the paper's fire-and-forget AgentLink model.
  std::optional<AgentLink> link;
  std::optional<Transport> transport;
  if (config_.batch_link) {
    auto store = store_;
    transport.emplace(agent, transport_config(image_id),
                      [store](const dedup::ChunkDigest& digest) {
                        return store->get(digest);
                      });
    transport->begin_image(image_id);
  } else {
    link.emplace(agent, config_.costs.link);
    link->begin_image(image_id);
  }
  // The index stage is charged whatever the backend's virtual clock says
  // this snapshot's probes cost — a flat per-probe/per-insert rate for the
  // baseline, signature probes + amortized container reads for the sparse
  // index. Each snapshot probes as its own stream so the sparse backend's
  // prefetch cache sees backup locality.
  const std::uint32_t index_stream = next_index_stream_++;
  const dedup::IndexStats index_before = index_->stats();
  stats.index_kind = index_->kind();
  // Retention bookkeeping (batched path only — the per-chunk AgentLink path
  // takes no store references): pin the whole dedup walk so a concurrent
  // gc() cannot free a chunk between this walk's index hit and its add_ref,
  // and accumulate the image's ordered digest list for its manifest.
  retention::RetentionManager::Pin pin;
  std::vector<dedup::ChunkDigest> manifest_digests;
  if (config_.batch_link) {
    pin = retention_->pin();
    manifest_digests.reserve(chunks.size());
  }
  // The stream ships at the drained-buffer granularity chunk_image recorded:
  // with batch_link one extent-coalesced wire message per buffer, otherwise
  // the paper's one message per chunk.
  std::size_t chunk_i = 0;
  for (const std::size_t batch_end : batch_ends) {
    BackupAgent::ExtentBatch wire;
    for (; chunk_i < batch_end; ++chunk_i) {
      const auto& c = chunks[chunk_i];
      const ByteSpan payload =
          image.subspan(static_cast<std::size_t>(c.offset),
                        static_cast<std::size_t>(c.size));
      const auto digest = stats.device_fingerprint
                              ? digests[chunk_i]
                              : dedup::ChunkHasher::hash(payload);
      const auto existing = index_->lookup_or_insert(
          digest, dedup::ChunkLocation{next_store_offset_, c.size},
          index_stream);
      bool unique = !existing.has_value();
      // One store reference per duplicate occurrence keeps the refcounts
      // symmetric with the manifest the delete walk will replay. A failed
      // add_ref is a stale index hit — the chunk was deleted and swept after
      // the index recorded it — and self-heals: treat the chunk as unique
      // and re-ship the payload (dedup ratio degrades, correctness never).
      if (config_.batch_link && !unique && !store_->add_ref(digest)) {
        unique = true;
      }
      if (unique) {
        stats.unique_bytes += c.size;
        next_store_offset_ += c.size;
      } else {
        ++stats.duplicate_chunks;
      }
      if (!config_.batch_link) {
        BackupAgent::Message msg;
        msg.digest = digest;
        if (unique) msg.payload.assign(payload.begin(), payload.end());
        link->send(image_id, msg);
        continue;
      }
      // Retain the payload server-side: the repair protocol must be able to
      // serve any digest it ever put on the wire. put() is the unique-chunk
      // half of the one-ref-per-occurrence invariant (add_ref above is the
      // duplicate half).
      if (unique) store_->put(digest, payload);
      manifest_digests.push_back(digest);
      // Extent coalescing: extend the open run while the chunk kind
      // matches, else seal it and open the next.
      const auto idx = static_cast<std::uint32_t>(wire.digests.size());
      wire.digests.push_back(digest);
      if (wire.extents.empty() || wire.extents.back().unique != unique) {
        wire.extents.push_back({idx, 1, unique});
      } else {
        ++wire.extents.back().count;
      }
      if (unique) {
        wire.payload_sizes.push_back(static_cast<std::uint32_t>(c.size));
        wire.payload.insert(wire.payload.end(), payload.begin(),
                            payload.end());
      }
    }
    if (config_.batch_link && !wire.digests.empty()) {
      transport->send_batch(image_id, std::move(wire));
    }
  }
  if (transport) {
    transport->end_image(image_id);
    transport->flush();
  }

  const dedup::IndexStats index_after = index_->stats();
  stats.index_seconds = index_after.virtual_seconds -
                        index_before.virtual_seconds;
  stats.index_flash_reads = index_after.flash_reads - index_before.flash_reads;
  stats.index_cache_hits = index_after.cache_hits - index_before.cache_hits;
  if (transport) {
    const TransportStats& ts = transport->stats();
    stats.transport = ts;
    stats.link_degraded = ts.degraded;
    // link_seconds is the transport makespan — with faults it exceeds the
    // logical serialized time in ts.link.virtual_seconds by the recovery
    // cost; without faults the two agree to within the final ack round trip.
    stats.link_seconds = ts.virtual_seconds;
    stats.link_messages = ts.link.messages;
    stats.link_extents = ts.link.extents;
    stats.wire_bytes = ts.link.wire_bytes;
    if (config_.backend == ChunkerBackend::kSharedService && config_.service) {
      service::TenantTransportHealth health;
      health.tenant = image_id;
      health.frames_sent = ts.frames_sent;
      health.retransmits = ts.retransmits;
      health.repairs = ts.repair_frames;
      health.stall_seconds = ts.window_stall_seconds;
      health.link_seconds = ts.virtual_seconds;
      health.degraded = ts.degraded;
      config_.service->report_transport_health(std::move(health));
    }
  } else {
    const LinkStats& wire_stats = link->stats();
    stats.link_seconds = wire_stats.virtual_seconds;
    stats.link_messages = wire_stats.messages;
    stats.link_extents = wire_stats.extents;
    stats.wire_bytes = wire_stats.wire_bytes;
  }
  stats.index_transfer_seconds = stats.index_seconds + stats.link_seconds;

  // --- Steady-state pipelined bandwidth: slowest stage wins ---
  stats.virtual_seconds =
      std::max({stats.generation_seconds, stats.chunking_seconds,
                stats.hashing_seconds, stats.index_transfer_seconds});
  stats.backup_bandwidth_gbps =
      stats.virtual_seconds > 0
          ? static_cast<double>(stats.bytes) * 8.0 /
                (stats.virtual_seconds * 1e9)
          : 0.0;

  // --- Verification: the backup site can recreate the exact image ---
  const ByteVec recreated = agent.recreate(image_id);
  stats.verified = recreated.size() == image.size() &&
                   std::equal(recreated.begin(), recreated.end(), image.begin());
  if (config_.batch_link) {
    // The manifest is the durable record the delete walk and crash recovery
    // replay. Recorded unconditionally: the store references were taken
    // during the walk above, and a manifest must account for every one.
    retention_->record_image("", image_id, manifest_digests);
    pin.release();
  }
  stats.wall_seconds = wall.elapsed_seconds();
  publish_run_stats(stats, index_before, index_after);
  return stats;
}

void BackupServer::publish_run_stats(const BackupRunStats& stats,
                                     const dedup::IndexStats& index_before,
                                     const dedup::IndexStats& index_after) {
  if (registry_ == nullptr) return;
  obs::Registry& reg = *registry_;
  reg.counter("backup.snapshots_total").add(1);
  reg.counter("backup.bytes_total").add(stats.bytes);
  reg.counter("backup.chunks_total").add(stats.chunks);
  reg.counter("backup.duplicate_chunks_total").add(stats.duplicate_chunks);
  reg.counter("backup.unique_bytes_total").add(stats.unique_bytes);
  reg.counter("backup.retransmits_total").add(stats.transport.retransmits);
  reg.counter("backup.repair_frames_total").add(stats.transport.repair_frames);
  if (stats.link_degraded) reg.counter("backup.degraded_runs_total").add(1);
  reg.gauge("backup.bandwidth_gbps").set(stats.backup_bandwidth_gbps);
  // Per-snapshot stage timings (virtual seconds), one label per stage so
  // the table/JSON export reads like the paper's bandwidth equation.
  reg.timing("backup.stage_seconds", {{"stage", "generation"}})
      .observe(stats.generation_seconds);
  reg.timing("backup.stage_seconds", {{"stage", "chunking"}})
      .observe(stats.chunking_seconds);
  reg.timing("backup.stage_seconds", {{"stage", "hashing"}})
      .observe(stats.hashing_seconds);
  reg.timing("backup.stage_seconds", {{"stage", "index"}})
      .observe(stats.index_seconds);
  reg.timing("backup.stage_seconds", {{"stage", "link"}})
      .observe(stats.link_seconds);
  // Probe-outcome deltas for the server-owned index. The dedup layer sits
  // below obs, so its consumers publish on its behalf.
  const auto delta = [](std::uint64_t after, std::uint64_t before) {
    return after - before;
  };
  reg.counter("index.probes_total")
      .add(delta(index_after.probes, index_before.probes));
  reg.counter("index.inserts_total")
      .add(delta(index_after.inserts, index_before.inserts));
  reg.counter("index.signature_hits_total")
      .add(delta(index_after.signature_hits, index_before.signature_hits));
  reg.counter("index.false_signature_hits_total")
      .add(delta(index_after.false_signature_hits,
                 index_before.false_signature_hits));
  reg.counter("index.flash_reads_total")
      .add(delta(index_after.flash_reads, index_before.flash_reads));
  reg.counter("index.cache_hits_total")
      .add(delta(index_after.cache_hits, index_before.cache_hits));
}

retention::RetentionManager::DeleteStats BackupServer::delete_image(
    const std::string& image_id) {
  return retention_->delete_image("", image_id);
}

retention::RetentionManager::GcStats BackupServer::gc() {
  return retention_->gc();
}

retention::RetentionManager::CompactStats BackupServer::compact_index() {
  if (index_->kind() == dedup::IndexKind::kSparse) {
    return retention_->compact_index(
        static_cast<dedup::SparseChunkIndex&>(*index_));
  }
  // The baseline map keeps no entry log; only the manifest log compacts.
  retention::RetentionManager::CompactStats stats;
  stats.manifest = retention_->manifests().compact();
  return stats;
}

BackupRunStats BackupServer::backup_image(const std::string& image_id,
                                          ByteSpan image,
                                          const ImageRepository& repo,
                                          BackupAgent& agent) {
  Stopwatch wall;
  std::vector<chunking::Chunk> chunks;
  std::vector<dedup::ChunkDigest> digests;
  std::vector<std::size_t> batch_ends;
  const double chunking_seconds =
      chunk_image(image_id, image, chunks, digests, batch_ends);
  auto stats = dedup_and_ship(image_id, image, std::move(chunks),
                              std::move(digests), std::move(batch_ends),
                              repo.generation_seconds(image.size()),
                              chunking_seconds, agent);
  stats.wall_seconds = wall.elapsed_seconds();
  return stats;
}

std::vector<BackupRunStats> BackupServer::backup_images(
    const std::vector<SnapshotJob>& jobs, const ImageRepository& repo,
    BackupAgent& agent) {
  std::vector<BackupRunStats> all;
  all.reserve(jobs.size());
  if (config_.backend != ChunkerBackend::kSharedService) {
    for (const auto& job : jobs) {
      all.push_back(backup_image(job.image_id, job.image, repo, agent));
    }
    return all;
  }

  // Chunk every snapshot concurrently, one service tenant per image, all
  // multiplexed over the shared device.
  std::vector<std::vector<chunking::Chunk>> chunks(jobs.size());
  std::vector<std::vector<dedup::ChunkDigest>> digests(jobs.size());
  std::vector<std::vector<std::size_t>> batch_ends(jobs.size());
  std::vector<double> chunk_seconds(jobs.size(), 0.0);
  std::vector<double> chunk_wall(jobs.size(), 0.0);
  std::vector<std::exception_ptr> errors(jobs.size());
  std::vector<std::thread> workers;
  workers.reserve(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    workers.emplace_back([&, i] {
      try {
        Stopwatch wall;
        chunk_seconds[i] = chunk_image(jobs[i].image_id, jobs[i].image,
                                       chunks[i], digests[i], batch_ends[i]);
        chunk_wall[i] = wall.elapsed_seconds();
      } catch (...) {
        errors[i] = std::current_exception();
      }
    });
  }
  for (auto& t : workers) t.join();
  for (const auto& err : errors) {
    if (err) std::rethrow_exception(err);
  }

  // Dedup/transfer serially in job order so the index walk is deterministic.
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    auto stats = dedup_and_ship(jobs[i].image_id, jobs[i].image,
                                std::move(chunks[i]), std::move(digests[i]),
                                std::move(batch_ends[i]),
                                repo.generation_seconds(jobs[i].image.size()),
                                chunk_seconds[i], agent);
    // Per-image wall = its own (overlapping) chunking time + its dedup pass.
    stats.wall_seconds += chunk_wall[i];
    all.push_back(stats);
  }
  return all;
}

}  // namespace shredder::backup
