#include "backup/backup_server.h"

#include <algorithm>

#include "common/timer.h"

namespace shredder::backup {

BackupServer::BackupServer(BackupServerConfig config)
    : config_(std::move(config)), index_(config_.costs.index_probe_s) {
  config_.chunker.validate();
  if (config_.backend == ChunkerBackend::kShredderGpu) {
    config_.shredder.chunker = config_.chunker;
    shredder_ = std::make_unique<core::Shredder>(config_.shredder);
  } else {
    cpu_tables_ = std::make_unique<rabin::RabinTables>(config_.chunker.window);
    cpu_chunker_ = std::make_unique<chunking::ParallelChunker>(
        *cpu_tables_, config_.chunker, config_.cpu_threads,
        chunking::AllocMode::kThreadArena);
  }
}

BackupRunStats BackupServer::backup_image(const std::string& image_id,
                                          ByteSpan image,
                                          const ImageRepository& repo,
                                          BackupAgent& agent) {
  Stopwatch wall;
  BackupRunStats stats;
  stats.bytes = image.size();
  stats.generation_seconds = repo.generation_seconds(image.size());

  // --- Chunking stage ---
  std::vector<chunking::Chunk> chunks;
  if (config_.backend == ChunkerBackend::kShredderGpu) {
    auto result = shredder_->run(image);
    chunks = std::move(result.chunks);
    stats.chunking_seconds = result.virtual_seconds;
  } else {
    chunks = cpu_chunker_->chunk(image);
    const gpu::HostSpec host;
    stats.chunking_seconds = static_cast<double>(image.size()) /
                             host.pthreads_chunking_bw_hoard;
  }
  stats.chunks = chunks.size();

  // --- Hash + index lookup + transfer stages ---
  stats.hashing_seconds =
      static_cast<double>(image.size()) / config_.costs.host_sha1_bw;
  agent.begin_image(image_id);
  std::uint64_t unique_chunks = 0;
  for (const auto& c : chunks) {
    const ByteSpan payload = image.subspan(
        static_cast<std::size_t>(c.offset), static_cast<std::size_t>(c.size));
    const auto digest = dedup::Sha1::hash(payload);
    const auto existing = index_.lookup_or_insert(
        digest, dedup::ChunkLocation{next_store_offset_, c.size});
    BackupAgent::Message msg;
    msg.digest = digest;
    if (existing.has_value()) {
      ++stats.duplicate_chunks;
      // Pointer only: payload stays empty.
    } else {
      ++unique_chunks;
      stats.unique_bytes += c.size;
      next_store_offset_ += c.size;
      msg.payload.assign(payload.begin(), payload.end());
    }
    agent.receive(image_id, msg);
  }

  stats.index_transfer_seconds =
      static_cast<double>(stats.chunks) * config_.costs.index_probe_s +
      static_cast<double>(unique_chunks) * config_.costs.index_insert_s +
      static_cast<double>(stats.unique_bytes) / config_.costs.link_bw;

  // --- Steady-state pipelined bandwidth: slowest stage wins ---
  stats.virtual_seconds =
      std::max({stats.generation_seconds, stats.chunking_seconds,
                stats.hashing_seconds, stats.index_transfer_seconds});
  stats.backup_bandwidth_gbps =
      stats.virtual_seconds > 0
          ? static_cast<double>(stats.bytes) * 8.0 /
                (stats.virtual_seconds * 1e9)
          : 0.0;

  // --- Verification: the backup site can recreate the exact image ---
  const ByteVec recreated = agent.recreate(image_id);
  stats.verified = recreated.size() == image.size() &&
                   std::equal(recreated.begin(), recreated.end(), image.begin());
  stats.wall_seconds = wall.elapsed_seconds();
  return stats;
}

}  // namespace shredder::backup
