#include "backup/image.h"

#include <stdexcept>

#include "common/rng.h"

namespace shredder::backup {

ImageRepository::ImageRepository(ImageRepoConfig config)
    : config_(config) {
  if (config_.image_bytes == 0 || config_.segment_bytes == 0) {
    throw std::invalid_argument("ImageRepository: sizes must be positive");
  }
  if (config_.segment_bytes > config_.image_bytes) {
    throw std::invalid_argument("ImageRepository: segment larger than image");
  }
  if (config_.generation_rate_bps <= 0) {
    throw std::invalid_argument("ImageRepository: bad generation rate");
  }
  master_ = random_bytes(config_.image_bytes, config_.seed);
}

std::uint64_t ImageRepository::num_segments() const noexcept {
  return (config_.image_bytes + config_.segment_bytes - 1) /
         config_.segment_bytes;
}

ByteVec ImageRepository::snapshot(double change_probability,
                                  std::uint64_t snapshot_id) const {
  if (change_probability < 0.0 || change_probability > 1.0) {
    throw std::invalid_argument("snapshot: probability in [0,1]");
  }
  ByteVec image = master_;
  SplitMix64 rng(config_.seed ^ (snapshot_id * 0x9e3779b97f4a7c15ull));
  const std::uint64_t segments = num_segments();
  for (std::uint64_t s = 0; s < segments; ++s) {
    if (rng.next_double() >= change_probability) continue;
    const std::uint64_t begin = s * config_.segment_bytes;
    const std::uint64_t end =
        std::min(begin + config_.segment_bytes, config_.image_bytes);
    // Replace the whole segment with fresh content (the paper's similarity
    // table semantics: a segment is either shared or entirely different).
    const auto fresh =
        random_bytes(end - begin, rng.next() ^ (snapshot_id << 32 | s));
    std::copy(fresh.begin(), fresh.end(),
              image.begin() + static_cast<std::ptrdiff_t>(begin));
  }
  return image;
}

double ImageRepository::generation_seconds(std::uint64_t bytes) const noexcept {
  return static_cast<double>(bytes) / config_.generation_rate_bps;
}

}  // namespace shredder::backup
