#include "backup/link.h"

namespace shredder::backup {

AgentLink::AgentLink(BackupAgent& agent, const LinkCostModel& costs)
    : agent_(agent), costs_(costs) {}

void AgentLink::charge_message(std::size_t bytes) {
  const std::uint64_t wire = costs_.msg_header_bytes + bytes;
  ++stats_.messages;
  stats_.wire_bytes += wire;
  stats_.virtual_seconds +=
      costs_.msg_s + static_cast<double>(wire) / costs_.bw;
}

void AgentLink::begin_image(const std::string& image_id) {
  charge_message(image_id.size());
  agent_.begin_image(image_id);
}

void AgentLink::send(const std::string& image_id,
                     const BackupAgent::Message& message) {
  charge_message(sizeof(dedup::ChunkDigest) + message.payload.size());
  ++stats_.chunks;
  stats_.payload_bytes += message.payload.size();
  agent_.receive(image_id, message);
}

void AgentLink::send_batch(const std::string& image_id,
                           const BackupAgent::ExtentBatch& batch) {
  charge_message(batch.digests.size() * sizeof(dedup::ChunkDigest) +
                 batch.extents.size() * costs_.extent_record_bytes +
                 batch.payload_sizes.size() * sizeof(std::uint32_t) +
                 batch.payload.size());
  stats_.extents += batch.extents.size();
  stats_.chunks += batch.digests.size();
  stats_.payload_bytes += batch.payload.size();
  agent_.receive_batch(image_id, batch);
}

}  // namespace shredder::backup
