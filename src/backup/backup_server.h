// Consolidated backup server with GPU-accelerated deduplication
// (paper §7.2, Figures 16–18).
//
// Pipeline per snapshot: the backup agent mounts/generates the image at the
// 10 Gb/s source rate; Shredder (or the pthreads baseline) chunks it with
// min/max sizes enabled; each chunk is SHA-256-fingerprinted — on the host
// store thread, or on the device by the pipeline's fingerprint stage when
// fingerprint_on_device is set; hashes are batched into the index-lookup
// queue; unique chunks ship to the backup site over the link while
// duplicates send pointers. All stages overlap, so the steady-state backup
// bandwidth is bounded by the slowest stage — the chunker for the CPU
// baseline, the host hash for the GPU-chunking path, and the generation
// source once hashing moves on-device too.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "backup/agent.h"
#include "backup/image.h"
#include "backup/link.h"
#include "backup/transport.h"
#include "chunking/chunk.h"
#include "chunking/parallel.h"
#include "core/shredder.h"
#include "dedup/index.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "retention/retention.h"
#include "service/service.h"

namespace shredder::backup {

// kShredderGpu owns a dedicated device; kSharedService chunks through a
// caller-provided multi-tenant ChunkingService, so several backup servers
// (or several concurrent snapshots of one server) share a single device.
enum class ChunkerBackend { kShredderGpu, kPthreadsCpu, kSharedService };

// Virtual-cost constants of the non-chunking stages (§7.3 calibration; the
// paper notes its index lookup and network access are unoptimized).
struct BackupCostModel {
  // Host SHA-256 over chunk payloads on the store path. The X5650 hashes
  // SHA-256 at ~150 MB/s per core, and Table 2 shows the backup host has
  // only a handful of spare cores once generation, index and network stages
  // are running — ~6 spare cores puts the sustained hash stage near 0.9 GB/s,
  // which is exactly why this is the stage worth offloading to the device
  // (Al-Kiswany et al., "GPUs as Storage System Accelerators").
  double host_hash_bw = 0.9e9;
  double index_probe_s = 3.5e-6;   // per-chunk lookup + queue handling
  double index_insert_s = 6.0e-6;  // extra work for a previously unseen chunk
  // Backup-site wire: 10 GbE bandwidth plus the framing model —
  // per-message handling, header bytes, extent-record bytes (link.h,
  // docs/backup_wire.md). The framing terms are what make per-chunk
  // messages a real term in the bandwidth equation at small chunk sizes,
  // and what the extent-coalesced protocol amortizes away.
  LinkCostModel link;
};

struct BackupServerConfig {
  ChunkerBackend backend = ChunkerBackend::kShredderGpu;
  // Fingerprint-index backend (docs/dedup_index.md): the paper-faithful
  // sharded map, or the ChunkStash-style sparse index that takes the probe
  // path off the critical path at small chunk sizes / low similarity.
  // Baseline probe/insert costs are taken from `costs` below so the fig18
  // calibration stays in one place; the sparse cost constants come from
  // `index.costs`.
  dedup::IndexConfig index;
  chunking::ChunkerConfig chunker{
      .window = 48,
      .mask_bits = 12,        // ~4 KB expected chunks
      .marker = 0x78,
      .min_size = 2 * 1024,   // commercial-backup style min/max (§7.3)
      .max_size = 16 * 1024,
  };
  BackupCostModel costs;
  core::ShredderConfig shredder;   // used when backend == kShredderGpu
  std::size_t cpu_threads = 12;    // pthreads baseline width
  // Fingerprint chunks on the device instead of the host store thread
  // (kShredderGpu and kSharedService backends; the CPU baseline ignores it).
  // The chunking pipeline then delivers chunk+digest pairs and the host
  // hashing stage disappears from the bandwidth equation.
  bool fingerprint_on_device = false;
  // Ship the backup stream as extent-coalesced batches — one wire message
  // per drained chunking buffer, duplicate-pointer runs collapsed into
  // {first, count} extent records (docs/backup_wire.md) — instead of one
  // message per chunk. Off reproduces the paper's per-chunk link framing
  // over the lossless fire-and-forget AgentLink; on, the batches ride the
  // windowed ack-clocked Transport below.
  bool batch_link = true;
  // Transport parameters for the batched path: window/RTO/repair knobs and
  // the injectable fault schedule (transport.h). Its framing costs are
  // overwritten from `costs.link` so the fig18 calibration stays in one
  // place. The defaults (no faults, instant applies) make the transport
  // behave like the lossless link plus one end-of-image control frame.
  TransportConfig transport;
  // Content-addressed store of every unique chunk this server has shipped —
  // the source the repair protocol serves re-requested digests from. Leave
  // null for a server-owned instance (constructed in deferred-reclaim mode
  // so snapshot deletes park chunks for the GC epoch protocol instead of
  // freeing them inline); pass one in to share (e.g. with a dedup_on_store
  // ChunkingService).
  std::shared_ptr<dedup::ChunkStore> store;
  // Modelled costs of the retention control plane (delete walks, GC sweeps,
  // manifest appends).
  retention::RetentionCostModel retention_costs;
  // Shared chunking service, required for kSharedService. Its chunker
  // configuration must equal `chunker` (streams must stay bit-identical to
  // a dedicated run) and its fingerprint_on_device flag must match; the
  // constructor enforces both.
  std::shared_ptr<service::ChunkingService> service;
  // Optional metrics registry (borrowed). The server publishes per-snapshot
  // backup.* counters/timings and index.* probe-outcome deltas. Null with a
  // shared service => the service's registry; null otherwise => no metrics.
  obs::Registry* registry = nullptr;
  // Optional virtual-time tracer (borrowed), forwarded to each snapshot's
  // Transport with the image id as the track label — frame send/retransmit/
  // ack/repair spans land on "transport/<image>/..." tracks.
  obs::Tracer* tracer = nullptr;
};

struct BackupRunStats {
  std::uint64_t bytes = 0;
  std::uint64_t chunks = 0;
  std::uint64_t duplicate_chunks = 0;
  std::uint64_t unique_bytes = 0;

  // Per-stage virtual time for this snapshot. With on-device fingerprinting
  // hashing_seconds is zero: the hash kernel rides inside chunking_seconds.
  double generation_seconds = 0;
  double chunking_seconds = 0;
  double hashing_seconds = 0;
  double index_seconds = 0;           // modelled index time this snapshot
  // Modelled wire time under the AgentLink framing model: per-message
  // handling + (headers, digests, extent records, payloads) over link_bw.
  double link_seconds = 0;
  double index_transfer_seconds = 0;  // index_seconds + link_seconds
  bool device_fingerprint = false;

  // Index-backend telemetry for this snapshot (deltas; sparse backend only
  // moves the flash/cache counters).
  dedup::IndexKind index_kind = dedup::IndexKind::kPaperBaseline;
  std::uint64_t index_flash_reads = 0;
  std::uint64_t index_cache_hits = 0;

  // Wire telemetry for this snapshot: messages shipped to the agent, extent
  // records inside batch messages (zero with per-chunk framing), and total
  // link bytes including framing overhead. These count the *logical* stream
  // (each original frame once); retransmissions, acks and repair traffic are
  // accounted in `transport` below.
  std::uint64_t link_messages = 0;
  std::uint64_t link_extents = 0;
  std::uint64_t wire_bytes = 0;

  // Full transport telemetry for the batched path (zeroed for the per-chunk
  // AgentLink path): retransmits, acks, window stalls, repair traffic,
  // makespan, goodput, degraded-health flag.
  TransportStats transport;
  bool link_degraded = false;

  // Steady-state pipelined time = slowest stage; and the headline number.
  double virtual_seconds = 0;
  double backup_bandwidth_gbps = 0;

  bool verified = false;  // backup-site reconstruction matched the image
  double wall_seconds = 0;
};

class BackupServer {
 public:
  explicit BackupServer(BackupServerConfig config);

  // Backs `image` up into `agent` under `image_id`, deduplicating against
  // everything this server has backed up before.
  BackupRunStats backup_image(const std::string& image_id, ByteSpan image,
                              const ImageRepository& repo, BackupAgent& agent);

  // One snapshot of a concurrent batch.
  struct SnapshotJob {
    std::string image_id;
    ByteSpan image;
  };

  // Backs up several snapshots against one device. With the kSharedService
  // backend every snapshot chunks concurrently as its own service tenant;
  // the dedup/transfer stage then runs per image in `jobs` order (the index
  // walk stays deterministic). Other backends degrade to a serial loop.
  std::vector<BackupRunStats> backup_images(const std::vector<SnapshotJob>& jobs,
                                            const ImageRepository& repo,
                                            BackupAgent& agent);

  const dedup::IndexBackend& index() const noexcept { return *index_; }
  const BackupServerConfig& config() const noexcept { return config_; }

  // --- Retention surface (src/retention): manifests, delete, GC, compaction.
  // Every snapshot shipped over the batched transport records a chunk
  // manifest here once the backup site verified; the per-chunk AgentLink
  // path takes no store references and leaves no manifest.
  retention::RetentionManager& retention() noexcept { return *retention_; }
  const retention::RetentionManager& retention() const noexcept {
    return *retention_;
  }

  // Deletes a previously backed-up snapshot server-side: walks its manifest
  // releasing one store reference per chunk occurrence; chunks that hit zero
  // refs await gc(). The backup site's copy is deleted separately via
  // BackupAgent::delete_image. Throws retention::RetentionError
  // (kUnknownImage for ids never shipped over the batched path;
  // kAlreadyDeleted on a repeat delete). A deleted id may be backed up
  // again afterwards — to a fresh agent, since the old one seals ids.
  retention::RetentionManager::DeleteStats delete_image(
      const std::string& image_id);

  // Epoch-advancing GC sweep over chunks zeroed by deletes (retention.h).
  retention::RetentionManager::GcStats gc();

  // Entry-log compaction: rewrites the sparse index's containers dropping
  // entries whose chunks the store no longer holds, then compacts the
  // manifest log. With the baseline map backend only the manifest log
  // compacts (a RAM map has no entry log to rewrite).
  retention::RetentionManager::CompactStats compact_index();

 private:
  // Chunking stage: fills `chunks` (and `digests` when the backend
  // fingerprints on-device), records the drained-buffer batch structure as
  // cumulative chunk counts in `batch_ends` (the granularity of the wire
  // batches downstream), and returns the virtual chunking seconds.
  double chunk_image(const std::string& image_id, ByteSpan image,
                     std::vector<chunking::Chunk>& chunks,
                     std::vector<dedup::ChunkDigest>& digests,
                     std::vector<std::size_t>& batch_ends);
  // Hash + index + transfer + verification stages shared by all paths.
  // `digests` empty => hash on the host; otherwise they are the
  // device-precomputed fingerprints, 1:1 with `chunks`.
  BackupRunStats dedup_and_ship(const std::string& image_id, ByteSpan image,
                                std::vector<chunking::Chunk> chunks,
                                std::vector<dedup::ChunkDigest> digests,
                                std::vector<std::size_t> batch_ends,
                                double generation_seconds,
                                double chunking_seconds, BackupAgent& agent);

  // Builds the per-snapshot transport configuration: server defaults, link
  // costs from the cost model, then any per-tenant overrides registered with
  // the shared service (kSharedService backend only).
  TransportConfig transport_config(const std::string& image_id) const;

  // Publishes one finished snapshot's deltas into registry_ (no-op when
  // the server has no registry).
  void publish_run_stats(const BackupRunStats& stats,
                         const dedup::IndexStats& index_before,
                         const dedup::IndexStats& index_after);

  BackupServerConfig config_;
  obs::Registry* registry_ = nullptr;  // resolved in the constructor
  std::unique_ptr<dedup::IndexBackend> index_;
  std::shared_ptr<dedup::ChunkStore> store_;  // repair source (batched path)
  std::unique_ptr<retention::RetentionManager> retention_;
  std::unique_ptr<core::Shredder> shredder_;        // GPU backend
  std::unique_ptr<rabin::RabinTables> cpu_tables_;  // CPU backend
  std::unique_ptr<chunking::ParallelChunker> cpu_chunker_;
  std::uint64_t next_store_offset_ = 0;
  // Each snapshot probes the index as its own stream: the sparse backend's
  // container prefetch cache is per-stream, matching backup locality.
  std::uint32_t next_index_stream_ = 0;
};

}  // namespace shredder::backup
