#include "backup/transport.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace shredder::backup {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

Transport::Transport(BackupAgent& agent, TransportConfig config,
                     RepairSource repair)
    : agent_(agent),
      cfg_(std::move(config)),
      repair_(std::move(repair)),
      rng_(cfg_.faults.seed) {
  if (cfg_.window_frames == 0 || cfg_.recv_frames == 0 ||
      cfg_.reorder_slots == 0 || cfg_.max_frame_bytes == 0 ||
      cfg_.repair_batch == 0 || cfg_.repair_window == 0) {
    throw std::invalid_argument("Transport: zero-sized window/buffer");
  }
  peer_window_ = cfg_.recv_frames;
  if (cfg_.tracer != nullptr) {
    track_tx_ = "transport/" + cfg_.trace_label + "/tx";
    track_rx_ = "transport/" + cfg_.trace_label + "/rx";
    track_agent_ = "agent/" + cfg_.trace_label;
    track_stall_ = "transport/" + cfg_.trace_label + "/stall";
  }
}

// --- sender API ----------------------------------------------------------

void Transport::begin_image(const std::string& image_id) {
  Frame f;
  f.kind = Frame::Kind::kBegin;
  f.image_id = image_id;
  f.content_bytes = image_id.size();
  enqueue(std::move(f));
  image_chunks_.try_emplace(image_id, 0);
  pump(cfg_.window_frames);
}

void Transport::send_batch(const std::string& image_id,
                           const BackupAgent::ExtentBatch& batch) {
  image_chunks_[image_id] += batch.digests.size();
  // Segment at chunk boundaries so no data frame carries more than
  // max_frame_bytes of content. Per chunk: one digest record, possibly a new
  // extent record, and (for unique chunks) one size record plus the payload.
  BackupAgent::ExtentBatch part;
  std::size_t content = 0;
  std::size_t next_size = 0;   // index into batch.payload_sizes
  std::size_t payload_off = 0;
  auto seal = [&] {
    if (part.digests.empty()) return;
    Frame f;
    f.image_id = image_id;
    f.content_bytes = content;
    f.batch = std::move(part);
    enqueue(std::move(f));
    part = {};
    content = 0;
  };
  for (const auto& e : batch.extents) {
    for (std::uint32_t k = 0; k < e.count; ++k) {
      std::size_t sz = 0;
      std::size_t delta = sizeof(dedup::ChunkDigest);
      if (e.unique) {
        sz = batch.payload_sizes[next_size];
        delta += sizeof(std::uint32_t) + sz;
      }
      const bool open_run =
          !part.extents.empty() && part.extents.back().unique == e.unique;
      if (!open_run) delta += cfg_.link.extent_record_bytes;
      if (content > 0 && content + delta > cfg_.max_frame_bytes) {
        seal();
        delta = sizeof(dedup::ChunkDigest) + cfg_.link.extent_record_bytes +
                (e.unique ? sizeof(std::uint32_t) + sz : 0);
      }
      const auto idx = static_cast<std::uint32_t>(part.digests.size());
      part.digests.push_back(batch.digests[e.first + k]);
      if (part.extents.empty() || part.extents.back().unique != e.unique) {
        part.extents.push_back({idx, 1, e.unique});
      } else {
        ++part.extents.back().count;
      }
      if (e.unique) {
        part.payload_sizes.push_back(static_cast<std::uint32_t>(sz));
        part.payload.insert(part.payload.end(),
                            batch.payload.begin() + payload_off,
                            batch.payload.begin() + payload_off + sz);
        payload_off += sz;
        ++next_size;
      }
      content += delta;
    }
  }
  seal();
  pump(cfg_.window_frames);
}

void Transport::send_batch(const std::string& image_id,
                           BackupAgent::ExtentBatch&& batch) {
  if (batch.digests.empty()) return;
  // Closed-form content size; batch.extents may be slightly less coalesced
  // than what the segmenting path would rebuild, so this is conservative —
  // a batch judged too big here just takes the copying path.
  const std::size_t content =
      batch.digests.size() * sizeof(dedup::ChunkDigest) +
      batch.extents.size() * cfg_.link.extent_record_bytes +
      batch.payload_sizes.size() * sizeof(std::uint32_t) +
      batch.payload.size();
  if (content > cfg_.max_frame_bytes) {
    send_batch(image_id, batch);  // segmenting copy path
    return;
  }
  image_chunks_[image_id] += batch.digests.size();
  Frame f;
  f.image_id = image_id;
  f.content_bytes = content;
  f.batch = std::move(batch);
  enqueue(std::move(f));
  pump(cfg_.window_frames);
}

void Transport::end_image(const std::string& image_id) {
  Frame f;
  f.kind = Frame::Kind::kEnd;
  f.image_id = image_id;
  f.expected_chunks = image_chunks_[image_id];
  f.content_bytes = image_id.size() + sizeof(std::uint64_t);
  enqueue(std::move(f));
  pump(cfg_.window_frames);
}

void Transport::flush() {
  pump(0);
  stats_.virtual_seconds = now_;
  stats_.goodput_bps =
      now_ > 0 ? static_cast<double>(stats_.link.payload_bytes) * 8.0 / now_
               : 0.0;
  const double retx_share =
      static_cast<double>(stats_.retransmits) /
      static_cast<double>(std::max<std::uint64_t>(1, stats_.frames_sent));
  const double stall_share =
      now_ > 0 ? stats_.window_stall_seconds / now_ : 0.0;
  stats_.degraded = retx_share >= cfg_.degraded_retransmit_rate ||
                    stall_share >= cfg_.degraded_stall_fraction;
}

// --- sender internals ----------------------------------------------------

void Transport::enqueue(Frame frame) {
  frame.seq = next_seq_++;
  backlog_.push_back(std::make_shared<const Frame>(std::move(frame)));
}

bool Transport::can_send() const {
  return !backlog_.empty() && unacked_.size() < cfg_.window_frames &&
         unacked_.size() < peer_window_;
}

void Transport::transmit_next() {
  FramePtr frame = backlog_.front();
  backlog_.pop_front();
  Outstanding out;
  out.frame = frame;
  out.rto = cfg_.rto_s;
  const double finish = [&] {
    // Charge the logical link exactly as AgentLink would have: once per
    // original frame, per-message handling plus framed bytes over bw. The
    // retransmit path never touches these counters.
    const std::size_t wire = cfg_.link.msg_header_bytes + frame->content_bytes;
    ++stats_.link.messages;
    stats_.link.wire_bytes += wire;
    stats_.link.virtual_seconds +=
        cfg_.link.msg_s + static_cast<double>(wire) / cfg_.link.bw;
    if (frame->kind == Frame::Kind::kData) {
      stats_.link.extents += frame->batch.extents.size();
      stats_.link.chunks += frame->batch.digests.size();
      stats_.link.payload_bytes += frame->batch.payload.size();
    }
    ++stats_.frames_sent;
    const char* what = frame->kind == Frame::Kind::kBegin  ? "begin"
                       : frame->kind == Frame::Kind::kEnd  ? "end"
                                                           : "data";
    return wire_send(0, frame->content_bytes, what, [frame](double t) {
      Event ev;
      ev.t = t;
      ev.kind = Event::Kind::kFrameArrive;
      ev.frame = frame;
      return ev;
    });
  }();
  out.expires = finish + out.rto;
  unacked_.emplace(frame->seq, std::move(out));
}

void Transport::retransmit_frame(Outstanding& out) {
  ++out.retx;
  // Payload exhaustion: ship the metadata alone and let the repair protocol
  // recover the bytes — only when a repair source exists to serve them.
  if (repair_ && out.frame->kind == Frame::Kind::kData &&
      !out.frame->stripped && !out.frame->batch.payload.empty() &&
      out.retx > cfg_.max_payload_retx) {
    Frame stripped = *out.frame;
    stripped.stripped = true;
    stripped.batch.payload.clear();
    stripped.content_bytes -= out.frame->batch.payload.size();
    out.frame = std::make_shared<const Frame>(std::move(stripped));
    ++stats_.payloads_stripped;
  }
  ++stats_.retransmits;
  stats_.retransmit_wire_bytes +=
      cfg_.link.msg_header_bytes + out.frame->content_bytes;
  ++stats_.frames_sent;
  const FramePtr frame = out.frame;
  const double finish =
      wire_send(0, frame->content_bytes,
                frame->stripped ? "retx_stripped" : "retx", [frame](double t) {
        Event ev;
        ev.t = t;
        ev.kind = Event::Kind::kFrameArrive;
        ev.frame = frame;
        return ev;
      });
  out.rto = std::min(out.rto * cfg_.rto_backoff, cfg_.rto_max_s);
  out.expires = finish + out.rto;
}

void Transport::handle_ack(const Ack& ack) {
  while (!unacked_.empty() && unacked_.begin()->first < ack.cum) {
    unacked_.erase(unacked_.begin());
  }
  for (const std::uint64_t seq : ack.sacks) {
    const auto it = unacked_.find(seq);
    if (it != unacked_.end()) it->second.sacked = true;
  }
  if (ack.cum > max_cum_seen_) {
    max_cum_seen_ = ack.cum;
    peer_window_ = ack.window;
    dup_acks_ = 0;
  } else if (ack.cum == max_cum_seen_) {
    // Same cumulative point again: a window update (apply finished) and/or a
    // duplicate ack hinting at a gap the receiver is parked on. Only acks
    // that carry selective blocks are gap evidence — a pure window update
    // repeats the cumulative seq with nothing parked, and counting it would
    // fire spurious fast retransmits on every slow-apply reopen.
    peer_window_ = ack.window;
    if (ack.sacks.empty()) dup_acks_ = 0;
    if (!ack.sacks.empty() && !unacked_.empty() && ++dup_acks_ >= 3) {
      dup_acks_ = 0;
      for (auto& [seq, out] : unacked_) {
        if (!out.sacked) {
          if (!out.fast_done) {
            out.fast_done = true;
            ++stats_.fast_retransmits;
            retransmit_frame(out);
          }
          break;
        }
      }
    }
  }
  if (peer_window_ > 0) probing_ = false;
}

void Transport::fire_probe() {
  ++stats_.probes;
  ++stats_.frames_sent;
  Frame probe;
  probe.kind = Frame::Kind::kProbe;
  auto frame = std::make_shared<const Frame>(std::move(probe));
  wire_send(0, 0, "probe", [frame](double t) {
    Event ev;
    ev.t = t;
    ev.kind = Event::Kind::kFrameArrive;
    ev.frame = frame;
    return ev;
  });
  probe_rto_ = std::min(probe_rto_ * cfg_.rto_backoff, cfg_.rto_max_s);
  probe_deadline_ = now_ + probe_rto_;
}

void Transport::serve_repair(const std::vector<dedup::ChunkDigest>& digests) {
  // Pack repaired payloads into frames of at most max_frame_bytes content:
  // per chunk a digest record, a size record, and the bytes.
  std::vector<std::pair<dedup::ChunkDigest, ByteVec>> out;
  std::size_t content = 0;
  auto ship = [&] {
    if (out.empty()) return;
    ++stats_.repair_frames;
    ++stats_.frames_sent;
    auto repairs = std::make_shared<
        std::vector<std::pair<dedup::ChunkDigest, ByteVec>>>(std::move(out));
    wire_send(0, content, "repair_data", [repairs](double t) {
      Event ev;
      ev.t = t;
      ev.kind = Event::Kind::kRepairDataArrive;
      ev.repairs = *repairs;
      return ev;
    });
    out.clear();
    content = 0;
  };
  for (const auto& digest : digests) {
    auto payload = repair_(digest);
    if (!payload.has_value()) {
      throw std::logic_error(
          "Transport: repair requested for a digest the server cannot serve");
    }
    const std::size_t delta = sizeof(dedup::ChunkDigest) +
                              sizeof(std::uint32_t) + payload->size();
    if (content > 0 && content + delta > cfg_.max_frame_bytes) ship();
    stats_.repair_payload_bytes += payload->size();
    content += delta;
    out.emplace_back(digest, std::move(*payload));
  }
  ship();
}

// --- receiver (agent) side -----------------------------------------------

std::size_t Transport::advertised_window() const {
  const std::size_t used = parked_.size() + apply_outstanding_;
  return used >= cfg_.recv_frames ? 0 : cfg_.recv_frames - used;
}

void Transport::on_frame(const FramePtr& frame) {
  if (frame->kind == Frame::Kind::kProbe) {
    send_ack();  // a probe just elicits a fresh window report
    return;
  }
  if (frame->seq < cum_) {
    ++stats_.duplicate_frames;
    send_ack();
    return;
  }
  if (frame->seq == cum_) {
    deliver(frame);
    ++cum_;
    while (!parked_.empty() && parked_.begin()->first == cum_) {
      deliver(parked_.begin()->second);
      parked_.erase(parked_.begin());
      ++cum_;
    }
    send_ack();
    return;
  }
  // Out of order: park it if a reassembly slot is free and the frame is
  // within the receive window; otherwise drop it honestly (no ack — the
  // sender's RTO recovers).
  if (parked_.count(frame->seq)) {
    ++stats_.duplicate_frames;
    send_ack();
    return;
  }
  if (parked_.size() >= cfg_.reorder_slots ||
      frame->seq >= cum_ + cfg_.recv_frames) {
    ++stats_.reassembly_drops;
    return;
  }
  parked_.emplace(frame->seq, frame);
  ++stats_.out_of_order_frames;
  send_ack();
}

void Transport::deliver(const FramePtr& frame) {
  switch (frame->kind) {
    case Frame::Kind::kBegin:
      agent_.begin_image(frame->image_id);
      break;
    case Frame::Kind::kData:
      if (frame->stripped) {
        queue_repair(agent_.receive_stripped(frame->image_id, frame->batch));
      } else {
        agent_.receive_batch(frame->image_id, frame->batch);
      }
      break;
    case Frame::Kind::kEnd: {
      agent_.end_image(frame->image_id, frame->expected_chunks);
      // Safety net: re-request any recipe gap that is neither in flight nor
      // queued (e.g. a repair lost after its pending entry was recorded).
      std::vector<dedup::ChunkDigest> gaps;
      for (const auto& digest : agent_.missing_chunks(frame->image_id)) {
        if (repair_inflight_.count(digest)) continue;
        if (std::find(repair_backlog_.begin(), repair_backlog_.end(),
                      digest) != repair_backlog_.end()) {
          continue;
        }
        gaps.push_back(digest);
      }
      queue_repair(std::move(gaps));
      break;
    }
    case Frame::Kind::kProbe:
      break;
  }
  // Model the apply occupancy: a slow agent holds a receive buffer for
  // content/apply_bw (plus any fault-injected stall), shrinking the window
  // it advertises — the backpressure that reaches the sender.
  double cost = cfg_.agent_apply_bw > 0
                    ? static_cast<double>(frame->content_bytes) /
                          cfg_.agent_apply_bw
                    : 0.0;
  bool stalled = false;
  if (cfg_.faults.stall > 0 && rng_.next_double() < cfg_.faults.stall) {
    cost += cfg_.faults.stall_s;
    ++stats_.agent_stalls;
    stats_.agent_stall_seconds += cfg_.faults.stall_s;
    stalled = true;
  }
  if (cost > 0) {
    const double apply_start = std::max(now_, apply_busy_until_);
    apply_busy_until_ = apply_start + cost;
    ++apply_outstanding_;
    if (cfg_.tracer != nullptr) {
      cfg_.tracer->span(track_agent_, stalled ? "apply+stall" : "apply",
                        apply_start, apply_busy_until_,
                        {{"seq", std::to_string(frame->seq)}});
    }
    Event ev;
    ev.t = apply_busy_until_;
    ev.kind = Event::Kind::kApplyDone;
    schedule(std::move(ev));
  }
}

void Transport::send_ack() {
  Ack ack;
  ack.cum = cum_;
  ack.sacks.reserve(parked_.size());
  for (const auto& [seq, f] : parked_) ack.sacks.push_back(seq);
  ack.window = advertised_window();
  if (ack.window == 0) window_was_zero_ = true;
  const std::size_t content = sizeof(std::uint64_t) +
                              ack.sacks.size() * sizeof(std::uint64_t) +
                              sizeof(std::uint32_t);
  ++stats_.acks_sent;
  stats_.ack_wire_bytes += cfg_.link.msg_header_bytes + content;
  wire_send(1, content, "ack", [ack](double t) {
    Event ev;
    ev.t = t;
    ev.kind = Event::Kind::kAckArrive;
    ev.ack = ack;
    return ev;
  });
}

void Transport::queue_repair(std::vector<dedup::ChunkDigest> digests) {
  for (auto& digest : digests) repair_backlog_.push_back(digest);
}

void Transport::send_repair_requests() {
  while (!repair_backlog_.empty() &&
         repair_inflight_.size() < cfg_.repair_window) {
    std::vector<dedup::ChunkDigest> batch;
    const std::size_t room = cfg_.repair_window - repair_inflight_.size();
    const std::size_t n =
        std::min({repair_backlog_.size(), cfg_.repair_batch, room});
    batch.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      batch.push_back(repair_backlog_.front());
      repair_backlog_.pop_front();
    }
    ++stats_.repair_requests;
    stats_.repair_digests_requested += batch.size();
    auto shared = std::make_shared<std::vector<dedup::ChunkDigest>>(batch);
    const double finish =
        wire_send(1, batch.size() * sizeof(dedup::ChunkDigest), "repair_req",
                  [shared](double t) {
                    Event ev;
                    ev.t = t;
                    ev.kind = Event::Kind::kRepairReqArrive;
                    ev.digests = *shared;
                    return ev;
                  });
    for (const auto& digest : batch) {
      PendingRepair pr;
      pr.rto = cfg_.repair_rto_s;
      pr.expires = finish + pr.rto;
      repair_inflight_.insert_or_assign(digest, pr);
    }
  }
}

void Transport::on_repair_data(
    std::vector<std::pair<dedup::ChunkDigest, ByteVec>>&& repairs) {
  for (auto& [digest, payload] : repairs) {
    // The event owns this delivery's copy of the payload; hand it to the
    // agent instead of re-copying. A duplicated repair frame returns false
    // before touching the vector.
    agent_.receive_repair(digest, std::move(payload));
    repair_inflight_.erase(digest);
  }
}

// --- wire + event machinery ----------------------------------------------

double Transport::wire_send(int dir, std::size_t content, const char* what,
                            const std::function<Event(double)>& make_event) {
  double& busy = dir == 0 ? tx_busy_until_ : rx_busy_until_;
  const std::size_t wire = cfg_.link.msg_header_bytes + content;
  const double start = std::max(now_, busy);
  const double finish =
      start + cfg_.link.msg_s + static_cast<double>(wire) / cfg_.link.bw;
  busy = finish;
  if (cfg_.tracer != nullptr) {
    cfg_.tracer->span(dir == 0 ? track_tx_ : track_rx_, what, start, finish,
                      {{"bytes", std::to_string(wire)}});
  }
  if (cfg_.faults.drop > 0 && rng_.next_double() < cfg_.faults.drop) {
    ++stats_.frames_dropped;
    if (cfg_.tracer != nullptr) {
      cfg_.tracer->instant(dir == 0 ? track_tx_ : track_rx_, "drop", finish,
                           {{"frame", what}});
    }
    return finish;
  }
  double arrive = finish + cfg_.latency_s;
  if (cfg_.faults.delay > 0 && rng_.next_double() < cfg_.faults.delay) {
    arrive += cfg_.faults.delay_s;
    ++stats_.frames_delayed;
  }
  if (cfg_.faults.reorder > 0 && rng_.next_double() < cfg_.faults.reorder) {
    arrive += cfg_.faults.reorder_jitter_s * rng_.next_double();
    ++stats_.frames_reordered;
  }
  schedule(make_event(arrive));
  if (cfg_.faults.duplicate > 0 &&
      rng_.next_double() < cfg_.faults.duplicate) {
    ++stats_.frames_duplicated;
    schedule(make_event(arrive + cfg_.faults.reorder_jitter_s *
                                     (0.1 + rng_.next_double())));
  }
  return finish;
}

void Transport::schedule(Event ev) {
  ev.id = next_event_id_++;
  events_.push(std::move(ev));
}

double Transport::next_timeout() const {
  double t = kInf;
  for (const auto& [seq, out] : unacked_) {
    if (!out.sacked) t = std::min(t, out.expires);
  }
  if (probing_) t = std::min(t, probe_deadline_);
  for (const auto& [digest, pr] : repair_inflight_) {
    t = std::min(t, pr.expires);
  }
  return t;
}

void Transport::fire_timeouts() {
  // One action per call: the pump loop re-evaluates after every step.
  // Earliest expired unsacked data frame first.
  Outstanding* earliest = nullptr;
  for (auto& [seq, out] : unacked_) {
    if (out.sacked || out.expires > now_) continue;
    if (!earliest || out.expires < earliest->expires) earliest = &out;
  }
  if (earliest) {
    ++stats_.rto_fires;
    retransmit_frame(*earliest);
    return;
  }
  if (probing_ && probe_deadline_ <= now_) {
    fire_probe();
    return;
  }
  // Expired repair requests: re-request a batch, sorted by digest bytes so
  // the schedule is deterministic regardless of hash-map iteration order.
  std::vector<dedup::ChunkDigest> expired;
  for (const auto& [digest, pr] : repair_inflight_) {
    if (pr.expires <= now_) expired.push_back(digest);
  }
  if (expired.empty()) return;
  std::sort(expired.begin(), expired.end(),
            [](const dedup::ChunkDigest& a, const dedup::ChunkDigest& b) {
              return a.bytes < b.bytes;
            });
  if (expired.size() > cfg_.repair_batch) expired.resize(cfg_.repair_batch);
  ++stats_.repair_requests;
  stats_.repair_digests_requested += expired.size();
  stats_.repair_retries += expired.size();
  auto shared = std::make_shared<std::vector<dedup::ChunkDigest>>(expired);
  const double finish =
      wire_send(1, expired.size() * sizeof(dedup::ChunkDigest), "repair_req",
                [shared](double t) {
                  Event ev;
                  ev.t = t;
                  ev.kind = Event::Kind::kRepairReqArrive;
                  ev.digests = *shared;
                  return ev;
                });
  for (const auto& digest : expired) {
    auto& pr = repair_inflight_[digest];
    ++pr.retries;
    pr.rto = std::min(pr.rto * cfg_.rto_backoff, cfg_.rto_max_s);
    pr.expires = finish + pr.rto;
  }
}

bool Transport::idle() const {
  return backlog_.empty() && unacked_.empty() && parked_.empty() &&
         apply_outstanding_ == 0 && repair_backlog_.empty() &&
         repair_inflight_.empty() && events_.empty();
}

void Transport::pump(std::size_t target_backlog) {
  while (true) {
    while (can_send()) transmit_next();
    send_repair_requests();
    // Zero-window persist: nothing outstanding to clock an ack, data queued,
    // window shut — arm the probe timer instead of deadlocking.
    if (backlog_.empty()) {
      probing_ = false;
    } else if (unacked_.empty() && peer_window_ == 0 && !probing_) {
      probing_ = true;
      probe_rto_ = cfg_.rto_s;
      probe_deadline_ = now_ + probe_rto_;
    }
    if (target_backlog > 0) {
      if (backlog_.size() <= target_backlog) return;
    } else if (idle()) {
      return;
    }
    const double tq = events_.empty() ? kInf : events_.top().t;
    const double tt = next_timeout();
    const double tnext = std::min(tq, tt);
    if (tnext == kInf) return;  // nothing can make progress (unreachable)
    // Window-stall accounting: the sender has frames spooled but the flow-
    // control window (its own or the agent's advertised one) is shut. Only
    // counts once the tx wire has drained — while it is still serializing
    // earlier frames the wire, not the window, is the binding constraint.
    const bool blocked =
        !backlog_.empty() && !can_send() && tx_busy_until_ <= now_;
    if (blocked) {
      if (!stalled_) {
        stalled_ = true;
        ++stats_.window_stalls;
      }
      const double stall = std::max(0.0, tnext - now_);
      stats_.window_stall_seconds += stall;
      if (cfg_.tracer != nullptr && stall > 0) {
        cfg_.tracer->span(track_stall_, "window_stall", now_, tnext);
      }
    } else {
      stalled_ = false;
    }
    now_ = std::max(now_, tnext);
    if (tt <= tq) {
      fire_timeouts();
      continue;
    }
    Event ev = events_.top();
    events_.pop();
    switch (ev.kind) {
      case Event::Kind::kFrameArrive:
        on_frame(ev.frame);
        break;
      case Event::Kind::kAckArrive:
        handle_ack(ev.ack);
        break;
      case Event::Kind::kRepairReqArrive:
        serve_repair(ev.digests);
        break;
      case Event::Kind::kRepairDataArrive:
        on_repair_data(std::move(ev.repairs));
        break;
      case Event::Kind::kApplyDone:
        if (apply_outstanding_ > 0) --apply_outstanding_;
        if (window_was_zero_ && advertised_window() > 0) {
          window_was_zero_ = false;
          send_ack();  // window-update so the sender can resume
        }
        break;
    }
  }
}

}  // namespace shredder::backup
