#include "backup/agent.h"

#include <algorithm>

#include "common/check.h"

namespace shredder::backup {

BackupAgent::BackupAgent(dedup::IndexConfig catalog_config)
    : catalog_(dedup::make_index(catalog_config)) {}

bool BackupAgent::begin_image(const std::string& image_id) {
  auto [it, inserted] = recipes_.try_emplace(image_id);
  if (!inserted && it->second.sealed) {
    // Re-opening a sealed image would silently fork its recipe; a
    // retransmitted begin for a still-open image is just the transport
    // re-delivering a control frame and must be harmless.
    throw ProtocolError(ProtocolViolation::kDuplicateImage,
                        "BackupAgent: image already sealed: " + image_id);
  }
  return inserted;
}

void BackupAgent::end_image(const std::string& image_id,
                            std::uint64_t expected_chunks) {
  const auto it = recipes_.find(image_id);
  if (it == recipes_.end()) {
    throw ProtocolError(ProtocolViolation::kUnknownImage,
                        "BackupAgent: unknown image: " + image_id);
  }
  if (expected_chunks != 0 && expected_chunks != it->second.chunks.size()) {
    throw ProtocolError(
        ProtocolViolation::kRecipeLengthMismatch,
        "BackupAgent: end_image chunk count does not match recipe: " +
            image_id);
  }
  it->second.sealed = true;  // idempotent: sealing twice changes nothing
}

bool BackupAgent::image_sealed(const std::string& image_id) const {
  const auto it = recipes_.find(image_id);
  return it != recipes_.end() && it->second.sealed;
}

BackupAgent::Recipe& BackupAgent::open_recipe(const std::string& image_id) {
  const auto it = recipes_.find(image_id);
  if (it == recipes_.end()) {
    throw ProtocolError(ProtocolViolation::kUnknownImage,
                        "BackupAgent: unknown image: " + image_id);
  }
  if (it->second.sealed) {
    throw ProtocolError(ProtocolViolation::kSealedImage,
                        "BackupAgent: data frame for sealed image: " +
                            image_id);
  }
  return it->second;
}

std::size_t BackupAgent::validate_batch(
    std::size_t n_digests, const std::vector<ExtentBatch::Extent>& extents,
    const std::vector<std::uint32_t>& payload_sizes, std::size_t payload_bytes,
    bool stripped) {
  std::size_t covered = 0;
  std::size_t n_unique = 0;
  for (const auto& e : extents) {
    if (e.first != covered || e.count == 0) {
      throw ProtocolError(ProtocolViolation::kBadExtentPartition,
                          "BackupAgent: extents do not partition the batch");
    }
    covered += e.count;
    if (e.unique) n_unique += e.count;
  }
  if (covered != n_digests) {
    throw ProtocolError(ProtocolViolation::kBadExtentPartition,
                        "BackupAgent: extents do not partition the batch");
  }
  if (payload_sizes.size() != n_unique) {
    throw ProtocolError(ProtocolViolation::kPayloadCountMismatch,
                        "BackupAgent: payload_sizes/unique-chunk count "
                        "mismatch");
  }
  std::uint64_t payload_total = 0;
  for (const std::uint32_t sz : payload_sizes) {
    if (sz == 0) {
      throw ProtocolError(ProtocolViolation::kEmptyChunk,
                          "BackupAgent: zero-byte unique chunk");
    }
    payload_total += sz;
  }
  // A stripped frame advertises sizes but ships no bytes; a full frame's
  // payload must slice exactly into the advertised sizes.
  const std::uint64_t expected = stripped ? 0 : payload_total;
  if (expected != payload_bytes) {
    throw ProtocolError(ProtocolViolation::kPayloadBytesMismatch,
                        "BackupAgent: payload bytes do not match "
                        "payload_sizes");
  }
  return n_unique;
}

void BackupAgent::admit_chunk(const dedup::ChunkDigest& digest,
                              ByteSpan bytes) {
  store_.put(digest, bytes);
  catalog_->lookup_or_insert(
      digest, dedup::ChunkLocation{catalog_offset_, bytes.size()});
  catalog_offset_ += bytes.size();
}

void BackupAgent::admit_chunk(const dedup::ChunkDigest& digest,
                              ByteVec&& bytes) {
  const std::size_t size = bytes.size();
  store_.put(digest, std::move(bytes));
  catalog_->lookup_or_insert(digest, dedup::ChunkLocation{catalog_offset_, size});
  catalog_offset_ += size;
}

void BackupAgent::receive(const std::string& image_id,
                          const Message& message) {
  // One-chunk shim over the batch protocol: a pointer is a single
  // duplicate extent, a payload chunk a single unique extent. The payload
  // rides as a view, never copied.
  const std::vector<dedup::ChunkDigest> digests{message.digest};
  const bool unique = !message.payload.empty();
  const std::vector<ExtentBatch::Extent> extents{{0, 1, unique}};
  std::vector<std::uint32_t> payload_sizes;
  if (unique) {
    payload_sizes.push_back(static_cast<std::uint32_t>(message.payload.size()));
  }
  apply_batch(image_id, digests, extents, payload_sizes,
              as_bytes(message.payload));
}

void BackupAgent::receive_batch(const std::string& image_id,
                                const ExtentBatch& batch) {
  apply_batch(image_id, batch.digests, batch.extents, batch.payload_sizes,
              as_bytes(batch.payload));
}

void BackupAgent::apply_batch(const std::string& image_id,
                              const std::vector<dedup::ChunkDigest>& digests,
                              const std::vector<ExtentBatch::Extent>& extents,
                              const std::vector<std::uint32_t>& payload_sizes,
                              ByteSpan payload) {
  auto& recipe = open_recipe(image_id);
  validate_batch(digests.size(), extents, payload_sizes, payload.size(),
                 /*stripped=*/false);

  std::size_t next_size = 0;  // index into payload_sizes
  std::size_t payload_off = 0;
  for (const auto& e : extents) {
    for (std::uint32_t k = 0; k < e.count; ++k) {
      const dedup::ChunkDigest& digest = digests[e.first + k];
      if (e.unique) {
        const std::size_t sz = payload_sizes[next_size++];
        admit_chunk(digest, payload.subspan(payload_off, sz));
        payload_off += sz;
      } else if (const auto pending = pending_repair_.find(digest);
                 pending != pending_repair_.end()) {
        // Pointer to a chunk whose payload is still in flight on the repair
        // path: defer the reference until the repair lands.
        ++pending->second;
      } else {
        // Membership goes through the catalog index (the modelled probe);
        // the ref-counted store stays the ground truth for payload bytes.
        if (!catalog_->lookup(digest).has_value() ||
            !store_.add_ref(digest)) {
          throw ProtocolError(
              ProtocolViolation::kUnknownPointer,
              "BackupAgent: pointer to unknown chunk (protocol violation)");
        }
      }
      recipe.chunks.push_back(digest);
    }
  }
}

std::vector<dedup::ChunkDigest> BackupAgent::receive_stripped(
    const std::string& image_id, const ExtentBatch& batch) {
  auto& recipe = open_recipe(image_id);
  validate_batch(batch.digests.size(), batch.extents, batch.payload_sizes,
                 batch.payload.size(), /*stripped=*/true);

  std::vector<dedup::ChunkDigest> newly_missing;
  for (const auto& e : batch.extents) {
    for (std::uint32_t k = 0; k < e.count; ++k) {
      const dedup::ChunkDigest& digest = batch.digests[e.first + k];
      if (!e.unique) {
        if (const auto pending = pending_repair_.find(digest);
            pending != pending_repair_.end()) {
          ++pending->second;
        } else if (!catalog_->lookup(digest).has_value() ||
                   !store_.add_ref(digest)) {
          throw ProtocolError(
              ProtocolViolation::kUnknownPointer,
              "BackupAgent: pointer to unknown chunk (protocol violation)");
        }
        recipe.chunks.push_back(digest);
        continue;
      }
      // Unique chunk whose payload was stripped by the sender. If the store
      // already holds it (an earlier image shipped the bytes) this is just a
      // reference; otherwise the digest becomes repair-pending.
      if (store_.add_ref(digest)) {
        recipe.chunks.push_back(digest);
        continue;
      }
      const auto [pending, inserted] = pending_repair_.try_emplace(digest, 1);
      if (!inserted) {
        ++pending->second;
      } else {
        newly_missing.push_back(digest);
      }
      recipe.chunks.push_back(digest);
    }
  }
  return newly_missing;
}

bool BackupAgent::receive_repair(const dedup::ChunkDigest& digest,
                                 ByteSpan payload) {
  const auto pending = pending_repair_.find(digest);
  if (pending == pending_repair_.end()) {
    return false;  // duplicated repair frame — already materialized
  }
  if (dedup::ChunkHasher::hash(payload) != digest) {
    throw ProtocolError(ProtocolViolation::kBadRepairPayload,
                        "BackupAgent: repair payload does not hash to its "
                        "digest");
  }
  const std::uint64_t refs = pending->second;
  pending_repair_.erase(pending);
  admit_chunk(digest, payload);  // stores with one reference
  for (std::uint64_t r = 1; r < refs; ++r) store_.add_ref(digest);
  return true;
}

bool BackupAgent::receive_repair(const dedup::ChunkDigest& digest,
                                 ByteVec&& payload) {
  const auto pending = pending_repair_.find(digest);
  if (pending == pending_repair_.end()) {
    return false;  // duplicated repair frame — already materialized
  }
  if (dedup::ChunkHasher::hash(as_bytes(payload)) != digest) {
    throw ProtocolError(ProtocolViolation::kBadRepairPayload,
                        "BackupAgent: repair payload does not hash to its "
                        "digest");
  }
  const std::uint64_t refs = pending->second;
  pending_repair_.erase(pending);
  admit_chunk(digest, std::move(payload));  // stores with one reference
  for (std::uint64_t r = 1; r < refs; ++r) store_.add_ref(digest);
  return true;
}

std::vector<dedup::ChunkDigest> BackupAgent::missing_chunks(
    const std::string& image_id) const {
  const auto it = recipes_.find(image_id);
  if (it == recipes_.end()) {
    throw ProtocolError(ProtocolViolation::kUnknownImage,
                        "BackupAgent: unknown image: " + image_id);
  }
  std::vector<dedup::ChunkDigest> missing;
  for (const auto& digest : it->second.chunks) {
    if (pending_repair_.count(digest) &&
        std::find(missing.begin(), missing.end(), digest) == missing.end()) {
      missing.push_back(digest);
    }
  }
  return missing;
}

ByteVec BackupAgent::recreate(const std::string& image_id) const {
  const auto it = recipes_.find(image_id);
  if (it == recipes_.end()) {
    throw ProtocolError(ProtocolViolation::kUnknownImage,
                        "BackupAgent: unknown image: " + image_id);
  }
  ByteVec out;
  for (const auto& digest : it->second.chunks) {
    const auto chunk = store_.get(digest);
    if (!chunk.has_value()) {
      throw ProtocolError(ProtocolViolation::kRecipeIncomplete,
                          "BackupAgent: missing chunk during recreate (" +
                              std::to_string(pending_repair_.size()) +
                              " repairs pending)");
    }
    out.insert(out.end(), chunk->begin(), chunk->end());
  }
  return out;
}

std::uint64_t BackupAgent::delete_image(const std::string& image_id) {
  const auto it = recipes_.find(image_id);
  if (it == recipes_.end()) {
    throw ProtocolError(ProtocolViolation::kUnknownImage,
                        "BackupAgent: delete of unknown image: " + image_id);
  }
  if (!it->second.sealed) {
    throw ProtocolError(ProtocolViolation::kImageInProgress,
                        "BackupAgent: delete of in-progress image: " +
                            image_id);
  }
  for (const auto& digest : it->second.chunks) {
    if (pending_repair_.count(digest)) {
      throw ProtocolError(ProtocolViolation::kRecipeIncomplete,
                          "BackupAgent: delete of image with pending repairs: " +
                              image_id);
    }
  }
  std::uint64_t released = 0;
  for (const auto& digest : it->second.chunks) {
    // The agent's own bookkeeping took one reference per occurrence (put for
    // unique chunks, add_ref for pointers), so the walk cannot underflow.
    const dedup::ReleaseOutcome out = store_.release_ref(digest);
    SHREDDER_CHECK_MSG(out == dedup::ReleaseOutcome::kLive ||
                           out == dedup::ReleaseOutcome::kReclaimed ||
                           out == dedup::ReleaseOutcome::kDeferred,
                       "BackupAgent: recipe references an unreferenced chunk");
    ++released;
  }
  recipes_.erase(it);
  return released;
}

}  // namespace shredder::backup
