#include "backup/agent.h"

#include <stdexcept>

namespace shredder::backup {

BackupAgent::BackupAgent(dedup::IndexConfig catalog_config)
    : catalog_(dedup::make_index(catalog_config)) {}

void BackupAgent::begin_image(const std::string& image_id) {
  auto [it, inserted] = recipes_.try_emplace(image_id);
  if (!inserted) {
    throw std::invalid_argument("BackupAgent: image exists: " + image_id);
  }
}

void BackupAgent::receive(const std::string& image_id,
                          const Message& message) {
  const auto it = recipes_.find(image_id);
  if (it == recipes_.end()) {
    throw std::invalid_argument("BackupAgent: unknown image: " + image_id);
  }
  if (message.payload.empty()) {
    // Membership goes through the catalog index (the modelled probe); the
    // ref-counted store stays the ground truth for the payload bytes.
    if (!catalog_->lookup(message.digest).has_value() ||
        !store_.add_ref(message.digest)) {
      throw std::invalid_argument(
          "BackupAgent: pointer to unknown chunk (protocol violation)");
    }
  } else {
    store_.put(message.digest, as_bytes(message.payload));
    catalog_->lookup_or_insert(
        message.digest,
        dedup::ChunkLocation{catalog_offset_, message.payload.size()});
    catalog_offset_ += message.payload.size();
  }
  it->second.push_back(message.digest);
}

ByteVec BackupAgent::recreate(const std::string& image_id) const {
  const auto it = recipes_.find(image_id);
  if (it == recipes_.end()) {
    throw std::invalid_argument("BackupAgent: unknown image: " + image_id);
  }
  ByteVec out;
  for (const auto& digest : it->second) {
    const auto chunk = store_.get(digest);
    if (!chunk.has_value()) {
      throw std::runtime_error("BackupAgent: missing chunk during recreate");
    }
    out.insert(out.end(), chunk->begin(), chunk->end());
  }
  return out;
}

}  // namespace shredder::backup
