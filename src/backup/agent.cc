#include "backup/agent.h"

#include <stdexcept>

namespace shredder::backup {

BackupAgent::BackupAgent(dedup::IndexConfig catalog_config)
    : catalog_(dedup::make_index(catalog_config)) {}

void BackupAgent::begin_image(const std::string& image_id) {
  auto [it, inserted] = recipes_.try_emplace(image_id);
  if (!inserted) {
    throw std::invalid_argument("BackupAgent: image exists: " + image_id);
  }
}

void BackupAgent::receive(const std::string& image_id,
                          const Message& message) {
  // One-chunk shim over the batch protocol: a pointer is a single
  // duplicate extent, a payload chunk a single unique extent. The payload
  // rides as a view, never copied.
  const std::vector<dedup::ChunkDigest> digests{message.digest};
  const bool unique = !message.payload.empty();
  const std::vector<ExtentBatch::Extent> extents{{0, 1, unique}};
  std::vector<std::uint32_t> payload_sizes;
  if (unique) {
    payload_sizes.push_back(static_cast<std::uint32_t>(message.payload.size()));
  }
  apply_batch(image_id, digests, extents, payload_sizes,
              as_bytes(message.payload));
}

void BackupAgent::receive_batch(const std::string& image_id,
                                const ExtentBatch& batch) {
  apply_batch(image_id, batch.digests, batch.extents, batch.payload_sizes,
              as_bytes(batch.payload));
}

void BackupAgent::apply_batch(const std::string& image_id,
                              const std::vector<dedup::ChunkDigest>& digests,
                              const std::vector<ExtentBatch::Extent>& extents,
                              const std::vector<std::uint32_t>& payload_sizes,
                              ByteSpan payload) {
  const auto it = recipes_.find(image_id);
  if (it == recipes_.end()) {
    throw std::invalid_argument("BackupAgent: unknown image: " + image_id);
  }
  // Frame validation before any state changes: the extents must partition
  // the digest array and the payload sizes must slice the payload exactly.
  std::size_t covered = 0;
  std::size_t n_unique = 0;
  for (const auto& e : extents) {
    if (e.first != covered || e.count == 0) {
      throw std::invalid_argument(
          "BackupAgent: extents do not partition the batch");
    }
    covered += e.count;
    if (e.unique) n_unique += e.count;
  }
  if (covered != digests.size()) {
    throw std::invalid_argument(
        "BackupAgent: extents do not partition the batch");
  }
  if (payload_sizes.size() != n_unique) {
    throw std::invalid_argument(
        "BackupAgent: payload_sizes/unique-chunk count mismatch");
  }
  std::uint64_t payload_total = 0;
  for (const std::uint32_t sz : payload_sizes) payload_total += sz;
  if (payload_total != payload.size()) {
    throw std::invalid_argument(
        "BackupAgent: payload bytes do not match payload_sizes");
  }

  auto& recipe = it->second;
  std::size_t next_size = 0;   // index into payload_sizes
  std::size_t payload_off = 0;
  for (const auto& e : extents) {
    for (std::uint32_t k = 0; k < e.count; ++k) {
      const dedup::ChunkDigest& digest = digests[e.first + k];
      if (e.unique) {
        const std::size_t sz = payload_sizes[next_size++];
        const ByteSpan bytes = payload.subspan(payload_off, sz);
        payload_off += sz;
        store_.put(digest, bytes);
        catalog_->lookup_or_insert(digest,
                                   dedup::ChunkLocation{catalog_offset_, sz});
        catalog_offset_ += sz;
      } else {
        // Membership goes through the catalog index (the modelled probe);
        // the ref-counted store stays the ground truth for payload bytes.
        if (!catalog_->lookup(digest).has_value() ||
            !store_.add_ref(digest)) {
          throw std::invalid_argument(
              "BackupAgent: pointer to unknown chunk (protocol violation)");
        }
      }
      recipe.push_back(digest);
    }
  }
}

ByteVec BackupAgent::recreate(const std::string& image_id) const {
  const auto it = recipes_.find(image_id);
  if (it == recipes_.end()) {
    throw std::invalid_argument("BackupAgent: unknown image: " + image_id);
  }
  ByteVec out;
  for (const auto& digest : it->second) {
    const auto chunk = store_.get(digest);
    if (!chunk.has_value()) {
      throw std::runtime_error("BackupAgent: missing chunk during recreate");
    }
    out.insert(out.end(), chunk->begin(), chunk->end());
  }
  return out;
}

}  // namespace shredder::backup
