#include "dedup/sha256.h"

#include <cstring>

namespace shredder::dedup {

namespace {

inline std::uint32_t rotr(std::uint32_t x, int s) noexcept {
  return (x >> s) | (x << (32 - s));
}

constexpr std::uint32_t kK[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

}  // namespace

std::string Sha256Digest::hex() const {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(64);
  for (std::uint8_t b : bytes) {
    out.push_back(kHex[b >> 4]);
    out.push_back(kHex[b & 0xf]);
  }
  return out;
}

std::uint64_t Sha256Digest::prefix64() const noexcept {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | bytes[static_cast<std::size_t>(i)];
  return v;
}

void Sha256::reset() noexcept {
  h_[0] = 0x6a09e667u;
  h_[1] = 0xbb67ae85u;
  h_[2] = 0x3c6ef372u;
  h_[3] = 0xa54ff53au;
  h_[4] = 0x510e527fu;
  h_[5] = 0x9b05688cu;
  h_[6] = 0x1f83d9abu;
  h_[7] = 0x5be0cd19u;
  length_ = 0;
  buffered_ = 0;
}

void Sha256::process_block(const std::uint8_t* block) noexcept {
  std::uint32_t w[64];
  for (int i = 0; i < 16; ++i) {
    w[i] = (static_cast<std::uint32_t>(block[i * 4]) << 24) |
           (static_cast<std::uint32_t>(block[i * 4 + 1]) << 16) |
           (static_cast<std::uint32_t>(block[i * 4 + 2]) << 8) |
           static_cast<std::uint32_t>(block[i * 4 + 3]);
  }
  for (int i = 16; i < 64; ++i) {
    const std::uint32_t s0 =
        rotr(w[i - 15], 7) ^ rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
    const std::uint32_t s1 =
        rotr(w[i - 2], 17) ^ rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
    w[i] = w[i - 16] + s0 + w[i - 7] + s1;
  }
  std::uint32_t a = h_[0], b = h_[1], c = h_[2], d = h_[3];
  std::uint32_t e = h_[4], f = h_[5], g = h_[6], h = h_[7];
  for (int i = 0; i < 64; ++i) {
    const std::uint32_t s1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
    const std::uint32_t ch = (e & f) ^ (~e & g);
    const std::uint32_t temp1 = h + s1 + ch + kK[i] + w[i];
    const std::uint32_t s0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
    const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
    const std::uint32_t temp2 = s0 + maj;
    h = g;
    g = f;
    f = e;
    e = d + temp1;
    d = c;
    c = b;
    b = a;
    a = temp1 + temp2;
  }
  h_[0] += a;
  h_[1] += b;
  h_[2] += c;
  h_[3] += d;
  h_[4] += e;
  h_[5] += f;
  h_[6] += g;
  h_[7] += h;
}

void Sha256::update(ByteSpan data) noexcept {
  length_ += data.size();
  std::size_t offset = 0;
  if (buffered_ != 0) {
    const std::size_t take = std::min(data.size(), 64 - buffered_);
    std::memcpy(buffer_.data() + buffered_, data.data(), take);
    buffered_ += take;
    offset += take;
    if (buffered_ == 64) {
      process_block(buffer_.data());
      buffered_ = 0;
    }
  }
  while (offset + 64 <= data.size()) {
    process_block(data.data() + offset);
    offset += 64;
  }
  if (offset < data.size()) {
    std::memcpy(buffer_.data(), data.data() + offset, data.size() - offset);
    buffered_ = data.size() - offset;
  }
}

Sha256Digest Sha256::finish() noexcept {
  const std::uint64_t bit_length = length_ * 8;
  const std::uint8_t pad = 0x80;
  update(ByteSpan{&pad, 1});
  const std::uint8_t zero = 0;
  while (buffered_ != 56) update(ByteSpan{&zero, 1});
  std::uint8_t len_bytes[8];
  for (int i = 0; i < 8; ++i) {
    len_bytes[i] = static_cast<std::uint8_t>(bit_length >> (56 - 8 * i));
  }
  update(ByteSpan{len_bytes, 8});
  Sha256Digest digest;
  for (int i = 0; i < 8; ++i) {
    digest.bytes[static_cast<std::size_t>(i * 4)] =
        static_cast<std::uint8_t>(h_[i] >> 24);
    digest.bytes[static_cast<std::size_t>(i * 4 + 1)] =
        static_cast<std::uint8_t>(h_[i] >> 16);
    digest.bytes[static_cast<std::size_t>(i * 4 + 2)] =
        static_cast<std::uint8_t>(h_[i] >> 8);
    digest.bytes[static_cast<std::size_t>(i * 4 + 3)] =
        static_cast<std::uint8_t>(h_[i]);
  }
  reset();
  return digest;
}

Sha256Digest Sha256::hash(ByteSpan data) noexcept {
  Sha256 h;
  h.update(data);
  return h.finish();
}

}  // namespace shredder::dedup
