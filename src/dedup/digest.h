// Canonical chunk-fingerprint type of the dedup/backup stack.
//
// The index, the content-addressed store, the backup agent and the GPU
// fingerprint stage all identify chunks by SHA-256 (the digest the on-device
// hash kernel produces; see docs/fingerprint.md). SHA-1 remains available in
// dedup/sha1.h for subsystems with their own keying needs (inchdfs memoizes
// with it) and for the vector tests.
#pragma once

#include "dedup/sha256.h"

namespace shredder::dedup {

using ChunkDigest = Sha256Digest;
using ChunkDigestHash = Sha256DigestHash;
using ChunkHasher = Sha256;

}  // namespace shredder::dedup
