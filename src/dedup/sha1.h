// SHA-1 (FIPS 180-1), from scratch.
//
// Used as the collision-resistant chunk hash of dedup step 2 (paper §2.1):
// the Store thread computes a hash per chunk and the index matches it.
// Verified against the FIPS/RFC 3174 test vectors in tests/dedup_test.cc.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "common/bytes.h"

namespace shredder::dedup {

struct Sha1Digest {
  std::array<std::uint8_t, 20> bytes{};

  friend bool operator==(const Sha1Digest&, const Sha1Digest&) = default;
  std::string hex() const;
  // First 8 bytes as an integer, for use as an index key prefix.
  std::uint64_t prefix64() const noexcept;
};

class Sha1 {
 public:
  Sha1() noexcept { reset(); }

  void reset() noexcept;
  void update(ByteSpan data) noexcept;
  Sha1Digest finish() noexcept;  // resets afterwards

  static Sha1Digest hash(ByteSpan data) noexcept;

 private:
  void process_block(const std::uint8_t* block) noexcept;

  std::uint32_t h_[5];
  std::uint64_t length_ = 0;  // bytes
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffered_ = 0;
};

// std::hash support so digests key unordered containers directly.
struct Sha1DigestHash {
  std::size_t operator()(const Sha1Digest& d) const noexcept {
    return static_cast<std::size_t>(d.prefix64());
  }
};

}  // namespace shredder::dedup
