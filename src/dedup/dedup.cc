#include "dedup/dedup.h"

#include <stdexcept>

namespace shredder::dedup {

Deduplicator::Deduplicator(double index_probe_seconds)
    : index_(std::make_unique<ChunkIndex>(index_probe_seconds)) {}

Deduplicator::Deduplicator(const IndexConfig& index_config)
    : index_(make_index(index_config)) {}

DedupStats Deduplicator::ingest(ByteSpan data,
                                const std::vector<chunking::Chunk>& chunks) {
  return ingest_impl(data, chunks, nullptr);
}

DedupStats Deduplicator::ingest(ByteSpan data,
                                const std::vector<chunking::Chunk>& chunks,
                                const std::vector<ChunkDigest>& digests) {
  if (digests.size() != chunks.size()) {
    throw std::invalid_argument(
        "Deduplicator::ingest: digest/chunk count mismatch");
  }
  return ingest_impl(data, chunks, &digests);
}

DedupStats Deduplicator::ingest_impl(
    ByteSpan data, const std::vector<chunking::Chunk>& chunks,
    const std::vector<ChunkDigest>* digests) {
  DedupStats stats;
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    const auto& c = chunks[i];
    if (c.end() > data.size()) {
      throw std::invalid_argument("Deduplicator::ingest: chunk out of range");
    }
    const ByteSpan payload = data.subspan(
        static_cast<std::size_t>(c.offset), static_cast<std::size_t>(c.size));
    const ChunkDigest digest =
        digests != nullptr ? (*digests)[i] : ChunkHasher::hash(payload);
    ++stats.chunks_total;
    stats.bytes_total += c.size;
    const auto existing = index_->lookup_or_insert(
        digest, ChunkLocation{next_offset_, c.size});
    if (existing.has_value()) {
      ++stats.chunks_duplicate;
      stats.bytes_duplicate += c.size;
      store_.add_ref(digest);
    } else {
      next_offset_ += c.size;
      store_.put(digest, payload);
    }
  }
  return stats;
}

}  // namespace shredder::dedup
