// ChunkStash-style two-level sparse fingerprint index (Debnath, Sengupta,
// Li — "ChunkStash: Speeding up Inline Storage Deduplication using Flash
// Memory"; see PAPERS.md and docs/dedup_index.md).
//
// Level 1 (RAM): a cuckoo hash of compact slots — a 2-byte digest signature
// plus a 4-byte offset into the entry log, ≈6 bytes per indexed chunk
// against the 48+ bytes the baseline map burns. Each key has two candidate
// buckets of four slots; the alternate bucket is derived from the signature
// alone (partial-key cuckoo), so relocations never re-read the log. Inserts
// displace via a bounded breadth-first kickout search and grow the table
// when the search fails or occupancy passes max_load.
//
// Level 2 ("flash"): a log-structured full-entry region holding
// (digest, location) records in insertion order, grouped into containers of
// `container_entries`. A signature match must be confirmed against the full
// digest here — that read pays the modelled flash cost unless the entry's
// container is the still-open in-RAM tail or sits in the probing stream's
// prefetch cache. Confirming a non-cached container prefetches it, so a run
// of duplicate probes in backup order costs one container fetch — the
// locality property ChunkStash is built around.
//
// Lookup results are bit-identical to the baseline ChunkIndex: a 2-byte
// signature alias can cost a wasted confirmation read, never a wrong answer.
//
// Keys whose two candidate buckets cannot hold them even after a growth
// step (possible only when many digests alias in BOTH bucket bits and
// signature — adversarial inputs, since 8 such SHA-256 collisions never
// happen by chance) land in a tiny RAM auxiliary bin, ChunkStash's escape
// hatch, scanned after the bucket probe. Exactness is preserved either way.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/annotations.h"
#include "common/mutex.h"
#include "dedup/digest.h"
#include "dedup/index.h"

namespace shredder::dedup {

class SparseChunkIndex final : public IndexBackend {
 public:
  // Uses config.costs (sparse fields) and config.sparse geometry. Throws
  // std::invalid_argument on bad geometry.
  explicit SparseChunkIndex(const IndexConfig& config);

  std::uint64_t size() const override;
  IndexKind kind() const noexcept override { return IndexKind::kSparse; }
  IndexStats stats() const override;

  // --- Recovery (docs/dedup_index.md) ---
  // The log-structured entry region is the index's persistent state: the
  // RAM cuckoo (and spill bin) are derived from it and a crash loses only
  // them. One persisted record:
  struct LogRecord {
    ChunkDigest digest;
    ChunkLocation loc;
  };

  // Snapshot of the entry region in insertion order — what a restart finds
  // on flash.
  std::vector<LogRecord> log_records() const;

  // Restart recovery: discard the RAM cuckoo, spill bin and prefetch
  // caches and reconstruct them by scanning the entry region — the in-place
  // form reuses the index's own log, the other adopts `records` as the
  // persisted region first. Charges one modelled flash read per container
  // scanned and bumps stats().recoveries. Afterwards every probe answers
  // exactly as an index that never crashed (the crash/restart differential
  // test in tests/index_test.cc holds this).
  void rebuild_from_log();
  void rebuild_from_log(std::vector<LogRecord> records);

  // --- Entry-log compaction (ChunkStash's design; docs/retention.md) ---
  // The log is append-only, so deleted snapshots leave dead (digest, loc)
  // records behind. compact() rewrites the log keeping only entries the
  // `live` predicate approves, in original insertion order, and patches the
  // RAM cuckoo in place: a slot's placement depends only on the bucket hash
  // and signature — both digest-derived, neither touched here — so live
  // slots keep their position and just get the remapped log offset, while
  // dead slots are cleared. Spill-bin offsets are filtered and remapped the
  // same way; prefetch caches are dropped (container ids shifted).
  //
  // Cost model: one flash read per container scanned + one flash write per
  // surviving container rewritten. Probe decisions for live keys are
  // bit-identical before and after (the differential suite in
  // tests/index_test.cc holds this); dead keys simply miss.
  struct CompactionStats {
    std::uint64_t entries_before = 0;
    std::uint64_t entries_after = 0;
    std::uint64_t dropped = 0;
    std::uint64_t containers_scanned = 0;
    std::uint64_t containers_rewritten = 0;
    double virtual_seconds = 0;
  };
  using LivePredicate =
      std::function<bool(const ChunkDigest&, const ChunkLocation&)>;
  CompactionStats compact(const LivePredicate& live);

  // Geometry probes for the test suite.
  std::size_t bucket_count() const;
  std::size_t stream_cache_count() const;
  static constexpr std::size_t kSlotsPerBucket = 4;

  // The two key derivations, exposed so tests can craft digests that force
  // signature aliases and bucket collisions. The signature comes from digest
  // bytes [8,10) and the primary bucket from bytes [0,8) (prefix64), so the
  // two are independently controllable.
  static std::uint16_t signature(const ChunkDigest& digest) noexcept;
  static std::uint64_t bucket_hash(const ChunkDigest& digest) noexcept;

 private:
  struct Slot {
    std::uint16_t sig = 0;
    std::uint32_t entry = kEmpty;  // offset into the entry log
    static constexpr std::uint32_t kEmpty = 0xFFFFFFFFu;
  };
  struct LogEntry {
    ChunkDigest digest;
    ChunkLocation loc;
  };
  // Most-recently-used container ids at the back; capacity cache_containers.
  using StreamCache = std::vector<std::uint32_t>;

  std::optional<ChunkLocation> do_lookup_or_insert(const ChunkDigest& digest,
                                                   const ChunkLocation& loc,
                                                   std::uint32_t stream) override;
  std::optional<ChunkLocation> do_lookup(const ChunkDigest& digest,
                                         std::uint32_t stream) const override;

  std::size_t alternate_bucket(std::size_t bucket, std::uint16_t sig) const
      noexcept REQUIRES(mu_);
  Slot* find_free(std::size_t bucket) noexcept REQUIRES(mu_);
  // Confirms slot `s` against `digest`, charging tail/cache/flash cost.
  bool confirm(const Slot& s, const ChunkDigest& digest,
               std::uint32_t stream) const REQUIRES(mu_);
  const LogEntry* probe(const ChunkDigest& digest, std::uint32_t stream) const
      REQUIRES(mu_);
  // Places (sig, entry) without growing; false when the BFS bound is hit.
  bool place(std::uint16_t sig, std::size_t bucket, std::uint32_t entry)
      REQUIRES(mu_);
  // Rebuilds the cuckoo table at the current n_buckets_ from the log;
  // entries that cannot be placed (bucket+signature aliases) go to the
  // spill bin.
  void replay_log_locked() REQUIRES(mu_);
  // Doubles the table once and re-places every entry.
  void grow_and_rehash() REQUIRES(mu_);
  void rebuild_locked() REQUIRES(mu_);

  IndexCostModel costs_;
  SparseIndexTuning tuning_;

  mutable Mutex mu_;
  std::size_t n_buckets_ GUARDED_BY(mu_);  // always a power of two
  std::vector<Slot> slots_ GUARDED_BY(mu_);  // n_buckets_ * kSlotsPerBucket
  std::vector<std::uint32_t> spill_ GUARDED_BY(mu_);  // RAM auxiliary bin
  std::vector<LogEntry> log_ GUARDED_BY(mu_);
  mutable std::unordered_map<std::uint32_t, StreamCache> caches_
      GUARDED_BY(mu_);
  // FIFO for retirement.
  mutable std::vector<std::uint32_t> cache_order_ GUARDED_BY(mu_);
  mutable IndexStats stats_ GUARDED_BY(mu_);
};

}  // namespace shredder::dedup
