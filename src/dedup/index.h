// Chunk fingerprint index — dedup step 3 (paper §2.1): "checking if the hash
// for a chunk already exists in the index".
//
// Two backends live behind the IndexBackend interface (docs/dedup_index.md):
//
//  * ChunkIndex (IndexKind::kPaperBaseline) — the sharded unordered_map the
//    paper measures in §7.3. Every probe pays a flat modelled cost; this is
//    the "not ChunkStash-grade" index whose probes erode backup bandwidth as
//    snapshot similarity drops, kept for figure-18 fidelity.
//
//  * SparseChunkIndex (IndexKind::kSparse, sparse_index.h) — a ChunkStash-
//    style two-level sparse index: an in-RAM cuckoo hash of 2-byte digest
//    signatures + compact entry offsets (≈6 bytes/chunk) in front of a
//    log-structured full-entry region with a modelled flash-read cost paid
//    only on signature hits, plus a per-stream container prefetch cache
//    that turns runs of duplicate probes into one container fetch.
//
// Both backends return bit-identical lookup/insert results (the sparse
// signatures are confirmed against the full digest before a hit is
// reported); only the modelled probe-path cost differs. make_index() is the
// one construction point every consumer (Deduplicator, BackupServer, the
// chunking service, the backup agent) routes through.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>

#include "common/annotations.h"
#include "common/mutex.h"
#include "dedup/digest.h"

namespace shredder::dedup {

struct ChunkLocation {
  std::uint64_t store_offset = 0;
  std::uint64_t size = 0;
};

enum class IndexKind { kPaperBaseline, kSparse };

// Modelled per-operation costs of the two probe paths. Baseline constants
// follow the §7.3 calibration; sparse constants model a 2012-era SSD holding
// the full-entry log (docs/dedup_index.md derives each one).
struct IndexCostModel {
  // kPaperBaseline: flat per-probe lookup cost + extra work per insert.
  // Defaults match the historical library-level ChunkIndex; the backup
  // server's §7.3 calibration (3.5 µs probe / 6.0 µs insert) lives in
  // BackupCostModel and is copied in by BackupServer.
  double probe_s = 0.8e-6;
  double insert_s = 0.0;
  // kSparse: in-RAM cuckoo signature probe (two buckets, four slots each).
  double ram_probe_s = 0.25e-6;
  // Full-entry container read from the log region on a signature hit that
  // is not already cached (one flash random read, prefetches the container).
  double flash_read_s = 40e-6;
  // Confirming against a container already in the prefetch cache (or the
  // still-open in-RAM tail container).
  double cache_hit_s = 0.1e-6;
  // Appending a new entry to the log's write buffer + cuckoo placement.
  double log_append_s = 0.3e-6;
  // Writing one compacted container back to the log region (entry-log
  // compaction, docs/retention.md) — a flash sequential write, slightly
  // dearer than the random read.
  double flash_write_s = 45e-6;
};

// Geometry of the sparse backend (ignored by the baseline).
struct SparseIndexTuning {
  std::size_t buckets = 1 << 10;        // initial cuckoo buckets (power of 2)
  std::size_t container_entries = 512;  // log entries per flash container
  std::size_t cache_containers = 8;     // per-stream prefetch LRU capacity
  // Concurrent streams with live prefetch caches; beyond this the oldest
  // stream's cache is retired (streams are minted per snapshot/tenant, so
  // without a bound the map would grow with index lifetime).
  std::size_t max_stream_caches = 64;
  double max_load = 0.90;               // grow when entries exceed this
  std::size_t max_kick_nodes = 128;     // BFS kickout search bound
};

struct IndexConfig {
  IndexKind kind = IndexKind::kPaperBaseline;
  IndexCostModel costs;
  SparseIndexTuning sparse;
};

// Cumulative counters; the baseline only moves probes/inserts/
// virtual_seconds, the sparse backend fills everything.
struct IndexStats {
  std::uint64_t probes = 0;          // lookup + lookup_or_insert calls
  std::uint64_t inserts = 0;         // entries admitted
  std::uint64_t signature_hits = 0;  // RAM signature matches (incl. aliases)
  std::uint64_t false_signature_hits = 0;  // full-digest compare rejected
  std::uint64_t flash_reads = 0;     // modelled log-region container reads
  std::uint64_t cache_hits = 0;      // prefetch-cache / tail confirmations
  std::uint64_t kickouts = 0;        // cuckoo relocations
  std::uint64_t resizes = 0;         // table growths
  std::uint64_t spilled = 0;         // entries in the RAM auxiliary bin
  std::uint64_t recoveries = 0;      // rebuild_from_log restarts (sparse)
  std::uint64_t compactions = 0;     // entry-log compaction passes (sparse)
  std::uint64_t log_entries_dropped = 0;  // dead entries compacted away
  double virtual_seconds = 0;        // total modelled index time
};

// The single atomic lookup-or-insert surface the dedup path issues per
// chunk. `stream` tags the probing client (backup snapshot, service tenant);
// the sparse backend keys its container prefetch cache by it, the baseline
// ignores it.
class IndexBackend {
 public:
  virtual ~IndexBackend() = default;

  // Returns the existing location if present; otherwise inserts `loc` and
  // returns nullopt.
  std::optional<ChunkLocation> lookup_or_insert(const ChunkDigest& digest,
                                                const ChunkLocation& loc,
                                                std::uint32_t stream = 0) {
    return do_lookup_or_insert(digest, loc, stream);
  }

  // Read-only probe (still pays the modelled probe cost).
  std::optional<ChunkLocation> lookup(const ChunkDigest& digest,
                                      std::uint32_t stream = 0) const {
    return do_lookup(digest, stream);
  }

  virtual std::uint64_t size() const = 0;
  virtual IndexKind kind() const noexcept = 0;
  virtual IndexStats stats() const = 0;

  std::uint64_t probes() const { return stats().probes; }
  // Total modelled index time so far.
  double virtual_seconds() const { return stats().virtual_seconds; }

 private:
  virtual std::optional<ChunkLocation> do_lookup_or_insert(
      const ChunkDigest& digest, const ChunkLocation& loc,
      std::uint32_t stream) = 0;
  virtual std::optional<ChunkLocation> do_lookup(const ChunkDigest& digest,
                                                 std::uint32_t stream) const = 0;
};

std::unique_ptr<IndexBackend> make_index(const IndexConfig& config);

// The paper-baseline backend: sharded hash map keyed by the canonical chunk
// digest; each shard has its own lock so the backup pipeline's lookup thread
// and store thread can probe concurrently. A flat per-probe virtual cost
// (plus `insert_seconds` extra per admitted entry) models the unoptimized
// index of §7.3.
class ChunkIndex final : public IndexBackend {
 public:
  // `probe_seconds` is the modelled cost of one lookup/insert probe;
  // `insert_seconds` the additional cost of admitting an unseen chunk.
  explicit ChunkIndex(double probe_seconds = 0.8e-6,
                      double insert_seconds = 0.0);

  std::uint64_t size() const override;
  IndexKind kind() const noexcept override { return IndexKind::kPaperBaseline; }
  IndexStats stats() const override;

  double probe_seconds() const noexcept { return probe_seconds_; }

 private:
  static constexpr std::size_t kShards = 64;
  struct Shard {
    mutable Mutex mutex;
    std::unordered_map<ChunkDigest, ChunkLocation, ChunkDigestHash> map
        GUARDED_BY(mutex);
  };
  Shard& shard_for(const ChunkDigest& d) const noexcept;

  std::optional<ChunkLocation> do_lookup_or_insert(const ChunkDigest& digest,
                                                   const ChunkLocation& loc,
                                                   std::uint32_t stream) override;
  std::optional<ChunkLocation> do_lookup(const ChunkDigest& digest,
                                         std::uint32_t stream) const override;

  double probe_seconds_;
  double insert_seconds_;
  mutable std::array<Shard, kShards> shards_;
  mutable std::atomic<std::uint64_t> probes_{0};
  std::atomic<std::uint64_t> inserts_{0};
};

}  // namespace shredder::dedup
