// Chunk fingerprint index — dedup step 3 (paper §2.1): "checking if the hash
// for a chunk already exists in the index".
//
// Sharded hash map keyed by the canonical chunk digest (SHA-256, the hash
// the GPU fingerprint stage emits); each shard has its own lock so the
// backup pipeline's lookup thread and store thread can probe concurrently.
// A per-probe virtual cost models the unoptimized index of §7.3 (the paper
// notes its index is not ChunkStash/sparse-index grade, and that this is
// what erodes backup bandwidth as similarity drops).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "dedup/digest.h"

namespace shredder::dedup {

struct ChunkLocation {
  std::uint64_t store_offset = 0;
  std::uint64_t size = 0;
};

class ChunkIndex {
 public:
  // `probe_seconds` is the modelled cost of one lookup/insert probe.
  explicit ChunkIndex(double probe_seconds = 0.8e-6);

  // Returns the existing location if present; otherwise inserts `loc` and
  // returns nullopt. This is the single atomic lookup-or-insert the backup
  // server issues per chunk.
  std::optional<ChunkLocation> lookup_or_insert(const ChunkDigest& digest,
                                                const ChunkLocation& loc);

  // Read-only probe.
  std::optional<ChunkLocation> lookup(const ChunkDigest& digest) const;

  std::uint64_t size() const;
  std::uint64_t probes() const noexcept { return probes_.load(); }
  // Total modelled index time so far.
  double virtual_seconds() const noexcept {
    return static_cast<double>(probes()) * probe_seconds_;
  }
  double probe_seconds() const noexcept { return probe_seconds_; }

 private:
  static constexpr std::size_t kShards = 64;
  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<ChunkDigest, ChunkLocation, ChunkDigestHash> map;
  };
  Shard& shard_for(const ChunkDigest& d) const noexcept;

  double probe_seconds_;
  mutable std::array<Shard, kShards> shards_;
  mutable std::atomic<std::uint64_t> probes_{0};
};

}  // namespace shredder::dedup
