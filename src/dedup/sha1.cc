#include "dedup/sha1.h"

#include <cstring>

namespace shredder::dedup {

namespace {
inline std::uint32_t rotl(std::uint32_t x, int s) noexcept {
  return (x << s) | (x >> (32 - s));
}
}  // namespace

std::string Sha1Digest::hex() const {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(40);
  for (std::uint8_t b : bytes) {
    out.push_back(kHex[b >> 4]);
    out.push_back(kHex[b & 0xf]);
  }
  return out;
}

std::uint64_t Sha1Digest::prefix64() const noexcept {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | bytes[static_cast<std::size_t>(i)];
  return v;
}

void Sha1::reset() noexcept {
  h_[0] = 0x67452301u;
  h_[1] = 0xEFCDAB89u;
  h_[2] = 0x98BADCFEu;
  h_[3] = 0x10325476u;
  h_[4] = 0xC3D2E1F0u;
  length_ = 0;
  buffered_ = 0;
}

void Sha1::process_block(const std::uint8_t* block) noexcept {
  std::uint32_t w[80];
  for (int i = 0; i < 16; ++i) {
    w[i] = (static_cast<std::uint32_t>(block[i * 4]) << 24) |
           (static_cast<std::uint32_t>(block[i * 4 + 1]) << 16) |
           (static_cast<std::uint32_t>(block[i * 4 + 2]) << 8) |
           static_cast<std::uint32_t>(block[i * 4 + 3]);
  }
  for (int i = 16; i < 80; ++i) {
    w[i] = rotl(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);
  }
  std::uint32_t a = h_[0], b = h_[1], c = h_[2], d = h_[3], e = h_[4];
  for (int i = 0; i < 80; ++i) {
    std::uint32_t f, k;
    if (i < 20) {
      f = (b & c) | (~b & d);
      k = 0x5A827999u;
    } else if (i < 40) {
      f = b ^ c ^ d;
      k = 0x6ED9EBA1u;
    } else if (i < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8F1BBCDCu;
    } else {
      f = b ^ c ^ d;
      k = 0xCA62C1D6u;
    }
    const std::uint32_t temp = rotl(a, 5) + f + e + k + w[i];
    e = d;
    d = c;
    c = rotl(b, 30);
    b = a;
    a = temp;
  }
  h_[0] += a;
  h_[1] += b;
  h_[2] += c;
  h_[3] += d;
  h_[4] += e;
}

void Sha1::update(ByteSpan data) noexcept {
  length_ += data.size();
  std::size_t offset = 0;
  if (buffered_ != 0) {
    const std::size_t take = std::min(data.size(), 64 - buffered_);
    std::memcpy(buffer_.data() + buffered_, data.data(), take);
    buffered_ += take;
    offset += take;
    if (buffered_ == 64) {
      process_block(buffer_.data());
      buffered_ = 0;
    }
  }
  while (offset + 64 <= data.size()) {
    process_block(data.data() + offset);
    offset += 64;
  }
  if (offset < data.size()) {
    std::memcpy(buffer_.data(), data.data() + offset, data.size() - offset);
    buffered_ = data.size() - offset;
  }
}

Sha1Digest Sha1::finish() noexcept {
  const std::uint64_t bit_length = length_ * 8;
  const std::uint8_t pad = 0x80;
  update(ByteSpan{&pad, 1});
  const std::uint8_t zero = 0;
  while (buffered_ != 56) update(ByteSpan{&zero, 1});
  std::uint8_t len_bytes[8];
  for (int i = 0; i < 8; ++i) {
    len_bytes[i] = static_cast<std::uint8_t>(bit_length >> (56 - 8 * i));
  }
  update(ByteSpan{len_bytes, 8});
  Sha1Digest digest;
  for (int i = 0; i < 5; ++i) {
    digest.bytes[static_cast<std::size_t>(i * 4)] =
        static_cast<std::uint8_t>(h_[i] >> 24);
    digest.bytes[static_cast<std::size_t>(i * 4 + 1)] =
        static_cast<std::uint8_t>(h_[i] >> 16);
    digest.bytes[static_cast<std::size_t>(i * 4 + 2)] =
        static_cast<std::uint8_t>(h_[i] >> 8);
    digest.bytes[static_cast<std::size_t>(i * 4 + 3)] =
        static_cast<std::uint8_t>(h_[i]);
  }
  reset();
  return digest;
}

Sha1Digest Sha1::hash(ByteSpan data) noexcept {
  Sha1 h;
  h.update(data);
  return h.finish();
}

}  // namespace shredder::dedup
