#include "dedup/sparse_index.h"

#include <algorithm>
#include <stdexcept>

namespace shredder::dedup {

namespace {

bool is_power_of_two(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

// Spreads the 16-bit signature over the bucket space so the alternate
// bucket xor-offset is well distributed. Pure function of the signature:
// relocations recompute the partner bucket without touching the log.
std::uint64_t scramble(std::uint16_t sig) noexcept {
  return (static_cast<std::uint64_t>(sig) + 1) * 0x9E3779B97F4A7C15ull >> 16;
}

}  // namespace

SparseChunkIndex::SparseChunkIndex(const IndexConfig& config)
    : costs_(config.costs), tuning_(config.sparse) {
  if (!is_power_of_two(tuning_.buckets)) {
    throw std::invalid_argument(
        "SparseChunkIndex: buckets must be a power of two");
  }
  if (tuning_.container_entries == 0) {
    throw std::invalid_argument(
        "SparseChunkIndex: container_entries must be >= 1");
  }
  if (tuning_.max_load <= 0.0 || tuning_.max_load > 1.0) {
    throw std::invalid_argument("SparseChunkIndex: max_load must be in (0,1]");
  }
  if (tuning_.max_kick_nodes < 2) {
    throw std::invalid_argument(
        "SparseChunkIndex: max_kick_nodes must be >= 2");
  }
  if (tuning_.max_stream_caches == 0) {
    throw std::invalid_argument(
        "SparseChunkIndex: max_stream_caches must be >= 1");
  }
  if (costs_.ram_probe_s < 0 || costs_.flash_read_s < 0 ||
      costs_.cache_hit_s < 0 || costs_.log_append_s < 0 ||
      costs_.flash_write_s < 0) {
    throw std::invalid_argument("SparseChunkIndex: negative cost");
  }
  n_buckets_ = tuning_.buckets;
  slots_.assign(n_buckets_ * kSlotsPerBucket, Slot{});
}

std::uint16_t SparseChunkIndex::signature(const ChunkDigest& digest) noexcept {
  return static_cast<std::uint16_t>(
      (static_cast<std::uint16_t>(digest.bytes[8]) << 8) | digest.bytes[9]);
}

std::uint64_t SparseChunkIndex::bucket_hash(const ChunkDigest& digest) noexcept {
  return digest.prefix64();
}

std::size_t SparseChunkIndex::alternate_bucket(std::size_t bucket,
                                               std::uint16_t sig) const noexcept {
  // Partial-key cuckoo: xor with a signature-derived offset is an
  // involution, so alternate(alternate(b)) == b and either home is always
  // recoverable from (bucket, sig) alone.
  return bucket ^ (scramble(sig) & (n_buckets_ - 1));
}

SparseChunkIndex::Slot* SparseChunkIndex::find_free(std::size_t bucket) noexcept {
  for (std::size_t j = 0; j < kSlotsPerBucket; ++j) {
    Slot& s = slots_[bucket * kSlotsPerBucket + j];
    if (s.entry == Slot::kEmpty) return &s;
  }
  return nullptr;
}

// Full-digest confirmation of one signature match. The entry's container is
// read from the tail write buffer (RAM), the stream's prefetch cache, or the
// modelled flash log — in the last case the whole container is pulled into
// the stream's cache, which is what makes a locality run of duplicates cost
// one flash read.
bool SparseChunkIndex::confirm(const Slot& s, const ChunkDigest& digest,
                               std::uint32_t stream) const {
  ++stats_.signature_hits;
  const std::uint32_t container =
      static_cast<std::uint32_t>(s.entry / tuning_.container_entries);
  const bool sealed =
      static_cast<std::uint64_t>(container + 1) * tuning_.container_entries <=
      log_.size();
  if (!sealed) {
    // Open tail container: still in the RAM write buffer.
    stats_.virtual_seconds += costs_.cache_hit_s;
    ++stats_.cache_hits;
  } else {
    const auto [cache_it, fresh] = caches_.try_emplace(stream);
    if (fresh) {
      // Streams are minted per snapshot/tenant; retire the oldest stream's
      // cache so the map stays bounded over the index lifetime.
      cache_order_.push_back(stream);
      if (caches_.size() > tuning_.max_stream_caches) {
        caches_.erase(cache_order_.front());
        cache_order_.erase(cache_order_.begin());
      }
    }
    StreamCache& cache = cache_it->second;
    const auto it = std::find(cache.begin(), cache.end(), container);
    if (it != cache.end()) {
      stats_.virtual_seconds += costs_.cache_hit_s;
      ++stats_.cache_hits;
      cache.erase(it);
      cache.push_back(container);  // most-recently-used at the back
    } else {
      stats_.virtual_seconds += costs_.flash_read_s;
      ++stats_.flash_reads;
      if (tuning_.cache_containers > 0) {
        if (cache.size() >= tuning_.cache_containers) cache.erase(cache.begin());
        cache.push_back(container);
      }
    }
  }
  if (log_[s.entry].digest == digest) return true;
  ++stats_.false_signature_hits;
  return false;
}

const SparseChunkIndex::LogEntry* SparseChunkIndex::probe(
    const ChunkDigest& digest, std::uint32_t stream) const {
  const std::uint16_t sig = signature(digest);
  const std::size_t b1 = bucket_hash(digest) & (n_buckets_ - 1);
  const std::size_t b2 = alternate_bucket(b1, sig);
  for (const std::size_t b : {b1, b2}) {
    for (std::size_t j = 0; j < kSlotsPerBucket; ++j) {
      const Slot& s = slots_[b * kSlotsPerBucket + j];
      if (s.entry == Slot::kEmpty || s.sig != sig) continue;
      if (confirm(s, digest, stream)) return &log_[s.entry];
    }
    if (b2 == b1) break;
  }
  // The spill bin is RAM-resident (it only ever holds adversarial
  // bucket+signature aliases), so scanning it is part of the RAM probe.
  for (const std::uint32_t e : spill_) {
    if (log_[e].digest == digest) return &log_[e];
  }
  return nullptr;
}

bool SparseChunkIndex::place(std::uint16_t sig, std::size_t bucket,
                             std::uint32_t entry) {
  // Bounded BFS kickout (MemC3-style): nodes are buckets that need a free
  // slot; expanding a node kicks one of its residents to that resident's
  // alternate bucket. The first node with a free slot terminates the search
  // and the displacement chain is replayed back to a root, which is one of
  // the new key's two home buckets.
  struct Node {
    std::size_t bucket;
    int parent;  // index into nodes; -1 for a root
    int pslot;   // slot of the parent bucket kicked towards this bucket
  };
  std::vector<Node> nodes;
  nodes.push_back({bucket, -1, 0});
  const std::size_t b2 = alternate_bucket(bucket, sig);
  if (b2 != bucket) nodes.push_back({b2, -1, 0});

  // A replayable path must name each victim slot at most once: alternate-
  // bucket cycles can route a path through the same physical slot twice, and
  // replaying such a path would clobber an entry. Those paths are skipped;
  // the BFS keeps searching for a clean one.
  const auto path_distinct = [&](std::size_t leaf) {
    std::vector<std::size_t> seen;
    for (int cur = static_cast<int>(leaf); nodes[cur].parent != -1;
         cur = nodes[cur].parent) {
      const std::size_t slot_ix =
          nodes[nodes[cur].parent].bucket * kSlotsPerBucket +
          static_cast<std::size_t>(nodes[cur].pslot);
      if (std::find(seen.begin(), seen.end(), slot_ix) != seen.end()) {
        return false;
      }
      seen.push_back(slot_ix);
    }
    return true;
  };

  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (Slot* free = find_free(nodes[i].bucket); free != nullptr) {
      if (!path_distinct(i)) continue;
      // Replay the kickout chain from this bucket back to the root.
      Slot* free_slot = free;
      int cur = static_cast<int>(i);
      while (nodes[cur].parent != -1) {
        const Node& n = nodes[cur];
        Slot& victim =
            slots_[nodes[n.parent].bucket * kSlotsPerBucket + n.pslot];
        *free_slot = victim;
        ++stats_.kickouts;
        free_slot = &victim;
        cur = n.parent;
      }
      free_slot->sig = sig;
      free_slot->entry = entry;
      return true;
    }
    if (nodes.size() >= tuning_.max_kick_nodes) continue;  // stop expanding
    for (std::size_t j = 0; j < kSlotsPerBucket; ++j) {
      const Slot& s = slots_[nodes[i].bucket * kSlotsPerBucket + j];
      nodes.push_back({alternate_bucket(nodes[i].bucket, s.sig),
                       static_cast<int>(i), static_cast<int>(j)});
      if (nodes.size() >= tuning_.max_kick_nodes) break;
    }
  }
  return false;
}

void SparseChunkIndex::replay_log_locked() {
  slots_.assign(n_buckets_ * kSlotsPerBucket, Slot{});
  spill_.clear();
  for (std::size_t e = 0; e < log_.size(); ++e) {
    const ChunkDigest& d = log_[e].digest;
    if (!place(signature(d), bucket_hash(d) & (n_buckets_ - 1),
               static_cast<std::uint32_t>(e))) {
      spill_.push_back(static_cast<std::uint32_t>(e));
    }
  }
}

void SparseChunkIndex::grow_and_rehash() {
  n_buckets_ *= 2;
  ++stats_.resizes;
  replay_log_locked();
}

// Shared restart path: size a fresh table for the recovered population,
// rebuild the cuckoo by scanning the log, and charge the scan — one flash
// read per (sealed or tail) container.
void SparseChunkIndex::rebuild_locked() {
  caches_.clear();
  cache_order_.clear();
  n_buckets_ = tuning_.buckets;
  while (static_cast<double>(log_.size()) >
         tuning_.max_load *
             static_cast<double>(n_buckets_ * kSlotsPerBucket)) {
    n_buckets_ *= 2;
  }
  replay_log_locked();
  const std::uint64_t containers =
      (log_.size() + tuning_.container_entries - 1) /
      tuning_.container_entries;
  stats_.flash_reads += containers;
  stats_.virtual_seconds +=
      static_cast<double>(containers) * costs_.flash_read_s;
  ++stats_.recoveries;
}

std::vector<SparseChunkIndex::LogRecord> SparseChunkIndex::log_records()
    const {
  MutexLock lock(mu_);
  std::vector<LogRecord> records;
  records.reserve(log_.size());
  for (const LogEntry& e : log_) records.push_back({e.digest, e.loc});
  return records;
}

void SparseChunkIndex::rebuild_from_log() {
  MutexLock lock(mu_);
  rebuild_locked();
}

void SparseChunkIndex::rebuild_from_log(std::vector<LogRecord> records) {
  MutexLock lock(mu_);
  log_.clear();
  log_.reserve(records.size());
  for (const LogRecord& r : records) log_.push_back({r.digest, r.loc});
  rebuild_locked();
}

SparseChunkIndex::CompactionStats SparseChunkIndex::compact(
    const LivePredicate& live) {
  MutexLock lock(mu_);
  CompactionStats cs;
  cs.entries_before = log_.size();
  const double t0 = stats_.virtual_seconds;

  // Scan pass: every container (sealed or tail) is read once to decide
  // entry liveness — same charge shape as rebuild_locked's recovery scan.
  cs.containers_scanned = (log_.size() + tuning_.container_entries - 1) /
                          tuning_.container_entries;
  stats_.flash_reads += cs.containers_scanned;
  stats_.virtual_seconds +=
      static_cast<double>(cs.containers_scanned) * costs_.flash_read_s;

  // Rewrite the log keeping live entries in insertion order; remap maps
  // old offsets to new ones (kEmpty = dead).
  std::vector<std::uint32_t> remap(log_.size(), Slot::kEmpty);
  std::vector<LogEntry> compacted;
  compacted.reserve(log_.size());
  for (std::size_t e = 0; e < log_.size(); ++e) {
    if (live(log_[e].digest, log_[e].loc)) {
      remap[e] = static_cast<std::uint32_t>(compacted.size());
      compacted.push_back(log_[e]);
    }
  }
  cs.entries_after = compacted.size();
  cs.dropped = cs.entries_before - cs.entries_after;
  log_ = std::move(compacted);
  cs.containers_rewritten = (log_.size() + tuning_.container_entries - 1) /
                            tuning_.container_entries;
  stats_.virtual_seconds +=
      static_cast<double>(cs.containers_rewritten) * costs_.flash_write_s;

  // Patch the cuckoo in place: placement depends only on (bucket, sig), so
  // live slots keep their position with the remapped offset; dead slots are
  // cleared and simply read as free from now on.
  for (Slot& s : slots_) {
    if (s.entry == Slot::kEmpty) continue;
    const std::uint32_t ne = remap[s.entry];
    if (ne == Slot::kEmpty) {
      s = Slot{};
    } else {
      s.entry = ne;
    }
  }
  std::size_t kept_spill = 0;
  for (const std::uint32_t e : spill_) {
    if (remap[e] != Slot::kEmpty) spill_[kept_spill++] = remap[e];
  }
  spill_.resize(kept_spill);
  // Container ids shifted under every cached prefetch — drop them all.
  caches_.clear();
  cache_order_.clear();

  ++stats_.compactions;
  stats_.log_entries_dropped += cs.dropped;
  cs.virtual_seconds = stats_.virtual_seconds - t0;
  return cs;
}

std::optional<ChunkLocation> SparseChunkIndex::do_lookup_or_insert(
    const ChunkDigest& digest, const ChunkLocation& loc, std::uint32_t stream) {
  MutexLock lock(mu_);
  ++stats_.probes;
  stats_.virtual_seconds += costs_.ram_probe_s;
  if (const LogEntry* e = probe(digest, stream)) return e->loc;

  if (log_.size() >= static_cast<std::size_t>(
                         tuning_.max_load *
                         static_cast<double>(n_buckets_ * kSlotsPerBucket))) {
    grow_and_rehash();
  }
  const auto entry = static_cast<std::uint32_t>(log_.size());
  log_.push_back({digest, loc});
  stats_.virtual_seconds += costs_.log_append_s;
  ++stats_.inserts;
  if (!place(signature(digest), bucket_hash(digest) & (n_buckets_ - 1),
             entry)) {
    // A placement failure in a lightly loaded table means bucket+signature
    // aliasing that no amount of growth can separate — spill. Under real
    // load pressure, grow once (the rehash re-places this entry, spilling
    // it only if it still cannot fit).
    const double capacity =
        static_cast<double>(n_buckets_ * kSlotsPerBucket);
    if (static_cast<double>(log_.size()) >=
        0.5 * tuning_.max_load * capacity) {
      grow_and_rehash();
    } else {
      spill_.push_back(entry);
    }
  }
  return std::nullopt;
}

std::optional<ChunkLocation> SparseChunkIndex::do_lookup(
    const ChunkDigest& digest, std::uint32_t stream) const {
  MutexLock lock(mu_);
  ++stats_.probes;
  stats_.virtual_seconds += costs_.ram_probe_s;
  if (const LogEntry* e = probe(digest, stream)) return e->loc;
  return std::nullopt;
}

std::uint64_t SparseChunkIndex::size() const {
  MutexLock lock(mu_);
  return log_.size();
}

IndexStats SparseChunkIndex::stats() const {
  MutexLock lock(mu_);
  IndexStats s = stats_;
  s.spilled = spill_.size();
  return s;
}

std::size_t SparseChunkIndex::bucket_count() const {
  MutexLock lock(mu_);
  return n_buckets_;
}

std::size_t SparseChunkIndex::stream_cache_count() const {
  MutexLock lock(mu_);
  return caches_.size();
}

}  // namespace shredder::dedup
