#include "dedup/index.h"

#include <stdexcept>

namespace shredder::dedup {

ChunkIndex::ChunkIndex(double probe_seconds) : probe_seconds_(probe_seconds) {
  if (probe_seconds < 0) {
    throw std::invalid_argument("ChunkIndex: negative probe cost");
  }
}

ChunkIndex::Shard& ChunkIndex::shard_for(const ChunkDigest& d) const noexcept {
  return shards_[static_cast<std::size_t>(d.prefix64() % kShards)];
}

std::optional<ChunkLocation> ChunkIndex::lookup_or_insert(
    const ChunkDigest& digest, const ChunkLocation& loc) {
  probes_.fetch_add(1, std::memory_order_relaxed);
  Shard& shard = shard_for(digest);
  std::lock_guard lock(shard.mutex);
  auto [it, inserted] = shard.map.try_emplace(digest, loc);
  if (inserted) return std::nullopt;
  return it->second;
}

std::optional<ChunkLocation> ChunkIndex::lookup(const ChunkDigest& digest) const {
  probes_.fetch_add(1, std::memory_order_relaxed);
  Shard& shard = shard_for(digest);
  std::lock_guard lock(shard.mutex);
  const auto it = shard.map.find(digest);
  if (it == shard.map.end()) return std::nullopt;
  return it->second;
}

std::uint64_t ChunkIndex::size() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard.mutex);
    total += shard.map.size();
  }
  return total;
}

}  // namespace shredder::dedup
