#include "dedup/index.h"

#include <stdexcept>

#include "dedup/sparse_index.h"

namespace shredder::dedup {

std::unique_ptr<IndexBackend> make_index(const IndexConfig& config) {
  switch (config.kind) {
    case IndexKind::kPaperBaseline:
      return std::make_unique<ChunkIndex>(config.costs.probe_s,
                                          config.costs.insert_s);
    case IndexKind::kSparse:
      return std::make_unique<SparseChunkIndex>(config);
  }
  throw std::invalid_argument("make_index: unknown IndexKind");
}

ChunkIndex::ChunkIndex(double probe_seconds, double insert_seconds)
    : probe_seconds_(probe_seconds), insert_seconds_(insert_seconds) {
  if (probe_seconds < 0 || insert_seconds < 0) {
    throw std::invalid_argument("ChunkIndex: negative probe/insert cost");
  }
}

ChunkIndex::Shard& ChunkIndex::shard_for(const ChunkDigest& d) const noexcept {
  return shards_[static_cast<std::size_t>(d.prefix64() % kShards)];
}

std::optional<ChunkLocation> ChunkIndex::do_lookup_or_insert(
    const ChunkDigest& digest, const ChunkLocation& loc,
    std::uint32_t /*stream*/) {
  probes_.fetch_add(1, std::memory_order_relaxed);
  Shard& shard = shard_for(digest);
  MutexLock lock(shard.mutex);
  auto [it, inserted] = shard.map.try_emplace(digest, loc);
  if (inserted) {
    inserts_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  return it->second;
}

std::optional<ChunkLocation> ChunkIndex::do_lookup(
    const ChunkDigest& digest, std::uint32_t /*stream*/) const {
  probes_.fetch_add(1, std::memory_order_relaxed);
  Shard& shard = shard_for(digest);
  MutexLock lock(shard.mutex);
  const auto it = shard.map.find(digest);
  if (it == shard.map.end()) return std::nullopt;
  return it->second;
}

std::uint64_t ChunkIndex::size() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    MutexLock lock(shard.mutex);
    total += shard.map.size();
  }
  return total;
}

IndexStats ChunkIndex::stats() const {
  IndexStats s;
  s.probes = probes_.load(std::memory_order_relaxed);
  s.inserts = inserts_.load(std::memory_order_relaxed);
  s.virtual_seconds = static_cast<double>(s.probes) * probe_seconds_ +
                      static_cast<double>(s.inserts) * insert_seconds_;
  return s;
}

}  // namespace shredder::dedup
