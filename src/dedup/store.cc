#include "dedup/store.h"

#include <utility>

#include "common/check.h"

namespace shredder::dedup {

void ChunkStore::set_observer(Observer observer) {
  MutexLock lock(mutex_);
  observer_ = std::move(observer);
  notify_locked();
}

StoreOccupancy ChunkStore::occupancy_locked() const {
  StoreOccupancy occ;
  occ.chunks = chunks_.size();
  occ.bytes = unique_bytes_;
  occ.refs = total_refs_;
  occ.zero_ref_chunks = zero_ref_chunks_;
  occ.zero_ref_bytes = zero_ref_bytes_;
  return occ;
}

void ChunkStore::notify_locked() {
  if (observer_) observer_(occupancy_locked());
}

PutOutcome ChunkStore::put(const ChunkDigest& digest, ByteSpan data) {
#ifndef NDEBUG
  // Debug-mode recheck: callers increasingly hand us digests computed
  // elsewhere (the GPU fingerprint stage); this catches any drift between
  // the device hash and the canonical host hash.
  SHREDDER_CHECK_MSG(ChunkHasher::hash(data) == digest,
                     "ChunkStore::put digest mismatch");
#endif
  MutexLock lock(mutex_);
  ++total_refs_;
  auto [it, inserted] =
      chunks_.try_emplace(digest, Entry{ByteVec(data.begin(), data.end()), 1});
  if (!inserted) {
    if (it->second.refs == 0) {
      --zero_ref_chunks_;
      zero_ref_bytes_ -= it->second.data.size();
    }
    ++it->second.refs;
    notify_locked();
    return PutOutcome::kRefAdded;
  }
  unique_bytes_ += data.size();
  notify_locked();
  return PutOutcome::kInserted;
}

PutOutcome ChunkStore::put(const ChunkDigest& digest, ByteVec&& data) {
#ifndef NDEBUG
  SHREDDER_CHECK_MSG(ChunkHasher::hash(as_bytes(data)) == digest,
                     "ChunkStore::put digest mismatch");
#endif
  const std::size_t size = data.size();
  MutexLock lock(mutex_);
  ++total_refs_;
  auto [it, inserted] = chunks_.try_emplace(digest, Entry{std::move(data), 1});
  if (!inserted) {
    if (it->second.refs == 0) {
      --zero_ref_chunks_;
      zero_ref_bytes_ -= it->second.data.size();
    }
    ++it->second.refs;
    notify_locked();
    return PutOutcome::kRefAdded;
  }
  unique_bytes_ += size;
  notify_locked();
  return PutOutcome::kInserted;
}

std::optional<ByteVec> ChunkStore::get(const ChunkDigest& digest) const {
  MutexLock lock(mutex_);
  const auto it = chunks_.find(digest);
  if (it == chunks_.end()) return std::nullopt;
  return it->second.data;
}

bool ChunkStore::contains(const ChunkDigest& digest) const {
  MutexLock lock(mutex_);
  return chunks_.contains(digest);
}

bool ChunkStore::add_ref(const ChunkDigest& digest) {
  MutexLock lock(mutex_);
  const auto it = chunks_.find(digest);
  if (it == chunks_.end()) return false;
  if (it->second.refs == 0) {
    // Resurrection: an in-flight backup re-referenced a chunk whose last
    // snapshot was deleted before the GC sweep got to it.
    --zero_ref_chunks_;
    zero_ref_bytes_ -= it->second.data.size();
  }
  ++it->second.refs;
  ++total_refs_;
  notify_locked();
  return true;
}

ReleaseOutcome ChunkStore::release_ref(const ChunkDigest& digest,
                                       std::uint64_t* remaining) {
  MutexLock lock(mutex_);
  const auto it = chunks_.find(digest);
  if (it == chunks_.end()) return ReleaseOutcome::kUnknownDigest;
  if (it->second.refs == 0) return ReleaseOutcome::kNoRefs;
  --it->second.refs;
  --total_refs_;
  if (remaining != nullptr) *remaining = it->second.refs;
  if (it->second.refs > 0) {
    notify_locked();
    return ReleaseOutcome::kLive;
  }
  if (deferred_reclaim_) {
    ++zero_ref_chunks_;
    zero_ref_bytes_ += it->second.data.size();
    notify_locked();
    return ReleaseOutcome::kDeferred;
  }
  unique_bytes_ -= it->second.data.size();
  chunks_.erase(it);
  notify_locked();
  return ReleaseOutcome::kReclaimed;
}

EraseOutcome ChunkStore::erase(const ChunkDigest& digest) {
  MutexLock lock(mutex_);
  const auto it = chunks_.find(digest);
  if (it == chunks_.end()) return EraseOutcome::kUnknownDigest;
  if (it->second.refs == 0) {
    --zero_ref_chunks_;
    zero_ref_bytes_ -= it->second.data.size();
  }
  total_refs_ -= it->second.refs;
  unique_bytes_ -= it->second.data.size();
  chunks_.erase(it);
  notify_locked();
  return EraseOutcome::kErased;
}

SweepStats ChunkStore::sweep_zero_refs(
    const std::function<bool(const ChunkDigest&)>& keep) {
  MutexLock lock(mutex_);
  SweepStats stats;
  for (auto it = chunks_.begin(); it != chunks_.end();) {
    ++stats.scanned;
    if (it->second.refs != 0) {
      ++it;
      continue;
    }
    if (keep && keep(it->first)) {
      ++stats.kept;
      ++it;
      continue;
    }
    const std::uint64_t size = it->second.data.size();
    ++stats.freed_chunks;
    stats.freed_bytes += size;
    --zero_ref_chunks_;
    zero_ref_bytes_ -= size;
    unique_bytes_ -= size;
    it = chunks_.erase(it);
  }
  notify_locked();
  return stats;
}

std::vector<ChunkDigest> ChunkStore::rebuild_refs(
    const std::unordered_map<ChunkDigest, std::uint64_t, ChunkDigestHash>&
        counts) {
  MutexLock lock(mutex_);
  std::vector<ChunkDigest> zeroed;
  total_refs_ = 0;
  zero_ref_chunks_ = 0;
  zero_ref_bytes_ = 0;
  for (auto it = chunks_.begin(); it != chunks_.end();) {
    const auto c = counts.find(it->first);
    const std::uint64_t refs = c == counts.end() ? 0 : c->second;
    it->second.refs = refs;
    total_refs_ += refs;
    if (refs == 0) {
      if (deferred_reclaim_) {
        ++zero_ref_chunks_;
        zero_ref_bytes_ += it->second.data.size();
        zeroed.push_back(it->first);
        ++it;
      } else {
        unique_bytes_ -= it->second.data.size();
        it = chunks_.erase(it);
      }
    } else {
      ++it;
    }
  }
  notify_locked();
  return zeroed;
}

std::optional<std::uint64_t> ChunkStore::ref_count(
    const ChunkDigest& digest) const {
  MutexLock lock(mutex_);
  const auto it = chunks_.find(digest);
  if (it == chunks_.end()) return std::nullopt;
  return it->second.refs;
}

std::uint64_t ChunkStore::unique_chunks() const {
  MutexLock lock(mutex_);
  return chunks_.size();
}

std::uint64_t ChunkStore::unique_bytes() const {
  MutexLock lock(mutex_);
  return unique_bytes_;
}

std::uint64_t ChunkStore::total_refs() const {
  MutexLock lock(mutex_);
  return total_refs_;
}

std::uint64_t ChunkStore::zero_ref_chunks() const {
  MutexLock lock(mutex_);
  return zero_ref_chunks_;
}

std::uint64_t ChunkStore::zero_ref_bytes() const {
  MutexLock lock(mutex_);
  return zero_ref_bytes_;
}

StoreOccupancy ChunkStore::occupancy() const {
  MutexLock lock(mutex_);
  return occupancy_locked();
}

}  // namespace shredder::dedup
