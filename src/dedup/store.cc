#include "dedup/store.h"

#include "common/check.h"

namespace shredder::dedup {

PutOutcome ChunkStore::put(const ChunkDigest& digest, ByteSpan data) {
#ifndef NDEBUG
  // Debug-mode recheck: callers increasingly hand us digests computed
  // elsewhere (the GPU fingerprint stage); this catches any drift between
  // the device hash and the canonical host hash.
  SHREDDER_CHECK_MSG(ChunkHasher::hash(data) == digest,
                     "ChunkStore::put digest mismatch");
#endif
  MutexLock lock(mutex_);
  ++total_refs_;
  auto [it, inserted] =
      chunks_.try_emplace(digest, Entry{ByteVec(data.begin(), data.end()), 1});
  if (!inserted) {
    ++it->second.refs;
    return PutOutcome::kRefAdded;
  }
  unique_bytes_ += data.size();
  return PutOutcome::kInserted;
}

PutOutcome ChunkStore::put(const ChunkDigest& digest, ByteVec&& data) {
#ifndef NDEBUG
  SHREDDER_CHECK_MSG(ChunkHasher::hash(as_bytes(data)) == digest,
                     "ChunkStore::put digest mismatch");
#endif
  const std::size_t size = data.size();
  MutexLock lock(mutex_);
  ++total_refs_;
  auto [it, inserted] = chunks_.try_emplace(digest, Entry{std::move(data), 1});
  if (!inserted) {
    ++it->second.refs;
    return PutOutcome::kRefAdded;
  }
  unique_bytes_ += size;
  return PutOutcome::kInserted;
}

std::optional<ByteVec> ChunkStore::get(const ChunkDigest& digest) const {
  MutexLock lock(mutex_);
  const auto it = chunks_.find(digest);
  if (it == chunks_.end()) return std::nullopt;
  return it->second.data;
}

bool ChunkStore::contains(const ChunkDigest& digest) const {
  MutexLock lock(mutex_);
  return chunks_.contains(digest);
}

bool ChunkStore::add_ref(const ChunkDigest& digest) {
  MutexLock lock(mutex_);
  const auto it = chunks_.find(digest);
  if (it == chunks_.end()) return false;
  ++it->second.refs;
  ++total_refs_;
  return true;
}

std::optional<std::uint64_t> ChunkStore::release_ref(const ChunkDigest& digest) {
  MutexLock lock(mutex_);
  const auto it = chunks_.find(digest);
  if (it == chunks_.end()) return std::nullopt;
  --it->second.refs;
  --total_refs_;
  const std::uint64_t remaining = it->second.refs;
  if (remaining == 0) {
    unique_bytes_ -= it->second.data.size();
    chunks_.erase(it);
  }
  return remaining;
}

bool ChunkStore::erase(const ChunkDigest& digest) {
  MutexLock lock(mutex_);
  const auto it = chunks_.find(digest);
  if (it == chunks_.end()) return false;
  total_refs_ -= it->second.refs;
  unique_bytes_ -= it->second.data.size();
  chunks_.erase(it);
  return true;
}

std::uint64_t ChunkStore::unique_chunks() const {
  MutexLock lock(mutex_);
  return chunks_.size();
}

std::uint64_t ChunkStore::unique_bytes() const {
  MutexLock lock(mutex_);
  return unique_bytes_;
}

std::uint64_t ChunkStore::total_refs() const {
  MutexLock lock(mutex_);
  return total_refs_;
}

}  // namespace shredder::dedup
