#include "dedup/store.h"

#include "common/check.h"

namespace shredder::dedup {

bool ChunkStore::put(const Sha1Digest& digest, ByteSpan data) {
#ifndef NDEBUG
  SHREDDER_CHECK_MSG(Sha1::hash(data) == digest,
                     "ChunkStore::put digest mismatch");
#endif
  std::lock_guard lock(mutex_);
  ++total_refs_;
  auto [it, inserted] =
      chunks_.try_emplace(digest, Entry{ByteVec(data.begin(), data.end()), 1});
  if (!inserted) {
    ++it->second.refs;
    return false;
  }
  unique_bytes_ += data.size();
  return true;
}

std::optional<ByteVec> ChunkStore::get(const Sha1Digest& digest) const {
  std::lock_guard lock(mutex_);
  const auto it = chunks_.find(digest);
  if (it == chunks_.end()) return std::nullopt;
  return it->second.data;
}

bool ChunkStore::contains(const Sha1Digest& digest) const {
  std::lock_guard lock(mutex_);
  return chunks_.contains(digest);
}

bool ChunkStore::add_ref(const Sha1Digest& digest) {
  std::lock_guard lock(mutex_);
  const auto it = chunks_.find(digest);
  if (it == chunks_.end()) return false;
  ++it->second.refs;
  ++total_refs_;
  return true;
}

std::uint64_t ChunkStore::unique_chunks() const {
  std::lock_guard lock(mutex_);
  return chunks_.size();
}

std::uint64_t ChunkStore::unique_bytes() const {
  std::lock_guard lock(mutex_);
  return unique_bytes_;
}

std::uint64_t ChunkStore::total_refs() const {
  std::lock_guard lock(mutex_);
  return total_refs_;
}

}  // namespace shredder::dedup
