// Deduplicator: ties the three steps of duplicate identification together
// (paper §2.1): chunking (done by the caller — Shredder or a baseline
// chunker), hashing (SHA-1 per chunk) and matching (ChunkIndex + ChunkStore).
//
// Also provides dedup_efficiency(), the measurement used to compare chunking
// schemes: given two versions of a payload, how many bytes of the second
// version are found in the store populated by the first.
#pragma once

#include <cstdint>
#include <vector>

#include "chunking/chunk.h"
#include "common/bytes.h"
#include "dedup/index.h"
#include "dedup/sha1.h"
#include "dedup/store.h"

namespace shredder::dedup {

struct DedupStats {
  std::uint64_t chunks_total = 0;
  std::uint64_t chunks_duplicate = 0;
  std::uint64_t bytes_total = 0;
  std::uint64_t bytes_duplicate = 0;

  double dedup_ratio() const noexcept {
    return bytes_total == 0 ? 0.0
                            : static_cast<double>(bytes_duplicate) /
                                  static_cast<double>(bytes_total);
  }
};

class Deduplicator {
 public:
  explicit Deduplicator(double index_probe_seconds = 0.8e-6)
      : index_(index_probe_seconds) {}

  // Ingests `data` pre-split into `chunks`; stores unique chunks, counts
  // duplicates. Returns the stats for this ingestion only.
  DedupStats ingest(ByteSpan data, const std::vector<chunking::Chunk>& chunks);

  const ChunkIndex& index() const noexcept { return index_; }
  const ChunkStore& store() const noexcept { return store_; }
  ChunkStore& store() noexcept { return store_; }

 private:
  ChunkIndex index_;
  ChunkStore store_;
  std::uint64_t next_offset_ = 0;
};

}  // namespace shredder::dedup
